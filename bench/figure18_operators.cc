// Figure 18 (extension experiment, no direct paper counterpart): what the
// composable operator pipeline API costs relative to the hand-fused query
// kernels it replaced. TPC-H Q6 (filters + FP aggregate) and Q12 (hash join
// + grouped counts) run over fully frozen tables — the paper's in-situ
// sweet spot — first through faithful copies of the pre-redesign fused
// kernels (kept here, and only here, as the baseline), then as
// operator-pipeline plans, inline and morsel-parallel.
//
// Expected shape: the plan throughput stays within a few percent of the
// fused kernels (>= 0.9x is the redesign's acceptance bar) because the
// operators dispatch per batch, not per row — the inner loops are the same
// vector_ops primitives. All engines must agree bit-exactly on every result
// at every worker count; the binary exits non-zero on any mismatch.

#include <algorithm>
#include <cinttypes>
#include <string>
#include <string_view>
#include <vector>

#include "bench_util.h"
#include "common/selection_vector.h"
#include "execution/hash_join.h"
#include "workload/tpch/query_runner.h"
#include "execution/table_scanner.h"
#include "execution/vector_ops.h"
#include "metrics/metrics_registry.h"
#include "transform/block_transformer.h"
#include "workload/tpch/lineitem.h"
#include "workload/tpch/orders.h"

namespace mainline::bench {
namespace {

using common::SelectionVector;
using execution::ColumnVectorBatch;
using execution::JoinEntry;
using execution::JoinHashTable;
using execution::ProjectionIndexOf;
using execution::TableScanner;
using execution::vector_ops::AccumulateDotProduct;
using execution::vector_ops::FilterFixed;
using execution::vector_ops::FilterLessThanColumn;
using execution::vector_ops::FilterRange;
using execution::vector_ops::FilterStringIn;
using workload::tpch::L_COMMITDATE;
using workload::tpch::L_DISCOUNT;
using workload::tpch::L_EXTENDEDPRICE;
using workload::tpch::L_ORDERKEY;
using workload::tpch::L_QUANTITY;
using workload::tpch::L_RECEIPTDATE;
using workload::tpch::L_SHIPDATE;
using workload::tpch::L_SHIPMODE;
using workload::tpch::O_ORDERKEY;
using workload::tpch::O_ORDERPRIORITY;

// ---------------------------------------------------------------------------
// The pre-redesign hand-fused kernels, verbatim: one bespoke scan loop per
// query with the filters, probe, and accumulation inlined. This is what
// every new query used to cost three times over (vectorized, scalar,
// parallel) before plans composed from operators.
// ---------------------------------------------------------------------------

const std::vector<uint16_t> kQ6Projection = {L_QUANTITY, L_EXTENDEDPRICE, L_DISCOUNT,
                                             L_SHIPDATE};

double FusedQ6(catalog::SqlTable *table, transaction::TransactionContext *txn,
               const workload::tpch::Q6Params &params) {
  TableScanner scanner(table, txn, kQ6Projection);
  const uint16_t qty = ProjectionIndexOf(kQ6Projection, L_QUANTITY);
  const uint16_t price = ProjectionIndexOf(kQ6Projection, L_EXTENDEDPRICE);
  const uint16_t disc = ProjectionIndexOf(kQ6Projection, L_DISCOUNT);
  const uint16_t ship = ProjectionIndexOf(kQ6Projection, L_SHIPDATE);

  double revenue = 0;
  SelectionVector sel;
  ColumnVectorBatch batch;
  while (scanner.Next(&batch)) {
    sel.InitFull(static_cast<uint32_t>(batch.NumRows()));
    FilterRange<uint32_t>(batch.Column(ship), &sel, params.shipdate_min, params.shipdate_max);
    FilterFixed<double>(batch.Column(disc), &sel, [&](double v) {
      return params.discount_min <= v && v <= params.discount_max;
    });
    FilterFixed<double>(batch.Column(qty), &sel,
                        [&](double v) { return v < params.quantity_max; });
    double partial = 0;
    AccumulateDotProduct(batch.Column(price), batch.Column(disc), sel, &partial);
    batch.Release();
    if (sel.Size() != 0) revenue += partial;
  }
  return revenue;
}

struct Q12Acc {
  std::string shipmode;
  uint64_t high = 0;
  uint64_t low = 0;
};

uint32_t FindOrAddQ12Group(std::vector<Q12Acc> *groups, std::string_view mode) {
  for (uint32_t g = 0; g < groups->size(); g++) {
    if ((*groups)[g].shipmode == mode) return g;
  }
  Q12Acc acc;
  acc.shipmode = std::string(mode);
  groups->push_back(std::move(acc));
  return static_cast<uint32_t>(groups->size() - 1);
}

const std::vector<uint16_t> kQ12OrdersProjection = {O_ORDERKEY, O_ORDERPRIORITY};
const std::vector<uint16_t> kQ12LineitemProjection = {L_ORDERKEY, L_SHIPDATE, L_COMMITDATE,
                                                      L_RECEIPTDATE, L_SHIPMODE};

std::vector<workload::tpch::Q12Row> FusedQ12(catalog::SqlTable *orders,
                                              catalog::SqlTable *lineitem,
                                              transaction::TransactionContext *txn,
                                              const workload::tpch::Q12Params &params) {
  // Build: inline JoinHashTable over ORDERS, payload = urgent/high bit.
  const uint16_t okey = ProjectionIndexOf(kQ12OrdersProjection, O_ORDERKEY);
  const uint16_t prio = ProjectionIndexOf(kQ12OrdersProjection, O_ORDERPRIORITY);
  const JoinHashTable ht = JoinHashTable::Build(
      orders, txn, kQ12OrdersProjection,
      [&](const ColumnVectorBatch &batch, std::vector<JoinEntry> *out) {
        const arrowlite::Array &keys = batch.Column(okey);
        const arrowlite::Array &priority = batch.Column(prio);
        const int64_t *key_values = keys.buffer(0)->data_as<int64_t>();
        const auto n = static_cast<uint32_t>(batch.NumRows());
        const auto is_high = [](std::string_view p) {
          return p == "1-URGENT" || p == "2-HIGH";
        };
        if (priority.type() == arrowlite::Type::kDictionary) {
          const arrowlite::Array &dict = *priority.dictionary();
          std::vector<uint64_t> payload_of_code(static_cast<size_t>(dict.length()));
          for (int64_t c = 0; c < dict.length(); c++) {
            payload_of_code[static_cast<size_t>(c)] = is_high(dict.GetString(c)) ? 1 : 0;
          }
          const int32_t *codes = priority.buffer(0)->data_as<int32_t>();
          for (uint32_t row = 0; row < n; row++) {
            out->push_back({key_values[row], payload_of_code[static_cast<size_t>(codes[row])]});
          }
        } else {
          for (uint32_t row = 0; row < n; row++) {
            out->push_back({key_values[row], is_high(priority.GetString(row)) ? 1u : 0u});
          }
        }
      },
      nullptr, nullptr);

  // Probe: filters + probe + grouped counts fused into one loop.
  TableScanner scanner(lineitem, txn, kQ12LineitemProjection);
  const uint16_t lkey = ProjectionIndexOf(kQ12LineitemProjection, L_ORDERKEY);
  const uint16_t ship = ProjectionIndexOf(kQ12LineitemProjection, L_SHIPDATE);
  const uint16_t commit = ProjectionIndexOf(kQ12LineitemProjection, L_COMMITDATE);
  const uint16_t receipt = ProjectionIndexOf(kQ12LineitemProjection, L_RECEIPTDATE);
  const uint16_t mode_col = ProjectionIndexOf(kQ12LineitemProjection, L_SHIPMODE);

  std::vector<Q12Acc> groups;
  std::vector<Q12Acc> partial;
  SelectionVector sel;
  ColumnVectorBatch batch;
  while (scanner.Next(&batch)) {
    partial.clear();
    sel.InitFull(static_cast<uint32_t>(batch.NumRows()));
    FilterRange<uint32_t>(batch.Column(receipt), &sel, params.receiptdate_min,
                          params.receiptdate_max);
    FilterLessThanColumn<uint32_t>(batch.Column(commit), batch.Column(receipt), &sel);
    FilterLessThanColumn<uint32_t>(batch.Column(ship), batch.Column(commit), &sel);
    FilterStringIn(batch.Column(mode_col), &sel,
                   {params.shipmode_a, params.shipmode_b});
    if (!sel.Empty() && !ht.Empty()) {
      const arrowlite::Array &keys = batch.Column(lkey);
      const arrowlite::Array &mode = batch.Column(mode_col);
      const auto count = [&](uint32_t group, uint64_t payload) {
        Q12Acc *acc = &partial[group];
        acc->high += payload;
        acc->low += 1 - payload;
      };
      if (mode.type() == arrowlite::Type::kDictionary) {
        std::vector<int32_t> group_of_code(static_cast<size_t>(mode.dictionary()->length()),
                                           -1);
        const int32_t *codes = mode.buffer(0)->data_as<int32_t>();
        ht.ProbeSelected(keys, sel, [&](uint32_t row, uint64_t payload) {
          const auto code = static_cast<size_t>(codes[row]);
          int32_t g = group_of_code[code];
          if (g < 0) {
            g = static_cast<int32_t>(
                FindOrAddQ12Group(&partial, mode.dictionary()->GetString(codes[row])));
            group_of_code[code] = g;
          }
          count(static_cast<uint32_t>(g), payload);
        });
      } else {
        ht.ProbeSelected(keys, sel, [&](uint32_t row, uint64_t payload) {
          count(FindOrAddQ12Group(&partial, mode.GetString(row)), payload);
        });
      }
    }
    batch.Release();
    for (const Q12Acc &acc : partial) {
      Q12Acc *dst = &groups[FindOrAddQ12Group(&groups, acc.shipmode)];
      dst->high += acc.high;
      dst->low += acc.low;
    }
  }

  std::vector<workload::tpch::Q12Row> rows;
  rows.reserve(groups.size());
  for (Q12Acc &acc : groups) {
    workload::tpch::Q12Row row;
    row.shipmode = std::move(acc.shipmode);
    row.high_line_count = acc.high;
    row.low_line_count = acc.low;
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(),
            [](const auto &a, const auto &b) { return a.shipmode < b.shipmode; });
  return rows;
}

/// Generate LINEITEM + ORDERS and freeze every block of both tables.
std::unique_ptr<Engine> BuildFrozenTables(uint64_t rows, uint64_t num_orders,
                                          uint64_t txn_rows,
                                          catalog::SqlTable **lineitem_out,
                                          catalog::SqlTable **orders_out) {
  auto engine = std::make_unique<Engine>();
  catalog::SqlTable *lineitem = workload::tpch::GenerateLineItem(
      &engine->catalog, &engine->txn_manager, rows, /*seed=*/7, txn_rows);
  catalog::SqlTable *orders = workload::tpch::GenerateOrders(
      &engine->catalog, &engine->txn_manager, num_orders, /*seed=*/11, txn_rows);
  engine->gc.FullGC();
  transform::BlockTransformer transformer(&engine->txn_manager, &engine->gc);
  for (catalog::SqlTable *table : {lineitem, orders}) {
    storage::DataTable &dt = table->UnderlyingTable();
    for (storage::RawBlock *block : dt.Blocks()) {
      transformer.ProcessGroup(&dt, {block}, nullptr);
    }
  }
  engine->gc.FullGC();
  *lineitem_out = lineitem;
  *orders_out = orders;
  return engine;
}

}  // namespace
}  // namespace mainline::bench

int main() {
  using namespace mainline;
  using namespace mainline::bench;
  using workload::ExecMode;
  const auto rows = static_cast<uint64_t>(EnvInt("MAINLINE_F18_ROWS", 2000000));
  const auto num_orders = rows / 3;
  const int64_t reps = EnvInt("MAINLINE_F18_REPS", 3);
  const std::vector<uint32_t> thread_list = EnvThreadList("MAINLINE_F18_THREADS");

  catalog::SqlTable *lineitem = nullptr;
  catalog::SqlTable *orders = nullptr;
  auto engine = BuildFrozenTables(rows, num_orders, /*txn_rows=*/10000, &lineitem, &orders);
  workload::QueryRunner runner(&engine->txn_manager);

  std::printf("== Figure 18: operator pipeline vs hand-fused kernels, 100%% frozen "
              "(M lineitem rows/s, best of %" PRId64 "), LINEITEM %" PRIu64
              " rows, ORDERS %" PRIu64 " rows ==\n",
              reps, rows, num_orders);
  std::printf("%-5s %10s %10s %16s\n", "query", "fused", "pipeline", "pipeline/fused");

  bool all_match = true;

  // Q6 — correctness gate, then the head-to-head.
  {
    auto *txn = engine->txn_manager.BeginTransaction();
    const double fused = FusedQ6(lineitem, txn, {});
    const double plan = workload::tpch::RunQ6(lineitem, txn, {});
    const double scalar = workload::tpch::RunQ6Scalar(lineitem, txn, {});
    engine->txn_manager.Commit(txn);
    if (fused != scalar || plan != scalar) {
      std::printf("Q6 RESULT MISMATCH (fused %.6f, pipeline %.6f, scalar %.6f)\n", fused,
                  plan, scalar);
      all_match = false;
    } else {
      const double f = MRowsPerSecond(rows, reps, [&] {
        auto *t = engine->txn_manager.BeginTransaction();
        FusedQ6(lineitem, t, {});
        engine->txn_manager.Commit(t);
      });
      const double p = MRowsPerSecond(rows, reps, [&] { runner.RunQ6(lineitem); });
      std::printf("%-5s %10.1f %10.1f %15.2fx\n", "q6", f, p, p / f);
    }
  }

  // Q12 — same shape, with the join.
  {
    auto *txn = engine->txn_manager.BeginTransaction();
    const auto fused = FusedQ12(orders, lineitem, txn, {});
    const auto plan = workload::tpch::RunQ12(orders, lineitem, txn, {});
    const auto scalar = workload::tpch::RunQ12Scalar(orders, lineitem, txn, {});
    engine->txn_manager.Commit(txn);
    if (!(fused == scalar) || !(plan == scalar) || fused.empty()) {
      std::printf("Q12 RESULT MISMATCH\n");
      all_match = false;
    } else {
      const double f = MRowsPerSecond(rows, reps, [&] {
        auto *t = engine->txn_manager.BeginTransaction();
        FusedQ12(orders, lineitem, t, {});
        engine->txn_manager.Commit(t);
      });
      const double p = MRowsPerSecond(rows, reps, [&] { runner.RunQ12(orders, lineitem); });
      std::printf("%-5s %10.1f %10.1f %15.2fx\n", "q12", f, p, p / f);
    }
  }

  // Morsel-parallel pipeline sweep, correctness-gated per worker count.
  std::printf("\n== Figure 18 threads sweep: morsel-parallel pipeline plans "
              "(M lineitem rows/s, best of %" PRId64 ") ==\n",
              reps);
  std::printf("%-8s %10s %10s\n", "threads", "q6-par", "q12-par");
  for (const uint32_t threads : thread_list) {
    runner.SetNumThreads(threads);
    const auto q6_ref = runner.RunQ6(lineitem, {}, ExecMode::kScalar);
    const auto q6_par = runner.RunQ6(lineitem, {}, ExecMode::kParallel);
    const auto q12_ref = runner.RunQ12(orders, lineitem, {}, ExecMode::kScalar);
    const auto q12_par = runner.RunQ12(orders, lineitem, {}, ExecMode::kParallel);
    if (q6_par.revenue != q6_ref.revenue || !(q12_par.rows == q12_ref.rows)) {
      std::printf("PARALLEL RESULT MISMATCH at %u threads\n", threads);
      all_match = false;
      continue;
    }
    const double p6 = MRowsPerSecond(
        rows, reps, [&] { runner.RunQ6(lineitem, {}, ExecMode::kParallel); });
    const double p12 = MRowsPerSecond(
        rows, reps, [&] { runner.RunQ12(orders, lineitem, {}, ExecMode::kParallel); });
    std::printf("%-8u %10.1f %10.1f\n", threads, p6, p12);
  }

  // Profiling overhead gate: EXPLAIN ANALYZE must stay near-free. Q6 inline
  // (the thinnest per-chunk path, so the worst case for per-operator timer
  // reads), unprofiled vs profiled, best-of at least 3 reps to damp noise.
  // The ratio bar is a knob because CI machines are noisy.
  {
    const double max_overhead = EnvDouble("MAINLINE_F18_PROFILE_MAX_OVERHEAD", 1.05);
    const int64_t gate_reps = std::max<int64_t>(reps, 3);
    runner.SetProfiling(false);
    const double plain = MRowsPerSecond(rows, gate_reps, [&] { runner.RunQ6(lineitem); });
    runner.SetProfiling(true);
    const double profiled = MRowsPerSecond(rows, gate_reps, [&] { runner.RunQ6(lineitem); });
    const double overhead = plain / profiled;
    std::printf("\n== Figure 18 profiling overhead: Q6 inline (M rows/s, best of %" PRId64
                ") ==\n%10s %10s %10s\n%10.1f %10.1f %9.3fx\n",
                gate_reps, "plain", "profiled", "overhead", plain, profiled, overhead);
    std::printf("profiling overhead %.3fx (bar %.2fx): %s\n", overhead, max_overhead,
                overhead <= max_overhead ? "ok" : "EXCEEDED");
    if (overhead > max_overhead) all_match = false;
  }

  // Machine-readable tail line: the engine-wide metrics snapshot plus the
  // last profiled Q6/Q12 plans, for run_benches.sh to fold into BENCH_*.json
  // (and scripts/validate_metrics_json.py to gate in CI).
  {
    runner.SetProfiling(true);
    runner.RunQ6(lineitem);
    const std::string q6_profile = runner.LastProfile().ToJson();
    runner.RunQ12(orders, lineitem);
    const std::string q12_profile = runner.LastProfile().ToJson();
    std::printf("METRICS_JSON {\"engine\":%s,\"profiles\":{\"q6\":%s,\"q12\":%s}}\n",
                metrics::MetricsRegistry::Global().Snapshot().ToJson().c_str(),
                q6_profile.c_str(), q12_profile.c_str());
  }
  return all_match ? 0 : 1;
}
