// Figure 15: bulk data-export speed (MB/s) to an external tool, for four
// mechanisms, varying the percentage of frozen blocks. Non-frozen blocks must
// be transactionally materialized before they can be shipped.
//
// Expected shape (paper): RDMA and Arrow-Flight are orders of magnitude
// faster than the wire protocols when everything is frozen; Flight degrades
// toward the vectorized protocol as the hot fraction grows; the PostgreSQL
// row protocol is slowest and insensitive to the frozen fraction (the
// serialization step dominates either way).

#include "bench_util.h"
#include "common/rand_util.h"
#include "export/protocols.h"
#include "transform/block_transformer.h"
#include "workload/tpcc/tpcc_schemas.h"

namespace mainline::bench {
namespace {

/// Build an ORDER_LINE-shaped table spanning `num_blocks` blocks and freeze
/// the first `percent_frozen`% of them.
std::unique_ptr<Engine> BuildOrderLineTable(uint32_t num_blocks, uint32_t percent_frozen,
                                            catalog::SqlTable **out) {
  auto engine = std::make_unique<Engine>();
  auto *table = engine->catalog.GetTable(
      engine->catalog.CreateTable("order_line", workload::tpcc::OrderLineSchema()));
  const auto initializer = table->FullInitializer();
  std::vector<byte> buffer(initializer.ProjectedRowSize() + 8);
  const uint32_t slots = table->UnderlyingTable().GetLayout().NumSlots();
  common::Xorshift rng(11);

  auto *txn = engine->txn_manager.BeginTransaction();
  for (uint64_t i = 0; i < static_cast<uint64_t>(num_blocks) * slots; i++) {
    using namespace workload;
    storage::ProjectedRow *row = initializer.InitializeRow(buffer.data());
    Set<int32_t>(row, tpcc::OL_O_ID, static_cast<int32_t>(i / 10));
    Set<int32_t>(row, tpcc::OL_D_ID, static_cast<int32_t>(i % 10 + 1));
    Set<int32_t>(row, tpcc::OL_W_ID, 1);
    Set<int32_t>(row, tpcc::OL_NUMBER, static_cast<int32_t>(i % 15 + 1));
    Set<int32_t>(row, tpcc::OL_I_ID, static_cast<int32_t>(rng.Uniform(1, 100000)));
    Set<int32_t>(row, tpcc::OL_SUPPLY_W_ID, 1);
    Set<uint64_t>(row, tpcc::OL_DELIVERY_D, i);
    Set<int8_t>(row, tpcc::OL_QUANTITY, 5);
    Set<double>(row, tpcc::OL_AMOUNT, static_cast<double>(rng.Uniform(1, 99999)) / 100.0);
    SetVarchar(row, tpcc::OL_DIST_INFO, rng.AlphaString(24, 24));
    table->Insert(txn, *row);
    if ((i + 1) % 100000 == 0) {
      engine->txn_manager.Commit(txn);
      txn = engine->txn_manager.BeginTransaction();
    }
  }
  engine->txn_manager.Commit(txn);
  engine->gc.FullGC();

  // Freeze the requested fraction.
  transform::BlockTransformer transformer(&engine->txn_manager, &engine->gc);
  auto blocks = table->UnderlyingTable().Blocks();
  const auto to_freeze = static_cast<size_t>(blocks.size() * percent_frozen / 100);
  for (size_t i = 0; i < to_freeze; i++) {
    transformer.ProcessGroup(&table->UnderlyingTable(), {blocks[i]}, nullptr);
  }
  *out = table;
  return engine;
}

}  // namespace
}  // namespace mainline::bench

int main() {
  using namespace mainline::bench;
  using namespace mainline::exporter;
  const auto num_blocks = static_cast<uint32_t>(EnvInt("MAINLINE_F15_BLOCKS", 64));

  std::printf("== Figure 15: export speed (MB/s), ORDER_LINE-shaped table, %u blocks ==\n",
              num_blocks);
  std::printf("%-9s %10s %14s %18s %18s\n", "%frozen", "rdma", "arrow-flight",
              "vectorized-wire", "postgres-wire");

  for (const uint32_t frozen : {0u, 1u, 5u, 10u, 20u, 40u, 60u, 80u, 100u}) {
    mainline::catalog::SqlTable *table = nullptr;
    auto engine = BuildOrderLineTable(num_blocks, frozen, &table);
    // Generous client buffer: raw data is ~1 MB/block; text encodings bloat.
    ClientBuffer client(static_cast<uint64_t>(num_blocks + 4) * (4u << 20));

    double mbps[4];
    Exporter *exporters[4] = {nullptr, nullptr, nullptr, nullptr};
    RdmaExporter rdma(&client);
    ArrowFlightExporter flight(&client);
    VectorizedWireExporter vectorized(&client);
    PostgresWireExporter pg(&client);
    exporters[0] = &rdma;
    exporters[1] = &flight;
    exporters[2] = &vectorized;
    exporters[3] = &pg;
    for (int i = 0; i < 4; i++) {
      const ExportResult result = exporters[i]->Export(table, &engine->txn_manager);
      // Throughput in terms of payload delivered to the client.
      mbps[i] = static_cast<double>(result.wire_bytes) / (1 << 20) /
                (static_cast<double>(result.micros) / 1e6);
      engine->gc.FullGC();
    }
    std::printf("%-9u %10.1f %14.1f %18.1f %18.1f\n", frozen, mbps[0], mbps[1], mbps[2],
                mbps[3]);
  }
  return 0;
}
