// Figure 20 (extension experiment, no direct paper counterpart): the HTAP
// scenario the paper pitches but never benchmarks end to end — CH-benCHmark
// style. N TPC-C terminals hammer their warehouses and feed fresh orders
// into the TPC-H tables while Q1/Q6/Q12/Q14 plans run morsel-parallel over
// those same tables and the TransformPipeline freezes cold blocks in the
// background. Two windows on identical, freshly loaded engines: the fixed
// cadence an operator would have to hand-tune, then the freeze-rate
// feedback controller (transform/freeze_policy.h).
//
// Expected shape: txn throughput within a few percent between modes (the
// controller's duty-cycle floor keeps it out of the writers' way); under the
// adaptive cadence the observer's cold-block backlog stays bounded (second-
// half maximum at or below the first-half's) and freshness lag recovers,
// where the uncalibrated fixed cadence lets the backlog ratchet upward.
// Every sampled query answer must match its scalar oracle bit-exactly in
// the same snapshot — the binary exits non-zero on any divergence.

#include <cinttypes>
#include <memory>

#include "bench_util.h"
#include "common/worker_pool.h"
#include "execution/operators/plan_profile.h"
#include "metrics/metrics_registry.h"
#include "workload/chbench/chbench_harness.h"
#include "workload/tpch/tpch_queries.h"

namespace mainline::bench {
namespace {

workload::chbench::Config HarnessConfig(bool adaptive) {
  workload::chbench::Config config;
  config.terminals = static_cast<uint32_t>(EnvInt("MAINLINE_F20_TERMINALS", 4));
  config.query_workers = static_cast<uint32_t>(EnvInt("MAINLINE_F20_QUERY_WORKERS", 2));
  config.duration_seconds = EnvDouble("MAINLINE_F20_SECONDS", 3.0);
  config.tpcc_scale = workload::tpcc::Config::Scaled(
      static_cast<int32_t>(EnvInt("MAINLINE_F20_ITEMS", 10000)),
      static_cast<int32_t>(EnvInt("MAINLINE_F20_CUSTOMERS", 300)));
  config.lineitem_rows = static_cast<uint64_t>(EnvInt("MAINLINE_F20_ROWS", 300000));
  config.part_rows = static_cast<uint64_t>(EnvInt("MAINLINE_F20_PARTS", 20000));
  config.feed_rows_per_txn = static_cast<uint64_t>(EnvInt("MAINLINE_F20_FEED_ROWS", 16));
  config.oracle_every = static_cast<uint32_t>(EnvInt("MAINLINE_F20_ORACLE_EVERY", 4));
  config.adaptive = adaptive;
  config.fixed_period =
      std::chrono::milliseconds(EnvInt("MAINLINE_F20_FIXED_PERIOD_MS", 100));
  return config;
}

void PrintMode(const char *label, const workload::chbench::Result &result) {
  std::printf(
      "%-9s %10.1f %8" PRIu64 " %8" PRIu64 " %11" PRIu64 " / %-6" PRIu64
      " %9" PRIu64 " / %-9" PRIu64 " %6" PRIu64 " %9.1f %8.1f %7.1f %9lld\n",
      label, result.txns_per_second / 1000.0, result.tpcc_committed, result.feed_rows,
      result.oracle_checks, result.oracle_mismatches,
      static_cast<uint64_t>(result.queue_depth_max_first_half),
      static_cast<uint64_t>(result.queue_depth_max_second_half),
      static_cast<uint64_t>(result.queue_depth_end), result.freeze_lag_p95_us / 1000.0,
      result.frozen_pct, static_cast<double>(result.transform_passes),
      static_cast<long long>(result.final_period.count()));
  for (const workload::chbench::QueryStats &query : result.queries) {
    std::printf("   %-4s runs %6" PRIu64 "  p50 %9.0f us  p95 %9.0f us  p99 %9.0f us\n",
                query.name.c_str(), query.runs, query.p50_us, query.p95_us, query.p99_us);
  }
}

}  // namespace
}  // namespace mainline::bench

int main() {
  using namespace mainline::bench;
  namespace chbench = mainline::workload::chbench;
  namespace tpch = mainline::workload::tpch;

  std::printf(
      "== Figure 20: CH-benCHmark HTAP — TPC-C terminals + Q1/Q6/Q12/Q14 + background "
      "transform ==\n");

  uint64_t mismatches = 0;
  std::unique_ptr<Engine> adaptive_engine;
  std::unique_ptr<chbench::ChBenchHarness> adaptive_harness;

  std::printf("%-9s %10s %8s %8s %18s %21s %6s %9s %8s %7s %9s\n", "mode", "ktps",
              "tpcc", "feed", "oracle ok/bad", "queue max 1st/2nd", "end",
              "lag p95ms", "%frozen", "passes", "period ms");
  for (const bool adaptive : {false, true}) {
    auto engine = std::make_unique<Engine>(60000);
    auto harness = std::make_unique<chbench::ChBenchHarness>(
        &engine->catalog, &engine->txn_manager, &engine->gc, HarnessConfig(adaptive));
    harness->Setup();
    const chbench::Result result = harness->Run();
    mismatches += result.oracle_mismatches;
    PrintMode(adaptive ? "adaptive" : "fixed", result);
    if (adaptive) {
      adaptive_engine = std::move(engine);
      adaptive_harness = std::move(harness);
    }
  }

  // One profiled Q12 over the adaptive engine's (now partly frozen) tables:
  // the EXPLAIN ANALYZE record the metrics contract requires per bench.
  mainline::execution::op::PlanProfile profile;
  {
    mainline::common::WorkerPool pool(
        static_cast<uint32_t>(EnvInt("MAINLINE_F20_QUERY_WORKERS", 2)));
    auto *txn = adaptive_engine->txn_manager.BeginTransaction();
    tpch::RunQ12Parallel(adaptive_harness->OrdersTable(), adaptive_harness->LineItem(), txn,
                         tpch::Q12Params(), &pool, nullptr, &profile);
    adaptive_engine->txn_manager.Commit(txn);
  }
  std::printf("METRICS_JSON {\"engine\":%s,\"profiles\":{\"q12\":%s}}\n",
              mainline::metrics::MetricsRegistry::Global().Snapshot().ToJson().c_str(),
              profile.ToJson().c_str());

  if (mismatches != 0) {
    std::printf("ORACLE DIVERGENCE: %" PRIu64 " sampled answers mismatched\n", mismatches);
    return 1;
  }
  return 0;
}
