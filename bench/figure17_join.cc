// Figure 17 (extension experiment, no direct paper counterpart): in-situ
// hash-join throughput — TPC-H Q12 (ORDERS ⋈ LINEITEM, group by
// l_shipmode) as the frozen fraction varies, against a tuple-at-a-time
// scalar baseline, plus a worker-threads sweep of the morsel-parallel
// engine (parallel build AND parallel probe).
//
// Expected shape: like figure16, the scalar engine is flat while the
// vectorized engine scales with the frozen fraction — but the join adds a
// build phase whose hash table is shared read-only by every probe worker,
// so the threads sweep shows the probe scaling like a scan while the build
// amortizes across partitions. All engines must agree exactly on every
// result at every worker count; the binary exits non-zero on any mismatch.

#include <cinttypes>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "workload/tpch/query_runner.h"
#include "transform/block_transformer.h"
#include "workload/tpch/lineitem.h"
#include "workload/tpch/orders.h"

namespace mainline::bench {
namespace {

/// Generate LINEITEM + ORDERS and freeze the first `percent_frozen`% of each
/// table's blocks.
std::unique_ptr<Engine> BuildTables(uint64_t rows, uint64_t num_orders, uint64_t txn_rows,
                                    uint32_t percent_frozen, catalog::SqlTable **lineitem_out,
                                    catalog::SqlTable **orders_out, uint64_t *frozen_out) {
  auto engine = std::make_unique<Engine>();
  catalog::SqlTable *lineitem = workload::tpch::GenerateLineItem(
      &engine->catalog, &engine->txn_manager, rows, /*seed=*/7, txn_rows);
  catalog::SqlTable *orders = workload::tpch::GenerateOrders(
      &engine->catalog, &engine->txn_manager, num_orders, /*seed=*/11, txn_rows);
  engine->gc.FullGC();

  transform::BlockTransformer transformer(&engine->txn_manager, &engine->gc);
  uint64_t frozen = 0;
  for (catalog::SqlTable *table : {lineitem, orders}) {
    storage::DataTable &dt = table->UnderlyingTable();
    const auto blocks = dt.Blocks();
    const auto to_freeze = static_cast<size_t>(blocks.size() * percent_frozen / 100);
    for (size_t i = 0; i < to_freeze; i++) {
      frozen += transformer.ProcessGroup(&dt, {blocks[i]}, nullptr);
    }
  }
  engine->gc.FullGC();
  *lineitem_out = lineitem;
  *orders_out = orders;
  *frozen_out = frozen;
  return engine;
}

}  // namespace
}  // namespace mainline::bench

int main() {
  using namespace mainline;
  using namespace mainline::bench;
  using workload::ExecMode;
  const auto rows = static_cast<uint64_t>(EnvInt("MAINLINE_F17_ROWS", 2000000));
  const auto num_orders =
      static_cast<uint64_t>(EnvInt("MAINLINE_F17_ORDERS", static_cast<int64_t>(rows / 3)));
  const auto txn_rows = static_cast<uint64_t>(EnvInt("MAINLINE_F17_TXN_ROWS", 10000));
  const int64_t reps = EnvInt("MAINLINE_F17_REPS", 3);
  const std::vector<uint32_t> thread_list = EnvThreadList("MAINLINE_F17_THREADS");

  std::printf("== Figure 17: in-situ hash join (Q12) throughput (M lineitem rows/s, best of "
              "%" PRId64 "), LINEITEM %" PRIu64 " rows, ORDERS %" PRIu64 " rows ==\n",
              reps, rows, num_orders);
  std::printf("%-9s %8s %10s %10s %16s\n", "%frozen", "blocks", "q12-vec", "q12-scalar",
              "q12 vec/scalar");

  bool all_match = true;
  std::vector<std::string> sweep_lines;
  for (const uint32_t frozen_pct : {0u, 50u, 100u}) {
    catalog::SqlTable *lineitem = nullptr;
    catalog::SqlTable *orders = nullptr;
    uint64_t frozen_blocks = 0;
    auto engine = BuildTables(rows, num_orders, txn_rows, frozen_pct, &lineitem, &orders,
                              &frozen_blocks);
    workload::QueryRunner runner(&engine->txn_manager);

    // Correctness gate: the engines must agree exactly before timing.
    const auto vec = runner.RunQ12(orders, lineitem);
    const auto scalar = runner.RunQ12(orders, lineitem, {}, ExecMode::kScalar);
    if (!(vec.rows == scalar.rows) || vec.rows.empty()) {
      std::printf("RESULT MISMATCH at %u%% frozen\n", frozen_pct);
      all_match = false;
      continue;
    }

    const double v = MRowsPerSecond(rows, reps, [&] { runner.RunQ12(orders, lineitem); });
    const double s = MRowsPerSecond(
        rows, reps, [&] { runner.RunQ12(orders, lineitem, {}, ExecMode::kScalar); });
    std::printf("%-9u %8" PRIu64 " %10.1f %10.1f %15.1fx\n", frozen_pct, frozen_blocks, v, s,
                v / s);

    // Threads sweep: morsel-parallel build + probe at each worker count,
    // gated exactly against the scalar reference before timing.
    double one_thread = 0;
    for (const uint32_t threads : thread_list) {
      runner.SetNumThreads(threads);
      const auto par = runner.RunQ12(orders, lineitem, {}, ExecMode::kParallel);
      if (!(par.rows == scalar.rows)) {
        std::printf("PARALLEL RESULT MISMATCH at %u%% frozen, %u threads\n", frozen_pct,
                    threads);
        all_match = false;
        continue;
      }
      const double p = MRowsPerSecond(
          rows, reps, [&] { runner.RunQ12(orders, lineitem, {}, ExecMode::kParallel); });
      if (one_thread == 0) one_thread = p;
      char line[160];
      std::snprintf(line, sizeof(line), "%-9u %8u %10.1f %20.2fx", frozen_pct, threads, p,
                    one_thread > 0 ? p / one_thread : 1.0);
      sweep_lines.emplace_back(line);
    }
    engine->gc.FullGC();
  }

  std::printf("\n== Figure 17 threads sweep: morsel-parallel join (M lineitem rows/s, best of "
              "%" PRId64 ") ==\n",
              reps);
  std::printf("%-9s %8s %10s %21s\n", "%frozen", "threads", "q12-par", "q12 speedup-vs-first");
  for (const std::string &line : sweep_lines) std::printf("%s\n", line.c_str());
  return all_match ? 0 : 1;
}
