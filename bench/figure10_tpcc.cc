// Figure 10: TPC-C throughput (a) and end-of-run block-state coverage (b),
// varying the number of worker threads, with block transformation disabled /
// in varlen-gather mode / in dictionary-compression mode. One warehouse per
// worker, an aggressive 10 ms cold threshold, and transformation targeting
// only the cold-data tables (ORDER, ORDER_LINE, HISTORY, ITEM), as in the
// paper's setup.
//
// Expected shape (paper): near-linear scaling; at most ~10% throughput loss
// with transformation enabled (dictionary slightly worse than gather); block
// coverage reaches high %frozen for gather, lagging for dictionary at higher
// worker counts.

#include <atomic>
#include <thread>

#include "bench_util.h"
#include "gc/gc_thread.h"
#include "transform/transform_pipeline.h"
#include "workload/tpcc/tpcc_workload.h"

namespace mainline::bench {
namespace {

enum class Mode { kDisabled, kGather, kDictionary };

struct RunResult {
  double ktps = 0;
  double frozen_pct = 0;
  double cooling_pct = 0;
};

RunResult RunTPCC(uint32_t workers, Mode mode, int seconds) {
  Engine engine(60000);
  workload::tpcc::Config config;
  config.num_warehouses = static_cast<int32_t>(workers);
  config.num_items = static_cast<int32_t>(EnvInt("MAINLINE_F10_ITEMS", 10000));
  config.customers_per_district = static_cast<int32_t>(EnvInt("MAINLINE_F10_CUSTOMERS", 300));
  config.orders_per_district = config.customers_per_district;
  workload::tpcc::Database db(&engine.catalog, config);
  db.Load(&engine.txn_manager, workers);
  engine.gc.FullGC();

  transform::AccessObserver observer(1);  // ~1 GC epoch (10 ms) threshold
  transform::BlockTransformer transformer(
      &engine.txn_manager, &engine.gc,
      mode == Mode::kDictionary ? transform::GatherMode::kDictionaryCompression
                                : transform::GatherMode::kVarlenGather);
  transformer.SetInlineGCPump(false);
  transform::TransformPipeline pipeline(&observer, &transformer, 10);
  storage::DataTable *targets[] = {
      &db.order->UnderlyingTable(), &db.order_line->UnderlyingTable(),
      &db.history->UnderlyingTable(), &db.item->UnderlyingTable()};
  pipeline.SetTableFilter([&](storage::DataTable *t) {
    for (auto *target : targets) {
      if (t == target) return true;
    }
    return false;
  });

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> committed{0};
  RunResult result;
  {
    gc::GarbageCollectorThread gc_thread(&engine.gc, std::chrono::milliseconds(10));
    if (mode != Mode::kDisabled) {
      engine.gc.SetAccessObserver(&observer);
      pipeline.EnqueueTable(&db.item->UnderlyingTable());
      pipeline.Start(std::chrono::milliseconds(10));
    }

    std::vector<std::thread> threads;
    for (uint32_t t = 0; t < workers; t++) {
      threads.emplace_back([&, t] {
        workload::tpcc::Worker worker(&db, &engine.txn_manager,
                                      static_cast<int32_t>(t + 1), 1234 + t);
        uint64_t local = 0;
        while (!stop.load(std::memory_order_acquire)) {
          if (worker.RunOne()) local++;
        }
        committed.fetch_add(local);
      });
    }
    std::this_thread::sleep_for(std::chrono::seconds(seconds));
    stop.store(true, std::memory_order_release);
    for (auto &thread : threads) thread.join();
    if (mode != Mode::kDisabled) {
      // Let the pipeline catch up before measuring coverage (the paper
      // reports end-of-run coverage).
      std::this_thread::sleep_for(std::chrono::milliseconds(500));
      pipeline.Stop();
    }
    engine.gc.SetAccessObserver(nullptr);
  }
  result.ktps = static_cast<double>(committed.load()) / seconds / 1000.0;

  uint64_t frozen = 0, cooling = 0, total = 0;
  // Coverage over the transformation-target tables except read-only ITEM,
  // matching the paper's Figure 10b.
  for (auto *table : {&db.order->UnderlyingTable(), &db.order_line->UnderlyingTable(),
                      &db.history->UnderlyingTable()}) {
    for (auto *block : table->Blocks()) {
      total++;
      const auto state = block->controller.GetState();
      if (state == storage::BlockState::kFrozen) frozen++;
      if (state == storage::BlockState::kCooling) cooling++;
    }
  }
  if (total > 0) {
    result.frozen_pct = 100.0 * static_cast<double>(frozen) / static_cast<double>(total);
    result.cooling_pct = 100.0 * static_cast<double>(cooling) / static_cast<double>(total);
  }
  return result;
}

}  // namespace
}  // namespace mainline::bench

int main() {
  using namespace mainline::bench;
  const int seconds = static_cast<int>(EnvInt("MAINLINE_F10_SECONDS", 3));
  const auto max_workers = static_cast<uint32_t>(EnvInt("MAINLINE_F10_MAX_WORKERS", 8));

  std::printf(
      "== Figure 10: TPC-C, one warehouse per worker, %d s per cell ==\n"
      "%-9s %16s %16s %16s %22s %22s\n",
      seconds, "#workers", "none (K txn/s)", "gather (K txn/s)", "dict (K txn/s)",
      "gather %frozen/%cool", "dict %frozen/%cool");
  for (uint32_t workers = 1; workers <= max_workers; workers *= 2) {
    const RunResult none = RunTPCC(workers, Mode::kDisabled, seconds);
    const RunResult gather = RunTPCC(workers, Mode::kGather, seconds);
    const RunResult dict = RunTPCC(workers, Mode::kDictionary, seconds);
    std::printf("%-9u %16.1f %16.1f %16.1f %14.1f / %5.1f %14.1f / %5.1f\n", workers,
                none.ktps, gather.ktps, dict.ktps, gather.frozen_pct, gather.cooling_pct,
                dict.frozen_pct, dict.cooling_pct);
  }
  return 0;
}
