// Figure 19 (extension experiment, no direct paper counterpart): TPC-H Q3 —
// the engine's first multi-way join (CUSTOMER ⋈ ORDERS ⋈ LINEITEM) with an
// ORDER BY revenue LIMIT sink — over fully frozen tables, the paper's
// in-situ sweet spot. The three-pipeline plan (probe chaining through both
// hash tables, revenue folded during the LINEITEM probe, Top-K heap sink)
// runs tuple-at-a-time scalar, vectorized inline, and morsel-parallel
// across a worker sweep.
//
// Expected shape: the vectorized plan beats the scalar reference by the
// usual batch-dispatch margin, and the parallel engine scales with workers
// until the (small) build pipelines bound the speedup. Every engine must
// agree bit-exactly — full result rows, order included, so the LIMIT
// boundary's deterministic tie-break is exercised — and the binary exits
// non-zero on any mismatch.

#include <cinttypes>
#include <vector>

#include "bench_util.h"
#include "workload/tpch/query_runner.h"
#include "metrics/metrics_registry.h"
#include "transform/block_transformer.h"
#include "workload/tpch/customer.h"
#include "workload/tpch/lineitem.h"
#include "workload/tpch/orders.h"

namespace mainline::bench {
namespace {

/// Generate CUSTOMER + ORDERS + LINEITEM and freeze every block of all
/// three. A third of the order custkeys dangle past the customer table, so
/// the first join edge drops rows like real (filtered) data would.
std::unique_ptr<Engine> BuildFrozenTables(uint64_t rows, uint64_t num_orders,
                                          uint64_t num_customers, uint64_t txn_rows,
                                          catalog::SqlTable **customer_out,
                                          catalog::SqlTable **orders_out,
                                          catalog::SqlTable **lineitem_out) {
  auto engine = std::make_unique<Engine>();
  catalog::SqlTable *lineitem = workload::tpch::GenerateLineItem(
      &engine->catalog, &engine->txn_manager, rows, /*seed=*/7, txn_rows);
  catalog::SqlTable *orders = workload::tpch::GenerateOrders(
      &engine->catalog, &engine->txn_manager, num_orders, /*seed=*/11, txn_rows, "orders",
      num_customers + num_customers / 2);
  catalog::SqlTable *customer = workload::tpch::GenerateCustomer(
      &engine->catalog, &engine->txn_manager, num_customers, /*seed=*/17, txn_rows);
  engine->gc.FullGC();
  transform::BlockTransformer transformer(&engine->txn_manager, &engine->gc);
  for (catalog::SqlTable *table : {lineitem, orders, customer}) {
    storage::DataTable &dt = table->UnderlyingTable();
    for (storage::RawBlock *block : dt.Blocks()) {
      transformer.ProcessGroup(&dt, {block}, nullptr);
    }
  }
  engine->gc.FullGC();
  *customer_out = customer;
  *orders_out = orders;
  *lineitem_out = lineitem;
  return engine;
}

}  // namespace
}  // namespace mainline::bench

int main() {
  using namespace mainline;
  using namespace mainline::bench;
  using workload::ExecMode;
  const auto rows = static_cast<uint64_t>(EnvInt("MAINLINE_F19_ROWS", 2000000));
  const auto num_orders = static_cast<uint64_t>(
      EnvInt("MAINLINE_F19_ORDERS", static_cast<int64_t>(rows / 3)));
  const auto num_customers = static_cast<uint64_t>(
      EnvInt("MAINLINE_F19_CUSTOMERS", static_cast<int64_t>(rows / 6)));
  const auto txn_rows = static_cast<uint64_t>(EnvInt("MAINLINE_F19_TXN_ROWS", 10000));
  const int64_t reps = EnvInt("MAINLINE_F19_REPS", 3);
  const std::vector<uint32_t> thread_list = EnvThreadList("MAINLINE_F19_THREADS");
  // Throughput normalizes by every row the query touches: all three scans.
  const uint64_t scanned = rows + num_orders + num_customers;

  catalog::SqlTable *customer = nullptr;
  catalog::SqlTable *orders = nullptr;
  catalog::SqlTable *lineitem = nullptr;
  auto engine = BuildFrozenTables(rows, num_orders, num_customers, txn_rows, &customer,
                                  &orders, &lineitem);
  workload::QueryRunner runner(&engine->txn_manager);

  std::printf("== Figure 19: TPC-H Q3 three-way join + top-k, 100%% frozen "
              "(M scanned rows/s, best of %" PRId64 "), LINEITEM %" PRIu64
              " rows, ORDERS %" PRIu64 " rows, CUSTOMER %" PRIu64 " rows ==\n",
              reps, rows, num_orders, num_customers);

  bool all_match = true;

  // Correctness gate first: full rows, order included, on every engine.
  const auto scalar_ref = runner.RunQ3(customer, orders, lineitem, {}, ExecMode::kScalar);
  const auto vectorized = runner.RunQ3(customer, orders, lineitem, {});
  if (scalar_ref.rows.empty() || !(vectorized.rows == scalar_ref.rows)) {
    std::printf("Q3 RESULT MISMATCH (scalar %zu rows, vectorized %zu rows)\n",
                scalar_ref.rows.size(), vectorized.rows.size());
    all_match = false;
  } else {
    std::printf("%-12s %10s\n", "engine", "M rows/s");
    const double s = MRowsPerSecond(scanned, reps, [&] {
      runner.RunQ3(customer, orders, lineitem, {}, ExecMode::kScalar);
    });
    const double v = MRowsPerSecond(scanned, reps,
                                    [&] { runner.RunQ3(customer, orders, lineitem); });
    std::printf("%-12s %10.1f\n", "scalar", s);
    std::printf("%-12s %10.1f   (%.2fx scalar)\n", "vectorized", v, v / s);
  }

  // Morsel-parallel sweep, correctness-gated per worker count.
  std::printf("\n== Figure 19 threads sweep: morsel-parallel Q3 "
              "(M scanned rows/s, best of %" PRId64 ") ==\n",
              reps);
  std::printf("%-8s %10s\n", "threads", "q3-par");
  for (const uint32_t threads : thread_list) {
    runner.SetNumThreads(threads);
    const auto par = runner.RunQ3(customer, orders, lineitem, {}, ExecMode::kParallel);
    if (!(par.rows == scalar_ref.rows)) {
      std::printf("PARALLEL RESULT MISMATCH at %u threads\n", threads);
      all_match = false;
      continue;
    }
    const double p = MRowsPerSecond(scanned, reps, [&] {
      runner.RunQ3(customer, orders, lineitem, {}, ExecMode::kParallel);
    });
    std::printf("%-8u %10.1f\n", threads, p);
  }

  // Machine-readable tail line: the engine-wide metrics snapshot plus the
  // profiled Q3 three-pipeline plan, for run_benches.sh to fold into
  // BENCH_*.json (and scripts/validate_metrics_json.py to gate in CI).
  {
    runner.SetProfiling(true);
    runner.RunQ3(customer, orders, lineitem);
    std::printf("METRICS_JSON {\"engine\":%s,\"profiles\":{\"q3\":%s}}\n",
                metrics::MetricsRegistry::Global().Snapshot().ToJson().c_str(),
                runner.LastProfile().ToJson().c_str());
  }
  return all_match ? 0 : 1;
}
