#pragma once

// Shared scaffolding for the figure-reproduction benchmarks. Each bench
// binary prints the same series the paper's figure reports; absolute numbers
// depend on the host, the *shape* is the reproduction target. EXPERIMENTS.md
// documents every binary and its knobs; scripts/run_benches.sh builds
// Release and captures all reports as BENCH_<figure>.json.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/rand_util.h"
#include "common/timer.h"
#include "gc/garbage_collector.h"
#include "transform/block_transformer.h"
#include "workload/row_util.h"

namespace mainline::bench {

/// Read an integer knob from the environment, with a default.
inline int64_t EnvInt(const char *name, int64_t def) {
  const char *value = std::getenv(name);
  return value == nullptr ? def : std::atoll(value);
}

/// Read a floating-point knob from the environment, with a default.
inline double EnvDouble(const char *name, double def) {
  const char *value = std::getenv(name);
  return value == nullptr ? def : std::atof(value);
}

/// A self-contained engine instance (no logging) for benchmarks.
///
/// Member order matters: destruction runs in reverse, so the GC dies first
/// (it drains version chains and deferred actions while tables are alive),
/// then the transaction manager (frees undo varlens via table layouts), then
/// the catalog's tables, then the pools.
struct Engine {
  explicit Engine(uint64_t blocks = 20000)
      : block_store(blocks, 1000),
        buffer_pool(0, 10000),
        catalog(&block_store),
        txn_manager(&buffer_pool, true, nullptr),
        gc(&txn_manager) {}

  storage::BlockStore block_store;
  storage::RecordBufferSegmentPool buffer_pool;
  catalog::Catalog catalog;
  transaction::TransactionManager txn_manager;
  gc::GarbageCollector gc;
};

/// The microbenchmark table of Section 6.2: an 8-byte fixed column plus a
/// 12-24 byte varlen column (~32K tuples per 1 MB block).
inline catalog::Schema MicroSchema() {
  return catalog::Schema({{"id", catalog::TypeId::kBigInt},
                          {"payload", catalog::TypeId::kVarchar}});
}

/// Fill `table` with `num_blocks` blocks' worth of tuples, then delete
/// `percent_empty`% of them at random and GC to quiescence — the
/// "data that went cold since the last transformation pass" setup.
inline void PopulateMicroTable(Engine *engine, catalog::SqlTable *table, uint32_t num_blocks,
                               uint32_t percent_empty, uint64_t seed = 31) {
  common::Xorshift rng(seed);
  const auto initializer = table->FullInitializer();
  std::vector<byte> buffer(initializer.ProjectedRowSize() + 8);
  const uint32_t slots = table->UnderlyingTable().GetLayout().NumSlots();
  const uint64_t total = static_cast<uint64_t>(num_blocks) * slots;

  std::vector<storage::TupleSlot> inserted;
  inserted.reserve(total);
  const catalog::Schema &schema = table->GetSchema();
  auto *txn = engine->txn_manager.BeginTransaction();
  for (uint64_t i = 0; i < total; i++) {
    storage::ProjectedRow *row = initializer.InitializeRow(buffer.data());
    for (uint16_t c = 0; c < schema.NumColumns(); c++) {
      if (schema.GetColumn(c).IsVarlen()) {
        // 12-24 byte values, as in the Section 6.2 microbenchmark setup.
        workload::SetVarchar(row, c,
                             "payload-" + std::to_string(i % 1000) +
                                 std::string(rng.Uniform(0, 12), 'x'));
      } else {
        workload::Set<int64_t>(row, c, static_cast<int64_t>(i));
      }
    }
    inserted.push_back(table->Insert(txn, *row));
    if ((i + 1) % 100000 == 0) {
      engine->txn_manager.Commit(txn);
      txn = engine->txn_manager.BeginTransaction();
    }
  }
  engine->txn_manager.Commit(txn);

  if (percent_empty > 0) {
    auto *deleter = engine->txn_manager.BeginTransaction();
    for (const auto slot : inserted) {
      if (rng.Uniform(1, 100) <= percent_empty) table->Delete(deleter, slot);
    }
    engine->txn_manager.Commit(deleter);
  }
  engine->gc.FullGC();
}

/// Wall-clock seconds of `fn`, on the engine's one timing clock
/// (common::Timer, steady_clock).
template <typename F>
double TimeSeconds(F &&fn) {
  const common::Timer timer;
  fn();
  return timer.ElapsedSeconds();
}

/// Best-of-`reps` throughput of `run` in million rows per second, where
/// `rows` is the row count one invocation covers.
template <typename F>
double MRowsPerSecond(uint64_t rows, int64_t reps, F &&run) {
  double best = 0;
  for (int64_t r = 0; r < reps; r++) {
    const double seconds = TimeSeconds(run);
    const double mrps = static_cast<double>(rows) / 1e6 / seconds;
    if (mrps > best) best = mrps;
  }
  return best;
}

/// Parse a comma-separated worker-count list from environment variable
/// `name` ("1,2,4,8"); non-positive or malformed tokens are dropped and an
/// empty result falls back to the default sweep.
inline std::vector<uint32_t> EnvThreadList(const char *name) {
  const char *env = std::getenv(name);
  const std::string spec = env == nullptr ? "1,2,4,8" : env;
  std::vector<uint32_t> threads;
  size_t pos = 0;
  while (pos < spec.size()) {
    const size_t comma = spec.find(',', pos);
    const std::string token =
        spec.substr(pos, comma == std::string::npos ? spec.size() - pos : comma - pos);
    const long value = std::atol(token.c_str());
    if (value > 0) threads.push_back(static_cast<uint32_t>(value));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (threads.empty()) threads = {1, 2, 4, 8};
  return threads;
}

}  // namespace mainline::bench
