// Figure 16 (extension experiment, no direct paper counterpart): in-situ
// query throughput of the vectorized execution engine over LINEITEM as the
// frozen fraction varies, against a tuple-at-a-time scalar baseline — plus a
// worker-threads sweep of the morsel-parallel engine.
//
// Expected shape: scalar throughput is flat — it pays a per-tuple Select at
// every frozen fraction. The vectorized engine's throughput *scales with the
// frozen fraction*: a frozen block is queried zero-copy straight out of
// block storage (the paper's Figure 1 "in-situ analytics" promise, an order
// of magnitude over scalar at 100% frozen), while a hot block must first be
// transactionally materialized into vectors. The threads sweep then shows
// the morsel-parallel engine multiplying whichever per-block path applies:
// blocks are independent morsels, so throughput scales with workers until
// memory bandwidth (or the machine's core count) caps it.
//
// All engines must agree bit-exactly on every result — including the
// parallel engine at every worker count — and the binary exits non-zero on
// any mismatch.

#include <cinttypes>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "workload/tpch/query_runner.h"
#include "transform/block_transformer.h"
#include "workload/tpch/lineitem.h"

namespace mainline::bench {
namespace {

/// Generate LINEITEM and freeze the first `percent_frozen`% of its blocks.
std::unique_ptr<Engine> BuildLineItem(uint64_t rows, uint64_t txn_rows,
                                      uint32_t percent_frozen, catalog::SqlTable **out,
                                      uint64_t *frozen_out) {
  auto engine = std::make_unique<Engine>();
  catalog::SqlTable *table = workload::tpch::GenerateLineItem(
      &engine->catalog, &engine->txn_manager, rows, /*seed=*/7, txn_rows);
  engine->gc.FullGC();

  transform::BlockTransformer transformer(&engine->txn_manager, &engine->gc);
  storage::DataTable &dt = table->UnderlyingTable();
  const auto blocks = dt.Blocks();
  const auto to_freeze = static_cast<size_t>(blocks.size() * percent_frozen / 100);
  uint64_t frozen = 0;
  for (size_t i = 0; i < to_freeze; i++) {
    frozen += transformer.ProcessGroup(&dt, {blocks[i]}, nullptr);
  }
  engine->gc.FullGC();
  *out = table;
  *frozen_out = frozen;
  return engine;
}

}  // namespace
}  // namespace mainline::bench

int main() {
  using namespace mainline;
  using namespace mainline::bench;
  using workload::ExecMode;
  const auto rows = static_cast<uint64_t>(EnvInt("MAINLINE_F16_ROWS", 2000000));
  const auto txn_rows = static_cast<uint64_t>(EnvInt("MAINLINE_F16_TXN_ROWS", 10000));
  const int64_t reps = EnvInt("MAINLINE_F16_REPS", 3);
  const std::vector<uint32_t> thread_list = EnvThreadList("MAINLINE_F16_THREADS");

  std::printf(
      "== Figure 16: in-situ Q1/Q6 throughput (Mrows/s, best of %" PRId64
      "), LINEITEM %" PRIu64 " rows ==\n",
      reps, rows);
  std::printf("%-9s %8s %10s %10s %10s %10s %14s\n", "%frozen", "blocks", "q1-vec",
              "q1-scalar", "q6-vec", "q6-scalar", "q6 vec/scalar");

  bool all_match = true;
  std::vector<std::string> sweep_lines;
  for (const uint32_t frozen_pct : {0u, 50u, 100u}) {
    catalog::SqlTable *table = nullptr;
    uint64_t frozen_blocks = 0;
    auto engine = BuildLineItem(rows, txn_rows, frozen_pct, &table, &frozen_blocks);
    workload::QueryRunner runner(&engine->txn_manager);

    // Correctness gate: the engines must agree bit-exactly before timing.
    const auto q1_vec = runner.RunQ1(table);
    const auto q1_scalar = runner.RunQ1(table, {}, ExecMode::kScalar);
    const auto q6_vec = runner.RunQ6(table);
    const auto q6_scalar = runner.RunQ6(table, {}, ExecMode::kScalar);
    if (!(q1_vec.rows == q1_scalar.rows) || q6_vec.revenue != q6_scalar.revenue) {
      std::printf("RESULT MISMATCH at %u%% frozen\n", frozen_pct);
      all_match = false;
      continue;
    }

    const double q1v = MRowsPerSecond(rows, reps, [&] { runner.RunQ1(table); });
    const double q1s =
        MRowsPerSecond(rows, reps, [&] { runner.RunQ1(table, {}, ExecMode::kScalar); });
    const double q6v = MRowsPerSecond(rows, reps, [&] { runner.RunQ6(table); });
    const double q6s =
        MRowsPerSecond(rows, reps, [&] { runner.RunQ6(table, {}, ExecMode::kScalar); });
    std::printf("%-9u %8" PRIu64 " %10.1f %10.1f %10.1f %10.1f %13.1fx\n", frozen_pct,
                frozen_blocks, q1v, q1s, q6v, q6s, q6v / q6s);

    // Threads sweep: the morsel-parallel engine at each worker count, gated
    // bit-exactly against the scalar reference before timing.
    double q6_one_thread = 0;
    for (const uint32_t threads : thread_list) {
      runner.SetNumThreads(threads);
      const auto q1_par = runner.RunQ1(table, {}, ExecMode::kParallel);
      const auto q6_par = runner.RunQ6(table, {}, ExecMode::kParallel);
      if (!(q1_par.rows == q1_scalar.rows) || q6_par.revenue != q6_scalar.revenue) {
        std::printf("PARALLEL RESULT MISMATCH at %u%% frozen, %u threads\n", frozen_pct,
                    threads);
        all_match = false;
        continue;
      }
      const double q1p =
          MRowsPerSecond(rows, reps, [&] { runner.RunQ1(table, {}, ExecMode::kParallel); });
      const double q6p =
          MRowsPerSecond(rows, reps, [&] { runner.RunQ6(table, {}, ExecMode::kParallel); });
      // Baseline = the first entry that actually produced a timing (a gated
      // failure above leaves it unset).
      if (q6_one_thread == 0) q6_one_thread = q6p;
      char line[160];
      std::snprintf(line, sizeof(line), "%-9u %8u %10.1f %10.1f %17.2fx", frozen_pct,
                    threads, q1p, q6p,
                    q6_one_thread > 0 ? q6p / q6_one_thread : 1.0);
      sweep_lines.emplace_back(line);
    }
    engine->gc.FullGC();
  }

  std::printf(
      "\n== Figure 16 threads sweep: morsel-parallel engine (Mrows/s, best of %" PRId64
      ") ==\n",
      reps);
  std::printf("%-9s %8s %10s %10s %18s\n", "%frozen", "threads", "q1-par", "q6-par",
              "q6 speedup-vs-first");
  for (const std::string &line : sweep_lines) std::printf("%s\n", line.c_str());
  return all_match ? 0 : 1;
}
