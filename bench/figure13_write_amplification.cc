// Figure 13: write amplification — the number of tuple movements (each of
// which triggers index updates at a table-specific constant cost) incurred by
// one transformation pass, for the Snapshot baseline (moves every tuple) vs
// the approximate and optimal compaction planners.
//
// Expected shape (paper): the planners are orders of magnitude cheaper than
// Snapshot when blocks are nearly full, ~2x cheaper at 50% empty, converging
// as emptiness grows; approximate ~= optimal throughout.

#include "bench_util.h"
#include "transform/compaction_planner.h"

int main() {
  using namespace mainline::bench;
  // The paper processes 500 blocks; override with MAINLINE_F13_BLOCKS=500.
  const auto num_blocks = static_cast<uint32_t>(EnvInt("MAINLINE_F13_BLOCKS", 300));
  std::printf("== Figure 13: tuples moved per transformation pass (%u blocks) ==\n",
              num_blocks);
  std::printf("%-8s %14s %14s %14s\n", "%empty", "snapshot", "approximate", "optimal");
  for (const uint32_t empty : {0u, 1u, 5u, 10u, 20u, 40u, 60u, 80u}) {
    Engine engine;
    auto *table = engine.catalog.GetTable(engine.catalog.CreateTable("t", MicroSchema()));
    PopulateMicroTable(&engine, table, num_blocks, empty);
    auto blocks = table->UnderlyingTable().Blocks();

    const auto approx =
        mainline::transform::CompactionPlanner::Plan(table->UnderlyingTable(), blocks, false);
    const auto optimal =
        mainline::transform::CompactionPlanner::Plan(table->UnderlyingTable(), blocks, true);
    // Snapshot copies (moves) every live tuple into fresh storage.
    const uint64_t snapshot_moves = approx.total_tuples;
    std::printf("%-8u %14lu %14zu %14zu\n", empty,
                static_cast<unsigned long>(snapshot_moves), approx.moves.size(),
                optimal.moves.size());
  }
  return 0;
}
