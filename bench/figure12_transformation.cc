// Figure 12: transformation throughput (blocks/s) when migrating blocks from
// the relaxed format to canonical Arrow, varying the fraction of empty slots.
//
//   12a: 50% varlen layout — Hybrid-Gather vs Snapshot vs Transactional
//        In-Place vs Hybrid-Compress
//   12b: phase breakdown (compaction vs gather vs dictionary)
//   12c: all fixed-length columns
//   12d: all varlen columns
//
// Expected shape (paper): Hybrid-Gather fastest when blocks are nearly full
// (sub-ms per block); throughput dips as emptiness grows (tuple movement)
// and recovers past ~50%; In-Place worst (version maintenance);
// Hybrid-Compress an order of magnitude slower than Hybrid-Gather.

#include "bench_util.h"
#include "transform/baselines.h"
#include "transform/arrow_reader.h"

namespace mainline::bench {
namespace {

using transform::BlockTransformer;
using transform::GatherMode;

template <typename T>
void DoNotOptimize(T &&value) {
  asm volatile("" : : "g"(value) : "memory");
}

catalog::Schema FixedOnlySchema() {
  return catalog::Schema({{"a", catalog::TypeId::kBigInt}, {"b", catalog::TypeId::kBigInt}});
}
catalog::Schema VarlenOnlySchema() {
  return catalog::Schema({{"p", catalog::TypeId::kVarchar}, {"q", catalog::TypeId::kVarchar}});
}

struct Result {
  double hybrid_gather = 0, snapshot = 0, in_place = 0, hybrid_compress = 0;
  double compaction_us = 0, gather_us = 0, dict_us = 0;
};

Result RunOne(const catalog::Schema &schema, uint32_t num_blocks, uint32_t percent_empty) {
  Result result;

  // Hybrid-Gather and Hybrid-Compress (fresh engine per mode so state resets).
  for (const GatherMode mode : {GatherMode::kVarlenGather, GatherMode::kDictionaryCompression}) {
    Engine engine;
    auto *table = engine.catalog.GetTable(engine.catalog.CreateTable("t", schema));
    PopulateMicroTable(&engine, table, num_blocks, percent_empty);
    BlockTransformer transformer(&engine.txn_manager, &engine.gc, mode);
    transform::TransformStats stats;
    auto blocks = table->UnderlyingTable().Blocks();
    const double secs = TimeSeconds([&] {
      transformer.ProcessGroup(&table->UnderlyingTable(), blocks, &stats);
    });
    const double throughput = static_cast<double>(num_blocks) / secs;
    if (mode == GatherMode::kVarlenGather) {
      result.hybrid_gather = throughput;
      result.compaction_us = static_cast<double>(stats.compaction_us) / num_blocks;
      result.gather_us = static_cast<double>(stats.gather_us) / num_blocks;
    } else {
      result.hybrid_compress = throughput;
      result.dict_us = static_cast<double>(stats.gather_us) / num_blocks;
    }
  }

  // Snapshot: read each block transactionally and copy into fresh Arrow
  // buffers through the builder API.
  {
    Engine engine;
    auto *table = engine.catalog.GetTable(engine.catalog.CreateTable("t", schema));
    PopulateMicroTable(&engine, table, num_blocks, percent_empty);
    auto blocks = table->UnderlyingTable().Blocks();
    const double secs = TimeSeconds([&] {
      for (auto *block : blocks) {
        auto *txn = engine.txn_manager.BeginTransaction();
        auto batch = transform::ArrowReader::MaterializeBlock(
            table->GetSchema(), &table->UnderlyingTable(), block, txn);
        engine.txn_manager.Commit(txn);
        DoNotOptimize(batch);
      }
    });
    result.snapshot = static_cast<double>(num_blocks) / secs;
  }

  // Transactional In-Place: the whole transformation as ordinary updates.
  {
    Engine engine;
    auto *table = engine.catalog.GetTable(engine.catalog.CreateTable("t", schema));
    PopulateMicroTable(&engine, table, num_blocks, percent_empty);
    auto blocks = table->UnderlyingTable().Blocks();
    const double secs = TimeSeconds([&] {
      for (auto *block : blocks) {
        transform::InPlaceTransform(&engine.txn_manager, &table->UnderlyingTable(), block);
        engine.gc.FullGC();
      }
    });
    result.in_place = static_cast<double>(num_blocks) / secs;
  }
  return result;
}

void RunSeries(const char *title, const catalog::Schema &schema, uint32_t num_blocks,
               bool breakdown) {
  std::printf("\n== %s (%u blocks) ==\n", title, num_blocks);
  std::printf("%-8s %14s %12s %12s %16s\n", "%empty", "hybrid-gather", "snapshot",
              "in-place", "hybrid-compress");
  std::vector<Result> results;
  const uint32_t empties[] = {0, 1, 5, 10, 20, 40, 60, 80};
  for (const uint32_t e : empties) {
    const Result r = RunOne(schema, num_blocks, e);
    results.push_back(r);
    std::printf("%-8u %14.1f %12.1f %12.1f %16.1f   (blocks/s)\n", e, r.hybrid_gather,
                r.snapshot, r.in_place, r.hybrid_compress);
  }
  if (breakdown) {
    std::printf("\n-- Figure 12b: per-block phase breakdown (us/block) --\n");
    std::printf("%-8s %12s %14s %12s\n", "%empty", "compaction", "varlen-gather", "dict");
    for (size_t i = 0; i < results.size(); i++) {
      std::printf("%-8u %12.1f %14.1f %12.1f\n", empties[i], results[i].compaction_us,
                  results[i].gather_us, results[i].dict_us);
    }
  }
}

}  // namespace
}  // namespace mainline::bench

int main() {
  using namespace mainline::bench;
  const auto num_blocks = static_cast<uint32_t>(EnvInt("MAINLINE_F12_BLOCKS", 64));
  RunSeries("Figure 12a: 50% varlen columns", MicroSchema(), num_blocks, true);
  RunSeries("Figure 12c: all fixed-length columns", FixedOnlySchema(), num_blocks, false);
  RunSeries("Figure 12d: all varlen columns", VarlenOnlySchema(), num_blocks, false);
  return 0;
}
