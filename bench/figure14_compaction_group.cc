// Figure 14: sensitivity to the compaction group size while processing 500
// blocks: (a) blocks freed in one transformation round, (b) the compacting
// transactions' write-set sizes.
//
// Expected shape (paper): at 1% empty only large groups free any blocks; as
// emptiness grows small groups do increasingly well and larger groups bring
// diminishing returns, while write-set size grows with group size. The sweet
// spot is a group size of 10-50.

#include "bench_util.h"
#include "transform/block_transformer.h"

int main() {
  using namespace mainline::bench;
  // The paper processes 500 blocks; the laptop-scale default is smaller
  // (override with MAINLINE_F14_BLOCKS=500 to match the paper).
  const auto num_blocks = static_cast<uint32_t>(EnvInt("MAINLINE_F14_BLOCKS", 100));
  const uint32_t group_sizes[] = {1, 10, 50, 100, 250, 500};

  std::printf("== Figure 14a: blocks freed in one round (%u blocks) ==\n", num_blocks);
  std::printf("%-8s", "%empty");
  for (const uint32_t g : group_sizes) std::printf(" %10u", g);
  std::printf("\n");

  std::vector<std::vector<uint64_t>> write_sets;
  for (const uint32_t empty : {1u, 5u, 10u, 20u, 40u, 60u, 80u}) {
    std::printf("%-8u", empty);
    std::vector<uint64_t> row_write_sets;
    for (const uint32_t group_size : group_sizes) {
      Engine engine;
      auto *table = engine.catalog.GetTable(engine.catalog.CreateTable("t", MicroSchema()));
      PopulateMicroTable(&engine, table, num_blocks, empty);
      auto blocks = table->UnderlyingTable().Blocks();

      mainline::transform::BlockTransformer transformer(&engine.txn_manager, &engine.gc);
      mainline::transform::TransformStats stats;
      uint64_t max_txn_write_set = 0;
      for (size_t i = 0; i < blocks.size(); i += group_size) {
        const size_t end = std::min(blocks.size(), i + group_size);
        std::vector<mainline::storage::RawBlock *> group(blocks.begin() + i,
                                                         blocks.begin() + end);
        const uint64_t before = stats.write_set_size;
        transformer.CompactGroup(&table->UnderlyingTable(), group, &stats, nullptr);
        // One transaction per group: track the largest write-set (14b).
        max_txn_write_set = std::max(max_txn_write_set, stats.write_set_size - before);
      }
      engine.gc.FullGC();
      std::printf(" %10lu", static_cast<unsigned long>(stats.blocks_freed));
      row_write_sets.push_back(max_txn_write_set);
    }
    write_sets.push_back(std::move(row_write_sets));
    std::printf("\n");
  }

  std::printf("\n== Figure 14b: write-set size per compacting transaction (#ops, max) ==\n");
  std::printf("%-8s", "%empty");
  for (const uint32_t g : group_sizes) std::printf(" %10u", g);
  std::printf("\n");
  const uint32_t empties[] = {1, 5, 10, 20, 40, 60, 80};
  for (size_t e = 0; e < write_sets.size(); e++) {
    std::printf("%-8u", empties[e]);
    for (const uint64_t ws : write_sets[e]) std::printf(" %10lu", static_cast<unsigned long>(ws));
    std::printf("\n");
  }
  return 0;
}
