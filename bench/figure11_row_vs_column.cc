// Figure 11: raw storage speed, row-store vs column-store, varying the
// number of attributes affected. The row-store is simulated by declaring a
// single large column holding all attributes contiguously, exactly as the
// paper does. Inserts write all attributes of the tuple; updates write the
// given number of attributes.
//
// Expected shape (paper): no large difference; column-store wins updates when
// few attributes are touched (smaller footprint); the gap never exceeds ~40%.

#include "bench_util.h"
#include "common/rand_util.h"
#include "storage/data_table.h"

namespace mainline::bench {
namespace {

constexpr uint64_t kOpsDefault = 1000000;

storage::BlockLayout RowLayout(uint16_t num_attrs) {
  return storage::BlockLayout({{static_cast<uint16_t>(num_attrs * 8), false}});
}

storage::BlockLayout ColumnLayout(uint16_t num_attrs) {
  std::vector<storage::ColumnSpec> specs(num_attrs, storage::ColumnSpec{8, false});
  return storage::BlockLayout(specs);
}

/// Throughput (M op/s) of `ops` inserts into a fresh table with `layout`.
double InsertThroughput(const storage::BlockLayout &layout, uint64_t ops) {
  Engine engine;
  storage::DataTable table(&engine.block_store, layout, storage::layout_version_t(0));
  const auto initializer = storage::ProjectedRowInitializer::CreateFull(layout);
  std::vector<byte> buffer(initializer.ProjectedRowSize() + 8);
  auto *txn = engine.txn_manager.BeginTransaction();
  storage::ProjectedRow *row = initializer.InitializeRow(buffer.data());
  for (uint16_t i = 0; i < row->NumColumns(); i++) {
    std::memset(row->AccessForceNotNull(i), 0xAB, layout.AttrSize(row->ColumnIds()[i]));
  }
  const double secs = TimeSeconds([&] {
    for (uint64_t i = 0; i < ops; i++) table.Insert(txn, *row);
  });
  engine.txn_manager.Commit(txn);
  return static_cast<double>(ops) / secs / 1e6;
}

/// Throughput of `ops` updates touching `attrs_updated` attributes. For the
/// row layout any update rewrites the whole fused column.
double UpdateThroughput(const storage::BlockLayout &layout, uint16_t attrs_updated,
                        bool row_store, uint64_t ops) {
  Engine engine;
  storage::DataTable table(&engine.block_store, layout, storage::layout_version_t(0));
  const auto full = storage::ProjectedRowInitializer::CreateFull(layout);
  std::vector<byte> buffer(full.ProjectedRowSize() + 8);
  // Preload 100k tuples to update.
  constexpr uint32_t kTuples = 100000;
  std::vector<storage::TupleSlot> slots;
  slots.reserve(kTuples);
  {
    auto *txn = engine.txn_manager.BeginTransaction();
    storage::ProjectedRow *row = full.InitializeRow(buffer.data());
    for (uint16_t i = 0; i < row->NumColumns(); i++) {
      std::memset(row->AccessForceNotNull(i), 1, layout.AttrSize(row->ColumnIds()[i]));
    }
    for (uint32_t i = 0; i < kTuples; i++) slots.push_back(table.Insert(txn, *row));
    engine.txn_manager.Commit(txn);
  }
  engine.gc.FullGC();

  // Delta: the fused column for the row-store; `attrs_updated` columns for
  // the column-store.
  std::vector<storage::col_id_t> cols;
  if (row_store) {
    cols.emplace_back(0);
  } else {
    for (uint16_t i = 0; i < attrs_updated; i++) cols.emplace_back(i);
  }
  const auto delta_init = storage::ProjectedRowInitializer::Create(layout, cols);
  std::vector<byte> delta_buffer(delta_init.ProjectedRowSize() + 8);
  storage::ProjectedRow *delta = delta_init.InitializeRow(delta_buffer.data());
  for (uint16_t i = 0; i < delta->NumColumns(); i++) {
    std::memset(delta->AccessForceNotNull(i), 2, layout.AttrSize(delta->ColumnIds()[i]));
  }

  common::Xorshift rng(5);
  auto *txn = engine.txn_manager.BeginTransaction();
  const double secs = TimeSeconds([&] {
    for (uint64_t i = 0; i < ops; i++) {
      table.Update(txn, slots[rng.Uniform(0, kTuples - 1)], *delta);
    }
  });
  engine.txn_manager.Commit(txn);
  engine.gc.FullGC();
  return static_cast<double>(ops) / secs / 1e6;
}

}  // namespace
}  // namespace mainline::bench

int main() {
  using namespace mainline::bench;
  const auto ops = static_cast<uint64_t>(EnvInt("MAINLINE_F11_OPS", kOpsDefault));
  std::printf("== Figure 11: row vs column raw storage speed (%lu ops, M op/s) ==\n",
              static_cast<unsigned long>(ops));
  std::printf("%-8s %12s %12s %12s %12s\n", "#attrs", "row-insert", "col-insert",
              "row-update", "col-update");
  for (const uint16_t attrs : {1, 2, 4, 8, 16, 32, 64}) {
    const double row_insert = InsertThroughput(RowLayout(attrs), ops);
    const double col_insert = InsertThroughput(ColumnLayout(attrs), ops);
    const double row_update = UpdateThroughput(RowLayout(attrs), attrs, true, ops);
    const double col_update = UpdateThroughput(ColumnLayout(attrs), attrs, false, ops);
    std::printf("%-8u %12.2f %12.2f %12.2f %12.2f\n", attrs, row_insert, col_insert,
                row_update, col_update);
  }
  return 0;
}
