// Figure 1: data transformation costs — time to move a TPC-H LINEITEM table
// from the OLTP system into an analytics tool's columnar memory, comparing:
//
//   In-Memory : data already in the analytics runtime's memory, landed via
//               the Arrow-native zero-copy path (the theoretical best case)
//   CSV       : export to a CSV file on disk, then parse it back
//   Row wire  : PostgreSQL-style row protocol over a connection ("ODBC")
//
// Expected shape (paper, SF10): In-Memory ~8s, CSV ~284s, ODBC ~1380s — i.e.
// the textual/row paths are orders of magnitude slower, with query processing
// itself a negligible fraction.

#include <fstream>

#include "arrowlite/csv.h"
#include "bench_util.h"
#include "export/protocols.h"
#include "transform/block_transformer.h"
#include "workload/tpch/lineitem.h"

int main() {
  using namespace mainline;
  using namespace mainline::bench;
  // The paper uses SF10 (60M rows); override with MAINLINE_F1_ROWS.
  const auto rows = static_cast<uint64_t>(EnvInt("MAINLINE_F1_ROWS", 1000000));

  Engine engine;
  std::printf("== Figure 1: loading LINEITEM (%lu rows) into an analytics tool ==\n",
              static_cast<unsigned long>(rows));
  catalog::SqlTable *table =
      workload::tpch::GenerateLineItem(&engine.catalog, &engine.txn_manager, rows);
  engine.gc.FullGC();

  // Freeze everything: the table is cold, as in the paper's warmed setup.
  transform::BlockTransformer transformer(&engine.txn_manager, &engine.gc);
  transformer.ProcessGroup(&table->UnderlyingTable(), table->UnderlyingTable().Blocks(),
                           nullptr);

  const uint64_t capacity = (table->UnderlyingTable().NumBlocks() + 4) * (8ull << 20);

  // (1) In-Memory: Arrow-native zero-copy landing.
  double in_memory_secs;
  {
    exporter::ClientBuffer client(capacity);
    exporter::ArrowFlightExporter flight(&client);
    const auto result = flight.Export(table, &engine.txn_manager);
    in_memory_secs = static_cast<double>(result.micros) / 1e6;
  }

  // (2) CSV: write a CSV file, then parse it back into columnar arrays.
  double csv_export_secs, csv_load_secs;
  {
    exporter::ClientBuffer client(capacity);
    exporter::ArrowFlightExporter flight(&client);
    flight.Export(table, &engine.txn_manager);
    const auto &batches = flight.ClientBatches();

    csv_export_secs = TimeSeconds([&] {
      std::ofstream out("/tmp/mainline_lineitem.csv");
      for (size_t i = 0; i < batches.size(); i++) {
        arrowlite::Csv::WriteBatch(*batches[i], &out, /*header=*/i == 0);
      }
    });
    csv_load_secs = TimeSeconds([&] {
      std::ifstream in("/tmp/mainline_lineitem.csv");
      auto batch = arrowlite::Csv::ReadBatch(batches[0]->schema(), &in);
      if (batch == nullptr) std::abort();
    });
    std::remove("/tmp/mainline_lineitem.csv");
  }

  // (3) Row wire protocol ("ODBC" path): per-row text serialization + parse.
  double odbc_secs;
  {
    exporter::ClientBuffer client(capacity * 2);
    exporter::PostgresWireExporter pg(&client);
    const auto result = pg.Export(table, &engine.txn_manager);
    odbc_secs = static_cast<double>(result.micros) / 1e6;
  }

  std::printf("%-24s %10.2f s\n", "In-Memory (Arrow)", in_memory_secs);
  std::printf("%-24s %10.2f s  (export %.2f s + load %.2f s)\n", "CSV",
              csv_export_secs + csv_load_secs, csv_export_secs, csv_load_secs);
  std::printf("%-24s %10.2f s\n", "Row wire protocol", odbc_secs);
  return 0;
}
