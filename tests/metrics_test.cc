#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "catalog/catalog.h"
#include "common/worker_pool.h"
#include "workload/tpch/query_runner.h"
#include "workload/tpch/tpch_queries.h"
#include "gc/garbage_collector.h"
#include "metrics/engine_metrics.h"
#include "metrics/metrics_registry.h"
#include "transform/access_observer.h"
#include "transform/block_transformer.h"
#include "transform/transform_pipeline.h"
#include "workload/tpch/customer.h"
#include "workload/tpch/lineitem.h"
#include "workload/tpch/orders.h"

namespace mainline {

using workload::ExecMode;
using workload::QueryRunner;
using metrics::Counter;
using metrics::Gauge;
using metrics::Histogram;
using metrics::HistogramData;
using metrics::MetricsRegistry;
using metrics::MetricsSnapshot;
using storage::BlockState;
using transform::GatherMode;
namespace op = execution::op;
namespace tpch = workload::tpch;

/// Unit coverage of the sharded metrics primitives against a private
/// registry: the concurrent hammer must land exactly on the serial sum, the
/// snapshot/delta algebra must hold, and histogram bucketing must respect
/// its inclusive upper bounds.
TEST(MetricsRegistryTest, ConcurrentCounterHammerEqualsSerialSum) {
  MetricsRegistry registry(true);
  Counter *counter = registry.RegisterCounter("test.hammer");

  constexpr uint32_t kThreads = 8;
  constexpr uint64_t kAddsPerThread = 100000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (uint32_t t = 0; t < kThreads; t++) {
    threads.emplace_back([counter, t] {
      for (uint64_t i = 0; i < kAddsPerThread; i++) counter->Add(1 + t % 3);
    });
  }
  for (std::thread &thread : threads) thread.join();

  uint64_t expected = 0;
  for (uint32_t t = 0; t < kThreads; t++) expected += kAddsPerThread * (1 + t % 3);
  EXPECT_EQ(counter->Value(), expected);
  EXPECT_EQ(registry.Snapshot().counters.at("test.hammer"), expected);
}

TEST(MetricsRegistryTest, RegistrationIsIdempotentByName) {
  MetricsRegistry registry(true);
  Counter *a = registry.RegisterCounter("test.once");
  Counter *b = registry.RegisterCounter("test.once");
  EXPECT_EQ(a, b);
  a->Add(2);
  b->Add(3);
  EXPECT_EQ(a->Value(), 5u);

  Gauge *g1 = registry.RegisterGauge("test.gauge");
  EXPECT_EQ(g1, registry.RegisterGauge("test.gauge"));

  Histogram *h1 = registry.RegisterHistogram("test.hist", {10, 20});
  // Re-registration returns the existing handle; the first bounds stand.
  Histogram *h2 = registry.RegisterHistogram("test.hist", {999});
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(h2->Bounds().size(), 2u);
}

TEST(MetricsRegistryTest, DisabledRegistryDropsUpdates) {
  MetricsRegistry registry(false);
  EXPECT_FALSE(registry.Enabled());
  Counter *counter = registry.RegisterCounter("test.off");
  Gauge *gauge = registry.RegisterGauge("test.off_gauge");
  Histogram *hist = registry.RegisterHistogram("test.off_hist", {100});

  counter->Add(7);
  gauge->Set(7);
  hist->Observe(7);
  EXPECT_EQ(counter->Value(), 0u);
  EXPECT_EQ(gauge->Value(), 0);
  EXPECT_EQ(hist->Value().total, 0u);

  // Handles stay valid across re-enable; updates start counting again.
  registry.SetEnabled(true);
  counter->Add(7);
  gauge->Add(-3);
  hist->Observe(7);
  EXPECT_EQ(counter->Value(), 7u);
  EXPECT_EQ(gauge->Value(), -3);
  EXPECT_EQ(hist->Value().total, 1u);
}

TEST(MetricsRegistryTest, HistogramBucketBoundariesAreInclusive) {
  MetricsRegistry registry(true);
  Histogram *hist = registry.RegisterHistogram("test.bounds", {10, 100, 1000});

  // On, below, and above each inclusive upper bound.
  for (const uint64_t value : {0ull, 10ull, 11ull, 100ull, 101ull, 1000ull, 1001ull, 50000ull}) {
    hist->Observe(value);
  }

  const HistogramData data = hist->Value();
  ASSERT_EQ(data.bounds.size(), 3u);
  ASSERT_EQ(data.counts.size(), 4u);  // three buckets + overflow
  EXPECT_EQ(data.counts[0], 2u);      // 0, 10
  EXPECT_EQ(data.counts[1], 2u);      // 11, 100
  EXPECT_EQ(data.counts[2], 2u);      // 101, 1000
  EXPECT_EQ(data.counts[3], 2u);      // 1001, 50000 overflow
  EXPECT_EQ(data.total, 8u);
  EXPECT_EQ(data.sum, 0u + 10 + 11 + 100 + 101 + 1000 + 1001 + 50000);
}

/// ValueAtQuantile against hand-computed oracles. The documented rule: rank
/// = ceil(q * total) clamped to [1, total]; the answer interpolates linearly
/// inside the winning bucket between its exclusive lower bound (previous
/// bound, or 0) and its inclusive upper bound by the fraction of the
/// bucket's count the rank consumes.
TEST(MetricsRegistryTest, ValueAtQuantileSingleBucketInterpolates) {
  MetricsRegistry registry(true);
  Histogram *hist = registry.RegisterHistogram("test.q_single", {100});
  for (int i = 0; i < 4; i++) hist->Observe(50);

  const HistogramData data = hist->Value();
  // rank = ceil(q*4): 1, 2, 3, 4 -> fractions 1/4 .. 4/4 of the [0, 100] bucket.
  EXPECT_DOUBLE_EQ(data.ValueAtQuantile(0.25), 25.0);
  EXPECT_DOUBLE_EQ(data.ValueAtQuantile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(data.ValueAtQuantile(0.75), 75.0);
  EXPECT_DOUBLE_EQ(data.ValueAtQuantile(1.0), 100.0);
  // Out-of-range q clamps: below 0 behaves like the minimum rank, above 1
  // like the maximum.
  EXPECT_DOUBLE_EQ(data.ValueAtQuantile(-3.0), 25.0);
  EXPECT_DOUBLE_EQ(data.ValueAtQuantile(7.0), 100.0);
}

TEST(MetricsRegistryTest, ValueAtQuantileWalksBuckets) {
  MetricsRegistry registry(true);
  // Uniform 1..100 against quartile bounds: every in-range quantile answer
  // must land exactly on the true percentile of the underlying stream.
  Histogram *hist = registry.RegisterHistogram("test.q_uniform", {25, 50, 75, 100});
  for (uint64_t v = 1; v <= 100; v++) hist->Observe(v);

  const HistogramData data = hist->Value();
  EXPECT_DOUBLE_EQ(data.ValueAtQuantile(0.01), 1.0);
  EXPECT_DOUBLE_EQ(data.ValueAtQuantile(0.25), 25.0);
  EXPECT_DOUBLE_EQ(data.ValueAtQuantile(0.50), 50.0);
  EXPECT_DOUBLE_EQ(data.ValueAtQuantile(0.62), 62.0);
  EXPECT_DOUBLE_EQ(data.ValueAtQuantile(0.95), 95.0);
  EXPECT_DOUBLE_EQ(data.ValueAtQuantile(0.99), 99.0);
}

TEST(MetricsRegistryTest, ValueAtQuantileEdgeCases) {
  MetricsRegistry registry(true);
  // Empty histogram: no rank to find, answer is 0.
  Histogram *empty = registry.RegisterHistogram("test.q_empty", {10, 20});
  EXPECT_DOUBLE_EQ(empty->Value().ValueAtQuantile(0.5), 0.0);

  // Observations past the last bound land in the unbounded overflow bucket;
  // the reported quantile saturates at the last finite bound rather than
  // inventing an upper edge.
  Histogram *overflow = registry.RegisterHistogram("test.q_overflow", {10});
  overflow->Observe(50);
  overflow->Observe(60);
  EXPECT_DOUBLE_EQ(overflow->Value().ValueAtQuantile(0.5), 10.0);
  EXPECT_DOUBLE_EQ(overflow->Value().ValueAtQuantile(1.0), 10.0);

  // Snapshot-level lookup: present name resolves through the same rule,
  // absent name answers 0.
  Histogram *named = registry.RegisterHistogram("test.q_named", {100});
  named->Observe(1);
  named->Observe(1);
  const MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_DOUBLE_EQ(snapshot.ValueAtQuantile("test.q_named", 0.5), 50.0);
  EXPECT_DOUBLE_EQ(snapshot.ValueAtQuantile("test.q_missing", 0.5), 0.0);
}

TEST(MetricsRegistryTest, ConcurrentHistogramMatchesSerialTotals) {
  MetricsRegistry registry(true);
  Histogram *hist = registry.RegisterHistogram("test.conc_hist", {4, 16});

  constexpr uint32_t kThreads = 8;
  constexpr uint64_t kObsPerThread = 50000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (uint32_t t = 0; t < kThreads; t++) {
    threads.emplace_back([hist] {
      for (uint64_t i = 0; i < kObsPerThread; i++) hist->Observe(i % 32);
    });
  }
  for (std::thread &thread : threads) thread.join();

  // Serial oracle over the same value stream, once.
  uint64_t expect_counts[3] = {0, 0, 0};
  uint64_t expect_sum = 0;
  for (uint64_t i = 0; i < kObsPerThread; i++) {
    const uint64_t value = i % 32;
    expect_counts[value <= 4 ? 0 : value <= 16 ? 1 : 2]++;
    expect_sum += value;
  }

  const HistogramData data = hist->Value();
  ASSERT_EQ(data.counts.size(), 3u);
  EXPECT_EQ(data.counts[0], expect_counts[0] * kThreads);
  EXPECT_EQ(data.counts[1], expect_counts[1] * kThreads);
  EXPECT_EQ(data.counts[2], expect_counts[2] * kThreads);
  EXPECT_EQ(data.total, kObsPerThread * kThreads);
  EXPECT_EQ(data.sum, expect_sum * kThreads);
}

TEST(MetricsRegistryTest, SnapshotDeltaSemantics) {
  MetricsRegistry registry(true);
  Counter *counter = registry.RegisterCounter("test.delta_counter");
  Gauge *gauge = registry.RegisterGauge("test.delta_gauge");
  Histogram *hist = registry.RegisterHistogram("test.delta_hist", {10});

  counter->Add(5);
  gauge->Set(100);
  hist->Observe(3);
  hist->Observe(30);
  const MetricsSnapshot before = registry.Snapshot();

  counter->Add(7);
  gauge->Set(42);
  hist->Observe(4);
  Counter *late = registry.RegisterCounter("test.delta_late");
  late->Add(9);
  const MetricsSnapshot after = registry.Snapshot();

  const MetricsSnapshot delta = after.Delta(before);
  // Counters subtract; names missing from the earlier snapshot count from 0.
  EXPECT_EQ(delta.counters.at("test.delta_counter"), 7u);
  EXPECT_EQ(delta.counters.at("test.delta_late"), 9u);
  // Gauges are instantaneous: the later reading stands.
  EXPECT_EQ(delta.gauges.at("test.delta_gauge"), 42);
  // Histogram buckets and sums subtract.
  const HistogramData &hist_delta = delta.histograms.at("test.delta_hist");
  ASSERT_EQ(hist_delta.counts.size(), 2u);
  EXPECT_EQ(hist_delta.counts[0], 1u);  // the new Observe(4)
  EXPECT_EQ(hist_delta.counts[1], 0u);
  EXPECT_EQ(hist_delta.total, 1u);
  EXPECT_EQ(hist_delta.sum, 4u);
}

TEST(MetricsRegistryTest, ToJsonIsDeterministicAndWellFormed) {
  MetricsRegistry registry(true);
  registry.RegisterCounter("b.counter")->Add(2);
  registry.RegisterCounter("a.counter")->Add(1);
  registry.RegisterGauge("z.gauge")->Set(-5);
  registry.RegisterHistogram("m.hist", {10, 20})->Observe(15);

  const std::string json = registry.Snapshot().ToJson();
  EXPECT_EQ(json, registry.Snapshot().ToJson());  // stable across snapshots
  // std::map keys render in sorted order.
  EXPECT_LT(json.find("\"a.counter\":1"), json.find("\"b.counter\":2"));
  EXPECT_NE(json.find("\"gauges\":{\"z.gauge\":-5}"), std::string::npos);
  EXPECT_NE(
      json.find("\"m.hist\":{\"bounds\":[10,20],\"counts\":[0,1,0],\"total\":1,\"sum\":15}"),
      std::string::npos);
  // Balanced braces/brackets — cheap structural sanity without a parser.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

/// The engine's well-known handles resolve against the global registry and
/// land in its snapshot under their dotted names.
TEST(MetricsRegistryTest, EngineHandlesResolveInGlobalRegistry) {
  // Touch every handle group first: registration is lazy, and this test may
  // run before any engine code has.
  metrics::Storage();
  metrics::Txn();
  metrics::Gc();
  metrics::Transform();
  metrics::Pool();
  metrics::Scan();
  const MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  for (const char *name : {"storage.inserts", "storage.write_write_conflicts", "txn.commits",
                           "txn.aborts", "gc.txns_unlinked", "transform.blocks_frozen",
                           "pool.tasks_run", "scan.rows"}) {
    EXPECT_TRUE(snapshot.counters.count(name) == 1)
        << "counter " << name << " not registered globally";
  }
  EXPECT_EQ(snapshot.gauges.count("transform.observer_queue_depth"), 1u);
  EXPECT_EQ(snapshot.gauges.count("gc.backlog"), 1u);
  EXPECT_EQ(snapshot.histograms.count("pool.queue_wait_us"), 1u);
  EXPECT_EQ(snapshot.histograms.count("transform.pass_us"), 1u);
  EXPECT_NE(metrics::Storage().inserts, nullptr);
  EXPECT_EQ(metrics::Storage().inserts, metrics::Storage().inserts);
}

/// End-to-end profiling coverage over real TPC-H plans: a profiled run must
/// return bit-identical results to an unprofiled one (the acceptance matrix:
/// Q6/Q12, 1 and 4 workers, hot and frozen blocks), and the recorded profile
/// must account for every row the scan produced.
class MetricsProfilingTest : public ::testing::Test {
 protected:
  MetricsProfilingTest()
      : block_store_(2000, 100),
        buffer_pool_(10000000, 1000),
        catalog_(&block_store_),
        txn_manager_(&buffer_pool_, true, nullptr),
        gc_(&txn_manager_),
        observer_(/*cold_threshold=*/2),
        transformer_(&txn_manager_, &gc_, GatherMode::kDictionaryCompression),
        pipeline_(&observer_, &transformer_, /*group_size=*/4) {
    gc_.SetAccessObserver(&observer_);
  }

  ~MetricsProfilingTest() override { gc_.SetAccessObserver(nullptr); }

  static uint64_t RowsForBlocks(uint64_t blocks) {
    const uint32_t slots = tpch::LineItemSchema().ToBlockLayout().NumSlots();
    return blocks * slots + slots / 2;
  }

  void GenerateTables(uint64_t rows) {
    const uint64_t customers = std::max<uint64_t>(rows / 6, 200);
    lineitem_ = tpch::GenerateLineItem(&catalog_, &txn_manager_, rows, /*seed=*/7,
                                       /*batch_size=*/4096);
    orders_ = tpch::GenerateOrders(&catalog_, &txn_manager_, rows / 3, /*seed=*/11,
                                   /*batch_size=*/4096, "orders",
                                   /*num_customers=*/customers + customers / 2);
    customer_ = tpch::GenerateCustomer(&catalog_, &txn_manager_, customers, /*seed=*/17,
                                       /*batch_size=*/4096);
    gc_.FullGC();
  }

  void FreezeAll() {
    gc_.FullGC();
    for (catalog::SqlTable *table : {lineitem_, orders_, customer_}) {
      pipeline_.EnqueueTable(&table->UnderlyingTable());
    }
    pipeline_.RunOnce();
    for (catalog::SqlTable *table : {lineitem_, orders_, customer_}) {
      for (storage::RawBlock *block : table->UnderlyingTable().Blocks()) {
        ASSERT_EQ(block->controller.GetState(), BlockState::kFrozen);
      }
    }
  }

  /// Q6 and Q12 at `num_threads`, unprofiled then profiled, expecting
  /// bit-identical results and a self-consistent profile.
  void ExpectProfiledBitExact(uint32_t num_threads) {
    QueryRunner runner(&txn_manager_, num_threads);

    runner.SetProfiling(false);
    const auto q6_plain = runner.RunQ6(lineitem_, {}, ExecMode::kParallel);
    const auto q12_plain = runner.RunQ12(orders_, lineitem_, {}, ExecMode::kParallel);
    EXPECT_TRUE(runner.LastProfile().pipelines.empty());

    runner.SetProfiling(true);
    EXPECT_TRUE(runner.Profiling());
    const auto q6_prof = runner.RunQ6(lineitem_, {}, ExecMode::kParallel);
    EXPECT_EQ(q6_prof.revenue, q6_plain.revenue)
        << "profiling changed Q6's answer at " << num_threads << " threads";
    EXPECT_EQ(q6_prof.stats.rows, q6_plain.stats.rows);

    // Q6 is one pipeline: Filter -> Aggregate; the filter saw every scanned
    // row and the aggregate only what survived.
    const op::PlanProfile &q6_profile = runner.LastProfile();
    ASSERT_EQ(q6_profile.pipelines.size(), 1u);
    const op::PipelineProfile &q6_pipe = q6_profile.pipelines[0];
    EXPECT_EQ(q6_pipe.scan.rows, q6_plain.stats.rows);
    EXPECT_GT(q6_pipe.num_blocks, 0u);
    ASSERT_EQ(q6_pipe.operators.size(), 2u);
    EXPECT_EQ(q6_pipe.operators[0].label, "Filter");
    EXPECT_EQ(q6_pipe.operators[1].label, "Aggregate");
    EXPECT_EQ(q6_pipe.operators[0].rows_in, q6_pipe.scan.rows);
    EXPECT_EQ(q6_pipe.operators[0].rows_out, q6_pipe.operators[1].rows_in);
    EXPECT_LE(q6_pipe.operators[0].rows_out, q6_pipe.operators[0].rows_in);
    EXPECT_EQ(q6_pipe.operators[1].rows_out, 0u);  // sink
    EXPECT_GT(q6_pipe.operators[0].chunks, 0u);

    const auto q12_prof = runner.RunQ12(orders_, lineitem_, {}, ExecMode::kParallel);
    ASSERT_EQ(q12_prof.rows.size(), q12_plain.rows.size())
        << "profiling changed Q12's answer at " << num_threads << " threads";
    for (size_t i = 0; i < q12_prof.rows.size(); i++) {
      EXPECT_TRUE(q12_prof.rows[i] == q12_plain.rows[i])
          << "Q12 row " << i << " diverged under profiling at " << num_threads << " threads";
    }

    // Q12 is two pipelines: the ORDERS join build, then the LINEITEM probe.
    const op::PlanProfile &q12_profile = runner.LastProfile();
    ASSERT_EQ(q12_profile.pipelines.size(), 2u);
    ASSERT_FALSE(q12_profile.pipelines[0].operators.empty());
    EXPECT_EQ(q12_profile.pipelines[0].operators.back().label, "HashJoinBuild");
    bool saw_probe = false;
    for (const op::OperatorProfile &record : q12_profile.pipelines[1].operators) {
      saw_probe |= record.label == "HashJoinProbe";
    }
    EXPECT_TRUE(saw_probe) << "Q12's probe pipeline lost its HashJoinProbe record";

    // Toggling back off both stops recording and clears the stale record.
    runner.SetProfiling(false);
    const auto q6_again = runner.RunQ6(lineitem_, {}, ExecMode::kParallel);
    EXPECT_EQ(q6_again.revenue, q6_plain.revenue);
  }

  storage::BlockStore block_store_;
  storage::RecordBufferSegmentPool buffer_pool_;
  catalog::Catalog catalog_;
  transaction::TransactionManager txn_manager_;
  gc::GarbageCollector gc_;
  transform::AccessObserver observer_;
  transform::BlockTransformer transformer_;
  transform::TransformPipeline pipeline_;
  catalog::SqlTable *lineitem_ = nullptr;
  catalog::SqlTable *orders_ = nullptr;
  catalog::SqlTable *customer_ = nullptr;
};

TEST_F(MetricsProfilingTest, ProfiledRunsAreBitExactHotAndFrozen) {
  GenerateTables(RowsForBlocks(2));

  // Hot blocks first, then the same matrix over frozen (Arrow) blocks.
  for (const uint32_t threads : {1u, 4u}) ExpectProfiledBitExact(threads);
  FreezeAll();
  for (const uint32_t threads : {1u, 4u}) ExpectProfiledBitExact(threads);
}

/// EXPLAIN output for Q3's three-pipeline plan names every operator and
/// carries per-operator row counts; the JSON form carries the same record.
TEST_F(MetricsProfilingTest, ExplainReportsQ3Operators) {
  GenerateTables(RowsForBlocks(1));
  FreezeAll();

  QueryRunner runner(&txn_manager_, 2);
  runner.SetProfiling(true);
  const auto plain = [&] {
    QueryRunner reference(&txn_manager_, 2);
    return reference.RunQ3(customer_, orders_, lineitem_, {}, ExecMode::kParallel);
  }();
  const auto profiled = runner.RunQ3(customer_, orders_, lineitem_, {}, ExecMode::kParallel);
  ASSERT_EQ(profiled.rows.size(), plain.rows.size());
  for (size_t i = 0; i < profiled.rows.size(); i++) {
    EXPECT_TRUE(profiled.rows[i] == plain.rows[i]) << "Q3 row " << i << " diverged";
  }

  const op::PlanProfile &profile = runner.LastProfile();
  ASSERT_EQ(profile.pipelines.size(), 3u);
  uint64_t total_scanned = 0;
  for (const op::PipelineProfile &pipe : profile.pipelines) {
    EXPECT_NE(pipe.source.find("table#"), std::string::npos);
    total_scanned += pipe.scan.rows;
  }
  EXPECT_EQ(total_scanned, profiled.stats.rows);

  const std::string explain = profile.ToString();
  for (const char *label :
       {"Pipeline", "HashJoinBuild", "HashJoinProbe", "Filter", "TopK", "rows_in="}) {
    EXPECT_NE(explain.find(label), std::string::npos)
        << "EXPLAIN output missing \"" << label << "\":\n"
        << explain;
  }

  const std::string json = profile.ToJson();
  for (const char *key : {"\"pipelines\":", "\"operators\":", "\"label\":\"HashJoinProbe\"",
                          "\"rows_in\":", "\"inclusive_ns\":", "\"scan\":"}) {
    EXPECT_NE(json.find(key), std::string::npos)
        << "profile JSON missing " << key << ":\n"
        << json;
  }
}

/// A full query pass moves the global engine counters: the scan counters
/// advance by exactly the rows read, and txn begins/commits advance with the
/// runner's transactions. Deltas, not absolutes — other tests in this binary
/// share the global registry.
TEST_F(MetricsProfilingTest, EngineCountersAdvanceAcrossAQuery) {
  GenerateTables(RowsForBlocks(1));
  MetricsRegistry &registry = MetricsRegistry::Global();
  if (!registry.Enabled()) return;  // MAINLINE_METRICS=0 disables collection

  const MetricsSnapshot before = registry.Snapshot();
  QueryRunner runner(&txn_manager_, 2);
  const auto q6 = runner.RunQ6(lineitem_, {}, ExecMode::kParallel);
  const MetricsSnapshot delta = registry.Snapshot().Delta(before);

  EXPECT_EQ(delta.counters.at("scan.rows"), q6.stats.rows);
  EXPECT_EQ(delta.counters.at("scan.morsel_scans"), 1u);
  EXPECT_EQ(delta.counters.at("txn.begins"), 1u);
  EXPECT_EQ(delta.counters.at("txn.commits"), 1u);
  EXPECT_GT(delta.counters.at("pool.tasks_run"), 0u);
  EXPECT_GT(delta.histograms.at("pool.queue_wait_us").total, 0u);

  // Generation ran before `before`, so storage counters sit still here...
  EXPECT_EQ(delta.counters.at("storage.inserts"), 0u);
  // ...but the lifetime reading remembers every generated row.
  EXPECT_GE(before.counters.at("storage.inserts"),
            static_cast<uint64_t>(RowsForBlocks(1)));
}

}  // namespace mainline
