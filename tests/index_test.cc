#include <gtest/gtest.h>

#include <map>
#include <thread>
#include <vector>

#include "common/rand_util.h"
#include "index/bplus_tree.h"
#include "index/hash_index.h"

namespace mainline {

using index::BPlusTree;
using index::HashIndex;
using index::IndexKey;
using storage::TupleSlot;

namespace {
IndexKey Key(int64_t k) { return IndexKey().AddSigned(k); }
TupleSlot Slot(uint64_t v) { return TupleSlot::FromRawBytes(v << 20); }
}  // namespace

TEST(IndexKeyTest, OrderPreservingEncodings) {
  // Signed ints across the negative/positive boundary.
  EXPECT_LT(Key(-5), Key(-1));
  EXPECT_LT(Key(-1), Key(0));
  EXPECT_LT(Key(0), Key(1));
  EXPECT_LT(Key(1), Key(INT64_MAX));
  EXPECT_LT(Key(INT64_MIN), Key(-1));
  // Unsigned big-endian.
  EXPECT_LT(IndexKey().AddUnsigned<uint32_t>(1), IndexKey().AddUnsigned<uint32_t>(256));
  // Strings pad with zeros; composite ordering is field-major.
  EXPECT_LT(IndexKey().AddString("ABLE", 8).AddSigned<int32_t>(9),
            IndexKey().AddString("BAR", 8).AddSigned<int32_t>(1));
  EXPECT_LT(IndexKey().AddString("BAR", 8), IndexKey().AddString("BARN", 8));
}

/// Model-based test: a B+-tree must agree with std::map over a random
/// workload of inserts, deletes, lookups and range scans.
TEST(BPlusTreeTest, AgreesWithStdMap) {
  BPlusTree tree;
  std::map<int64_t, uint64_t> model;
  common::Xorshift rng(1234);

  for (int op = 0; op < 50000; op++) {
    const auto k = static_cast<int64_t>(rng.Uniform(0, 5000));
    switch (rng.Uniform(0, 3)) {
      case 0: {  // insert
        const bool inserted = tree.Insert(Key(k), Slot(static_cast<uint64_t>(op)));
        const bool model_inserted =
            model.emplace(k, static_cast<uint64_t>(op)).second;
        ASSERT_EQ(inserted, model_inserted) << "insert mismatch at key " << k;
        break;
      }
      case 1: {  // delete
        ASSERT_EQ(tree.Delete(Key(k)), model.erase(k) > 0) << "delete mismatch at " << k;
        break;
      }
      case 2: {  // point lookup
        TupleSlot found;
        const auto it = model.find(k);
        ASSERT_EQ(tree.Find(Key(k), &found), it != model.end());
        if (it != model.end()) {
          ASSERT_EQ(found, Slot(it->second));
        }
        break;
      }
      default: {  // range scan
        const int64_t lo = k, hi = k + static_cast<int64_t>(rng.Uniform(0, 200));
        std::vector<TupleSlot> scan;
        tree.ScanAscending(Key(lo), Key(hi), 0, &scan);
        std::vector<TupleSlot> expected;
        for (auto it = model.lower_bound(lo); it != model.end() && it->first <= hi; ++it) {
          expected.push_back(Slot(it->second));
        }
        ASSERT_EQ(scan, expected) << "scan mismatch for [" << lo << ", " << hi << "]";
      }
    }
  }
  EXPECT_EQ(tree.Size(), model.size());
}

TEST(BPlusTreeTest, DescendingScanWithLimit) {
  BPlusTree tree;
  for (int64_t i = 0; i < 1000; i++) tree.Insert(Key(i), Slot(static_cast<uint64_t>(i)));
  std::vector<TupleSlot> result;
  tree.ScanDescending(Key(100), Key(200), 3, &result);
  ASSERT_EQ(result.size(), 3u);
  EXPECT_EQ(result[0], Slot(200));
  EXPECT_EQ(result[1], Slot(199));
  EXPECT_EQ(result[2], Slot(198));
}

TEST(BPlusTreeTest, GrowsPastManySplits) {
  BPlusTree tree;
  constexpr int64_t kKeys = 200000;
  for (int64_t i = 0; i < kKeys; i++) {
    ASSERT_TRUE(tree.Insert(Key(i * 7 % kKeys), Slot(static_cast<uint64_t>(i))));
  }
  EXPECT_EQ(tree.Size(), static_cast<uint64_t>(kKeys));
  EXPECT_GT(tree.Height(), 2u);
  // Everything findable.
  common::Xorshift rng(9);
  for (int i = 0; i < 1000; i++) {
    TupleSlot found;
    ASSERT_TRUE(tree.Find(Key(static_cast<int64_t>(rng.Uniform(0, kKeys - 1))), &found));
  }
}

/// Concurrency: disjoint key ranges inserted in parallel, then everything
/// must be present and ordered; readers scan while writers insert.
TEST(BPlusTreeTest, ConcurrentInsertsAndScans) {
  BPlusTree tree;
  constexpr int kThreads = 8;
  constexpr int64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      for (int64_t i = 0; i < kPerThread; i++) {
        const int64_t k = t * kPerThread + i;
        ASSERT_TRUE(tree.Insert(Key(k), Slot(static_cast<uint64_t>(k))));
      }
    });
  }
  std::atomic<bool> stop{false};
  std::thread scanner([&] {
    while (!stop.load()) {
      std::vector<TupleSlot> result;
      tree.ScanAscending(Key(0), Key(kThreads * kPerThread), 0, &result);
      // Results must be sorted (consistency of leaf chain under splits).
      for (size_t i = 1; i < result.size(); i++) {
        ASSERT_LE(result[i - 1].RawBytes(), result[i].RawBytes());
      }
    }
  });
  for (auto &thread : threads) thread.join();
  stop.store(true);
  scanner.join();

  EXPECT_EQ(tree.Size(), static_cast<uint64_t>(kThreads * kPerThread));
  std::vector<TupleSlot> all;
  tree.ScanAscending(Key(0), Key(kThreads * kPerThread), 0, &all);
  ASSERT_EQ(all.size(), static_cast<size_t>(kThreads * kPerThread));
  for (int64_t i = 0; i < kThreads * kPerThread; i++) {
    ASSERT_EQ(all[static_cast<size_t>(i)], Slot(static_cast<uint64_t>(i)));
  }
}

TEST(HashIndexTest, BasicAndOverwrite) {
  HashIndex idx;
  EXPECT_TRUE(idx.Insert(Key(1), Slot(10)));
  EXPECT_FALSE(idx.Insert(Key(1), Slot(11)));  // duplicate
  idx.InsertOverwrite(Key(1), Slot(12));
  TupleSlot found;
  ASSERT_TRUE(idx.Find(Key(1), &found));
  EXPECT_EQ(found, Slot(12));
  EXPECT_TRUE(idx.Delete(Key(1)));
  EXPECT_FALSE(idx.Delete(Key(1)));
  EXPECT_FALSE(idx.Find(Key(1), &found));
}

TEST(HashIndexTest, ConcurrentMixedOps) {
  HashIndex idx;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      common::Xorshift rng(static_cast<uint64_t>(t));
      for (int i = 0; i < 20000; i++) {
        const auto k = static_cast<int64_t>(t * 100000 + i);
        ASSERT_TRUE(idx.Insert(Key(k), Slot(static_cast<uint64_t>(k))));
        TupleSlot found;
        ASSERT_TRUE(idx.Find(Key(k), &found));
        if (rng.Uniform(0, 1) == 0) {
          ASSERT_TRUE(idx.Delete(Key(k)));
        }
      }
    });
  }
  for (auto &thread : threads) thread.join();
}

}  // namespace mainline
