#include <gtest/gtest.h>

#include <atomic>

#include "catalog/catalog.h"
#include "common/object_pool.h"
#include "gc/garbage_collector.h"
#include "index/bplus_tree.h"
#include "transform/transform_pipeline.h"
#include "workload/row_util.h"

namespace mainline {

// ---------------------------------------------------------------------------
// Deferred actions (the epoch-protection generalization of Section 4.4).
// ---------------------------------------------------------------------------

TEST(DeferredActionTest, RunsOnlyAfterOverlappingTxnsFinish) {
  storage::RecordBufferSegmentPool pool(1000, 100);
  transaction::TransactionManager txn_manager(&pool, true, nullptr);
  gc::GarbageCollector gc(&txn_manager);

  auto *overlapping = txn_manager.BeginTransaction();
  std::atomic<bool> ran{false};
  gc.RegisterDeferredAction([&] { ran.store(true); });

  gc.PerformGarbageCollection();
  gc.PerformGarbageCollection();
  EXPECT_FALSE(ran.load()) << "action must wait for the overlapping transaction";

  txn_manager.Commit(overlapping);
  gc.PerformGarbageCollection();
  EXPECT_TRUE(ran.load());
  gc.FullGC();
}

TEST(DeferredActionTest, ActionsRunInRegistrationOrderAcrossEpochs) {
  storage::RecordBufferSegmentPool pool(1000, 100);
  transaction::TransactionManager txn_manager(&pool, true, nullptr);
  gc::GarbageCollector gc(&txn_manager);
  std::vector<int> order;
  gc.RegisterDeferredAction([&] { order.push_back(1); });
  gc.RegisterDeferredAction([&] { order.push_back(2); });
  gc.FullGC();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
}

// ---------------------------------------------------------------------------
// Object pool.
// ---------------------------------------------------------------------------

TEST(ObjectPoolTest, ReusesAndCapsObjects) {
  storage::RecordBufferSegmentPool pool(2, 1);  // at most 2 live, cache 1
  auto *a = pool.Get();
  auto *b = pool.Get();
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(pool.Get(), nullptr) << "size limit reached";
  pool.Release(a);
  auto *c = pool.Get();
  EXPECT_EQ(c, a) << "released object is reused";
  pool.Release(b);
  pool.Release(c);
}

// ---------------------------------------------------------------------------
// Catalog.
// ---------------------------------------------------------------------------

TEST(CatalogTest, TablesAndIndexesByNameAndOid) {
  storage::BlockStore store(10, 10);
  catalog::Catalog catalog(&store);
  const catalog::Schema schema({{"k", catalog::TypeId::kBigInt}});
  const catalog::table_oid_t oid = catalog.CreateTable("t1", schema);
  EXPECT_NE(catalog.GetTable(oid), nullptr);
  EXPECT_EQ(catalog.GetTable("t1"), catalog.GetTable(oid));
  EXPECT_EQ(catalog.GetTableOid("t1"), oid);
  EXPECT_EQ(catalog.GetTable("missing"), nullptr);
  EXPECT_EQ(catalog.GetTableOid("missing"), catalog::table_oid_t(0));

  catalog.RegisterIndex("t1_pk", oid, std::make_unique<index::BPlusTree>());
  EXPECT_NE(catalog.GetIndex("t1_pk"), nullptr);
  EXPECT_EQ(catalog.GetIndex("nope"), nullptr);
  EXPECT_EQ(catalog.TableMap().size(), 1u);
}

// ---------------------------------------------------------------------------
// Access observer + pipeline: cold detection end to end.
// ---------------------------------------------------------------------------

TEST(AccessObserverTest, DetectsColdBlocksAfterThresholdEpochs) {
  storage::BlockStore store(100, 10);
  storage::RecordBufferSegmentPool pool(100000, 100);
  catalog::Catalog catalog(&store);
  transaction::TransactionManager txn_manager(&pool, true, nullptr);
  gc::GarbageCollector gc(&txn_manager);
  transform::AccessObserver observer(3);
  gc.SetAccessObserver(&observer);

  auto *table = catalog.GetTable(
      catalog.CreateTable("t", catalog::Schema({{"v", catalog::TypeId::kBigInt}})));
  const auto initializer = table->FullInitializer();
  std::vector<byte> buffer(initializer.ProjectedRowSize() + 8);

  auto *txn = txn_manager.BeginTransaction();
  storage::ProjectedRow *row = initializer.InitializeRow(buffer.data());
  workload::Set<int64_t>(row, 0, 1);
  table->Insert(txn, *row);
  txn_manager.Commit(txn);

  gc.PerformGarbageCollection();  // drains the txn, observes the write
  EXPECT_EQ(observer.WatchedBlocks(), 1u);
  EXPECT_TRUE(observer.CollectColdBlocks().empty()) << "not cold yet";

  // Not enough epochs yet.
  gc.PerformGarbageCollection();
  EXPECT_TRUE(observer.CollectColdBlocks().empty());

  // Past the threshold: emitted exactly once, leaves the watch set.
  gc.PerformGarbageCollection();
  gc.PerformGarbageCollection();
  auto cold = observer.CollectColdBlocks();
  ASSERT_EQ(cold.size(), 1u);
  EXPECT_EQ(cold[0].second, &table->UnderlyingTable());
  EXPECT_EQ(observer.WatchedBlocks(), 0u);

  // A new write re-enters the block into the watch set.
  auto *txn2 = txn_manager.BeginTransaction();
  storage::ProjectedRow *row2 = initializer.InitializeRow(buffer.data());
  workload::Set<int64_t>(row2, 0, 2);
  table->Insert(txn2, *row2);
  txn_manager.Commit(txn2);
  gc.PerformGarbageCollection();
  EXPECT_EQ(observer.WatchedBlocks(), 1u);
  gc.SetAccessObserver(nullptr);
  gc.FullGC();
}

TEST(TransformPipelineTest, FreezesColdBlocksEndToEnd) {
  storage::BlockStore store(100, 10);
  storage::RecordBufferSegmentPool pool(100000, 100);
  catalog::Catalog catalog(&store);
  transaction::TransactionManager txn_manager(&pool, true, nullptr);
  gc::GarbageCollector gc(&txn_manager);
  transform::AccessObserver observer(1);
  gc.SetAccessObserver(&observer);

  auto *table = catalog.GetTable(
      catalog.CreateTable("t", catalog::Schema({{"v", catalog::TypeId::kBigInt},
                                                {"s", catalog::TypeId::kVarchar}})));
  const auto initializer = table->FullInitializer();
  std::vector<byte> buffer(initializer.ProjectedRowSize() + 8);
  auto *txn = txn_manager.BeginTransaction();
  for (int64_t i = 0; i < 500; i++) {
    storage::ProjectedRow *row = initializer.InitializeRow(buffer.data());
    workload::Set<int64_t>(row, 0, i);
    workload::SetVarchar(row, 1, "some-longer-string-" + std::to_string(i));
    table->Insert(txn, *row);
  }
  txn_manager.Commit(txn);

  transform::BlockTransformer transformer(&txn_manager, &gc);
  transform::TransformPipeline pipeline(&observer, &transformer, 10);

  // Drive GC epochs past the threshold, then one pipeline pass freezes.
  gc.PerformGarbageCollection();
  gc.PerformGarbageCollection();
  gc.PerformGarbageCollection();
  const uint32_t frozen = pipeline.RunOnce();
  EXPECT_EQ(frozen, table->UnderlyingTable().NumBlocks());
  for (auto *block : table->UnderlyingTable().Blocks()) {
    EXPECT_EQ(block->controller.GetState(), storage::BlockState::kFrozen);
  }
  gc.SetAccessObserver(nullptr);
  gc.FullGC();
}

}  // namespace mainline
