#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/rand_util.h"
#include "gc/garbage_collector.h"
#include "transform/arrow_reader.h"
#include "transform/block_transformer.h"
#include "transform/compaction_planner.h"
#include "workload/row_util.h"

namespace mainline {

using storage::BlockState;
using storage::ProjectedRow;
using storage::TupleSlot;
using transform::BlockTransformer;
using transform::GatherMode;

class TransformTest : public ::testing::TestWithParam<GatherMode> {
 protected:
  TransformTest()
      : block_store_(1000, 100),
        buffer_pool_(1000000, 1000),
        catalog_(&block_store_),
        schema_({{"id", catalog::TypeId::kBigInt},
                 {"name", catalog::TypeId::kVarchar, true},
                 {"score", catalog::TypeId::kInteger}}),
        txn_manager_(&buffer_pool_, true, nullptr),
        gc_(&txn_manager_) {
    table_ = catalog_.GetTable(catalog_.CreateTable("t", schema_));
  }

  /// Insert `n` rows; returns their slots. Values: id=i, name="value-<i>"
  /// (out-of-line for i % 3 != 0, null for i % 7 == 0), score=i*2.
  std::vector<TupleSlot> Populate(int64_t n) {
    auto initializer = table_->FullInitializer();
    std::vector<byte> buffer(initializer.ProjectedRowSize() + 8);
    std::vector<TupleSlot> slots;
    auto *txn = txn_manager_.BeginTransaction();
    for (int64_t i = 0; i < n; i++) {
      ProjectedRow *row = initializer.InitializeRow(buffer.data());
      workload::Set<int64_t>(row, 0, i);
      if (i % 7 == 0) {
        row->SetNull(1);
      } else if (i % 3 == 0) {
        workload::SetVarchar(row, 1, "in" + std::to_string(i % 10));  // inlines
      } else {
        workload::SetVarchar(row, 1, "value-with-a-long-suffix-" + std::to_string(i));
      }
      workload::Set<int32_t>(row, 2, static_cast<int32_t>(i * 2));
      slots.push_back(table_->Insert(txn, *row));
    }
    txn_manager_.Commit(txn);
    return slots;
  }

  void DeleteSlots(const std::vector<TupleSlot> &slots) {
    auto *txn = txn_manager_.BeginTransaction();
    for (const TupleSlot slot : slots) ASSERT_TRUE(table_->Delete(txn, slot));
    txn_manager_.Commit(txn);
  }

  /// Read (visible, id, name-or-"<null>", score) for a slot.
  struct Row {
    bool visible;
    int64_t id;
    std::string name;
    int32_t score;
  };
  Row ReadRow(TupleSlot slot) {
    auto initializer = table_->FullInitializer();
    std::vector<byte> buffer(initializer.ProjectedRowSize() + 8);
    auto *txn = txn_manager_.BeginTransaction();
    ProjectedRow *row = initializer.InitializeRow(buffer.data());
    Row result{};
    result.visible = table_->Select(txn, slot, row);
    if (result.visible) {
      result.id = workload::Get<int64_t>(*row, 0);
      result.name = row->AccessWithNullCheck(1) == nullptr
                        ? "<null>"
                        : std::string(workload::GetVarchar(*row, 1));
      result.score = workload::Get<int32_t>(*row, 2);
    }
    txn_manager_.Commit(txn);
    gc_.FullGC();
    return result;
  }

  // Destruction order (reverse of declaration): GC first, then the
  // transaction manager, then tables — both need tables alive.
  storage::BlockStore block_store_;
  storage::RecordBufferSegmentPool buffer_pool_;
  catalog::Catalog catalog_;
  catalog::Schema schema_;
  transaction::TransactionManager txn_manager_;
  gc::GarbageCollector gc_;
  catalog::SqlTable *table_;
};

TEST_P(TransformTest, FreezeWithoutGapsPreservesData) {
  Populate(1000);
  gc_.FullGC();
  BlockTransformer transformer(&txn_manager_, &gc_, GetParam());
  storage::DataTable &dt = table_->UnderlyingTable();
  std::vector<storage::RawBlock *> blocks = dt.Blocks();
  ASSERT_EQ(blocks.size(), 1u);
  ASSERT_EQ(transformer.ProcessGroup(&dt, blocks, nullptr), 1u);
  EXPECT_EQ(blocks[0]->controller.GetState(), BlockState::kFrozen);

  // Transactional reads still work on the frozen block and see the same data.
  const Row row = ReadRow(TupleSlot(blocks[0], 48));
  EXPECT_TRUE(row.visible);
  EXPECT_EQ(row.id, 48);
  EXPECT_EQ(row.name, "in8");
  EXPECT_EQ(row.score, 96);
  const Row null_row = ReadRow(TupleSlot(blocks[0], 42));  // 42 % 7 == 0 -> null name
  EXPECT_EQ(null_row.name, "<null>");
  const Row varlen_row = ReadRow(TupleSlot(blocks[0], 50));
  EXPECT_EQ(varlen_row.name, "value-with-a-long-suffix-50");

  // The zero-copy Arrow view matches a transactional materialization.
  ASSERT_TRUE(blocks[0]->controller.TryAcquireRead());
  auto frozen_batch = transform::ArrowReader::FromFrozenBlock(schema_, dt, blocks[0]);
  ASSERT_NE(frozen_batch, nullptr);
  EXPECT_EQ(frozen_batch->num_rows(), 1000);
  auto *txn = txn_manager_.BeginTransaction();
  auto materialized = transform::ArrowReader::MaterializeBlock(schema_, &dt, blocks[0], txn);
  txn_manager_.Commit(txn);
  EXPECT_TRUE(frozen_batch->Equals(*materialized));
  blocks[0]->controller.ReleaseRead();
  gc_.FullGC();
}

TEST_P(TransformTest, CompactionFillsGapsAndPreservesTuples) {
  const std::vector<TupleSlot> slots = Populate(1000);
  // Delete every other tuple.
  std::vector<TupleSlot> victims;
  for (size_t i = 0; i < slots.size(); i += 2) victims.push_back(slots[i]);
  DeleteSlots(victims);
  gc_.FullGC();

  BlockTransformer transformer(&txn_manager_, &gc_, GetParam());
  storage::DataTable &dt = table_->UnderlyingTable();
  std::vector<storage::RawBlock *> blocks = dt.Blocks();
  transform::TransformStats stats;
  ASSERT_EQ(transformer.ProcessGroup(&dt, blocks, &stats), 1u);
  EXPECT_GT(stats.tuples_moved, 0u);

  // All 500 survivors must be present exactly once, contiguous from slot 0.
  EXPECT_EQ(dt.FilledSlots(blocks[0]), 500u);
  std::vector<bool> seen(1000, false);
  for (uint32_t i = 0; i < 500; i++) {
    const Row row = ReadRow(TupleSlot(blocks[0], i));
    ASSERT_TRUE(row.visible);
    ASSERT_GE(row.id, 0);
    ASSERT_LT(row.id, 1000);
    EXPECT_EQ(row.id % 2, 1) << "deleted tuples must not reappear";
    EXPECT_FALSE(seen[static_cast<size_t>(row.id)]) << "duplicate tuple after compaction";
    seen[static_cast<size_t>(row.id)] = true;
    EXPECT_EQ(row.score, row.id * 2);
  }
}

TEST_P(TransformTest, UpdatePreemptsFrozenBlock) {
  Populate(100);
  gc_.FullGC();
  BlockTransformer transformer(&txn_manager_, &gc_, GetParam());
  storage::DataTable &dt = table_->UnderlyingTable();
  std::vector<storage::RawBlock *> blocks = dt.Blocks();
  ASSERT_EQ(transformer.ProcessGroup(&dt, blocks, nullptr), 1u);
  ASSERT_EQ(blocks[0]->controller.GetState(), BlockState::kFrozen);

  // An update flips the block hot and succeeds; the relaxed format is a
  // superset of Arrow, so no transformation is needed to write.
  auto initializer = table_->InitializerForColumns({2});
  std::vector<byte> buffer(initializer.ProjectedRowSize() + 8);
  auto *txn = txn_manager_.BeginTransaction();
  ProjectedRow *delta = initializer.InitializeRow(buffer.data());
  workload::Set<int32_t>(delta, 0, 9999);
  ASSERT_TRUE(table_->Update(txn, TupleSlot(blocks[0], 5), *delta));
  txn_manager_.Commit(txn);
  EXPECT_EQ(blocks[0]->controller.GetState(), BlockState::kHot);

  const Row row = ReadRow(TupleSlot(blocks[0], 5));
  EXPECT_EQ(row.score, 9999);

  // Refreezing works after the update cools down again.
  gc_.FullGC();
  ASSERT_EQ(transformer.ProcessGroup(&dt, blocks, nullptr), 1u);
  EXPECT_EQ(blocks[0]->controller.GetState(), BlockState::kFrozen);
  const Row row2 = ReadRow(TupleSlot(blocks[0], 5));
  EXPECT_EQ(row2.score, 9999);
}

TEST_P(TransformTest, GatherYieldsToActiveVersions) {
  const std::vector<TupleSlot> slots = Populate(100);
  // An uncommitted update keeps a version chain alive.
  auto initializer = table_->InitializerForColumns({2});
  std::vector<byte> buffer(initializer.ProjectedRowSize() + 8);
  auto *writer = txn_manager_.BeginTransaction();
  ProjectedRow *delta = initializer.InitializeRow(buffer.data());
  workload::Set<int32_t>(delta, 0, 1);
  ASSERT_TRUE(table_->Update(writer, slots[0], *delta));

  BlockTransformer transformer(&txn_manager_, &gc_, GetParam());
  storage::DataTable &dt = table_->UnderlyingTable();
  std::vector<storage::RawBlock *> blocks = dt.Blocks();
  transaction::timestamp_t commit_ts;
  std::vector<storage::RawBlock *> survivors;
  // Compaction itself conflicts (it has nothing to move here, so it commits),
  // but the gather must refuse to freeze while the version chain exists.
  if (transformer.CompactGroup(&dt, blocks, nullptr, &commit_ts, &survivors)) {
    EXPECT_FALSE(transformer.GatherBlock(&dt, blocks[0], nullptr));
    EXPECT_NE(blocks[0]->controller.GetState(), BlockState::kFrozen);
  }
  txn_manager_.Commit(writer);
  gc_.FullGC();
}

INSTANTIATE_TEST_SUITE_P(Modes, TransformTest,
                         ::testing::Values(GatherMode::kVarlenGather,
                                           GatherMode::kDictionaryCompression),
                         [](const auto &info) {
                           return info.param == GatherMode::kVarlenGather ? "Gather"
                                                                          : "Dictionary";
                         });

TEST(CompactionPlannerTest, ApproximateAndOptimalAccounting) {
  storage::BlockStore block_store(100, 10);
  storage::RecordBufferSegmentPool pool(100000, 100);
  transaction::TransactionManager txn_manager(&pool, true, nullptr);
  gc::GarbageCollector gc(&txn_manager);
  storage::BlockLayout layout({{8, false}});
  storage::DataTable table(&block_store, layout, storage::layout_version_t(0));
  auto initializer = storage::ProjectedRowInitializer::CreateFull(layout);
  std::vector<byte> buffer(initializer.ProjectedRowSize() + 8);

  // Fill 3 blocks, then delete 60% at random.
  const uint32_t slots_per_block = layout.NumSlots();
  auto *txn = txn_manager.BeginTransaction();
  std::vector<storage::TupleSlot> slots;
  for (uint32_t i = 0; i < 3 * slots_per_block; i++) {
    ProjectedRow *row = initializer.InitializeRow(buffer.data());
    *reinterpret_cast<int64_t *>(row->AccessForceNotNull(0)) = i;
    slots.push_back(table.Insert(txn, *row));
  }
  txn_manager.Commit(txn);
  common::Xorshift rng(3);
  auto *deleter = txn_manager.BeginTransaction();
  uint32_t deleted = 0;
  for (const auto slot : slots) {
    if (rng.Uniform(1, 10) <= 6) {
      ASSERT_TRUE(table.Delete(deleter, slot));
      deleted++;
    }
  }
  txn_manager.Commit(deleter);
  gc.FullGC();

  const uint32_t live = 3 * slots_per_block - deleted;
  for (const bool optimal : {false, true}) {
    const transform::CompactionPlan plan =
        transform::CompactionPlanner::Plan(table, table.Blocks(), optimal);
    EXPECT_EQ(plan.total_tuples, live);
    // Logical contiguity math: moves fill exactly the gaps in F and p's
    // prefix, and the emptied blocks hold the sources.
    EXPECT_EQ(plan.target_blocks.size() + plan.emptied_blocks.size(), 3u);
    EXPECT_LE(plan.moves.size(), live);
    // The optimal plan can never require more movements.
    if (optimal) {
      const transform::CompactionPlan approx =
          transform::CompactionPlanner::Plan(table, table.Blocks(), false);
      EXPECT_LE(plan.moves.size(), approx.moves.size());
      // Paper's bound: approximate is within (t mod s) of optimal.
      EXPECT_LE(approx.moves.size() - plan.moves.size(), live % slots_per_block);
    }
  }
}

}  // namespace mainline
