#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "catalog/catalog.h"
#include "common/rand_util.h"
#include "common/selection_vector.h"
#include "workload/tpch/query_runner.h"
#include "execution/table_scanner.h"
#include "workload/tpch/tpch_queries.h"
#include "execution/vector_ops.h"
#include "gc/garbage_collector.h"
#include "storage/arrow_block_metadata.h"
#include "transform/access_observer.h"
#include "transform/arrow_reader.h"
#include "transform/block_transformer.h"
#include "transform/transform_pipeline.h"
#include "workload/row_util.h"
#include "workload/tpch/lineitem.h"

namespace mainline {

using execution::AccessPath;
using execution::ColumnVectorBatch;
using workload::ExecMode;
using workload::QueryRunner;
using execution::ScanStats;
using execution::TableScanner;
using storage::BlockState;
using storage::ProjectedRow;
using transform::GatherMode;
namespace q = workload::tpch;

/// End-to-end coverage of the in-situ execution layer: the dual-path
/// TableScanner and the vectorized Q1/Q6 must agree bit-exactly with the
/// scalar tuple-at-a-time reference on hot, mixed, and fully frozen tables,
/// and stay MVCC-consistent while writers and the transformation pipeline
/// churn underneath.
class ExecutionTest : public ::testing::TestWithParam<GatherMode> {
 protected:
  ExecutionTest()
      : block_store_(2000, 100),
        buffer_pool_(10000000, 1000),
        catalog_(&block_store_),
        txn_manager_(&buffer_pool_, true, nullptr),
        gc_(&txn_manager_),
        observer_(/*cold_threshold=*/2),
        transformer_(&txn_manager_, &gc_, GetParam()),
        pipeline_(&observer_, &transformer_, /*group_size=*/4) {
    gc_.SetAccessObserver(&observer_);
  }

  // Detach the observer before members destruct (in reverse order, the
  // observer dies before the GC — whose own destructor still runs a final
  // collection pass that would feed it).
  ~ExecutionTest() { gc_.SetAccessObserver(nullptr); }

  /// Rows spanning a little over `blocks` lineitem blocks.
  static uint64_t RowsForBlocks(uint64_t blocks) {
    const uint32_t slots = workload::tpch::LineItemSchema().ToBlockLayout().NumSlots();
    return blocks * slots + slots / 2;
  }

  catalog::SqlTable *Generate(uint64_t rows) {
    catalog::SqlTable *table = workload::tpch::GenerateLineItem(
        &catalog_, &txn_manager_, rows, /*seed=*/7, /*batch_size=*/4096);
    gc_.FullGC();
    return table;
  }

  /// Both queries, both engines, same snapshot semantics: results must be
  /// bit-identical (floating-point == on every aggregate).
  void ExpectEnginesAgree(catalog::SqlTable *table, ScanStats *q6_stats_out = nullptr) {
    QueryRunner runner(&txn_manager_);
    const auto q1_vec = runner.RunQ1(table);
    const auto q1_scalar = runner.RunQ1(table, {}, ExecMode::kScalar);
    ASSERT_EQ(q1_vec.rows.size(), q1_scalar.rows.size());
    for (size_t i = 0; i < q1_vec.rows.size(); i++) {
      EXPECT_TRUE(q1_vec.rows[i] == q1_scalar.rows[i])
          << "Q1 group " << q1_vec.rows[i].returnflag << "/" << q1_vec.rows[i].linestatus
          << " diverged from the scalar reference";
    }

    const auto q6_vec = runner.RunQ6(table);
    const auto q6_scalar = runner.RunQ6(table, {}, ExecMode::kScalar);
    EXPECT_EQ(q6_vec.revenue, q6_scalar.revenue);
    EXPECT_EQ(q6_vec.stats.rows, q6_scalar.stats.rows);
    if (q6_stats_out != nullptr) *q6_stats_out = q6_vec.stats;
  }

  storage::BlockStore block_store_;
  storage::RecordBufferSegmentPool buffer_pool_;
  catalog::Catalog catalog_;
  transaction::TransactionManager txn_manager_;
  gc::GarbageCollector gc_;
  transform::AccessObserver observer_;
  transform::BlockTransformer transformer_;
  transform::TransformPipeline pipeline_;
};

TEST_P(ExecutionTest, ProjectionResolutionAndScannerView) {
  catalog::SqlTable *table = Generate(2000);
  const catalog::Schema &schema = table->GetSchema();

  // Name-based projection resolution: positions come back sorted ascending.
  const std::vector<uint16_t> cols = schema.ResolveColumns(
      {"l_shipdate", "l_discount", "l_quantity", "l_extendedprice"});
  const std::vector<uint16_t> expected = {
      workload::tpch::L_QUANTITY, workload::tpch::L_EXTENDEDPRICE, workload::tpch::L_DISCOUNT,
      workload::tpch::L_SHIPDATE};
  EXPECT_TRUE(cols == expected);

  // A hot-table scan surfaces every row through the materialized path.
  auto *txn = txn_manager_.BeginTransaction();
  TableScanner scanner(table, txn, cols);
  EXPECT_EQ(scanner.BatchIndex(workload::tpch::L_SHIPDATE), 3);
  ColumnVectorBatch batch;
  uint64_t rows = 0;
  while (scanner.Next(&batch)) {
    EXPECT_EQ(batch.Path(), AccessPath::kHotMaterialized);
    EXPECT_EQ(batch.Batch()->num_columns(), 4);
    const arrowlite::Array &qty = batch.Column(0);
    for (int64_t i = 0; i < batch.NumRows(); i++) {
      const double v = qty.Value<double>(i);
      EXPECT_GE(v, 1.0);
      EXPECT_LE(v, 50.0);
    }
    rows += static_cast<uint64_t>(batch.NumRows());
    batch.Release();
  }
  txn_manager_.Commit(txn);
  EXPECT_EQ(rows, 2000u);
  EXPECT_EQ(scanner.Stats().rows, 2000u);
  EXPECT_EQ(scanner.Stats().frozen_blocks, 0u);
  EXPECT_GT(scanner.Stats().hot_blocks, 0u);
  gc_.FullGC();
}

TEST_P(ExecutionTest, QueriesMatchScalarAcrossFreezeStates) {
  catalog::SqlTable *table = Generate(RowsForBlocks(2));
  storage::DataTable &dt = table->UnderlyingTable();
  ASSERT_GT(dt.NumBlocks(), 2u);

  // 0% frozen: everything flows through transactional materialization.
  ScanStats stats;
  ExpectEnginesAgree(table, &stats);
  EXPECT_EQ(stats.frozen_blocks, 0u);
  EXPECT_GT(stats.hot_blocks, 0u);

  // ~50% frozen: freeze the first half of the blocks in place.
  {
    const std::vector<storage::RawBlock *> blocks = dt.Blocks();
    for (size_t i = 0; i < blocks.size() / 2; i++) {
      transformer_.ProcessGroup(&dt, {blocks[i]}, nullptr);
    }
  }
  ExpectEnginesAgree(table, &stats);
  EXPECT_GT(stats.frozen_blocks, 0u);
  EXPECT_GT(stats.hot_blocks, 0u);

  // 100% frozen: the whole table through the pipeline; the scan must not
  // materialize a single block.
  pipeline_.EnqueueTable(&dt);
  pipeline_.RunOnce();
  for (storage::RawBlock *block : dt.Blocks()) {
    ASSERT_EQ(block->controller.GetState(), BlockState::kFrozen);
  }
  ExpectEnginesAgree(table, &stats);
  EXPECT_GT(stats.frozen_blocks, 0u);
  EXPECT_EQ(stats.hot_blocks, 0u);
  gc_.FullGC();
}

/// Exercise the vector_ops primitives the queries do not use directly —
/// string-equality filtering (dictionary-code fast path and plain strings),
/// column SUM, COUNT, and MIN/MAX — against a scalar reference, on both
/// access paths.
TEST_P(ExecutionTest, VectorOpsPrimitivesMatchScalarReference) {
  namespace ops = execution::vector_ops;
  catalog::SqlTable *table = Generate(4000);
  storage::DataTable &dt = table->UnderlyingTable();

  const auto run = [&](const char *label) {
    // Scalar reference: rows with l_returnflag == "R".
    double expected_sum_qty = 0;
    uint64_t expected_count = 0;
    uint32_t expected_min_ship = ~0u, expected_max_ship = 0;
    {
      auto *txn = txn_manager_.BeginTransaction();
      const auto init = table->InitializerForColumns(
          {workload::tpch::L_QUANTITY, workload::tpch::L_RETURNFLAG,
           workload::tpch::L_SHIPDATE});
      std::vector<byte> buf(init.ProjectedRowSize() + 8);
      for (auto it = table->begin(); !it.Done(); ++it) {
        ProjectedRow *row = init.InitializeRow(buf.data());
        if (!table->Select(txn, *it, row)) continue;
        if (workload::GetVarchar(*row, 1) != "R") continue;
        expected_sum_qty += workload::Get<double>(*row, 0);
        expected_count++;
        const uint32_t ship = workload::Get<uint32_t>(*row, 2);
        if (ship < expected_min_ship) expected_min_ship = ship;
        if (ship > expected_max_ship) expected_max_ship = ship;
      }
      txn_manager_.Commit(txn);
    }
    ASSERT_GT(expected_count, 0u) << label;

    // Vectorized: FilterStringEq + AccumulateSum/Count/AccumulateMinMax.
    auto *txn = txn_manager_.BeginTransaction();
    TableScanner scanner(table, txn,
                         {workload::tpch::L_QUANTITY, workload::tpch::L_RETURNFLAG,
                          workload::tpch::L_SHIPDATE});
    double sum_qty = 0;
    uint64_t count = 0, none_count = 0;
    uint32_t min_ship = ~0u, max_ship = 0;
    common::SelectionVector sel;
    ColumnVectorBatch batch;
    while (scanner.Next(&batch)) {
      sel.InitFull(static_cast<uint32_t>(batch.NumRows()));
      ops::FilterStringEq(batch.Column(1), &sel, "R");
      ops::AccumulateSum<double>(batch.Column(0), sel, &sum_qty);
      count += ops::Count(sel);
      if (!sel.Empty()) {
        ops::AccumulateMinMax<uint32_t>(batch.Column(2), sel, &min_ship, &max_ship);
      }
      // A flag value that exists in no row: the filter must empty the
      // selection (on the dictionary path: probe miss).
      sel.InitFull(static_cast<uint32_t>(batch.NumRows()));
      ops::FilterStringEq(batch.Column(1), &sel, "Z");
      none_count += ops::Count(sel);
      batch.Release();
    }
    txn_manager_.Commit(txn);

    EXPECT_EQ(sum_qty, expected_sum_qty) << label;
    EXPECT_EQ(count, expected_count) << label;
    EXPECT_EQ(min_ship, expected_min_ship) << label;
    EXPECT_EQ(max_ship, expected_max_ship) << label;
    EXPECT_EQ(none_count, 0u) << label;
  };

  run("hot (materialized batches)");

  pipeline_.EnqueueTable(&dt);
  pipeline_.RunOnce();
  for (storage::RawBlock *block : dt.Blocks()) {
    ASSERT_EQ(block->controller.GetState(), BlockState::kFrozen);
  }
  run("frozen (zero-copy batches)");
  gc_.FullGC();
}

TEST_P(ExecutionTest, Q1AggregatesAreInternallyConsistent) {
  catalog::SqlTable *table = Generate(5000);
  QueryRunner runner(&txn_manager_);

  // With the cutoff above the generator's date range, Q1 groups partition
  // every row.
  q::Q1Params all_rows;
  all_rows.shipdate_max = 1u << 30;
  const auto result = runner.RunQ1(table, all_rows);
  uint64_t grouped = 0;
  for (const q::Q1Row &row : result.rows) {
    grouped += row.count;
    EXPECT_TRUE(row.returnflag == "R" || row.returnflag == "A" || row.returnflag == "N");
    EXPECT_TRUE(row.linestatus == "O" || row.linestatus == "F");
    EXPECT_EQ(row.avg_qty, row.sum_qty / static_cast<double>(row.count));
    EXPECT_GE(row.sum_base_price, row.sum_disc_price);  // discounts only shrink
    EXPECT_LE(row.sum_disc_price, row.sum_charge);      // tax only grows
  }
  EXPECT_EQ(grouped, 5000u);
  // Groups arrive sorted by (returnflag, linestatus).
  for (size_t i = 1; i < result.rows.size(); i++) {
    const auto &a = result.rows[i - 1], &b = result.rows[i];
    EXPECT_TRUE(a.returnflag < b.returnflag ||
                (a.returnflag == b.returnflag && a.linestatus < b.linestatus));
  }
  gc_.FullGC();
}

/// The satellite concurrency scenario: Q6 runs continuously while (a) a
/// writer updates, deletes, and inserts lineitem rows — re-heating frozen
/// blocks through the access controller — and (b) the transformation
/// pipeline keeps compacting and re-freezing whatever cools down. Every
/// iteration runs the vectorized engine and the scalar reference inside the
/// SAME transaction, so any MVCC inconsistency on either access path shows
/// up as a bit-level divergence.
TEST_P(ExecutionTest, Q6StaysConsistentUnderConcurrentWritesAndTransform) {
  catalog::SqlTable *table = Generate(RowsForBlocks(1));
  storage::DataTable &dt = table->UnderlyingTable();

  // Start fully frozen so the scan begins on the zero-copy path.
  pipeline_.EnqueueTable(&dt);
  pipeline_.RunOnce();

  std::atomic<bool> stop{false};

  // The transform thread owns the GC for the duration (it is single-consumer
  // and ProcessGroup pumps it internally while waiting out version chains).
  std::thread transform_thread([&] {
    while (!stop.load(std::memory_order_acquire)) {
      pipeline_.EnqueueTable(&dt);
      pipeline_.RunOnce();
      gc_.PerformGarbageCollection();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  std::thread writer([&] {
    common::Xorshift rng(99);
    const auto update_init = table->InitializerForColumns({workload::tpch::L_QUANTITY});
    std::vector<byte> update_buf(update_init.ProjectedRowSize() + 8);
    const auto full_init = table->FullInitializer();
    std::vector<byte> full_buf(full_init.ProjectedRowSize() + 8);
    while (!stop.load(std::memory_order_acquire)) {
      auto *txn = txn_manager_.BeginTransaction();
      bool ok = true;
      uint32_t visited = 0;
      for (auto it = table->begin(); !it.Done() && visited < 200 && ok; ++it, ++visited) {
        const uint64_t dice = rng.Uniform(0, 39);
        if (dice == 0) {
          // Sparse deletes: never enough to empty a block.
          ok = table->Delete(txn, *it);
        } else if (dice < 8) {
          ProjectedRow *delta = update_init.InitializeRow(update_buf.data());
          workload::Set<double>(delta, 0, static_cast<double>(rng.Uniform(1, 50)));
          ok = table->Update(txn, *it, *delta);
        }
      }
      if (ok) {
        // A couple of fresh inserts so the table keeps growing too.
        for (int i = 0; i < 2; i++) {
          ProjectedRow *row = full_init.InitializeRow(full_buf.data());
          using namespace workload;
          Set<int64_t>(row, tpch::L_ORDERKEY, static_cast<int64_t>(rng.Uniform(1, 1000000)));
          Set<int64_t>(row, tpch::L_PARTKEY, 1);
          Set<int64_t>(row, tpch::L_SUPPKEY, 1);
          Set<int32_t>(row, tpch::L_LINENUMBER, 1);
          Set<double>(row, tpch::L_QUANTITY, static_cast<double>(rng.Uniform(1, 50)));
          Set<double>(row, tpch::L_EXTENDEDPRICE, 100.0);
          Set<double>(row, tpch::L_DISCOUNT, 0.06);
          Set<double>(row, tpch::L_TAX, 0.02);
          SetVarchar(row, tpch::L_RETURNFLAG, "N");
          SetVarchar(row, tpch::L_LINESTATUS, "O");
          Set<uint32_t>(row, tpch::L_SHIPDATE, 9100);
          Set<uint32_t>(row, tpch::L_COMMITDATE, 9130);
          Set<uint32_t>(row, tpch::L_RECEIPTDATE, 9115);
          SetVarchar(row, tpch::L_SHIPINSTRUCT, "NONE");
          SetVarchar(row, tpch::L_SHIPMODE, "AIR");
          SetVarchar(row, tpch::L_COMMENT, "concurrent insert");
          table->Insert(txn, *row);
        }
        txn_manager_.Commit(txn);
      } else {
        txn_manager_.Abort(txn);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  ScanStats aggregate;
  int iterations = 0;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (iterations < 30 ||
         ((aggregate.frozen_blocks == 0 || aggregate.hot_blocks == 0) &&
          std::chrono::steady_clock::now() < deadline)) {
    auto *txn = txn_manager_.BeginTransaction();
    ScanStats stats;
    const double vectorized = q::RunQ6(table, txn, {}, &stats);
    const double scalar = q::RunQ6Scalar(table, txn, {}, nullptr);
    EXPECT_EQ(vectorized, scalar)
        << "vectorized Q6 diverged from the scalar reference in the same snapshot "
        << "(iteration " << iterations << ")";
    txn_manager_.Commit(txn);
    aggregate.Add(stats);
    iterations++;
  }
  stop.store(true, std::memory_order_release);
  writer.join();
  transform_thread.join();

  // Both access paths must actually have been exercised.
  EXPECT_GT(aggregate.frozen_blocks, 0u) << "no scan ever took the zero-copy path";
  EXPECT_GT(aggregate.hot_blocks, 0u) << "no scan ever took the materialization path";
  gc_.FullGC();
}

/// Regression test for the frozen-batch field-typing bug: FromFrozenBlock
/// used to tag EVERY varchar field kDictionary as soon as ANY column in the
/// batch was dictionary-compressed, mislabeling plain-gathered columns. The
/// transformer's gather mode is per block, so the mixed state is built by
/// hand: freeze in varlen-gather mode, then convert one column's metadata to
/// dictionary compression — one gathered + one dictionary varchar in the
/// same block.
TEST(FrozenBatchFieldTypingTest, MixedGatherAndDictionaryColumnsTypeIndependently) {
  namespace tpch = workload::tpch;
  storage::BlockStore block_store(200, 10);
  storage::RecordBufferSegmentPool buffer_pool(1000000, 100);
  catalog::Catalog catalog(&block_store);
  transaction::TransactionManager txn_manager(&buffer_pool, true, nullptr);
  gc::GarbageCollector gc(&txn_manager);
  transform::BlockTransformer transformer(&txn_manager, &gc, GatherMode::kVarlenGather);

  catalog::SqlTable *table =
      workload::tpch::GenerateLineItem(&catalog, &txn_manager, 500, /*seed=*/7,
                                       /*batch_size=*/0);
  gc.FullGC();
  storage::DataTable &dt = table->UnderlyingTable();
  storage::RawBlock *block = dt.Blocks().front();
  ASSERT_EQ(transformer.ProcessGroup(&dt, {block}, nullptr), 1u);
  gc.FullGC();
  ASSERT_EQ(block->controller.GetState(), BlockState::kFrozen);
  storage::ArrowBlockMetadata *metadata = block->arrow_metadata;
  ASSERT_NE(metadata, nullptr);
  const uint32_t n = metadata->NumRecords();
  ASSERT_GT(n, 0u);

  // Convert l_returnflag (3 distinct values) to dictionary compression from
  // its gathered buffers, leaving l_linestatus plain-gathered.
  storage::ArrowColumnInfo &info = metadata->Column(tpch::L_RETURNFLAG);
  ASSERT_EQ(info.type, storage::ArrowColumnType::kGatheredVarlen);
  const auto word_at = [&](uint32_t row) {
    return std::string_view(
        reinterpret_cast<const char *>(info.varlen.values.get()) + info.varlen.offsets[row],
        static_cast<size_t>(info.varlen.offsets[row + 1] - info.varlen.offsets[row]));
  };
  std::map<std::string_view, int32_t> dict;
  for (uint32_t row = 0; row < n; row++) dict.emplace(word_at(row), 0);
  uint64_t dict_bytes = 0;
  int32_t next_code = 0;
  for (auto &[word, code] : dict) {
    code = next_code++;
    dict_bytes += word.size();
  }
  info.dictionary.values = std::make_unique<byte[]>(dict_bytes);
  info.dictionary.offsets = std::make_unique<int32_t[]>(dict.size() + 1);
  info.dictionary.values_size = dict_bytes;
  info.dictionary_size = static_cast<uint32_t>(dict.size());
  uint64_t offset = 0;
  int32_t d = 0;
  for (const auto &[word, code] : dict) {
    info.dictionary.offsets[d++] = static_cast<int32_t>(offset);
    std::memcpy(info.dictionary.values.get() + offset, word.data(), word.size());
    offset += word.size();
  }
  info.dictionary.offsets[d] = static_cast<int32_t>(offset);
  info.indices = std::make_unique<int32_t[]>(n);
  for (uint32_t row = 0; row < n; row++) info.indices[row] = dict.find(word_at(row))->second;
  info.type = storage::ArrowColumnType::kDictionaryCompressed;

  ASSERT_TRUE(block->controller.TryAcquireRead());
  const auto batch = transform::ArrowReader::FromFrozenBlock(table->GetSchema(), dt, block);
  ASSERT_NE(batch, nullptr);

  // Each field must carry ITS column's physical type: the dictionary column
  // kDictionary, the gathered one kString (the bug stamped it kDictionary
  // because a sibling column was compressed), fixed columns untouched.
  const arrowlite::Schema &schema = *batch->schema();
  EXPECT_EQ(schema.field(tpch::L_RETURNFLAG).type(), arrowlite::Type::kDictionary);
  EXPECT_EQ(schema.field(tpch::L_LINESTATUS).type(), arrowlite::Type::kString);
  EXPECT_EQ(schema.field(tpch::L_COMMENT).type(), arrowlite::Type::kString);
  EXPECT_EQ(schema.field(tpch::L_QUANTITY).type(), arrowlite::Type::kFloat64);
  EXPECT_EQ(schema.field(tpch::L_SHIPDATE).type(), arrowlite::Type::kUInt32);

  // The arrays themselves agree with the field tags, and the dictionary
  // round-trips the original values.
  const arrowlite::Array &flag = *batch->column(tpch::L_RETURNFLAG);
  const arrowlite::Array &status = *batch->column(tpch::L_LINESTATUS);
  ASSERT_EQ(flag.type(), arrowlite::Type::kDictionary);
  ASSERT_EQ(status.type(), arrowlite::Type::kString);
  EXPECT_EQ(flag.dictionary()->length(), static_cast<int64_t>(dict.size()));
  for (uint32_t row = 0; row < n; row++) {
    EXPECT_EQ(flag.GetString(row), word_at(row));
  }
  block->controller.ReleaseRead();
  gc.FullGC();
}

INSTANTIATE_TEST_SUITE_P(Modes, ExecutionTest,
                         ::testing::Values(GatherMode::kVarlenGather,
                                           GatherMode::kDictionaryCompression),
                         [](const auto &info) {
                           return info.param == GatherMode::kVarlenGather ? "Gather"
                                                                          : "Dictionary";
                         });

}  // namespace mainline
