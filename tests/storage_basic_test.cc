#include <gtest/gtest.h>

#include "storage/block_layout.h"
#include "storage/data_table.h"
#include "storage/raw_block.h"
#include "transaction/transaction_manager.h"

namespace mainline {

TEST(StorageBasicTest, BlockLayoutComputesSlots) {
  storage::BlockLayout layout({{8, false}, {16, true}, {4, false}});
  EXPECT_GT(layout.NumSlots(), 0u);
  EXPECT_EQ(layout.TupleSize(), 28u);
  EXPECT_TRUE(layout.HasVarlen());
}

TEST(StorageBasicTest, InsertAndSelect) {
  storage::BlockStore block_store(100, 100);
  storage::RecordBufferSegmentPool buffer_pool(1000, 100);
  transaction::TransactionManager txn_manager(&buffer_pool, false, nullptr);

  storage::BlockLayout layout({{8, false}});
  storage::DataTable table(&block_store, layout, storage::layout_version_t(0));

  auto initializer = storage::ProjectedRowInitializer::CreateFull(layout);
  std::vector<byte> buffer(initializer.ProjectedRowSize() + 8);

  auto *txn = txn_manager.BeginTransaction();
  storage::ProjectedRow *row = initializer.InitializeRow(buffer.data());
  *reinterpret_cast<int64_t *>(row->AccessForceNotNull(0)) = 42;
  storage::TupleSlot slot = table.Insert(txn, *row);
  txn_manager.Commit(txn);

  auto *reader = txn_manager.BeginTransaction();
  storage::ProjectedRow *out = initializer.InitializeRow(buffer.data());
  EXPECT_TRUE(table.Select(reader, slot, out));
  EXPECT_EQ(*reinterpret_cast<int64_t *>(out->AccessForceNotNull(0)), 42);
  txn_manager.Commit(reader);
}

}  // namespace mainline
