#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/rand_util.h"
#include "common/worker_pool.h"
#include "storage/block_access_controller.h"

namespace mainline {

TEST(WorkerPoolTest, RunsAllTasksAndWaits) {
  common::WorkerPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; i++) {
    pool.SubmitTask([&] { counter.fetch_add(1); });
  }
  pool.WaitUntilAllFinished();
  EXPECT_EQ(counter.load(), 100);
  // Reusable after a wait.
  pool.SubmitTask([&] { counter.fetch_add(1); });
  pool.WaitUntilAllFinished();
  EXPECT_EQ(counter.load(), 101);
}

TEST(RandUtilTest, DeterministicAndInRange) {
  common::Xorshift a(7), b(7);
  for (int i = 0; i < 1000; i++) {
    EXPECT_EQ(a.Next(), b.Next()) << "same seed must give the same stream";
  }
  common::Xorshift rng(9);
  for (int i = 0; i < 10000; i++) {
    const uint64_t v = rng.Uniform(5, 15);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 15u);
    const double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
  const std::string s = rng.AlphaString(4, 8);
  EXPECT_GE(s.size(), 4u);
  EXPECT_LE(s.size(), 8u);
}

TEST(RandUtilTest, ZipfIsSkewedTowardLowRanks) {
  common::Xorshift rng(3);
  common::ZipfDistribution zipf(1000, 0.9);
  uint64_t low = 0, total = 20000;
  for (uint64_t i = 0; i < total; i++) {
    const uint64_t v = zipf.Next(&rng);
    EXPECT_LT(v, 1000u);
    if (v < 100) low++;
  }
  // With theta=0.9, far more than 10% of draws land in the first 10% of keys.
  EXPECT_GT(low, total / 3);
}

TEST(BlockAccessControllerTest, StateProtocol) {
  storage::BlockAccessController controller;
  controller.Initialize();
  EXPECT_EQ(controller.GetState(), storage::BlockState::kHot);
  EXPECT_FALSE(controller.TryAcquireRead()) << "in-place reads only on frozen blocks";

  // hot -> cooling -> freezing -> frozen
  EXPECT_TRUE(controller.TrySetCooling());
  EXPECT_FALSE(controller.TrySetCooling()) << "already cooling";
  EXPECT_TRUE(controller.TrySetFreezing());
  controller.SetFrozen();
  EXPECT_EQ(controller.GetState(), storage::BlockState::kFrozen);

  // Readers pile on a frozen block.
  EXPECT_TRUE(controller.TryAcquireRead());
  EXPECT_TRUE(controller.TryAcquireRead());
  EXPECT_EQ(controller.ReaderCount(), 2u);

  // A cooling attempt on a frozen block fails; a writer preempts instead.
  EXPECT_FALSE(controller.TrySetCooling());
  std::thread writer([&] { controller.WaitUntilHot(); });
  // Writer must block until readers leave.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(controller.GetState(), storage::BlockState::kHot) << "state flips immediately";
  controller.ReleaseRead();
  controller.ReleaseRead();
  writer.join();
  EXPECT_EQ(controller.ReaderCount(), 0u);

  // User transactions preempt cooling (the CAS back to hot).
  ASSERT_TRUE(controller.TrySetCooling());
  controller.WaitUntilHot();
  EXPECT_EQ(controller.GetState(), storage::BlockState::kHot);
  EXPECT_FALSE(controller.TrySetFreezing()) << "preempted cooling must not freeze";
}

}  // namespace mainline
