#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <functional>
#include <limits>
#include <map>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "catalog/catalog.h"
#include "common/rand_util.h"
#include "common/worker_pool.h"
#include "execution/operators/pipeline.h"
#include "workload/tpch/query_runner.h"
#include "workload/tpch/tpch_queries.h"
#include "gc/garbage_collector.h"
#include "transform/access_observer.h"
#include "transform/block_transformer.h"
#include "transform/transform_pipeline.h"
#include "workload/row_util.h"
#include "workload/tpch/lineitem.h"
#include "workload/tpch/orders.h"
#include "workload/tpch/part.h"

namespace mainline {

using workload::ExecMode;
using workload::QueryRunner;
using execution::ScanStats;
using storage::BlockState;
using storage::ProjectedRow;
using transform::GatherMode;
namespace op = execution::op;
namespace q = workload::tpch;
namespace tpch = workload::tpch;

/// Coverage of the push-based operator pipeline API: each operator composed
/// in isolation over hand-built hot, gathered, and dictionary-frozen blocks;
/// the full plan-vs-scalar bit-exact matrix for Q1/Q6/Q12/Q14 across worker
/// counts and freeze states; and Q14 under concurrent writers with the
/// transformation pipeline re-freezing blocks (run under ASan/UBSan in CI).
class OperatorPipelineTest : public ::testing::TestWithParam<GatherMode> {
 protected:
  OperatorPipelineTest()
      : block_store_(2000, 100),
        buffer_pool_(10000000, 1000),
        catalog_(&block_store_),
        txn_manager_(&buffer_pool_, true, nullptr),
        gc_(&txn_manager_),
        observer_(/*cold_threshold=*/2),
        transformer_(&txn_manager_, &gc_, GetParam()),
        pipeline_(&observer_, &transformer_, /*group_size=*/4) {
    gc_.SetAccessObserver(&observer_);
  }

  ~OperatorPipelineTest() override { gc_.SetAccessObserver(nullptr); }

  /// Rows spanning a little over `blocks` lineitem blocks.
  static uint64_t RowsForBlocks(uint64_t blocks) {
    const uint32_t slots = tpch::LineItemSchema().ToBlockLayout().NumSlots();
    return blocks * slots + slots / 2;
  }

  /// A deterministic single-block micro table the operator unit tests can
  /// predict exactly: two doubles, two dates, two short string columns.
  ///   id = i, val = (i % 100) / 7.0, val2 = (i % 11) / 100.0,
  ///   date = 9000 + i % 50, date2 = date + i % 3,
  ///   tag = A/B/C by i % 3, tag2 = X/Y by i % 2
  catalog::SqlTable *MakeMicroTable(const char *name, uint64_t rows) {
    const catalog::Schema schema({{"id", catalog::TypeId::kBigInt},
                                  {"val", catalog::TypeId::kDecimal},
                                  {"val2", catalog::TypeId::kDecimal},
                                  {"date", catalog::TypeId::kDate},
                                  {"date2", catalog::TypeId::kDate},
                                  {"tag", catalog::TypeId::kVarchar},
                                  {"tag2", catalog::TypeId::kVarchar}});
    catalog::SqlTable *table = catalog_.GetTable(catalog_.CreateTable(name, schema));
    const auto init = table->FullInitializer();
    std::vector<byte> buffer(init.ProjectedRowSize() + 8);
    static const char *kTags[] = {"A", "B", "C"};
    auto *txn = txn_manager_.BeginTransaction();
    for (uint64_t i = 0; i < rows; i++) {
      ProjectedRow *row = init.InitializeRow(buffer.data());
      workload::Set<int64_t>(row, 0, static_cast<int64_t>(i));
      workload::Set<double>(row, 1, MicroVal(i));
      workload::Set<double>(row, 2, MicroVal2(i));
      workload::Set<uint32_t>(row, 3, MicroDate(i));
      workload::Set<uint32_t>(row, 4, MicroDate(i) + i % 3);
      workload::SetVarchar(row, 5, kTags[i % 3]);
      workload::SetVarchar(row, 6, i % 2 == 0 ? "X" : "Y");
      table->Insert(txn, *row);
    }
    txn_manager_.Commit(txn);
    gc_.FullGC();
    return table;
  }

  static double MicroVal(uint64_t i) { return static_cast<double>(i % 100) / 7.0; }
  static double MicroVal2(uint64_t i) { return static_cast<double>(i % 11) / 100.0; }
  static uint32_t MicroDate(uint64_t i) { return 9000 + static_cast<uint32_t>(i % 50); }

  /// Freeze every block of `table` through the transformation pipeline
  /// (gather mode per test parameter) and assert it took.
  void Freeze(catalog::SqlTable *table) {
    gc_.FullGC();
    pipeline_.EnqueueTable(&table->UnderlyingTable());
    pipeline_.RunOnce();
    for (storage::RawBlock *block : table->UnderlyingTable().Blocks()) {
      ASSERT_EQ(block->controller.GetState(), BlockState::kFrozen);
    }
  }

  /// LINEITEM + ORDERS + PART for the query matrix. PART covers ~30% of the
  /// lineitem partkey space so Q14 joins partially (dangling FKs included);
  /// ORDERS keys above rows/3 dangle the same way for Q12.
  void GenerateTpch(uint64_t rows) {
    lineitem_ = tpch::GenerateLineItem(&catalog_, &txn_manager_, rows, /*seed=*/7,
                                       /*batch_size=*/4096);
    orders_ = tpch::GenerateOrders(&catalog_, &txn_manager_, rows / 3, /*seed=*/11,
                                   /*batch_size=*/4096);
    part_ = tpch::GeneratePart(&catalog_, &txn_manager_, 60000, /*seed=*/13,
                               /*batch_size=*/4096);
    gc_.FullGC();
  }

  /// All four queries at `num_threads`, against the scalar references and
  /// the inline plans, all inside ONE transaction so every engine answers
  /// from the same snapshot.
  void ExpectPlansAgree(uint32_t num_threads, ScanStats *stats_out = nullptr) {
    common::WorkerPool pool(num_threads);
    auto *txn = txn_manager_.BeginTransaction();
    ScanStats stats;

    const auto q1_par = q::RunQ1Parallel(lineitem_, txn, {}, &pool, &stats);
    const auto q1_scalar = q::RunQ1Scalar(lineitem_, txn, {}, nullptr);
    const auto q1_inline = q::RunQ1(lineitem_, txn, {}, nullptr);
    ASSERT_EQ(q1_par.size(), q1_scalar.size()) << num_threads << " threads";
    for (size_t i = 0; i < q1_par.size(); i++) {
      EXPECT_TRUE(q1_par[i] == q1_scalar[i])
          << "parallel Q1 plan diverged from the scalar reference at " << num_threads
          << " threads (group " << q1_par[i].returnflag << "/" << q1_par[i].linestatus << ")";
      EXPECT_TRUE(q1_inline[i] == q1_scalar[i]) << "inline Q1 plan diverged";
    }

    const double q6_par = q::RunQ6Parallel(lineitem_, txn, {}, &pool, &stats);
    EXPECT_EQ(q6_par, q::RunQ6Scalar(lineitem_, txn, {}, nullptr))
        << "parallel Q6 plan diverged at " << num_threads << " threads";
    EXPECT_EQ(q6_par, q::RunQ6(lineitem_, txn, {}, nullptr));

    const auto q12_par = q::RunQ12Parallel(orders_, lineitem_, txn, {}, &pool, &stats);
    const auto q12_scalar = q::RunQ12Scalar(orders_, lineitem_, txn, {}, nullptr);
    EXPECT_TRUE(q12_par == q12_scalar)
        << "parallel Q12 plan diverged at " << num_threads << " threads";
    EXPECT_TRUE(q::RunQ12(orders_, lineitem_, txn, {}) == q12_scalar);

    const double q14_par = q::RunQ14Parallel(lineitem_, part_, txn, {}, &pool, &stats);
    EXPECT_EQ(q14_par, q::RunQ14Scalar(lineitem_, part_, txn, {}, nullptr))
        << "parallel Q14 plan diverged at " << num_threads << " threads";
    EXPECT_EQ(q14_par, q::RunQ14(lineitem_, part_, txn, {}, nullptr));

    txn_manager_.Commit(txn);
    if (stats_out != nullptr) *stats_out = stats;
  }

  storage::BlockStore block_store_;
  storage::RecordBufferSegmentPool buffer_pool_;
  catalog::Catalog catalog_;
  transaction::TransactionManager txn_manager_;
  gc::GarbageCollector gc_;
  transform::AccessObserver observer_;
  transform::BlockTransformer transformer_;
  transform::TransformPipeline pipeline_;
  catalog::SqlTable *lineitem_ = nullptr;
  catalog::SqlTable *orders_ = nullptr;
  catalog::SqlTable *part_ = nullptr;
};

namespace {

/// Test sink: records, per block ordinal, the int64 ids of the rows (or join
/// matches) that reached it, the match payloads, and optionally one computed
/// column's value — proof the Operator API composes with out-of-tree
/// operators.
class CollectOp final : public op::Operator {
 public:
  struct Row {
    int64_t id;
    uint64_t payload;
    double computed;
  };

  explicit CollectOp(uint16_t id_col, int computed_col = -1)
      : id_col_(id_col), computed_col_(computed_col) {}

  void Prepare(size_t num_blocks) override { per_block_.assign(num_blocks, {}); }

  void Push(op::Chunk *chunk) override {
    std::vector<Row> *rows = &per_block_[chunk->block_ordinal];
    const int64_t *ids = chunk->batch->Column(id_col_).buffer(0)->data_as<int64_t>();
    const auto add = [&](uint32_t row, uint64_t payload) {
      Row r{ids[row], payload, 0.0};
      if (computed_col_ >= 0) {
        r.computed = chunk->computed[static_cast<size_t>(computed_col_)].values[row];
      }
      rows->push_back(r);
    };
    if (chunk->probed) {
      for (const op::JoinMatch &match : chunk->matches) add(match.row, match.payload);
    } else {
      chunk->sel.ForEach([&](uint32_t row) { add(row, 0); });
    }
  }

  /// All collected rows, in block order.
  std::vector<Row> All() const {
    std::vector<Row> all;
    for (const std::vector<Row> &rows : per_block_) {
      all.insert(all.end(), rows.begin(), rows.end());
    }
    return all;
  }

 private:
  uint16_t id_col_;
  int computed_col_;
  std::vector<std::vector<Row>> per_block_;
};

}  // namespace

/// Every predicate kind, alone and chained, against a manually computed
/// expectation — on the hot materialized path, then on the frozen (gathered
/// or dictionary) path.
TEST_P(OperatorPipelineTest, FilterPredicatesSelectExpectedRows) {
  constexpr uint64_t kRows = 3000;
  catalog::SqlTable *table = MakeMicroTable("filters", kRows);

  struct Case {
    const char *name;
    op::Predicate predicate;
    std::function<bool(uint64_t)> expected;
  };
  const std::vector<Case> cases = {
      {"u32_range", op::Predicate::U32InRange(3, 9010, 9020),
       [](uint64_t i) { return MicroDate(i) >= 9010 && MicroDate(i) < 9020; }},
      {"u32_at_most", op::Predicate::U32AtMost(3, 9005),
       [](uint64_t i) { return MicroDate(i) <= 9005; }},
      {"f64_range", op::Predicate::F64InRange(1, 2.0, 5.0),
       [](uint64_t i) { return MicroVal(i) >= 2.0 && MicroVal(i) <= 5.0; }},
      {"f64_below", op::Predicate::F64Below(1, 3.0),
       [](uint64_t i) { return MicroVal(i) < 3.0; }},
      {"u32_lt_column", op::Predicate::U32LessThanColumn(3, 4),
       [](uint64_t i) { return i % 3 != 0; }},  // date2 - date == i % 3
      {"string_in", op::Predicate::StringIn(5, {"A", "C"}),
       [](uint64_t i) { return i % 3 != 1; }},
  };

  const auto check = [&](bool frozen) {
    for (const Case &c : cases) {
      auto *txn = txn_manager_.BeginTransaction();
      ScanStats stats;
      op::PhysicalPlan plan;
      op::Pipeline *pipe = plan.AddPipeline(table, {0, 1, 2, 3, 4, 5, 6});
      pipe->Add<op::FilterOp>(std::vector<op::Predicate>{c.predicate});
      CollectOp *collect = pipe->Add<CollectOp>(/*id_col=*/0);
      plan.Run(txn, nullptr, &stats);
      txn_manager_.Commit(txn);

      std::vector<int64_t> expected;
      for (uint64_t i = 0; i < kRows; i++) {
        if (c.expected(i)) expected.push_back(static_cast<int64_t>(i));
      }
      std::vector<int64_t> got;
      for (const CollectOp::Row &row : collect->All()) got.push_back(row.id);
      EXPECT_EQ(got, expected) << c.name << (frozen ? " (frozen)" : " (hot)");
      if (frozen) {
        EXPECT_GT(stats.frozen_blocks, 0u) << c.name;
        EXPECT_EQ(stats.hot_blocks, 0u) << c.name;
      } else {
        EXPECT_EQ(stats.frozen_blocks, 0u) << c.name;
      }
    }

    // A chain refines left to right; an unsatisfiable tail yields nothing.
    auto *txn = txn_manager_.BeginTransaction();
    op::PhysicalPlan plan;
    op::Pipeline *pipe = plan.AddPipeline(table, {0, 1, 2, 3, 4, 5, 6});
    pipe->Add<op::FilterOp>(std::vector<op::Predicate>{
        op::Predicate::U32InRange(3, 9010, 9020), op::Predicate::StringIn(5, {"B"})});
    CollectOp *collect = pipe->Add<CollectOp>(0);
    op::Pipeline *empty_pipe = plan.AddPipeline(table, {0, 1, 2, 3, 4, 5, 6});
    empty_pipe->Add<op::FilterOp>(
        std::vector<op::Predicate>{op::Predicate::StringIn(5, {"NO-SUCH-TAG"})});
    CollectOp *empty_collect = empty_pipe->Add<CollectOp>(0);
    plan.Run(txn, nullptr, nullptr);
    txn_manager_.Commit(txn);
    std::vector<int64_t> expected;
    for (uint64_t i = 0; i < kRows; i++) {
      if (MicroDate(i) >= 9010 && MicroDate(i) < 9020 && i % 3 == 1) {
        expected.push_back(static_cast<int64_t>(i));
      }
    }
    std::vector<int64_t> got;
    for (const CollectOp::Row &row : collect->All()) got.push_back(row.id);
    EXPECT_EQ(got, expected);
    EXPECT_TRUE(empty_collect->All().empty());
  };

  check(/*frozen=*/false);
  Freeze(table);
  check(/*frozen=*/true);
  gc_.FullGC();
}

/// ProjectOp appends computed columns that downstream operators read through
/// ColumnRef::Computed — values verified bit-exactly against the expression
/// forms, on both access paths.
TEST_P(OperatorPipelineTest, ProjectComputesDerivedColumns) {
  constexpr uint64_t kRows = 2000;
  catalog::SqlTable *table = MakeMicroTable("project", kRows);

  const auto check = [&](const char *label) {
    auto *txn = txn_manager_.BeginTransaction();
    op::PhysicalPlan plan;
    op::Pipeline *pipe = plan.AddPipeline(table, {0, 1, 2, 3, 4, 5, 6});
    pipe->Add<op::FilterOp>(
        std::vector<op::Predicate>{op::Predicate::F64Below(1, 10.0)});
    pipe->Add<op::ProjectOp>(std::vector<op::Expr>{
        op::Expr::Discounted(op::ColumnRef::Batch(1), op::ColumnRef::Batch(2)),
        // The second expression reads the first's output: (val*(1-val2)) * val2.
        op::Expr::Mul(op::ColumnRef::Computed(0), op::ColumnRef::Batch(2))});
    CollectOp *collect = pipe->Add<CollectOp>(0, /*computed_col=*/1);
    plan.Run(txn, nullptr, nullptr);
    txn_manager_.Commit(txn);

    uint64_t checked = 0;
    for (const CollectOp::Row &row : collect->All()) {
      const auto i = static_cast<uint64_t>(row.id);
      ASSERT_LT(MicroVal(i), 10.0);
      EXPECT_EQ(row.computed, (MicroVal(i) * (1.0 - MicroVal2(i))) * MicroVal2(i))
          << label << " row " << i;
      checked++;
    }
    EXPECT_GT(checked, 0u);
  };

  check("hot");
  Freeze(table);
  check("frozen");
  gc_.FullGC();
}

/// HashJoinBuildOp + HashJoinProbeOp composed in isolation: duplicate keys
/// surface every payload in deterministic order, dangling keys match
/// nothing, string payload specs classify via dictionary codes when frozen,
/// and an empty build side pushes nothing downstream.
TEST_P(OperatorPipelineTest, JoinBuildAndProbeCompose) {
  // Build side: keys 0..99, key k repeated 1 + k % 3 times, payload 10k + c.
  const catalog::Schema build_schema(
      {{"key", catalog::TypeId::kBigInt}, {"pay", catalog::TypeId::kBigInt}});
  catalog::SqlTable *build_table =
      catalog_.GetTable(catalog_.CreateTable("join_build", build_schema));
  {
    const auto init = build_table->FullInitializer();
    std::vector<byte> buffer(init.ProjectedRowSize() + 8);
    auto *txn = txn_manager_.BeginTransaction();
    for (int64_t k = 0; k < 100; k++) {
      for (int64_t c = 0; c < 1 + k % 3; c++) {
        ProjectedRow *row = init.InitializeRow(buffer.data());
        workload::Set<int64_t>(row, 0, k);
        workload::Set<int64_t>(row, 1, k * 10 + c);
        build_table->Insert(txn, *row);
      }
    }
    txn_manager_.Commit(txn);
  }
  // Probe side: ids 0..499 probing key id % 150 (a third dangle).
  const catalog::Schema probe_schema(
      {{"id", catalog::TypeId::kBigInt}, {"fk", catalog::TypeId::kBigInt}});
  catalog::SqlTable *probe_table =
      catalog_.GetTable(catalog_.CreateTable("join_probe", probe_schema));
  {
    const auto init = probe_table->FullInitializer();
    std::vector<byte> buffer(init.ProjectedRowSize() + 8);
    auto *txn = txn_manager_.BeginTransaction();
    for (int64_t i = 0; i < 500; i++) {
      ProjectedRow *row = init.InitializeRow(buffer.data());
      workload::Set<int64_t>(row, 0, i);
      workload::Set<int64_t>(row, 1, i % 150);
      probe_table->Insert(txn, *row);
    }
    txn_manager_.Commit(txn);
  }
  gc_.FullGC();

  for (const bool parallel : {false, true}) {
    common::WorkerPool pool(parallel ? 4 : 0);
    auto *txn = txn_manager_.BeginTransaction();
    op::PhysicalPlan plan;
    op::PipelineBuilder builder(&plan);
    builder.Scan(build_table, {0, 1});
    op::HashJoinBuildOp *build = builder.JoinBuild(0, op::PayloadSpec::Int64Column(1));
    op::Pipeline *probe_pipe = plan.AddPipeline(probe_table, {0, 1});
    probe_pipe->Add<op::HashJoinProbeOp>(/*key_col=*/1, build);
    CollectOp *collect = probe_pipe->Add<CollectOp>(0);
    plan.Run(txn, parallel ? &pool : nullptr, nullptr);
    txn_manager_.Commit(txn);

    EXPECT_EQ(build->Table().NumEntries(), 199u);  // sum of 1 + k % 3 over 0..99
    std::vector<CollectOp::Row> rows = collect->All();
    std::vector<std::pair<int64_t, uint64_t>> got;
    for (const CollectOp::Row &row : rows) got.emplace_back(row.id, row.payload);
    std::vector<std::pair<int64_t, uint64_t>> expected;
    for (int64_t i = 0; i < 500; i++) {
      const int64_t key = i % 150;
      if (key >= 100) continue;  // dangling
      for (int64_t c = 0; c < 1 + key % 3; c++) {
        expected.emplace_back(i, static_cast<uint64_t>(key * 10 + c));
      }
    }
    EXPECT_EQ(got, expected) << (parallel ? "parallel" : "inline")
                             << " build changed the match set or order";
  }

  // String payloads: tag in {A} / prefix "A" classify each row, dictionary
  // codes once frozen (per the gather-mode parameter).
  catalog::SqlTable *tagged = MakeMicroTable("join_tagged", 300);
  const auto string_payload_check = [&](const op::PayloadSpec &spec, auto expected_bit) {
    auto *txn = txn_manager_.BeginTransaction();
    op::PhysicalPlan plan;
    op::PipelineBuilder builder(&plan);
    builder.Scan(tagged, {0, 5});
    op::HashJoinBuildOp *build = builder.JoinBuild(/*key_col=*/0, spec);
    op::Pipeline *probe_pipe = plan.AddPipeline(tagged, {0, 5});
    probe_pipe->Add<op::HashJoinProbeOp>(0, build);
    CollectOp *collect = probe_pipe->Add<CollectOp>(0);
    plan.Run(txn, nullptr, nullptr);
    txn_manager_.Commit(txn);
    const std::vector<CollectOp::Row> rows = collect->All();
    ASSERT_EQ(rows.size(), 300u);
    for (const CollectOp::Row &row : rows) {
      EXPECT_EQ(row.payload, expected_bit(static_cast<uint64_t>(row.id)))
          << "id " << row.id;
    }
  };
  string_payload_check(op::PayloadSpec::StringIn(1, {"A", "C"}),
                       [](uint64_t i) { return i % 3 != 1 ? 1u : 0u; });
  Freeze(tagged);
  string_payload_check(op::PayloadSpec::StringPrefix(1, "B"),
                       [](uint64_t i) { return i % 3 == 1 ? 1u : 0u; });

  // Empty build side: probing pushes nothing downstream.
  catalog::SqlTable *no_rows =
      catalog_.GetTable(catalog_.CreateTable("join_empty", build_schema));
  auto *txn = txn_manager_.BeginTransaction();
  op::PhysicalPlan plan;
  op::PipelineBuilder builder(&plan);
  builder.Scan(no_rows, {0, 1});
  op::HashJoinBuildOp *build = builder.JoinBuild(0, op::PayloadSpec::Int64Column(1));
  op::Pipeline *probe_pipe = plan.AddPipeline(probe_table, {0, 1});
  probe_pipe->Add<op::HashJoinProbeOp>(1, build);
  CollectOp *collect = probe_pipe->Add<CollectOp>(0);
  plan.Run(txn, nullptr, nullptr);
  txn_manager_.Commit(txn);
  EXPECT_TRUE(build->Table().Empty());
  EXPECT_TRUE(collect->All().empty());
  gc_.FullGC();
}

/// AggregateOp grouped (one and two string columns) and ungrouped, all five
/// aggregate kinds, verified exactly against a manual pass — the micro table
/// fits one block, so the per-block partial IS the final accumulation and a
/// straight loop in row order reproduces it bit-exactly.
TEST_P(OperatorPipelineTest, AggregateGroupedAndUngrouped) {
  constexpr uint64_t kRows = 2500;
  catalog::SqlTable *table = MakeMicroTable("aggregate", kRows);
  ASSERT_EQ(table->UnderlyingTable().NumBlocks(), 1u) << "micro table must stay one block";

  struct Manual {
    double sum = 0;
    uint64_t count = 0;
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();
  };
  const auto manual_of = [&](auto group_of) {
    std::map<std::string, Manual> groups;
    for (uint64_t i = 0; i < kRows; i++) {
      if (!(MicroDate(i) <= 9030)) continue;
      Manual *m = &groups[group_of(i)];
      m->sum += MicroVal(i) * MicroVal2(i);
      m->count++;
      m->min = std::min(m->min, MicroVal(i));
      m->max = std::max(m->max, MicroVal(i));
    }
    return groups;
  };
  const std::vector<op::AggSpec> aggs = {
      op::AggSpec::Sum(op::Expr::Mul(op::ColumnRef::Batch(1), op::ColumnRef::Batch(2))),
      op::AggSpec::Count(),
      op::AggSpec::Min(op::Expr::Column(op::ColumnRef::Batch(1))),
      op::AggSpec::Max(op::Expr::Column(op::ColumnRef::Batch(1)))};

  const auto run = [&](std::vector<uint16_t> group_cols) {
    auto *txn = txn_manager_.BeginTransaction();
    op::PhysicalPlan plan;
    op::PipelineBuilder builder(&plan);
    builder.Scan(table, {0, 1, 2, 3, 4, 5, 6})
        .Filter({op::Predicate::U32AtMost(3, 9030)});
    op::AggregateOp *agg = builder.Aggregate(std::move(group_cols), aggs);
    plan.Run(txn, nullptr, nullptr);
    txn_manager_.Commit(txn);
    return agg->Result();
  };

  const auto check = [&](const char *label) {
    static const char *kTags[] = {"A", "B", "C"};
    // One group column.
    {
      const auto expected = manual_of([](uint64_t i) { return std::string(kTags[i % 3]); });
      const std::vector<op::ResultRow> result = run({5});
      ASSERT_EQ(result.size(), expected.size()) << label;
      size_t r = 0;
      for (const auto &[key, manual] : expected) {  // std::map iterates sorted, like Result
        EXPECT_EQ(result[r].keys[0], key) << label;
        EXPECT_EQ(result[r].values[0].f64, manual.sum) << label << " group " << key;
        EXPECT_EQ(result[r].values[1].u64, manual.count) << label << " group " << key;
        EXPECT_EQ(result[r].values[2].f64, manual.min) << label << " group " << key;
        EXPECT_EQ(result[r].values[3].f64, manual.max) << label << " group " << key;
        r++;
      }
    }
    // Two group columns (dictionary pair-coding when frozen dictionary mode).
    {
      const auto expected = manual_of([](uint64_t i) {
        return std::string(kTags[i % 3]) + "" + (i % 2 == 0 ? "X" : "Y");
      });
      const std::vector<op::ResultRow> result = run({5, 6});
      ASSERT_EQ(result.size(), expected.size()) << label;
      size_t r = 0;
      for (const auto &[key, manual] : expected) {
        EXPECT_EQ(result[r].keys[0] + "" + result[r].keys[1], key) << label;
        EXPECT_EQ(result[r].values[0].f64, manual.sum) << label << " group " << key;
        EXPECT_EQ(result[r].values[1].u64, manual.count) << label << " group " << key;
        r++;
      }
    }
    // Ungrouped: one row, even when nothing qualifies.
    {
      const auto expected = manual_of([](uint64_t) { return std::string(); });
      const std::vector<op::ResultRow> result = run({});
      ASSERT_EQ(result.size(), 1u) << label;
      EXPECT_TRUE(result[0].keys.empty());
      EXPECT_EQ(result[0].values[0].f64, expected.at("").sum) << label;
      EXPECT_EQ(result[0].values[1].u64, expected.at("").count) << label;

      auto *txn = txn_manager_.BeginTransaction();
      op::PhysicalPlan plan;
      op::PipelineBuilder builder(&plan);
      builder.Scan(table, {0, 1, 2, 3, 4, 5, 6})
          .Filter({op::Predicate::U32AtMost(3, 1)});  // nothing qualifies
      op::AggregateOp *agg = builder.Aggregate({}, {op::AggSpec::Count()});
      plan.Run(txn, nullptr, nullptr);
      txn_manager_.Commit(txn);
      ASSERT_EQ(agg->Result().size(), 1u) << label;
      EXPECT_EQ(agg->Result()[0].values[0].u64, 0u) << label;
    }
  };

  check("hot");
  Freeze(table);
  check("frozen");
  gc_.FullGC();
}

/// The headline agreement matrix: Q1/Q6/Q12/Q14 as plans vs the scalar
/// references, at 1/2/4/8 workers, over hot, ~50% frozen, and fully frozen
/// tables — bit-exact everywhere, both access paths exercised where the
/// freeze state implies them.
TEST_P(OperatorPipelineTest, PlansMatchScalarAcrossFreezeStatesAndThreadCounts) {
  GenerateTpch(RowsForBlocks(2));
  ASSERT_GT(lineitem_->UnderlyingTable().NumBlocks(), 2u);

  // 0% frozen: every morsel of every scan materializes.
  ScanStats stats;
  for (const uint32_t threads : {1u, 2u, 4u, 8u}) {
    ExpectPlansAgree(threads, &stats);
    EXPECT_EQ(stats.frozen_blocks, 0u);
    EXPECT_GT(stats.hot_blocks, 0u);
  }

  // ~50% frozen (all three tables): morsels mix zero-copy and
  // materialization.
  for (catalog::SqlTable *table : {lineitem_, orders_, part_}) {
    storage::DataTable &dt = table->UnderlyingTable();
    const std::vector<storage::RawBlock *> blocks = dt.Blocks();
    for (size_t i = 0; i < blocks.size() / 2; i++) {
      transformer_.ProcessGroup(&dt, {blocks[i]}, nullptr);
    }
  }
  for (const uint32_t threads : {1u, 2u, 4u, 8u}) {
    ExpectPlansAgree(threads, &stats);
    EXPECT_GT(stats.frozen_blocks, 0u);
    EXPECT_GT(stats.hot_blocks, 0u);
  }

  // 100% frozen: every pipeline streams zero-copy batches.
  for (catalog::SqlTable *table : {lineitem_, orders_, part_}) {
    Freeze(table);
  }
  for (const uint32_t threads : {1u, 2u, 4u, 8u}) {
    ExpectPlansAgree(threads, &stats);
    EXPECT_GT(stats.frozen_blocks, 0u);
    EXPECT_EQ(stats.hot_blocks, 0u);
  }
  gc_.FullGC();
}

/// QueryRunner wiring for the new query: all three ExecModes agree, the
/// answer is nontrivial, and the stats span the PART build scan and the
/// LINEITEM probe scan.
TEST_P(OperatorPipelineTest, QueryRunnerRunsQ14InAllModes) {
  GenerateTpch(RowsForBlocks(1));
  pipeline_.EnqueueTable(&lineitem_->UnderlyingTable());
  pipeline_.RunOnce();

  QueryRunner runner(&txn_manager_, /*num_threads=*/2);
  const auto vec = runner.RunQ14(lineitem_, part_);
  const auto scalar = runner.RunQ14(lineitem_, part_, {}, ExecMode::kScalar);
  const auto par = runner.RunQ14(lineitem_, part_, {}, ExecMode::kParallel);
  EXPECT_EQ(vec.promo_revenue, scalar.promo_revenue);
  EXPECT_EQ(par.promo_revenue, scalar.promo_revenue);
  EXPECT_GT(vec.promo_revenue, 0.0) << "the generated workload should join and find promos";
  EXPECT_LT(vec.promo_revenue, 100.0);

  uint64_t expected_rows = 0;
  auto *txn = txn_manager_.BeginTransaction();
  for (catalog::SqlTable *table : {lineitem_, part_}) {
    const auto init = table->InitializerForColumns({0});
    std::vector<byte> buffer(init.ProjectedRowSize() + 8);
    for (auto it = table->begin(); !it.Done(); ++it) {
      if (table->Select(txn, *it, init.InitializeRow(buffer.data()))) expected_rows++;
    }
  }
  txn_manager_.Commit(txn);
  EXPECT_EQ(vec.stats.rows, expected_rows);
  gc_.FullGC();
}

/// Q14 with an empty PART or an empty LINEITEM is 0 on every engine — the
/// plan's probe pushes nothing and the ungrouped aggregate still produces
/// its zero row.
TEST_P(OperatorPipelineTest, Q14EmptySidesYieldZero) {
  lineitem_ = tpch::GenerateLineItem(&catalog_, &txn_manager_, 2000, /*seed=*/7, 0);
  catalog::SqlTable *no_parts =
      catalog_.GetTable(catalog_.CreateTable("part_empty", tpch::PartSchema()));
  catalog::SqlTable *no_lines =
      catalog_.GetTable(catalog_.CreateTable("lineitem_empty", tpch::LineItemSchema()));
  catalog::SqlTable *some_parts = tpch::GeneratePart(&catalog_, &txn_manager_, 500, 13, 0);
  gc_.FullGC();

  QueryRunner runner(&txn_manager_, 2);
  for (const ExecMode mode : {ExecMode::kVectorized, ExecMode::kScalar, ExecMode::kParallel}) {
    EXPECT_EQ(runner.RunQ14(lineitem_, no_parts, {}, mode).promo_revenue, 0.0);
    EXPECT_EQ(runner.RunQ14(no_lines, some_parts, {}, mode).promo_revenue, 0.0);
  }
  gc_.FullGC();
}

/// The concurrency scenario: the Q14 plan runs on four scan workers while
/// (a) a writer rewrites lineitem prices and discounts (the FP aggregate's
/// inputs) and deletes rows — re-heating frozen blocks under both scans —
/// and (b) the transformation pipeline keeps re-freezing whatever cools
/// down. Every iteration compares the parallel plan against the scalar
/// reference inside the SAME transaction: any MVCC violation on either side
/// of the join, or any worker-count dependence of the FP sums, shows up as
/// a divergence.
TEST_P(OperatorPipelineTest, Q14ParallelStaysConsistentUnderConcurrentWritesAndTransform) {
  GenerateTpch(RowsForBlocks(1));
  storage::DataTable &lines = lineitem_->UnderlyingTable();
  storage::DataTable &parts = part_->UnderlyingTable();

  for (storage::DataTable *dt : {&lines, &parts}) pipeline_.EnqueueTable(dt);
  pipeline_.RunOnce();

  std::atomic<bool> stop{false};

  // The transform thread owns the GC for the duration (single-consumer).
  std::thread transform_thread([&] {
    while (!stop.load(std::memory_order_acquire)) {
      pipeline_.EnqueueTable(&lines);
      pipeline_.EnqueueTable(&parts);
      pipeline_.RunOnce();
      gc_.PerformGarbageCollection();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  std::thread writer([&] {
    common::Xorshift rng(321);
    const auto update_init =
        lineitem_->InitializerForColumns({tpch::L_EXTENDEDPRICE, tpch::L_DISCOUNT});
    std::vector<byte> update_buf(update_init.ProjectedRowSize() + 8);
    while (!stop.load(std::memory_order_acquire)) {
      auto *txn = txn_manager_.BeginTransaction();
      bool ok = true;
      uint32_t visited = 0;
      for (auto it = lineitem_->begin(); !it.Done() && visited < 150 && ok; ++it, ++visited) {
        const uint64_t dice = rng.Uniform(0, 39);
        if (dice == 0) {
          ok = lineitem_->Delete(txn, *it);
        } else if (dice < 8) {
          // Rewrite the promo-revenue inputs, so any stale read on either
          // access path changes the FP sums and cannot hide.
          ProjectedRow *delta = update_init.InitializeRow(update_buf.data());
          workload::Set<double>(delta, 0,
                                static_cast<double>(rng.Uniform(1000, 100000)) / 100.0);
          workload::Set<double>(delta, 1, static_cast<double>(rng.Uniform(0, 10)) / 100.0);
          ok = lineitem_->Update(txn, *it, *delta);
        }
      }
      if (ok) {
        txn_manager_.Commit(txn);
      } else {
        txn_manager_.Abort(txn);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  common::WorkerPool pool(4);
  ScanStats aggregate;
  int iterations = 0;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (iterations < 25 ||
         ((aggregate.frozen_blocks == 0 || aggregate.hot_blocks == 0) &&
          std::chrono::steady_clock::now() < deadline)) {
    auto *txn = txn_manager_.BeginTransaction();
    ScanStats stats;
    const double parallel = q::RunQ14Parallel(lineitem_, part_, txn, {}, &pool, &stats);
    const double scalar = q::RunQ14Scalar(lineitem_, part_, txn, {}, nullptr);
    EXPECT_EQ(parallel, scalar)
        << "parallel Q14 plan diverged from the scalar reference in the same snapshot "
        << "(iteration " << iterations << ")";
    txn_manager_.Commit(txn);
    aggregate.Add(stats);
    iterations++;
  }
  stop.store(true, std::memory_order_release);
  writer.join();
  transform_thread.join();

  // Both access paths must actually have been exercised across the run.
  EXPECT_GT(aggregate.frozen_blocks, 0u) << "no morsel ever took the zero-copy path";
  EXPECT_GT(aggregate.hot_blocks, 0u) << "no morsel ever took the materialization path";
  gc_.FullGC();
}

/// A PayloadSpec whose string list is empty is only constructible by
/// bypassing the factories (they assert); the Matches guard still must not
/// dereference strings.front() — it classifies everything as a non-match.
TEST(PayloadSpecGuards, EmptyStringListMatchesNothing) {
  op::PayloadSpec hollow_in;
  hollow_in.kind = op::PayloadSpec::Kind::kStringIn;
  EXPECT_FALSE(hollow_in.Matches("anything"));
  EXPECT_FALSE(hollow_in.Matches(""));

  op::PayloadSpec hollow_prefix;
  hollow_prefix.kind = op::PayloadSpec::Kind::kStringPrefix;
  EXPECT_FALSE(hollow_prefix.Matches("anything"));
  EXPECT_FALSE(hollow_prefix.Matches(""));

  // The factories still classify normally.
  EXPECT_TRUE(op::PayloadSpec::StringIn(0, {"A", "B"}).Matches("B"));
  EXPECT_FALSE(op::PayloadSpec::StringIn(0, {"A", "B"}).Matches("C"));
  EXPECT_TRUE(op::PayloadSpec::StringPrefix(0, "PRO").Matches("PROMO X"));
  EXPECT_FALSE(op::PayloadSpec::StringPrefix(0, "PRO").Matches("PRMO"));
  // An empty prefix is a valid spec: every string starts with "".
  EXPECT_TRUE(op::PayloadSpec::StringPrefix(0, "").Matches("anything"));
}

namespace {

/// Simulates a pathological block — a join-key explosion inflating the match
/// list, a plan stacking projections — then asserts the next blocks' chunks
/// came back shrunk to the retention thresholds. An inline run reuses ONE
/// pooled chunk for every block, so ordinal k observes the Reset after
/// ordinal k-1's inflation.
class InflateOp final : public op::Operator {
 public:
  void Push(op::Chunk *chunk) override {
    switch (chunk->block_ordinal) {
      case 0: {
        chunk->matches.reserve(op::Chunk::kMaxRetainedMatches * 2);
        for (int i = 0; i < 12; i++) chunk->AppendComputed();
        chunk->computed[0].values.reserve(op::Chunk::kMaxRetainedComputedValues * 2);
        break;
      }
      case 1: {
        // Everything above the thresholds was released by Reset...
        EXPECT_LE(chunk->matches.capacity(), op::Chunk::kMaxRetainedMatches);
        EXPECT_LE(chunk->computed.size(), op::Chunk::kMaxRetainedComputedColumns);
        EXPECT_LE(chunk->computed[0].values.capacity(),
                  op::Chunk::kMaxRetainedComputedValues);
        EXPECT_EQ(chunk->num_computed, 0u);
        chunk->matches.reserve(kModestCapacity);
        break;
      }
      default: {
        // ...while a well-behaved block's capacity is retained across Resets.
        EXPECT_GE(chunk->matches.capacity(), kModestCapacity);
        EXPECT_LE(chunk->matches.capacity(), op::Chunk::kMaxRetainedMatches);
        break;
      }
    }
    blocks_seen_++;
  }

  static constexpr size_t kModestCapacity = 1000;
  size_t blocks_seen_ = 0;
};

/// Throws on the first chunk, counts the rest.
class ThrowOnceOp final : public op::Operator {
 public:
  void Push(op::Chunk *chunk) override {
    if (!thrown_) {
      thrown_ = true;
      throw std::runtime_error("injected operator failure");
    }
    rows_ += chunk->sel.Size();
  }

  bool thrown_ = false;
  uint64_t rows_ = 0;
};

}  // namespace

/// The chunk pool's shrink policy: one block inflating the match list or the
/// computed-column stack beyond Chunk's retention thresholds must not pin
/// that capacity for the rest of the run (see InflateOp above).
TEST_P(OperatorPipelineTest, ChunkPoolShrinksPathologicalCapacity) {
  const catalog::Schema schema(
      {{"id", catalog::TypeId::kBigInt}, {"fk", catalog::TypeId::kBigInt}});
  catalog::SqlTable *table = catalog_.GetTable(catalog_.CreateTable("shrink", schema));
  const auto init = table->FullInitializer();
  std::vector<byte> buffer(init.ProjectedRowSize() + 8);
  auto *txn = txn_manager_.BeginTransaction();
  int64_t next_id = 0;
  while (table->UnderlyingTable().NumBlocks() < 4) {
    ProjectedRow *row = init.InitializeRow(buffer.data());
    workload::Set<int64_t>(row, 0, next_id);
    workload::Set<int64_t>(row, 1, next_id % 7);
    table->Insert(txn, *row);
    next_id++;
  }
  txn_manager_.Commit(txn);
  gc_.FullGC();

  txn = txn_manager_.BeginTransaction();
  op::PhysicalPlan plan;
  op::Pipeline *pipe = plan.AddPipeline(table, {0, 1});
  InflateOp *inflate = pipe->Add<InflateOp>();
  plan.Run(txn, nullptr, nullptr);  // inline: one pooled chunk, blocks in order
  txn_manager_.Commit(txn);
  EXPECT_GE(inflate->blocks_seen_, 4u);
  gc_.FullGC();
}

/// An operator throwing mid-scan must unwind cleanly through the scan
/// source's chunk checkout (the chunk returns to the pool with its batch
/// pointer dropped), and the table must stay fully scannable afterward.
TEST_P(OperatorPipelineTest, ScanSurvivesThrowingOperator) {
  constexpr uint64_t kRows = 2000;
  catalog::SqlTable *table = MakeMicroTable("throwing", kRows);

  const auto check = [&](const char *label) {
    auto *txn = txn_manager_.BeginTransaction();
    op::PhysicalPlan plan;
    op::Pipeline *pipe = plan.AddPipeline(table, {0, 1});
    ThrowOnceOp *thrower = pipe->Add<ThrowOnceOp>();
    bool caught = false;
    try {
      plan.Run(txn, nullptr, nullptr);
    } catch (const std::runtime_error &) {
      caught = true;
    }
    txn_manager_.Commit(txn);
    EXPECT_TRUE(caught) << label << ": the injected failure should propagate";
    EXPECT_TRUE(thrower->thrown_) << label;

    // The same table scans to completion afterward — nothing was torn.
    txn = txn_manager_.BeginTransaction();
    op::PhysicalPlan retry;
    op::Pipeline *retry_pipe = retry.AddPipeline(table, {0, 1});
    CollectOp *collect = retry_pipe->Add<CollectOp>(0);
    retry.Run(txn, nullptr, nullptr);
    txn_manager_.Commit(txn);
    EXPECT_EQ(collect->All().size(), kRows) << label;
  };

  check("hot");
  Freeze(table);
  check("frozen");
  gc_.FullGC();
}

INSTANTIATE_TEST_SUITE_P(Modes, OperatorPipelineTest,
                         ::testing::Values(GatherMode::kVarlenGather,
                                           GatherMode::kDictionaryCompression),
                         [](const auto &info) {
                           return info.param == GatherMode::kVarlenGather ? "Gather"
                                                                          : "Dictionary";
                         });

}  // namespace mainline
