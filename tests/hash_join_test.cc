#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "catalog/catalog.h"
#include "common/rand_util.h"
#include "common/worker_pool.h"
#include "execution/hash_join.h"
#include "workload/tpch/query_runner.h"
#include "workload/tpch/tpch_queries.h"
#include "gc/garbage_collector.h"
#include "storage/storage_util.h"
#include "transform/access_observer.h"
#include "transform/block_transformer.h"
#include "transform/transform_pipeline.h"
#include "workload/row_util.h"
#include "workload/tpch/lineitem.h"
#include "workload/tpch/orders.h"

namespace mainline {

using execution::ColumnVectorBatch;
using workload::ExecMode;
using execution::JoinEntry;
using execution::JoinHashTable;
using workload::QueryRunner;
using execution::ScanStats;
using storage::BlockState;
using storage::ProjectedRow;
using transform::GatherMode;
namespace q = workload::tpch;
namespace tpch = workload::tpch;

/// Coverage of the morsel-parallel hash join: the JoinHashTable operator
/// itself (duplicates, empty sides, parallel build == inline build) and
/// TPC-H Q12 on top of it — parallel == vectorized == scalar BIT-EXACTLY at
/// every worker count, over hot, mixed, and frozen tables, and under
/// concurrent writers with the transformation pipeline re-freezing blocks.
class HashJoinTest : public ::testing::TestWithParam<GatherMode> {
 protected:
  HashJoinTest()
      : block_store_(2000, 100),
        buffer_pool_(10000000, 1000),
        catalog_(&block_store_),
        txn_manager_(&buffer_pool_, true, nullptr),
        gc_(&txn_manager_),
        observer_(/*cold_threshold=*/2),
        transformer_(&txn_manager_, &gc_, GetParam()),
        pipeline_(&observer_, &transformer_, /*group_size=*/4) {
    gc_.SetAccessObserver(&observer_);
  }

  ~HashJoinTest() { gc_.SetAccessObserver(nullptr); }

  /// Rows spanning a little over `blocks` lineitem blocks.
  static uint64_t RowsForBlocks(uint64_t blocks) {
    const uint32_t slots = tpch::LineItemSchema().ToBlockLayout().NumSlots();
    return blocks * slots + slots / 2;
  }

  /// LINEITEM plus an ORDERS table sized so that only some lineitems find a
  /// matching order (orderkeys above `rows / 3` dangle) — the join must not
  /// assume a foreign key always resolves.
  void Generate(uint64_t rows) {
    lineitem_ = tpch::GenerateLineItem(&catalog_, &txn_manager_, rows, /*seed=*/7,
                                       /*batch_size=*/4096);
    orders_ = tpch::GenerateOrders(&catalog_, &txn_manager_, rows / 3, /*seed=*/11,
                                   /*batch_size=*/4096);
    gc_.FullGC();
  }

  /// A tiny build-side table for operator-level tests: (key, payload) pairs.
  catalog::SqlTable *MakeBuildTable(const std::string &name,
                                    const std::vector<JoinEntry> &entries) {
    const catalog::Schema schema{{{"key", catalog::TypeId::kBigInt},
                                  {"payload", catalog::TypeId::kBigInt}}};
    catalog::SqlTable *table = catalog_.GetTable(catalog_.CreateTable(name, schema));
    const auto init = table->FullInitializer();
    std::vector<byte> buffer(init.ProjectedRowSize() + 8);
    auto *txn = txn_manager_.BeginTransaction();
    for (const JoinEntry &entry : entries) {
      ProjectedRow *row = init.InitializeRow(buffer.data());
      workload::Set<int64_t>(row, 0, entry.key);
      workload::Set<int64_t>(row, 1, static_cast<int64_t>(entry.payload));
      table->Insert(txn, *row);
    }
    txn_manager_.Commit(txn);
    return table;
  }

  /// Build a JoinHashTable from a (key, payload) table over `pool`.
  JoinHashTable Build(catalog::SqlTable *table, common::WorkerPool *pool,
                      ScanStats *stats = nullptr) {
    auto *txn = txn_manager_.BeginTransaction();
    JoinHashTable result = JoinHashTable::Build(
        table, txn, {0, 1},
        [](const ColumnVectorBatch &batch, std::vector<JoinEntry> *out) {
          const int64_t *keys = batch.Column(0).buffer(0)->data_as<int64_t>();
          const int64_t *payloads = batch.Column(1).buffer(0)->data_as<int64_t>();
          for (int64_t row = 0; row < batch.NumRows(); row++) {
            out->push_back({keys[row], static_cast<uint64_t>(payloads[row])});
          }
        },
        pool, stats);
    txn_manager_.Commit(txn);
    return result;
  }

  /// Q12 at `num_threads` against the scalar reference and the sequential
  /// vectorized engine, all inside ONE transaction so every engine answers
  /// from the same snapshot.
  void ExpectQ12Agrees(uint32_t num_threads, ScanStats *stats_out = nullptr) {
    common::WorkerPool pool(num_threads);
    auto *txn = txn_manager_.BeginTransaction();
    ScanStats par_stats;
    const auto par = q::RunQ12Parallel(orders_, lineitem_, txn, {}, &pool, &par_stats);
    const auto scalar = q::RunQ12Scalar(orders_, lineitem_, txn, {}, nullptr);
    const auto vec = q::RunQ12(orders_, lineitem_, txn, {}, nullptr);
    txn_manager_.Commit(txn);

    ASSERT_EQ(par.size(), scalar.size()) << num_threads << " threads";
    for (size_t i = 0; i < par.size(); i++) {
      EXPECT_TRUE(par[i] == scalar[i])
          << "parallel Q12 group " << par[i].shipmode
          << " diverged from the scalar reference at " << num_threads << " threads";
      EXPECT_TRUE(par[i] == vec[i])
          << "parallel Q12 diverged from the sequential vectorized engine at " << num_threads
          << " threads";
    }
    if (stats_out != nullptr) *stats_out = par_stats;
  }

  storage::BlockStore block_store_;
  storage::RecordBufferSegmentPool buffer_pool_;
  catalog::Catalog catalog_;
  transaction::TransactionManager txn_manager_;
  gc::GarbageCollector gc_;
  transform::AccessObserver observer_;
  transform::BlockTransformer transformer_;
  transform::TransformPipeline pipeline_;
  catalog::SqlTable *lineitem_ = nullptr;
  catalog::SqlTable *orders_ = nullptr;
};

/// Duplicate build keys: every copy must surface on a probe, in the same
/// deterministic order regardless of how the build was parallelized.
TEST_P(HashJoinTest, BuildSideDuplicateKeysAllMatch) {
  std::vector<JoinEntry> entries;
  for (int64_t k = 0; k < 100; k++) {
    for (uint64_t copy = 0; copy < 1 + static_cast<uint64_t>(k % 4); copy++) {
      entries.push_back({k, static_cast<uint64_t>(k) * 10 + copy});
    }
  }
  catalog::SqlTable *table = MakeBuildTable("dups", entries);

  common::WorkerPool pool(4);
  const JoinHashTable inline_build = Build(table, nullptr);
  const JoinHashTable parallel_build = Build(table, &pool);
  EXPECT_EQ(inline_build.NumEntries(), entries.size());
  EXPECT_EQ(parallel_build.NumEntries(), entries.size());

  for (int64_t k = 0; k < 100; k++) {
    std::vector<uint64_t> inline_matches, parallel_matches;
    inline_build.ForEachMatch(k, [&](uint64_t p) { inline_matches.push_back(p); });
    parallel_build.ForEachMatch(k, [&](uint64_t p) { parallel_matches.push_back(p); });
    ASSERT_EQ(inline_matches.size(), 1 + static_cast<size_t>(k % 4)) << "key " << k;
    EXPECT_EQ(inline_matches, parallel_matches)
        << "parallel build changed the match order for key " << k;
    for (uint64_t copy = 0; copy < inline_matches.size(); copy++) {
      EXPECT_EQ(inline_matches[copy], static_cast<uint64_t>(k) * 10 + copy);
    }
  }
  // Missing keys match nothing.
  parallel_build.ForEachMatch(1000, [](uint64_t) { FAIL() << "matched a missing key"; });
  gc_.FullGC();
}

/// Empty build and probe sides must produce empty (not crashing) joins on
/// every engine.
TEST_P(HashJoinTest, EmptyBuildAndProbeSides) {
  // Operator level: an empty build table.
  catalog::SqlTable *empty = MakeBuildTable("empty", {});
  common::WorkerPool pool(2);
  const JoinHashTable table = Build(empty, &pool);
  EXPECT_TRUE(table.Empty());
  table.ForEachMatch(0, [](uint64_t) { FAIL() << "empty table produced a match"; });

  // Query level: empty ORDERS (no order ever matches), then empty LINEITEM.
  lineitem_ = tpch::GenerateLineItem(&catalog_, &txn_manager_, 2000, /*seed=*/7, 0);
  orders_ = tpch::GenerateOrders(&catalog_, &txn_manager_, 0);
  gc_.FullGC();
  QueryRunner runner(&txn_manager_, 2);
  for (const ExecMode mode : {ExecMode::kVectorized, ExecMode::kScalar, ExecMode::kParallel}) {
    EXPECT_TRUE(runner.RunQ12(orders_, lineitem_, {}, mode).rows.empty());
  }

  catalog::SqlTable *no_lines =
      catalog_.GetTable(catalog_.CreateTable("lineitem_empty", tpch::LineItemSchema()));
  catalog::SqlTable *some_orders =
      tpch::GenerateOrders(&catalog_, &txn_manager_, 500, 11, 0, "orders_filled");
  gc_.FullGC();
  for (const ExecMode mode : {ExecMode::kVectorized, ExecMode::kScalar, ExecMode::kParallel}) {
    EXPECT_TRUE(runner.RunQ12(some_orders, no_lines, {}, mode).rows.empty());
  }
  gc_.FullGC();
}

/// A duplicated build side must exactly double every join count — checked
/// through full Q12 so duplicates flow through probe and aggregation too.
TEST_P(HashJoinTest, DuplicateOrdersDoubleTheCounts) {
  const uint64_t rows = 4000;
  lineitem_ = tpch::GenerateLineItem(&catalog_, &txn_manager_, rows, /*seed=*/7, 0);
  orders_ = tpch::GenerateOrders(&catalog_, &txn_manager_, rows / 3, /*seed=*/11, 0);
  gc_.FullGC();

  // Clone ORDERS with every row twice (same generator stream, two passes).
  catalog::SqlTable *doubled =
      catalog_.GetTable(catalog_.CreateTable("orders_doubled", tpch::OrdersSchema()));
  {
    const auto read_init = orders_->FullInitializer();
    std::vector<byte> buffer(read_init.ProjectedRowSize() + 8);
    auto *txn = txn_manager_.BeginTransaction();
    for (int pass = 0; pass < 2; pass++) {
      for (auto it = orders_->begin(); !it.Done(); ++it) {
        ProjectedRow *row = read_init.InitializeRow(buffer.data());
        if (!orders_->Select(txn, *it, row)) continue;
        // Re-own the varlen values: Insert stores the entry verbatim, and two
        // tables must not share one owned buffer.
        storage::StorageUtil::DeepCopyVarlens(doubled->UnderlyingTable().GetLayout(), row);
        doubled->Insert(txn, *row);
      }
    }
    txn_manager_.Commit(txn);
  }
  gc_.FullGC();

  QueryRunner runner(&txn_manager_, 4);
  const auto once = runner.RunQ12(orders_, lineitem_, {}, ExecMode::kParallel);
  const auto twice = runner.RunQ12(doubled, lineitem_, {}, ExecMode::kParallel);
  const auto twice_scalar = runner.RunQ12(doubled, lineitem_, {}, ExecMode::kScalar);
  ASSERT_FALSE(once.rows.empty());
  ASSERT_EQ(once.rows.size(), twice.rows.size());
  EXPECT_TRUE(twice.rows == twice_scalar.rows);
  for (size_t i = 0; i < once.rows.size(); i++) {
    EXPECT_EQ(twice.rows[i].shipmode, once.rows[i].shipmode);
    EXPECT_EQ(twice.rows[i].high_line_count, 2 * once.rows[i].high_line_count);
    EXPECT_EQ(twice.rows[i].low_line_count, 2 * once.rows[i].low_line_count);
  }
  gc_.FullGC();
}

/// The headline agreement matrix: hot, ~50% frozen, and fully frozen tables
/// at 1/2/4 workers — every engine bit-exact, both access paths exercised
/// where the freeze state implies them.
TEST_P(HashJoinTest, MatchesScalarAcrossFreezeStatesAndThreadCounts) {
  Generate(RowsForBlocks(2));
  storage::DataTable &lines = lineitem_->UnderlyingTable();
  storage::DataTable &ords = orders_->UnderlyingTable();
  ASSERT_GT(lines.NumBlocks(), 2u);

  // 0% frozen: every morsel of both scans materializes.
  ScanStats stats;
  for (const uint32_t threads : {1u, 2u, 4u, 8u}) {
    ExpectQ12Agrees(threads, &stats);
    EXPECT_EQ(stats.frozen_blocks, 0u);
    EXPECT_GT(stats.hot_blocks, 0u);
  }

  // ~50% frozen (both tables): morsels mix zero-copy and materialization.
  for (storage::DataTable *dt : {&lines, &ords}) {
    const std::vector<storage::RawBlock *> blocks = dt->Blocks();
    for (size_t i = 0; i < blocks.size() / 2; i++) {
      transformer_.ProcessGroup(dt, {blocks[i]}, nullptr);
    }
  }
  for (const uint32_t threads : {1u, 2u, 4u, 8u}) {
    ExpectQ12Agrees(threads, &stats);
    EXPECT_GT(stats.frozen_blocks, 0u);
    EXPECT_GT(stats.hot_blocks, 0u);
  }

  // 100% frozen: the build side reads dictionary-or-gathered varlens in
  // place, the probe side streams zero-copy batches.
  for (storage::DataTable *dt : {&lines, &ords}) {
    pipeline_.EnqueueTable(dt);
    pipeline_.RunOnce();
    for (storage::RawBlock *block : dt->Blocks()) {
      ASSERT_EQ(block->controller.GetState(), BlockState::kFrozen);
    }
  }
  for (const uint32_t threads : {1u, 2u, 4u, 8u}) {
    ExpectQ12Agrees(threads, &stats);
    EXPECT_GT(stats.frozen_blocks, 0u);
    EXPECT_EQ(stats.hot_blocks, 0u);
  }
  gc_.FullGC();
}

/// QueryRunner wiring: all three ExecModes agree and stats cover both scans.
TEST_P(HashJoinTest, QueryRunnerRunsQ12InAllModes) {
  Generate(RowsForBlocks(1));
  pipeline_.EnqueueTable(&lineitem_->UnderlyingTable());
  pipeline_.RunOnce();

  QueryRunner runner(&txn_manager_, /*num_threads=*/2);
  const auto vec = runner.RunQ12(orders_, lineitem_);
  const auto scalar = runner.RunQ12(orders_, lineitem_, {}, ExecMode::kScalar);
  const auto par = runner.RunQ12(orders_, lineitem_, {}, ExecMode::kParallel);
  ASSERT_FALSE(vec.rows.empty());
  EXPECT_TRUE(vec.rows == scalar.rows);
  EXPECT_TRUE(par.rows == scalar.rows);
  // Two ship modes, counts bounded by qualifying lineitems.
  EXPECT_LE(vec.rows.size(), 2u);
  // The stats span the ORDERS build scan and the LINEITEM probe scan.
  uint64_t line_rows = 0, order_rows = 0;
  auto *txn = txn_manager_.BeginTransaction();
  const auto count_rows = [&](catalog::SqlTable *table) {
    const auto init = table->InitializerForColumns({0});
    std::vector<byte> buffer(init.ProjectedRowSize() + 8);
    uint64_t n = 0;
    for (auto it = table->begin(); !it.Done(); ++it) {
      if (table->Select(txn, *it, init.InitializeRow(buffer.data()))) n++;
    }
    return n;
  };
  line_rows = count_rows(lineitem_);
  order_rows = count_rows(orders_);
  txn_manager_.Commit(txn);
  EXPECT_EQ(vec.stats.rows, line_rows + order_rows);
  gc_.FullGC();
}

/// The concurrency scenario: Q12 runs on four scan workers while (a) a
/// writer updates ship modes, deletes, and re-inserts lineitems — re-heating
/// frozen blocks under both scans — and (b) the transformation pipeline
/// keeps re-freezing whatever cools down. Every iteration compares the
/// parallel join against the scalar reference inside the SAME transaction:
/// any MVCC violation on either side of the join shows up as a divergence.
TEST_P(HashJoinTest, Q12ParallelStaysConsistentUnderConcurrentWritesAndTransform) {
  Generate(RowsForBlocks(1));
  storage::DataTable &lines = lineitem_->UnderlyingTable();
  storage::DataTable &ords = orders_->UnderlyingTable();

  for (storage::DataTable *dt : {&lines, &ords}) {
    pipeline_.EnqueueTable(dt);
  }
  pipeline_.RunOnce();

  std::atomic<bool> stop{false};

  // The transform thread owns the GC for the duration (single-consumer).
  std::thread transform_thread([&] {
    while (!stop.load(std::memory_order_acquire)) {
      pipeline_.EnqueueTable(&lines);
      pipeline_.EnqueueTable(&ords);
      pipeline_.RunOnce();
      gc_.PerformGarbageCollection();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  std::thread writer([&] {
    common::Xorshift rng(123);
    static const char *kModes[] = {"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"};
    const auto update_init = lineitem_->InitializerForColumns({tpch::L_SHIPMODE});
    std::vector<byte> update_buf(update_init.ProjectedRowSize() + 8);
    while (!stop.load(std::memory_order_acquire)) {
      auto *txn = txn_manager_.BeginTransaction();
      bool ok = true;
      uint32_t visited = 0;
      for (auto it = lineitem_->begin(); !it.Done() && visited < 150 && ok; ++it, ++visited) {
        const uint64_t dice = rng.Uniform(0, 39);
        if (dice == 0) {
          ok = lineitem_->Delete(txn, *it);
        } else if (dice < 8) {
          // Flip the ship mode — the join's group-by column and one of its
          // filters, so writer visibility errors cannot hide.
          ProjectedRow *delta = update_init.InitializeRow(update_buf.data());
          workload::SetVarchar(delta, 0, kModes[rng.Uniform(0, 6)]);
          ok = lineitem_->Update(txn, *it, *delta);
        }
      }
      if (ok) {
        txn_manager_.Commit(txn);
      } else {
        txn_manager_.Abort(txn);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  common::WorkerPool pool(4);
  ScanStats aggregate;
  int iterations = 0;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (iterations < 25 ||
         ((aggregate.frozen_blocks == 0 || aggregate.hot_blocks == 0) &&
          std::chrono::steady_clock::now() < deadline)) {
    auto *txn = txn_manager_.BeginTransaction();
    ScanStats stats;
    const auto parallel = q::RunQ12Parallel(orders_, lineitem_, txn, {}, &pool, &stats);
    const auto scalar = q::RunQ12Scalar(orders_, lineitem_, txn, {}, nullptr);
    EXPECT_TRUE(parallel == scalar)
        << "parallel Q12 diverged from the scalar reference in the same snapshot "
        << "(iteration " << iterations << ")";
    txn_manager_.Commit(txn);
    aggregate.Add(stats);
    iterations++;
  }
  stop.store(true, std::memory_order_release);
  writer.join();
  transform_thread.join();

  // Both access paths must actually have been exercised across the run.
  EXPECT_GT(aggregate.frozen_blocks, 0u) << "no morsel ever took the zero-copy path";
  EXPECT_GT(aggregate.hot_blocks, 0u) << "no morsel ever took the materialization path";
  gc_.FullGC();
}

INSTANTIATE_TEST_SUITE_P(Modes, HashJoinTest,
                         ::testing::Values(GatherMode::kVarlenGather,
                                           GatherMode::kDictionaryCompression),
                         [](const auto &info) {
                           return info.param == GatherMode::kVarlenGather ? "Gather"
                                                                          : "Dictionary";
                         });

}  // namespace mainline
