#include <gtest/gtest.h>

#include <sstream>

#include "arrowlite/builder.h"
#include "arrowlite/csv.h"
#include "arrowlite/ipc.h"

namespace mainline::arrowlite {

namespace {

std::shared_ptr<RecordBatch> SampleBatch() {
  FixedBuilder<int64_t> ids(Type::kInt64);
  FixedBuilder<double> scores(Type::kFloat64);
  StringBuilder names;
  for (int64_t i = 0; i < 100; i++) {
    ids.Append(i);
    if (i % 10 == 0) {
      scores.AppendNull();
    } else {
      scores.Append(static_cast<double>(i) * 1.5);
    }
    if (i % 7 == 0) {
      names.AppendNull();
    } else {
      names.Append("name-" + std::to_string(i));
    }
  }
  auto schema = std::make_shared<Schema>(std::vector<Field>{
      {"id", Type::kInt64, false}, {"score", Type::kFloat64, true},
      {"name", Type::kString, true}});
  std::vector<std::shared_ptr<Array>> columns{ids.Finish(), scores.Finish(), names.Finish()};
  return std::make_shared<RecordBatch>(schema, 100, std::move(columns));
}

}  // namespace

TEST(ArrowliteTest, BufferAlignmentAndPadding) {
  auto buffer = Buffer::Allocate(13);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(buffer->data()) % 64, 0u);
  EXPECT_EQ(buffer->size(), 13u);
  auto wrapped = Buffer::Wrap(buffer->data(), 13);
  EXPECT_FALSE(wrapped->owned());
  EXPECT_EQ(wrapped->data(), buffer->data());
}

TEST(ArrowliteTest, BuildersTrackNullsAndValues) {
  auto batch = SampleBatch();
  EXPECT_EQ(batch->num_rows(), 100);
  EXPECT_EQ(batch->column(1)->null_count(), 10);
  EXPECT_EQ(batch->column(2)->null_count(), 15);  // 0,7,...,98
  EXPECT_TRUE(batch->column(1)->IsNull(0));
  EXPECT_FALSE(batch->column(1)->IsNull(1));
  EXPECT_DOUBLE_EQ(batch->column(1)->Value<double>(2), 3.0);
  EXPECT_EQ(batch->column(2)->GetString(1), "name-1");
}

TEST(ArrowliteTest, IpcRoundTrip) {
  auto batch = SampleBatch();
  VectorSink sink;
  IpcStreamWriter writer(&sink, *batch->schema());
  writer.WriteBatch(*batch);
  writer.WriteBatch(*batch);
  writer.Close();

  SpanSource source(sink.data().data(), sink.data().size());
  IpcStreamReader reader(&source);
  ASSERT_TRUE(reader.schema()->Equals(*batch->schema()));
  int batches = 0;
  while (auto read = reader.ReadNext()) {
    EXPECT_TRUE(read->Equals(*batch));
    batches++;
  }
  EXPECT_EQ(batches, 2);
}

TEST(ArrowliteTest, IpcDictionaryRoundTrip) {
  // Dictionary array: 3 words, 6 rows.
  StringBuilder dict_builder;
  dict_builder.Append("alpha");
  dict_builder.Append("beta");
  dict_builder.Append("gamma");
  auto dictionary = dict_builder.Finish();
  FixedBuilder<int32_t> codes(Type::kInt32);
  for (const int32_t c : {0, 1, 2, 2, 1, 0}) codes.Append(c);
  auto codes_array = codes.Finish();
  auto dict_array = Array::MakeDictionary(6, codes_array->buffer(0), dictionary);
  auto schema = std::make_shared<Schema>(std::vector<Field>{{"word", Type::kDictionary}});
  RecordBatch batch(schema, 6, {dict_array});

  VectorSink sink;
  IpcStreamWriter writer(&sink, *schema);
  writer.WriteBatch(batch);
  writer.Close();
  SpanSource source(sink.data().data(), sink.data().size());
  IpcStreamReader reader(&source);
  auto read = reader.ReadNext();
  ASSERT_NE(read, nullptr);
  EXPECT_EQ(read->column(0)->GetString(0), "alpha");
  EXPECT_EQ(read->column(0)->GetString(3), "gamma");
  EXPECT_TRUE(read->Equals(batch));
}

TEST(ArrowliteTest, DictionaryEqualsResolvedString) {
  // A dictionary-encoded array compares equal to its plain-string expansion.
  StringBuilder plain;
  for (const char *w : {"x", "yy", "zzz", "zzz"}) plain.Append(w);
  auto plain_array = plain.Finish();

  StringBuilder dict_builder;
  dict_builder.Append("x");
  dict_builder.Append("yy");
  dict_builder.Append("zzz");
  FixedBuilder<int32_t> codes(Type::kInt32);
  for (const int32_t c : {0, 1, 2, 2}) codes.Append(c);
  auto encoded = Array::MakeDictionary(4, codes.Finish()->buffer(0), dict_builder.Finish());
  EXPECT_TRUE(plain_array->Equals(*encoded));
  EXPECT_TRUE(encoded->Equals(*plain_array));
}

TEST(ArrowliteTest, CsvRoundTrip) {
  auto batch = SampleBatch();
  std::stringstream stream;
  const uint64_t bytes = Csv::WriteBatch(*batch, &stream);
  EXPECT_GT(bytes, 0u);
  auto read = Csv::ReadBatch(batch->schema(), &stream);
  ASSERT_NE(read, nullptr);
  EXPECT_EQ(read->num_rows(), batch->num_rows());
  // CSV widens ints and loses null-vs-empty-string for strings; check values.
  for (int64_t i = 0; i < batch->num_rows(); i++) {
    EXPECT_EQ(read->column(0)->Value<int64_t>(i), i);
    if (!batch->column(1)->IsNull(i)) {
      EXPECT_NEAR(read->column(1)->Value<double>(i), static_cast<double>(i) * 1.5, 1e-6);
    }
    if (!batch->column(2)->IsNull(i)) {
      EXPECT_EQ(read->column(2)->GetString(i), "name-" + std::to_string(i));
    }
  }
}

TEST(ArrowliteTest, CsvQuoting) {
  StringBuilder values;
  values.Append("plain");
  values.Append("with,comma");
  values.Append("with\"quote");
  auto schema = std::make_shared<Schema>(std::vector<Field>{{"s", Type::kString}});
  RecordBatch batch(schema, 3, {values.Finish()});
  std::stringstream stream;
  Csv::WriteBatch(batch, &stream);
  auto read = Csv::ReadBatch(schema, &stream);
  EXPECT_EQ(read->column(0)->GetString(0), "plain");
  EXPECT_EQ(read->column(0)->GetString(1), "with,comma");
  EXPECT_EQ(read->column(0)->GetString(2), "with\"quote");
}

}  // namespace mainline::arrowlite
