#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "gc/garbage_collector.h"
#include "storage/data_table.h"
#include "storage/storage_util.h"
#include "transaction/transaction_manager.h"

namespace mainline {

using storage::BlockLayout;
using storage::BlockStore;
using storage::DataTable;
using storage::ProjectedRow;
using storage::ProjectedRowInitializer;
using storage::RecordBufferSegmentPool;
using storage::TupleSlot;
using transaction::TransactionContext;
using transaction::TransactionManager;

class MVCCTest : public ::testing::Test {
 protected:
  MVCCTest()
      : block_store_(1000, 100),
        buffer_pool_(100000, 1000),
        layout_({{8, false}, {8, false}}),
        table_(&block_store_, layout_, storage::layout_version_t(0)),
        txn_manager_(&buffer_pool_, true, nullptr),
        gc_(&txn_manager_),
        initializer_(ProjectedRowInitializer::CreateFull(layout_)),
        buffer_(initializer_.ProjectedRowSize() + 8) {}

  ProjectedRow *Row() { return initializer_.InitializeRow(buffer_.data()); }

  TupleSlot InsertTuple(int64_t a, int64_t b) {
    auto *txn = txn_manager_.BeginTransaction();
    ProjectedRow *row = Row();
    *reinterpret_cast<int64_t *>(row->AccessForceNotNull(0)) = a;
    *reinterpret_cast<int64_t *>(row->AccessForceNotNull(1)) = b;
    const TupleSlot slot = table_.Insert(txn, *row);
    txn_manager_.Commit(txn);
    return slot;
  }

  /// Read column 0, returning whether visible and the value.
  std::pair<bool, int64_t> Read(TransactionContext *txn, TupleSlot slot) {
    ProjectedRow *row = Row();
    const bool visible = table_.Select(txn, slot, row);
    const int64_t value =
        visible ? *reinterpret_cast<int64_t *>(row->AccessForceNotNull(0)) : -1;
    return {visible, value};
  }

  bool WriteCol0(TransactionContext *txn, TupleSlot slot, int64_t value) {
    std::vector<byte> local(initializer_.ProjectedRowSize() + 8);
    auto delta_init = ProjectedRowInitializer::Create(layout_, {storage::col_id_t(0)});
    ProjectedRow *delta = delta_init.InitializeRow(local.data());
    *reinterpret_cast<int64_t *>(delta->AccessForceNotNull(0)) = value;
    return table_.Update(txn, slot, *delta);
  }

  // Destruction order (reverse of declaration): GC, then the transaction
  // manager, then the table they both reference.
  BlockStore block_store_;
  RecordBufferSegmentPool buffer_pool_;
  BlockLayout layout_;
  DataTable table_;
  TransactionManager txn_manager_;
  gc::GarbageCollector gc_;
  ProjectedRowInitializer initializer_;
  std::vector<byte> buffer_;
};

// A reader that started before a writer commits must not see its update
// (snapshot isolation), and a reader starting after must.
TEST_F(MVCCTest, SnapshotIsolationVisibility) {
  const TupleSlot slot = InsertTuple(1, 10);

  auto *old_reader = txn_manager_.BeginTransaction();
  EXPECT_EQ(Read(old_reader, slot).second, 1);

  auto *writer = txn_manager_.BeginTransaction();
  ASSERT_TRUE(WriteCol0(writer, slot, 2));
  // Uncommitted: invisible to everyone but the writer.
  EXPECT_EQ(Read(old_reader, slot).second, 1);
  EXPECT_EQ(Read(writer, slot).second, 2);
  txn_manager_.Commit(writer);

  // Old reader still sees its snapshot after the commit.
  EXPECT_EQ(Read(old_reader, slot).second, 1);
  txn_manager_.Commit(old_reader);

  auto *new_reader = txn_manager_.BeginTransaction();
  EXPECT_EQ(Read(new_reader, slot).second, 2);
  txn_manager_.Commit(new_reader);
}

// Write-write conflicts are disallowed: the second writer fails.
TEST_F(MVCCTest, WriteWriteConflict) {
  const TupleSlot slot = InsertTuple(1, 10);
  auto *t1 = txn_manager_.BeginTransaction();
  auto *t2 = txn_manager_.BeginTransaction();
  ASSERT_TRUE(WriteCol0(t1, slot, 2));
  EXPECT_FALSE(WriteCol0(t2, slot, 3));  // conflict with uncommitted t1
  txn_manager_.Abort(t2);
  txn_manager_.Commit(t1);

  // A transaction that started before t1 committed conflicts as well
  // (first-committer-wins under SI).
  auto *t3 = txn_manager_.BeginTransaction();
  auto *t4 = txn_manager_.BeginTransaction();
  ASSERT_TRUE(WriteCol0(t3, slot, 4));
  txn_manager_.Commit(t3);
  EXPECT_FALSE(WriteCol0(t4, slot, 5));
  txn_manager_.Abort(t4);
}

// Aborting restores the before-image, and the abort protocol keeps the undo
// record in the chain so concurrent readers repair their copies.
TEST_F(MVCCTest, AbortRestoresData) {
  const TupleSlot slot = InsertTuple(7, 70);
  auto *writer = txn_manager_.BeginTransaction();
  ASSERT_TRUE(WriteCol0(writer, slot, 8));
  auto *reader_during = txn_manager_.BeginTransaction();
  txn_manager_.Abort(writer);

  EXPECT_EQ(Read(reader_during, slot).second, 7);
  txn_manager_.Commit(reader_during);

  auto *reader_after = txn_manager_.BeginTransaction();
  EXPECT_EQ(Read(reader_after, slot).second, 7);
  txn_manager_.Commit(reader_after);
}

// Deleted tuples stay visible to older snapshots through the full-row
// before-image.
TEST_F(MVCCTest, DeleteVisibility) {
  const TupleSlot slot = InsertTuple(5, 50);
  auto *old_reader = txn_manager_.BeginTransaction();

  auto *deleter = txn_manager_.BeginTransaction();
  ASSERT_TRUE(table_.Delete(deleter, slot));
  EXPECT_FALSE(Read(deleter, slot).first);  // own delete visible
  txn_manager_.Commit(deleter);

  EXPECT_TRUE(Read(old_reader, slot).first);
  EXPECT_EQ(Read(old_reader, slot).second, 5);
  txn_manager_.Commit(old_reader);

  auto *new_reader = txn_manager_.BeginTransaction();
  EXPECT_FALSE(Read(new_reader, slot).first);
  txn_manager_.Commit(new_reader);
}

TEST_F(MVCCTest, DeleteAbortResurrects) {
  const TupleSlot slot = InsertTuple(5, 50);
  auto *deleter = txn_manager_.BeginTransaction();
  ASSERT_TRUE(table_.Delete(deleter, slot));
  txn_manager_.Abort(deleter);

  auto *reader = txn_manager_.BeginTransaction();
  EXPECT_TRUE(Read(reader, slot).first);
  txn_manager_.Commit(reader);
}

// Updating a deleted tuple must fail.
TEST_F(MVCCTest, UpdateAfterDeleteFails) {
  const TupleSlot slot = InsertTuple(5, 50);
  auto *deleter = txn_manager_.BeginTransaction();
  ASSERT_TRUE(table_.Delete(deleter, slot));
  txn_manager_.Commit(deleter);

  auto *writer = txn_manager_.BeginTransaction();
  EXPECT_FALSE(WriteCol0(writer, slot, 9));
  txn_manager_.Abort(writer);
}

// An uncommitted insert is invisible to concurrent transactions.
TEST_F(MVCCTest, InsertVisibility) {
  auto *inserter = txn_manager_.BeginTransaction();
  ProjectedRow *row = Row();
  *reinterpret_cast<int64_t *>(row->AccessForceNotNull(0)) = 42;
  *reinterpret_cast<int64_t *>(row->AccessForceNotNull(1)) = 43;
  const TupleSlot slot = table_.Insert(inserter, *row);

  auto *reader = txn_manager_.BeginTransaction();
  EXPECT_FALSE(Read(reader, slot).first);
  EXPECT_TRUE(Read(inserter, slot).first);
  txn_manager_.Commit(inserter);
  // Still invisible: reader's snapshot predates the insert's commit.
  EXPECT_FALSE(Read(reader, slot).first);
  txn_manager_.Commit(reader);
}

// GC prunes version chains and reclaims transactions once nothing can see
// them.
TEST_F(MVCCTest, GarbageCollectionPrunesChains) {
  const TupleSlot slot = InsertTuple(0, 0);
  for (int64_t i = 1; i <= 100; i++) {
    auto *txn = txn_manager_.BeginTransaction();
    ASSERT_TRUE(WriteCol0(txn, slot, i));
    txn_manager_.Commit(txn);
  }
  EXPECT_NE(table_.Accessor().VersionPtr(slot).load(), nullptr);
  auto [deallocated1, unlinked1] = gc_.PerformGarbageCollection();
  EXPECT_GT(unlinked1, 0u);
  auto [deallocated2, unlinked2] = gc_.PerformGarbageCollection();
  EXPECT_GT(deallocated2, 0u);
  EXPECT_EQ(table_.Accessor().VersionPtr(slot).load(), nullptr);

  auto *reader = txn_manager_.BeginTransaction();
  EXPECT_EQ(Read(reader, slot).second, 100);
  txn_manager_.Commit(reader);
}

// GC must not prune versions still visible to an active transaction.
TEST_F(MVCCTest, GCRespectsActiveReaders) {
  const TupleSlot slot = InsertTuple(1, 0);
  auto *old_reader = txn_manager_.BeginTransaction();
  auto *writer = txn_manager_.BeginTransaction();
  ASSERT_TRUE(WriteCol0(writer, slot, 2));
  txn_manager_.Commit(writer);

  gc_.PerformGarbageCollection();
  gc_.PerformGarbageCollection();
  // The chain still serves old_reader's snapshot.
  EXPECT_EQ(Read(old_reader, slot).second, 1);
  txn_manager_.Commit(old_reader);
  gc_.FullGC();
}

// Concurrent single-row counter increments: committed increments must all
// survive (no lost updates), failed writers abort cleanly.
TEST_F(MVCCTest, ConcurrentCounterNoLostUpdates) {
  const TupleSlot slot = InsertTuple(0, 0);
  constexpr int kThreads = 8;
  constexpr int kAttempts = 2000;
  std::atomic<int64_t> committed{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&] {
      std::vector<byte> local(initializer_.ProjectedRowSize() + 8);
      for (int i = 0; i < kAttempts; i++) {
        auto *txn = txn_manager_.BeginTransaction();
        ProjectedRow *row = initializer_.InitializeRow(local.data());
        if (!table_.Select(txn, slot, row)) {
          txn_manager_.Abort(txn);
          continue;
        }
        const int64_t value = *reinterpret_cast<int64_t *>(row->AccessForceNotNull(0));
        *reinterpret_cast<int64_t *>(row->AccessForceNotNull(0)) = value + 1;
        if (table_.Update(txn, slot, *row)) {
          txn_manager_.Commit(txn);
          committed.fetch_add(1);
        } else {
          txn_manager_.Abort(txn);
        }
      }
    });
  }
  for (auto &thread : threads) thread.join();

  auto *reader = txn_manager_.BeginTransaction();
  EXPECT_EQ(Read(reader, slot).second, committed.load());
  txn_manager_.Commit(reader);
  gc_.FullGC();
}

// Concurrent writers + readers + GC: readers always see a consistent
// (a, b) pair where b == -a, the invariant writers maintain.
TEST_F(MVCCTest, ConsistentSnapshotsUnderConcurrency) {
  auto pair_init = ProjectedRowInitializer::CreateFull(layout_);
  const TupleSlot slot = InsertTuple(0, 0);
  std::atomic<bool> stop{false};

  std::thread writer([&] {
    std::vector<byte> local(pair_init.ProjectedRowSize() + 8);
    int64_t next = 1;
    while (!stop.load()) {
      auto *txn = txn_manager_.BeginTransaction();
      ProjectedRow *row = pair_init.InitializeRow(local.data());
      *reinterpret_cast<int64_t *>(row->AccessForceNotNull(0)) = next;
      *reinterpret_cast<int64_t *>(row->AccessForceNotNull(1)) = -next;
      if (table_.Update(txn, slot, *row)) {
        txn_manager_.Commit(txn);
        next++;
      } else {
        txn_manager_.Abort(txn);
      }
    }
  });
  std::thread gc_thread([&] {
    while (!stop.load()) gc_.PerformGarbageCollection();
  });

  std::vector<std::thread> readers;
  std::atomic<bool> violation{false};
  for (int t = 0; t < 4; t++) {
    readers.emplace_back([&] {
      std::vector<byte> local(pair_init.ProjectedRowSize() + 8);
      for (int i = 0; i < 20000 && !violation.load(); i++) {
        auto *txn = txn_manager_.BeginTransaction();
        ProjectedRow *row = pair_init.InitializeRow(local.data());
        if (table_.Select(txn, slot, row)) {
          const int64_t a = *reinterpret_cast<int64_t *>(row->AccessForceNotNull(0));
          const int64_t b = *reinterpret_cast<int64_t *>(row->AccessForceNotNull(1));
          if (b != -a) violation.store(true);
        }
        txn_manager_.Commit(txn);
      }
    });
  }
  for (auto &thread : readers) thread.join();
  stop.store(true);
  writer.join();
  gc_thread.join();
  EXPECT_FALSE(violation.load());
  gc_.FullGC();
}

}  // namespace mainline
