#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "catalog/catalog.h"
#include "gc/gc_thread.h"
#include "transform/transform_pipeline.h"
#include "workload/row_util.h"
#include "workload/tpcc/tpcc_schemas.h"
#include "workload/tpcc/tpcc_workload.h"

namespace mainline {

using workload::tpcc::Config;
using workload::tpcc::Database;
using workload::tpcc::Worker;

class TPCCTest : public ::testing::Test {
 protected:
  TPCCTest()
      : block_store_(10000, 1000),
        buffer_pool_(0, 10000),
        catalog_(&block_store_),
        txn_manager_(&buffer_pool_, true, nullptr),
        gc_(&txn_manager_),
        db_(&catalog_, [] {
          Config c = Config::Scaled(200, 60);
          c.num_warehouses = 4;  // one per worker, as in the paper's setup
          return c;
        }()) {
    db_.Load(&txn_manager_);
    gc_.FullGC();
  }

  /// Sum a decimal column over all visible tuples.
  double SumColumn(catalog::SqlTable *table, uint16_t col) {
    auto initializer = table->InitializerForColumns({col});
    std::vector<byte> buffer(initializer.ProjectedRowSize() + 8);
    auto *txn = txn_manager_.BeginTransaction();
    double total = 0;
    for (auto it = table->begin(); !it.Done(); ++it) {
      storage::ProjectedRow *row = initializer.InitializeRow(buffer.data());
      if (table->Select(txn, *it, row)) total += workload::Get<double>(*row, 0);
    }
    txn_manager_.Commit(txn);
    return total;
  }

  uint64_t CountVisible(catalog::SqlTable *table) {
    auto initializer = table->InitializerForColumns({0});
    std::vector<byte> buffer(initializer.ProjectedRowSize() + 8);
    auto *txn = txn_manager_.BeginTransaction();
    uint64_t count = 0;
    for (auto it = table->begin(); !it.Done(); ++it) {
      storage::ProjectedRow *row = initializer.InitializeRow(buffer.data());
      if (table->Select(txn, *it, row)) count++;
    }
    txn_manager_.Commit(txn);
    return count;
  }

  // Destruction order (reverse of declaration): GC and transaction manager
  // must die before the catalog's tables.
  storage::BlockStore block_store_;
  storage::RecordBufferSegmentPool buffer_pool_;
  catalog::Catalog catalog_;
  transaction::TransactionManager txn_manager_;
  gc::GarbageCollector gc_;
  Database db_;
};

TEST_F(TPCCTest, LoadCardinalities) {
  const Config &c = db_.config;
  const auto w = static_cast<uint64_t>(c.num_warehouses);
  EXPECT_EQ(CountVisible(db_.item), static_cast<uint64_t>(c.num_items));
  EXPECT_EQ(CountVisible(db_.warehouse), w);
  EXPECT_EQ(CountVisible(db_.district),
            w * static_cast<uint64_t>(c.districts_per_warehouse));
  EXPECT_EQ(CountVisible(db_.customer),
            w * static_cast<uint64_t>(c.districts_per_warehouse * c.customers_per_district));
  EXPECT_EQ(CountVisible(db_.order),
            w * static_cast<uint64_t>(c.districts_per_warehouse * c.orders_per_district));
  // The last third of orders per district are undelivered.
  EXPECT_EQ(
      CountVisible(db_.new_order),
      w * static_cast<uint64_t>(c.districts_per_warehouse *
                                (c.orders_per_district - c.orders_per_district * 2 / 3)));
  EXPECT_EQ(db_.item_pk->Size(), static_cast<uint64_t>(c.num_items));
  EXPECT_EQ(CountVisible(db_.stock), w * static_cast<uint64_t>(c.num_items));
}

TEST_F(TPCCTest, EachProcedureCommits) {
  Worker worker(&db_, &txn_manager_, 1, 99);
  uint32_t committed = 0;
  for (int i = 0; i < 50; i++) committed += worker.NewOrderTxn() ? 1 : 0;
  EXPECT_GE(committed, 45u);  // ~1% intentional rollbacks
  EXPECT_TRUE(worker.PaymentTxn());
  EXPECT_TRUE(worker.OrderStatusTxn());
  EXPECT_TRUE(worker.DeliveryTxn());
  EXPECT_TRUE(worker.StockLevelTxn());
  gc_.FullGC();
}

// TPC-C consistency condition 1&2 style check: W_YTD == sum(D_YTD) and
// every district's next order id exceeds its max order id.
TEST_F(TPCCTest, MoneyConservation) {
  Worker worker(&db_, &txn_manager_, 1, 7);
  for (int i = 0; i < 300; i++) worker.RunOne();
  gc_.FullGC();

  const double w_ytd = SumColumn(db_.warehouse, workload::tpcc::W_YTD);
  const double d_ytd_sum = SumColumn(db_.district, workload::tpcc::D_YTD);
  EXPECT_NEAR(w_ytd, d_ytd_sum, 0.01);
}

// Run the full pipeline concurrently: workers + GC thread + transformation
// thread, then verify consistency and that blocks froze.
TEST_F(TPCCTest, ConcurrentWorkloadWithTransformation) {
  transform::AccessObserver observer(2);
  gc_.SetAccessObserver(&observer);
  transform::BlockTransformer transformer(&txn_manager_, &gc_,
                                          transform::GatherMode::kVarlenGather);
  transformer.SetInlineGCPump(false);
  transform::TransformPipeline pipeline(&observer, &transformer, 10);
  // Target the cold-data tables, as the paper does.
  storage::DataTable *targets[] = {&db_.order->UnderlyingTable(),
                                   &db_.order_line->UnderlyingTable(),
                                   &db_.history->UnderlyingTable(),
                                   &db_.item->UnderlyingTable()};
  pipeline.SetTableFilter([&](storage::DataTable *t) {
    for (auto *target : targets) {
      if (t == target) return true;
    }
    return false;
  });

  // ITEM was bulk-loaded before the observer attached; enqueue it manually.
  pipeline.EnqueueTable(&db_.item->UnderlyingTable());

  {
    gc::GarbageCollectorThread gc_thread(&gc_, std::chrono::milliseconds(2));
    pipeline.Start(std::chrono::milliseconds(5));

    constexpr int kWorkers = 4;
    std::vector<std::thread> threads;
    std::atomic<uint64_t> total_committed{0};
    for (int t = 0; t < kWorkers; t++) {
      threads.emplace_back([&, t] {
        // One warehouse per client, as in the paper's TPC-C setup.
        Worker worker(&db_, &txn_manager_, t + 1, 1000 + static_cast<uint64_t>(t));
        for (int i = 0; i < 500; i++) worker.RunOne();
        total_committed += worker.Stats().TotalCommitted();
      });
    }
    for (auto &thread : threads) thread.join();
    EXPECT_GT(total_committed.load(), 1500u);
    // Let the pipeline catch up on the now-quiescent database.
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    pipeline.Stop();
  }
  gc_.FullGC();

  // Data must still be consistent after compaction/freezing.
  const double w_ytd = SumColumn(db_.warehouse, workload::tpcc::W_YTD);
  const double d_ytd_sum = SumColumn(db_.district, workload::tpcc::D_YTD);
  EXPECT_NEAR(w_ytd, d_ytd_sum, 0.01);

  // ITEM is read-only; every one of its blocks should end up frozen.
  uint64_t item_frozen = 0, item_total = 0;
  for (auto *block : db_.item->UnderlyingTable().Blocks()) {
    item_total++;
    if (block->controller.GetState() == storage::BlockState::kFrozen) item_frozen++;
  }
  EXPECT_EQ(item_frozen, item_total);
  EXPECT_GT(pipeline.Stats().blocks_frozen, 0u);

  // The observer is a local: detach it before it goes out of scope, or the
  // fixture's GC destructor would feed its dangling pointer a final pass.
  gc_.SetAccessObserver(nullptr);
}

}  // namespace mainline
