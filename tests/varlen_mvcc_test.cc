// Variable-length values interact with every moving part of the engine:
// update deltas take ownership of replaced buffers, aborts free new values,
// the GC frees old ones, compaction deep-copies moved ones, and the gather
// phase repoints entries into shared buffers. These tests pin those
// ownership rules down under versioning and GC.

#include <gtest/gtest.h>

#include <string>
#include <thread>

#include "catalog/catalog.h"
#include "gc/garbage_collector.h"
#include "transform/block_transformer.h"
#include "workload/row_util.h"

namespace mainline {

class VarlenMVCCTest : public ::testing::Test {
 protected:
  VarlenMVCCTest()
      : block_store_(100, 10),
        buffer_pool_(100000, 100),
        catalog_(&block_store_),
        txn_manager_(&buffer_pool_, true, nullptr),
        gc_(&txn_manager_) {
    catalog::Schema schema({{"id", catalog::TypeId::kBigInt},
                            {"payload", catalog::TypeId::kVarchar, true}});
    table_ = catalog_.GetTable(catalog_.CreateTable("t", schema));
    initializer_ = std::make_unique<storage::ProjectedRowInitializer>(
        table_->FullInitializer());
    buffer_.resize(initializer_->ProjectedRowSize() + 8);
  }

  storage::TupleSlot InsertRow(int64_t id, const std::string &payload) {
    auto *txn = txn_manager_.BeginTransaction();
    storage::ProjectedRow *row = initializer_->InitializeRow(buffer_.data());
    workload::Set<int64_t>(row, 0, id);
    workload::SetVarchar(row, 1, payload);
    const storage::TupleSlot slot = table_->Insert(txn, *row);
    txn_manager_.Commit(txn);
    return slot;
  }

  bool UpdatePayload(transaction::TransactionContext *txn, storage::TupleSlot slot,
                     const std::string &payload) {
    auto delta_init = table_->InitializerForColumns({1});
    std::vector<byte> local(delta_init.ProjectedRowSize() + 8);
    storage::ProjectedRow *delta = delta_init.InitializeRow(local.data());
    workload::SetVarchar(delta, 0, payload);
    return table_->Update(txn, slot, *delta);
  }

  std::string ReadPayload(storage::TupleSlot slot) {
    auto *txn = txn_manager_.BeginTransaction();
    storage::ProjectedRow *row = initializer_->InitializeRow(buffer_.data());
    EXPECT_TRUE(table_->Select(txn, slot, row));
    std::string result(workload::GetVarchar(*row, 1));
    txn_manager_.Commit(txn);
    return result;
  }

  storage::BlockStore block_store_;
  storage::RecordBufferSegmentPool buffer_pool_;
  catalog::Catalog catalog_;
  transaction::TransactionManager txn_manager_;
  gc::GarbageCollector gc_;
  catalog::SqlTable *table_;
  std::unique_ptr<storage::ProjectedRowInitializer> initializer_;
  std::vector<byte> buffer_;
};

TEST_F(VarlenMVCCTest, UpdateChainPreservesOldVersionsUntilGC) {
  const std::string v1 = "first-version-long-enough-to-spill";
  const std::string v2 = "second-version-also-long-enough!!";
  const storage::TupleSlot slot = InsertRow(1, v1);

  auto *old_reader = txn_manager_.BeginTransaction();
  auto *writer = txn_manager_.BeginTransaction();
  ASSERT_TRUE(UpdatePayload(writer, slot, v2));
  txn_manager_.Commit(writer);

  // The old reader reconstructs v1 through the before-image even though the
  // block now holds v2's buffer.
  storage::ProjectedRow *row = initializer_->InitializeRow(buffer_.data());
  ASSERT_TRUE(table_->Select(old_reader, slot, row));
  EXPECT_EQ(workload::GetVarchar(*row, 1), v1);
  txn_manager_.Commit(old_reader);

  gc_.FullGC();  // frees v1's buffer exactly once
  EXPECT_EQ(ReadPayload(slot), v2);
}

TEST_F(VarlenMVCCTest, AbortedUpdateRestoresOldBuffer) {
  const std::string v1 = "the-original-value-stays-alive!!";
  const storage::TupleSlot slot = InsertRow(1, v1);
  auto *writer = txn_manager_.BeginTransaction();
  ASSERT_TRUE(UpdatePayload(writer, slot, "doomed-new-value-quite-long-too"));
  txn_manager_.Abort(writer);  // frees the new value, restores v1
  gc_.FullGC();                // must NOT free v1 (aborted before-image)
  EXPECT_EQ(ReadPayload(slot), v1);
}

TEST_F(VarlenMVCCTest, AbortedDeleteKeepsRowBuffersAlive) {
  const std::string v1 = "value-that-survives-the-aborted-delete";
  const storage::TupleSlot slot = InsertRow(1, v1);
  auto *deleter = txn_manager_.BeginTransaction();
  ASSERT_TRUE(table_->Delete(deleter, slot));
  txn_manager_.Abort(deleter);
  gc_.FullGC();  // the delete's full-row before-image must not be reclaimed
  EXPECT_EQ(ReadPayload(slot), v1);
}

TEST_F(VarlenMVCCTest, CommittedDeleteReclaimsThroughGC) {
  const storage::TupleSlot slot = InsertRow(1, "deleted-value-reclaimed-by-the-gc");
  auto *deleter = txn_manager_.BeginTransaction();
  ASSERT_TRUE(table_->Delete(deleter, slot));
  txn_manager_.Commit(deleter);
  gc_.FullGC();

  auto *reader = txn_manager_.BeginTransaction();
  storage::ProjectedRow *row = initializer_->InitializeRow(buffer_.data());
  EXPECT_FALSE(table_->Select(reader, slot, row));
  txn_manager_.Commit(reader);
  gc_.FullGC();
}

TEST_F(VarlenMVCCTest, InlineValuesNeverAllocate) {
  const storage::TupleSlot slot = InsertRow(1, "tiny");  // <= 12 bytes inlines
  EXPECT_EQ(ReadPayload(slot), "tiny");
  auto *writer = txn_manager_.BeginTransaction();
  ASSERT_TRUE(UpdatePayload(writer, slot, "also-tiny"));
  txn_manager_.Commit(writer);
  gc_.FullGC();
  EXPECT_EQ(ReadPayload(slot), "also-tiny");
}

TEST_F(VarlenMVCCTest, NullToValueAndBack) {
  auto *txn = txn_manager_.BeginTransaction();
  storage::ProjectedRow *row = initializer_->InitializeRow(buffer_.data());
  workload::Set<int64_t>(row, 0, 9);
  row->SetNull(1);
  const storage::TupleSlot slot = table_->Insert(txn, *row);
  txn_manager_.Commit(txn);

  auto delta_init = table_->InitializerForColumns({1});
  std::vector<byte> local(delta_init.ProjectedRowSize() + 8);
  {
    auto *writer = txn_manager_.BeginTransaction();
    storage::ProjectedRow *delta = delta_init.InitializeRow(local.data());
    workload::SetVarchar(delta, 0, "now-it-has-a-longish-value");
    ASSERT_TRUE(table_->Update(writer, slot, *delta));
    txn_manager_.Commit(writer);
  }
  EXPECT_EQ(ReadPayload(slot), "now-it-has-a-longish-value");
  {
    auto *writer = txn_manager_.BeginTransaction();
    storage::ProjectedRow *delta = delta_init.InitializeRow(local.data());
    delta->SetNull(0);
    ASSERT_TRUE(table_->Update(writer, slot, *delta));
    txn_manager_.Commit(writer);
  }
  gc_.FullGC();
  auto *reader = txn_manager_.BeginTransaction();
  storage::ProjectedRow *out = initializer_->InitializeRow(buffer_.data());
  ASSERT_TRUE(table_->Select(reader, slot, out));
  EXPECT_EQ(out->AccessWithNullCheck(1), nullptr);
  txn_manager_.Commit(reader);
  gc_.FullGC();
}

// Stress: concurrent varlen updates + reads + GC; every observed value must
// be one that some transaction actually wrote (no torn strings).
TEST_F(VarlenMVCCTest, ConcurrentVarlenUpdatesNoTearing) {
  const storage::TupleSlot slot = InsertRow(1, std::string(30, 'a'));
  std::atomic<bool> stop{false};
  std::atomic<bool> violation{false};

  std::vector<std::thread> writers;
  for (int t = 0; t < 2; t++) {
    writers.emplace_back([&, t] {
      const char fill = static_cast<char>('b' + t);
      for (int i = 0; i < 5000; i++) {
        auto *txn = txn_manager_.BeginTransaction();
        if (UpdatePayload(txn, slot, std::string(30, fill))) {
          txn_manager_.Commit(txn);
        } else {
          txn_manager_.Abort(txn);
        }
      }
    });
  }
  std::thread gc_thread([&] {
    while (!stop.load()) gc_.PerformGarbageCollection();
  });
  std::thread reader([&] {
    auto init = table_->FullInitializer();
    std::vector<byte> local(init.ProjectedRowSize() + 8);
    while (!stop.load()) {
      auto *txn = txn_manager_.BeginTransaction();
      storage::ProjectedRow *row = init.InitializeRow(local.data());
      if (table_->Select(txn, slot, row)) {
        const std::string_view v = workload::GetVarchar(*row, 1);
        // Uniform strings: all bytes identical, length 30.
        if (v.size() != 30 ||
            v.find_first_not_of(v[0]) != std::string_view::npos) {
          violation.store(true);
        }
      }
      txn_manager_.Commit(txn);
    }
  });
  for (auto &w : writers) w.join();
  stop.store(true);
  gc_thread.join();
  reader.join();
  EXPECT_FALSE(violation.load());
  gc_.FullGC();
}

}  // namespace mainline
