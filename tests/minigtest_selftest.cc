// Self-test for the vendored minigtest shim (third_party/minigtest).
//
// Every other suite trusts the shim for its verdicts, so the shim's own
// moving parts — filter globbing, parameterized-test expansion, Combine
// ordering, assertion comparison semantics — get checked here, with the
// same <gtest/gtest.h> API (under a real GoogleTest most of these become
// trivial truths, which is fine: the suite guards the shim, not gtest).

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

namespace {

#if defined(MINIGTEST_GTEST_H_)

TEST(MiniGtestGlob, MatchesLikeGtestFilters) {
  using testing::internal::GlobMatch;
  EXPECT_TRUE(GlobMatch("Suite.Test", "Suite.Test"));
  EXPECT_FALSE(GlobMatch("Suite.Test", "Suite.Test2"));
  EXPECT_TRUE(GlobMatch("Suite.*", "Suite.Anything"));
  EXPECT_TRUE(GlobMatch("*", ""));
  EXPECT_TRUE(GlobMatch("*Transform*", "Modes/TransformTest.Freeze/Gather"));
  EXPECT_FALSE(GlobMatch("?", ""));
  EXPECT_TRUE(GlobMatch("A?C", "ABC"));
  EXPECT_FALSE(GlobMatch("A?C", "AC"));
}

TEST(MiniGtestFilter, PositiveAndNegativeSections) {
  using testing::internal::PassesFilter;
  EXPECT_TRUE(PassesFilter("", "Any.Test"));
  EXPECT_TRUE(PassesFilter("Any.*", "Any.Test"));
  EXPECT_FALSE(PassesFilter("Other.*", "Any.Test"));
  EXPECT_TRUE(PassesFilter("A.*:B.*", "B.Two"));
  EXPECT_FALSE(PassesFilter("A.*-A.Skip", "A.Skip"));
  EXPECT_TRUE(PassesFilter("A.*-A.Skip", "A.Run"));
  EXPECT_FALSE(PassesFilter("-A.Skip", "A.Skip"));
  EXPECT_TRUE(PassesFilter("-A.Skip", "B.Anything"));
}

int CountRegistered(const std::string &prefix) {
  int count = 0;
  for (const auto &test : testing::internal::GetRegistry().tests) {
    if (test.full_name.rfind(prefix, 0) == 0) count++;
  }
  return count;
}

TEST(MiniGtestRegistry, ParamExpansionProducesEveryInstance) {
  // By the time any test runs, parameterized suites have been expanded into
  // the flat registry: 3 values × 1 test.
  EXPECT_EQ(CountRegistered("Vals/ParamExpansion."), 3);
}

TEST(MiniGtestRegistry, CombineProducesTheCrossProduct) {
  EXPECT_EQ(CountRegistered("Cross/TupleParam."), 3 * 2);
}

TEST(MiniGtestRegistry, CustomNamersNameTheInstances) {
  EXPECT_EQ(CountRegistered("Both/CtorParam.ParamAvailableDuringConstruction/On"), 1);
  EXPECT_EQ(CountRegistered("Both/CtorParam.ParamAvailableDuringConstruction/Off"), 1);
}

#endif  // MINIGTEST_GTEST_H_

// --- Parameterized machinery, exercised through the public API ------------

class ParamExpansion : public ::testing::TestWithParam<int> {};

TEST_P(ParamExpansion, EachValueInRange) {
  EXPECT_GE(GetParam(), 1);
  EXPECT_LE(GetParam(), 3);
}

INSTANTIATE_TEST_SUITE_P(Vals, ParamExpansion, ::testing::Values(1, 2, 3));

class TupleParam
    : public ::testing::TestWithParam<std::tuple<uint16_t, bool>> {};

TEST_P(TupleParam, CombineYieldsValidPairs) {
  const auto [v, flag] = GetParam();
  EXPECT_TRUE(v == 1 || v == 2 || v == 4);
  EXPECT_TRUE(flag == true || flag == false);
}

INSTANTIATE_TEST_SUITE_P(Cross, TupleParam,
                         ::testing::Combine(::testing::Values<uint16_t>(1, 2, 4),
                                            ::testing::Bool()));

// Params must already be readable in the fixture constructor (export_test
// relies on this).
class CtorParam : public ::testing::TestWithParam<bool> {
 protected:
  CtorParam() : seen_in_ctor_(GetParam()) {}
  bool seen_in_ctor_;
};

TEST_P(CtorParam, ParamAvailableDuringConstruction) {
  EXPECT_EQ(seen_in_ctor_, GetParam());
}

INSTANTIATE_TEST_SUITE_P(Both, CtorParam, ::testing::Bool(),
                         [](const auto &info) { return info.param ? "On" : "Off"; });

// --- Fixture lifecycle ----------------------------------------------------

class Lifecycle : public ::testing::Test {
 protected:
  void SetUp() override { setup_ran_ = true; }
  void TearDown() override { EXPECT_TRUE(setup_ran_); }
  bool setup_ran_ = false;
};

TEST_F(Lifecycle, SetUpRunsBeforeBody) { EXPECT_TRUE(setup_ran_); }

class SuiteLifecycle : public ::testing::Test {
 public:
  // Public, as real GoogleTest requires (its resolver takes the address at
  // namespace scope); the shim accepts protected too.
  static void SetUpTestSuite() { suite_setups_++; }

 protected:
  static int suite_setups_;
};

int SuiteLifecycle::suite_setups_ = 0;

TEST_F(SuiteLifecycle, HookRanBeforeFirstTest) { EXPECT_EQ(suite_setups_, 1); }
TEST_F(SuiteLifecycle, HookRanExactlyOncePerSuite) { EXPECT_EQ(suite_setups_, 1); }

// Interleaved declarations: the runner must still group each suite's tests
// and fire its hooks exactly once (real GoogleTest groups by suite name).
class InterleavedA : public ::testing::Test {
 public:
  static void SetUpTestSuite() { setups_++; }
  static int setups_;
};
int InterleavedA::setups_ = 0;

class InterleavedB : public ::testing::Test {};

TEST_F(InterleavedA, First) { EXPECT_EQ(setups_, 1); }
TEST_F(InterleavedB, Between) { EXPECT_EQ(InterleavedA::setups_, 1); }
TEST_F(InterleavedA, Second) { EXPECT_EQ(setups_, 1); }

// --- Assertion semantics --------------------------------------------------

TEST(Assertions, ComparisonsAndNear) {
  const int *null_ptr = nullptr;
  EXPECT_EQ(null_ptr, nullptr);
  const std::string s = "ab";
  EXPECT_NE(s, "cd");
  EXPECT_LT(uint16_t{2}, 3);
  EXPECT_NEAR(1.0, 1.05, 0.1);
  EXPECT_DOUBLE_EQ(0.3, 0.1 + 0.2);
  EXPECT_STREQ("xy", std::string("xy").c_str());
}

TEST(Assertions, StreamedMessagesCompile) {
  EXPECT_TRUE(true) << "never printed " << 42;
  ASSERT_FALSE(false) << "also never printed";
}

}  // namespace
