#include <gtest/gtest.h>

#include <vector>

#include "common/rand_util.h"
#include "common/selection_vector.h"

namespace mainline {

using common::SelectionVector;

TEST(SelectionVectorTest, InitFullSelectsEveryRow) {
  SelectionVector sel;
  sel.InitFull(5);
  ASSERT_EQ(sel.Size(), 5u);
  EXPECT_FALSE(sel.Empty());
  for (uint32_t i = 0; i < 5; i++) EXPECT_EQ(sel[i], i);

  // Re-initialization resets any prior refinement and grows capacity.
  sel.Refine([](uint32_t row) { return row % 2 == 0; });
  sel.InitFull(9);
  ASSERT_EQ(sel.Size(), 9u);
  for (uint32_t i = 0; i < 9; i++) EXPECT_EQ(sel[i], i);
}

TEST(SelectionVectorTest, InitFullZeroRows) {
  SelectionVector sel;
  sel.InitFull(0);
  EXPECT_EQ(sel.Size(), 0u);
  EXPECT_TRUE(sel.Empty());
  EXPECT_EQ(sel.begin(), sel.end());
  sel.Refine([](uint32_t) { return true; });
  EXPECT_EQ(sel.Size(), 0u);
}

TEST(SelectionVectorTest, RefineKeepsMatchesInOrder) {
  SelectionVector sel;
  sel.InitFull(10);
  sel.Refine([](uint32_t row) { return row % 3 == 0; });
  ASSERT_EQ(sel.Size(), 4u);
  EXPECT_EQ(sel[0], 0u);
  EXPECT_EQ(sel[1], 3u);
  EXPECT_EQ(sel[2], 6u);
  EXPECT_EQ(sel[3], 9u);
}

TEST(SelectionVectorTest, RefineChainsConjunctively) {
  const std::vector<int32_t> values = {5, -1, 8, 12, 0, 7, -3, 12, 9, 1};
  SelectionVector sel;
  sel.InitFull(static_cast<uint32_t>(values.size()));
  sel.Refine([&](uint32_t row) { return values[row] > 0; });
  sel.Refine([&](uint32_t row) { return values[row] < 10; });

  std::vector<uint32_t> expected;
  for (uint32_t i = 0; i < values.size(); i++) {
    if (values[i] > 0 && values[i] < 10) expected.push_back(i);
  }
  ASSERT_EQ(sel.Size(), expected.size());
  for (uint32_t i = 0; i < expected.size(); i++) EXPECT_EQ(sel[i], expected[i]);
}

TEST(SelectionVectorTest, RefineToEmptyAndStayEmpty) {
  SelectionVector sel;
  sel.InitFull(6);
  sel.Refine([](uint32_t) { return false; });
  EXPECT_EQ(sel.Size(), 0u);
  EXPECT_TRUE(sel.Empty());
  // Refining an empty selection is a no-op, not an error.
  sel.Refine([](uint32_t) { return true; });
  EXPECT_EQ(sel.Size(), 0u);
}

TEST(SelectionVectorTest, IterationMatchesIndexing) {
  SelectionVector sel;
  sel.InitFull(100);
  sel.Refine([](uint32_t row) { return row % 7 == 2; });

  uint32_t i = 0;
  for (const uint32_t row : sel) {
    EXPECT_EQ(row, sel[i]);
    i++;
  }
  EXPECT_EQ(i, sel.Size());

  uint32_t visited = 0;
  sel.ForEach([&](uint32_t row) {
    EXPECT_EQ(row % 7, 2u);
    visited++;
  });
  EXPECT_EQ(visited, sel.Size());
}

TEST(SelectionVectorTest, RandomizedAgainstReferenceFilter) {
  common::Xorshift rng(42);
  for (int round = 0; round < 20; round++) {
    const auto n = static_cast<uint32_t>(rng.Uniform(0, 2000));
    std::vector<uint64_t> values(n);
    for (auto &v : values) v = rng.Uniform(0, 100);
    const uint64_t threshold = rng.Uniform(0, 100);

    SelectionVector sel;
    sel.InitFull(n);
    sel.Refine([&](uint32_t row) { return values[row] < threshold; });

    std::vector<uint32_t> expected;
    for (uint32_t i = 0; i < n; i++) {
      if (values[i] < threshold) expected.push_back(i);
    }
    ASSERT_EQ(sel.Size(), expected.size());
    for (uint32_t i = 0; i < expected.size(); i++) ASSERT_EQ(sel[i], expected[i]);
  }
}

}  // namespace mainline
