#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "catalog/catalog.h"
#include "common/worker_pool.h"
#include "execution/operators/pipeline.h"
#include "workload/tpch/query_runner.h"
#include "workload/tpch/tpch_queries.h"
#include "gc/garbage_collector.h"
#include "transform/access_observer.h"
#include "transform/block_transformer.h"
#include "transform/transform_pipeline.h"
#include "workload/row_util.h"
#include "workload/tpch/customer.h"
#include "workload/tpch/lineitem.h"
#include "workload/tpch/orders.h"

namespace mainline {

using workload::ExecMode;
using workload::QueryRunner;
using execution::ScanStats;
using storage::BlockState;
using storage::ProjectedRow;
using transform::GatherMode;
namespace op = execution::op;
namespace q = workload::tpch;
namespace tpch = workload::tpch;

/// Coverage of PR 6's operator-layer growth: probe chaining (a chunk probed
/// by several HashJoinProbeOps in one pipeline, and a HashJoinBuildOp fed
/// from an already probed stream), the TopKOp sink's deterministic total
/// order, and TPC-H Q3 end to end — a hand-computed micro case, the edge
/// matrix (duplicate keys, dangling FKs at every hop, empty tables), and the
/// bit-exact plan-vs-scalar matrix across worker counts and freeze states.
class Q3TopKTest : public ::testing::TestWithParam<GatherMode> {
 protected:
  Q3TopKTest()
      : block_store_(2000, 100),
        buffer_pool_(10000000, 1000),
        catalog_(&block_store_),
        txn_manager_(&buffer_pool_, true, nullptr),
        gc_(&txn_manager_),
        observer_(/*cold_threshold=*/2),
        transformer_(&txn_manager_, &gc_, GetParam()),
        pipeline_(&observer_, &transformer_, /*group_size=*/4) {
    gc_.SetAccessObserver(&observer_);
  }

  ~Q3TopKTest() override { gc_.SetAccessObserver(nullptr); }

  /// Rows spanning a little over `blocks` lineitem blocks.
  static uint64_t RowsForBlocks(uint64_t blocks) {
    const uint32_t slots = tpch::LineItemSchema().ToBlockLayout().NumSlots();
    return blocks * slots + slots / 2;
  }

  /// Freeze every block of `table` through the transformation pipeline
  /// (gather mode per test parameter) and assert it took.
  void Freeze(catalog::SqlTable *table) {
    gc_.FullGC();
    pipeline_.EnqueueTable(&table->UnderlyingTable());
    pipeline_.RunOnce();
    for (storage::RawBlock *block : table->UnderlyingTable().Blocks()) {
      ASSERT_EQ(block->controller.GetState(), BlockState::kFrozen);
    }
  }

  // -------------------------------------------------------------------------
  // Hand-built Q3 tables: every column is written (defaults for the ones the
  // query never reads), so the rows freeze like generated data.
  // -------------------------------------------------------------------------

  struct CustomerRow {
    int64_t custkey;
    const char *segment;
  };
  catalog::SqlTable *MakeCustomer(const char *name, const std::vector<CustomerRow> &rows) {
    catalog::SqlTable *table =
        catalog_.GetTable(catalog_.CreateTable(name, tpch::CustomerSchema()));
    const auto init = table->FullInitializer();
    std::vector<byte> buffer(init.ProjectedRowSize() + 8);
    auto *txn = txn_manager_.BeginTransaction();
    for (const CustomerRow &r : rows) {
      ProjectedRow *row = init.InitializeRow(buffer.data());
      workload::Set<int64_t>(row, tpch::C_CUSTKEY, r.custkey);
      workload::SetVarchar(row, tpch::C_NAME, "c");
      workload::SetVarchar(row, tpch::C_ADDRESS, "a");
      workload::Set<int32_t>(row, tpch::C_NATIONKEY, 0);
      workload::SetVarchar(row, tpch::C_PHONE, "0");
      workload::Set<double>(row, tpch::C_ACCTBAL, 0.0);
      workload::SetVarchar(row, tpch::C_MKTSEGMENT, r.segment);
      workload::SetVarchar(row, tpch::C_COMMENT, "x");
      table->Insert(txn, *row);
    }
    txn_manager_.Commit(txn);
    return table;
  }

  struct OrderRow {
    int64_t orderkey;
    int64_t custkey;
    uint32_t orderdate;
    int32_t shippriority;
  };
  catalog::SqlTable *MakeOrders(const char *name, const std::vector<OrderRow> &rows) {
    catalog::SqlTable *table =
        catalog_.GetTable(catalog_.CreateTable(name, tpch::OrdersSchema()));
    const auto init = table->FullInitializer();
    std::vector<byte> buffer(init.ProjectedRowSize() + 8);
    auto *txn = txn_manager_.BeginTransaction();
    for (const OrderRow &r : rows) {
      ProjectedRow *row = init.InitializeRow(buffer.data());
      workload::Set<int64_t>(row, tpch::O_ORDERKEY, r.orderkey);
      workload::Set<int64_t>(row, tpch::O_CUSTKEY, r.custkey);
      workload::SetVarchar(row, tpch::O_ORDERSTATUS, "O");
      workload::Set<double>(row, tpch::O_TOTALPRICE, 0.0);
      workload::Set<uint32_t>(row, tpch::O_ORDERDATE, r.orderdate);
      workload::SetVarchar(row, tpch::O_ORDERPRIORITY, "3-MEDIUM");
      workload::SetVarchar(row, tpch::O_CLERK, "c");
      workload::Set<int32_t>(row, tpch::O_SHIPPRIORITY, r.shippriority);
      workload::SetVarchar(row, tpch::O_COMMENT, "x");
      table->Insert(txn, *row);
    }
    txn_manager_.Commit(txn);
    return table;
  }

  struct LineRow {
    int64_t orderkey;
    double extendedprice;
    double discount;
    uint32_t shipdate;
  };
  catalog::SqlTable *MakeLineitem(const char *name, const std::vector<LineRow> &rows) {
    catalog::SqlTable *table =
        catalog_.GetTable(catalog_.CreateTable(name, tpch::LineItemSchema()));
    const auto init = table->FullInitializer();
    std::vector<byte> buffer(init.ProjectedRowSize() + 8);
    auto *txn = txn_manager_.BeginTransaction();
    for (const LineRow &r : rows) {
      ProjectedRow *row = init.InitializeRow(buffer.data());
      workload::Set<int64_t>(row, tpch::L_ORDERKEY, r.orderkey);
      workload::Set<int64_t>(row, tpch::L_PARTKEY, 1);
      workload::Set<int64_t>(row, tpch::L_SUPPKEY, 1);
      workload::Set<int32_t>(row, tpch::L_LINENUMBER, 1);
      workload::Set<double>(row, tpch::L_QUANTITY, 1.0);
      workload::Set<double>(row, tpch::L_EXTENDEDPRICE, r.extendedprice);
      workload::Set<double>(row, tpch::L_DISCOUNT, r.discount);
      workload::Set<double>(row, tpch::L_TAX, 0.0);
      workload::SetVarchar(row, tpch::L_RETURNFLAG, "N");
      workload::SetVarchar(row, tpch::L_LINESTATUS, "O");
      workload::Set<uint32_t>(row, tpch::L_SHIPDATE, r.shipdate);
      workload::Set<uint32_t>(row, tpch::L_COMMITDATE, r.shipdate);
      workload::Set<uint32_t>(row, tpch::L_RECEIPTDATE, r.shipdate);
      workload::SetVarchar(row, tpch::L_SHIPINSTRUCT, "NONE");
      workload::SetVarchar(row, tpch::L_SHIPMODE, "MAIL");
      workload::SetVarchar(row, tpch::L_COMMENT, "x");
      table->Insert(txn, *row);
    }
    txn_manager_.Commit(txn);
    return table;
  }

  /// CUSTOMER + ORDERS + LINEITEM for the generated matrix. A third of the
  /// order custkeys dangle (no customer row), and lineitem orderkeys beyond
  /// the orders count dangle the other way — both FK edges are exercised.
  void GenerateQ3Tables(uint64_t rows) {
    const uint64_t customers = std::max<uint64_t>(rows / 6, 200);
    lineitem_ = tpch::GenerateLineItem(&catalog_, &txn_manager_, rows, /*seed=*/7,
                                       /*batch_size=*/4096);
    orders_ = tpch::GenerateOrders(&catalog_, &txn_manager_, rows / 3, /*seed=*/11,
                                   /*batch_size=*/4096, "orders",
                                   /*num_customers=*/customers + customers / 2);
    customer_ = tpch::GenerateCustomer(&catalog_, &txn_manager_, customers, /*seed=*/17,
                                       /*batch_size=*/4096);
    gc_.FullGC();
  }

  /// Q3 at `num_threads` — parallel plan, inline plan, scalar oracle, all in
  /// ONE transaction — expecting bit-identical rows in identical order.
  void ExpectQ3Agrees(uint32_t num_threads, ScanStats *stats_out = nullptr) {
    common::WorkerPool pool(num_threads);
    auto *txn = txn_manager_.BeginTransaction();
    ScanStats stats;
    const auto par = q::RunQ3Parallel(customer_, orders_, lineitem_, txn, {}, &pool, &stats);
    const auto scalar = q::RunQ3Scalar(customer_, orders_, lineitem_, txn, {}, nullptr);
    const auto inline_rows = q::RunQ3(customer_, orders_, lineitem_, txn, {}, nullptr);
    txn_manager_.Commit(txn);

    ASSERT_EQ(par.size(), scalar.size()) << num_threads << " threads";
    for (size_t i = 0; i < par.size(); i++) {
      EXPECT_TRUE(par[i] == scalar[i])
          << "parallel Q3 plan diverged from the scalar reference at " << num_threads
          << " threads (rank " << i << ": orderkey " << par[i].orderkey << " vs "
          << scalar[i].orderkey << ")";
    }
    EXPECT_TRUE(inline_rows == scalar) << "inline Q3 plan diverged";
    if (stats_out != nullptr) *stats_out = stats;
  }

  storage::BlockStore block_store_;
  storage::RecordBufferSegmentPool buffer_pool_;
  catalog::Catalog catalog_;
  transaction::TransactionManager txn_manager_;
  gc::GarbageCollector gc_;
  transform::AccessObserver observer_;
  transform::BlockTransformer transformer_;
  transform::TransformPipeline pipeline_;
  catalog::SqlTable *customer_ = nullptr;
  catalog::SqlTable *orders_ = nullptr;
  catalog::SqlTable *lineitem_ = nullptr;
};

namespace {

/// Test sink recording full match triples — (row id, payload, prior) — per
/// block ordinal, to pin chained-probe semantics exactly.
class MatchCollectOp final : public op::Operator {
 public:
  struct Row {
    int64_t id;
    uint64_t payload;
    uint64_t prior;

    bool operator==(const Row &) const = default;
  };

  explicit MatchCollectOp(uint16_t id_col) : id_col_(id_col) {}

  void Prepare(size_t num_blocks) override { per_block_.assign(num_blocks, {}); }

  void Push(op::Chunk *chunk) override {
    std::vector<Row> *rows = &per_block_[chunk->block_ordinal];
    const int64_t *ids = chunk->batch->Column(id_col_).buffer(0)->data_as<int64_t>();
    for (const op::JoinMatch &match : chunk->matches) {
      rows->push_back({ids[match.row], match.payload, match.prior});
    }
  }

  std::vector<Row> All() const {
    std::vector<Row> all;
    for (const std::vector<Row> &rows : per_block_) {
      all.insert(all.end(), rows.begin(), rows.end());
    }
    return all;
  }

 private:
  uint16_t id_col_;
  std::vector<std::vector<Row>> per_block_;
};

}  // namespace

/// Two chained kEachMatch probes over hand-built tables: the match list is
/// the cross product of both build sides' duplicate keys, in (row, first
/// table's insertion order, second table's insertion order) — and each final
/// match carries the first probe's payload in `prior`. Dangling keys at
/// either hop drop the row; chained through an empty middle table nothing
/// survives. Identical inline and at 4 workers.
TEST_P(Q3TopKTest, ChainedProbesCrossProductWithPriorPayloads) {
  const catalog::Schema kv_schema(
      {{"key", catalog::TypeId::kBigInt}, {"pay", catalog::TypeId::kBigInt}});
  const catalog::Schema probe_schema({{"id", catalog::TypeId::kBigInt},
                                      {"fk_a", catalog::TypeId::kBigInt},
                                      {"fk_b", catalog::TypeId::kBigInt}});
  const auto fill_kv = [&](const char *name,
                           const std::vector<std::pair<int64_t, int64_t>> &rows) {
    catalog::SqlTable *table = catalog_.GetTable(catalog_.CreateTable(name, kv_schema));
    const auto init = table->FullInitializer();
    std::vector<byte> buffer(init.ProjectedRowSize() + 8);
    auto *txn = txn_manager_.BeginTransaction();
    for (const auto &[key, pay] : rows) {
      ProjectedRow *row = init.InitializeRow(buffer.data());
      workload::Set<int64_t>(row, 0, key);
      workload::Set<int64_t>(row, 1, pay);
      table->Insert(txn, *row);
    }
    txn_manager_.Commit(txn);
    return table;
  };

  // Table A: key 1 once (payload 10), key 2 twice (20, 21); key 3 absent.
  catalog::SqlTable *a = fill_kv("chain_a", {{1, 10}, {2, 20}, {2, 21}});
  // Table B: key 5 twice (50, 51), key 6 once (60); key 7 absent.
  catalog::SqlTable *b = fill_kv("chain_b", {{5, 50}, {5, 51}, {6, 60}});
  catalog::SqlTable *empty_kv =
      catalog_.GetTable(catalog_.CreateTable("chain_empty", kv_schema));

  // Probe rows: (id, fk_a, fk_b) — every combination of matching/dangling.
  catalog::SqlTable *probe =
      catalog_.GetTable(catalog_.CreateTable("chain_probe", probe_schema));
  {
    const auto init = probe->FullInitializer();
    std::vector<byte> buffer(init.ProjectedRowSize() + 8);
    auto *txn = txn_manager_.BeginTransaction();
    const std::vector<std::tuple<int64_t, int64_t, int64_t>> rows = {
        {100, 1, 5},  // 1 a-match x 2 b-matches
        {101, 2, 6},  // 2 x 1
        {102, 2, 5},  // 2 x 2
        {103, 3, 5},  // dangles at the first hop
        {104, 1, 7},  // survives the first hop, dangles at the second
        {105, 3, 7},  // dangles at both
    };
    for (const auto &[id, fk_a, fk_b] : rows) {
      ProjectedRow *row = init.InitializeRow(buffer.data());
      workload::Set<int64_t>(row, 0, id);
      workload::Set<int64_t>(row, 1, fk_a);
      workload::Set<int64_t>(row, 2, fk_b);
      probe->Insert(txn, *row);
    }
    txn_manager_.Commit(txn);
  }
  gc_.FullGC();

  const std::vector<MatchCollectOp::Row> expected = {
      {100, 50, 10}, {100, 51, 10},                  // row 100: a=10, b in {50, 51}
      {101, 60, 20}, {101, 60, 21},                  // row 101: a in {20, 21}, b=60
      {102, 50, 20}, {102, 51, 20}, {102, 50, 21}, {102, 51, 21},
  };

  for (const bool parallel : {false, true}) {
    common::WorkerPool pool(parallel ? 4 : 0);
    auto *txn = txn_manager_.BeginTransaction();
    op::PhysicalPlan plan;
    op::PipelineBuilder builder(&plan);
    builder.Scan(a, {0, 1});
    op::HashJoinBuildOp *build_a = builder.JoinBuild(0, op::PayloadSpec::Int64Column(1));
    builder.Scan(b, {0, 1});
    op::HashJoinBuildOp *build_b = builder.JoinBuild(0, op::PayloadSpec::Int64Column(1));
    op::Pipeline *probe_pipe = plan.AddPipeline(probe, {0, 1, 2});
    probe_pipe->Add<op::HashJoinProbeOp>(/*key_col=*/1, build_a);
    probe_pipe->Add<op::HashJoinProbeOp>(/*key_col=*/2, build_b);
    MatchCollectOp *collect = probe_pipe->Add<MatchCollectOp>(/*id_col=*/0);
    plan.Run(txn, parallel ? &pool : nullptr, nullptr);
    txn_manager_.Commit(txn);
    EXPECT_TRUE(collect->All() == expected)
        << (parallel ? "parallel" : "inline") << " chained probe match list diverged";
  }

  // Chained through an empty middle build: nothing reaches the sink, even
  // though the second hop would match.
  auto *txn = txn_manager_.BeginTransaction();
  op::PhysicalPlan plan;
  op::PipelineBuilder builder(&plan);
  builder.Scan(empty_kv, {0, 1});
  op::HashJoinBuildOp *build_empty = builder.JoinBuild(0, op::PayloadSpec::Int64Column(1));
  builder.Scan(b, {0, 1});
  op::HashJoinBuildOp *build_b = builder.JoinBuild(0, op::PayloadSpec::Int64Column(1));
  op::Pipeline *probe_pipe = plan.AddPipeline(probe, {0, 1, 2});
  probe_pipe->Add<op::HashJoinProbeOp>(1, build_empty);
  probe_pipe->Add<op::HashJoinProbeOp>(2, build_b);
  MatchCollectOp *collect = probe_pipe->Add<MatchCollectOp>(0);
  plan.Run(txn, nullptr, nullptr);
  txn_manager_.Commit(txn);
  EXPECT_TRUE(collect->All().empty());
  gc_.FullGC();
}

/// A HashJoinBuildOp downstream of a probe consumes the match list, so join
/// multiplicity carries into the new table: a key matched N times upstream
/// inserts N entries.
TEST_P(Q3TopKTest, BuildFromProbedStreamCarriesMultiplicity) {
  const catalog::Schema kv_schema(
      {{"key", catalog::TypeId::kBigInt}, {"pay", catalog::TypeId::kBigInt}});
  catalog::SqlTable *dims = catalog_.GetTable(catalog_.CreateTable("bm_dims", kv_schema));
  catalog::SqlTable *facts = catalog_.GetTable(catalog_.CreateTable("bm_facts", kv_schema));
  {
    const auto init = dims->FullInitializer();
    std::vector<byte> buffer(init.ProjectedRowSize() + 8);
    auto *txn = txn_manager_.BeginTransaction();
    // Dimension key 1 appears twice, key 2 once.
    for (const auto &[k, p] : std::vector<std::pair<int64_t, int64_t>>{{1, 0}, {1, 0}, {2, 0}}) {
      ProjectedRow *row = init.InitializeRow(buffer.data());
      workload::Set<int64_t>(row, 0, k);
      workload::Set<int64_t>(row, 1, p);
      dims->Insert(txn, *row);
    }
    txn_manager_.Commit(txn);
  }
  {
    const auto init = facts->FullInitializer();
    std::vector<byte> buffer(init.ProjectedRowSize() + 8);
    auto *txn = txn_manager_.BeginTransaction();
    // Facts: key 1 payload 7 (joins twice), key 2 payload 8 (once), key 9
    // dangles.
    for (const auto &[k, p] : std::vector<std::pair<int64_t, int64_t>>{{1, 7}, {2, 8}, {9, 9}}) {
      ProjectedRow *row = init.InitializeRow(buffer.data());
      workload::Set<int64_t>(row, 0, k);
      workload::Set<int64_t>(row, 1, p);
      facts->Insert(txn, *row);
    }
    txn_manager_.Commit(txn);
  }
  gc_.FullGC();

  auto *txn = txn_manager_.BeginTransaction();
  op::PhysicalPlan plan;
  op::PipelineBuilder builder(&plan);
  builder.Scan(dims, {0, 1});
  op::HashJoinBuildOp *dim_build = builder.JoinBuild(0, op::PayloadSpec::Int64Column(1));
  // Pipeline 2: probe facts against dims, then BUILD from the probed stream.
  builder.Scan(facts, {0, 1}).JoinProbe(0, dim_build);
  op::HashJoinBuildOp *fact_build = builder.JoinBuild(0, op::PayloadSpec::Int64Column(1));
  plan.Run(txn, nullptr, nullptr);
  txn_manager_.Commit(txn);

  // Key 1 joined twice -> two entries with payload 7; key 2 once; key 9 none.
  EXPECT_EQ(fact_build->Table().NumEntries(), 3u);
  std::vector<uint64_t> key1_payloads;
  fact_build->Table().ForEachMatch(1, [&](uint64_t p) { key1_payloads.push_back(p); });
  EXPECT_EQ(key1_payloads, (std::vector<uint64_t>{7, 7}));
  std::vector<uint64_t> key9_payloads;
  fact_build->Table().ForEachMatch(9, [&](uint64_t p) { key9_payloads.push_back(p); });
  EXPECT_TRUE(key9_payloads.empty());
  gc_.FullGC();
}

/// TopKOp against a manual stable sort over a multi-block table dense with
/// ties: the (key DESC, date ASC) comparison collapses rows into large tie
/// classes, so the k boundary cuts through one — the result is only correct
/// if the scan-position tie-break holds exactly. Also k = 0, k > n, and
/// inline-vs-4-workers identity.
TEST_P(Q3TopKTest, TopKMatchesStableSortThroughTieClasses) {
  const catalog::Schema schema({{"id", catalog::TypeId::kBigInt},
                                {"key", catalog::TypeId::kDecimal},
                                {"date", catalog::TypeId::kDate}});
  catalog::SqlTable *table = catalog_.GetTable(catalog_.CreateTable("topk", schema));
  const auto init = table->FullInitializer();
  std::vector<byte> buffer(init.ProjectedRowSize() + 8);
  auto *txn = txn_manager_.BeginTransaction();
  int64_t rows = 0;
  // Only 10 distinct (key, date) pairs -> every class spans blocks.
  while (table->UnderlyingTable().NumBlocks() < 4) {
    ProjectedRow *row = init.InitializeRow(buffer.data());
    workload::Set<int64_t>(row, 0, rows);
    workload::Set<double>(row, 1, static_cast<double>(rows % 5) / 2.0);
    workload::Set<uint32_t>(row, 2, 9000 + static_cast<uint32_t>(rows % 2));
    table->Insert(txn, *row);
    rows++;
  }
  txn_manager_.Commit(txn);
  gc_.FullGC();

  // The oracle: rows in scan (insertion) order, stable-sorted by the keys —
  // stability IS the (ordinal, seq) tie-break.
  struct Expected {
    int64_t id;
    double key;
    uint32_t date;
  };
  std::vector<Expected> oracle;
  oracle.reserve(static_cast<size_t>(rows));
  for (int64_t i = 0; i < rows; i++) {
    oracle.push_back({i, static_cast<double>(i % 5) / 2.0, 9000 + static_cast<uint32_t>(i % 2)});
  }
  std::stable_sort(oracle.begin(), oracle.end(), [](const Expected &a, const Expected &b) {
    if (a.key != b.key) return a.key > b.key;
    return a.date < b.date;
  });

  const auto run = [&](uint32_t k, common::WorkerPool *pool) {
    auto *run_txn = txn_manager_.BeginTransaction();
    op::PhysicalPlan plan;
    op::PipelineBuilder builder(&plan);
    builder.Scan(table, {0, 1, 2});
    op::TopKOp *topk = builder.TopK(
        k,
        {op::SortKey::OfExpr(op::Expr::Column(op::ColumnRef::Batch(1)), /*descending=*/true),
         op::SortKey::U32Column(2)},
        {op::OutputCol::Int64Column(0), op::OutputCol::OfExpr(op::Expr::Column(
                                            op::ColumnRef::Batch(1))),
         op::OutputCol::U32Column(2)});
    plan.Run(run_txn, pool, nullptr);
    txn_manager_.Commit(run_txn);
    return topk->Result();
  };

  const auto check = [&](const char *label) {
    common::WorkerPool pool(4);
    // k cutting mid-tie-class, k = 1, k just below n, k > n, and k = 0.
    for (const uint32_t k :
         {uint32_t{173}, uint32_t{1}, static_cast<uint32_t>(rows - 1),
          static_cast<uint32_t>(rows + 100), uint32_t{0}}) {
      const std::vector<op::TopKRow> inline_result = run(k, nullptr);
      const size_t expected_size = std::min<size_t>(k, static_cast<size_t>(rows));
      ASSERT_EQ(inline_result.size(), expected_size) << label << " k=" << k;
      for (size_t i = 0; i < expected_size; i++) {
        EXPECT_EQ(inline_result[i].cols[0].i64, oracle[i].id)
            << label << " k=" << k << " rank " << i;
        EXPECT_EQ(inline_result[i].cols[1].f64, oracle[i].key) << label << " k=" << k;
        EXPECT_EQ(inline_result[i].cols[2].i64, static_cast<int64_t>(oracle[i].date))
            << label << " k=" << k;
      }
      // Worker count must not change a single row or its order.
      const std::vector<op::TopKRow> parallel_result = run(k, &pool);
      ASSERT_EQ(parallel_result.size(), inline_result.size()) << label << " k=" << k;
      for (size_t i = 0; i < parallel_result.size(); i++) {
        EXPECT_EQ(parallel_result[i].cols[0].i64, inline_result[i].cols[0].i64)
            << label << " k=" << k << " rank " << i << ": 4 workers diverged from inline";
      }
    }
  };

  check("hot");
  Freeze(table);
  check("frozen");
  gc_.FullGC();
}

/// The fully hand-computed Q3 micro case: duplicate customer keys fan out,
/// dangling FKs at every hop drop rows, the date filters gate both sides,
/// revenue folds in lineitem insertion order — checked against literal
/// expected rows on all three engines, hot and frozen, at several limits.
TEST_P(Q3TopKTest, Q3HandComputedMicroCase) {
  customer_ = MakeCustomer("customer", {{1, "BUILDING"},
                                        {2, "AUTOMOBILE"},
                                        {3, "BUILDING"},
                                        {3, "BUILDING"},  // duplicate custkey
                                        {4, "BUILDING"}});
  orders_ = MakeOrders("orders", {{10, 1, 9000, 7},    // revenue 140
                                  {11, 2, 9000, 1},    // wrong segment
                                  {12, 3, 9100, 2},    // duplicate customer -> 2 rows
                                  {13, 99, 9100, 3},   // dangling custkey
                                  {14, 1, 9600, 4},    // fails o_orderdate < 9500
                                  {15, 4, 9100, 5}});  // no qualifying lineitems
  lineitem_ = MakeLineitem("lineitem", {{10, 100.0, 0.1, 9600},   // 90
                                        {10, 123.0, 0.0, 9400},   // fails l_shipdate > 9500
                                        {10, 50.0, 0.0, 9700},    // +50 -> 140
                                        {12, 200.0, 0.5, 9600},   // 100
                                        {15, 77.0, 0.0, 9000},    // fails the date filter
                                        {999, 10.0, 0.0, 9800}});  // dangling orderkey
  gc_.FullGC();

  const std::vector<q::Q3Row> expected = {
      {10, 100.0 * 0.9 + 50.0, 9000, 7},
      {12, 100.0, 9100, 2},
      {12, 100.0, 9100, 2},
  };

  const auto check = [&](const char *label) {
    QueryRunner runner(&txn_manager_, /*num_threads=*/4);
    for (const ExecMode mode :
         {ExecMode::kVectorized, ExecMode::kScalar, ExecMode::kParallel}) {
      const auto result = runner.RunQ3(customer_, orders_, lineitem_, {}, mode);
      EXPECT_TRUE(result.rows == expected)
          << label << " mode " << static_cast<int>(mode) << ": got " << result.rows.size()
          << " rows";

      q::Q3Params limited;
      limited.limit = 2;
      const auto top2 = runner.RunQ3(customer_, orders_, lineitem_, limited, mode);
      EXPECT_TRUE(top2.rows ==
                  std::vector<q::Q3Row>(expected.begin(), expected.begin() + 2))
          << label << " limit 2";

      q::Q3Params none;
      none.limit = 0;
      EXPECT_TRUE(runner.RunQ3(customer_, orders_, lineitem_, none, mode).rows.empty())
          << label << " limit 0";
    }
  };

  check("hot");
  for (catalog::SqlTable *table : {customer_, orders_, lineitem_}) Freeze(table);
  check("frozen");
  gc_.FullGC();
}

/// Q3 with any empty input table is empty on every engine.
TEST_P(Q3TopKTest, Q3EmptyTablesYieldNothing) {
  catalog::SqlTable *no_customers =
      catalog_.GetTable(catalog_.CreateTable("customer_none", tpch::CustomerSchema()));
  catalog::SqlTable *no_orders =
      catalog_.GetTable(catalog_.CreateTable("orders_none", tpch::OrdersSchema()));
  catalog::SqlTable *no_lines =
      catalog_.GetTable(catalog_.CreateTable("lineitem_none", tpch::LineItemSchema()));
  catalog::SqlTable *customers = MakeCustomer("customer_some", {{1, "BUILDING"}});
  catalog::SqlTable *orders = MakeOrders("orders_some", {{10, 1, 9000, 0}});
  catalog::SqlTable *lines = MakeLineitem("lineitem_some", {{10, 100.0, 0.0, 9600}});
  gc_.FullGC();

  QueryRunner runner(&txn_manager_, 2);
  for (const ExecMode mode :
       {ExecMode::kVectorized, ExecMode::kScalar, ExecMode::kParallel}) {
    EXPECT_TRUE(runner.RunQ3(no_customers, orders, lines, {}, mode).rows.empty());
    EXPECT_TRUE(runner.RunQ3(customers, no_orders, lines, {}, mode).rows.empty());
    EXPECT_TRUE(runner.RunQ3(customers, orders, no_lines, {}, mode).rows.empty());
    // Sanity: the non-empty combination does produce the row.
    EXPECT_EQ(runner.RunQ3(customers, orders, lines, {}, mode).rows.size(), 1u);
  }
  gc_.FullGC();
}

/// The headline matrix: generated CUSTOMER/ORDERS/LINEITEM, the Q3 plan vs
/// the scalar oracle at 1/2/4/8 workers over hot, ~50% frozen, and fully
/// frozen tables — bit-exact everywhere, including the LIMIT boundary order.
TEST_P(Q3TopKTest, Q3MatchesScalarAcrossFreezeStatesAndThreadCounts) {
  GenerateQ3Tables(RowsForBlocks(2));
  ASSERT_GT(lineitem_->UnderlyingTable().NumBlocks(), 2u);

  // The generated workload must actually produce a full top list, or the
  // matrix proves nothing.
  {
    auto *txn = txn_manager_.BeginTransaction();
    const auto rows = q::RunQ3Scalar(customer_, orders_, lineitem_, txn, {}, nullptr);
    txn_manager_.Commit(txn);
    ASSERT_EQ(rows.size(), q::Q3Params{}.limit)
        << "generator knobs drifted: Q3 no longer fills its LIMIT";
  }

  ScanStats stats;
  for (const uint32_t threads : {1u, 2u, 4u, 8u}) {
    ExpectQ3Agrees(threads, &stats);
    EXPECT_EQ(stats.frozen_blocks, 0u);
    EXPECT_GT(stats.hot_blocks, 0u);
  }

  for (catalog::SqlTable *table : {customer_, orders_, lineitem_}) {
    storage::DataTable &dt = table->UnderlyingTable();
    const std::vector<storage::RawBlock *> blocks = dt.Blocks();
    for (size_t i = 0; i < blocks.size() / 2; i++) {
      transformer_.ProcessGroup(&dt, {blocks[i]}, nullptr);
    }
  }
  for (const uint32_t threads : {1u, 2u, 4u, 8u}) {
    ExpectQ3Agrees(threads, &stats);
    EXPECT_GT(stats.hot_blocks, 0u);
  }

  for (catalog::SqlTable *table : {customer_, orders_, lineitem_}) Freeze(table);
  for (const uint32_t threads : {1u, 2u, 4u, 8u}) {
    ExpectQ3Agrees(threads, &stats);
    EXPECT_GT(stats.frozen_blocks, 0u);
    EXPECT_EQ(stats.hot_blocks, 0u);
  }
  gc_.FullGC();
}

INSTANTIATE_TEST_SUITE_P(Modes, Q3TopKTest,
                         ::testing::Values(GatherMode::kVarlenGather,
                                           GatherMode::kDictionaryCompression),
                         [](const auto &info) {
                           return info.param == GatherMode::kVarlenGather ? "Gather"
                                                                          : "Dictionary";
                         });

}  // namespace mainline
