#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "export/protocols.h"
#include "gc/garbage_collector.h"
#include "transform/block_transformer.h"
#include "workload/row_util.h"

namespace mainline {

// All four export mechanisms must deliver the same logical data to the
// client, whether blocks are hot (materialized) or frozen (zero-copy).
class ExportTest : public ::testing::TestWithParam<bool /*frozen*/> {
 protected:
  ExportTest()
      : block_store_(100, 10),
        buffer_pool_(100000, 100),
        catalog_(&block_store_),
        txn_manager_(&buffer_pool_, true, nullptr),
        gc_(&txn_manager_) {
    catalog::Schema schema({{"id", catalog::TypeId::kBigInt},
                            {"qty", catalog::TypeId::kSmallInt, true},
                            {"price", catalog::TypeId::kDecimal},
                            {"note", catalog::TypeId::kVarchar, true}});
    table_ = catalog_.GetTable(catalog_.CreateTable("t", schema));

    const auto initializer = table_->FullInitializer();
    std::vector<byte> buffer(initializer.ProjectedRowSize() + 8);
    auto *txn = txn_manager_.BeginTransaction();
    for (int64_t i = 0; i < 2000; i++) {
      storage::ProjectedRow *row = initializer.InitializeRow(buffer.data());
      workload::Set<int64_t>(row, 0, i);
      if (i % 5 == 0) {
        row->SetNull(1);
      } else {
        workload::Set<int16_t>(row, 1, static_cast<int16_t>(i % 100));
      }
      workload::Set<double>(row, 2, static_cast<double>(i) * 0.25);
      if (i % 3 == 0) {
        row->SetNull(3);
      } else {
        workload::SetVarchar(row, 3, "note-about-row-number-" + std::to_string(i));
      }
      table_->Insert(txn, *row);
    }
    txn_manager_.Commit(txn);
    gc_.FullGC();

    if (GetParam()) {
      transform::BlockTransformer transformer(&txn_manager_, &gc_);
      storage::DataTable &dt = table_->UnderlyingTable();
      frozen_blocks_ = transformer.ProcessGroup(&dt, dt.Blocks(), nullptr);
      EXPECT_GT(frozen_blocks_, 0u);
    }
  }

  storage::BlockStore block_store_;
  storage::RecordBufferSegmentPool buffer_pool_;
  catalog::Catalog catalog_;
  transaction::TransactionManager txn_manager_;
  gc::GarbageCollector gc_;
  catalog::SqlTable *table_;
  uint32_t frozen_blocks_ = 0;
};

TEST_P(ExportTest, FlightDeliversSameDataAsRdmaPathAndWire) {
  exporter::ClientBuffer client(64ull << 20);

  exporter::ArrowFlightExporter flight(&client);
  const auto flight_result = flight.Export(table_, &txn_manager_);
  EXPECT_EQ(flight_result.rows, 2000u);
  EXPECT_EQ(flight_result.frozen_blocks > 0, GetParam());
  ASSERT_FALSE(flight.ClientBatches().empty());

  // Row counts and values, row-major over batches.
  int64_t i = 0;
  double checksum = 0;
  for (const auto &batch : flight.ClientBatches()) {
    for (int64_t r = 0; r < batch->num_rows(); r++, i++) {
      EXPECT_EQ(batch->column(0)->Value<int64_t>(r), i);
      EXPECT_EQ(batch->column(1)->IsNull(r), i % 5 == 0);
      checksum += batch->column(2)->Value<double>(r);
      if (i % 3 != 0) {
        EXPECT_EQ(batch->column(3)->GetString(r),
                  "note-about-row-number-" + std::to_string(i));
      }
    }
  }
  EXPECT_EQ(i, 2000);

  exporter::VectorizedWireExporter vectorized(&client);
  const auto vec_result = vectorized.Export(table_, &txn_manager_);
  EXPECT_EQ(vec_result.rows, 2000u);
  double vec_checksum = 0;
  const auto &vec_batch = vectorized.ClientBatch();
  for (int64_t r = 0; r < vec_batch->num_rows(); r++) {
    vec_checksum += vec_batch->column(2)->Value<double>(r);
  }
  EXPECT_DOUBLE_EQ(vec_checksum, checksum);

  exporter::PostgresWireExporter pg(&client);
  const auto pg_result = pg.Export(table_, &txn_manager_);
  EXPECT_EQ(pg_result.rows, 2000u);
  const auto &pg_batch = pg.ClientBatch();
  EXPECT_EQ(pg_batch->num_rows(), 2000);
  double pg_checksum = 0;
  for (int64_t r = 0; r < pg_batch->num_rows(); r++) {
    EXPECT_EQ(pg_batch->column(1)->IsNull(r), r % 5 == 0);
    pg_checksum += pg_batch->column(2)->Value<double>(r);
  }
  EXPECT_NEAR(pg_checksum, checksum, 1e-3);  // text round-trip rounding

  exporter::RdmaExporter rdma(&client);
  const auto rdma_result = rdma.Export(table_, &txn_manager_);
  EXPECT_EQ(rdma_result.rows, 2000u);
  EXPECT_GT(rdma_result.wire_bytes, 0u);
  // RDMA ships strictly raw buffers: it can never put more on the wire than
  // the framed IPC stream.
  EXPECT_LE(rdma_result.wire_bytes, flight_result.wire_bytes);
  gc_.FullGC();
}

INSTANTIATE_TEST_SUITE_P(HotAndFrozen, ExportTest, ::testing::Bool(),
                         [](const auto &info) { return info.param ? "Frozen" : "Hot"; });

}  // namespace mainline
