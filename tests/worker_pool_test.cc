#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "common/worker_pool.h"

namespace mainline {

/// Regression coverage for the WorkerPool misuse bugs: a task submitted
/// after Shutdown used to be enqueued for workers that no longer exist, so a
/// later WaitUntilAllFinished blocked forever; and the done notification was
/// issued outside the mutex that guards the wait predicate.

TEST(WorkerPoolTest, RejectsSubmitAfterShutdown) {
  common::WorkerPool pool(2);
  std::atomic<int> counter{0};
  EXPECT_TRUE(pool.SubmitTask([&] { counter.fetch_add(1); }));
  pool.WaitUntilAllFinished();
  EXPECT_EQ(counter.load(), 1);

  pool.Shutdown();
  EXPECT_EQ(pool.NumWorkers(), 0u);
  // The rejected task must not be enqueued: WaitUntilAllFinished would
  // otherwise deadlock on a task no worker will ever run.
  EXPECT_FALSE(pool.SubmitTask([&] { counter.fetch_add(1); }));
  pool.WaitUntilAllFinished();  // returns immediately: nothing outstanding
  EXPECT_EQ(counter.load(), 1);
  // Shutdown is idempotent.
  pool.Shutdown();
}

TEST(WorkerPoolTest, ShutdownDrainsPendingTasks) {
  std::atomic<int> counter{0};
  {
    common::WorkerPool pool(2);
    for (int i = 0; i < 64; i++) {
      EXPECT_TRUE(pool.SubmitTask([&] { counter.fetch_add(1); }));
    }
    // Destructor-driven Shutdown drains the queue before joining.
  }
  EXPECT_EQ(counter.load(), 64);
}

/// Hammer the submit/wait handshake: many short waves, with the waiter
/// racing the workers' final decrement every wave. A lost wakeup shows up as
/// this test hanging (and tripping the ctest timeout).
TEST(WorkerPoolTest, WaitNeverMissesTheLastFinish) {
  common::WorkerPool pool(4);
  std::atomic<uint64_t> counter{0};
  for (int wave = 0; wave < 300; wave++) {
    const int tasks = 1 + wave % 7;
    for (int t = 0; t < tasks; t++) {
      EXPECT_TRUE(pool.SubmitTask([&] { counter.fetch_add(1); }));
    }
    pool.WaitUntilAllFinished();
  }
  // 300 waves of (1 + wave % 7) tasks.
  uint64_t expected = 0;
  for (int wave = 0; wave < 300; wave++) expected += static_cast<uint64_t>(1 + wave % 7);
  EXPECT_EQ(counter.load(), expected);
}

/// Waiters on other threads must also see completion (WaitUntilAllFinished
/// is not reserved to the submitting thread).
TEST(WorkerPoolTest, ConcurrentWaitersAllWake) {
  common::WorkerPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 32; i++) {
    pool.SubmitTask([&] {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
      counter.fetch_add(1);
    });
  }
  std::atomic<int> woke{0};
  std::thread waiters[3];
  for (auto &w : waiters) {
    w = std::thread([&] {
      pool.WaitUntilAllFinished();
      EXPECT_EQ(counter.load(), 32);
      woke.fetch_add(1);
    });
  }
  for (auto &w : waiters) w.join();
  EXPECT_EQ(woke.load(), 3);
}

}  // namespace mainline
