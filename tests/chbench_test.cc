#include <gtest/gtest.h>

#include <chrono>

#include "catalog/catalog.h"
#include "gc/garbage_collector.h"
#include "storage/raw_block.h"
#include "storage/record_buffer.h"
#include "transaction/transaction_manager.h"
#include "workload/chbench/chbench_harness.h"

namespace mainline {

using workload::chbench::ChBenchHarness;
using workload::chbench::Config;
using workload::chbench::Result;

/// End-to-end coverage of the CH-benCHmark HTAP harness at a tiny scale:
/// terminals, the fresh-order feed, concurrent Q1/Q6/Q12/Q14, the background
/// transform pipeline, and — the load-bearing assertion — every sampled
/// analytical answer bit-exact against its scalar oracle in the same
/// snapshot while all of that runs.
class ChBenchTest : public ::testing::Test {
 protected:
  ChBenchTest()
      : block_store_(60000, 1000),
        buffer_pool_(0, 10000),
        catalog_(&block_store_),
        txn_manager_(&buffer_pool_, true, nullptr),
        gc_(&txn_manager_) {}

  static Config TinyConfig() {
    Config config;
    config.terminals = 2;
    config.query_workers = 2;
    config.duration_seconds = 1.0;
    config.tpcc_scale = workload::tpcc::Config::Scaled(500, 50);
    config.lineitem_rows = 20000;
    config.part_rows = 1000;
    config.feed_rows_per_txn = 8;
    config.oracle_every = 1;  // cross-check every sampled run
    return config;
  }

  void ExpectWindowIsSound(const Result &result) {
    // The window did OLTP work and fed the fact tables.
    EXPECT_GT(result.seconds, 0.0);
    EXPECT_GT(result.tpcc_committed, 0u);
    EXPECT_GT(result.txns_per_second, 0.0);
    EXPECT_GT(result.feed_txns, 0u);
    EXPECT_GT(result.feed_rows, 0u);
    EXPECT_EQ(result.feed_rows, result.feed_txns * TinyConfig().feed_rows_per_txn);

    // Analytics ran against the moving tables, and with oracle_every=1 every
    // run was cross-checked — all of them bit-exact.
    ASSERT_EQ(result.queries.size(), 4u);
    uint64_t total_runs = 0;
    for (const auto &query : result.queries) {
      total_runs += query.runs;
      EXPECT_EQ(query.oracle_checks, query.runs) << query.name;
      EXPECT_EQ(query.oracle_mismatches, 0u) << query.name;
    }
    EXPECT_GT(total_runs, 0u);
    EXPECT_GT(result.oracle_checks, 0u);
    EXPECT_EQ(result.oracle_checks, total_runs);
    EXPECT_TRUE(result.BitExact());

    // The background pipeline made progress: passes happened and the
    // bulk-loaded analytical blocks reached the frozen state.
    EXPECT_GT(result.transform_passes, 0u);
    EXPECT_GT(result.blocks_frozen, 0u);
    EXPECT_GT(result.frozen_pct, 0.0);
  }

  storage::BlockStore block_store_;
  storage::RecordBufferSegmentPool buffer_pool_;
  catalog::Catalog catalog_;
  transaction::TransactionManager txn_manager_;
  gc::GarbageCollector gc_;
};

TEST_F(ChBenchTest, AdaptiveWindowIsBitExactUnderConcurrency) {
  Config config = TinyConfig();
  config.adaptive = true;
  ChBenchHarness harness(&catalog_, &txn_manager_, &gc_, config);
  harness.Setup();
  const Result result = harness.Run();
  ExpectWindowIsSound(result);

  // The controller's last word stays inside its configured band.
  EXPECT_GE(result.final_period, config.policy.min_period);
  EXPECT_LE(result.final_period, config.policy.max_period);
}

TEST_F(ChBenchTest, FixedCadenceWindowIsBitExactUnderConcurrency) {
  Config config = TinyConfig();
  config.adaptive = false;
  config.fixed_period = std::chrono::milliseconds(5);
  ChBenchHarness harness(&catalog_, &txn_manager_, &gc_, config);
  harness.Setup();
  const Result result = harness.Run();
  ExpectWindowIsSound(result);
  EXPECT_EQ(result.final_period, config.fixed_period);
}

TEST_F(ChBenchTest, SetupRaisesWarehousesToTerminalCountAndFeedKeysDontCollide) {
  Config config = TinyConfig();
  config.terminals = 3;
  config.tpcc_scale.num_warehouses = 1;  // Setup must raise this to 3
  ChBenchHarness harness(&catalog_, &txn_manager_, &gc_, config);
  harness.Setup();
  EXPECT_GE(harness.Db()->config.num_warehouses, 3);
  ASSERT_NE(harness.LineItem(), nullptr);
  ASSERT_NE(harness.OrdersTable(), nullptr);
  ASSERT_NE(harness.PartTable(), nullptr);
}

}  // namespace mainline
