#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "catalog/catalog.h"
#include "common/rand_util.h"
#include "common/worker_pool.h"
#include "execution/parallel_scanner.h"
#include "workload/tpch/query_runner.h"
#include "workload/tpch/tpch_queries.h"
#include "gc/garbage_collector.h"
#include "transform/access_observer.h"
#include "transform/block_transformer.h"
#include "transform/transform_pipeline.h"
#include "workload/row_util.h"
#include "workload/tpch/lineitem.h"

namespace mainline {

using execution::ColumnVectorBatch;
using workload::ExecMode;
using execution::ParallelTableScanner;
using workload::QueryRunner;
using execution::ScanStats;
using storage::BlockState;
using storage::ProjectedRow;
using transform::GatherMode;
namespace q = workload::tpch;

/// Coverage of the morsel-parallel execution layer: for every worker count,
/// the parallel engine must return results BIT-IDENTICAL to the scalar
/// tuple-at-a-time reference and the sequential vectorized engine — over
/// hot, mixed, and fully frozen tables, and while writers and the
/// transformation pipeline churn underneath.
class ParallelExecutionTest : public ::testing::TestWithParam<GatherMode> {
 protected:
  ParallelExecutionTest()
      : block_store_(2000, 100),
        buffer_pool_(10000000, 1000),
        catalog_(&block_store_),
        txn_manager_(&buffer_pool_, true, nullptr),
        gc_(&txn_manager_),
        observer_(/*cold_threshold=*/2),
        transformer_(&txn_manager_, &gc_, GetParam()),
        pipeline_(&observer_, &transformer_, /*group_size=*/4) {
    gc_.SetAccessObserver(&observer_);
  }

  // Detach the observer before members destruct (in reverse order, the
  // observer dies before the GC — whose own destructor still runs a final
  // collection pass that would feed it).
  ~ParallelExecutionTest() { gc_.SetAccessObserver(nullptr); }

  /// Rows spanning a little over `blocks` lineitem blocks.
  static uint64_t RowsForBlocks(uint64_t blocks) {
    const uint32_t slots = workload::tpch::LineItemSchema().ToBlockLayout().NumSlots();
    return blocks * slots + slots / 2;
  }

  catalog::SqlTable *Generate(uint64_t rows) {
    catalog::SqlTable *table = workload::tpch::GenerateLineItem(
        &catalog_, &txn_manager_, rows, /*seed=*/7, /*batch_size=*/4096);
    gc_.FullGC();
    return table;
  }

  /// Parallel Q1 + Q6 at `num_threads` against the scalar reference and the
  /// sequential vectorized engine, all inside ONE transaction so every
  /// engine answers from the same snapshot.
  void ExpectParallelAgrees(catalog::SqlTable *table, uint32_t num_threads,
                            ScanStats *stats_out = nullptr) {
    common::WorkerPool pool(num_threads);
    auto *txn = txn_manager_.BeginTransaction();

    ScanStats par_stats;
    const auto q1_par = q::RunQ1Parallel(table, txn, {}, &pool, &par_stats);
    const auto q1_scalar = q::RunQ1Scalar(table, txn, {}, nullptr);
    const auto q1_vec = q::RunQ1(table, txn, {}, nullptr);
    ASSERT_EQ(q1_par.size(), q1_scalar.size()) << num_threads << " threads";
    for (size_t i = 0; i < q1_par.size(); i++) {
      EXPECT_TRUE(q1_par[i] == q1_scalar[i])
          << "parallel Q1 group " << q1_par[i].returnflag << "/" << q1_par[i].linestatus
          << " diverged from the scalar reference at " << num_threads << " threads";
      EXPECT_TRUE(q1_par[i] == q1_vec[i])
          << "parallel Q1 diverged from the sequential vectorized engine at " << num_threads
          << " threads";
    }

    ScanStats q6_stats;
    const double q6_par = q::RunQ6Parallel(table, txn, {}, &pool, &q6_stats);
    const double q6_scalar = q::RunQ6Scalar(table, txn, {}, nullptr);
    const double q6_vec = q::RunQ6(table, txn, {}, nullptr);
    EXPECT_EQ(q6_par, q6_scalar) << num_threads << " threads";
    EXPECT_EQ(q6_par, q6_vec) << num_threads << " threads";

    txn_manager_.Commit(txn);
    par_stats.Add(q6_stats);
    if (stats_out != nullptr) *stats_out = par_stats;
  }

  storage::BlockStore block_store_;
  storage::RecordBufferSegmentPool buffer_pool_;
  catalog::Catalog catalog_;
  transaction::TransactionManager txn_manager_;
  gc::GarbageCollector gc_;
  transform::AccessObserver observer_;
  transform::BlockTransformer transformer_;
  transform::TransformPipeline pipeline_;
};

TEST_P(ParallelExecutionTest, MatchesScalarAcrossFreezeStatesAndThreadCounts) {
  catalog::SqlTable *table = Generate(RowsForBlocks(3));
  storage::DataTable &dt = table->UnderlyingTable();
  ASSERT_GT(dt.NumBlocks(), 3u);

  // 0% frozen: every morsel materializes.
  ScanStats stats;
  for (const uint32_t threads : {1u, 2u, 4u}) {
    ExpectParallelAgrees(table, threads, &stats);
    EXPECT_EQ(stats.frozen_blocks, 0u);
    EXPECT_GT(stats.hot_blocks, 0u);
  }

  // ~50% frozen: morsels mix both access paths.
  {
    const std::vector<storage::RawBlock *> blocks = dt.Blocks();
    for (size_t i = 0; i < blocks.size() / 2; i++) {
      transformer_.ProcessGroup(&dt, {blocks[i]}, nullptr);
    }
  }
  for (const uint32_t threads : {1u, 2u, 4u}) {
    ExpectParallelAgrees(table, threads, &stats);
    EXPECT_GT(stats.frozen_blocks, 0u);
    EXPECT_GT(stats.hot_blocks, 0u);
  }

  // 100% frozen: zero-copy morsels only.
  pipeline_.EnqueueTable(&dt);
  pipeline_.RunOnce();
  for (storage::RawBlock *block : dt.Blocks()) {
    ASSERT_EQ(block->controller.GetState(), BlockState::kFrozen);
  }
  for (const uint32_t threads : {1u, 2u, 4u}) {
    ExpectParallelAgrees(table, threads, &stats);
    EXPECT_GT(stats.frozen_blocks, 0u);
    EXPECT_EQ(stats.hot_blocks, 0u);
  }
  gc_.FullGC();
}

/// The scanner's bookkeeping: every non-empty block ordinal is consumed
/// exactly once, per-worker stats sum to the merged stats, and the morsel
/// cursor covers the whole table no matter how many workers race on it.
TEST_P(ParallelExecutionTest, MorselsCoverEveryBlockExactlyOnce) {
  const uint64_t expect_rows = RowsForBlocks(2);
  catalog::SqlTable *table = Generate(expect_rows);

  auto *txn = txn_manager_.BeginTransaction();
  ParallelTableScanner scanner(
      table, txn,
      {workload::tpch::L_QUANTITY, workload::tpch::L_EXTENDEDPRICE, workload::tpch::L_SHIPDATE});
  EXPECT_EQ(scanner.BatchIndex(workload::tpch::L_SHIPDATE), 2);

  std::vector<std::atomic<uint32_t>> consumed(scanner.NumBlocks());
  std::atomic<uint64_t> rows{0};
  common::WorkerPool pool(4);
  scanner.Scan(&pool, [&](size_t ordinal, ColumnVectorBatch *batch) {
    consumed[ordinal].fetch_add(1);
    EXPECT_GT(batch->NumRows(), 0);
    EXPECT_EQ(batch->Batch()->num_columns(), 3);
    rows.fetch_add(static_cast<uint64_t>(batch->NumRows()));
  });
  txn_manager_.Commit(txn);

  for (const auto &count : consumed) {
    EXPECT_LE(count.load(), 1u) << "a block ordinal was consumed more than once";
  }
  EXPECT_EQ(rows.load(), expect_rows);
  EXPECT_EQ(scanner.Stats().rows, expect_rows);

  // Per-worker stats partition the merged stats.
  ScanStats summed;
  for (const ScanStats &s : scanner.WorkerStats()) summed.Add(s);
  EXPECT_EQ(summed.rows, scanner.Stats().rows);
  EXPECT_EQ(summed.frozen_blocks, scanner.Stats().frozen_blocks);
  EXPECT_EQ(summed.hot_blocks, scanner.Stats().hot_blocks);
  EXPECT_EQ(scanner.WorkerStats().size(), 4u);
  gc_.FullGC();
}

/// A scanner handed no usable pool must degrade to an inline scan rather
/// than fail or hang — including a pool that was already shut down, whose
/// SubmitTask rejects (the WorkerPool bugfix this PR regression-tests in
/// worker_pool_test as well).
TEST_P(ParallelExecutionTest, DegradesToInlineScanWithoutUsableWorkers) {
  catalog::SqlTable *table = Generate(1000);
  auto *txn = txn_manager_.BeginTransaction();

  uint64_t rows = 0;
  const std::vector<uint16_t> projection = {workload::tpch::L_QUANTITY};
  {
    ParallelTableScanner scanner(table, txn, projection);
    scanner.Scan(nullptr, [&](size_t, ColumnVectorBatch *batch) {
      rows += static_cast<uint64_t>(batch->NumRows());
    });
    EXPECT_EQ(rows, 1000u);
  }
  {
    common::WorkerPool pool(2);
    pool.Shutdown();
    ParallelTableScanner scanner(table, txn, projection);
    rows = 0;
    scanner.Scan(&pool, [&](size_t, ColumnVectorBatch *batch) {
      rows += static_cast<uint64_t>(batch->NumRows());
    });
    EXPECT_EQ(rows, 1000u);
  }
  txn_manager_.Commit(txn);
  gc_.FullGC();
}

/// Regression: a shut-down pool reports zero workers, so the scan degrades
/// to the inline path — whose ScanStats must still land in both the merged
/// Stats() and the WorkerStats() view (one slot for the driving thread).
/// Each worker folds its partial at loop exit, so no exit path drops stats.
TEST_P(ParallelExecutionTest, ShutDownPoolLosesNoScanStats) {
  const uint64_t expect_rows = RowsForBlocks(1);
  catalog::SqlTable *table = Generate(expect_rows);
  auto *txn = txn_manager_.BeginTransaction();

  common::WorkerPool pool(2);
  pool.Shutdown();
  ParallelTableScanner scanner(table, txn, {workload::tpch::L_QUANTITY});
  uint64_t rows = 0;
  scanner.Scan(&pool, [&](size_t, ColumnVectorBatch *batch) {
    rows += static_cast<uint64_t>(batch->NumRows());
  });
  txn_manager_.Commit(txn);

  // The merged stats account for every row the callback saw...
  EXPECT_EQ(rows, expect_rows);
  EXPECT_EQ(scanner.Stats().rows, expect_rows);
  EXPECT_EQ(scanner.Stats().frozen_blocks + scanner.Stats().hot_blocks,
            scanner.NumBlocks());
  // ...and the per-worker view still partitions them exactly: the whole
  // scan ran inline, so it collapses to one slot that carries everything.
  ScanStats summed;
  for (const ScanStats &s : scanner.WorkerStats()) summed.Add(s);
  EXPECT_EQ(scanner.WorkerStats().size(), 1u);
  EXPECT_EQ(summed.rows, scanner.Stats().rows);
  EXPECT_EQ(summed.frozen_blocks, scanner.Stats().frozen_blocks);
  EXPECT_EQ(summed.hot_blocks, scanner.Stats().hot_blocks);
  gc_.FullGC();
}

TEST_P(ParallelExecutionTest, QueryRunnerParallelModeAgreesAndResizes) {
  catalog::SqlTable *table = Generate(RowsForBlocks(1));
  pipeline_.EnqueueTable(&table->UnderlyingTable());
  pipeline_.RunOnce();

  QueryRunner runner(&txn_manager_, /*num_threads=*/2);
  EXPECT_EQ(runner.NumThreads(), 2u);
  const auto q1_par = runner.RunQ1(table, {}, ExecMode::kParallel);
  const auto q1_ref = runner.RunQ1(table, {}, ExecMode::kScalar);
  EXPECT_TRUE(q1_par.rows == q1_ref.rows);
  EXPECT_EQ(q1_par.stats.rows, q1_ref.stats.rows);

  runner.SetNumThreads(4);
  EXPECT_EQ(runner.NumThreads(), 4u);
  const auto q6_par = runner.RunQ6(table, {}, ExecMode::kParallel);
  const auto q6_ref = runner.RunQ6(table, {}, ExecMode::kScalar);
  EXPECT_EQ(q6_par.revenue, q6_ref.revenue);

  runner.SetNumThreads(0);  // hardware concurrency, still exact
  const auto q6_hw = runner.RunQ6(table, {}, ExecMode::kParallel);
  EXPECT_EQ(q6_hw.revenue, q6_ref.revenue);
  gc_.FullGC();
}

/// The satellite concurrency scenario, parallel edition: Q6 runs on four
/// scan workers while (a) a writer updates, deletes, and inserts rows —
/// re-heating frozen blocks under the scan — and (b) the transformation
/// pipeline keeps re-freezing whatever cools down. Every iteration compares
/// the parallel engine against the scalar reference inside the SAME
/// transaction: any MVCC violation on any worker shows up as a bit-level
/// divergence.
TEST_P(ParallelExecutionTest, Q6ParallelStaysConsistentUnderConcurrentWritesAndTransform) {
  catalog::SqlTable *table = Generate(RowsForBlocks(1));
  storage::DataTable &dt = table->UnderlyingTable();

  pipeline_.EnqueueTable(&dt);
  pipeline_.RunOnce();

  std::atomic<bool> stop{false};

  // The transform thread owns the GC for the duration (single-consumer).
  std::thread transform_thread([&] {
    while (!stop.load(std::memory_order_acquire)) {
      pipeline_.EnqueueTable(&dt);
      pipeline_.RunOnce();
      gc_.PerformGarbageCollection();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  std::thread writer([&] {
    common::Xorshift rng(123);
    const auto update_init = table->InitializerForColumns({workload::tpch::L_QUANTITY});
    std::vector<byte> update_buf(update_init.ProjectedRowSize() + 8);
    while (!stop.load(std::memory_order_acquire)) {
      auto *txn = txn_manager_.BeginTransaction();
      bool ok = true;
      uint32_t visited = 0;
      for (auto it = table->begin(); !it.Done() && visited < 150 && ok; ++it, ++visited) {
        const uint64_t dice = rng.Uniform(0, 39);
        if (dice == 0) {
          ok = table->Delete(txn, *it);
        } else if (dice < 8) {
          ProjectedRow *delta = update_init.InitializeRow(update_buf.data());
          workload::Set<double>(delta, 0, static_cast<double>(rng.Uniform(1, 50)));
          ok = table->Update(txn, *it, *delta);
        }
      }
      if (ok) {
        txn_manager_.Commit(txn);
      } else {
        txn_manager_.Abort(txn);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  common::WorkerPool pool(4);
  ScanStats aggregate;
  int iterations = 0;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (iterations < 25 ||
         ((aggregate.frozen_blocks == 0 || aggregate.hot_blocks == 0) &&
          std::chrono::steady_clock::now() < deadline)) {
    auto *txn = txn_manager_.BeginTransaction();
    ScanStats stats;
    const double parallel = q::RunQ6Parallel(table, txn, {}, &pool, &stats);
    const double scalar = q::RunQ6Scalar(table, txn, {}, nullptr);
    EXPECT_EQ(parallel, scalar)
        << "parallel Q6 diverged from the scalar reference in the same snapshot "
        << "(iteration " << iterations << ")";
    txn_manager_.Commit(txn);
    aggregate.Add(stats);
    iterations++;
  }
  stop.store(true, std::memory_order_release);
  writer.join();
  transform_thread.join();

  // Both access paths must actually have been exercised across the run.
  EXPECT_GT(aggregate.frozen_blocks, 0u) << "no morsel ever took the zero-copy path";
  EXPECT_GT(aggregate.hot_blocks, 0u) << "no morsel ever took the materialization path";
  gc_.FullGC();
}

INSTANTIATE_TEST_SUITE_P(Modes, ParallelExecutionTest,
                         ::testing::Values(GatherMode::kVarlenGather,
                                           GatherMode::kDictionaryCompression),
                         [](const auto &info) {
                           return info.param == GatherMode::kVarlenGather ? "Gather"
                                                                          : "Dictionary";
                         });

}  // namespace mainline
