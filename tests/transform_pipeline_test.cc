#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "catalog/catalog.h"
#include "gc/garbage_collector.h"
#include "transform/access_observer.h"
#include "transform/arrow_reader.h"
#include "transform/block_transformer.h"
#include "transform/freeze_policy.h"
#include "transform/transform_pipeline.h"
#include "workload/row_util.h"

namespace mainline {

using storage::BlockState;
using storage::ProjectedRow;
using storage::TupleSlot;
using transform::BlockTransformer;
using transform::GatherMode;

/// End-to-end coverage of the paper's core loop: transactional inserts into a
/// DataTable, cold detection through the GC-fed AccessObserver, background
/// transformation via TransformPipeline, and zero-copy Arrow reads of the
/// frozen result through ArrowReader.
class TransformPipelineTest : public ::testing::TestWithParam<GatherMode> {
 protected:
  TransformPipelineTest()
      : block_store_(1000, 100),
        buffer_pool_(10000000, 1000),
        catalog_(&block_store_),
        schema_({{"id", catalog::TypeId::kBigInt},
                 {"name", catalog::TypeId::kVarchar, true},
                 {"score", catalog::TypeId::kInteger}}),
        txn_manager_(&buffer_pool_, true, nullptr),
        gc_(&txn_manager_),
        observer_(kColdThreshold),
        transformer_(&txn_manager_, &gc_, GetParam()),
        pipeline_(&observer_, &transformer_, /*group_size=*/4) {
    gc_.SetAccessObserver(&observer_);
    table_ = catalog_.GetTable(catalog_.CreateTable("t", schema_));
  }

  // Detach the observer before members destruct (in reverse order, the
  // observer dies before the GC — whose own destructor still runs a final
  // collection pass that would feed it).
  ~TransformPipelineTest() { gc_.SetAccessObserver(nullptr); }

  static constexpr uint64_t kColdThreshold = 2;

  /// The deterministic row contents for id `i`; `name` is null for
  /// i % 7 == 0 and out-of-line (longer than the inline limit) otherwise.
  static std::string NameFor(int64_t i) {
    return "row-with-an-out-of-line-name-" + std::to_string(i);
  }

  /// Enough rows to span a little over `blocks` full blocks.
  int64_t RowsForBlocks(int64_t blocks) const {
    const auto slots = static_cast<int64_t>(
        table_->UnderlyingTable().GetLayout().NumSlots());
    return blocks * slots + slots / 2;
  }

  std::vector<TupleSlot> Populate(int64_t n) {
    auto initializer = table_->FullInitializer();
    std::vector<byte> buffer(initializer.ProjectedRowSize() + 8);
    std::vector<TupleSlot> slots;
    auto *txn = txn_manager_.BeginTransaction();
    for (int64_t i = 0; i < n; i++) {
      ProjectedRow *row = initializer.InitializeRow(buffer.data());
      workload::Set<int64_t>(row, 0, i);
      if (i % 7 == 0) {
        row->SetNull(1);
      } else {
        workload::SetVarchar(row, 1, NameFor(i));
      }
      workload::Set<int32_t>(row, 2, static_cast<int32_t>(i * 3));
      slots.push_back(table_->Insert(txn, *row));
    }
    txn_manager_.Commit(txn);
    return slots;
  }

  /// Advance enough GC epochs for every previously written block to be
  /// emitted as a cold candidate on the next observer poll.
  void AdvancePastColdThreshold() {
    for (uint64_t i = 0; i <= kColdThreshold + 1; i++) gc_.PerformGarbageCollection();
  }

  // Destruction order (reverse of declaration): pipeline and GC first, then
  // the transaction manager, then tables.
  storage::BlockStore block_store_;
  storage::RecordBufferSegmentPool buffer_pool_;
  catalog::Catalog catalog_;
  catalog::Schema schema_;
  transaction::TransactionManager txn_manager_;
  gc::GarbageCollector gc_;
  transform::AccessObserver observer_;
  BlockTransformer transformer_;
  transform::TransformPipeline pipeline_;
  catalog::SqlTable *table_;
};

TEST_P(TransformPipelineTest, ColdBlocksFreezeAndReadBackThroughArrow) {
  const int64_t kRows = RowsForBlocks(2);  // spans multiple blocks
  Populate(kRows);
  storage::DataTable &dt = table_->UnderlyingTable();
  ASSERT_GT(dt.Blocks().size(), 1u);

  // Nothing is cold yet: the pipeline must not touch freshly written blocks.
  gc_.PerformGarbageCollection();
  EXPECT_EQ(pipeline_.RunOnce(), 0u);
  for (storage::RawBlock *block : dt.Blocks()) {
    EXPECT_NE(block->controller.GetState(), BlockState::kFrozen);
  }

  // After the cold threshold passes, one pipeline pass freezes every block.
  AdvancePastColdThreshold();
  const uint32_t frozen = pipeline_.RunOnce();
  EXPECT_GT(frozen, 0u);
  std::vector<storage::RawBlock *> blocks = dt.Blocks();
  for (storage::RawBlock *block : blocks) {
    EXPECT_EQ(block->controller.GetState(), BlockState::kFrozen);
  }
  EXPECT_EQ(pipeline_.Stats().blocks_frozen, frozen);

  // Read every frozen block back through the zero-copy Arrow path and check
  // the contents against what was inserted. Compaction may have moved tuples
  // between blocks, so verify the multiset of ids instead of positions.
  std::vector<bool> seen(kRows, false);
  int64_t total_rows = 0;
  for (storage::RawBlock *block : blocks) {
    ASSERT_TRUE(block->controller.TryAcquireRead());
    auto batch = transform::ArrowReader::FromFrozenBlock(schema_, dt, block);
    ASSERT_NE(batch, nullptr);
    ASSERT_EQ(batch->num_columns(), 3);

    // The zero-copy view agrees with a transactional materialization.
    auto *txn = txn_manager_.BeginTransaction();
    auto materialized = transform::ArrowReader::MaterializeBlock(schema_, &dt, block, txn);
    txn_manager_.Commit(txn);
    EXPECT_TRUE(batch->Equals(*materialized));

    const auto &ids = batch->column(0);
    const auto &names = batch->column(1);
    const auto &scores = batch->column(2);
    if (GetParam() == GatherMode::kDictionaryCompression) {
      EXPECT_EQ(names->type(), arrowlite::Type::kDictionary);
    }
    for (int64_t i = 0; i < batch->num_rows(); i++) {
      const int64_t id = ids->Value<int64_t>(i);
      ASSERT_GE(id, 0);
      ASSERT_LT(id, kRows);
      EXPECT_FALSE(seen[static_cast<size_t>(id)]) << "duplicate id " << id;
      seen[static_cast<size_t>(id)] = true;
      EXPECT_EQ(scores->Value<int32_t>(i), static_cast<int32_t>(id * 3));
      if (id % 7 == 0) {
        EXPECT_TRUE(names->IsNull(i)) << "id " << id << " must have a null name";
      } else {
        ASSERT_FALSE(names->IsNull(i));
        EXPECT_EQ(std::string(names->GetString(i)), NameFor(id));
      }
    }
    total_rows += batch->num_rows();
    block->controller.ReleaseRead();
  }
  EXPECT_EQ(total_rows, kRows);
  gc_.FullGC();
}

TEST_P(TransformPipelineTest, CompactionReclaimsDeletedSpaceBeforeFreezing) {
  const int64_t kRows = RowsForBlocks(2);
  const std::vector<TupleSlot> slots = Populate(kRows);
  storage::DataTable &dt = table_->UnderlyingTable();
  const size_t blocks_before = dt.Blocks().size();
  ASSERT_GT(blocks_before, 1u);

  // Delete two thirds so the survivors fit in fewer blocks.
  auto *txn = txn_manager_.BeginTransaction();
  for (size_t i = 0; i < slots.size(); i++) {
    if (i % 3 != 0) {
      ASSERT_TRUE(table_->Delete(txn, slots[i]));
    }
  }
  txn_manager_.Commit(txn);

  AdvancePastColdThreshold();
  EXPECT_GT(pipeline_.RunOnce(), 0u);
  EXPECT_GT(pipeline_.Stats().tuples_moved, 0u);

  // Survivors are all present exactly once in the frozen view.
  std::vector<bool> seen(kRows, false);
  int64_t total_rows = 0;
  for (storage::RawBlock *block : dt.Blocks()) {
    if (block->controller.GetState() != BlockState::kFrozen) continue;
    ASSERT_TRUE(block->controller.TryAcquireRead());
    auto batch = transform::ArrowReader::FromFrozenBlock(schema_, dt, block);
    ASSERT_NE(batch, nullptr);
    for (int64_t i = 0; i < batch->num_rows(); i++) {
      const int64_t id = batch->column(0)->Value<int64_t>(i);
      EXPECT_EQ(id % 3, 0) << "deleted tuples must not reappear";
      EXPECT_FALSE(seen[static_cast<size_t>(id)]);
      seen[static_cast<size_t>(id)] = true;
    }
    total_rows += batch->num_rows();
    block->controller.ReleaseRead();
  }
  EXPECT_EQ(total_rows, (kRows + 2) / 3);
  gc_.FullGC();
}

TEST_P(TransformPipelineTest, ManualEnqueueFreezesBulkLoadedTable) {
  Populate(1000);
  storage::DataTable &dt = table_->UnderlyingTable();
  gc_.FullGC();

  // A bulk-loaded table whose writes predate the observer never shows up as
  // a cold candidate; EnqueueTable force-feeds its blocks to the pipeline.
  pipeline_.EnqueueTable(&dt);
  EXPECT_GT(pipeline_.RunOnce(), 0u);
  for (storage::RawBlock *block : dt.Blocks()) {
    EXPECT_EQ(block->controller.GetState(), BlockState::kFrozen);
  }

  // An update re-heats its block; the pipeline eventually refreezes it once
  // it cools past the threshold again.
  auto initializer = table_->InitializerForColumns({2});
  std::vector<byte> buffer(initializer.ProjectedRowSize() + 8);
  auto *txn = txn_manager_.BeginTransaction();
  ProjectedRow *delta = initializer.InitializeRow(buffer.data());
  workload::Set<int32_t>(delta, 0, -1);
  storage::RawBlock *target = dt.Blocks().front();
  ASSERT_TRUE(table_->Update(txn, TupleSlot(target, 3), *delta));
  txn_manager_.Commit(txn);
  EXPECT_EQ(target->controller.GetState(), BlockState::kHot);

  AdvancePastColdThreshold();
  EXPECT_EQ(pipeline_.RunOnce(), 1u);
  EXPECT_EQ(target->controller.GetState(), BlockState::kFrozen);

  ASSERT_TRUE(target->controller.TryAcquireRead());
  auto batch = transform::ArrowReader::FromFrozenBlock(schema_, dt, target);
  ASSERT_NE(batch, nullptr);
  bool found_updated = false;
  for (int64_t i = 0; i < batch->num_rows(); i++) {
    if (batch->column(2)->Value<int32_t>(i) == -1) found_updated = true;
  }
  EXPECT_TRUE(found_updated) << "the updated value must survive refreezing";
  target->controller.ReleaseRead();
  gc_.FullGC();
}

TEST_P(TransformPipelineTest, UserDeletedBlocksAreReclaimed) {
  const int64_t kRows = RowsForBlocks(2);
  const std::vector<TupleSlot> slots = Populate(kRows);
  storage::DataTable &dt = table_->UnderlyingTable();
  const size_t blocks_before = dt.NumBlocks();
  ASSERT_GT(blocks_before, 2u);

  // User transactions (not the compactor) empty every block.
  auto *txn = txn_manager_.BeginTransaction();
  for (const TupleSlot slot : slots) ASSERT_TRUE(table_->Delete(txn, slot));
  txn_manager_.Commit(txn);

  AdvancePastColdThreshold();
  pipeline_.RunOnce();
  gc_.FullGC();  // drains the deferred releases

  // Everything except the insertion block must go back to the block store.
  EXPECT_EQ(dt.NumBlocks(), 1u);
  EXPECT_EQ(dt.FilledSlots(dt.Blocks().front()), 0u);
}

TEST_P(TransformPipelineTest, BackgroundThreadFreezesWithoutManualDriving) {
  Populate(1000);
  storage::DataTable &dt = table_->UnderlyingTable();
  gc_.FullGC();

  pipeline_.Start(std::chrono::milliseconds(1));
  pipeline_.EnqueueTable(&dt);
  // The worker owns all transformation work now; just wait for it.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    if (dt.Blocks().front()->controller.GetState() == BlockState::kFrozen) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  pipeline_.Stop();
  EXPECT_EQ(dt.Blocks().front()->controller.GetState(), BlockState::kFrozen);
  gc_.FullGC();
}

/// Regression test for the CompactGroup varlen-leak race (the ~1/30 ASan
/// flake of tpcc_demo): the compaction planner counts never-used slots past
/// the insert head as fillable gaps, so CompactGroup's InsertInto can target
/// the very slot a concurrent user Insert claims with Allocate. Before the
/// fix, Insert published its undo record with a blind store that could erase
/// compaction's already-installed record — both transactions then wrote the
/// slot and committed without seeing a conflict, losing one row and leaking
/// whichever row's out-of-line varlen buffers lost the WriteValues race (the
/// compactor's DeepCopyVarlens copies, in the observed flake).
///
/// The interleaving is sub-microsecond, so the test makes it as likely as
/// possible instead of scripting it: each iteration builds a table whose
/// compaction plan moves kContested tuples into the insertion block's
/// never-used region, then races CompactGroup against two inserter threads
/// aimed at the same slots. The row-count and content assertions catch the
/// lost/corrupted rows directly; under ASan the leak itself fails the suite.
/// Iterations are overridable via MAINLINE_RACE_ITERS (default 24 — the
/// sanitizer job's budget; bump it when hunting).
TEST_P(TransformPipelineTest, CompactionNeverRacesUserInsertsOnNeverUsedSlots) {
  // Wide rows keep blocks small enough to roll over cheaply (~1000 slots).
  std::vector<catalog::Column> columns = {{"id", catalog::TypeId::kBigInt},
                                          {"payload", catalog::TypeId::kVarchar}};
  for (int i = 0; i < 120; i++) {
    columns.emplace_back("fill" + std::to_string(i), catalog::TypeId::kBigInt);
  }
  const catalog::Schema schema{columns};

  // 24-byte payloads: out of line (> the 12-byte inline limit), so every row
  // carries an owned buffer — the allocation the original flake leaked.
  const auto payload_for = [](int64_t id) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "payload-%016lld",
                  static_cast<long long>(id));
    return std::string(buffer);
  };
  const auto insert_row = [&](catalog::SqlTable *table,
                              transaction::TransactionContext *txn,
                              const storage::ProjectedRowInitializer &init,
                              std::vector<byte> *buffer, int64_t id) {
    ProjectedRow *row = init.InitializeRow(buffer->data());
    workload::Set<int64_t>(row, 0, id);
    workload::SetVarchar(row, 1, payload_for(id));
    for (uint16_t c = 2; c < schema.NumColumns(); c++) {
      workload::Set<int64_t>(row, c, id);
    }
    table->Insert(txn, *row);
  };

  const char *iters_env = std::getenv("MAINLINE_RACE_ITERS");
  const int iterations = iters_env == nullptr ? 24 : std::atoi(iters_env);
  constexpr uint32_t kContested = 64;   // moves aimed at never-used slots
  constexpr uint32_t kResidents = 80;   // pre-existing rows in the insertion block
  constexpr uint32_t kInserters = 2;

  for (int iter = 0; iter < iterations; iter++) {
    catalog::SqlTable *table =
        catalog_.GetTable(catalog_.CreateTable("race" + std::to_string(iter), schema));
    storage::DataTable &dt = table->UnderlyingTable();
    const auto slots_per_block = static_cast<int64_t>(dt.GetLayout().NumSlots());
    const auto init = table->FullInitializer();
    std::vector<byte> buffer(init.ProjectedRowSize() + 8);

    // Roll block 1 over completely, then seed the new insertion block with
    // kResidents rows so the planner picks it as the partial target block.
    auto *txn = txn_manager_.BeginTransaction();
    for (int64_t i = 0; i < slots_per_block + kResidents; i++) {
      insert_row(table, txn, init, &buffer, i);
    }
    txn_manager_.Commit(txn);
    ASSERT_EQ(dt.NumBlocks(), 2u);

    // Thin block 1 down to kContested survivors: the plan now moves exactly
    // those tuples into the insertion block's gaps — which, because the
    // insertion block holds more tuples than any other block in the group,
    // are its NEVER-USED slots [kResidents, kResidents + kContested).
    std::vector<int64_t> expected_ids;
    txn = txn_manager_.BeginTransaction();
    storage::RawBlock *block1 = dt.Blocks().front();
    for (int64_t i = 0; i < slots_per_block; i++) {
      if (i < kContested) {
        expected_ids.push_back(i);
        continue;
      }
      ASSERT_TRUE(table->Delete(txn, TupleSlot(block1, static_cast<uint32_t>(i))));
    }
    txn_manager_.Commit(txn);
    for (int64_t i = slots_per_block; i < slots_per_block + kResidents; i++) {
      expected_ids.push_back(i);
    }
    gc_.FullGC();

    // Race: CompactGroup moves the survivors while inserter threads claim
    // slots from the same never-used region via Allocate.
    std::atomic<bool> start{false};
    std::vector<std::thread> inserters;
    for (uint32_t t = 0; t < kInserters; t++) {
      inserters.emplace_back([&, t] {
        std::vector<byte> local_buffer(init.ProjectedRowSize() + 8);
        while (!start.load(std::memory_order_acquire)) {
        }
        auto *insert_txn = txn_manager_.BeginTransaction();
        for (uint32_t i = 0; i < kContested / kInserters; i++) {
          insert_row(table, insert_txn, init, &local_buffer,
                     1000000 + iter * 1000 + static_cast<int64_t>(t * 100 + i));
        }
        txn_manager_.Commit(insert_txn);
      });
    }
    for (uint32_t t = 0; t < kInserters; t++) {
      for (uint32_t i = 0; i < kContested / kInserters; i++) {
        expected_ids.push_back(1000000 + iter * 1000 + static_cast<int64_t>(t * 100 + i));
      }
    }
    start.store(true, std::memory_order_release);
    // An abort (a user insert won a contested slot first) is a legal outcome;
    // losing or corrupting a committed row is not.
    transformer_.CompactGroup(&dt, dt.Blocks(), nullptr, nullptr);
    for (std::thread &thread : inserters) thread.join();

    // Every expected row must be visible exactly once, with intact contents.
    const auto read_init = table->InitializerForColumns({0, 1});
    std::vector<byte> read_buffer(read_init.ProjectedRowSize() + 8);
    std::vector<int64_t> visible_ids;
    auto *read_txn = txn_manager_.BeginTransaction();
    for (auto it = table->begin(); !it.Done(); ++it) {
      ProjectedRow *row = read_init.InitializeRow(read_buffer.data());
      if (!table->Select(read_txn, *it, row)) continue;
      const int64_t id = workload::Get<int64_t>(*row, 0);
      EXPECT_EQ(workload::GetVarchar(*row, 1), payload_for(id))
          << "row " << id << " corrupted in iteration " << iter;
      visible_ids.push_back(id);
    }
    txn_manager_.Commit(read_txn);

    std::sort(visible_ids.begin(), visible_ids.end());
    std::sort(expected_ids.begin(), expected_ids.end());
    ASSERT_EQ(visible_ids, expected_ids)
        << "a compaction/insert race lost or duplicated rows in iteration " << iter;
    gc_.FullGC();
  }
}

/// Stop() must return promptly even when the worker is parked in a long
/// sleep: the condition-variable wakeup cuts through the period. Regression
/// test for the old fixed-sleep loop, where Stop() blocked for up to a full
/// period (here: 10 seconds).
TEST_P(TransformPipelineTest, StopReturnsPromptlyMidSleep) {
  pipeline_.Start(std::chrono::seconds(10));
  // Let the worker finish its first (empty) pass and park in the sleep.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  const auto stop_begin = std::chrono::steady_clock::now();
  pipeline_.Stop();
  const auto stop_took = std::chrono::steady_clock::now() - stop_begin;
  EXPECT_LT(stop_took, std::chrono::seconds(2))
      << "Stop() must interrupt the sleep, not wait out the period";
}

/// The adaptive Start overload drives freezing end to end and leaves the
/// controller's period inside its configured band.
TEST_P(TransformPipelineTest, AdaptiveStartFreezesInBackground) {
  Populate(1000);
  storage::DataTable &dt = table_->UnderlyingTable();
  gc_.FullGC();

  transform::FreezePolicy::Config policy;
  policy.min_period = std::chrono::milliseconds(1);
  policy.max_period = std::chrono::milliseconds(20);
  policy.initial_period = std::chrono::milliseconds(1);
  pipeline_.Start(policy);
  pipeline_.EnqueueTable(&dt);
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    if (dt.Blocks().front()->controller.GetState() == BlockState::kFrozen) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  pipeline_.Stop();
  EXPECT_EQ(dt.Blocks().front()->controller.GetState(), BlockState::kFrozen);
  EXPECT_GE(pipeline_.CurrentPeriod(), policy.min_period);
  EXPECT_LE(pipeline_.CurrentPeriod(), policy.max_period);
  gc_.FullGC();
}

/// Deterministic FreezePolicy unit coverage: the controller is pure
/// state-in/state-out, so synthetic feedback sequences pin its behavior
/// exactly — no threads, no clocks.
TEST(FreezePolicyTest, ConvergesToMinUnderSustainedBacklog) {
  transform::FreezePolicy::Config config;
  config.min_period = std::chrono::milliseconds(1);
  config.max_period = std::chrono::milliseconds(200);
  config.initial_period = std::chrono::milliseconds(100);
  config.target_queue_depth = 16;
  transform::FreezePolicy policy(config);
  EXPECT_EQ(policy.CurrentPeriod(), config.initial_period);

  // Ten passes of 10x-over-target backlog (cheap passes, so the duty-cycle
  // floor stays at zero): each pass cuts the period by max_shrink, so the
  // period must hit and hold the minimum.
  std::chrono::milliseconds last{0};
  for (int i = 0; i < 10; i++) {
    last = policy.OnPassComplete({/*queue_depth=*/160, /*pass_us=*/0, /*blocks_frozen=*/4});
  }
  EXPECT_EQ(last, config.min_period);
  EXPECT_EQ(policy.CurrentPeriod(), config.min_period);
}

TEST(FreezePolicyTest, BacksOffToMaxWhenIdle) {
  transform::FreezePolicy::Config config;
  config.initial_period = std::chrono::milliseconds(10);
  config.max_period = std::chrono::milliseconds(200);
  config.backoff = 2.0;
  transform::FreezePolicy policy(config);

  // 10 -> 20 -> 40 -> 80 -> 160 -> clamp(200): idle passes grow the period
  // multiplicatively and the cap holds from then on.
  const int64_t expected[] = {20, 40, 80, 160, 200, 200};
  for (const int64_t period : expected) {
    EXPECT_EQ(policy.OnPassComplete({0, 0, 0}).count(), period);
  }
}

TEST(FreezePolicyTest, HoldsInsideTheBand) {
  transform::FreezePolicy::Config config;
  config.initial_period = std::chrono::milliseconds(50);
  config.target_queue_depth = 16;
  transform::FreezePolicy policy(config);

  // Neither backlogged (depth <= target) nor idle (work happened): hold.
  for (int i = 0; i < 5; i++) {
    EXPECT_EQ(policy.OnPassComplete({/*queue_depth=*/8, /*pass_us=*/1000,
                                     /*blocks_frozen=*/2})
                  .count(),
              50);
  }
  // A non-empty watch set with nothing frozen is "waiting", not "idle":
  // the period must hold rather than back off while blocks cool.
  EXPECT_EQ(policy.OnPassComplete({/*queue_depth=*/8, /*pass_us=*/1000,
                                   /*blocks_frozen=*/0})
                .count(),
            50);
}

TEST(FreezePolicyTest, ShrinkIsProportionalAndBounded) {
  transform::FreezePolicy::Config config;
  config.initial_period = std::chrono::milliseconds(100);
  config.target_queue_depth = 16;
  config.max_shrink = 0.25;
  transform::FreezePolicy policy(config);

  // Twice the target halves the period: 100 -> 50.
  EXPECT_EQ(policy.OnPassComplete({32, 0, 1}).count(), 50);
  // A huge backlog is still bounded by max_shrink: 50 -> 12.5 (not 50/1000).
  EXPECT_EQ(policy.OnPassComplete({16000, 0, 1}).count(), 13);  // lround(12.5)
}

TEST(FreezePolicyTest, DutyCycleFloorProtectsWriters) {
  transform::FreezePolicy::Config config;
  config.initial_period = std::chrono::milliseconds(10);
  config.max_period = std::chrono::milliseconds(500);
  config.target_queue_depth = 16;
  config.max_duty_cycle = 0.5;
  transform::FreezePolicy policy(config);

  // Backlog wants to shrink the period, but a 100 ms pass at 50% duty cycle
  // demands at least 100 ms of sleep — the floor wins.
  EXPECT_EQ(policy.OnPassComplete({160, 100000, 8}).count(), 100);
  // A cheap pass lifts the floor and the proportional controller resumes.
  EXPECT_EQ(policy.OnPassComplete({32, 1000, 8}).count(), 50);
}

TEST(FreezePolicyTest, AllZeroFeedbackAndBrokenConfigStayFinite) {
  // A config with every knob out of range repairs to usable defaults...
  transform::FreezePolicy::Config broken;
  broken.min_period = std::chrono::milliseconds(-5);
  broken.max_period = std::chrono::milliseconds(-10);
  broken.initial_period = std::chrono::milliseconds(-1);
  broken.backoff = 0.5;
  broken.max_duty_cycle = 0.0;  // would divide by zero in the floor
  broken.max_shrink = 2.0;
  transform::FreezePolicy policy(broken);
  const transform::FreezePolicy::Config &repaired = policy.GetConfig();
  EXPECT_GE(repaired.min_period.count(), 1);
  EXPECT_GE(repaired.max_period, repaired.min_period);
  EXPECT_GT(repaired.backoff, 1.0);
  EXPECT_GT(repaired.max_duty_cycle, 0.0);
  EXPECT_LE(repaired.max_duty_cycle, 1.0);
  EXPECT_GT(repaired.max_shrink, 0.0);
  EXPECT_LT(repaired.max_shrink, 1.0);

  // ...and the empty pass (all zeros: no queue, no time, no work) never
  // divides by zero; a long all-zero sequence stays inside the band.
  for (int i = 0; i < 100; i++) {
    const auto period = policy.OnPassComplete({0, 0, 0});
    EXPECT_GE(period, repaired.min_period);
    EXPECT_LE(period, repaired.max_period);
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, TransformPipelineTest,
                         ::testing::Values(GatherMode::kVarlenGather,
                                           GatherMode::kDictionaryCompression),
                         [](const auto &info) {
                           return info.param == GatherMode::kVarlenGather ? "Gather"
                                                                          : "Dictionary";
                         });

}  // namespace mainline
