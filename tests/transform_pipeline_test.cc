#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "catalog/catalog.h"
#include "gc/garbage_collector.h"
#include "transform/access_observer.h"
#include "transform/arrow_reader.h"
#include "transform/block_transformer.h"
#include "transform/transform_pipeline.h"
#include "workload/row_util.h"

namespace mainline {

using storage::BlockState;
using storage::ProjectedRow;
using storage::TupleSlot;
using transform::BlockTransformer;
using transform::GatherMode;

/// End-to-end coverage of the paper's core loop: transactional inserts into a
/// DataTable, cold detection through the GC-fed AccessObserver, background
/// transformation via TransformPipeline, and zero-copy Arrow reads of the
/// frozen result through ArrowReader.
class TransformPipelineTest : public ::testing::TestWithParam<GatherMode> {
 protected:
  TransformPipelineTest()
      : block_store_(1000, 100),
        buffer_pool_(10000000, 1000),
        catalog_(&block_store_),
        schema_({{"id", catalog::TypeId::kBigInt},
                 {"name", catalog::TypeId::kVarchar, true},
                 {"score", catalog::TypeId::kInteger}}),
        txn_manager_(&buffer_pool_, true, nullptr),
        gc_(&txn_manager_),
        observer_(kColdThreshold),
        transformer_(&txn_manager_, &gc_, GetParam()),
        pipeline_(&observer_, &transformer_, /*group_size=*/4) {
    gc_.SetAccessObserver(&observer_);
    table_ = catalog_.GetTable(catalog_.CreateTable("t", schema_));
  }

  static constexpr uint64_t kColdThreshold = 2;

  /// The deterministic row contents for id `i`; `name` is null for
  /// i % 7 == 0 and out-of-line (longer than the inline limit) otherwise.
  static std::string NameFor(int64_t i) {
    return "row-with-an-out-of-line-name-" + std::to_string(i);
  }

  /// Enough rows to span a little over `blocks` full blocks.
  int64_t RowsForBlocks(int64_t blocks) const {
    const auto slots = static_cast<int64_t>(
        table_->UnderlyingTable().GetLayout().NumSlots());
    return blocks * slots + slots / 2;
  }

  std::vector<TupleSlot> Populate(int64_t n) {
    auto initializer = table_->FullInitializer();
    std::vector<byte> buffer(initializer.ProjectedRowSize() + 8);
    std::vector<TupleSlot> slots;
    auto *txn = txn_manager_.BeginTransaction();
    for (int64_t i = 0; i < n; i++) {
      ProjectedRow *row = initializer.InitializeRow(buffer.data());
      workload::Set<int64_t>(row, 0, i);
      if (i % 7 == 0) {
        row->SetNull(1);
      } else {
        workload::SetVarchar(row, 1, NameFor(i));
      }
      workload::Set<int32_t>(row, 2, static_cast<int32_t>(i * 3));
      slots.push_back(table_->Insert(txn, *row));
    }
    txn_manager_.Commit(txn);
    return slots;
  }

  /// Advance enough GC epochs for every previously written block to be
  /// emitted as a cold candidate on the next observer poll.
  void AdvancePastColdThreshold() {
    for (uint64_t i = 0; i <= kColdThreshold + 1; i++) gc_.PerformGarbageCollection();
  }

  // Destruction order (reverse of declaration): pipeline and GC first, then
  // the transaction manager, then tables.
  storage::BlockStore block_store_;
  storage::RecordBufferSegmentPool buffer_pool_;
  catalog::Catalog catalog_;
  catalog::Schema schema_;
  transaction::TransactionManager txn_manager_;
  gc::GarbageCollector gc_;
  transform::AccessObserver observer_;
  BlockTransformer transformer_;
  transform::TransformPipeline pipeline_;
  storage::SqlTable *table_;
};

TEST_P(TransformPipelineTest, ColdBlocksFreezeAndReadBackThroughArrow) {
  const int64_t kRows = RowsForBlocks(2);  // spans multiple blocks
  Populate(kRows);
  storage::DataTable &dt = table_->UnderlyingTable();
  ASSERT_GT(dt.Blocks().size(), 1u);

  // Nothing is cold yet: the pipeline must not touch freshly written blocks.
  gc_.PerformGarbageCollection();
  EXPECT_EQ(pipeline_.RunOnce(), 0u);
  for (storage::RawBlock *block : dt.Blocks()) {
    EXPECT_NE(block->controller.GetState(), BlockState::kFrozen);
  }

  // After the cold threshold passes, one pipeline pass freezes every block.
  AdvancePastColdThreshold();
  const uint32_t frozen = pipeline_.RunOnce();
  EXPECT_GT(frozen, 0u);
  std::vector<storage::RawBlock *> blocks = dt.Blocks();
  for (storage::RawBlock *block : blocks) {
    EXPECT_EQ(block->controller.GetState(), BlockState::kFrozen);
  }
  EXPECT_EQ(pipeline_.Stats().blocks_frozen, frozen);

  // Read every frozen block back through the zero-copy Arrow path and check
  // the contents against what was inserted. Compaction may have moved tuples
  // between blocks, so verify the multiset of ids instead of positions.
  std::vector<bool> seen(kRows, false);
  int64_t total_rows = 0;
  for (storage::RawBlock *block : blocks) {
    ASSERT_TRUE(block->controller.TryAcquireRead());
    auto batch = transform::ArrowReader::FromFrozenBlock(schema_, dt, block);
    ASSERT_NE(batch, nullptr);
    ASSERT_EQ(batch->num_columns(), 3);

    // The zero-copy view agrees with a transactional materialization.
    auto *txn = txn_manager_.BeginTransaction();
    auto materialized = transform::ArrowReader::MaterializeBlock(schema_, &dt, block, txn);
    txn_manager_.Commit(txn);
    EXPECT_TRUE(batch->Equals(*materialized));

    const auto &ids = batch->column(0);
    const auto &names = batch->column(1);
    const auto &scores = batch->column(2);
    if (GetParam() == GatherMode::kDictionaryCompression) {
      EXPECT_EQ(names->type(), arrowlite::Type::kDictionary);
    }
    for (int64_t i = 0; i < batch->num_rows(); i++) {
      const int64_t id = ids->Value<int64_t>(i);
      ASSERT_GE(id, 0);
      ASSERT_LT(id, kRows);
      EXPECT_FALSE(seen[static_cast<size_t>(id)]) << "duplicate id " << id;
      seen[static_cast<size_t>(id)] = true;
      EXPECT_EQ(scores->Value<int32_t>(i), static_cast<int32_t>(id * 3));
      if (id % 7 == 0) {
        EXPECT_TRUE(names->IsNull(i)) << "id " << id << " must have a null name";
      } else {
        ASSERT_FALSE(names->IsNull(i));
        EXPECT_EQ(std::string(names->GetString(i)), NameFor(id));
      }
    }
    total_rows += batch->num_rows();
    block->controller.ReleaseRead();
  }
  EXPECT_EQ(total_rows, kRows);
  gc_.FullGC();
}

TEST_P(TransformPipelineTest, CompactionReclaimsDeletedSpaceBeforeFreezing) {
  const int64_t kRows = RowsForBlocks(2);
  const std::vector<TupleSlot> slots = Populate(kRows);
  storage::DataTable &dt = table_->UnderlyingTable();
  const size_t blocks_before = dt.Blocks().size();
  ASSERT_GT(blocks_before, 1u);

  // Delete two thirds so the survivors fit in fewer blocks.
  auto *txn = txn_manager_.BeginTransaction();
  for (size_t i = 0; i < slots.size(); i++) {
    if (i % 3 != 0) {
      ASSERT_TRUE(table_->Delete(txn, slots[i]));
    }
  }
  txn_manager_.Commit(txn);

  AdvancePastColdThreshold();
  EXPECT_GT(pipeline_.RunOnce(), 0u);
  EXPECT_GT(pipeline_.Stats().tuples_moved, 0u);

  // Survivors are all present exactly once in the frozen view.
  std::vector<bool> seen(kRows, false);
  int64_t total_rows = 0;
  for (storage::RawBlock *block : dt.Blocks()) {
    if (block->controller.GetState() != BlockState::kFrozen) continue;
    ASSERT_TRUE(block->controller.TryAcquireRead());
    auto batch = transform::ArrowReader::FromFrozenBlock(schema_, dt, block);
    ASSERT_NE(batch, nullptr);
    for (int64_t i = 0; i < batch->num_rows(); i++) {
      const int64_t id = batch->column(0)->Value<int64_t>(i);
      EXPECT_EQ(id % 3, 0) << "deleted tuples must not reappear";
      EXPECT_FALSE(seen[static_cast<size_t>(id)]);
      seen[static_cast<size_t>(id)] = true;
    }
    total_rows += batch->num_rows();
    block->controller.ReleaseRead();
  }
  EXPECT_EQ(total_rows, (kRows + 2) / 3);
  gc_.FullGC();
}

TEST_P(TransformPipelineTest, ManualEnqueueFreezesBulkLoadedTable) {
  Populate(1000);
  storage::DataTable &dt = table_->UnderlyingTable();
  gc_.FullGC();

  // A bulk-loaded table whose writes predate the observer never shows up as
  // a cold candidate; EnqueueTable force-feeds its blocks to the pipeline.
  pipeline_.EnqueueTable(&dt);
  EXPECT_GT(pipeline_.RunOnce(), 0u);
  for (storage::RawBlock *block : dt.Blocks()) {
    EXPECT_EQ(block->controller.GetState(), BlockState::kFrozen);
  }

  // An update re-heats its block; the pipeline eventually refreezes it once
  // it cools past the threshold again.
  auto initializer = table_->InitializerForColumns({2});
  std::vector<byte> buffer(initializer.ProjectedRowSize() + 8);
  auto *txn = txn_manager_.BeginTransaction();
  ProjectedRow *delta = initializer.InitializeRow(buffer.data());
  workload::Set<int32_t>(delta, 0, -1);
  storage::RawBlock *target = dt.Blocks().front();
  ASSERT_TRUE(table_->Update(txn, TupleSlot(target, 3), *delta));
  txn_manager_.Commit(txn);
  EXPECT_EQ(target->controller.GetState(), BlockState::kHot);

  AdvancePastColdThreshold();
  EXPECT_EQ(pipeline_.RunOnce(), 1u);
  EXPECT_EQ(target->controller.GetState(), BlockState::kFrozen);

  ASSERT_TRUE(target->controller.TryAcquireRead());
  auto batch = transform::ArrowReader::FromFrozenBlock(schema_, dt, target);
  ASSERT_NE(batch, nullptr);
  bool found_updated = false;
  for (int64_t i = 0; i < batch->num_rows(); i++) {
    if (batch->column(2)->Value<int32_t>(i) == -1) found_updated = true;
  }
  EXPECT_TRUE(found_updated) << "the updated value must survive refreezing";
  target->controller.ReleaseRead();
  gc_.FullGC();
}

TEST_P(TransformPipelineTest, UserDeletedBlocksAreReclaimed) {
  const int64_t kRows = RowsForBlocks(2);
  const std::vector<TupleSlot> slots = Populate(kRows);
  storage::DataTable &dt = table_->UnderlyingTable();
  const size_t blocks_before = dt.NumBlocks();
  ASSERT_GT(blocks_before, 2u);

  // User transactions (not the compactor) empty every block.
  auto *txn = txn_manager_.BeginTransaction();
  for (const TupleSlot slot : slots) ASSERT_TRUE(table_->Delete(txn, slot));
  txn_manager_.Commit(txn);

  AdvancePastColdThreshold();
  pipeline_.RunOnce();
  gc_.FullGC();  // drains the deferred releases

  // Everything except the insertion block must go back to the block store.
  EXPECT_EQ(dt.NumBlocks(), 1u);
  EXPECT_EQ(dt.FilledSlots(dt.Blocks().front()), 0u);
}

TEST_P(TransformPipelineTest, BackgroundThreadFreezesWithoutManualDriving) {
  Populate(1000);
  storage::DataTable &dt = table_->UnderlyingTable();
  gc_.FullGC();

  pipeline_.Start(std::chrono::milliseconds(1));
  pipeline_.EnqueueTable(&dt);
  // The worker owns all transformation work now; just wait for it.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    if (dt.Blocks().front()->controller.GetState() == BlockState::kFrozen) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  pipeline_.Stop();
  EXPECT_EQ(dt.Blocks().front()->controller.GetState(), BlockState::kFrozen);
  gc_.FullGC();
}

INSTANTIATE_TEST_SUITE_P(Modes, TransformPipelineTest,
                         ::testing::Values(GatherMode::kVarlenGather,
                                           GatherMode::kDictionaryCompression),
                         [](const auto &info) {
                           return info.param == GatherMode::kVarlenGather ? "Gather"
                                                                          : "Dictionary";
                         });

}  // namespace mainline
