#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>

#include "catalog/catalog.h"
#include "gc/garbage_collector.h"
#include "logging/log_manager.h"
#include "transaction/recovery_manager.h"
#include "transaction/transaction_manager.h"
#include "workload/row_util.h"

namespace mainline {

namespace {
const char *kLogPath = "/tmp/mainline_test.log";

catalog::Schema TestSchema() {
  return catalog::Schema({{"id", catalog::TypeId::kBigInt},
                          {"name", catalog::TypeId::kVarchar, true},
                          {"score", catalog::TypeId::kInteger}});
}
}  // namespace

TEST(LoggingTest, CommitCallbackFiresAfterFlush) {
  storage::BlockStore block_store(100, 10);
  storage::RecordBufferSegmentPool buffer_pool(100000, 100);
  catalog::Catalog catalog(&block_store);
  logging::LogManager log_manager(kLogPath);
  transaction::TransactionManager logged_manager(&buffer_pool, true, &log_manager);
  log_manager.SetTableResolver([&](catalog::table_oid_t oid) {
    return &catalog.GetTable(oid)->UnderlyingTable();
  });

  auto *table = catalog.GetTable(catalog.CreateTable("t", TestSchema()));
  const auto initializer = table->FullInitializer();
  std::vector<byte> buffer(initializer.ProjectedRowSize() + 8);

  std::atomic<int> called{0};
  auto *txn = logged_manager.BeginTransaction();
  storage::ProjectedRow *row = initializer.InitializeRow(buffer.data());
  workload::Set<int64_t>(row, 0, 7);
  workload::SetVarchar(row, 1, "a varlen value that spills out of line");
  workload::Set<int32_t>(row, 2, 11);
  table->Insert(txn, *row);
  logged_manager.Commit(
      txn, [](void *arg) { static_cast<std::atomic<int> *>(arg)->fetch_add(1); }, &called);

  // Not persistent yet: the callback must wait for the flush.
  EXPECT_EQ(called.load(), 0);
  log_manager.ForceFlush();
  EXPECT_EQ(called.load(), 1);
  EXPECT_GT(log_manager.BytesWritten(), 0u);

  // Read-only transactions get a commit record but it is not written.
  const uint64_t bytes_before = log_manager.BytesWritten();
  auto *read_only = logged_manager.BeginTransaction();
  logged_manager.Commit(
      read_only, [](void *arg) { static_cast<std::atomic<int> *>(arg)->fetch_add(1); },
      &called);
  log_manager.ForceFlush();
  EXPECT_EQ(called.load(), 2);
  EXPECT_EQ(log_manager.BytesWritten(), bytes_before);
}

TEST(LoggingTest, RecoveryRebuildsTables) {
  // --- first lifetime: run a workload with logging --------------------------
  {
    storage::BlockStore block_store(100, 10);
    storage::RecordBufferSegmentPool buffer_pool(100000, 100);
    catalog::Catalog catalog(&block_store);
    logging::LogManager log_manager(kLogPath);
    transaction::TransactionManager logged(&buffer_pool, true, &log_manager);
    log_manager.SetTableResolver([&](catalog::table_oid_t oid) {
      return &catalog.GetTable(oid)->UnderlyingTable();
    });
    auto *table = catalog.GetTable(catalog.CreateTable("t", TestSchema()));
    const auto initializer = table->FullInitializer();
    std::vector<byte> buffer(initializer.ProjectedRowSize() + 8);

    std::vector<storage::TupleSlot> slots;
    // 50 inserts across two transactions.
    for (int batch = 0; batch < 2; batch++) {
      auto *txn = logged.BeginTransaction();
      for (int64_t i = 0; i < 25; i++) {
        const int64_t id = batch * 25 + i;
        storage::ProjectedRow *row = initializer.InitializeRow(buffer.data());
        workload::Set<int64_t>(row, 0, id);
        if (id % 4 == 0) {
          row->SetNull(1);
        } else {
          workload::SetVarchar(row, 1, "row-" + std::string(20, 'x') + std::to_string(id));
        }
        workload::Set<int32_t>(row, 2, static_cast<int32_t>(id * 3));
        slots.push_back(table->Insert(txn, *row));
      }
      logged.Commit(txn);
    }
    // Update some, delete some.
    {
      auto *txn = logged.BeginTransaction();
      auto delta_init = table->InitializerForColumns({2});
      std::vector<byte> delta_buffer(delta_init.ProjectedRowSize() + 8);
      for (int64_t id = 0; id < 10; id++) {
        storage::ProjectedRow *delta = delta_init.InitializeRow(delta_buffer.data());
        workload::Set<int32_t>(delta, 0, static_cast<int32_t>(1000 + id));
        ASSERT_TRUE(table->Update(txn, slots[static_cast<size_t>(id)], *delta));
      }
      for (int64_t id = 40; id < 45; id++) {
        ASSERT_TRUE(table->Delete(txn, slots[static_cast<size_t>(id)]));
      }
      logged.Commit(txn);
    }
    // An aborted transaction must not be replayed.
    {
      auto *txn = logged.BeginTransaction();
      storage::ProjectedRow *row = initializer.InitializeRow(buffer.data());
      workload::Set<int64_t>(row, 0, 999);
      workload::SetVarchar(row, 1, "never committed");
      workload::Set<int32_t>(row, 2, 999);
      table->Insert(txn, *row);
      logged.Abort(txn);
    }
    log_manager.ForceFlush();
    log_manager.Shutdown();
  }

  // --- second lifetime: recover into a fresh engine -------------------------
  storage::BlockStore block_store(100, 10);
  storage::RecordBufferSegmentPool buffer_pool(100000, 100);
  catalog::Catalog catalog(&block_store);
  transaction::TransactionManager txn_manager(&buffer_pool, true, nullptr);
  gc::GarbageCollector gc(&txn_manager);
  auto *table = catalog.GetTable(catalog.CreateTable("t", TestSchema()));

  transaction::RecoveryManager recovery(catalog.TableMap(), &txn_manager);
  const uint64_t replayed = recovery.Recover(kLogPath);
  EXPECT_EQ(replayed, 3u);  // two insert batches + the update/delete txn

  // Verify contents: 50 - 5 deleted = 45 rows; ids 0..9 have score 1000+id.
  const auto initializer = table->FullInitializer();
  std::vector<byte> buffer(initializer.ProjectedRowSize() + 8);
  auto *txn = txn_manager.BeginTransaction();
  uint64_t visible = 0;
  for (auto it = table->begin(); !it.Done(); ++it) {
    storage::ProjectedRow *row = initializer.InitializeRow(buffer.data());
    if (!table->Select(txn, *it, row)) continue;
    visible++;
    const int64_t id = workload::Get<int64_t>(*row, 0);
    EXPECT_NE(id, 999) << "aborted insert must not be recovered";
    EXPECT_FALSE(id >= 40 && id < 45) << "deleted rows must not be recovered";
    const int32_t score = workload::Get<int32_t>(*row, 2);
    if (id < 10) {
      EXPECT_EQ(score, 1000 + id);
    } else {
      EXPECT_EQ(score, id * 3);
    }
    if (id % 4 == 0) {
      EXPECT_EQ(row->AccessWithNullCheck(1), nullptr);
    } else {
      EXPECT_EQ(workload::GetVarchar(*row, 1),
                "row-" + std::string(20, 'x') + std::to_string(id));
    }
  }
  txn_manager.Commit(txn);
  EXPECT_EQ(visible, 45u);
  gc.FullGC();
  std::remove(kLogPath);
}

}  // namespace mainline
