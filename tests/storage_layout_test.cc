#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <tuple>
#include <vector>

#include "common/rand_util.h"
#include "common/raw_bitmap.h"
#include "storage/block_layout.h"
#include "storage/projected_row.h"
#include "storage/raw_block.h"
#include "storage/tuple_access_strategy.h"
#include "storage/varlen_entry.h"

namespace mainline::storage {

// ---------------------------------------------------------------------------
// TupleSlot: the physiological addressing scheme of Figure 5.
// ---------------------------------------------------------------------------

TEST(TupleSlotTest, PacksBlockAndOffsetIntoOneWord) {
  BlockStore store(10, 10);
  RawBlock *block = store.Get();
  ASSERT_EQ(reinterpret_cast<uintptr_t>(block) % kBlockSize, 0u)
      << "blocks must be aligned at 1 MB boundaries";
  for (const uint32_t offset : {0u, 1u, 12345u, kBlockSize - 1}) {
    const TupleSlot slot(block, offset);
    EXPECT_EQ(slot.GetBlock(), block);
    EXPECT_EQ(slot.GetOffset(), offset);
    EXPECT_EQ(TupleSlot::FromRawBytes(slot.RawBytes()), slot);
  }
  store.Release(block);
}

// ---------------------------------------------------------------------------
// BlockLayout: property sweep over column shapes.
// ---------------------------------------------------------------------------

class BlockLayoutPropertyTest
    : public ::testing::TestWithParam<std::tuple<uint16_t /*cols*/, uint16_t /*size*/>> {};

TEST_P(BlockLayoutPropertyTest, LayoutFitsAndDoesNotOverlap) {
  const auto [num_cols, attr_size] = GetParam();
  std::vector<ColumnSpec> specs(num_cols, ColumnSpec{attr_size, false});
  const BlockLayout layout(specs);

  ASSERT_GT(layout.NumSlots(), 0u);
  const uint32_t n = layout.NumSlots();

  // Collect all [start, end) regions and verify 8-byte alignment and
  // disjointness within the 1 MB block.
  std::vector<std::pair<uint32_t, uint32_t>> regions;
  regions.emplace_back(layout.AllocationBitmapOffset(),
                       layout.AllocationBitmapOffset() + common::BitmapSize(n));
  regions.emplace_back(layout.VersionPtrOffset(), layout.VersionPtrOffset() + 8 * n);
  for (uint16_t c = 0; c < num_cols; c++) {
    const col_id_t col(c);
    regions.emplace_back(layout.ColumnBitmapOffset(col),
                         layout.ColumnBitmapOffset(col) + common::BitmapSize(n));
    regions.emplace_back(layout.ColumnValuesOffset(col),
                         layout.ColumnValuesOffset(col) + attr_size * n);
  }
  for (size_t i = 0; i < regions.size(); i++) {
    EXPECT_EQ(regions[i].first % 8, 0u) << "region " << i << " must be 8-byte aligned";
    EXPECT_GE(regions[i].first, BlockLayout::kHeaderSize);
    EXPECT_LE(regions[i].second, kBlockSize) << "region " << i << " exceeds the block";
    for (size_t j = i + 1; j < regions.size(); j++) {
      const bool disjoint =
          regions[i].second <= regions[j].first || regions[j].second <= regions[i].first;
      EXPECT_TRUE(disjoint) << "regions " << i << " and " << j << " overlap";
    }
  }

  // Adding one more slot must not fit (slot count is maximal).
  std::vector<uint32_t> saved;  // recompute footprint for n + 1 conservatively:
  const double per_slot = 8.0 + layout.TupleSize() + (1.0 + num_cols) / 8.0;
  EXPECT_GT((n + 64) * per_slot, static_cast<double>(kBlockSize - BlockLayout::kHeaderSize))
      << "slot count should be near-maximal";
  (void)saved;
}

INSTANTIATE_TEST_SUITE_P(Shapes, BlockLayoutPropertyTest,
                         ::testing::Combine(::testing::Values<uint16_t>(1, 2, 3, 8, 16, 64),
                                            ::testing::Values<uint16_t>(1, 2, 4, 8, 16)));

// ---------------------------------------------------------------------------
// RawConcurrentBitmap.
// ---------------------------------------------------------------------------

TEST(RawBitmapTest, FlipSetTestAndCount) {
  alignas(8) uint8_t backing[64] = {};
  auto *bitmap = common::RawConcurrentBitmap::Interpret(backing);
  bitmap->Clear(512);
  EXPECT_FALSE(bitmap->Test(17));
  EXPECT_TRUE(bitmap->Flip(17, false));
  EXPECT_FALSE(bitmap->Flip(17, false)) << "already set";
  EXPECT_TRUE(bitmap->Test(17));
  bitmap->Set(100, true);
  bitmap->Set(101, true);
  bitmap->Set(101, false);
  EXPECT_EQ(bitmap->CountSet(512), 2u);
  EXPECT_EQ(bitmap->CountSet(64), 1u);  // only bit 17 in the first word
  uint32_t pos;
  ASSERT_TRUE(bitmap->FirstUnsetPos(512, 17, &pos));
  EXPECT_EQ(pos, 18u);
}

TEST(RawBitmapTest, ConcurrentFlipsAreExact) {
  alignas(8) uint8_t backing[1024] = {};
  auto *bitmap = common::RawConcurrentBitmap::Interpret(backing);
  bitmap->Clear(8192);
  std::vector<std::thread> threads;
  std::atomic<uint32_t> wins{0};
  for (int t = 0; t < 8; t++) {
    threads.emplace_back([&] {
      for (uint32_t i = 0; i < 8192; i++) {
        if (bitmap->Flip(i, false)) wins.fetch_add(1);
      }
    });
  }
  for (auto &thread : threads) thread.join();
  EXPECT_EQ(wins.load(), 8192u) << "each bit flips exactly once across threads";
  EXPECT_EQ(bitmap->CountSet(8192), 8192u);
}

// ---------------------------------------------------------------------------
// VarlenEntry (Figure 6).
// ---------------------------------------------------------------------------

TEST(VarlenEntryTest, InlineBoundaryAndPrefix) {
  for (uint32_t size = 0; size <= 64; size++) {
    std::string value(size, 'a');
    for (uint32_t i = 0; i < size; i++) value[i] = static_cast<char>('a' + i % 26);
    const VarlenEntry entry = AllocateVarlen(value);
    EXPECT_EQ(entry.Size(), size);
    EXPECT_EQ(entry.IsInlined(), size <= VarlenEntry::kInlineThreshold);
    EXPECT_EQ(entry.NeedReclaim(), size > VarlenEntry::kInlineThreshold);
    EXPECT_EQ(entry.StringView(), value);
    // The prefix always holds the first bytes regardless of inlining.
    const uint32_t prefix_len = std::min(size, VarlenEntry::kPrefixSize);
    EXPECT_EQ(std::memcmp(entry.Prefix(), value.data(), prefix_len), 0);
    if (entry.NeedReclaim()) delete[] entry.Content();
  }
}

TEST(VarlenEntryTest, NonOwningPointerMode) {
  const std::string value = "a value that is definitely long enough";
  const VarlenEntry entry = VarlenEntry::Create(
      reinterpret_cast<const byte *>(value.data()), static_cast<uint32_t>(value.size()),
      false);
  EXPECT_FALSE(entry.NeedReclaim());
  EXPECT_EQ(entry.StringView(), value);
  EXPECT_EQ(entry.Content(), reinterpret_cast<const byte *>(value.data()));
}

// ---------------------------------------------------------------------------
// ProjectedRow: shape, sorting, null bitmap, projection mapping.
// ---------------------------------------------------------------------------

TEST(ProjectedRowTest, SortsColumnsAndAlignsValues) {
  const BlockLayout layout({{8, false}, {2, false}, {4, false}, {16, true}, {1, false}});
  // Deliberately unsorted column list.
  const auto initializer = ProjectedRowInitializer::Create(
      layout, {col_id_t(3), col_id_t(0), col_id_t(4), col_id_t(2)});
  std::vector<byte> buffer(initializer.ProjectedRowSize() + 8);
  ProjectedRow *row = initializer.InitializeRow(buffer.data());

  ASSERT_EQ(row->NumColumns(), 4);
  for (uint16_t i = 1; i < row->NumColumns(); i++) {
    EXPECT_LT(row->ColumnIds()[i - 1], row->ColumnIds()[i]) << "ids must be sorted";
  }
  // Values naturally aligned.
  for (uint16_t i = 0; i < row->NumColumns(); i++) {
    const uint16_t size = layout.AttrSize(row->ColumnIds()[i]);
    const auto addr = reinterpret_cast<uintptr_t>(row->AccessForceNotNull(i));
    EXPECT_EQ(addr % std::min<uint16_t>(size, 8), 0u);
  }
  // Projection index lookup.
  EXPECT_EQ(row->ProjectionIndex(col_id_t(0)), 0);
  EXPECT_EQ(row->ProjectionIndex(col_id_t(2)), 1);
  EXPECT_EQ(row->ProjectionIndex(col_id_t(1)), -1) << "column 1 is not projected";

  // Null bitmap starts all-null; force/set/unset works. (Re-initialize: the
  // alignment loop above forced columns non-null.)
  row = initializer.InitializeRow(buffer.data());
  for (uint16_t i = 0; i < row->NumColumns(); i++) EXPECT_TRUE(row->IsNull(i));
  row->AccessForceNotNull(2);
  EXPECT_FALSE(row->IsNull(2));
  row->SetNull(2);
  EXPECT_TRUE(row->IsNull(2));
}

TEST(ProjectedRowTest, CopyLayoutPreservesShape) {
  const BlockLayout layout({{8, false}, {4, false}});
  const auto initializer = ProjectedRowInitializer::CreateFull(layout);
  std::vector<byte> a(initializer.ProjectedRowSize() + 8);
  std::vector<byte> b(initializer.ProjectedRowSize() + 8);
  ProjectedRow *row = initializer.InitializeRow(a.data());
  row->AccessForceNotNull(0);
  ProjectedRow *copy = ProjectedRow::CopyProjectedRowLayout(b.data(), *row);
  EXPECT_EQ(copy->Size(), row->Size());
  EXPECT_EQ(copy->NumColumns(), row->NumColumns());
  EXPECT_TRUE(copy->IsNull(0)) << "values start out null in the copied shape";
}

// ---------------------------------------------------------------------------
// TupleAccessStrategy.
// ---------------------------------------------------------------------------

TEST(TupleAccessStrategyTest, AllocatePublishAndNulls) {
  BlockStore store(10, 10);
  const BlockLayout layout({{8, false}, {4, false}});
  const TupleAccessStrategy accessor(layout);
  RawBlock *block = store.Get();
  accessor.InitializeRawBlock(nullptr, block, layout_version_t(0));

  TupleSlot slot;
  ASSERT_TRUE(accessor.Allocate(block, &slot));
  EXPECT_EQ(slot.GetOffset(), 0u);
  EXPECT_FALSE(accessor.Allocated(slot)) << "allocation bit set only at publish";
  accessor.SetAllocated(slot);
  EXPECT_TRUE(accessor.Allocated(slot));

  EXPECT_EQ(accessor.AccessWithNullCheck(slot, col_id_t(0)), nullptr);
  *reinterpret_cast<int64_t *>(accessor.AccessForceNotNull(slot, col_id_t(0))) = 99;
  EXPECT_NE(accessor.AccessWithNullCheck(slot, col_id_t(0)), nullptr);
  accessor.SetNull(slot, col_id_t(0));
  EXPECT_EQ(accessor.AccessWithNullCheck(slot, col_id_t(0)), nullptr);

  // Exhausting the block.
  uint32_t allocated = 1;
  while (accessor.Allocate(block, &slot)) allocated++;
  EXPECT_EQ(allocated, layout.NumSlots());
  store.Release(block);
}

}  // namespace mainline::storage
