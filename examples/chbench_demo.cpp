// CH-benCHmark demo: HTAP under one roof. TPC-C terminals run transactions
// and feed fresh orders into the TPC-H tables while Q1/Q6/Q12/Q14 run
// morsel-parallel over the same snapshot-consistent data and the adaptive
// TransformPipeline freezes cold blocks in the background. Every sampled
// analytical answer is cross-checked bit-exactly against a scalar oracle in
// the same snapshot.
//
//   $ ./build/examples/chbench_demo [seconds] [terminals]

#include <cstdio>
#include <cstdlib>

#include "catalog/catalog.h"
#include "gc/garbage_collector.h"
#include "storage/raw_block.h"
#include "storage/record_buffer.h"
#include "transaction/transaction_manager.h"
#include "workload/chbench/chbench_harness.h"

using namespace mainline;

int main(int argc, char **argv) {
  const double seconds = argc > 1 ? std::atof(argv[1]) : 2.0;
  const auto terminals = static_cast<uint32_t>(argc > 2 ? std::atoi(argv[2]) : 2);

  storage::BlockStore block_store(60000, 1000);
  storage::RecordBufferSegmentPool buffer_pool(0, 10000);
  catalog::Catalog catalog(&block_store);
  transaction::TransactionManager txn_manager(&buffer_pool, true, nullptr);
  gc::GarbageCollector gc(&txn_manager);

  workload::chbench::Config config;
  config.terminals = terminals;
  config.duration_seconds = seconds;
  config.tpcc_scale = workload::tpcc::Config::Scaled(1000, 100);
  config.lineitem_rows = 30000;
  config.part_rows = 2000;

  workload::chbench::ChBenchHarness harness(&catalog, &txn_manager, &gc, config);
  std::printf("loading %u warehouse(s) + TPC-H tables...\n", terminals);
  harness.Setup();
  const workload::chbench::Result result = harness.Run();

  std::printf("\n%.1f K txn/s over %.1f s (%lu TPC-C committed, %lu fresh rows fed)\n",
              result.txns_per_second / 1000.0, result.seconds,
              static_cast<unsigned long>(result.tpcc_committed),
              static_cast<unsigned long>(result.feed_rows));
  for (const auto &query : result.queries) {
    std::printf("  %-4s %4lu runs, p50 %8.0f us, p95 %8.0f us\n", query.name.c_str(),
                static_cast<unsigned long>(query.runs), query.p50_us, query.p95_us);
  }
  std::printf("oracle: %lu checks, %lu mismatches (%s)\n",
              static_cast<unsigned long>(result.oracle_checks),
              static_cast<unsigned long>(result.oracle_mismatches),
              result.BitExact() ? "bit-exact" : "DIVERGED");
  std::printf("freshness: %lu freeze-lag samples, p50 %.1f ms, p95 %.1f ms\n",
              static_cast<unsigned long>(result.freeze_lag_samples),
              result.freeze_lag_p50_us / 1000.0, result.freeze_lag_p95_us / 1000.0);
  std::printf("transform: %lu passes froze %lu blocks (%.1f%% of TPC-H blocks), "
              "final period %lld ms\n",
              static_cast<unsigned long>(result.transform_passes),
              static_cast<unsigned long>(result.blocks_frozen), result.frozen_pct,
              static_cast<long long>(result.final_period.count()));
  return result.BitExact() ? 0 : 1;
}
