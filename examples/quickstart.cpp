// Quickstart: create a table, run transactions against it, freeze it into
// canonical Arrow, and read it zero-copy.
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "catalog/catalog.h"
#include "gc/garbage_collector.h"
#include "transform/arrow_reader.h"
#include "transform/block_transformer.h"
#include "workload/row_util.h"

using namespace mainline;

int main() {
  // --- engine setup -------------------------------------------------------
  storage::BlockStore block_store(1000, 100);
  storage::RecordBufferSegmentPool buffer_pool(100000, 1000);
  catalog::Catalog catalog(&block_store);
  transaction::TransactionManager txn_manager(&buffer_pool, true, nullptr);
  gc::GarbageCollector gc(&txn_manager);

  // --- create a table -----------------------------------------------------
  catalog::Schema schema({{"id", catalog::TypeId::kBigInt},
                          {"name", catalog::TypeId::kVarchar},
                          {"balance", catalog::TypeId::kDecimal}});
  catalog::SqlTable *accounts = catalog.GetTable(catalog.CreateTable("accounts", schema));

  // --- insert some rows transactionally ------------------------------------
  const auto initializer = accounts->FullInitializer();
  std::vector<byte> buffer(initializer.ProjectedRowSize() + 8);
  std::vector<storage::TupleSlot> slots;
  {
    auto *txn = txn_manager.BeginTransaction();
    const char *names[] = {"alice", "bob", "carol", "dave-with-a-long-name"};
    for (int64_t i = 0; i < 4; i++) {
      storage::ProjectedRow *row = initializer.InitializeRow(buffer.data());
      workload::Set<int64_t>(row, 0, i);
      workload::SetVarchar(row, 1, names[i]);
      workload::Set<double>(row, 2, 100.0 * static_cast<double>(i));
      slots.push_back(accounts->Insert(txn, *row));
    }
    txn_manager.Commit(txn);
  }

  // --- snapshot-isolated update: move 50 from dave to alice ----------------
  {
    auto *txn = txn_manager.BeginTransaction();
    auto balance_init = accounts->InitializerForColumns({2});
    std::vector<byte> delta_buffer(balance_init.ProjectedRowSize() + 8);
    storage::ProjectedRow *delta = balance_init.InitializeRow(delta_buffer.data());
    workload::Set<double>(delta, 0, 250.0);
    accounts->Update(txn, slots[3], *delta);
    workload::Set<double>(delta, 0, 50.0);
    accounts->Update(txn, slots[0], *delta);
    txn_manager.Commit(txn);
  }
  gc.FullGC();

  // --- freeze: relaxed format -> canonical Arrow ---------------------------
  transform::BlockTransformer transformer(&txn_manager, &gc);
  storage::DataTable &table = accounts->UnderlyingTable();
  const uint32_t frozen = transformer.ProcessGroup(&table, table.Blocks(), nullptr);
  std::printf("froze %u block(s)\n", frozen);

  // --- zero-copy Arrow read ------------------------------------------------
  storage::RawBlock *block = table.Blocks()[0];
  if (block->controller.TryAcquireRead()) {
    auto batch = transform::ArrowReader::FromFrozenBlock(schema, table, block);
    std::printf("arrow batch: %lld rows, schema = [%s]\n",
                static_cast<long long>(batch->num_rows()),
                batch->schema()->ToString().c_str());
    for (int64_t row = 0; row < batch->num_rows(); row++) {
      std::printf("  id=%ld  name=%-22s balance=%.2f\n",
                  static_cast<long>(batch->column(0)->Value<int64_t>(row)),
                  std::string(batch->column(1)->GetString(row)).c_str(),
                  batch->column(2)->Value<double>(row));
    }
    block->controller.ReleaseRead();
  }
  return 0;
}
