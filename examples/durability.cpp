// Durability: run transactions with write-ahead logging and group commit,
// "crash", then recover the database from the log in a fresh engine.
//
//   $ ./build/examples/durability

#include <atomic>
#include <cstdio>

#include "catalog/catalog.h"
#include "gc/garbage_collector.h"
#include "logging/log_manager.h"
#include "transaction/recovery_manager.h"
#include "transaction/transaction_manager.h"
#include "workload/row_util.h"

using namespace mainline;

namespace {
// Relative to the working directory, so concurrent runs (e.g. two build
// trees' smoke tests) don't clobber each other's log.
const char *kLogPath = "mainline_durability_demo.log";

catalog::Schema AccountsSchema() {
  return catalog::Schema({{"id", catalog::TypeId::kBigInt},
                          {"owner", catalog::TypeId::kVarchar},
                          {"balance", catalog::TypeId::kDecimal}});
}
}  // namespace

int main() {
  // ---- lifetime 1: transactions with WAL ----------------------------------
  {
    storage::BlockStore block_store(100, 10);
    storage::RecordBufferSegmentPool buffer_pool(100000, 100);
    catalog::Catalog catalog(&block_store);
    logging::LogManager log_manager(kLogPath);
    transaction::TransactionManager txn_manager(&buffer_pool, true, &log_manager);
    log_manager.SetTableResolver([&](catalog::table_oid_t oid) {
      return &catalog.GetTable(oid)->UnderlyingTable();
    });
    log_manager.Start();

    auto *accounts = catalog.GetTable(catalog.CreateTable("accounts", AccountsSchema()));
    const auto initializer = accounts->FullInitializer();
    std::vector<byte> buffer(initializer.ProjectedRowSize() + 8);

    std::atomic<int> durable{0};
    auto on_durable = [](void *arg) { static_cast<std::atomic<int> *>(arg)->fetch_add(1); };

    for (int64_t i = 0; i < 100; i++) {
      auto *txn = txn_manager.BeginTransaction();
      storage::ProjectedRow *row = initializer.InitializeRow(buffer.data());
      workload::Set<int64_t>(row, 0, i);
      workload::SetVarchar(row, 1, "account-holder-number-" + std::to_string(i));
      workload::Set<double>(row, 2, 1000.0 + static_cast<double>(i));
      accounts->Insert(txn, *row);
      // The result is withheld from the "client" until the commit record is
      // on disk; the callback signals durability (Section 3.4).
      txn_manager.Commit(txn, on_durable, &durable);
    }
    // An uncommitted transaction that will be lost in the crash:
    auto *doomed = txn_manager.BeginTransaction();
    storage::ProjectedRow *row = initializer.InitializeRow(buffer.data());
    workload::Set<int64_t>(row, 0, 424242);
    workload::SetVarchar(row, 1, "lost to the crash");
    workload::Set<double>(row, 2, 0.0);
    accounts->Insert(doomed, *row);
    // (no commit — simulated crash below)

    log_manager.Shutdown();
    std::printf("lifetime 1: 100 commits, %d durable callbacks fired, %lu log bytes\n",
                durable.load(), static_cast<unsigned long>(log_manager.BytesWritten()));
    txn_manager.Abort(doomed);  // tidy shutdown of the demo process
  }

  // ---- lifetime 2: recover ------------------------------------------------
  storage::BlockStore block_store(100, 10);
  storage::RecordBufferSegmentPool buffer_pool(100000, 100);
  catalog::Catalog catalog(&block_store);
  transaction::TransactionManager txn_manager(&buffer_pool, true, nullptr);
  gc::GarbageCollector gc(&txn_manager);
  auto *accounts = catalog.GetTable(catalog.CreateTable("accounts", AccountsSchema()));

  transaction::RecoveryManager recovery(catalog.TableMap(), &txn_manager);
  const uint64_t replayed = recovery.Recover(kLogPath);

  const auto initializer = accounts->FullInitializer();
  std::vector<byte> buffer(initializer.ProjectedRowSize() + 8);
  auto *txn = txn_manager.BeginTransaction();
  uint64_t rows = 0;
  double total = 0;
  for (auto it = accounts->begin(); !it.Done(); ++it) {
    storage::ProjectedRow *r = initializer.InitializeRow(buffer.data());
    if (!accounts->Select(txn, *it, r)) continue;
    rows++;
    total += workload::Get<double>(*r, 2);
  }
  txn_manager.Commit(txn);
  gc.FullGC();

  std::printf("lifetime 2: replayed %lu transactions -> %lu rows, total balance %.2f\n",
              static_cast<unsigned long>(replayed), static_cast<unsigned long>(rows), total);
  std::remove(kLogPath);
  return rows == 100 ? 0 : 1;
}
