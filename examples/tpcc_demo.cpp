// TPC-C demo: run the full OLTP pipeline — worker terminals, a background
// garbage collector, and the background block-transformation thread — then
// report throughput and how much of the database ended up in canonical Arrow.
//
//   $ ./build/examples/tpcc_demo [seconds] [workers]

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "catalog/catalog.h"
#include "gc/gc_thread.h"
#include "transform/transform_pipeline.h"
#include "workload/tpcc/tpcc_workload.h"

using namespace mainline;

int main(int argc, char **argv) {
  const int seconds = argc > 1 ? std::atoi(argv[1]) : 5;
  const auto workers = static_cast<uint32_t>(argc > 2 ? std::atoi(argv[2]) : 4);

  storage::BlockStore block_store(50000, 1000);
  storage::RecordBufferSegmentPool buffer_pool(0, 10000);
  catalog::Catalog catalog(&block_store);
  transaction::TransactionManager txn_manager(&buffer_pool, true, nullptr);
  gc::GarbageCollector gc(&txn_manager);

  workload::tpcc::Config config;
  config.num_warehouses = static_cast<int32_t>(workers);
  config.num_items = 10000;
  config.customers_per_district = 300;
  config.orders_per_district = 300;
  workload::tpcc::Database db(&catalog, config);
  std::printf("loading %u warehouse(s)...\n", workers);
  db.Load(&txn_manager, workers);
  gc.FullGC();

  // Background transformation: 10 ms cold threshold, groups of 10 blocks,
  // targeting the cold-data tables (Section 6.1's setup).
  transform::AccessObserver observer(1);
  gc.SetAccessObserver(&observer);
  transform::BlockTransformer transformer(&txn_manager, &gc,
                                          transform::GatherMode::kVarlenGather);
  transformer.SetInlineGCPump(false);
  transform::TransformPipeline pipeline(&observer, &transformer, 10);
  storage::DataTable *targets[] = {
      &db.order->UnderlyingTable(), &db.order_line->UnderlyingTable(),
      &db.history->UnderlyingTable(), &db.item->UnderlyingTable()};
  pipeline.SetTableFilter([&](storage::DataTable *t) {
    for (auto *target : targets) {
      if (t == target) return true;
    }
    return false;
  });
  pipeline.EnqueueTable(&db.item->UnderlyingTable());

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> committed{0}, aborted{0};
  {
    gc::GarbageCollectorThread gc_thread(&gc, std::chrono::milliseconds(10));
    pipeline.Start(std::chrono::milliseconds(10));

    std::vector<std::thread> threads;
    for (uint32_t t = 0; t < workers; t++) {
      threads.emplace_back([&, t] {
        workload::tpcc::Worker worker(&db, &txn_manager, static_cast<int32_t>(t + 1),
                                      42 + t);
        while (!stop.load(std::memory_order_acquire)) worker.RunOne();
        committed += worker.Stats().TotalCommitted();
        aborted += worker.Stats().aborted;
      });
    }
    std::this_thread::sleep_for(std::chrono::seconds(seconds));
    stop.store(true);
    for (auto &thread : threads) thread.join();
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    pipeline.Stop();
    gc.SetAccessObserver(nullptr);
  }

  std::printf("\n%.1f K txn/s (%lu committed, %lu aborted over %d s, %u workers)\n",
              static_cast<double>(committed.load()) / seconds / 1000.0,
              static_cast<unsigned long>(committed.load()),
              static_cast<unsigned long>(aborted.load()), seconds, workers);

  std::printf("\n%-12s %8s %8s %8s %8s\n", "table", "blocks", "frozen", "cooling", "hot");
  struct {
    const char *name;
    catalog::SqlTable *table;
  } tables[] = {{"order", db.order},     {"order_line", db.order_line},
                {"history", db.history}, {"item", db.item},
                {"stock", db.stock},     {"customer", db.customer}};
  for (const auto &[name, table] : tables) {
    uint64_t frozen = 0, cooling = 0, hot = 0, total = 0;
    for (auto *block : table->UnderlyingTable().Blocks()) {
      total++;
      switch (block->controller.GetState()) {
        case storage::BlockState::kFrozen:
          frozen++;
          break;
        case storage::BlockState::kCooling:
          cooling++;
          break;
        default:
          hot++;
          break;
      }
    }
    std::printf("%-12s %8lu %8lu %8lu %8lu\n", name, static_cast<unsigned long>(total),
                static_cast<unsigned long>(frozen), static_cast<unsigned long>(cooling),
                static_cast<unsigned long>(hot));
  }
  return 0;
}
