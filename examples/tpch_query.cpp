// In-situ TPC-H: generate LINEITEM, ORDERS, PART, and CUSTOMER, answer Q1
// and Q6 (single table), Q12 (hash join ORDERS ⋈ LINEITEM), Q14 (hash join
// LINEITEM ⋈ PART, FP promo-revenue ratio), and Q3 (three-way join
// CUSTOMER ⋈ ORDERS ⋈ LINEITEM with ORDER BY revenue LIMIT 10) with
// operator-pipeline plans while the tables are hot, freeze them through the
// transformation pipeline, and answer them again — now zero-copy straight
// out of the frozen Arrow blocks. Each round also runs the same plans
// morsel-parallel across all hardware threads. Every run is checked
// bit-exactly against the tuple-at-a-time scalar reference (the plans'
// per-block accumulation makes their results independent of the worker
// count), so this doubles as an end-to-end smoke test (non-zero exit on any
// divergence).
//
//   $ ./build/examples/tpch_query
//   $ ./build/examples/tpch_query --explain   # + EXPLAIN ANALYZE of Q3
//
// With --explain, the frozen round ends with a profiled Q3 run and its
// per-operator EXPLAIN ANALYZE report (rows in/out, selectivity, inclusive/
// exclusive time per operator, per-pipeline scan stats).
//
// Knobs: MAINLINE_TPCH_ROWS (default 200000), MAINLINE_TPCH_ORDERS (default
// rows / 3), MAINLINE_TPCH_PARTS (default rows / 3), MAINLINE_TPCH_CUSTOMERS
// (default rows / 6; a third of the order custkeys dangle past it),
// MAINLINE_TPCH_TXN_ROWS (rows per generator transaction, default 10000),
// MAINLINE_TPCH_THREADS (parallel-engine workers, default hardware
// concurrency).

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "catalog/catalog.h"
#include "workload/tpch/query_runner.h"
#include "gc/garbage_collector.h"
#include "transform/access_observer.h"
#include "transform/block_transformer.h"
#include "transform/transform_pipeline.h"
#include "workload/tpch/customer.h"
#include "workload/tpch/lineitem.h"
#include "workload/tpch/orders.h"
#include "workload/tpch/part.h"

using namespace mainline;
using workload::ExecMode;
using workload::QueryRunner;

namespace {

int64_t EnvInt(const char *name, int64_t def) {
  const char *value = std::getenv(name);
  return value == nullptr ? def : std::atoll(value);
}

/// Run Q1 + Q6 + Q12 + Q14 + Q3 on all three engines, print the result
/// rows, and verify the engines agree bit-exactly.
/// \return true if every aggregate matched.
bool RunAndCheck(QueryRunner *runner, catalog::SqlTable *table, catalog::SqlTable *orders,
                 catalog::SqlTable *part, catalog::SqlTable *customer, const char *label) {
  const auto q1 = runner->RunQ1(table);
  const auto q1_ref = runner->RunQ1(table, {}, ExecMode::kScalar);
  const auto q1_par = runner->RunQ1(table, {}, ExecMode::kParallel);
  const auto q6 = runner->RunQ6(table);
  const auto q6_ref = runner->RunQ6(table, {}, ExecMode::kScalar);
  const auto q6_par = runner->RunQ6(table, {}, ExecMode::kParallel);
  const auto q12 = runner->RunQ12(orders, table);
  const auto q12_ref = runner->RunQ12(orders, table, {}, ExecMode::kScalar);
  const auto q12_par = runner->RunQ12(orders, table, {}, ExecMode::kParallel);
  const auto q14 = runner->RunQ14(table, part);
  const auto q14_ref = runner->RunQ14(table, part, {}, ExecMode::kScalar);
  const auto q14_par = runner->RunQ14(table, part, {}, ExecMode::kParallel);
  const auto q3 = runner->RunQ3(customer, orders, table);
  const auto q3_ref = runner->RunQ3(customer, orders, table, {}, ExecMode::kScalar);
  const auto q3_par = runner->RunQ3(customer, orders, table, {}, ExecMode::kParallel);

  std::printf("\n-- %s: %llu rows, %llu blocks zero-copy, %llu blocks materialized --\n",
              label, static_cast<unsigned long long>(q1.stats.rows),
              static_cast<unsigned long long>(q1.stats.frozen_blocks),
              static_cast<unsigned long long>(q1.stats.hot_blocks));
  std::printf("Q1  %-4s %-4s %14s %16s %16s %10s\n", "flag", "stat", "sum_qty",
              "sum_disc_price", "sum_charge", "count");
  for (const auto &row : q1.rows) {
    std::printf("    %-4s %-4s %14.2f %16.2f %16.2f %10llu\n", row.returnflag.c_str(),
                row.linestatus.c_str(), row.sum_qty, row.sum_disc_price, row.sum_charge,
                static_cast<unsigned long long>(row.count));
  }
  std::printf("Q6  revenue = %.4f\n", q6.revenue);
  std::printf("Q12 %-9s %16s %16s   (hash join ORDERS x LINEITEM)\n", "shipmode",
              "high_line_count", "low_line_count");
  for (const auto &row : q12.rows) {
    std::printf("    %-9s %16llu %16llu\n", row.shipmode.c_str(),
                static_cast<unsigned long long>(row.high_line_count),
                static_cast<unsigned long long>(row.low_line_count));
  }

  std::printf("Q14 promo revenue = %.4f%%   (hash join LINEITEM x PART)\n",
              q14.promo_revenue);
  std::printf("Q3  %10s %14s %10s %9s   (CUSTOMER x ORDERS x LINEITEM, top %zu)\n",
              "orderkey", "revenue", "orderdate", "priority", q3.rows.size());
  for (const auto &row : q3.rows) {
    std::printf("    %10lld %14.4f %10u %9d\n", static_cast<long long>(row.orderkey),
                row.revenue, row.orderdate, row.shippriority);
  }

  const bool ok = q1.rows == q1_ref.rows && q6.revenue == q6_ref.revenue &&
                  q1_par.rows == q1_ref.rows && q6_par.revenue == q6_ref.revenue &&
                  q12.rows == q12_ref.rows && q12_par.rows == q12_ref.rows &&
                  q14.promo_revenue == q14_ref.promo_revenue &&
                  q14_par.promo_revenue == q14_ref.promo_revenue &&
                  q3.rows == q3_ref.rows && q3_par.rows == q3_ref.rows;
  std::printf("engines agree bit-exactly (vectorized + %u-thread parallel vs scalar): %s\n",
              runner->NumThreads(), ok ? "yes" : "NO — MISMATCH");
  return ok;
}

}  // namespace

int main(int argc, char **argv) {
  bool explain = false;
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--explain") == 0) {
      explain = true;
    } else {
      std::fprintf(stderr, "usage: %s [--explain]\n", argv[0]);
      return 2;
    }
  }

  storage::BlockStore block_store(5000, 100);
  storage::RecordBufferSegmentPool buffer_pool(0, 1000);
  catalog::Catalog catalog(&block_store);
  transaction::TransactionManager txn_manager(&buffer_pool, true, nullptr);
  gc::GarbageCollector gc(&txn_manager);

  const auto rows = static_cast<uint64_t>(EnvInt("MAINLINE_TPCH_ROWS", 200000));
  const auto num_orders = static_cast<uint64_t>(
      EnvInt("MAINLINE_TPCH_ORDERS", static_cast<int64_t>(rows / 3)));
  const auto num_parts = static_cast<uint64_t>(
      EnvInt("MAINLINE_TPCH_PARTS", static_cast<int64_t>(rows / 3)));
  const auto num_customers = static_cast<uint64_t>(
      EnvInt("MAINLINE_TPCH_CUSTOMERS", static_cast<int64_t>(rows / 6)));
  const auto txn_rows = static_cast<uint64_t>(EnvInt("MAINLINE_TPCH_TXN_ROWS", 10000));
  std::printf(
      "generating LINEITEM (%llu rows) + ORDERS (%llu rows) + PART (%llu rows) + "
      "CUSTOMER (%llu rows)...\n",
      static_cast<unsigned long long>(rows), static_cast<unsigned long long>(num_orders),
      static_cast<unsigned long long>(num_parts),
      static_cast<unsigned long long>(num_customers));
  catalog::SqlTable *lineitem =
      workload::tpch::GenerateLineItem(&catalog, &txn_manager, rows, /*seed=*/7, txn_rows);
  // A third of the order custkeys point past the customer table, so Q3's
  // first join edge has dangling FKs to drop, like the test matrix.
  catalog::SqlTable *orders =
      workload::tpch::GenerateOrders(&catalog, &txn_manager, num_orders, /*seed=*/11, txn_rows,
                                     "orders", num_customers + num_customers / 2);
  catalog::SqlTable *part =
      workload::tpch::GeneratePart(&catalog, &txn_manager, num_parts, /*seed=*/13, txn_rows);
  catalog::SqlTable *customer = workload::tpch::GenerateCustomer(
      &catalog, &txn_manager, num_customers, /*seed=*/17, txn_rows);
  gc.FullGC();

  QueryRunner runner(&txn_manager,
                     static_cast<uint32_t>(EnvInt("MAINLINE_TPCH_THREADS", 0)));
  bool ok = RunAndCheck(&runner, lineitem, orders, part, customer,
                        "hot tables (100% materialized)");

  // The tables go cold; the transformation pipeline freezes them into
  // canonical Arrow, and the same queries now run in situ.
  transform::AccessObserver observer(/*cold_threshold=*/2);
  transform::BlockTransformer transformer(&txn_manager, &gc);
  transform::TransformPipeline pipeline(&observer, &transformer, /*group_size=*/4);
  pipeline.EnqueueTable(&lineitem->UnderlyingTable());
  pipeline.EnqueueTable(&orders->UnderlyingTable());
  pipeline.EnqueueTable(&part->UnderlyingTable());
  pipeline.EnqueueTable(&customer->UnderlyingTable());
  const uint32_t frozen = pipeline.RunOnce();
  std::printf("\nfroze %u of %zu blocks (all tables)\n", frozen,
              lineitem->UnderlyingTable().NumBlocks() +
                  orders->UnderlyingTable().NumBlocks() +
                  part->UnderlyingTable().NumBlocks() +
                  customer->UnderlyingTable().NumBlocks());

  ok = RunAndCheck(&runner, lineitem, orders, part, customer,
                   "frozen tables (in-situ, zero-copy)") &&
       ok;

  if (explain) {
    // EXPLAIN ANALYZE: rerun Q3 over the frozen tables with per-operator
    // profiling on. The answer is bit-identical to the unprofiled runs
    // above; the extra output is the plan's per-operator record.
    runner.SetProfiling(true);
    const auto profiled = runner.RunQ3(customer, orders, lineitem, {}, ExecMode::kParallel);
    runner.SetProfiling(false);
    std::printf("\n-- EXPLAIN ANALYZE: Q3, frozen tables, %u-thread parallel --\n%s",
                runner.NumThreads(), runner.LastProfile().ToString().c_str());
    if (profiled.rows.empty()) {
      std::printf("EXPLAIN ANALYZE run returned no rows\n");
      ok = false;
    }
  }

  gc.FullGC();
  return ok ? 0 : 1;
}
