// In-situ TPC-H: generate LINEITEM, answer Q1 and Q6 with the vectorized
// execution engine while the table is hot, freeze it through the
// transformation pipeline, and answer them again — now zero-copy straight
// out of the frozen Arrow blocks. Each round also runs the morsel-parallel
// engine across all hardware threads. Every run is checked bit-exactly
// against the tuple-at-a-time scalar reference (the parallel engine's
// per-block accumulation makes its result independent of the worker count),
// so this doubles as an end-to-end smoke test (non-zero exit on any
// divergence).
//
//   $ ./build/examples/tpch_query
//
// Knobs: MAINLINE_TPCH_ROWS (default 200000), MAINLINE_TPCH_TXN_ROWS
// (rows per generator transaction, default 10000), MAINLINE_TPCH_THREADS
// (parallel-engine workers, default hardware concurrency).

#include <cstdio>
#include <cstdlib>

#include "catalog/catalog.h"
#include "execution/query_runner.h"
#include "gc/garbage_collector.h"
#include "transform/access_observer.h"
#include "transform/block_transformer.h"
#include "transform/transform_pipeline.h"
#include "workload/tpch/lineitem.h"

using namespace mainline;
using execution::ExecMode;
using execution::QueryRunner;

namespace {

int64_t EnvInt(const char *name, int64_t def) {
  const char *value = std::getenv(name);
  return value == nullptr ? def : std::atoll(value);
}

/// Run Q1 + Q6 on all three engines, print the result rows, and verify the
/// engines agree bit-exactly.
/// \return true if every aggregate matched.
bool RunAndCheck(QueryRunner *runner, storage::SqlTable *table, const char *label) {
  const auto q1 = runner->RunQ1(table);
  const auto q1_ref = runner->RunQ1(table, {}, ExecMode::kScalar);
  const auto q1_par = runner->RunQ1(table, {}, ExecMode::kParallel);
  const auto q6 = runner->RunQ6(table);
  const auto q6_ref = runner->RunQ6(table, {}, ExecMode::kScalar);
  const auto q6_par = runner->RunQ6(table, {}, ExecMode::kParallel);

  std::printf("\n-- %s: %llu rows, %llu blocks zero-copy, %llu blocks materialized --\n",
              label, static_cast<unsigned long long>(q1.stats.rows),
              static_cast<unsigned long long>(q1.stats.frozen_blocks),
              static_cast<unsigned long long>(q1.stats.hot_blocks));
  std::printf("Q1  %-4s %-4s %14s %16s %16s %10s\n", "flag", "stat", "sum_qty",
              "sum_disc_price", "sum_charge", "count");
  for (const auto &row : q1.rows) {
    std::printf("    %-4s %-4s %14.2f %16.2f %16.2f %10llu\n", row.returnflag.c_str(),
                row.linestatus.c_str(), row.sum_qty, row.sum_disc_price, row.sum_charge,
                static_cast<unsigned long long>(row.count));
  }
  std::printf("Q6  revenue = %.4f\n", q6.revenue);

  const bool ok = q1.rows == q1_ref.rows && q6.revenue == q6_ref.revenue &&
                  q1_par.rows == q1_ref.rows && q6_par.revenue == q6_ref.revenue;
  std::printf("engines agree bit-exactly (vectorized + %u-thread parallel vs scalar): %s\n",
              runner->NumThreads(), ok ? "yes" : "NO — MISMATCH");
  return ok;
}

}  // namespace

int main() {
  storage::BlockStore block_store(5000, 100);
  storage::RecordBufferSegmentPool buffer_pool(0, 1000);
  catalog::Catalog catalog(&block_store);
  transaction::TransactionManager txn_manager(&buffer_pool, true, nullptr);
  gc::GarbageCollector gc(&txn_manager);

  const auto rows = static_cast<uint64_t>(EnvInt("MAINLINE_TPCH_ROWS", 200000));
  const auto txn_rows = static_cast<uint64_t>(EnvInt("MAINLINE_TPCH_TXN_ROWS", 10000));
  std::printf("generating LINEITEM (%llu rows)...\n", static_cast<unsigned long long>(rows));
  storage::SqlTable *lineitem =
      workload::tpch::GenerateLineItem(&catalog, &txn_manager, rows, /*seed=*/7, txn_rows);
  gc.FullGC();

  QueryRunner runner(&txn_manager,
                     static_cast<uint32_t>(EnvInt("MAINLINE_TPCH_THREADS", 0)));
  bool ok = RunAndCheck(&runner, lineitem, "hot table (100% materialized)");

  // The table goes cold; the transformation pipeline freezes it into
  // canonical Arrow, and the same queries now run in situ.
  transform::AccessObserver observer(/*cold_threshold=*/2);
  transform::BlockTransformer transformer(&txn_manager, &gc);
  transform::TransformPipeline pipeline(&observer, &transformer, /*group_size=*/4);
  pipeline.EnqueueTable(&lineitem->UnderlyingTable());
  const uint32_t frozen = pipeline.RunOnce();
  std::printf("\nfroze %u of %zu blocks\n", frozen, lineitem->UnderlyingTable().NumBlocks());

  ok = RunAndCheck(&runner, lineitem, "frozen table (in-situ, zero-copy)") && ok;

  gc.FullGC();
  return ok ? 0 : 1;
}
