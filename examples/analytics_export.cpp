// Analytics export: run an OLTP-style workload, freeze the cold data, and
// ship the whole table to an "external analytics tool" through all four
// export paths, then run the same aggregate on each client-side copy to show
// they agree — and how much the paths differ in cost.
//
//   $ ./build/examples/analytics_export

#include <cstdio>

#include "catalog/catalog.h"
#include "export/protocols.h"
#include "gc/garbage_collector.h"
#include "transform/block_transformer.h"
#include "workload/row_util.h"
#include "workload/tpch/lineitem.h"

using namespace mainline;

namespace {

/// The "analytics": revenue = sum(extendedprice * (1 - discount)) over the
/// client-side Arrow data (a slice of TPC-H Q1).
double Revenue(const arrowlite::RecordBatch &batch, int price_col, int discount_col) {
  double revenue = 0;
  for (int64_t i = 0; i < batch.num_rows(); i++) {
    revenue += batch.column(price_col)->Value<double>(i) *
               (1.0 - batch.column(discount_col)->Value<double>(i));
  }
  return revenue;
}

}  // namespace

int main() {
  storage::BlockStore block_store(5000, 100);
  storage::RecordBufferSegmentPool buffer_pool(0, 1000);
  catalog::Catalog catalog(&block_store);
  transaction::TransactionManager txn_manager(&buffer_pool, true, nullptr);
  gc::GarbageCollector gc(&txn_manager);

  std::printf("generating LINEITEM...\n");
  catalog::SqlTable *lineitem =
      workload::tpch::GenerateLineItem(&catalog, &txn_manager, 500000);
  gc.FullGC();

  // Freeze the table (it has gone cold).
  transform::BlockTransformer transformer(&txn_manager, &gc);
  storage::DataTable &table = lineitem->UnderlyingTable();
  const uint32_t frozen = transformer.ProcessGroup(&table, table.Blocks(), nullptr);
  std::printf("froze %u of %zu blocks\n", frozen, table.NumBlocks());

  exporter::ClientBuffer client((table.NumBlocks() + 4) * (8ull << 20));
  const int price = 5, discount = 6;  // l_extendedprice, l_discount

  {
    exporter::ArrowFlightExporter flight(&client);
    const auto result = flight.Export(lineitem, &txn_manager);
    double revenue = 0;
    for (const auto &batch : flight.ClientBatches()) revenue += Revenue(*batch, price, discount);
    std::printf("%-16s %8.0f ms  %6.1f MB on wire  revenue=%.2f\n", "arrow-flight",
                result.micros / 1000.0, result.wire_bytes / 1048576.0, revenue);
  }
  {
    exporter::VectorizedWireExporter vectorized(&client);
    const auto result = vectorized.Export(lineitem, &txn_manager);
    const double revenue = Revenue(*vectorized.ClientBatch(), price, discount);
    std::printf("%-16s %8.0f ms  %6.1f MB on wire  revenue=%.2f\n", "vectorized",
                result.micros / 1000.0, result.wire_bytes / 1048576.0, revenue);
  }
  {
    exporter::PostgresWireExporter pg(&client);
    const auto result = pg.Export(lineitem, &txn_manager);
    const double revenue = Revenue(*pg.ClientBatch(), price, discount);
    std::printf("%-16s %8.0f ms  %6.1f MB on wire  revenue=%.2f\n", "postgres-wire",
                result.micros / 1000.0, result.wire_bytes / 1048576.0, revenue);
  }
  {
    exporter::RdmaExporter rdma(&client);
    const auto result = rdma.Export(lineitem, &txn_manager);
    std::printf("%-16s %8.0f ms  %6.1f MB transferred (one-sided; no parse step)\n", "rdma",
                result.micros / 1000.0, result.wire_bytes / 1048576.0);
  }
  gc.FullGC();
  return 0;
}
