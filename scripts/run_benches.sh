#!/usr/bin/env bash
# Build the Release benchmarks and run every figure-reproduction binary,
# capturing each one's report as BENCH_<name>.json in the output directory.
#
# Usage: scripts/run_benches.sh [output-dir]
#
# Knobs (environment variables understood by the bench binaries themselves,
# e.g. row counts) pass straight through.

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${REPO_ROOT}/build-bench"
OUT_DIR="${1:-${REPO_ROOT}}"

# figure16/17/18/19's morsel-parallel threads sweeps: make the defaults
# explicit so the sweeps are always recorded in the BENCH_*.json snapshots.
export MAINLINE_F16_THREADS="${MAINLINE_F16_THREADS:-1,2,4,8}"
export MAINLINE_F17_THREADS="${MAINLINE_F17_THREADS:-1,2,4,8}"
export MAINLINE_F18_THREADS="${MAINLINE_F18_THREADS:-1,2,4,8}"
export MAINLINE_F19_THREADS="${MAINLINE_F19_THREADS:-1,2,4,8}"

# figure20's HTAP windows: record the shape explicitly so the snapshot is
# reproducible (terminal count, window length, and analytical scale).
export MAINLINE_F20_TERMINALS="${MAINLINE_F20_TERMINALS:-4}"
export MAINLINE_F20_QUERY_WORKERS="${MAINLINE_F20_QUERY_WORKERS:-2}"
export MAINLINE_F20_SECONDS="${MAINLINE_F20_SECONDS:-3}"
export MAINLINE_F20_ROWS="${MAINLINE_F20_ROWS:-300000}"

cmake -B "${BUILD_DIR}" -S "${REPO_ROOT}" \
    -DCMAKE_BUILD_TYPE=Release \
    -DMAINLINE_BUILD_TESTS=OFF \
    -DMAINLINE_BUILD_EXAMPLES=OFF
cmake --build "${BUILD_DIR}" -j

mkdir -p "${OUT_DIR}"

for bench in "${BUILD_DIR}"/bench/figure*; do
  [ -x "${bench}" ] || continue
  name="$(basename "${bench}")"
  echo "== running ${name} =="
  start="$(date +%s.%N)"
  status=0
  output="$("${bench}" 2>&1)" || status=$?
  end="$(date +%s.%N)"
  # The report goes through stdin: verbose benches can exceed the kernel's
  # per-environment-string limit, so only small scalars ride in env vars.
  printf '%s' "${output}" | BENCH_NAME="${name}" BENCH_STATUS="${status}" \
  BENCH_START="${start}" BENCH_END="${end}" \
  python3 -c '
import json, os, sys
lines = sys.stdin.read().splitlines()
# Benches that report metrics print one machine-readable tail line:
#   METRICS_JSON {"engine": <registry snapshot>, "profiles": {...}}
# Lift it out of the text transcript into a structured field.
metrics = None
for line in lines:
    if line.startswith("METRICS_JSON "):
        try:
            metrics = json.loads(line[len("METRICS_JSON "):])
        except ValueError:
            pass
with open(sys.argv[1], "w") as f:
    json.dump(
        {
            "name": os.environ["BENCH_NAME"],
            "exit_code": int(os.environ["BENCH_STATUS"]),
            "elapsed_seconds": round(
                float(os.environ["BENCH_END"]) - float(os.environ["BENCH_START"]), 3
            ),
            "metrics": metrics,
            "output": [l for l in lines if not l.startswith("METRICS_JSON ")],
        },
        f,
        indent=2,
    )
    f.write("\n")
' "${OUT_DIR}/BENCH_${name}.json"
  elapsed="$(awk -v a="${start}" -v b="${end}" 'BEGIN { printf "%.1f", b - a }')"
  echo "   -> ${OUT_DIR}/BENCH_${name}.json (exit ${status}, ${elapsed}s)"
done
