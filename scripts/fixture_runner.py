"""Shared fixture runner for the project's static-analysis gates.

Both scripts/lint.py and scripts/analyze.py self-test the same way: a list of
small fixtures (violating and conforming inputs) is checked against the rule
names each fixture is expected to trigger. Keeping the runner in one module
means the two gates cannot drift in how they report or count self-test
failures.

A fixture is a tuple `(label, payload, expected)` where `label` names the
case in failure output, `payload` is whatever the gate's `evaluate` callback
consumes, and `expected` is the set of rule names that must fire — exactly
those, no more, no fewer.
"""


def run_fixtures(suite_name, fixtures, evaluate):
    """Run `evaluate(payload)` for every fixture and compare rule sets.

    \param suite_name  printed in the summary line (e.g. "lint --self-test")
    \param fixtures    iterable of (label, payload, expected_rule_set)
    \param evaluate    callback mapping a payload to the set of fired rules
    \return the number of failing fixtures (0 means the suite passed)
    """
    failures = 0
    for label, payload, expected in fixtures:
        got = evaluate(payload)
        if got != expected:
            print(f"{suite_name} FAIL {label}: expected {sorted(expected)}, "
                  f"got {sorted(got)}")
            failures += 1
    return failures


def finish(suite_name, failures):
    """Print the suite verdict and return the process exit code."""
    if failures:
        print(f"{suite_name}: {failures} failure(s)")
        return 1
    print(f"{suite_name}: ok")
    return 0
