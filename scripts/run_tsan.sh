#!/usr/bin/env bash
# ThreadSanitizer lane: build with -fsanitize=thread and run the `stress`
# ctest label (the suites that exercise real cross-thread interleavings)
# repeatedly, failing on the first interleaving that produces a report.
#
# Usage: scripts/run_tsan.sh [repetitions] [extra cmake args...]
#   repetitions  how many times to run each stress suite (default 5)
#   e.g. scripts/run_tsan.sh 10 -DCMAKE_BUILD_TYPE=Debug
#
# Suppressions live in tsan_suppressions.txt at the repo root; the target is
# for that file to stay empty of engine code — every entry must carry a
# written justification.

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${REPO_ROOT}/build-tsan"
REPS="${1:-5}"
shift || true

cmake -B "${BUILD_DIR}" -S "${REPO_ROOT}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DMAINLINE_SANITIZE_THREAD=ON \
  -DMAINLINE_BUILD_BENCHMARKS=OFF \
  "$@"
cmake --build "${BUILD_DIR}" -j

# halt_on_error: fail fast on the first report instead of letting the suite
# "pass" with diagnostics on stderr. second_deadlock_stack aids lock-order
# reports. history_size raises TSan's per-thread event history so reports in
# the long-running TPC-C suites keep their stacks.
export TSAN_OPTIONS="suppressions=${REPO_ROOT}/tsan_suppressions.txt halt_on_error=1 second_deadlock_stack=1 history_size=4"

ctest --test-dir "${BUILD_DIR}" --output-on-failure -L stress \
  --repeat until-fail:"${REPS}"
