#!/usr/bin/env python3
"""Architecture analyzer: the structural contracts the compiler cannot see.

Where scripts/lint.py machine-checks the locking discipline, this tool
machine-checks the engine's two other load-bearing disciplines — the layer
DAG and the bit-exact determinism contract — plus the memory-ordering and
include hygiene that keep them reviewable. Four passes, each independently
waivable in code with

    // analyze-waive(<pass>): <reason>

on the offending line or in the lines directly above it (a waiver with an
empty reason is rejected and the violation stands).

Passes:

  layering      Extract the project #include graph and enforce the module
                DAG declared in scripts/layering.toml. An include from one
                module into another that the declaration does not allow is a
                back-edge. `--graph FILE` additionally emits a Graphviz
                report of the observed module graph.

  determinism   In src/execution/ and src/workload/ — the code that computes
                and feeds query results — flag iteration over unordered
                containers (range-for, .begin(), equal_range bucket walks),
                any non-blessed randomness (rand, std::random_device,
                std::mt19937; workloads use the seeded common::Xorshift),
                and wall-clock reads. "Bit-exact at any worker count" is a
                checked property, not a habit.

  atomics       Every memory_order_relaxed site must carry a justifying
                `// relaxed:` comment, and every RMW that defaults to
                seq_cst (fetch_add/exchange/compare_exchange with no
                explicit ordering) a `// ordering:` comment — the annotated-
                or-waived rule lint.py applies to latches, extended to
                orderings.

  include       IWYU-lite over project includes: a direct include none of
                whose provided names appear in the file is unused; a
                `module::Symbol` use whose defining header is not directly
                included (nor forward-declared, nor included by a .cc's
                paired header) is missing.

Usage:
  scripts/analyze.py                 analyze the repository (exit 1 on violations)
  scripts/analyze.py --pass NAME     run a single pass (repeatable)
  scripts/analyze.py --graph FILE    also write a Graphviz module-DAG report
  scripts/analyze.py --self-test     run the built-in fixture checks
"""

import re
import sys
import tomllib
from pathlib import Path

from fixture_runner import finish, run_fixtures

REPO_ROOT = Path(__file__).resolve().parent.parent
LAYERING_TOML = REPO_ROOT / "scripts" / "layering.toml"

PASS_NAMES = ("layering", "determinism", "atomics", "include")

# Directories whose code feeds query results: the determinism contract's
# enforcement scope.
DETERMINISM_SCOPE = ("src/execution/", "src/workload/")

# How many lines above a site a waiver or justification comment may sit.
COMMENT_WINDOW = 6

RE_INCLUDE = re.compile(r'^\s*#include\s+"([^"]+)"')
RE_WAIVER = re.compile(r"analyze-waive\((\w+)\):(.*)")
RE_COMMENT_LINE = re.compile(r"^\s*(//|/\*|\*)")

# -- determinism -------------------------------------------------------------
RE_UNORDERED_DECL = re.compile(
    r"std::unordered_(?:map|set|multimap|multiset)\s*<")
# The declared variable: last identifier on the declaration statement before
# an initializer or terminator (covers `> name;`, `> name{...}`, `> name =`).
RE_DECL_NAME = re.compile(r">\s*&?\s*([A-Za-z_]\w*)\s*(?:;|=|\{|\()")
RE_RNG = re.compile(
    r"\bstd::rand\b|\brand\s*\(\s*\)|\bsrand\s*\(|std::random_device"
    r"|std::mt19937|default_random_engine")
RE_CLOCK = re.compile(
    r"_clock::now\s*\(|\btime\s*\(\s*(?:nullptr|NULL|0)\s*\)|\bgettimeofday\b")

# -- atomics -----------------------------------------------------------------
RE_RELAXED = re.compile(r"memory_order_relaxed")
RE_RMW = re.compile(
    r"\.\s*(?:fetch_add|fetch_sub|fetch_and|fetch_or|fetch_xor|exchange|"
    r"compare_exchange_strong|compare_exchange_weak)\s*\(")

# -- include hygiene ---------------------------------------------------------
CPP_KEYWORDS = frozenset(
    "alignas alignof asm auto bool break case catch char class const "
    "constexpr const_cast continue decltype default delete do double "
    "dynamic_cast else enum explicit export extern false float for friend "
    "goto if inline int long mutable namespace new noexcept nullptr operator "
    "private protected public register reinterpret_cast return short signed "
    "sizeof static static_assert static_cast struct switch template this "
    "thread_local throw true try typedef typeid typename union unsigned "
    "using virtual void volatile while final override defined".split())

RE_CLASS = re.compile(r"\b(?:class|struct)\s+([A-Za-z_]\w*)")
RE_CLASS_FWD = re.compile(r"\b(?:class|struct)\s+([A-Za-z_]\w*)\s*;")
RE_ENUM = re.compile(r"\benum\s+(?:class\s+|struct\s+)?([A-Za-z_]\w*)")
RE_USING = re.compile(r"\busing\s+([A-Za-z_]\w*)\s*=")
RE_STRONG_TYPEDEF = re.compile(r"\bSTRONG_TYPEDEF\(\s*([A-Za-z_]\w*)")
RE_DEFINE = re.compile(r"^\s*#\s*define\s+([A-Za-z_]\w*)")
RE_CONSTANT = re.compile(r"\bconstexpr\b[^=();]*?\b([A-Za-z_]\w*)\s*=")
RE_ENUM_BODY = re.compile(r"\benum\b[^;{]*\{([^}]*)\}", re.DOTALL)
RE_ENUMERATOR = re.compile(r"^\s*([A-Za-z_]\w*)\s*(?:=|,|$)", re.MULTILINE)
RE_CALLABLE = re.compile(r"\b([A-Za-z_]\w*)\s*\(")
RE_QUALIFIED = re.compile(r"\b([A-Za-z_]\w*)::([A-Za-z_]\w*)\b")
RE_NAMESPACE = re.compile(r"\bnamespace\s+([A-Za-z_][\w:]*)\s*\{")


def is_comment(line):
    return bool(RE_COMMENT_LINE.match(line))


def strip_comments(text):
    """Remove // and /* */ comments (string literals are left alone; good
    enough for usage scans — the engine does not hide type names in strings)."""
    text = re.sub(r"/\*.*?\*/", " ", text, flags=re.DOTALL)
    return re.sub(r"//[^\n]*", "", text)


class Waivers:
    """Per-file waiver lookup plus tracking of malformed (empty-reason) ones."""

    def __init__(self, lines):
        # line number (1-based) -> set of waived pass names
        self.by_line = {}
        self.empty = []  # (lineno, pass_name) with an empty reason
        for lineno, line in enumerate(lines, start=1):
            for m in RE_WAIVER.finditer(line):
                pass_name, reason = m.group(1), m.group(2).strip()
                if not reason:
                    self.empty.append((lineno, pass_name))
                    continue
                self.by_line.setdefault(lineno, set()).add(pass_name)

    def covers(self, lineno, pass_name):
        """True if a well-formed waiver for `pass_name` sits on `lineno` or in
        the COMMENT_WINDOW lines above it."""
        return any(
            pass_name in self.by_line.get(i, ())
            for i in range(max(1, lineno - COMMENT_WINDOW), lineno + 1))


def empty_waiver_violations(waivers, rel, pass_name):
    """One violation per malformed waiver naming this pass — reported by the
    pass the waiver tried (and failed) to address, so running a single pass
    still surfaces it."""
    return [("waiver-empty", rel, lineno,
             f"analyze-waive({pass_name}) has an empty reason; "
             "state why or remove it")
            for lineno, name in waivers.empty if name == pass_name]


def comment_tag_near(lines, lineno, tag):
    """True if `tag` (e.g. "relaxed:") appears on the site line or in the
    COMMENT_WINDOW lines above it."""
    lo = max(0, lineno - 1 - COMMENT_WINDOW)
    return any(tag in lines[i] for i in range(lo, lineno))


def module_of(rel_path, modules=()):
    """src/storage/data_table.cc -> storage; include path storage/x.h -> storage.

    A declared two-level module takes precedence: with "workload/chbench" in
    `modules`, src/workload/chbench/x.cc maps to workload/chbench instead of
    workload, so a nested subsystem can carry its own (tighter or wider)
    dependency contract than its parent directory."""
    parts = rel_path.split("/")
    if parts[0] == "src":
        parts = parts[1:]
    if not parts:
        return ""
    if len(parts) > 1 and "/".join(parts[:2]) in modules:
        return "/".join(parts[:2])
    return parts[0]


class Repo:
    """A file set plus the declared layering — real tree or in-memory fixture."""

    def __init__(self, files, layering):
        self.files = files          # rel_path -> text
        self.layering = layering    # module -> [allowed modules]

    @classmethod
    def from_disk(cls, root):
        files = {}
        for path in sorted(root.glob("src/**/*")):
            if path.suffix in (".h", ".cc") and path.is_file():
                files[path.relative_to(root).as_posix()] = path.read_text()
        with open(LAYERING_TOML, "rb") as f:
            layering = tomllib.load(f)["modules"]
        return cls(files, layering)


def check_layering_config(layering):
    """Validate the declaration itself: every listed dependency is a declared
    module and the declared graph is a DAG. Returns violations against the
    toml file (lineno 0 — the declaration, not a source line)."""
    violations = []
    for mod, deps in layering.items():
        for dep in deps:
            if dep not in layering:
                violations.append(("layering", "scripts/layering.toml", 0,
                                   f"module `{mod}` allows undeclared module `{dep}`"))
    # Cycle check via depth-first search over the allowed-dependency edges.
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {m: WHITE for m in layering}

    def visit(mod, stack):
        color[mod] = GRAY
        for dep in layering.get(mod, ()):
            if color.get(dep) == GRAY:
                cycle = " -> ".join(stack + [mod, dep])
                violations.append(("layering", "scripts/layering.toml", 0,
                                   f"declared DAG has a cycle: {cycle}"))
            elif color.get(dep) == WHITE:
                visit(dep, stack + [mod])
        color[mod] = BLACK

    for mod in layering:
        if color[mod] == WHITE:
            visit(mod, [])
    return violations


def project_includes(text):
    """Yield (lineno, include_path) for project-local includes."""
    for lineno, line in enumerate(text.splitlines(), start=1):
        m = RE_INCLUDE.match(line)
        if m:
            yield lineno, m.group(1)


def check_layering(repo):
    violations = list(check_layering_config(repo.layering))
    for rel, text in sorted(repo.files.items()):
        if not rel.startswith("src/"):
            continue
        mod = module_of(rel, repo.layering)
        lines = text.splitlines()
        waivers = Waivers(lines)
        violations.extend(empty_waiver_violations(waivers, rel, "layering"))
        allowed = set(repo.layering.get(mod, ())) | {mod}
        if mod not in repo.layering:
            violations.append(("layering", rel, 1,
                               f"module `{mod}` is not declared in scripts/layering.toml"))
            continue
        for lineno, inc in project_includes(text):
            target = module_of(inc, repo.layering)
            if target in allowed:
                continue
            if waivers.covers(lineno, "layering"):
                continue
            arrow = f"{mod} -> {target}"
            violations.append((
                "layering", rel, lineno,
                f"back-edge include `{inc}`: {arrow} is not a declared "
                "dependency (scripts/layering.toml); invert the dependency, "
                "move the code, or waive with a reason"))
    return violations


def emit_graph(repo, out_path):
    """Write a Graphviz dot report of the observed module include graph.
    Edges the declaration does not allow are drawn red and bold."""
    edges = {}
    for rel, text in sorted(repo.files.items()):
        if not rel.startswith("src/"):
            continue
        mod = module_of(rel, repo.layering)
        for _, inc in project_includes(text):
            target = module_of(inc, repo.layering)
            if target != mod:
                edges[(mod, target)] = edges.get((mod, target), 0) + 1
    lines = [
        "// Generated by scripts/analyze.py --graph — do not edit.",
        "// Module include graph over src/; edge labels count #include sites.",
        "digraph layering {",
        "  rankdir=BT;",
        '  node [shape=box, fontname="Helvetica"];',
    ]
    # Node ids are quoted: nested module names ("workload/chbench") contain
    # a slash, which is not a legal bare dot identifier.
    for mod in sorted(repo.layering):
        lines.append(f'  "{mod}";')
    for (src, dst), count in sorted(edges.items()):
        ok = dst in set(repo.layering.get(src, ())) | {src}
        style = "" if ok else ", color=red, penwidth=2.0"
        lines.append(f'  "{src}" -> "{dst}" [label="{count}"{style}];')
    lines.append("}")
    Path(out_path).write_text("\n".join(lines) + "\n")


def check_determinism(repo):
    violations = []
    for rel, text in sorted(repo.files.items()):
        if not rel.startswith(DETERMINISM_SCOPE):
            continue
        lines = text.splitlines()
        waivers = Waivers(lines)
        violations.extend(empty_waiver_violations(waivers, rel, "determinism"))
        # Pass 1: collect names of unordered containers declared in this file
        # (locals and members alike — both iterate nondeterministically).
        unordered_names = set()
        for line in lines:
            if is_comment(line) or not RE_UNORDERED_DECL.search(line):
                continue
            m = RE_DECL_NAME.search(line)
            if m:
                unordered_names.add(m.group(1))
        # Pass 2: flag iteration constructs over those names.
        for lineno, line in enumerate(lines, start=1):
            if is_comment(line):
                continue
            flagged = None
            for name in unordered_names:
                if re.search(r"for\s*\(.*:\s*&?\s*" + re.escape(name) + r"\b", line) or \
                   re.search(re.escape(name) + r"\s*\.\s*(?:begin|cbegin|equal_range)\s*\(", line):
                    flagged = name
                    break
            if flagged is not None and not waivers.covers(lineno, "determinism"):
                violations.append((
                    "det-unordered-iter", rel, lineno,
                    f"iteration over unordered container `{flagged}` in a "
                    "result-computing module: iteration order is not part of "
                    "the determinism contract — use an ordered structure, "
                    "sort before emitting, or waive with the reason the "
                    "order cannot reach results"))
            if RE_RNG.search(line) and not waivers.covers(lineno, "determinism"):
                violations.append((
                    "det-rng", rel, lineno,
                    "non-blessed randomness in a result-computing module; "
                    "use the seeded common::Xorshift"))
            if RE_CLOCK.search(line) and not waivers.covers(lineno, "determinism"):
                violations.append((
                    "det-clock", rel, lineno,
                    "wall-clock read in a result-computing module; clocks may "
                    "feed metrics (common::Timer) but never results"))
    return violations


def check_atomics(repo):
    violations = []
    for rel, text in sorted(repo.files.items()):
        if not rel.startswith("src/"):
            continue
        lines = text.splitlines()
        waivers = Waivers(lines)
        violations.extend(empty_waiver_violations(waivers, rel, "atomics"))
        for lineno, line in enumerate(lines, start=1):
            if is_comment(line):
                continue
            if RE_RELAXED.search(line):
                if not comment_tag_near(lines, lineno, "relaxed:") and \
                   not waivers.covers(lineno, "atomics"):
                    violations.append((
                        "atomics-relaxed", rel, lineno,
                        "memory_order_relaxed without a `// relaxed:` "
                        "justification; say why no ordering is needed"))
            m = RE_RMW.search(line)
            if m is not None:
                # The ordering argument may sit on a continuation line of the
                # same call; join a short window before deciding.
                window = " ".join(lines[lineno - 1:lineno + 3])
                call_text = window[window.find(m.group(0)):]
                depth, end = 0, len(call_text)
                for i, ch in enumerate(call_text):
                    if ch == "(":
                        depth += 1
                    elif ch == ")":
                        depth -= 1
                        if depth == 0:
                            end = i
                            break
                if "memory_order" in call_text[:end]:
                    continue
                if comment_tag_near(lines, lineno, "ordering:") or \
                   waivers.covers(lineno, "atomics"):
                    continue
                violations.append((
                    "atomics-seqcst-rmw", rel, lineno,
                    "read-modify-write defaulting to seq_cst without an "
                    "`// ordering:` comment; pass an explicit order or "
                    "justify the full fence"))
    return violations


def generous_symbols(text):
    """Names a header plausibly provides — used for the *unused* direction,
    where over-extraction is conservative (an extra name can only make an
    include look used)."""
    names = set()
    code = strip_comments(text)
    for regex in (RE_CLASS, RE_ENUM, RE_USING, RE_STRONG_TYPEDEF, RE_CONSTANT):
        names.update(regex.findall(code))
    for body in RE_ENUM_BODY.findall(code):
        names.update(RE_ENUMERATOR.findall(body))
    for line in text.splitlines():
        m = RE_DEFINE.match(line)
        if m:
            names.add(m.group(1))
    for m in RE_CALLABLE.finditer(code):
        if m.group(1) not in CPP_KEYWORDS:
            names.add(m.group(1))
    return names


def defining_symbols(text):
    """(namespace-qualified name -> None) for definitions a header owns —
    used for the *missing* direction, where precision matters. Tracks
    namespace nesting by brace counting; forward declarations don't count."""
    symbols = set()
    stack = []  # (namespace component list, depth at open)
    depth = 0
    for raw_line in strip_comments(text).splitlines():
        line = raw_line
        for m in RE_NAMESPACE.finditer(line):
            stack.append((m.group(1).split("::"), depth))
        # Definitions owned by the innermost namespace at this point.
        ns = [part for comps, _ in stack for part in comps]
        if ns:
            qualifier = ns[-1]  # engine style: mainline::<module>[::detail]
            for regex in (RE_ENUM, RE_USING, RE_STRONG_TYPEDEF):
                for name in regex.findall(line):
                    symbols.add(f"{qualifier}::{name}")
            for name in RE_CLASS.findall(line):
                if not RE_CLASS_FWD.search(line):
                    symbols.add(f"{qualifier}::{name}")
        depth += line.count("{") - line.count("}")
        while stack and depth <= stack[-1][1]:
            stack.pop()
    return symbols


def check_include(repo):
    violations = []
    src_headers = {rel: text for rel, text in repo.files.items()
                   if rel.startswith("src/") and rel.endswith(".h")}
    # Provider map for the missing-include direction: qualified name ->
    # header include path; ambiguous names (several providers) are dropped.
    providers = {}
    ambiguous = set()
    for rel, text in src_headers.items():
        inc_path = rel[len("src/"):]
        for name in defining_symbols(text):
            if name in providers and providers[name] != inc_path:
                ambiguous.add(name)
            providers[name] = inc_path
    for name in ambiguous:
        providers.pop(name, None)
    generous_cache = {rel[len("src/"):]: generous_symbols(text)
                      for rel, text in src_headers.items()}

    for rel, text in sorted(repo.files.items()):
        if not rel.startswith("src/"):
            continue
        lines = text.splitlines()
        waivers = Waivers(lines)
        violations.extend(empty_waiver_violations(waivers, rel, "include"))
        direct = dict(project_includes(text))  # lineno -> path
        direct_paths = set(direct.values())
        own_include = rel[len("src/"):]
        code = strip_comments(text)
        code_no_includes = "\n".join(
            l for l in code.splitlines() if not RE_INCLUDE.match(l))

        # Unused direction: none of the header's names appear in the file.
        for lineno, inc in sorted(direct.items()):
            if inc not in generous_cache:
                continue  # non-src include (third_party) — out of scope
            if rel.endswith(".cc") and inc == rel[len("src/"):-3] + ".h":
                continue  # a .cc always keeps its paired header
            used = any(
                re.search(r"\b" + re.escape(name) + r"\b", code_no_includes)
                for name in generous_cache[inc])
            if not used and not waivers.covers(lineno, "include"):
                violations.append((
                    "include-unused", rel, lineno,
                    f"unused direct include `{inc}`: none of its declared "
                    "names appear in this file"))

        # Missing direction: qualified uses must be directly included (or
        # forward-declared here, or included by a .cc's paired header).
        satisfied = set(direct_paths)
        satisfied.add(own_include)
        if rel.endswith(".cc"):
            paired = rel[:-3] + ".h"
            if paired in repo.files:
                satisfied.add(paired[len("src/"):])
                satisfied.update(p for _, p in project_includes(repo.files[paired]))
        fwd_declared = set(RE_CLASS_FWD.findall(code))
        reported = set()
        for m in RE_QUALIFIED.finditer(code_no_includes):
            qual = f"{m.group(1)}::{m.group(2)}"
            header = providers.get(qual)
            if header is None or header in satisfied or header in reported:
                continue
            if m.group(2) in fwd_declared:
                continue
            lineno = code_no_includes[:m.start()].count("\n") + 1
            # Map back to the real line number by searching the original text.
            for real_no, line in enumerate(lines, start=1):
                if qual in line and not RE_INCLUDE.match(line):
                    lineno = real_no
                    break
            if waivers.covers(lineno, "include"):
                continue
            reported.add(header)
            violations.append((
                "include-missing", rel, lineno,
                f"`{qual}` is used but its header `{header}` is not "
                "directly included"))
    return violations


CHECKS = {
    "layering": check_layering,
    "determinism": check_determinism,
    "atomics": check_atomics,
    "include": check_include,
}


def analyze_repo(repo, passes=PASS_NAMES, graph=None):
    failures = 0
    for name in passes:
        for rule, rel, lineno, message in CHECKS[name](repo):
            print(f"{rel}:{lineno}: [{rule}] {message}")
            failures += 1
    if graph is not None:
        emit_graph(repo, graph)
    if failures:
        print(f"analyze: {failures} violation(s)")
        return 1
    print(f"analyze: clean ({', '.join(passes)})")
    return 0


# ---------------------------------------------------------------------------
# Self-test fixtures: per pass, a violating and a conforming shape, a waiver
# honored, and a waiver with an empty reason rejected.
# ---------------------------------------------------------------------------

FIXTURE_LAYERING = {"common": [], "storage": ["common"], "execution": ["common", "storage"],
                    "storage/hot": ["common", "storage"]}

FIXTURES = [
    # --- layering ---
    ("layering back-edge",
     ("layering", {"src/storage/table.h": '#include "execution/ops.h"\n'}),
     {"layering"}),
    ("layering conforming",
     ("layering", {"src/execution/ops.h": '#include "storage/table.h"\n'
                                          '#include "common/macros.h"\n'}),
     set()),
    ("layering undeclared module",
     ("layering", {"src/mystery/x.h": "struct X {};\n"}),
     {"layering"}),
    ("layering nested module back-edge",
     ("layering", {"src/storage/hot/cache.h": '#include "execution/ops.h"\n'}),
     {"layering"}),
    ("layering nested module conforming",
     ("layering", {"src/storage/hot/cache.h": '#include "common/macros.h"\n'
                                              '#include "storage/table.h"\n'
                                              '#include "storage/hot/ring.h"\n'}),
     set()),
    ("layering parent include of nested module is checked",
     ("layering", {"src/storage/table.cc": '#include "storage/hot/cache.h"\n'}),
     {"layering"}),
    ("layering waiver honored",
     ("layering", {"src/storage/table.h":
                   "// analyze-waive(layering): MVCC mutual recursion, see toml\n"
                   '#include "execution/ops.h"\n'}),
     set()),
    ("layering waiver empty reason rejected",
     ("layering", {"src/storage/table.h":
                   "// analyze-waive(layering):\n"
                   '#include "execution/ops.h"\n'}),
     {"layering", "waiver-empty"}),
    # --- determinism ---
    ("determinism unordered iteration",
     ("determinism", {"src/execution/agg.cc":
                      "std::unordered_map<int, int> groups;\n"
                      "void F() { for (const auto &g : groups) Emit(g); }\n"}),
     {"det-unordered-iter"}),
    ("determinism equal_range walk",
     ("determinism", {"src/workload/probe.cc":
                      "std::unordered_multimap<int, int> ht;\n"
                      "auto r = ht.equal_range(k);\n"}),
     {"det-unordered-iter"}),
    ("determinism lookup conforming",
     ("determinism", {"src/execution/agg.cc":
                      "std::unordered_map<int, int> groups;\n"
                      "int F(int k) { return groups.count(k); }\n"}),
     set()),
    ("determinism rng",
     ("determinism", {"src/workload/gen.cc": "int x = rand();\n"}),
     {"det-rng"}),
    ("determinism blessed rng conforming",
     ("determinism", {"src/workload/gen.cc":
                      "common::Xorshift rng(42);\nuint64_t x = rng.Next();\n"}),
     set()),
    ("determinism clock",
     ("determinism", {"src/execution/scan.cc":
                      "auto t = std::chrono::steady_clock::now();\n"}),
     {"det-clock"}),
    ("determinism out of scope",
     ("determinism", {"src/transform/obs.cc":
                      "std::unordered_map<int, int> w;\n"
                      "void F() { for (auto &e : w) Touch(e); }\n"}),
     set()),
    ("determinism waiver honored",
     ("determinism", {"src/execution/agg.cc":
                      "std::unordered_map<int, int> groups;\n"
                      "// analyze-waive(determinism): folded into an order-"
                      "insensitive integer sum\n"
                      "void F() { for (const auto &g : groups) n += g.second; }\n"}),
     set()),
    ("determinism waiver empty reason rejected",
     ("determinism", {"src/execution/agg.cc":
                      "std::unordered_map<int, int> groups;\n"
                      "// analyze-waive(determinism):\n"
                      "void F() { for (const auto &g : groups) n += g.second; }\n"}),
     {"det-unordered-iter", "waiver-empty"}),
    # --- atomics ---
    ("atomics bare relaxed",
     ("atomics", {"src/storage/block.cc":
                  "head_.store(0, std::memory_order_relaxed);\n"}),
     {"atomics-relaxed"}),
    ("atomics annotated relaxed conforming",
     ("atomics", {"src/storage/block.cc":
                  "// relaxed: init before publication, no concurrent reader\n"
                  "head_.store(0, std::memory_order_relaxed);\n"}),
     set()),
    ("atomics bare seq_cst rmw",
     ("atomics", {"src/storage/block.cc": "head_.fetch_add(1);\n"}),
     {"atomics-seqcst-rmw"}),
    ("atomics explicit-order rmw conforming",
     ("atomics", {"src/storage/block.cc":
                  "head_.fetch_add(1, std::memory_order_acq_rel);\n"}),
     set()),
    ("atomics continuation-line order conforming",
     ("atomics", {"src/storage/block.cc":
                  "ptr_.compare_exchange_strong(expected, desired,\n"
                  "                             std::memory_order_release);\n"}),
     set()),
    ("atomics ordering-comment rmw conforming",
     ("atomics", {"src/storage/block.cc":
                  "// ordering: full fence on the cold shutdown path is fine\n"
                  "if (run_.exchange(false)) Join();\n"}),
     set()),
    ("atomics waiver honored",
     ("atomics", {"src/storage/block.cc":
                  "// analyze-waive(atomics): generated code, audited upstream\n"
                  "head_.store(0, std::memory_order_relaxed);\n"}),
     set()),
    ("atomics waiver empty reason rejected",
     ("atomics", {"src/storage/block.cc":
                  "// analyze-waive(atomics):\n"
                  "head_.store(0, std::memory_order_relaxed);\n"}),
     {"atomics-relaxed", "waiver-empty"}),
    # --- include ---
    ("include unused",
     ("include", {"src/common/macros.h": "#define MY_ASSERT(x) ((void)0)\n",
                  "src/storage/table.cc":
                  '#include "common/macros.h"\nint F() { return 1; }\n'}),
     {"include-unused"}),
    ("include used conforming",
     ("include", {"src/common/macros.h": "#define MY_ASSERT(x) ((void)0)\n",
                  "src/storage/table.cc":
                  '#include "common/macros.h"\nint F() { MY_ASSERT(true); return 1; }\n'}),
     set()),
    ("include missing",
     ("include", {"src/storage/table.h":
                  "namespace mainline::storage {\nclass DataTable {};\n}\n",
                  "src/execution/scan.cc":
                  "void F(storage::DataTable *t);\n"}),
     {"include-missing"}),
    ("include missing satisfied conforming",
     ("include", {"src/storage/table.h":
                  "namespace mainline::storage {\nclass DataTable {};\n}\n",
                  "src/execution/scan.cc":
                  '#include "storage/table.h"\nvoid F(storage::DataTable *t) { t->G(); }\n'}),
     set()),
    ("include forward-declaration conforming",
     ("include", {"src/storage/table.h":
                  "namespace mainline::storage {\nclass DataTable {};\n}\n",
                  "src/execution/scan.h":
                  "namespace mainline::storage {\nclass DataTable;\n}\n"
                  "void F(storage::DataTable *t);\n"}),
     set()),
    ("include paired-header satisfies cc conforming",
     ("include", {"src/storage/table.h":
                  "namespace mainline::storage {\nclass DataTable {};\n}\n",
                  "src/execution/scan.h":
                  '#include "storage/table.h"\n'
                  "void F(storage::DataTable *t);\n",
                  "src/execution/scan.cc":
                  '#include "execution/scan.h"\n'
                  "void F(storage::DataTable *t) { (void)t; }\n"}),
     set()),
    ("include waiver honored",
     ("include", {"src/common/macros.h": "#define MY_ASSERT(x) ((void)0)\n",
                  "src/storage/table.cc":
                  "// analyze-waive(include): kept for the macro's side effects\n"
                  '#include "common/macros.h"\nint F() { return 1; }\n'}),
     set()),
    ("include waiver empty reason rejected",
     ("include", {"src/common/macros.h": "#define MY_ASSERT(x) ((void)0)\n",
                  "src/storage/table.cc":
                  "// analyze-waive(include):\n"
                  '#include "common/macros.h"\nint F() { return 1; }\n'}),
     {"include-unused", "waiver-empty"}),
]


def evaluate_fixture(payload):
    pass_name, files = payload
    repo = Repo(files, FIXTURE_LAYERING)
    violations = CHECKS[pass_name](repo)
    rules = {rule for rule, _, _, _ in violations}
    # Config-level noise (e.g. declared-DAG checks) never applies to the
    # in-memory fixture declaration, which is statically valid.
    return rules


def self_test():
    failures = run_fixtures("analyze --self-test", FIXTURES, evaluate_fixture)
    # The declaration validator must reject a cyclic DAG.
    cyclic = {"a": ["b"], "b": ["a"]}
    if not any(r == "layering" for r, _, _, _ in check_layering_config(cyclic)):
        print("analyze --self-test FAIL: cyclic declared DAG accepted")
        failures += 1
    # End to end: the real repository declaration must load and be a DAG.
    with open(LAYERING_TOML, "rb") as f:
        real = tomllib.load(f)["modules"]
    if check_layering_config(real):
        print("analyze --self-test FAIL: scripts/layering.toml is not a valid DAG")
        failures += 1
    return finish("analyze --self-test", failures)


def main(argv):
    if "--self-test" in argv:
        return self_test()
    passes = []
    graph = None
    i = 1
    while i < len(argv):
        if argv[i] == "--pass" and i + 1 < len(argv):
            passes.append(argv[i + 1])
            i += 2
        elif argv[i] == "--graph" and i + 1 < len(argv):
            graph = argv[i + 1]
            i += 2
        else:
            print(f"unknown argument: {argv[i]}", file=sys.stderr)
            return 2
    for p in passes:
        if p not in PASS_NAMES:
            print(f"unknown pass: {p} (known: {', '.join(PASS_NAMES)})",
                  file=sys.stderr)
            return 2
    repo = Repo.from_disk(REPO_ROOT)
    return analyze_repo(repo, tuple(passes) or PASS_NAMES, graph)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
