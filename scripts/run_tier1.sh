#!/usr/bin/env bash
# Tier-1 verify: configure, build, and run every ctest suite.
# This is the command sequence ROADMAP.md and CI treat as the gate.
#
# Usage: scripts/run_tier1.sh [extra cmake args...]
#   e.g. scripts/run_tier1.sh -DMAINLINE_SANITIZE=ON -DCMAKE_BUILD_TYPE=Debug

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${REPO_ROOT}/build"

cmake -B "${BUILD_DIR}" -S "${REPO_ROOT}" "$@"
cmake --build "${BUILD_DIR}" -j
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j"$(nproc)"
