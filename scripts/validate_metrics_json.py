#!/usr/bin/env python3
"""Validate the metrics a figure bench reported.

Accepts raw bench transcripts (the CI smoke pipes bench stdout to a file) or
BENCH_*.json snapshots produced by scripts/run_benches.sh, and checks that:

  * a METRICS_JSON record is present and parses,
  * the engine snapshot carries non-empty counter/gauge/histogram maps with
    the well-known subsystem prefixes,
  * every reported plan profile has pipelines whose operators carry labels,
    row counts, and per-operator timings (the EXPLAIN ANALYZE record).

Exits non-zero with a per-file report on any violation, so it can gate CI.

Usage: scripts/validate_metrics_json.py FILE [FILE...]
"""

import json
import sys

PREFIX = "METRICS_JSON "
# Subsystems every figure bench exercises. (transform.* is deliberately not
# required: the benches freeze blocks through BlockTransformer directly, so
# the transform *pipeline*'s lazily registered metrics never appear.)
ENGINE_PREFIXES = ("storage.", "txn.", "gc.", "pool.", "scan.")
OPERATOR_KEYS = ("label", "rows_in", "rows_out", "chunks", "inclusive_ns", "exclusive_ns")


def extract(path):
    """The METRICS_JSON payload of `path`, whichever container holds it."""
    with open(path) as f:
        text = f.read()
    try:
        snapshot = json.loads(text)
    except ValueError:
        snapshot = None
    if isinstance(snapshot, dict) and "output" in snapshot:
        # A BENCH_*.json snapshot: run_benches.sh already parsed the line.
        if snapshot.get("metrics") is not None:
            return snapshot["metrics"]
        text = "\n".join(snapshot["output"])
    for line in text.splitlines():
        if line.startswith(PREFIX):
            return json.loads(line[len(PREFIX):])
    raise ValueError("no METRICS_JSON record found")


def check(metrics):
    """All violations in one parsed METRICS_JSON payload."""
    errors = []
    engine = metrics.get("engine")
    if not isinstance(engine, dict):
        errors.append("missing engine snapshot")
        engine = {}
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(engine.get(section), dict) or not engine.get(section):
            errors.append(f"engine.{section} missing or empty")
    counters = engine.get("counters") or {}
    for prefix in ENGINE_PREFIXES:
        if not any(name.startswith(prefix) for name in counters):
            errors.append(f"no engine counter with prefix {prefix!r}")

    profiles = metrics.get("profiles")
    if not isinstance(profiles, dict) or not profiles:
        errors.append("missing plan profiles")
        profiles = {}
    for query, profile in sorted(profiles.items()):
        pipelines = profile.get("pipelines") if isinstance(profile, dict) else None
        if not pipelines:
            errors.append(f"profile {query}: no pipelines")
            continue
        for i, pipeline in enumerate(pipelines):
            where = f"profile {query} pipeline {i}"
            if not str(pipeline.get("source", "")).startswith("table#"):
                errors.append(f"{where}: missing scan source")
            if not isinstance(pipeline.get("scan"), dict):
                errors.append(f"{where}: missing scan stats")
            operators = pipeline.get("operators")
            if not operators:
                errors.append(f"{where}: no operator records")
                continue
            for record in operators:
                missing = [k for k in OPERATOR_KEYS if k not in record]
                if missing:
                    errors.append(
                        f"{where} operator {record.get('label', '?')}: "
                        f"missing {', '.join(missing)}"
                    )
            # Per-operator timings must actually tick: a profile whose every
            # inclusive time is zero means the timers never ran.
            if all(r.get("inclusive_ns", 0) == 0 for r in operators):
                errors.append(f"{where}: all operator timings are zero")
    return errors


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failed = False
    for path in argv[1:]:
        try:
            errors = check(extract(path))
        except (OSError, ValueError) as exc:
            errors = [str(exc)]
        if errors:
            failed = True
            for error in errors:
                print(f"{path}: FAIL: {error}")
        else:
            print(f"{path}: ok")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
