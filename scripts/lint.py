#!/usr/bin/env python3
"""Project lint gate: concurrency hygiene rules the compiler cannot enforce.

Rules (all scoped to src/ unless noted):

  R1  pragma-once    Every header must start its include story with
                     `#pragma once` (src/ and third_party/minigtest).
  R2  raw-thread     No `std::thread` outside the blessed thread owners
                     (WorkerPool, GcThread, LogManager, TransformPipeline)
                     and tests/bench/examples. `hardware_concurrency()` is
                     allowed anywhere — it spawns nothing.
  R3  raw-pause      No `__builtin_ia32_pause` outside common/cpu_relax.h;
                     spin loops call common::CpuRelax(), which is portable.
  R4  raw-mutex      No `std::mutex` / `std::condition_variable` /
                     `std::lock_guard` / `std::unique_lock` outside
                     common/mutex.h. libstdc++'s types carry no capability
                     annotations, so Clang's thread-safety analysis cannot
                     see through them; use common::Mutex / MutexGuard /
                     ConditionVariable.
  R5  bare-latch     A latch/mutex member declared in a src/ header
                     (SpinLatch, SharedLatch, Mutex) must be referenced by a
                     thread-safety annotation in the same file — GUARDED_BY,
                     PT_GUARDED_BY, REQUIRES, ACQUIRE, RELEASE, or EXCLUDES —
                     or carry a `// lint-latch: <reason>` waiver comment in
                     the lines directly above it. A latch no annotation
                     mentions protects nothing the analysis can check.

Usage:
  scripts/lint.py              lint the repository (exit 1 on violations)
  scripts/lint.py --self-test  run the built-in fixture checks
"""

import re
import sys
import tempfile
from pathlib import Path

from fixture_runner import finish, run_fixtures

REPO_ROOT = Path(__file__).resolve().parent.parent

# R2: files allowed to own a std::thread. Everything else routes work through
# common::WorkerPool (or one of these owners).
THREAD_OWNERS = {
    "src/common/worker_pool.h",
    "src/gc/gc_thread.h",
    "src/logging/log_manager.h",
    "src/logging/log_manager.cc",
    "src/transform/transform_pipeline.h",
    "src/transform/transform_pipeline.cc",
}

PAUSE_OWNER = "src/common/cpu_relax.h"  # R3
MUTEX_OWNER = "src/common/mutex.h"      # R4

RE_THREAD = re.compile(r"std::thread\b(?!::hardware_concurrency)")
RE_PAUSE = re.compile(r"__builtin_ia32_pause")
RE_RAW_MUTEX = re.compile(
    r"std::(?:mutex|condition_variable(?:_any)?|lock_guard|unique_lock|scoped_lock)\b")
# R5: a by-value latch member: optional `mutable`, optional `common::`
# qualification, one of the annotated capability types, an identifier, then
# either `;` or an attribute macro. Pointers/references are bindings to a
# latch owned elsewhere, not a new capability, so they are exempt.
RE_LATCH_MEMBER = re.compile(
    r"^\s*(?:mutable\s+)?(?:common::)?(?:SpinLatch|SharedLatch|Mutex)\s+"
    r"(?P<name>\w+)\s*(?:;|GUARDED_BY|PT_GUARDED_BY)")
RE_COMMENT_LINE = re.compile(r"^\s*(//|/\*|\*)")


def is_comment(line: str) -> bool:
    return bool(RE_COMMENT_LINE.match(line))


def lint_file(rel_path: str, text: str):
    """Return a list of (rule, line_number, message) violations for one file."""
    violations = []
    lines = text.splitlines()
    in_tests = rel_path.startswith(("tests/", "bench/", "examples/"))
    in_src = rel_path.startswith("src/")

    # R1 — headers must use #pragma once.
    if rel_path.endswith(".h") and (in_src or "minigtest" in rel_path):
        if "#pragma once" not in text:
            violations.append(("pragma-once", 1, "header is missing `#pragma once`"))

    for lineno, line in enumerate(lines, start=1):
        if is_comment(line):
            continue
        # R2 — raw std::thread.
        if in_src and rel_path not in THREAD_OWNERS and RE_THREAD.search(line):
            violations.append((
                "raw-thread", lineno,
                "std::thread outside the blessed owners; submit work to a "
                "common::WorkerPool instead"))
        # R3 — raw pause intrinsic.
        if in_src and rel_path != PAUSE_OWNER and RE_PAUSE.search(line):
            violations.append((
                "raw-pause", lineno,
                "__builtin_ia32_pause is x86-only; call common::CpuRelax()"))
        # R4 — unannotatable standard synchronization types.
        if in_src and rel_path != MUTEX_OWNER and RE_RAW_MUTEX.search(line):
            violations.append((
                "raw-mutex", lineno,
                "std synchronization types are invisible to thread-safety "
                "analysis; use common::Mutex / MutexGuard / ConditionVariable"))

    # R5 — latch members must appear in an annotation or carry a waiver.
    if in_src and rel_path.endswith(".h") and rel_path != MUTEX_OWNER:
        for lineno, line in enumerate(lines, start=1):
            if is_comment(line):
                continue
            m = RE_LATCH_MEMBER.match(line)
            if not m:
                continue
            name = m.group("name")
            referenced = re.search(
                r"(GUARDED_BY|PT_GUARDED_BY|REQUIRES(?:_SHARED)?|EXCLUDES|"
                r"ACQUIRE(?:_SHARED)?|TRY_ACQUIRE(?:_SHARED)?|"
                r"RELEASE(?:_SHARED|_GENERIC)?|ASSERT_CAPABILITY|"
                r"RETURN_CAPABILITY)\s*\([^)]*\b" + re.escape(name) + r"\b",
                text)
            waived = any(
                "lint-latch:" in lines[i]
                for i in range(max(0, lineno - 6), lineno - 1)
                if is_comment(lines[i]))
            if not referenced and not waived:
                violations.append((
                    "bare-latch", lineno,
                    f"latch member `{name}` is never referenced by a "
                    "thread-safety annotation in this header; add "
                    "GUARDED_BY/EXCLUDES/... or a `// lint-latch: <reason>` "
                    "waiver above it"))
    return violations


def collect_files(root: Path):
    for pattern in ("src/**/*.h", "src/**/*.cc", "tests/**/*.cc",
                    "bench/**/*.cc", "examples/**/*.cpp",
                    "third_party/minigtest/**/*.h"):
        yield from sorted(root.glob(pattern))


def lint_repo(root: Path) -> int:
    failures = 0
    for path in collect_files(root):
        rel = path.relative_to(root).as_posix()
        for rule, lineno, message in lint_file(rel, path.read_text()):
            print(f"{rel}:{lineno}: [{rule}] {message}")
            failures += 1
    if failures:
        print(f"lint: {failures} violation(s)")
        return 1
    print("lint: clean")
    return 0


# ---------------------------------------------------------------------------
# Self-test: seed violating and conforming fixtures, check each rule fires
# exactly where it should.
# ---------------------------------------------------------------------------

FIXTURES = [
    # (label, (relative path, content), expected rule names)
    ("src/bad/no_pragma.h",
     ("src/bad/no_pragma.h", "struct X {};\n"), {"pragma-once"}),
    ("src/bad/thread.cc",
     ("src/bad/thread.cc", "#include <thread>\nstd::thread t([]{});\n"),
     {"raw-thread"}),
    ("src/bad/pause.cc",
     ("src/bad/pause.cc", "void Spin() { __builtin_ia32_pause(); }\n"),
     {"raw-pause"}),
    ("src/bad/mutex.h",
     ("src/bad/mutex.h",
      "#pragma once\n#include <mutex>\nstruct S { std::mutex m_; };\n"),
     {"raw-mutex"}),
    ("src/bad/latch.h",
     ("src/bad/latch.h",
      "#pragma once\nstruct S {\n  common::SpinLatch latch_;\n  int x_;\n};\n"),
     {"bare-latch"}),
    # Conforming fixtures: each previously-violating shape, done right.
    ("src/good/annotated.h",
     ("src/good/annotated.h",
      "#pragma once\nstruct S {\n  common::SpinLatch latch_;\n"
      "  int x_ GUARDED_BY(latch_);\n};\n"), set()),
    ("src/good/waived.h",
     ("src/good/waived.h",
      "#pragma once\nstruct S {\n"
      "  // lint-latch: crabbing protocol, not statically checkable\n"
      "  common::SharedLatch latch;\n};\n"), set()),
    ("src/good/concurrency.cc",
     ("src/good/concurrency.cc",
      "unsigned n = std::thread::hardware_concurrency();\n"), set()),
    ("tests/thread_ok_test.cc",
     ("tests/thread_ok_test.cc",
      "#include <thread>\nstd::thread t([]{});\n"), set()),
]


def evaluate_fixture(payload):
    rel, content = payload
    return {rule for rule, _, _ in lint_file(rel, content)}


def self_test() -> int:
    failures = run_fixtures("lint --self-test", FIXTURES, evaluate_fixture)
    # End-to-end: a violating tree must make lint_repo return nonzero.
    with tempfile.TemporaryDirectory() as tmp:
        tree = Path(tmp)
        bad = tree / "src" / "bad.h"
        bad.parent.mkdir(parents=True)
        bad.write_text("struct X {};\n")
        import contextlib, io
        buf = io.StringIO()
        with contextlib.redirect_stdout(buf):
            rc = lint_repo(tree)
        if rc == 0:
            print("lint --self-test FAIL: lint_repo accepted a violating tree")
            failures += 1
    return finish("lint --self-test", failures)


if __name__ == "__main__":
    if "--self-test" in sys.argv:
        sys.exit(self_test())
    sys.exit(lint_repo(REPO_ROOT))
