#!/usr/bin/env bash
# All source-level gates in one command: the project lint, the architecture
# analyzer (layering DAG, determinism, atomics audit, include hygiene), and
# clang-tidy when a binary is on PATH. Each tool's self-test runs first so a
# silently-broken rule can never wave a dirty tree through.
#
# Usage: scripts/run_static_checks.sh [build-dir]
#   build-dir (default: build) is only consulted for clang-tidy's
#   compile_commands.json; lint and analyze need no configuration.

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-${REPO_ROOT}/build}"

echo "== lint.py --self-test =="
python3 "${REPO_ROOT}/scripts/lint.py" --self-test

echo "== lint.py =="
python3 "${REPO_ROOT}/scripts/lint.py"

echo "== analyze.py --self-test =="
python3 "${REPO_ROOT}/scripts/analyze.py" --self-test

echo "== analyze.py =="
python3 "${REPO_ROOT}/scripts/analyze.py"

if command -v clang-tidy >/dev/null 2>&1; then
  if [[ ! -f "${BUILD_DIR}/compile_commands.json" ]]; then
    echo "== cmake configure (compile_commands.json for clang-tidy) =="
    cmake -B "${BUILD_DIR}" -S "${REPO_ROOT}" -DCMAKE_BUILD_TYPE=Release
  fi
  echo "== clang-tidy =="
  find "${REPO_ROOT}/src" -name '*.cc' -print0 |
    xargs -0 -n 8 -P "$(nproc)" clang-tidy -p "${BUILD_DIR}" --quiet
else
  echo "== clang-tidy: not installed, skipped =="
fi

echo "static checks: all green"
