// minigtest — a small, header-only, GoogleTest-compatible testing shim.
//
// The build environment is offline, so instead of fetching GoogleTest we
// vendor the subset of its API that the mainline test suites actually use:
//
//   * TEST / TEST_F / TEST_P + INSTANTIATE_TEST_SUITE_P
//   * ::testing::Test, ::testing::TestWithParam<T>
//   * EXPECT_* / ASSERT_* comparisons (EQ, NE, LT, LE, GT, GE, TRUE, FALSE,
//     NEAR, DOUBLE_EQ) with gtest-style `<< "message"` streaming
//   * ::testing::Values / Bool / Combine param generators and custom namers
//   * a test registry + main() supporting --gtest_filter=POS[:POS...][-NEG...]
//     and --gtest_list_tests
//
// Death tests, mocks, typed tests, and test events are intentionally absent.
// Builds may swap in the real GoogleTest by pointing the include path at a
// system installation (see MAINLINE_USE_SYSTEM_GTEST in the top-level
// CMakeLists.txt); this header keeps the source-level API identical.

#pragma once
// The classic guard is kept alongside #pragma once so a real GoogleTest
// installation's gtest.h (which defines its own guard) cannot double-include
// through this shim under MAINLINE_USE_SYSTEM_GTEST include-path mixing.
#ifndef MINIGTEST_GTEST_H_
#define MINIGTEST_GTEST_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <ostream>
#include <sstream>
#include <string>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

namespace testing {

// ---------------------------------------------------------------------------
// Messages and assertion plumbing
// ---------------------------------------------------------------------------

/// Accumulates the `<< "context"` text users stream onto a failed assertion.
class Message {
 public:
  Message() = default;
  Message(const Message &other) { stream_ << other.GetString(); }

  template <typename T>
  Message &operator<<(const T &value) {
    stream_ << value;
    return *this;
  }

  // std::endl and friends.
  Message &operator<<(std::ostream &(*manip)(std::ostream &)) {
    stream_ << manip;
    return *this;
  }

  std::string GetString() const { return stream_.str(); }

 private:
  std::ostringstream stream_;
};

/// Result of evaluating one assertion; falsy results carry a failure message.
class AssertionResult {
 public:
  explicit AssertionResult(bool success) : success_(success) {}
  AssertionResult(bool success, std::string message)
      : success_(success), message_(std::move(message)) {}

  explicit operator bool() const { return success_; }
  const char *failure_message() const { return message_.c_str(); }

  template <typename T>
  AssertionResult &operator<<(const T &value) {
    std::ostringstream ss;
    ss << value;
    message_ += ss.str();
    return *this;
  }

 private:
  bool success_;
  std::string message_;
};

inline AssertionResult AssertionSuccess() { return AssertionResult(true); }
inline AssertionResult AssertionFailure() { return AssertionResult(false); }

namespace internal {

/// Per-process bookkeeping for the currently running test.
struct TestState {
  bool current_failed = false;
  bool any_failed = false;
  int fatal_depth = 0;  // Set when an ASSERT_* fails, so callers can bail.
};

inline TestState &State() {
  static TestState state;
  return state;
}

// --- value printing --------------------------------------------------------

template <typename T, typename = void>
struct IsStreamable : std::false_type {};
template <typename T>
struct IsStreamable<T, std::void_t<decltype(std::declval<std::ostream &>()
                                            << std::declval<const T &>())>>
    : std::true_type {};

template <typename T>
std::string PrintToString(const T &value) {
  std::ostringstream ss;
  if constexpr (std::is_same_v<T, bool>) {
    ss << (value ? "true" : "false");
  } else if constexpr (std::is_same_v<T, std::nullptr_t>) {
    ss << "nullptr";
  } else if constexpr (std::is_enum_v<T>) {
    ss << static_cast<std::underlying_type_t<T>>(value);
  } else if constexpr (std::is_same_v<T, signed char> ||
                       std::is_same_v<T, unsigned char>) {
    ss << static_cast<int>(value);
  } else if constexpr (std::is_pointer_v<T>) {
    if (value == nullptr) {
      ss << "nullptr";
    } else if constexpr (std::is_same_v<std::decay_t<T>, const char *> ||
                         std::is_same_v<std::decay_t<T>, char *>) {
      ss << '"' << value << '"';
    } else {
      ss << static_cast<const void *>(value);
    }
  } else if constexpr (IsStreamable<T>::value) {
    ss << value;
  } else {
    ss << sizeof(T) << "-byte object <unprintable>";
  }
  return ss.str();
}

// --- comparison helpers ----------------------------------------------------

template <typename Op, typename A, typename B>
AssertionResult CmpHelper(const char *op_text, const char *lhs_text,
                          const char *rhs_text, const A &lhs, const B &rhs,
                          Op op) {
  if (op(lhs, rhs)) return AssertionSuccess();
  std::ostringstream ss;
  ss << "Expected: (" << lhs_text << ") " << op_text << " (" << rhs_text
     << "), actual: " << PrintToString(lhs) << " vs " << PrintToString(rhs);
  return AssertionResult(false, ss.str());
}

// EQ gets its own helper so `EXPECT_EQ(ptr, nullptr)` and mixed-sign integer
// comparisons compile the same way they do under real GoogleTest.
template <typename A, typename B>
AssertionResult EqHelper(const char *lhs_text, const char *rhs_text,
                         const A &lhs, const B &rhs) {
  return CmpHelper(
      "==", lhs_text, rhs_text, lhs, rhs,
      [](const auto &a, const auto &b) { return a == b; });
}

template <typename T>
AssertionResult BoolHelper(const char *text, const T &value, bool expected) {
  if (static_cast<bool>(value) == expected) return AssertionSuccess();
  std::ostringstream ss;
  ss << "Value of: " << text << "\n  Actual: "
     << (static_cast<bool>(value) ? "true" : "false")
     << "\nExpected: " << (expected ? "true" : "false");
  return AssertionResult(false, ss.str());
}

inline AssertionResult NearHelper(const char *lhs_text, const char *rhs_text,
                                  const char *err_text, double lhs, double rhs,
                                  double abs_error) {
  const double diff = std::fabs(lhs - rhs);
  if (diff <= abs_error) return AssertionSuccess();
  std::ostringstream ss;
  ss << "The difference between " << lhs_text << " and " << rhs_text << " is "
     << diff << ", which exceeds " << err_text << ", where\n"
     << lhs_text << " evaluates to " << lhs << ",\n"
     << rhs_text << " evaluates to " << rhs << ", and\n"
     << err_text << " evaluates to " << abs_error << ".";
  return AssertionResult(false, ss.str());
}

inline AssertionResult DoubleEqHelper(const char *lhs_text,
                                      const char *rhs_text, double lhs,
                                      double rhs) {
  // Approximation of gtest's 4-ULP rule that is adequate for test tolerances.
  const double scale = std::fmax(std::fabs(lhs), std::fabs(rhs));
  const double bound = scale * 4.0 * 2.220446049250313e-16;  // 4 * DBL_EPSILON
  return NearHelper(lhs_text, rhs_text, "4 ULPs", lhs, rhs,
                    std::fmax(bound, 4.0 * 4.9406564584124654e-324));
}

/// Records a failure when a Message is assigned into it (mirrors gtest's
/// `AssertHelper(...) = Message() << ...` trick that enables streaming).
class AssertHelper {
 public:
  AssertHelper(bool fatal, const char *file, int line, const char *message)
      : fatal_(fatal), file_(file), line_(line), message_(message) {}

  void operator=(const Message &message) const {
    std::string user = message.GetString();
    std::fprintf(stderr, "%s:%d: Failure\n%s%s%s\n", file_, line_, message_,
                 user.empty() ? "" : "\n", user.c_str());
    State().current_failed = true;
    State().any_failed = true;
    if (fatal_) State().fatal_depth = 1;
  }

 private:
  bool fatal_;
  const char *file_;
  int line_;
  const char *message_;
};

}  // namespace internal

// ---------------------------------------------------------------------------
// Test fixtures
// ---------------------------------------------------------------------------

class Test {
 public:
  virtual ~Test() = default;
  static void SetUpTestSuite() {}
  static void TearDownTestSuite() {}

 protected:
  virtual void SetUp() {}
  virtual void TearDown() {}
  virtual void TestBody() = 0;

 public:
  // Invoked by the runner; public so the registry's erased callables can
  // reach it without befriending every generated class.
  void MiniGtestRun() {
    SetUp();
    if (internal::State().fatal_depth == 0) TestBody();
    TearDown();
  }
};

template <typename ParamT>
class TestWithParam : public Test {
 public:
  using ParamType = ParamT;
  // The parameter lives in a static slot written by the test factory before
  // the fixture is constructed, so GetParam() already works in constructors
  // and member initializers (as it does under real GoogleTest).
  const ParamType &GetParam() const { return *CurrentParam(); }

  static void MiniGtestSetParam(const ParamType *param) {
    CurrentParam() = param;
  }

 private:
  static const ParamType *&CurrentParam() {
    static const ParamType *param = nullptr;
    return param;
  }
};

/// Passed to INSTANTIATE_TEST_SUITE_P name generators.
template <typename ParamT>
struct TestParamInfo {
  ParamT param;
  size_t index;
};

// ---------------------------------------------------------------------------
// Parameter generators
// ---------------------------------------------------------------------------

template <typename T>
class ParamGenerator {
 public:
  ParamGenerator() = default;
  explicit ParamGenerator(std::vector<T> values) : values_(std::move(values)) {}
  const std::vector<T> &values() const { return values_; }

 private:
  std::vector<T> values_;
};

/// `Values(a, b, c)` deduces T from the first argument; an explicit
/// `Values<uint16_t>(1, 2, 3)` converts the rest to T, matching gtest.
template <typename T, typename... Rest>
ParamGenerator<T> Values(T first, Rest... rest) {
  return ParamGenerator<T>(
      std::vector<T>{std::move(first), static_cast<T>(rest)...});
}

template <typename Container>
ParamGenerator<typename Container::value_type> ValuesIn(
    const Container &container) {
  using T = typename Container::value_type;
  return ParamGenerator<T>(std::vector<T>(container.begin(), container.end()));
}

inline ParamGenerator<bool> Bool() {
  return ParamGenerator<bool>({false, true});
}

template <typename T>
ParamGenerator<T> Range(T begin, T end, T step = T(1)) {
  std::vector<T> values;
  for (T v = begin; v < end; v = static_cast<T>(v + step)) values.push_back(v);
  return ParamGenerator<T>(std::move(values));
}

template <typename Out, typename Partial>
void CombineImpl(std::vector<Out> &result, Partial partial) {
  result.push_back(std::apply(
      [](auto &&...elems) { return Out{std::forward<decltype(elems)>(elems)...}; },
      partial));
}

template <typename Out, typename Partial, typename T, typename... Rest>
void CombineImpl(std::vector<Out> &result, Partial partial,
                 const ParamGenerator<T> &head,
                 const ParamGenerator<Rest> &...tail) {
  for (const T &value : head.values()) {
    CombineImpl(result, std::tuple_cat(partial, std::make_tuple(value)),
                tail...);
  }
}

/// Cross product of the generators, first axis varying slowest (as gtest).
template <typename... Ts>
ParamGenerator<std::tuple<Ts...>> Combine(const ParamGenerator<Ts> &...gens) {
  std::vector<std::tuple<Ts...>> result;
  CombineImpl(result, std::tuple<>{}, gens...);
  return ParamGenerator<std::tuple<Ts...>>(std::move(result));
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

namespace internal {

using SuiteHook = void (*)();

struct RegisteredTest {
  std::string full_name;   // "Suite.Test" or "Inst/Suite.Test/Param"
  std::function<Test *()> factory;
  // The fixture's (possibly inherited) SetUpTestSuite/TearDownTestSuite,
  // resolved statically at registration. Called once per suite-name run.
  SuiteHook suite_setup = nullptr;
  SuiteHook suite_teardown = nullptr;
};

struct ParamTestDef {
  std::string test_name;
  // Creates the fixture and points it at the (type-erased) parameter.
  std::function<Test *(const void *)> factory;
  SuiteHook suite_setup = nullptr;
  SuiteHook suite_teardown = nullptr;
};

struct ParamInstantiation {
  std::string prefix;
  // (display name, boxed parameter) pairs, in generator order.
  std::vector<std::pair<std::string, std::shared_ptr<const void>>> params;
};

struct Registry {
  std::vector<RegisteredTest> tests;
  // Keyed by suite name; filled by TEST_P / INSTANTIATE_TEST_SUITE_P and
  // cross-multiplied lazily in ExpandParameterizedTests().
  std::map<std::string, std::vector<ParamTestDef>> param_tests;
  std::map<std::string, std::vector<ParamInstantiation>> param_instantiations;
  // Preserves suite registration order for stable output.
  std::vector<std::string> param_suite_order;
};

inline Registry &GetRegistry() {
  static Registry registry;
  return registry;
}

struct Registrar {
  Registrar(const char *suite, const char *name,
            std::function<Test *()> factory, SuiteHook setup,
            SuiteHook teardown) {
    GetRegistry().tests.push_back(
        {std::string(suite) + "." + name, std::move(factory), setup, teardown});
  }
};

struct ParamTestRegistrar {
  ParamTestRegistrar(const char *suite, const char *name,
                     std::function<Test *(const void *)> factory,
                     SuiteHook setup, SuiteHook teardown) {
    auto &registry = GetRegistry();
    if (registry.param_tests.find(suite) == registry.param_tests.end()) {
      registry.param_suite_order.push_back(suite);
    }
    registry.param_tests[suite].push_back(
        {name, std::move(factory), setup, teardown});
  }
};

template <typename Suite>
struct ParamInstantiationRegistrar {
  using ParamType = typename Suite::ParamType;
  using Namer = std::function<std::string(const TestParamInfo<ParamType> &)>;

  ParamInstantiationRegistrar(const char *prefix, const char *suite,
                              const ParamGenerator<ParamType> &gen) {
    Register(prefix, suite, gen, [](const TestParamInfo<ParamType> &info) {
      return std::to_string(info.index);
    });
  }

  template <typename NameGen>
  ParamInstantiationRegistrar(const char *prefix, const char *suite,
                              const ParamGenerator<ParamType> &gen,
                              NameGen namer) {
    Register(prefix, suite, gen,
             [namer](const TestParamInfo<ParamType> &info) {
               return std::string(namer(info));
             });
  }

 private:
  static void Register(const char *prefix, const char *suite,
                       const ParamGenerator<ParamType> &gen,
                       const Namer &namer) {
    ParamInstantiation inst;
    inst.prefix = prefix;
    size_t index = 0;
    for (const ParamType &value : gen.values()) {
      auto boxed = std::make_shared<ParamType>(value);
      inst.params.emplace_back(namer(TestParamInfo<ParamType>{value, index}),
                               std::shared_ptr<const void>(boxed));
      ++index;
    }
    GetRegistry().param_instantiations[suite].push_back(std::move(inst));
  }
};

inline void ExpandParameterizedTests() {
  auto &registry = GetRegistry();
  for (const std::string &suite : registry.param_suite_order) {
    const auto &defs = registry.param_tests[suite];
    auto inst_it = registry.param_instantiations.find(suite);
    if (inst_it == registry.param_instantiations.end()) continue;
    for (const ParamInstantiation &inst : inst_it->second) {
      for (const ParamTestDef &def : defs) {
        for (const auto &[param_name, boxed] : inst.params) {
          std::string full = inst.prefix + "/" + suite + "." + def.test_name +
                             "/" + param_name;
          auto factory = def.factory;
          auto param = boxed;
          registry.tests.push_back(
              {std::move(full),
               [factory, param]() { return factory(param.get()); },
               def.suite_setup, def.suite_teardown});
        }
      }
    }
  }
  registry.param_tests.clear();
  registry.param_instantiations.clear();
  registry.param_suite_order.clear();
}

// --- filtering (gtest-style glob lists) ------------------------------------

inline bool GlobMatch(const char *pattern, const char *text) {
  if (*pattern == '\0') return *text == '\0';
  if (*pattern == '*') {
    return GlobMatch(pattern + 1, text) ||
           (*text != '\0' && GlobMatch(pattern, text + 1));
  }
  if (*text == '\0') return false;
  if (*pattern == '?' || *pattern == *text) {
    return GlobMatch(pattern + 1, text + 1);
  }
  return false;
}

inline bool MatchesAnyGlob(const std::string &patterns,
                           const std::string &name) {
  size_t start = 0;
  while (start <= patterns.size()) {
    size_t colon = patterns.find(':', start);
    if (colon == std::string::npos) colon = patterns.size();
    std::string pattern = patterns.substr(start, colon - start);
    if (!pattern.empty() && GlobMatch(pattern.c_str(), name.c_str()))
      return true;
    start = colon + 1;
  }
  return false;
}

inline bool PassesFilter(const std::string &filter, const std::string &name) {
  if (filter.empty()) return true;
  std::string positive = filter, negative;
  size_t dash = filter.find('-');
  if (dash != std::string::npos) {
    positive = filter.substr(0, dash);
    negative = filter.substr(dash + 1);
  }
  if (positive.empty()) positive = "*";
  if (!MatchesAnyGlob(positive, name)) return false;
  if (!negative.empty() && MatchesAnyGlob(negative, name)) return false;
  return true;
}

inline int RunAllTests(const std::string &filter, bool list_only) {
  ExpandParameterizedTests();
  auto &registry = GetRegistry();

  std::vector<const RegisteredTest *> selected;
  for (const RegisteredTest &test : registry.tests) {
    if (PassesFilter(filter, test.full_name)) selected.push_back(&test);
  }

  // Group by suite name (stable, ordered by first appearance), as real
  // GoogleTest does: suite-level hooks must run exactly once per suite even
  // when declarations interleave suites in one file.
  const auto suite_of = [](const RegisteredTest *test) {
    return test->full_name.substr(0, test->full_name.find('.'));
  };
  std::map<std::string, size_t> suite_rank;
  for (const RegisteredTest &test : registry.tests) {
    suite_rank.emplace(test.full_name.substr(0, test.full_name.find('.')),
                       suite_rank.size());
  }
  std::stable_sort(selected.begin(), selected.end(),
                   [&](const RegisteredTest *a, const RegisteredTest *b) {
                     return suite_rank[suite_of(a)] < suite_rank[suite_of(b)];
                   });

  if (list_only) {
    for (const RegisteredTest *test : selected) {
      std::printf("%s\n", test->full_name.c_str());
    }
    return 0;
  }

  std::printf("[==========] Running %zu test(s).\n", selected.size());
  std::vector<std::string> failed;
  // Suite-level hooks fire on suite-name transitions (the sort above makes
  // each suite's selected tests contiguous).
  std::string current_suite;
  SuiteHook current_teardown = nullptr;
  for (const RegisteredTest *test : selected) {
    const std::string suite =
        test->full_name.substr(0, test->full_name.find('.'));
    if (suite != current_suite) {
      if (current_teardown != nullptr) current_teardown();
      current_suite = suite;
      current_teardown = test->suite_teardown;
      if (test->suite_setup != nullptr) test->suite_setup();
    }
    std::printf("[ RUN      ] %s\n", test->full_name.c_str());
    std::fflush(stdout);
    State().current_failed = false;
    State().fatal_depth = 0;
    {
      std::unique_ptr<Test> instance(test->factory());
      instance->MiniGtestRun();
    }
    if (State().current_failed) {
      failed.push_back(test->full_name);
      std::printf("[  FAILED  ] %s\n", test->full_name.c_str());
    } else {
      std::printf("[       OK ] %s\n", test->full_name.c_str());
    }
    std::fflush(stdout);
  }
  if (current_teardown != nullptr) current_teardown();
  std::printf("[==========] %zu test(s) ran.\n", selected.size());
  std::printf("[  PASSED  ] %zu test(s).\n", selected.size() - failed.size());
  if (!failed.empty()) {
    std::printf("[  FAILED  ] %zu test(s), listed below:\n", failed.size());
    for (const std::string &name : failed) {
      std::printf("[  FAILED  ] %s\n", name.c_str());
    }
  }
  return failed.empty() ? 0 : 1;
}

}  // namespace internal

inline void InitGoogleTest(int *, char **) {}
inline void InitGoogleTest() {}

}  // namespace testing

// ---------------------------------------------------------------------------
// Assertion macros
// ---------------------------------------------------------------------------

// The `switch (0) case 0: default:` guard makes a dangling-else-safe
// statement, exactly as real gtest does.
#define MINIGTEST_AMBIGUOUS_ELSE_BLOCKER_ \
  switch (0)                              \
  case 0:                                 \
  default:

#define MINIGTEST_ASSERT_(expression, on_failure)                       \
  MINIGTEST_AMBIGUOUS_ELSE_BLOCKER_                                     \
  if (const ::testing::AssertionResult minigtest_ar = (expression))     \
    ;                                                                   \
  else                                                                  \
    on_failure(minigtest_ar.failure_message())

#define MINIGTEST_NONFATAL_(message)                                  \
  ::testing::internal::AssertHelper(false, __FILE__, __LINE__,        \
                                    message) = ::testing::Message()
#define MINIGTEST_FATAL_(message)                                    \
  return ::testing::internal::AssertHelper(true, __FILE__, __LINE__, \
                                           message) = ::testing::Message()

#define MINIGTEST_CMP_(op_text, lhs, rhs, op, on_failure)                  \
  MINIGTEST_ASSERT_(                                                       \
      ::testing::internal::CmpHelper(                                      \
          op_text, #lhs, #rhs, (lhs), (rhs),                               \
          [](const auto &minigtest_a, const auto &minigtest_b) {           \
            return minigtest_a op minigtest_b;                             \
          }),                                                              \
      on_failure)

#define EXPECT_EQ(lhs, rhs)                                                  \
  MINIGTEST_ASSERT_(::testing::internal::EqHelper(#lhs, #rhs, (lhs), (rhs)), \
                    MINIGTEST_NONFATAL_)
#define ASSERT_EQ(lhs, rhs)                                                  \
  MINIGTEST_ASSERT_(::testing::internal::EqHelper(#lhs, #rhs, (lhs), (rhs)), \
                    MINIGTEST_FATAL_)

#define EXPECT_NE(lhs, rhs) MINIGTEST_CMP_("!=", lhs, rhs, !=, MINIGTEST_NONFATAL_)
#define ASSERT_NE(lhs, rhs) MINIGTEST_CMP_("!=", lhs, rhs, !=, MINIGTEST_FATAL_)
#define EXPECT_LT(lhs, rhs) MINIGTEST_CMP_("<", lhs, rhs, <, MINIGTEST_NONFATAL_)
#define ASSERT_LT(lhs, rhs) MINIGTEST_CMP_("<", lhs, rhs, <, MINIGTEST_FATAL_)
#define EXPECT_LE(lhs, rhs) MINIGTEST_CMP_("<=", lhs, rhs, <=, MINIGTEST_NONFATAL_)
#define ASSERT_LE(lhs, rhs) MINIGTEST_CMP_("<=", lhs, rhs, <=, MINIGTEST_FATAL_)
#define EXPECT_GT(lhs, rhs) MINIGTEST_CMP_(">", lhs, rhs, >, MINIGTEST_NONFATAL_)
#define ASSERT_GT(lhs, rhs) MINIGTEST_CMP_(">", lhs, rhs, >, MINIGTEST_FATAL_)
#define EXPECT_GE(lhs, rhs) MINIGTEST_CMP_(">=", lhs, rhs, >=, MINIGTEST_NONFATAL_)
#define ASSERT_GE(lhs, rhs) MINIGTEST_CMP_(">=", lhs, rhs, >=, MINIGTEST_FATAL_)

#define EXPECT_TRUE(condition)                                              \
  MINIGTEST_ASSERT_(                                                        \
      ::testing::internal::BoolHelper(#condition, (condition), true),       \
      MINIGTEST_NONFATAL_)
#define ASSERT_TRUE(condition)                                              \
  MINIGTEST_ASSERT_(                                                        \
      ::testing::internal::BoolHelper(#condition, (condition), true),       \
      MINIGTEST_FATAL_)
#define EXPECT_FALSE(condition)                                             \
  MINIGTEST_ASSERT_(                                                        \
      ::testing::internal::BoolHelper(#condition, (condition), false),      \
      MINIGTEST_NONFATAL_)
#define ASSERT_FALSE(condition)                                             \
  MINIGTEST_ASSERT_(                                                        \
      ::testing::internal::BoolHelper(#condition, (condition), false),      \
      MINIGTEST_FATAL_)

#define EXPECT_NEAR(lhs, rhs, abs_error)                                     \
  MINIGTEST_ASSERT_(::testing::internal::NearHelper(#lhs, #rhs, #abs_error,  \
                                                    (lhs), (rhs),            \
                                                    (abs_error)),            \
                    MINIGTEST_NONFATAL_)
#define ASSERT_NEAR(lhs, rhs, abs_error)                                     \
  MINIGTEST_ASSERT_(::testing::internal::NearHelper(#lhs, #rhs, #abs_error,  \
                                                    (lhs), (rhs),            \
                                                    (abs_error)),            \
                    MINIGTEST_FATAL_)

#define EXPECT_DOUBLE_EQ(lhs, rhs)                                          \
  MINIGTEST_ASSERT_(                                                        \
      ::testing::internal::DoubleEqHelper(#lhs, #rhs, (lhs), (rhs)),        \
      MINIGTEST_NONFATAL_)
#define ASSERT_DOUBLE_EQ(lhs, rhs)                                          \
  MINIGTEST_ASSERT_(                                                        \
      ::testing::internal::DoubleEqHelper(#lhs, #rhs, (lhs), (rhs)),        \
      MINIGTEST_FATAL_)

#define EXPECT_STREQ(lhs, rhs)                                              \
  MINIGTEST_ASSERT_(::testing::internal::EqHelper(#lhs, #rhs,               \
                                                  std::string(lhs),         \
                                                  std::string(rhs)),        \
                    MINIGTEST_NONFATAL_)
#define ASSERT_STREQ(lhs, rhs)                                              \
  MINIGTEST_ASSERT_(::testing::internal::EqHelper(#lhs, #rhs,               \
                                                  std::string(lhs),         \
                                                  std::string(rhs)),        \
                    MINIGTEST_FATAL_)

#define ADD_FAILURE() MINIGTEST_NONFATAL_("Failure")
#define FAIL() MINIGTEST_FATAL_("Failure")
#define SUCCEED() static_cast<void>(0)

// ---------------------------------------------------------------------------
// Test declaration macros
// ---------------------------------------------------------------------------

#define MINIGTEST_CLASS_NAME_(suite, name) suite##_##name##_MiniGTest

// The public MiniGtestSuite* wrappers exist because the inherited
// SetUpTestSuite/TearDownTestSuite may be protected in the fixture; they are
// accessible from the derived class body but not at namespace scope.
#define MINIGTEST_TEST_(suite, name, parent)                                  \
  class MINIGTEST_CLASS_NAME_(suite, name) : public parent {                  \
    void TestBody() override;                                                 \
                                                                              \
   public:                                                                    \
    static void MiniGtestSuiteSetUp() {                                       \
      MINIGTEST_CLASS_NAME_(suite, name)::SetUpTestSuite();                   \
    }                                                                         \
    static void MiniGtestSuiteTearDown() {                                    \
      MINIGTEST_CLASS_NAME_(suite, name)::TearDownTestSuite();                \
    }                                                                         \
  };                                                                          \
  static ::testing::internal::Registrar minigtest_registrar_##suite##_##name( \
      #suite, #name,                                                          \
      []() -> ::testing::Test * {                                             \
        return new MINIGTEST_CLASS_NAME_(suite, name)();                      \
      },                                                                      \
      &MINIGTEST_CLASS_NAME_(suite, name)::MiniGtestSuiteSetUp,               \
      &MINIGTEST_CLASS_NAME_(suite, name)::MiniGtestSuiteTearDown);           \
  void MINIGTEST_CLASS_NAME_(suite, name)::TestBody()

#define TEST(suite, name) MINIGTEST_TEST_(suite, name, ::testing::Test)
#define TEST_F(fixture, name) MINIGTEST_TEST_(fixture, name, fixture)

#define TEST_P(fixture, name)                                                 \
  class MINIGTEST_CLASS_NAME_(fixture, name) : public fixture {               \
    void TestBody() override;                                                 \
                                                                              \
   public:                                                                    \
    static void MiniGtestSuiteSetUp() {                                       \
      MINIGTEST_CLASS_NAME_(fixture, name)::SetUpTestSuite();                 \
    }                                                                         \
    static void MiniGtestSuiteTearDown() {                                    \
      MINIGTEST_CLASS_NAME_(fixture, name)::TearDownTestSuite();              \
    }                                                                         \
  };                                                                          \
  static ::testing::internal::ParamTestRegistrar                              \
      minigtest_param_registrar_##fixture##_##name(                           \
          #fixture, #name,                                                    \
          [](const void *param) -> ::testing::Test * {                        \
            fixture::MiniGtestSetParam(                                       \
                static_cast<const fixture::ParamType *>(param));              \
            return new MINIGTEST_CLASS_NAME_(fixture, name)();                \
          },                                                                  \
          &MINIGTEST_CLASS_NAME_(fixture, name)::MiniGtestSuiteSetUp,         \
          &MINIGTEST_CLASS_NAME_(fixture, name)::MiniGtestSuiteTearDown);     \
  void MINIGTEST_CLASS_NAME_(fixture, name)::TestBody()

#define INSTANTIATE_TEST_SUITE_P(prefix, fixture, ...)                 \
  static ::testing::internal::ParamInstantiationRegistrar<fixture>     \
      minigtest_instantiation_##prefix##_##fixture{#prefix, #fixture,  \
                                                   __VA_ARGS__}
// Legacy gtest spelling.
#define INSTANTIATE_TEST_CASE_P INSTANTIATE_TEST_SUITE_P

// ---------------------------------------------------------------------------
// main()
// ---------------------------------------------------------------------------

#if !defined(MINIGTEST_DONT_DEFINE_MAIN)
int main(int argc, char **argv) {
  std::string filter;
  bool list_only = false;
  for (int i = 1; i < argc; ++i) {
    const char *arg = argv[i];
    if (std::strncmp(arg, "--gtest_filter=", 15) == 0) {
      filter = arg + 15;
    } else if (std::strcmp(arg, "--gtest_list_tests") == 0) {
      list_only = true;
    }
    // Unknown flags (--gtest_color, etc.) are accepted and ignored.
  }
  return ::testing::internal::RunAllTests(filter, list_only);
}
#endif  // !MINIGTEST_DONT_DEFINE_MAIN

#endif  // MINIGTEST_GTEST_H_
