#include "gc/garbage_collector.h"

#include <unordered_set>

#include "metrics/engine_metrics.h"
#include "storage/data_table.h"
#include "storage/storage_util.h"
#include "storage/undo_record.h"
#include "transaction/transaction_context.h"
#include "transaction/transaction_manager.h"

namespace mainline::gc {

GarbageCollector::~GarbageCollector() {
  FullGC();
  // Anything left could not be reclaimed (should not happen once all
  // transactions have finished); free the contexts to avoid leaks.
  for (auto *txn : txns_to_unlink_) DeallocateTransaction(txn);
  for (auto &[ts, txn] : txns_to_deallocate_) DeallocateTransaction(txn);
}

std::pair<uint32_t, uint32_t> GarbageCollector::PerformGarbageCollection() {
  WriteObserver *observer = observer_.load(std::memory_order_acquire);
  if (observer != nullptr) observer->NewEpoch();
  const transaction::timestamp_t oldest = txn_manager_->OldestTransactionStartTime();
  const uint32_t deallocated = ProcessDeallocateQueue(oldest);
  ProcessDeferredActions(oldest);
  const uint32_t unlinked = ProcessUnlinkQueue(oldest);

  metrics::GcMetrics &gc_metrics = metrics::Gc();
  gc_metrics.txns_unlinked->Add(unlinked);
  gc_metrics.txns_deallocated->Add(deallocated);
  size_t pending_actions;
  {
    common::SpinLatch::ScopedSpinLatch guard(&actions_latch_);
    pending_actions = deferred_actions_.size();
  }
  gc_metrics.backlog->Set(static_cast<int64_t>(txns_to_unlink_.size() +
                                               txns_to_deallocate_.size() + pending_actions));
  return {deallocated, unlinked};
}

void GarbageCollector::FullGC() {
  // Two passes move everything through unlink; a third deallocates (the
  // deallocate epoch advances because CheckoutTimestamp ticks the counter).
  for (int i = 0; i < 3; i++) PerformGarbageCollection();
}

uint32_t GarbageCollector::ProcessUnlinkQueue(transaction::timestamp_t oldest) {
  std::vector<transaction::TransactionContext *> drained =
      txn_manager_->CompletedTransactionsForGC();
  // Feed the access observer at drain time: the GC epoch approximates each
  // modification's timestamp (Section 4.2).
  WriteObserver *observer = observer_.load(std::memory_order_acquire);
  if (observer != nullptr) {
    for (transaction::TransactionContext *txn : drained) {
      for (storage::UndoRecord *undo : txn->UndoRecords()) {
        if (undo->Table() == nullptr) continue;
        observer->ObserveWrite(undo->Slot().GetBlock());
      }
    }
  }
  txns_to_unlink_.insert(txns_to_unlink_.end(), drained.begin(), drained.end());

  uint32_t unlinked = 0;
  std::vector<transaction::TransactionContext *> still_pending;
  // Each version chain only needs truncating once per run.
  std::unordered_set<storage::TupleSlot> visited;
  const transaction::timestamp_t unlink_time = txn_manager_->CheckoutTimestamp();

  for (transaction::TransactionContext *txn : txns_to_unlink_) {
    if (txn->FinishTime() >= oldest) {
      // Still visible to some active transaction; retry next run.
      still_pending.push_back(txn);
      continue;
    }
    for (storage::UndoRecord *undo : txn->UndoRecords()) {
      storage::DataTable *table = undo->Table();
      if (table == nullptr) continue;  // never installed
      if (!visited.insert(undo->Slot()).second) continue;
      TruncateVersionChain(table, undo->Slot(), oldest);
    }
    txns_to_deallocate_.emplace_back(unlink_time, txn);
    unlinked++;
  }
  txns_to_unlink_ = std::move(still_pending);
  return unlinked;
}

void GarbageCollector::TruncateVersionChain(storage::DataTable *table, storage::TupleSlot slot,
                                            transaction::timestamp_t oldest) {
  std::atomic<storage::UndoRecord *> &version_ptr = table->Accessor().VersionPtr(slot);
  while (true) {
    storage::UndoRecord *head = version_ptr.load(std::memory_order_seq_cst);
    if (head == nullptr) return;
    // If even the newest record is invisible to every active and future
    // transaction, the whole chain can go. A concurrent writer may install a
    // new head and win the CAS race; retry in that case.
    if (head->Timestamp().load(std::memory_order_acquire) < oldest) {
      if (version_ptr.compare_exchange_strong(head, nullptr, std::memory_order_seq_cst)) return;
      continue;
    }
    break;
  }
  // The head must stay; walk down and cut at the first invisible record.
  // Only the GC modifies interior next pointers, so a plain store suffices;
  // concurrent readers see either the old tail (still allocated until the
  // deallocate epoch) or the shortened chain, both of which reconstruct the
  // same versions.
  storage::UndoRecord *cur = version_ptr.load(std::memory_order_seq_cst);
  while (cur != nullptr) {
    storage::UndoRecord *next = cur->Next().load(std::memory_order_acquire);
    if (next != nullptr && next->Timestamp().load(std::memory_order_acquire) < oldest) {
      cur->Next().store(nullptr, std::memory_order_release);
      return;
    }
    cur = next;
  }
}

uint32_t GarbageCollector::ProcessDeallocateQueue(transaction::timestamp_t oldest) {
  uint32_t deallocated = 0;
  std::vector<std::pair<transaction::timestamp_t, transaction::TransactionContext *>>
      still_pending;
  for (auto &[unlink_time, txn] : txns_to_deallocate_) {
    // Safe once every transaction that could have been traversing the
    // unlinked records (i.e. started before the unlink) has finished.
    if (unlink_time < oldest) {
      DeallocateTransaction(txn);
      deallocated++;
    } else {
      still_pending.emplace_back(unlink_time, txn);
    }
  }
  txns_to_deallocate_ = std::move(still_pending);
  return deallocated;
}

void GarbageCollector::DeallocateTransaction(transaction::TransactionContext *txn) {
  // Free owned varlen buffers referenced by before-images: after a committed
  // update or delete, the undo record holds the only reference to the old
  // value. Aborted transactions are excluded: their rollback restored the
  // before-image, so the block still references those buffers (the aborted
  // new values were freed eagerly at abort time instead).
  if (!txn->Aborted()) {
    for (storage::UndoRecord *undo : txn->UndoRecords()) {
      storage::DataTable *table = undo->Table();
      if (table == nullptr || undo->Type() == storage::DeltaType::kInsert) continue;
      storage::StorageUtil::DeallocateVarlensInDelta(table->GetLayout(), *undo->Delta());
    }
  }
  delete txn;
}

void GarbageCollector::RegisterDeferredAction(std::function<void()> action) {
  const transaction::timestamp_t now = txn_manager_->CheckoutTimestamp();
  common::SpinLatch::ScopedSpinLatch guard(&actions_latch_);
  deferred_actions_.emplace_back(now, std::move(action));
}

void GarbageCollector::ProcessDeferredActions(transaction::timestamp_t oldest) {
  std::vector<std::function<void()>> runnable;
  {
    common::SpinLatch::ScopedSpinLatch guard(&actions_latch_);
    std::vector<std::pair<transaction::timestamp_t, std::function<void()>>> still_pending;
    for (auto &[ts, action] : deferred_actions_) {
      if (ts < oldest) {
        runnable.push_back(std::move(action));
      } else {
        still_pending.emplace_back(ts, std::move(action));
      }
    }
    deferred_actions_ = std::move(still_pending);
  }
  for (auto &action : runnable) action();
}

}  // namespace mainline::gc
