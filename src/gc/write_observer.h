#pragma once

namespace mainline::storage {
class RawBlock;
}

namespace mainline::gc {

/// Interface the garbage collector reports block modifications through. The
/// GC already scans every finished transaction's undo records, which makes
/// it the natural (and free) place to learn which blocks are still being
/// written; anything that wants that signal — in practice the transform
/// layer's AccessObserver, which sits above gc/ — implements this interface
/// and registers itself via GarbageCollector::SetAccessObserver. The calls
/// happen on the GC thread, once per run plus once per touched block, so
/// virtual dispatch here is far off any transaction path.
class WriteObserver {
 public:
  virtual ~WriteObserver() = default;

  /// Called at the start of each GC run.
  virtual void NewEpoch() = 0;

  /// Called for every block touched by a transaction the GC processed.
  virtual void ObserveWrite(storage::RawBlock *block) = 0;
};

}  // namespace mainline::gc
