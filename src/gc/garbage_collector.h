#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "common/spin_latch.h"
#include "common/thread_annotations.h"
#include "common/typedefs.h"
#include "gc/write_observer.h"
#include "storage/data_table.h"
#include "storage/storage_defs.h"

namespace mainline::transaction {
class TransactionManager;
class TransactionContext;
}

namespace mainline::gc {

/// Epoch-based garbage collector (Section 3.3).
///
/// Each run proceeds in two phases over the queue of finished transactions:
///
/// 1. **Unlink**: transactions whose changes predate the oldest active
///    transaction's start are invisible to everyone; their version chains are
///    truncated (each chain exactly once per run, avoiding the quadratic
///    per-record unlink).
/// 2. **Deallocate**: unlinked records may still be traversed by readers that
///    started before the unlink, so each unlink batch is stamped with a fresh
///    timestamp and its memory is freed only once the oldest running
///    transaction started after that stamp — an epoch-protection mechanism.
///
/// The same mechanism generalizes to arbitrary deferred actions (used by the
/// gathering phase to reclaim replaced varlen buffers, Section 4.4).
class GarbageCollector {
 public:
  explicit GarbageCollector(transaction::TransactionManager *txn_manager)
      : txn_manager_(txn_manager) {}

  DISALLOW_COPY_AND_MOVE(GarbageCollector)

  ~GarbageCollector();

  /// Run one unlink + deallocate pass.
  /// \return {transactions deallocated, transactions unlinked}.
  std::pair<uint32_t, uint32_t> PerformGarbageCollection();

  /// Register an action to run once every transaction active now has
  /// finished (epoch protection for non-transactional memory reclamation).
  void RegisterDeferredAction(std::function<void()> action) EXCLUDES(actions_latch_);

  /// Attach (or detach, with nullptr) the access observer fed with per-block
  /// modification statistics. Atomic release store: tests detach observers
  /// while a GarbageCollectorThread may be mid-pass, and the paired acquire
  /// load in PerformGarbageCollection must see a fully constructed observer.
  void SetAccessObserver(WriteObserver *observer) {
    observer_.store(observer, std::memory_order_release);
  }

  /// Run GC to quiescence: repeated passes until nothing remains. Only safe
  /// when no transactions are running. Used at shutdown and in tests.
  void FullGC();

 private:
  uint32_t ProcessUnlinkQueue(transaction::timestamp_t oldest);
  uint32_t ProcessDeallocateQueue(transaction::timestamp_t oldest);
  void ProcessDeferredActions(transaction::timestamp_t oldest);
  static void TruncateVersionChain(storage::DataTable *table, storage::TupleSlot slot,
                                   transaction::timestamp_t oldest);
  static void DeallocateTransaction(transaction::TransactionContext *txn);

  transaction::TransactionManager *txn_manager_;
  std::atomic<WriteObserver *> observer_{nullptr};

  // GC-thread-only state: PerformGarbageCollection is single-caller by
  // contract (one GC thread, or tests calling it inline), so the two queues
  // need no latch — only the cross-thread deferred-action feed does.
  std::vector<transaction::TransactionContext *> txns_to_unlink_;
  std::vector<std::pair<transaction::timestamp_t, transaction::TransactionContext *>>
      txns_to_deallocate_;

  common::SpinLatch actions_latch_;
  std::vector<std::pair<transaction::timestamp_t, std::function<void()>>> deferred_actions_
      GUARDED_BY(actions_latch_);
};

}  // namespace mainline::gc
