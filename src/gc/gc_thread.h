#pragma once

#include <atomic>
#include <chrono>
#include <thread>

#include "common/macros.h"
#include "gc/garbage_collector.h"

namespace mainline::gc {

/// Runs a GarbageCollector on a dedicated thread at a fixed period (the
/// paper's setup uses one GC thread per 8 workers with a ~10 ms period).
class GarbageCollectorThread {
 public:
  GarbageCollectorThread(GarbageCollector *gc, std::chrono::microseconds period)
      : gc_(gc), period_(period) {
    thread_ = std::thread([this] {
      while (run_.load(std::memory_order_acquire)) {
        gc_->PerformGarbageCollection();
        std::this_thread::sleep_for(period_);
      }
    });
  }

  DISALLOW_COPY_AND_MOVE(GarbageCollectorThread)

  ~GarbageCollectorThread() {
    run_.store(false, std::memory_order_release);
    thread_.join();
    gc_->FullGC();
  }

 private:
  GarbageCollector *gc_;
  std::chrono::microseconds period_;
  std::atomic<bool> run_{true};
  std::thread thread_;
};

}  // namespace mainline::gc
