#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/macros.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace mainline::metrics {

/// Shards per metric. Worker threads hash onto shards by a thread-local
/// index, so concurrent hot-path updates from up to kNumShards threads never
/// contend on one cache line; more threads than shards share slots but stay
/// correct (the slots are atomics). Must be a power of two.
inline constexpr uint32_t kNumShards = 16;

/// The calling thread's stable shard index: assigned once per thread from a
/// global sequence, wrapped into [0, kNumShards). The same index keys the
/// plan profiler's per-worker elapsed slots, so "per worker" means the same
/// thing everywhere.
uint32_t ThreadShardIndex();

/// A monotonically increasing counter. Add is a relaxed atomic increment on
/// the caller's shard — no locks, no shared cache line between workers —
/// and is safe from any thread, including WorkerPool workers.
class Counter {
 public:
  DISALLOW_COPY_AND_MOVE(Counter)

  void Add(uint64_t delta) {
    // relaxed: the enabled flag is an on/off hint — a toggle may be observed
    // a few increments late, which the registry's contract allows.
    if (!enabled_->load(std::memory_order_relaxed)) return;
    // relaxed: sharded monotonic tally; readers sum shards and accept a live
    // lower bound (see Value), so no ordering is needed on the hot path.
    shards_[ThreadShardIndex()].value.fetch_add(delta, std::memory_order_relaxed);
  }

  /// Sum over all shards. Relaxed per-shard reads: the value is exact once
  /// the writers have quiesced, and a live lower bound while they run.
  uint64_t Value() const {
    uint64_t total = 0;
    // relaxed: exact once writers quiesce, a live lower bound while they
    // run — the doc comment above is the contract.
    for (const Shard &shard : shards_) total += shard.value.load(std::memory_order_relaxed);
    return total;
  }

 private:
  friend class MetricsRegistry;
  explicit Counter(const std::atomic<bool> *enabled) : enabled_(enabled) {}

  /// One cache line per shard: a worker's increments never invalidate
  /// another worker's line.
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };
  Shard shards_[kNumShards];
  const std::atomic<bool> *enabled_;
};

/// A point-in-time signed value (queue depths, backlogs). Gauges are
/// rare-path — typically written once per pass by one thread — so a single
/// padded slot suffices; Set/Add are still atomic for safety.
class Gauge {
 public:
  DISALLOW_COPY_AND_MOVE(Gauge)

  void Set(int64_t value) {
    // relaxed: enabled hint + point-in-time reading; a gauge carries no
    // ordering obligation toward the state it describes.
    if (!enabled_->load(std::memory_order_relaxed)) return;
    value_.store(value, std::memory_order_relaxed);
  }

  void Add(int64_t delta) {
    // relaxed: same contract as Set — atomicity for tear-freedom only.
    if (!enabled_->load(std::memory_order_relaxed)) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
  }

  // relaxed: a point-in-time reading; stale by the time it is used.
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  explicit Gauge(const std::atomic<bool> *enabled) : enabled_(enabled) {}

  alignas(64) std::atomic<int64_t> value_{0};
  const std::atomic<bool> *enabled_;
};

/// Aggregated view of one histogram: `counts[i]` is the number of observed
/// values <= `bounds[i]` (and greater than the previous bound); the final
/// entry of `counts` — one longer than `bounds` — is the overflow bucket.
struct HistogramData {
  std::vector<uint64_t> bounds;
  std::vector<uint64_t> counts;
  uint64_t total = 0;
  uint64_t sum = 0;

  /// The value at quantile `q` (clamped into [0, 1]), estimated from the
  /// buckets. Interpolation rule: the target rank is ceil(q * total),
  /// clamped into [1, total]; buckets are walked in order until the
  /// cumulative count reaches the rank, and the result interpolates
  /// linearly inside the winning bucket between its exclusive lower bound
  /// (the previous bound, or 0 for the first bucket) and its inclusive
  /// upper bound, proportional to the fraction of the bucket's count the
  /// rank consumes. A rank landing in the overflow bucket returns the last
  /// finite bound — a lower bound on the true value, since the bucket is
  /// unbounded above. An empty histogram returns 0.
  double ValueAtQuantile(double q) const;
};

/// A fixed-bucket histogram of unsigned values (typically microseconds).
/// Observe walks the (small, immutable) bound list and bumps the caller's
/// shard — the same lock-free discipline as Counter.
class Histogram {
 public:
  static constexpr size_t kMaxBuckets = 16;

  DISALLOW_COPY_AND_MOVE(Histogram)

  void Observe(uint64_t value) {
    // relaxed: enabled flag is an on/off hint, as in Counter::Add.
    if (!enabled_->load(std::memory_order_relaxed)) return;
    size_t bucket = bounds_.size();  // overflow unless a bound covers it
    for (size_t i = 0; i < bounds_.size(); i++) {
      if (value <= bounds_[i]) {
        bucket = i;
        break;
      }
    }
    Shard &shard = shards_[ThreadShardIndex()];
    // relaxed: sharded tallies, same discipline as Counter::Add — readers
    // aggregate after quiescing or accept a live approximation.
    shard.counts[bucket].fetch_add(1, std::memory_order_relaxed);
    shard.sum.fetch_add(value, std::memory_order_relaxed);
  }

  const std::vector<uint64_t> &Bounds() const { return bounds_; }

  HistogramData Value() const {
    HistogramData data;
    data.bounds = bounds_;
    data.counts.assign(bounds_.size() + 1, 0);
    // relaxed: aggregation accepts a live approximation; bucket counts and
    // sum may be mid-update relative to each other, which snapshots allow.
    for (const Shard &shard : shards_) {
      for (size_t i = 0; i < data.counts.size(); i++) {
        data.counts[i] += shard.counts[i].load(std::memory_order_relaxed);
      }
      data.sum += shard.sum.load(std::memory_order_relaxed);
    }
    for (const uint64_t count : data.counts) data.total += count;
    return data;
  }

 private:
  friend class MetricsRegistry;
  Histogram(const std::atomic<bool> *enabled, std::vector<uint64_t> bounds);

  /// Bucket slots padded as a group: one worker's shard (buckets + sum) is
  /// cache-line-aligned so false sharing cannot cross shards.
  struct alignas(64) Shard {
    std::atomic<uint64_t> counts[kMaxBuckets + 1] = {};
    std::atomic<uint64_t> sum{0};
  };
  std::vector<uint64_t> bounds_;  // ascending, immutable after registration
  Shard shards_[kNumShards];
  const std::atomic<bool> *enabled_;
};

/// One aggregated reading of every registered metric, keyed by name in a
/// std::map so iteration — and hence ToJson — is deterministic.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramData> histograms;

  /// What happened between `earlier` and this snapshot: counters and
  /// histogram buckets subtract (names missing from `earlier` count from
  /// zero); gauges are instantaneous, so the later reading stands.
  MetricsSnapshot Delta(const MetricsSnapshot &earlier) const;

  /// Machine-readable dump, stable key order:
  /// {"counters":{...},"gauges":{...},"histograms":{"name":{"bounds":[...],
  /// "counts":[...],"total":N,"sum":S}}}
  std::string ToJson() const;

  /// HistogramData::ValueAtQuantile over histogram `name` — the one
  /// percentile rule every bench and harness reports with (p50/p95/p99
  /// instead of hand-rolled bucket math). Returns 0 when no histogram of
  /// that name is in the snapshot.
  double ValueAtQuantile(const std::string &name, double q) const;
};

/// The engine-wide metric namespace. Metrics are registered once (by name —
/// re-registration returns the existing handle) behind a mutex, and the
/// returned handles are stable for the registry's lifetime; the hot path
/// never sees that mutex. `Global()` is what the engine's subsystems use;
/// tests can build private instances.
///
/// Collection defaults on and can be disabled with the environment variable
/// MAINLINE_METRICS=0 (or at runtime via SetEnabled) — handles stay valid
/// and updates become no-ops, so call sites never need a guard.
class MetricsRegistry {
 public:
  explicit MetricsRegistry(bool enabled = true) : enabled_(enabled) {}

  DISALLOW_COPY_AND_MOVE(MetricsRegistry)

  /// The process-wide registry; enabled state seeded from MAINLINE_METRICS.
  static MetricsRegistry &Global();

  Counter *RegisterCounter(std::string_view name) EXCLUDES(mutex_);
  Gauge *RegisterGauge(std::string_view name) EXCLUDES(mutex_);
  /// \param bounds ascending inclusive bucket upper bounds (at most
  ///        Histogram::kMaxBuckets); values above the last bound land in the
  ///        overflow bucket.
  Histogram *RegisterHistogram(std::string_view name, std::vector<uint64_t> bounds)
      EXCLUDES(mutex_);

  // relaxed: the flag gates future updates only; in-flight updates on other
  // threads may land after a disable, which the contract allows.
  void SetEnabled(bool enabled) { enabled_.store(enabled, std::memory_order_relaxed); }
  // relaxed: same hint semantics as SetEnabled.
  bool Enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Aggregate every registered metric. Takes the registration mutex (to
  /// walk the name maps), not any hot-path lock.
  MetricsSnapshot Snapshot() const EXCLUDES(mutex_);

 private:
  std::atomic<bool> enabled_;
  mutable common::Mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_ GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_ GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      GUARDED_BY(mutex_);
};

}  // namespace mainline::metrics
