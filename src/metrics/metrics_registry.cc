#include "metrics/metrics_registry.h"

#include <cmath>
#include <cstdlib>
#include <sstream>

#include "common/macros.h"

namespace mainline::metrics {

uint32_t ThreadShardIndex() {
  static std::atomic<uint32_t> next_thread{0};
  // relaxed: threads only need distinct draws from the sequence; no data is
  // published through this counter.
  thread_local const uint32_t index =
      next_thread.fetch_add(1, std::memory_order_relaxed) & (kNumShards - 1);
  return index;
}

Histogram::Histogram(const std::atomic<bool> *enabled, std::vector<uint64_t> bounds)
    : bounds_(std::move(bounds)), enabled_(enabled) {
  MAINLINE_ASSERT(bounds_.size() <= kMaxBuckets, "too many histogram buckets");
  for (size_t i = 1; i < bounds_.size(); i++) {
    MAINLINE_ASSERT(bounds_[i - 1] < bounds_[i], "histogram bounds must be strictly ascending");
  }
}

MetricsRegistry &MetricsRegistry::Global() {
  static MetricsRegistry registry = [] {
    const char *env = std::getenv("MAINLINE_METRICS");
    return MetricsRegistry(env == nullptr || std::string_view(env) != "0");
  }();
  return registry;
}

Counter *MetricsRegistry::RegisterCounter(std::string_view name) {
  common::MutexGuard guard(&mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::unique_ptr<Counter>(new Counter(&enabled_)))
             .first;
  }
  return it->second.get();
}

Gauge *MetricsRegistry::RegisterGauge(std::string_view name) {
  common::MutexGuard guard(&mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::unique_ptr<Gauge>(new Gauge(&enabled_))).first;
  }
  return it->second.get();
}

Histogram *MetricsRegistry::RegisterHistogram(std::string_view name,
                                              std::vector<uint64_t> bounds) {
  common::MutexGuard guard(&mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::unique_ptr<Histogram>(new Histogram(&enabled_, std::move(bounds))))
             .first;
  }
  return it->second.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  common::MutexGuard guard(&mutex_);
  MetricsSnapshot snapshot;
  for (const auto &[name, counter] : counters_) snapshot.counters[name] = counter->Value();
  for (const auto &[name, gauge] : gauges_) snapshot.gauges[name] = gauge->Value();
  for (const auto &[name, histogram] : histograms_) snapshot.histograms[name] = histogram->Value();
  return snapshot;
}

double HistogramData::ValueAtQuantile(double q) const {
  if (total == 0) return 0.0;
  const double clamped = q < 0.0 ? 0.0 : (q > 1.0 ? 1.0 : q);
  auto rank = static_cast<uint64_t>(std::ceil(clamped * static_cast<double>(total)));
  rank = rank < 1 ? 1 : (rank > total ? total : rank);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts.size(); i++) {
    if (cumulative + counts[i] < rank) {
      cumulative += counts[i];
      continue;
    }
    if (i >= bounds.size()) break;  // overflow bucket: no finite upper bound
    const double lower = i == 0 ? 0.0 : static_cast<double>(bounds[i - 1]);
    const double upper = static_cast<double>(bounds[i]);
    const double fraction =
        static_cast<double>(rank - cumulative) / static_cast<double>(counts[i]);
    return lower + (upper - lower) * fraction;
  }
  return bounds.empty() ? 0.0 : static_cast<double>(bounds.back());
}

double MetricsSnapshot::ValueAtQuantile(const std::string &name, double q) const {
  const auto it = histograms.find(name);
  return it == histograms.end() ? 0.0 : it->second.ValueAtQuantile(q);
}

MetricsSnapshot MetricsSnapshot::Delta(const MetricsSnapshot &earlier) const {
  MetricsSnapshot delta;
  for (const auto &[name, value] : counters) {
    const auto it = earlier.counters.find(name);
    delta.counters[name] = value - (it == earlier.counters.end() ? 0 : it->second);
  }
  // Gauges are instantaneous readings, not accumulations: the later value is
  // the state of the world at the end of the interval.
  delta.gauges = gauges;
  for (const auto &[name, data] : histograms) {
    const auto it = earlier.histograms.find(name);
    if (it == earlier.histograms.end()) {
      delta.histograms[name] = data;
      continue;
    }
    HistogramData diff = data;
    const HistogramData &before = it->second;
    for (size_t i = 0; i < diff.counts.size() && i < before.counts.size(); i++) {
      diff.counts[i] -= before.counts[i];
    }
    diff.total -= before.total;
    diff.sum -= before.sum;
    delta.histograms[name] = std::move(diff);
  }
  return delta;
}

namespace {

// The names this engine registers are dot-separated ASCII identifiers, so
// escaping only needs to survive the unexpected, not full JSON strings.
void AppendJsonString(std::ostringstream *out, const std::string &text) {
  *out << '"';
  for (const char c : text) {
    if (c == '"' || c == '\\') *out << '\\';
    *out << c;
  }
  *out << '"';
}

void AppendJsonArray(std::ostringstream *out, const std::vector<uint64_t> &values) {
  *out << '[';
  for (size_t i = 0; i < values.size(); i++) {
    if (i > 0) *out << ',';
    *out << values[i];
  }
  *out << ']';
}

}  // namespace

std::string MetricsSnapshot::ToJson() const {
  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  for (const auto &[name, value] : counters) {
    if (!first) out << ',';
    first = false;
    AppendJsonString(&out, name);
    out << ':' << value;
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto &[name, value] : gauges) {
    if (!first) out << ',';
    first = false;
    AppendJsonString(&out, name);
    out << ':' << value;
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto &[name, data] : histograms) {
    if (!first) out << ',';
    first = false;
    AppendJsonString(&out, name);
    out << ":{\"bounds\":";
    AppendJsonArray(&out, data.bounds);
    out << ",\"counts\":";
    AppendJsonArray(&out, data.counts);
    out << ",\"total\":" << data.total << ",\"sum\":" << data.sum << '}';
  }
  out << "}}";
  return out.str();
}

}  // namespace mainline::metrics
