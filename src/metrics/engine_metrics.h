#pragma once

#include "metrics/metrics_registry.h"

// Pre-registered handles for every metric the engine's subsystems emit, so
// hot paths pay one function-local-static check plus a relaxed sharded
// increment — never a registry lookup. Each accessor registers its metrics
// on first use against MetricsRegistry::Global() and returns the same struct
// forever after; all handles are safe from any thread, including WorkerPool
// workers. The dotted names below are the keys that appear in
// MetricsSnapshot::ToJson().

namespace mainline::metrics {

/// storage.* — DataTable write paths.
struct StorageMetrics {
  Counter *inserts;               ///< storage.inserts — tuples inserted
  Counter *updates;               ///< storage.updates — successful in-place updates
  Counter *deletes;               ///< storage.deletes — successful logical deletes
  Counter *write_write_conflicts; ///< storage.write_write_conflicts — first-writer-wins losses
  Counter *varlen_bytes;          ///< storage.varlen_bytes — bytes of varlen payload copied in
};
StorageMetrics &Storage();

/// txn.* — transaction lifecycle.
struct TxnMetrics {
  Counter *begins;   ///< txn.begins
  Counter *commits;  ///< txn.commits
  Counter *aborts;   ///< txn.aborts
};
TxnMetrics &Txn();

/// gc.* — epoch-based garbage collection progress and backlog.
struct GcMetrics {
  Counter *txns_unlinked;     ///< gc.txns_unlinked — version chains unlinked
  Counter *txns_deallocated;  ///< gc.txns_deallocated — txns whose buffers were freed
  Gauge *backlog;             ///< gc.backlog — txns + deferred actions still queued after a pass
};
GcMetrics &Gc();

/// transform.* — the hot→frozen pipeline (TransformStats folded in per pass).
struct TransformMetrics {
  Counter *passes;                ///< transform.passes — RunOnce invocations
  Counter *blocks_frozen;         ///< transform.blocks_frozen
  Counter *blocks_freed;          ///< transform.blocks_freed — emptied by compaction
  Counter *tuples_moved;          ///< transform.tuples_moved — compaction relocations
  Counter *compaction_aborts;     ///< transform.compaction_aborts — lost to concurrent writers
  Gauge *observer_queue_depth;    ///< transform.observer_queue_depth — blocks awaiting cold check
  Histogram *pass_us;             ///< transform.pass_us — RunOnce wall time
  Histogram *freeze_lag_us;       ///< transform.freeze_lag_us — cold-collection → frozen latency
};
TransformMetrics &Transform();

/// pool.* — WorkerPool task flow.
struct PoolMetrics {
  Counter *tasks_run;        ///< pool.tasks_run — tasks executed by workers
  Histogram *queue_wait_us;  ///< pool.queue_wait_us — submit → start latency
};
PoolMetrics &Pool();

/// scan.* — morsel-driven parallel scans.
struct ScanMetrics {
  Counter *rows;           ///< scan.rows — tuples surfaced to consumers
  Counter *frozen_blocks;  ///< scan.frozen_blocks — blocks read zero-copy
  Counter *hot_blocks;     ///< scan.hot_blocks — blocks materialized transactionally
  Counter *morsel_scans;   ///< scan.morsel_scans — ParallelTableScanner::Scan calls
};
ScanMetrics &Scan();

}  // namespace mainline::metrics
