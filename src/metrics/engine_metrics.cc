#include "metrics/engine_metrics.h"

#include "common/pool_telemetry.h"

namespace mainline::metrics {

namespace {

// Static registrar that points common::WorkerPool's telemetry hook at the
// pool.* handles. Lives here rather than in common/ so the dependency runs
// strictly upward: the pool knows only the hook, and linking the metrics
// objects is what turns pool accounting on. The sink resolves Pool() per
// call (a function-local-static check), so installation order against other
// static initializers does not matter.
const bool pool_telemetry_installed = [] {
  common::PoolTelemetry::Install(+[](uint64_t queue_wait_us) {
    PoolMetrics &pool = Pool();
    pool.queue_wait_us->Observe(queue_wait_us);
    pool.tasks_run->Add(1);
  });
  return true;
}();

}  // namespace

StorageMetrics &Storage() {
  static StorageMetrics handles = [] {
    MetricsRegistry &r = MetricsRegistry::Global();
    return StorageMetrics{
        r.RegisterCounter("storage.inserts"),
        r.RegisterCounter("storage.updates"),
        r.RegisterCounter("storage.deletes"),
        r.RegisterCounter("storage.write_write_conflicts"),
        r.RegisterCounter("storage.varlen_bytes"),
    };
  }();
  return handles;
}

TxnMetrics &Txn() {
  static TxnMetrics handles = [] {
    MetricsRegistry &r = MetricsRegistry::Global();
    return TxnMetrics{
        r.RegisterCounter("txn.begins"),
        r.RegisterCounter("txn.commits"),
        r.RegisterCounter("txn.aborts"),
    };
  }();
  return handles;
}

GcMetrics &Gc() {
  static GcMetrics handles = [] {
    MetricsRegistry &r = MetricsRegistry::Global();
    return GcMetrics{
        r.RegisterCounter("gc.txns_unlinked"),
        r.RegisterCounter("gc.txns_deallocated"),
        r.RegisterGauge("gc.backlog"),
    };
  }();
  return handles;
}

TransformMetrics &Transform() {
  static TransformMetrics handles = [] {
    MetricsRegistry &r = MetricsRegistry::Global();
    return TransformMetrics{
        r.RegisterCounter("transform.passes"),
        r.RegisterCounter("transform.blocks_frozen"),
        r.RegisterCounter("transform.blocks_freed"),
        r.RegisterCounter("transform.tuples_moved"),
        r.RegisterCounter("transform.compaction_aborts"),
        r.RegisterGauge("transform.observer_queue_depth"),
        r.RegisterHistogram("transform.pass_us", {100, 1000, 10000, 100000, 1000000}),
        r.RegisterHistogram("transform.freeze_lag_us",
                            {1000, 10000, 100000, 1000000, 10000000}),
    };
  }();
  return handles;
}

PoolMetrics &Pool() {
  static PoolMetrics handles = [] {
    MetricsRegistry &r = MetricsRegistry::Global();
    return PoolMetrics{
        r.RegisterCounter("pool.tasks_run"),
        r.RegisterHistogram("pool.queue_wait_us", {1, 10, 100, 1000, 10000, 100000}),
    };
  }();
  return handles;
}

ScanMetrics &Scan() {
  static ScanMetrics handles = [] {
    MetricsRegistry &r = MetricsRegistry::Global();
    return ScanMetrics{
        r.RegisterCounter("scan.rows"),
        r.RegisterCounter("scan.frozen_blocks"),
        r.RegisterCounter("scan.hot_blocks"),
        r.RegisterCounter("scan.morsel_scans"),
    };
  }();
  return handles;
}

}  // namespace mainline::metrics
