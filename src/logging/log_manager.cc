#include "logging/log_manager.h"

#include <fcntl.h>
#include <unistd.h>

#include <chrono>

#include "common/typedefs.h"
#include "storage/block_layout.h"
#include "storage/data_table.h"
#include "storage/projected_row.h"
#include "storage/varlen_entry.h"

namespace mainline::logging {

LogManager::LogManager(std::string log_file_path)
    : log_file_path_(std::move(log_file_path)) {
  fd_ = open(log_file_path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  MAINLINE_ASSERT(fd_ >= 0, "failed to open log file");
}

LogManager::~LogManager() {
  Shutdown();
  if (fd_ >= 0) close(fd_);
}

void LogManager::Start() {
  // ordering: seq_cst exchange on a once-per-process-lifetime control path;
  // the full fence costs nothing here and makes Start/Shutdown races trivial
  // to reason about (exactly one exchange observes the transition).
  if (run_flush_thread_.exchange(true)) return;
  flush_thread_ = std::thread([this] { FlushLoop(); });
}

void LogManager::Shutdown() {
  // ordering: seq_cst exchange, mirror of Start — cold path, and exactly one
  // caller wins the transition and joins the thread.
  if (run_flush_thread_.exchange(false)) {
    flush_cv_.NotifyAll();
    flush_thread_.join();
  }
  ForceFlush();
}

void LogManager::Submit(const LogSubmission &submission) {
  {
    common::MutexGuard lock(&queue_latch_);
    flush_queue_.push_back(submission);
  }
  flush_cv_.NotifyOne();
}

void LogManager::FlushLoop() {
  while (run_flush_thread_.load(std::memory_order_acquire)) {
    {
      common::MutexGuard lock(&queue_latch_);
      // Bounded wait (group-commit batching window): on timeout we flush
      // whatever accumulated rather than sleeping until the next enqueue.
      while (flush_queue_.empty() && run_flush_thread_.load(std::memory_order_acquire)) {
        if (!flush_cv_.WaitFor(&lock, std::chrono::milliseconds(5))) break;
      }
    }
    ForceFlush();
  }
}

void LogManager::ForceFlush() {
  std::vector<LogSubmission> batch;
  {
    common::MutexGuard lock(&queue_latch_);
    batch.swap(flush_queue_);
  }
  if (batch.empty()) return;

  std::vector<std::pair<CommitRecord::DurabilityCallback, void *>> callbacks;
  for (const LogSubmission &submission : batch) ProcessSubmission(submission, &callbacks);
  FlushAndSync();
  // Group commit: only after fsync do the transactions' results become
  // publishable to clients.
  for (auto &[callback, arg] : callbacks) {
    if (callback != nullptr) callback(arg);
  }
  // Now that the records are serialized, report each submission upward (the
  // transaction layer forwards it to the GC, which may then reclaim its
  // buffers).
  if (finished_callback_ != nullptr) {
    for (const LogSubmission &submission : batch) {
      finished_callback_(finished_context_, submission.handle);
    }
  }
}

void LogManager::ProcessSubmission(
    const LogSubmission &submission,
    std::vector<std::pair<CommitRecord::DurabilityCallback, void *>> *callbacks) {
  for (const LogRecord *record : *submission.records) {
    if (record->RecordType() == LogRecordType::kCommit) {
      const auto *commit = record->GetUnderlyingRecordBodyAs<CommitRecord>();
      callbacks->emplace_back(commit->Callback(), commit->CallbackArg());
      // The log manager skips writing read-only commit records to disk after
      // processing the callback (Section 3.4).
      if (commit->IsReadOnly()) continue;
    }
    SerializeRecord(*record);
  }
}

void LogManager::SerializeRecord(const LogRecord &record) {
  WriteValue(static_cast<uint8_t>(record.RecordType()));
  WriteValue(record.TxnBegin());
  switch (record.RecordType()) {
    case LogRecordType::kRedo: {
      const auto *redo = record.GetUnderlyingRecordBodyAs<RedoRecord>();
      MAINLINE_ASSERT(table_resolver_ != nullptr, "table resolver required for redo records");
      const storage::DataTable *table = table_resolver_(redo->TableOid());
      const storage::BlockLayout &layout = table->GetLayout();
      WriteValue(redo->TableOid().UnderlyingValue());
      WriteValue(static_cast<uint64_t>(redo->Slot().RawBytes()));
      WriteValue(static_cast<uint8_t>(redo->IsInsert() ? 1 : 0));
      const storage::ProjectedRow *delta = redo->Delta();
      WriteValue(delta->NumColumns());
      for (uint16_t i = 0; i < delta->NumColumns(); i++) {
        WriteValue(delta->ColumnIds()[i].UnderlyingValue());
      }
      // Values are serialized by content; varlen contents are inlined so the
      // log is self-contained across restarts.
      for (uint16_t i = 0; i < delta->NumColumns(); i++) {
        const storage::col_id_t col = delta->ColumnIds()[i];
        const byte *value = delta->AccessWithNullCheck(i);
        WriteValue(static_cast<uint8_t>(value == nullptr ? 0 : 1));
        if (value == nullptr) continue;
        if (layout.IsVarlen(col)) {
          const auto *entry = reinterpret_cast<const storage::VarlenEntry *>(value);
          WriteValue(entry->Size());
          WriteBytes(entry->Content(), entry->Size());
        } else {
          WriteBytes(value, layout.AttrSize(col));
        }
      }
      break;
    }
    case LogRecordType::kDelete: {
      const auto *del = record.GetUnderlyingRecordBodyAs<DeleteRecord>();
      WriteValue(del->TableOid().UnderlyingValue());
      WriteValue(static_cast<uint64_t>(del->Slot().RawBytes()));
      break;
    }
    case LogRecordType::kCommit: {
      const auto *commit = record.GetUnderlyingRecordBodyAs<CommitRecord>();
      WriteValue(commit->CommitTime());
      break;
    }
    case LogRecordType::kAbort:
      break;
  }
  // relaxed: monotonic statistic read by tests and monitors; readers need a
  // current-ish value, not ordering against the serialized bytes.
  records_written_.fetch_add(1, std::memory_order_relaxed);
}

void LogManager::FlushAndSync() {
  if (!out_buffer_.empty()) {
    ssize_t written = write(fd_, out_buffer_.data(), out_buffer_.size());
    MAINLINE_ASSERT(written == static_cast<ssize_t>(out_buffer_.size()), "short write to log");
    (void)written;
    // relaxed: same as records_written_ — a monitoring tally, no ordering.
    bytes_written_.fetch_add(out_buffer_.size(), std::memory_order_relaxed);
    out_buffer_.clear();
  }
  fsync(fd_);
}

}  // namespace mainline::logging
