#pragma once

#include <cstdint>
#include <cstring>

#include "common/macros.h"
#include "common/typedefs.h"
#include "storage/projected_row.h"
#include "storage/storage_defs.h"

namespace mainline::transaction {
class TransactionContext;
}

namespace mainline::logging {

/// Kind of a write-ahead log record (Section 3.4).
enum class LogRecordType : uint8_t {
  /// Physical after-image of an insert or update.
  kRedo = 1,
  /// Tuple deletion.
  kDelete,
  /// Transaction commit; carries the durability callback.
  kCommit,
  /// Transaction abort (only present if records were flushed incrementally).
  kAbort,
};

/// Generic header of every log record. Records live in a transaction's redo
/// buffer and are later serialized to disk by the log manager. The system
/// orders records implicitly by their transaction's commit timestamp instead
/// of log sequence numbers.
class LogRecord {
 public:
  LogRecord() = delete;
  DISALLOW_COPY_AND_MOVE(LogRecord)

  LogRecordType RecordType() const { return type_; }
  uint32_t Size() const { return size_; }

  /// Begin timestamp of the owning transaction (identifies the transaction in
  /// the serialized log).
  transaction::timestamp_t TxnBegin() const { return txn_begin_; }

  /// Reinterpret the body as the given record type.
  template <class T>
  T *GetUnderlyingRecordBodyAs() {
    MAINLINE_ASSERT(T::RecordType() == type_, "log record type mismatch");
    return reinterpret_cast<T *>(varlen_contents_);
  }
  template <class T>
  const T *GetUnderlyingRecordBodyAs() const {
    MAINLINE_ASSERT(T::RecordType() == type_, "log record type mismatch");
    return reinterpret_cast<const T *>(varlen_contents_);
  }

  static LogRecord *InitializeHeader(byte *head, LogRecordType type, uint32_t size,
                                     transaction::timestamp_t txn_begin) {
    auto *result = reinterpret_cast<LogRecord *>(head);
    result->size_ = size;
    result->type_ = type;
    result->txn_begin_ = txn_begin;
    return result;
  }

 private:
  uint32_t size_;
  LogRecordType type_;
  uint8_t padding_[3];
  transaction::timestamp_t txn_begin_;
  byte varlen_contents_[0];
};

static_assert(sizeof(LogRecord) == 16, "LogRecord header layout");

/// Body of a kRedo record: the after-image of an insert or update.
class RedoRecord {
 public:
  static constexpr LogRecordType RecordType() { return LogRecordType::kRedo; }

  catalog::table_oid_t TableOid() const { return table_oid_; }
  storage::TupleSlot Slot() const { return slot_; }
  /// Inserts create new tuples at replay; updates modify remapped ones.
  bool IsInsert() const { return is_insert_; }

  /// Set after DataTable::Insert determines the slot.
  void SetSlot(storage::TupleSlot slot) { slot_ = slot; }

  /// The after-image values.
  storage::ProjectedRow *Delta() {
    return reinterpret_cast<storage::ProjectedRow *>(varlen_contents_);
  }
  const storage::ProjectedRow *Delta() const {
    return reinterpret_cast<const storage::ProjectedRow *>(varlen_contents_);
  }

  static uint32_t Size(const storage::ProjectedRowInitializer &initializer) {
    return static_cast<uint32_t>(sizeof(LogRecord) + sizeof(RedoRecord)) +
           initializer.ProjectedRowSize();
  }

  static LogRecord *Initialize(byte *head, transaction::timestamp_t txn_begin,
                               catalog::table_oid_t table_oid, bool is_insert,
                               const storage::ProjectedRowInitializer &initializer) {
    LogRecord *record = LogRecord::InitializeHeader(head, LogRecordType::kRedo,
                                                    Size(initializer), txn_begin);
    auto *body = record->GetUnderlyingRecordBodyAs<RedoRecord>();
    body->table_oid_ = table_oid;
    body->slot_ = storage::TupleSlot();
    body->is_insert_ = is_insert;
    initializer.InitializeRow(body->varlen_contents_);
    return record;
  }

  /// Initialize a redo record whose delta is a byte-wise copy of `redo`.
  static LogRecord *InitializeByCopy(byte *head, transaction::timestamp_t txn_begin,
                                     catalog::table_oid_t table_oid, bool is_insert,
                                     const storage::ProjectedRow &redo) {
    const auto size =
        static_cast<uint32_t>(sizeof(LogRecord) + sizeof(RedoRecord)) + redo.Size();
    LogRecord *record = LogRecord::InitializeHeader(head, LogRecordType::kRedo, size, txn_begin);
    auto *body = record->GetUnderlyingRecordBodyAs<RedoRecord>();
    body->table_oid_ = table_oid;
    body->slot_ = storage::TupleSlot();
    body->is_insert_ = is_insert;
    std::memcpy(static_cast<void *>(body->varlen_contents_),
                static_cast<const void *>(&redo), redo.Size());
    return record;
  }

 private:
  catalog::table_oid_t table_oid_;
  bool is_insert_;
  uint8_t padding_[3];
  storage::TupleSlot slot_;
  byte varlen_contents_[0];
};

static_assert(sizeof(RedoRecord) == 16, "RedoRecord body layout");

/// Body of a kDelete record.
class DeleteRecord {
 public:
  static constexpr LogRecordType RecordType() { return LogRecordType::kDelete; }

  catalog::table_oid_t TableOid() const { return table_oid_; }
  storage::TupleSlot Slot() const { return slot_; }

  static uint32_t Size() {
    return static_cast<uint32_t>(sizeof(LogRecord) + sizeof(DeleteRecord));
  }

  static LogRecord *Initialize(byte *head, transaction::timestamp_t txn_begin,
                               catalog::table_oid_t table_oid, storage::TupleSlot slot) {
    LogRecord *record =
        LogRecord::InitializeHeader(head, LogRecordType::kDelete, Size(), txn_begin);
    auto *body = record->GetUnderlyingRecordBodyAs<DeleteRecord>();
    body->table_oid_ = table_oid;
    body->slot_ = slot;
    return record;
  }

 private:
  catalog::table_oid_t table_oid_;
  uint8_t padding_[4];
  storage::TupleSlot slot_;
};

/// Body of a kCommit record. Embeds a function pointer invoked by the log
/// manager once the record is persistent (Section 3.4); the DBMS withholds
/// the transaction's result from the client until then.
class CommitRecord {
 public:
  static constexpr LogRecordType RecordType() { return LogRecordType::kCommit; }

  using DurabilityCallback = void (*)(void *);

  transaction::timestamp_t CommitTime() const { return commit_time_; }
  bool IsReadOnly() const { return is_read_only_; }
  DurabilityCallback Callback() const { return callback_; }
  void *CallbackArg() const { return callback_arg_; }
  transaction::TransactionContext *Txn() const { return txn_; }

  static uint32_t Size() {
    return static_cast<uint32_t>(sizeof(LogRecord) + sizeof(CommitRecord));
  }

  static LogRecord *Initialize(byte *head, transaction::timestamp_t txn_begin,
                               transaction::timestamp_t commit_time, bool is_read_only,
                               DurabilityCallback callback, void *callback_arg,
                               transaction::TransactionContext *txn) {
    LogRecord *record =
        LogRecord::InitializeHeader(head, LogRecordType::kCommit, Size(), txn_begin);
    auto *body = record->GetUnderlyingRecordBodyAs<CommitRecord>();
    body->commit_time_ = commit_time;
    body->is_read_only_ = is_read_only;
    body->callback_ = callback;
    body->callback_arg_ = callback_arg;
    body->txn_ = txn;
    return record;
  }

 private:
  transaction::timestamp_t commit_time_;
  DurabilityCallback callback_;
  void *callback_arg_;
  transaction::TransactionContext *txn_;
  bool is_read_only_;
  uint8_t padding_[7];
};

}  // namespace mainline::logging
