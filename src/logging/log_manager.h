#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common/macros.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/typedefs.h"
#include "logging/log_record.h"
#include "storage/data_table.h"
#include "storage/record_buffer.h"

namespace mainline::logging {

/// One transaction's staged log records, as handed to the LogManager at
/// commit. The records vector must stay alive and unmodified until the
/// finished callback reports `handle` back — the log manager reads it from
/// the serializer thread. `handle` is opaque to logging; the layer above
/// (the transaction manager) uses it to identify the transaction.
struct LogSubmission {
  const std::vector<LogRecord *> *records;
  void *handle;
};

/// Write-ahead log manager (Section 3.4). Committing transactions enqueue
/// their redo buffers; a background thread serializes the records into an
/// on-disk format, flushes with fsync (group commit), and then invokes the
/// commit callbacks embedded in the commit records. The rest of the system
/// treats a transaction as committed as soon as its commit record is
/// enqueued, but its result is not released to the client until the callback
/// fires.
///
/// Read-only transactions also pass through the queue (to guard against the
/// speculative-read anomaly described in the paper) but their commit records
/// are not written to disk.
///
/// A submission is reported back through the finished callback only after
/// its records are serialized; the transaction layer uses that signal to
/// forward the transaction to the garbage collector, so the GC can never
/// reclaim varlen buffers the serializer still references. The log manager
/// itself knows nothing about transactions — it sees record vectors and
/// opaque handles.
class LogManager {
 public:
  /// Resolves a table oid to its DataTable so the serializer can interpret
  /// attribute sizes and varlen columns. Installed by the catalog.
  using TableResolver = std::function<storage::DataTable *(catalog::table_oid_t)>;

  /// Invoked once per submission after its records are serialized and the
  /// batch is durable. `context` is the pointer given to
  /// SetFinishedCallback; `handle` is the submission's handle.
  using FinishedCallback = void (*)(void *context, void *handle);

  /// \param log_file_path file the serialized log is appended to
  explicit LogManager(std::string log_file_path);

  DISALLOW_COPY_AND_MOVE(LogManager)

  ~LogManager();

  /// Spawn the background serializer thread.
  void Start();

  /// Drain the queue, flush, and join the background thread.
  void Shutdown() EXCLUDES(queue_latch_);

  /// Enqueue one committed (or read-only) transaction's staged records.
  void Submit(const LogSubmission &submission) EXCLUDES(queue_latch_);

  /// Synchronously process everything currently queued (serialize + fsync +
  /// run callbacks). Used by tests and single-threaded setups.
  void ForceFlush() EXCLUDES(queue_latch_);

  /// Install the table resolver used to interpret redo record payloads.
  void SetTableResolver(TableResolver resolver) { table_resolver_ = std::move(resolver); }

  /// Install the sink notified as submissions finish serialization. Like the
  /// table resolver, this must be installed before logging begins; the
  /// transaction manager does so from its constructor.
  void SetFinishedCallback(FinishedCallback callback, void *context) {
    finished_callback_ = callback;
    finished_context_ = context;
  }

  /// \return number of log records written to disk so far.
  // relaxed: monitoring counters — a reader racing the flush thread gets a
  // slightly stale tally, which is all these promise.
  uint64_t RecordsWritten() const { return records_written_.load(std::memory_order_relaxed); }
  /// \return number of bytes written to disk so far.
  // relaxed: same contract as RecordsWritten.
  uint64_t BytesWritten() const { return bytes_written_.load(std::memory_order_relaxed); }

 private:
  void FlushLoop() EXCLUDES(queue_latch_);
  /// Serialize and stage one submission's records; collects its durability
  /// callback (if any) into `callbacks`.
  void ProcessSubmission(const LogSubmission &submission,
                         std::vector<std::pair<CommitRecord::DurabilityCallback, void *>>
                             *callbacks);
  void SerializeRecord(const LogRecord &record);
  void FlushAndSync();

  template <typename T>
  void WriteValue(const T &value) {
    const auto *bytes = reinterpret_cast<const byte *>(&value);
    out_buffer_.insert(out_buffer_.end(), bytes, bytes + sizeof(T));
  }
  void WriteBytes(const byte *bytes, uint64_t size) {
    out_buffer_.insert(out_buffer_.end(), bytes, bytes + size);
  }

  std::string log_file_path_;
  // Serializer-path-only state (table_resolver_, fd_, out_buffer_): touched
  // exclusively by whichever single thread is inside ForceFlush — the flush
  // thread, or the caller's thread in tests/single-threaded setups before
  // Start. Installing the resolver and the finished callback must happen
  // before logging begins.
  TableResolver table_resolver_;
  FinishedCallback finished_callback_ = nullptr;
  void *finished_context_ = nullptr;
  int fd_ = -1;

  common::Mutex queue_latch_;
  std::vector<LogSubmission> flush_queue_ GUARDED_BY(queue_latch_);
  common::ConditionVariable flush_cv_;

  std::vector<byte> out_buffer_;
  std::atomic<uint64_t> records_written_{0};
  std::atomic<uint64_t> bytes_written_{0};

  std::thread flush_thread_;
  std::atomic<bool> run_flush_thread_{false};
};

}  // namespace mainline::logging
