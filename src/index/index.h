#pragma once

#include <cstdint>
#include <vector>

#include "common/macros.h"
#include "index/index_key.h"
#include "storage/storage_defs.h"

namespace mainline::index {

/// Abstract key-to-TupleSlot index. The paper's system uses the OpenBw-Tree;
/// this reproduction substitutes a latch-crabbing B+-tree (ordered) and a
/// sharded hash index (point lookups) behind this interface. Non-unique
/// indexes are modeled by appending a unique suffix to the key and range
/// scanning, as is conventional for composite-key indexes.
class Index {
 public:
  virtual ~Index() = default;

  /// Insert a (key, slot) pair.
  /// \return false if the key already exists.
  virtual bool Insert(const IndexKey &key, storage::TupleSlot value) = 0;

  /// Insert, replacing any existing entry for the key. Used when a key is
  /// legitimately reused (e.g. an order id recycled after an abort left a
  /// dead entry behind).
  virtual void InsertOverwrite(const IndexKey &key, storage::TupleSlot value) {
    if (!Insert(key, value)) {
      Delete(key);
      Insert(key, value);
    }
  }

  /// Remove a key.
  /// \return false if the key was absent.
  virtual bool Delete(const IndexKey &key) = 0;

  /// Point lookup.
  /// \return true and the slot in `out` if found.
  virtual bool Find(const IndexKey &key, storage::TupleSlot *out) const = 0;

  /// Inclusive range scan in ascending key order, stopping after `limit`
  /// results (0 = unlimited). Ordered indexes only.
  virtual void ScanAscending(const IndexKey &lo, const IndexKey &hi, uint32_t limit,
                             std::vector<storage::TupleSlot> *out) const {
    (void)lo, (void)hi, (void)limit, (void)out;
    MAINLINE_UNREACHABLE("range scans unsupported by this index type");
  }

  /// Inclusive range scan in descending key order.
  virtual void ScanDescending(const IndexKey &lo, const IndexKey &hi, uint32_t limit,
                              std::vector<storage::TupleSlot> *out) const {
    (void)lo, (void)hi, (void)limit, (void)out;
    MAINLINE_UNREACHABLE("range scans unsupported by this index type");
  }

  /// \return number of entries (approximate under concurrency).
  virtual uint64_t Size() const = 0;
};

}  // namespace mainline::index
