#pragma once

#include <unordered_map>

#include "common/macros.h"
#include "common/shared_latch.h"
#include "common/thread_annotations.h"
#include "index/index.h"
#include "storage/storage_defs.h"

namespace mainline::index {

/// A sharded hash index for point lookups. Each shard is an unordered_map
/// under its own reader-writer latch; keys hash to shards, so operations on
/// different shards never contend.
class HashIndex final : public Index {
 public:
  static constexpr uint32_t kNumShards = 256;

  HashIndex() = default;
  DISALLOW_COPY_AND_MOVE(HashIndex)

  bool Insert(const IndexKey &key, storage::TupleSlot value) override {
    Shard &shard = ShardFor(key);
    common::SharedLatch::ScopedExclusiveLatch guard(&shard.latch);
    return shard.map.emplace(key, value).second;
  }

  bool Delete(const IndexKey &key) override {
    Shard &shard = ShardFor(key);
    common::SharedLatch::ScopedExclusiveLatch guard(&shard.latch);
    return shard.map.erase(key) > 0;
  }

  bool Find(const IndexKey &key, storage::TupleSlot *out) const override {
    const Shard &shard = ShardFor(key);
    common::SharedLatch::ScopedSharedLatch guard(&shard.latch);
    const auto it = shard.map.find(key);
    if (it == shard.map.end()) return false;
    *out = it->second;
    return true;
  }

  uint64_t Size() const override {
    uint64_t total = 0;
    for (const Shard &shard : shards_) {
      common::SharedLatch::ScopedSharedLatch guard(&shard.latch);
      total += shard.map.size();
    }
    return total;
  }

 private:
  struct Shard {
    mutable common::SharedLatch latch;
    std::unordered_map<IndexKey, storage::TupleSlot> map GUARDED_BY(latch);
  };

  Shard &ShardFor(const IndexKey &key) { return shards_[key.Hash() % kNumShards]; }
  const Shard &ShardFor(const IndexKey &key) const { return shards_[key.Hash() % kNumShards]; }

  Shard shards_[kNumShards];
};

}  // namespace mainline::index
