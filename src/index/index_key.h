#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstring>
#include <functional>
#include <string_view>
#include <type_traits>

#include "common/macros.h"
#include "common/typedefs.h"

namespace mainline::index {

/// A fixed-size, memcmp-comparable composite index key. Fields are appended
/// with order-preserving encodings (big-endian unsigned, sign-flipped
/// big-endian signed, zero-padded fixed-width strings), so lexicographic
/// byte comparison matches tuple-order comparison of the encoded fields.
class IndexKey {
 public:
  static constexpr uint32_t kMaxSize = 64;

  IndexKey() { data_.fill(byte{0}); }

  /// Append an unsigned integer (big-endian).
  template <typename T>
  IndexKey &AddUnsigned(T value) {
    static_assert(std::is_unsigned_v<T>);
    for (int shift = (sizeof(T) - 1) * 8; shift >= 0; shift -= 8) {
      Append(static_cast<byte>((value >> shift) & 0xFF));
    }
    return *this;
  }

  /// Append a signed integer (sign bit flipped, then big-endian, preserving
  /// order across negative and positive values).
  template <typename T>
  IndexKey &AddSigned(T value) {
    static_assert(std::is_signed_v<T>);
    using U = std::make_unsigned_t<T>;
    const U flipped = static_cast<U>(value) ^ (U{1} << (sizeof(T) * 8 - 1));
    return AddUnsigned(flipped);
  }

  /// Append a string padded (or truncated) to `width` bytes.
  IndexKey &AddString(std::string_view s, uint32_t width) {
    const uint32_t copy = std::min<uint32_t>(width, static_cast<uint32_t>(s.size()));
    MAINLINE_ASSERT(size_ + width <= kMaxSize, "index key overflow");
    std::memcpy(data_.data() + size_, s.data(), copy);
    size_ += width;  // remaining bytes already zero
    return *this;
  }

  bool operator==(const IndexKey &other) const {
    return std::memcmp(data_.data(), other.data_.data(), kMaxSize) == 0;
  }
  bool operator<(const IndexKey &other) const {
    return std::memcmp(data_.data(), other.data_.data(), kMaxSize) < 0;
  }
  bool operator<=(const IndexKey &other) const { return !(other < *this); }

  const byte *Data() const { return data_.data(); }
  uint32_t Size() const { return size_; }

  size_t Hash() const {
    // FNV-1a over the full (zero-padded) key.
    uint64_t h = 1469598103934665603ULL;
    for (const byte b : data_) {
      h ^= static_cast<uint8_t>(b);
      h *= 1099511628211ULL;
    }
    return h;
  }

 private:
  void Append(byte b) {
    MAINLINE_ASSERT(size_ < kMaxSize, "index key overflow");
    data_[size_++] = b;
  }

  std::array<byte, kMaxSize> data_;
  uint32_t size_ = 0;
};

}  // namespace mainline::index

namespace std {
template <>
struct hash<mainline::index::IndexKey> {
  size_t operator()(const mainline::index::IndexKey &key) const { return key.Hash(); }
};
}  // namespace std
