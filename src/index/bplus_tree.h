#pragma once

#include <algorithm>
#include <atomic>
#include <vector>

#include "common/macros.h"
#include "common/shared_latch.h"
#include "common/thread_annotations.h"
#include "index/index.h"
#include "storage/storage_defs.h"

namespace mainline::index {

/// A concurrent B+-tree with reader-writer latch crabbing.
///
/// Substitutes for the paper's OpenBw-Tree (see DESIGN.md): the experiments
/// exercise indexes only as a per-operation constant cost, which any correct
/// concurrent ordered index preserves.
///
/// Concurrency protocol:
///  - Readers descend with shared-latch crabbing (latch child, release
///    parent). Range scans traverse the leaf chain hand-over-hand
///    left-to-right, which is deadlock-free because splits never latch
///    their neighbors.
///  - Writers descend with exclusive-latch crabbing and split full nodes
///    preemptively on the way down, so an insertion never propagates back up.
///  - Deletion is lazy: keys are removed from leaves but nodes are never
///    merged (the common strategy for latch-based trees; structurally empty
///    leaves remain valid routing targets).
///
/// Hand-over-hand latching acquires a child before releasing its parent and
/// returns latched nodes across function boundaries — a protocol Clang's
/// capability analysis cannot express (it requires lock/unlock balance within
/// each function). The traversal bodies are therefore isolated in
/// NO_THREAD_SAFETY_ANALYSIS helpers; the invariants they rely on are the
/// documented crabbing protocol above, checked by the TSan stress lane
/// instead.
class BPlusTree final : public Index {
 public:
  static constexpr uint16_t kLeafCapacity = 64;
  static constexpr uint16_t kInnerCapacity = 64;  // max children per inner node

  BPlusTree() : root_(new LeafNode) {}
  DISALLOW_COPY_AND_MOVE(BPlusTree)

  ~BPlusTree() override { FreeSubtree(root_); }

  bool Insert(const IndexKey &key, storage::TupleSlot value) override {
    return InsertImpl(key, value);
  }

  bool Delete(const IndexKey &key) override { return DeleteImpl(key); }

  bool Find(const IndexKey &key, storage::TupleSlot *out) const override {
    return FindImpl(key, out);
  }

  void ScanAscending(const IndexKey &lo, const IndexKey &hi, uint32_t limit,
                     std::vector<storage::TupleSlot> *out) const override {
    ScanAscendingImpl(lo, hi, limit, out);
  }

  void ScanDescending(const IndexKey &lo, const IndexKey &hi, uint32_t limit,
                      std::vector<storage::TupleSlot> *out) const override {
    // Collected ascending and reversed: backwards hand-over-hand traversal
    // can deadlock against forward scans, and the workloads' descending scans
    // (e.g. newest order per customer) cover short ranges.
    std::vector<storage::TupleSlot> ascending;
    ScanAscending(lo, hi, 0, &ascending);
    const size_t take =
        limit == 0 ? ascending.size() : std::min<size_t>(limit, ascending.size());
    for (size_t i = 0; i < take; i++) {
      out->push_back(ascending[ascending.size() - 1 - i]);
    }
  }

  // relaxed: a size snapshot racing concurrent inserts/deletes is stale the
  // moment it is read; callers use it for diagnostics and sizing only.
  uint64_t Size() const override { return size_.load(std::memory_order_relaxed); }

  /// \return the height of the tree (diagnostics; not thread-safe, so the
  /// unlatched walk from root_ is exempted from capability analysis).
  uint32_t Height() const NO_THREAD_SAFETY_ANALYSIS {
    uint32_t h = 1;
    const Node *node = root_;
    while (!node->leaf) {
      node = static_cast<const InnerNode *>(node)->children[0];
      h++;
    }
    return h;
  }

 private:
  // Exclusive-crabbing insert: holds at most two node latches at once
  // (parent + child), releasing the parent only after the child is held.
  bool InsertImpl(const IndexKey &key, storage::TupleSlot value) NO_THREAD_SAFETY_ANALYSIS {
    while (true) {
      root_latch_.LockShared();
      Node *node = root_;
      node->latch.LockExclusive();
      if (IsFull(node)) {
        node->latch.UnlockExclusive();
        root_latch_.UnlockShared();
        GrowRootIfFull();
        continue;
      }
      root_latch_.UnlockShared();
      // Descend holding `node` exclusive; every node we descend into is
      // guaranteed non-full (preemptive splitting).
      while (!node->leaf) {
        auto *inner = static_cast<InnerNode *>(node);
        uint16_t idx = inner->ChildIndex(key);
        Node *child = inner->children[idx];
        child->latch.LockExclusive();
        if (IsFull(child)) {
          SplitChild(inner, idx, child);
          // The separator inner->keys[idx] now routes between child and the
          // new right sibling.
          if (!(key < inner->keys[idx])) {
            Node *right = inner->children[idx + 1];
            right->latch.LockExclusive();
            child->latch.UnlockExclusive();
            child = right;
          }
        }
        inner->latch.UnlockExclusive();
        node = child;
      }
      auto *leaf = static_cast<LeafNode *>(node);
      const bool inserted = LeafInsert(leaf, key, value);
      leaf->latch.UnlockExclusive();
      // relaxed: the counter is a diagnostic tally, not a synchronization
      // point — the leaf latch above ordered the structural change.
      if (inserted) size_.fetch_add(1, std::memory_order_relaxed);
      return inserted;
    }
  }

  // Remove via exclusive crab-down; the leaf comes back latched and is
  // released here, which the analysis cannot pair with its acquisition.
  bool DeleteImpl(const IndexKey &key) NO_THREAD_SAFETY_ANALYSIS {
    LeafNode *leaf = DescendExclusive(key);
    const uint16_t pos = LowerBound(leaf->keys, leaf->count, key);
    bool found = pos < leaf->count && leaf->keys[pos] == key;
    if (found) {
      for (uint16_t i = pos; i + 1 < leaf->count; i++) {
        leaf->keys[i] = leaf->keys[i + 1];
        leaf->values[i] = leaf->values[i + 1];
      }
      leaf->count--;
      // relaxed: same as the insert-side tally — the leaf latch orders the
      // structural change; the counter is diagnostics only.
      size_.fetch_sub(1, std::memory_order_relaxed);
    }
    leaf->latch.UnlockExclusive();
    return found;
  }

  // Point lookup via shared crab-down; same cross-function latch hand-off.
  bool FindImpl(const IndexKey &key, storage::TupleSlot *out) const NO_THREAD_SAFETY_ANALYSIS {
    const LeafNode *leaf = DescendShared(key);
    const uint16_t pos = LowerBound(leaf->keys, leaf->count, key);
    const bool found = pos < leaf->count && leaf->keys[pos] == key;
    if (found) *out = leaf->values[pos];
    leaf->latch.UnlockShared();
    return found;
  }

  // Leaf-chain traversal: hand-over-hand left-to-right across siblings.
  void ScanAscendingImpl(const IndexKey &lo, const IndexKey &hi, uint32_t limit,
                         std::vector<storage::TupleSlot> *out) const NO_THREAD_SAFETY_ANALYSIS {
    const LeafNode *leaf = DescendShared(lo);
    uint16_t pos = LowerBound(leaf->keys, leaf->count, lo);
    while (leaf != nullptr) {
      for (; pos < leaf->count; pos++) {
        if (hi < leaf->keys[pos]) {
          leaf->latch.UnlockShared();
          return;
        }
        out->push_back(leaf->values[pos]);
        if (limit != 0 && out->size() >= limit) {
          leaf->latch.UnlockShared();
          return;
        }
      }
      // Hand-over-hand to the right sibling.
      const LeafNode *next = leaf->next;
      if (next != nullptr) next->latch.LockShared();
      leaf->latch.UnlockShared();
      leaf = next;
      pos = 0;
    }
  }

  struct Node {
    // lint-latch: per-node latch of the crabbing protocol; node fields are
    // protected by holding it during traversal, not by a static GUARDED_BY
    // relation the analysis could check.
    mutable common::SharedLatch latch;
    uint16_t count = 0;  // number of keys
    const bool leaf;
    explicit Node(bool is_leaf) : leaf(is_leaf) {}
  };

  struct LeafNode : Node {
    LeafNode() : Node(true) {}
    IndexKey keys[kLeafCapacity];
    storage::TupleSlot values[kLeafCapacity];
    LeafNode *next = nullptr;
  };

  struct InnerNode : Node {
    InnerNode() : Node(false) {}
    IndexKey keys[kInnerCapacity - 1];
    Node *children[kInnerCapacity];

    /// \return index of the child subtree that covers `key` (keys equal to a
    /// separator route right, matching leaf-split copy-up semantics).
    uint16_t ChildIndex(const IndexKey &key) const {
      uint16_t idx = 0;
      while (idx < count && !(key < keys[idx])) idx++;
      return idx;
    }
  };

  static bool IsFull(const Node *node) {
    return node->leaf ? node->count == kLeafCapacity : node->count == kInnerCapacity - 1;
  }

  static uint16_t LowerBound(const IndexKey *keys, uint16_t count, const IndexKey &key) {
    return static_cast<uint16_t>(std::lower_bound(keys, keys + count, key) - keys);
  }

  static bool LeafInsert(LeafNode *leaf, const IndexKey &key, storage::TupleSlot value) {
    const uint16_t pos = LowerBound(leaf->keys, leaf->count, key);
    if (pos < leaf->count && leaf->keys[pos] == key) return false;  // duplicate
    for (uint16_t i = leaf->count; i > pos; i--) {
      leaf->keys[i] = leaf->keys[i - 1];
      leaf->values[i] = leaf->values[i - 1];
    }
    leaf->keys[pos] = key;
    leaf->values[pos] = value;
    leaf->count++;
    return true;
  }

  /// Split the full `child` (held exclusive) of `inner` (held exclusive,
  /// non-full) at child index `idx`.
  void SplitChild(InnerNode *inner, uint16_t idx, Node *child) {
    IndexKey separator;
    Node *right_node;
    if (child->leaf) {
      auto *leaf = static_cast<LeafNode *>(child);
      auto *right = new LeafNode;
      const uint16_t mid = leaf->count / 2;
      for (uint16_t i = mid; i < leaf->count; i++) {
        right->keys[i - mid] = leaf->keys[i];
        right->values[i - mid] = leaf->values[i];
      }
      right->count = leaf->count - mid;
      leaf->count = mid;
      right->next = leaf->next;
      leaf->next = right;
      separator = right->keys[0];  // copy-up
      right_node = right;
    } else {
      auto *node = static_cast<InnerNode *>(child);
      auto *right = new InnerNode;
      const uint16_t mid = node->count / 2;
      separator = node->keys[mid];  // push-up
      for (uint16_t i = mid + 1; i < node->count; i++) right->keys[i - mid - 1] = node->keys[i];
      for (uint16_t i = mid + 1; i <= node->count; i++) {
        right->children[i - mid - 1] = node->children[i];
      }
      right->count = node->count - mid - 1;
      node->count = mid;
      right_node = right;
    }
    // Insert (separator, right) into the parent at position idx.
    for (uint16_t i = inner->count; i > idx; i--) {
      inner->keys[i] = inner->keys[i - 1];
      inner->children[i + 1] = inner->children[i];
    }
    inner->keys[idx] = separator;
    inner->children[idx + 1] = right_node;
    inner->count++;
  }

  /// Take the root latch exclusively and split the root if it is (still)
  /// full, growing the tree by one level. The manual lock/unlock on the old
  /// root is balanced within this function, so the analysis can check it.
  void GrowRootIfFull() EXCLUDES(root_latch_) {
    common::SharedLatch::ScopedExclusiveLatch guard(&root_latch_);
    Node *old_root = root_;
    if (!IsFull(old_root)) return;  // somebody else grew it
    // Wait for in-flight operations already past the root latch.
    old_root->latch.LockExclusive();
    auto *new_root = new InnerNode;
    new_root->children[0] = old_root;
    SplitChild(new_root, 0, old_root);
    old_root->latch.UnlockExclusive();
    root_ = new_root;
  }

  /// Shared-crab down to the leaf covering `key`; returns it latched shared
  /// (the deliberately unbalanced hand-off capability analysis cannot model).
  const LeafNode *DescendShared(const IndexKey &key) const NO_THREAD_SAFETY_ANALYSIS {
    root_latch_.LockShared();
    const Node *node = root_;
    node->latch.LockShared();
    root_latch_.UnlockShared();
    while (!node->leaf) {
      const auto *inner = static_cast<const InnerNode *>(node);
      const Node *child = inner->children[inner->ChildIndex(key)];
      child->latch.LockShared();
      node->latch.UnlockShared();
      node = child;
    }
    return static_cast<const LeafNode *>(node);
  }

  /// Exclusive-crab down to the leaf covering `key` (no splitting); returns
  /// it latched exclusive.
  LeafNode *DescendExclusive(const IndexKey &key) NO_THREAD_SAFETY_ANALYSIS {
    root_latch_.LockShared();
    Node *node = root_;
    node->latch.LockExclusive();
    root_latch_.UnlockShared();
    while (!node->leaf) {
      auto *inner = static_cast<InnerNode *>(node);
      Node *child = inner->children[inner->ChildIndex(key)];
      child->latch.LockExclusive();
      node->latch.UnlockExclusive();
      node = child;
    }
    return static_cast<LeafNode *>(node);
  }

  void FreeSubtree(Node *node) {
    if (!node->leaf) {
      auto *inner = static_cast<InnerNode *>(node);
      for (uint16_t i = 0; i <= inner->count; i++) FreeSubtree(inner->children[i]);
      delete inner;
    } else {
      delete static_cast<LeafNode *>(node);
    }
  }

  mutable common::SharedLatch root_latch_;
  Node *root_ GUARDED_BY(root_latch_);
  std::atomic<uint64_t> size_{0};
};

}  // namespace mainline::index
