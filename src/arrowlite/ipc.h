#pragma once

#include <memory>

#include "arrowlite/array.h"
#include "arrowlite/io.h"

namespace mainline::arrowlite {

/// Streaming IPC format, modeled on the Arrow IPC stream: a schema message
/// followed by record-batch messages, each of which is a flat sequence of
/// raw buffers with a tiny header. Buffer contents go onto the wire verbatim
/// (no per-value encoding), which is what gives Arrow-native export its
/// zero-serialization property; the substitution of this framing for Arrow's
/// flatbuffer metadata is documented in DESIGN.md.
///
/// Message grammar:
///   stream  := schema batch* end
///   schema  := 'S' u32 num_fields { u16 name_len, name, u8 type, u8 nullable }
///   batch   := 'B' u64 num_rows column*
///   column  := u8 type, u8 has_validity [u64 size, bytes]  (validity)
///              buffers (type dependent), dictionary (dictionary type)
///   end     := 'E'
class IpcStreamWriter {
 public:
  /// Write the schema message immediately.
  IpcStreamWriter(ByteSink *sink, const Schema &schema);

  /// Write one record batch message.
  void WriteBatch(const RecordBatch &batch);

  /// Write the end-of-stream marker.
  void Close();

 private:
  void WriteBuffer(const Buffer *buffer);
  void WriteArray(const Array &array);

  ByteSink *sink_;
  bool closed_ = false;
};

/// Reads a stream produced by IpcStreamWriter. Buffers are landed in freshly
/// allocated (64-byte aligned) memory and wrapped without any per-value
/// parsing — the client-side analogue of zero-deserialization interchange.
class IpcStreamReader {
 public:
  explicit IpcStreamReader(ByteSource *source);

  /// \return the stream's schema (valid after construction).
  const std::shared_ptr<Schema> &schema() const { return schema_; }

  /// Read the next record batch.
  /// \return the batch, or nullptr at end of stream.
  std::shared_ptr<RecordBatch> ReadNext();

 private:
  std::shared_ptr<Buffer> ReadBuffer();
  std::shared_ptr<Array> ReadArray(int64_t num_rows);

  ByteSource *source_;
  std::shared_ptr<Schema> schema_;
  bool done_ = false;
};

}  // namespace mainline::arrowlite
