#include "arrowlite/csv.h"

#include <charconv>
#include <cstdio>
#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

#include "arrowlite/builder.h"

namespace mainline::arrowlite {

namespace {

void WriteEscaped(std::string_view value, std::ostream *out) {
  if (value.find_first_of(",\"\n") == std::string_view::npos) {
    out->write(value.data(), static_cast<std::streamsize>(value.size()));
    return;
  }
  out->put('"');
  for (const char c : value) {
    if (c == '"') out->put('"');
    out->put(c);
  }
  out->put('"');
}

void WriteValueText(const Array &array, int64_t row, std::ostream *out) {
  char buf[32];
  switch (array.type()) {
    case Type::kBool:
    case Type::kUInt8:
      *out << static_cast<uint32_t>(array.Value<uint8_t>(row));
      break;
    case Type::kInt8:
      *out << static_cast<int32_t>(array.Value<int8_t>(row));
      break;
    case Type::kInt16:
      *out << array.Value<int16_t>(row);
      break;
    case Type::kUInt16:
      *out << array.Value<uint16_t>(row);
      break;
    case Type::kInt32:
      *out << array.Value<int32_t>(row);
      break;
    case Type::kUInt32:
      *out << array.Value<uint32_t>(row);
      break;
    case Type::kInt64:
      *out << array.Value<int64_t>(row);
      break;
    case Type::kUInt64:
      *out << array.Value<uint64_t>(row);
      break;
    case Type::kFloat64:
      std::snprintf(buf, sizeof(buf), "%.6f", array.Value<double>(row));
      *out << buf;
      break;
    case Type::kString:
    case Type::kDictionary:
      WriteEscaped(array.GetString(row), out);
      break;
  }
}

/// Split one CSV line into fields, handling quoted values.
std::vector<std::string> SplitLine(const std::string &line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); i++) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          i++;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

template <typename T>
T ParseInt(const std::string &s) {
  T value{};
  std::from_chars(s.data(), s.data() + s.size(), value);
  return value;
}

}  // namespace

uint64_t Csv::WriteBatch(const RecordBatch &batch, std::ostream *out, bool header) {
  const auto start = out->tellp();
  const Schema &schema = *batch.schema();
  if (header) {
    for (int c = 0; c < schema.num_fields(); c++) {
      if (c > 0) out->put(',');
      *out << schema.field(c).name();
    }
    out->put('\n');
  }
  for (int64_t row = 0; row < batch.num_rows(); row++) {
    for (int c = 0; c < batch.num_columns(); c++) {
      if (c > 0) out->put(',');
      const Array &array = *batch.column(c);
      if (!array.IsNull(row)) WriteValueText(array, row, out);
    }
    out->put('\n');
  }
  return static_cast<uint64_t>(out->tellp() - start);
}

std::shared_ptr<RecordBatch> Csv::ReadBatch(const std::shared_ptr<Schema> &schema,
                                            std::istream *in) {
  const int num_fields = schema->num_fields();
  std::vector<FixedBuilder<int64_t>> int_builders;
  std::vector<FixedBuilder<double>> float_builders;
  std::vector<StringBuilder> string_builders;
  // Per-column dispatch: index into the right builder vector.
  std::vector<std::pair<int, int>> dispatch(static_cast<size_t>(num_fields));
  for (int c = 0; c < num_fields; c++) {
    switch (schema->field(c).type()) {
      case Type::kFloat64:
        dispatch[static_cast<size_t>(c)] = {1, static_cast<int>(float_builders.size())};
        float_builders.emplace_back(Type::kFloat64);
        break;
      case Type::kString:
      case Type::kDictionary:
        dispatch[static_cast<size_t>(c)] = {2, static_cast<int>(string_builders.size())};
        string_builders.emplace_back();
        break;
      default:
        dispatch[static_cast<size_t>(c)] = {0, static_cast<int>(int_builders.size())};
        int_builders.emplace_back(Type::kInt64);
        break;
    }
  }

  std::string line;
  std::getline(*in, line);  // header
  int64_t num_rows = 0;
  while (std::getline(*in, line)) {
    if (line.empty()) continue;
    const std::vector<std::string> fields = SplitLine(line);
    for (int c = 0; c < num_fields; c++) {
      const std::string &text = fields[static_cast<size_t>(c)];
      auto [kind, idx] = dispatch[static_cast<size_t>(c)];
      if (kind == 0) {
        if (text.empty()) {
          int_builders[static_cast<size_t>(idx)].AppendNull();
        } else {
          int_builders[static_cast<size_t>(idx)].Append(ParseInt<int64_t>(text));
        }
      } else if (kind == 1) {
        if (text.empty()) {
          float_builders[static_cast<size_t>(idx)].AppendNull();
        } else {
          float_builders[static_cast<size_t>(idx)].Append(std::stod(text));
        }
      } else {
        string_builders[static_cast<size_t>(idx)].Append(text);
      }
    }
    num_rows++;
  }

  // CSV erases type fidelity: integers come back as int64. Build an output
  // schema reflecting that, as a Pandas-style reader would.
  std::vector<Field> out_fields;
  std::vector<std::shared_ptr<Array>> columns;
  for (int c = 0; c < num_fields; c++) {
    auto [kind, idx] = dispatch[static_cast<size_t>(c)];
    if (kind == 0) {
      out_fields.emplace_back(schema->field(c).name(), Type::kInt64);
      columns.push_back(int_builders[static_cast<size_t>(idx)].Finish());
    } else if (kind == 1) {
      out_fields.emplace_back(schema->field(c).name(), Type::kFloat64);
      columns.push_back(float_builders[static_cast<size_t>(idx)].Finish());
    } else {
      out_fields.emplace_back(schema->field(c).name(), Type::kString);
      columns.push_back(string_builders[static_cast<size_t>(idx)].Finish());
    }
  }
  return std::make_shared<RecordBatch>(std::make_shared<Schema>(std::move(out_fields)),
                                       num_rows, std::move(columns));
}

}  // namespace mainline::arrowlite
