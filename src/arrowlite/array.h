#pragma once

#include <memory>
#include <string_view>
#include <utility>
#include <vector>

#include "arrowlite/buffer.h"
#include "arrowlite/type.h"
#include "common/macros.h"

namespace mainline::arrowlite {

/// An immutable Arrow array: a validity bitmap plus type-dependent buffers.
///
///  - fixed-size types: one values buffer
///  - kString:          int32 offsets buffer + values (bytes) buffer
///  - kDictionary:      int32 indices buffer + a shared dictionary (kString)
///
/// Validity bitmaps are LSB-first (one bit per value, set = non-null); a null
/// validity buffer means the array has no nulls.
class Array {
 public:
  /// Fixed-width array.
  static std::shared_ptr<Array> MakeFixed(Type type, int64_t length,
                                          std::shared_ptr<Buffer> values,
                                          std::shared_ptr<Buffer> validity = nullptr,
                                          int64_t null_count = 0) {
    MAINLINE_ASSERT(TypeWidth(type) > 0, "not a fixed-width type");
    auto result = std::shared_ptr<Array>(new Array(type, length, null_count));
    result->validity_ = std::move(validity);
    result->buffers_.push_back(std::move(values));
    return result;
  }

  /// Variable-length string/binary array.
  static std::shared_ptr<Array> MakeString(int64_t length, std::shared_ptr<Buffer> offsets,
                                           std::shared_ptr<Buffer> values,
                                           std::shared_ptr<Buffer> validity = nullptr,
                                           int64_t null_count = 0) {
    auto result = std::shared_ptr<Array>(new Array(Type::kString, length, null_count));
    result->validity_ = std::move(validity);
    result->buffers_.push_back(std::move(offsets));
    result->buffers_.push_back(std::move(values));
    return result;
  }

  /// Dictionary-encoded array: int32 codes into a string dictionary.
  static std::shared_ptr<Array> MakeDictionary(int64_t length, std::shared_ptr<Buffer> indices,
                                               std::shared_ptr<Array> dictionary,
                                               std::shared_ptr<Buffer> validity = nullptr,
                                               int64_t null_count = 0) {
    auto result = std::shared_ptr<Array>(new Array(Type::kDictionary, length, null_count));
    result->validity_ = std::move(validity);
    result->buffers_.push_back(std::move(indices));
    result->dictionary_ = std::move(dictionary);
    return result;
  }

  Type type() const { return type_; }
  int64_t length() const { return length_; }
  int64_t null_count() const { return null_count_; }
  const std::shared_ptr<Buffer> &validity() const { return validity_; }
  const std::shared_ptr<Buffer> &buffer(int i) const { return buffers_[static_cast<size_t>(i)]; }
  const std::shared_ptr<Array> &dictionary() const { return dictionary_; }

  /// \return true if value `i` is null.
  bool IsNull(int64_t i) const {
    if (validity_ == nullptr) return false;
    const auto *bits = validity_->data_as<uint8_t>();
    return (bits[i / 8] & (1u << (i % 8))) == 0;
  }

  /// Typed fixed-width accessor (no null check).
  template <typename T>
  T Value(int64_t i) const {
    return buffers_[0]->data_as<T>()[i];
  }

  /// String accessor: resolves dictionary indirection for kDictionary.
  std::string_view GetString(int64_t i) const {
    if (type_ == Type::kDictionary) {
      const int32_t code = buffers_[0]->data_as<int32_t>()[i];
      return dictionary_->GetString(code);
    }
    const auto *offsets = buffers_[0]->data_as<int32_t>();
    const auto *chars = buffers_[1]->data_as<char>();
    return {chars + offsets[i], static_cast<size_t>(offsets[i + 1] - offsets[i])};
  }

  /// Deep value equality (used by tests to compare export paths).
  bool Equals(const Array &other) const;

 private:
  Array(Type type, int64_t length, int64_t null_count)
      : type_(type), length_(length), null_count_(null_count) {}

  Type type_;
  int64_t length_;
  int64_t null_count_;
  std::shared_ptr<Buffer> validity_;
  std::vector<std::shared_ptr<Buffer>> buffers_;
  std::shared_ptr<Array> dictionary_;
};

/// A collection of equal-length arrays with a schema — the unit of columnar
/// interchange.
class RecordBatch {
 public:
  RecordBatch(std::shared_ptr<Schema> schema, int64_t num_rows,
              std::vector<std::shared_ptr<Array>> columns)
      : schema_(std::move(schema)), num_rows_(num_rows), columns_(std::move(columns)) {}

  const std::shared_ptr<Schema> &schema() const { return schema_; }
  int64_t num_rows() const { return num_rows_; }
  int num_columns() const { return static_cast<int>(columns_.size()); }
  const std::shared_ptr<Array> &column(int i) const { return columns_[static_cast<size_t>(i)]; }

  bool Equals(const RecordBatch &other) const;

 private:
  std::shared_ptr<Schema> schema_;
  int64_t num_rows_;
  std::vector<std::shared_ptr<Array>> columns_;
};

}  // namespace mainline::arrowlite
