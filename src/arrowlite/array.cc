#include "arrowlite/array.h"

#include <cstring>

namespace mainline::arrowlite {

const char *TypeToString(Type type) {
  switch (type) {
    case Type::kBool:
      return "bool";
    case Type::kInt8:
      return "int8";
    case Type::kInt16:
      return "int16";
    case Type::kInt32:
      return "int32";
    case Type::kInt64:
      return "int64";
    case Type::kUInt8:
      return "uint8";
    case Type::kUInt16:
      return "uint16";
    case Type::kUInt32:
      return "uint32";
    case Type::kUInt64:
      return "uint64";
    case Type::kFloat64:
      return "float64";
    case Type::kString:
      return "string";
    case Type::kDictionary:
      return "dictionary<string>";
  }
  return "unknown";
}

std::string Schema::ToString() const {
  std::string result;
  for (const Field &f : fields_) {
    if (!result.empty()) result += ", ";
    result += f.name();
    result += ": ";
    result += TypeToString(f.type());
    if (f.nullable()) result += "?";
  }
  return result;
}

bool Array::Equals(const Array &other) const {
  if (length_ != other.length_) return false;
  // Dictionary arrays compare by resolved values so that a gathered and a
  // dictionary-compressed export of the same data compare equal.
  const bool varlen = type_ == Type::kString || type_ == Type::kDictionary;
  const bool other_varlen = other.type_ == Type::kString || other.type_ == Type::kDictionary;
  if (varlen != other_varlen) return false;
  if (!varlen && type_ != other.type_) return false;
  for (int64_t i = 0; i < length_; i++) {
    const bool null = IsNull(i);
    if (null != other.IsNull(i)) return false;
    if (null) continue;
    if (varlen) {
      if (GetString(i) != other.GetString(i)) return false;
    } else {
      const uint32_t width = TypeWidth(type_);
      if (std::memcmp(buffers_[0]->data() + i * width, other.buffers_[0]->data() + i * width,
                      width) != 0) {
        return false;
      }
    }
  }
  return true;
}

bool RecordBatch::Equals(const RecordBatch &other) const {
  if (num_rows_ != other.num_rows_ || num_columns() != other.num_columns()) return false;
  for (int i = 0; i < num_columns(); i++) {
    if (!columns_[static_cast<size_t>(i)]->Equals(*other.column(i))) return false;
  }
  return true;
}

}  // namespace mainline::arrowlite
