#pragma once

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "common/macros.h"
#include "common/typedefs.h"

namespace mainline::arrowlite {

/// A contiguous memory region in the Arrow sense: 64-byte aligned when owned,
/// or a non-owning view over externally managed memory (e.g. column storage
/// inside a frozen block — the zero-copy path this system exists for).
class Buffer {
 public:
  /// Create an owning buffer of `size` bytes, 64-byte aligned and
  /// zero-padded to a multiple of 8 as the Arrow spec recommends.
  static std::shared_ptr<Buffer> Allocate(uint64_t size) {
    const uint64_t padded = (size + 63) & ~uint64_t{63};
    auto *data = static_cast<byte *>(std::aligned_alloc(64, padded == 0 ? 64 : padded));
    std::memset(data, 0, padded == 0 ? 64 : padded);
    return std::shared_ptr<Buffer>(new Buffer(data, size, true));
  }

  /// Wrap externally owned memory without copying. The caller guarantees the
  /// memory outlives the buffer (for frozen blocks, the block's reader lock
  /// provides this).
  static std::shared_ptr<Buffer> Wrap(const byte *data, uint64_t size) {
    return std::shared_ptr<Buffer>(new Buffer(const_cast<byte *>(data), size, false));
  }

  /// Create an owning buffer holding a copy of [data, data + size).
  static std::shared_ptr<Buffer> CopyOf(const byte *data, uint64_t size) {
    auto result = Allocate(size);
    if (size > 0) std::memcpy(result->mutable_data(), data, size);
    return result;
  }

  DISALLOW_COPY_AND_MOVE(Buffer)

  ~Buffer() {
    if (owned_) std::free(data_);
  }

  const byte *data() const { return data_; }
  byte *mutable_data() { return data_; }
  uint64_t size() const { return size_; }
  bool owned() const { return owned_; }

  template <typename T>
  const T *data_as() const {
    return reinterpret_cast<const T *>(data_);
  }
  template <typename T>
  T *mutable_data_as() {
    return reinterpret_cast<T *>(data_);
  }

 private:
  Buffer(byte *data, uint64_t size, bool owned) : data_(data), size_(size), owned_(owned) {}

  byte *data_;
  uint64_t size_;
  bool owned_;
};

}  // namespace mainline::arrowlite
