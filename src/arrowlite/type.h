#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>


namespace mainline::arrowlite {

/// Physical Arrow type of an array.
enum class Type : uint8_t {
  kBool = 0,  // stored as one byte per value (simplification of bit-packing)
  kInt8,
  kInt16,
  kInt32,
  kInt64,
  kUInt8,
  kUInt16,
  kUInt32,
  kUInt64,
  kFloat64,
  kString,      // int32 offsets + UTF-8 values buffer
  kDictionary,  // int32 indices + string dictionary
};

/// \return width in bytes of a fixed-size type (0 for variable-size types).
constexpr uint32_t TypeWidth(Type type) {
  switch (type) {
    case Type::kBool:
    case Type::kInt8:
    case Type::kUInt8:
      return 1;
    case Type::kInt16:
    case Type::kUInt16:
      return 2;
    case Type::kInt32:
    case Type::kUInt32:
      return 4;
    case Type::kInt64:
    case Type::kUInt64:
    case Type::kFloat64:
      return 8;
    case Type::kString:
    case Type::kDictionary:
      return 0;
  }
  return 0;
}

/// \return a human-readable name for `type`.
const char *TypeToString(Type type);

/// A named, typed column of a schema.
class Field {
 public:
  Field(std::string name, Type type, bool nullable = true)
      : name_(std::move(name)), type_(type), nullable_(nullable) {}

  const std::string &name() const { return name_; }
  Type type() const { return type_; }
  bool nullable() const { return nullable_; }

  bool Equals(const Field &other) const {
    return name_ == other.name_ && type_ == other.type_ && nullable_ == other.nullable_;
  }

 private:
  std::string name_;
  Type type_;
  bool nullable_;
};

/// An ordered collection of fields describing a table or record batch — the
/// Arrow metadata layer that imposes table structure on buffer collections.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  int num_fields() const { return static_cast<int>(fields_.size()); }
  const Field &field(int i) const { return fields_[static_cast<size_t>(i)]; }
  const std::vector<Field> &fields() const { return fields_; }

  /// \return index of field named `name`, or -1.
  int GetFieldIndex(const std::string &name) const {
    for (size_t i = 0; i < fields_.size(); i++) {
      if (fields_[i].name() == name) return static_cast<int>(i);
    }
    return -1;
  }

  bool Equals(const Schema &other) const {
    if (fields_.size() != other.fields_.size()) return false;
    for (size_t i = 0; i < fields_.size(); i++) {
      if (!fields_[i].Equals(other.fields_[i])) return false;
    }
    return true;
  }

  std::string ToString() const;

 private:
  std::vector<Field> fields_;
};

}  // namespace mainline::arrowlite
