#include "arrowlite/ipc.h"

namespace mainline::arrowlite {

IpcStreamWriter::IpcStreamWriter(ByteSink *sink, const Schema &schema) : sink_(sink) {
  sink_->WriteValue<char>('S');
  sink_->WriteValue<uint32_t>(static_cast<uint32_t>(schema.num_fields()));
  for (const Field &field : schema.fields()) {
    sink_->WriteValue<uint16_t>(static_cast<uint16_t>(field.name().size()));
    sink_->Write(reinterpret_cast<const byte *>(field.name().data()), field.name().size());
    sink_->WriteValue<uint8_t>(static_cast<uint8_t>(field.type()));
    sink_->WriteValue<uint8_t>(field.nullable() ? 1 : 0);
  }
}

void IpcStreamWriter::WriteBuffer(const Buffer *buffer) {
  sink_->WriteValue<uint64_t>(buffer == nullptr ? 0 : buffer->size());
  if (buffer != nullptr && buffer->size() > 0) sink_->Write(buffer->data(), buffer->size());
}

void IpcStreamWriter::WriteArray(const Array &array) {
  sink_->WriteValue<uint8_t>(static_cast<uint8_t>(array.type()));
  sink_->WriteValue<int64_t>(array.null_count());
  const bool has_validity = array.validity() != nullptr;
  sink_->WriteValue<uint8_t>(has_validity ? 1 : 0);
  if (has_validity) WriteBuffer(array.validity().get());
  switch (array.type()) {
    case Type::kString:
      WriteBuffer(array.buffer(0).get());  // offsets
      WriteBuffer(array.buffer(1).get());  // values
      break;
    case Type::kDictionary:
      WriteBuffer(array.buffer(0).get());  // indices
      sink_->WriteValue<int64_t>(array.dictionary()->length());
      WriteArray(*array.dictionary());
      break;
    default:
      WriteBuffer(array.buffer(0).get());  // fixed values
      break;
  }
}

void IpcStreamWriter::WriteBatch(const RecordBatch &batch) {
  MAINLINE_ASSERT(!closed_, "stream already closed");
  sink_->WriteValue<char>('B');
  sink_->WriteValue<uint64_t>(static_cast<uint64_t>(batch.num_rows()));
  for (int i = 0; i < batch.num_columns(); i++) WriteArray(*batch.column(i));
}

void IpcStreamWriter::Close() {
  if (closed_) return;
  sink_->WriteValue<char>('E');
  closed_ = true;
}

IpcStreamReader::IpcStreamReader(ByteSource *source) : source_(source) {
  char marker;
  if (!source_->ReadValue(&marker) || marker != 'S') {
    done_ = true;
    return;
  }
  uint32_t num_fields = 0;
  source_->ReadValue(&num_fields);
  std::vector<Field> fields;
  fields.reserve(num_fields);
  for (uint32_t i = 0; i < num_fields; i++) {
    uint16_t name_len = 0;
    source_->ReadValue(&name_len);
    std::string name(name_len, '\0');
    source_->Read(reinterpret_cast<byte *>(name.data()), name_len);
    uint8_t type = 0, nullable = 0;
    source_->ReadValue(&type);
    source_->ReadValue(&nullable);
    fields.emplace_back(std::move(name), static_cast<Type>(type), nullable != 0);
  }
  schema_ = std::make_shared<Schema>(std::move(fields));
}

std::shared_ptr<Buffer> IpcStreamReader::ReadBuffer() {
  uint64_t size = 0;
  if (!source_->ReadValue(&size)) return nullptr;
  if (size == 0) return nullptr;
  auto buffer = Buffer::Allocate(size);
  source_->Read(buffer->mutable_data(), size);
  return buffer;
}

std::shared_ptr<Array> IpcStreamReader::ReadArray(int64_t num_rows) {
  uint8_t type_byte = 0, has_validity = 0;
  int64_t null_count = 0;
  source_->ReadValue(&type_byte);
  source_->ReadValue(&null_count);
  source_->ReadValue(&has_validity);
  const auto type = static_cast<Type>(type_byte);
  std::shared_ptr<Buffer> validity = has_validity != 0 ? ReadBuffer() : nullptr;
  switch (type) {
    case Type::kString: {
      auto offsets = ReadBuffer();
      auto values = ReadBuffer();
      if (values == nullptr) values = Buffer::Allocate(0);
      return Array::MakeString(num_rows, std::move(offsets), std::move(values),
                               std::move(validity), null_count);
    }
    case Type::kDictionary: {
      auto indices = ReadBuffer();
      int64_t dict_length = 0;
      source_->ReadValue(&dict_length);
      auto dictionary = ReadArray(dict_length);
      return Array::MakeDictionary(num_rows, std::move(indices), std::move(dictionary),
                                   std::move(validity), null_count);
    }
    default: {
      auto values = ReadBuffer();
      return Array::MakeFixed(type, num_rows, std::move(values), std::move(validity),
                              null_count);
    }
  }
}

std::shared_ptr<RecordBatch> IpcStreamReader::ReadNext() {
  if (done_) return nullptr;
  char marker;
  if (!source_->ReadValue(&marker) || marker == 'E') {
    done_ = true;
    return nullptr;
  }
  MAINLINE_ASSERT(marker == 'B', "corrupt IPC stream");
  uint64_t num_rows = 0;
  source_->ReadValue(&num_rows);
  std::vector<std::shared_ptr<Array>> columns;
  columns.reserve(static_cast<size_t>(schema_->num_fields()));
  for (int i = 0; i < schema_->num_fields(); i++) {
    columns.push_back(ReadArray(static_cast<int64_t>(num_rows)));
  }
  return std::make_shared<RecordBatch>(schema_, static_cast<int64_t>(num_rows),
                                       std::move(columns));
}

}  // namespace mainline::arrowlite
