#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/typedefs.h"

namespace mainline::arrowlite {

/// Abstract byte sink: the boundary between serialization code and transport
/// (in-memory channel, file, simulated network link).
class ByteSink {
 public:
  virtual ~ByteSink() = default;
  virtual void Write(const byte *data, uint64_t size) = 0;

  template <typename T>
  void WriteValue(const T &value) {
    Write(reinterpret_cast<const byte *>(&value), sizeof(T));
  }
};

/// Abstract byte source.
class ByteSource {
 public:
  virtual ~ByteSource() = default;
  /// Read exactly `size` bytes.
  /// \return true on success, false on end of stream.
  virtual bool Read(byte *out, uint64_t size) = 0;

  template <typename T>
  bool ReadValue(T *out) {
    return Read(reinterpret_cast<byte *>(out), sizeof(T));
  }
};

/// Sink collecting bytes into a growable vector.
class VectorSink final : public ByteSink {
 public:
  void Write(const byte *data, uint64_t size) override {
    data_.insert(data_.end(), data, data + size);
  }
  const std::vector<byte> &data() const { return data_; }
  std::vector<byte> &data() { return data_; }

 private:
  std::vector<byte> data_;
};

/// Source reading from a byte span.
class SpanSource final : public ByteSource {
 public:
  SpanSource(const byte *data, uint64_t size) : data_(data), size_(size) {}

  bool Read(byte *out, uint64_t size) override {
    if (pos_ + size > size_) return false;
    std::memcpy(out, data_ + pos_, size);
    pos_ += size;
    return true;
  }

 private:
  const byte *data_;
  uint64_t size_;
  uint64_t pos_ = 0;
};

/// Sink that only counts bytes (for measuring protocol output volume).
class CountingSink final : public ByteSink {
 public:
  void Write(const byte *, uint64_t size) override { count_ += size; }
  uint64_t count() const { return count_; }

 private:
  uint64_t count_ = 0;
};

}  // namespace mainline::arrowlite
