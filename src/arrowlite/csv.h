#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "arrowlite/array.h"

namespace mainline::arrowlite {

/// CSV writer/reader for record batches. Exists to reproduce the paper's
/// Figure 1 motivation experiment: exporting a table through a textual
/// interchange format and re-parsing it is the expensive path the Arrow-
/// native design eliminates.
class Csv {
 public:
  Csv() = delete;

  /// Write `batch` to `out`, preceded by a header row when `header` is true
  /// (pass false for all but the first batch of a stream). Values are
  /// rendered as decimal text; strings are quoted only when they contain
  /// separators.
  /// \return number of bytes written.
  static uint64_t WriteBatch(const RecordBatch &batch, std::ostream *out, bool header = true);

  /// Parse a CSV document (with header row) into a record batch, using
  /// `schema` to choose column types.
  static std::shared_ptr<RecordBatch> ReadBatch(const std::shared_ptr<Schema> &schema,
                                                std::istream *in);
};

}  // namespace mainline::arrowlite
