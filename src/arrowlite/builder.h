#pragma once

#include <cstring>
#include <memory>
#include <string_view>
#include <vector>

#include "arrowlite/array.h"
#include "common/macros.h"

namespace mainline::arrowlite {

namespace detail {
inline void AppendBit(std::vector<uint8_t> *bits, int64_t index, bool value) {
  const auto byte_idx = static_cast<size_t>(index / 8);
  if (byte_idx >= bits->size()) bits->resize(byte_idx + 1, 0);
  if (value) (*bits)[byte_idx] |= static_cast<uint8_t>(1u << (index % 8));
}

inline std::shared_ptr<Buffer> FinishBitmap(const std::vector<uint8_t> &bits,
                                            int64_t null_count) {
  if (null_count == 0) return nullptr;
  return Buffer::CopyOf(reinterpret_cast<const byte *>(bits.data()), bits.size());
}
}  // namespace detail

/// Incrementally builds a fixed-width array.
template <typename T>
class FixedBuilder {
 public:
  explicit FixedBuilder(Type type) : type_(type) {
    MAINLINE_ASSERT(TypeWidth(type) == sizeof(T), "builder width mismatch");
  }

  void Append(T value) {
    detail::AppendBit(&validity_, length_, true);
    values_.push_back(value);
    length_++;
  }

  void AppendNull() {
    detail::AppendBit(&validity_, length_, false);
    values_.push_back(T{});
    length_++;
    null_count_++;
  }

  int64_t length() const { return length_; }

  std::shared_ptr<Array> Finish() {
    auto values = Buffer::CopyOf(reinterpret_cast<const byte *>(values_.data()),
                                 values_.size() * sizeof(T));
    auto result = Array::MakeFixed(type_, length_, std::move(values),
                                   detail::FinishBitmap(validity_, null_count_), null_count_);
    values_.clear();
    validity_.clear();
    length_ = null_count_ = 0;
    return result;
  }

 private:
  Type type_;
  std::vector<T> values_;
  std::vector<uint8_t> validity_;
  int64_t length_ = 0;
  int64_t null_count_ = 0;
};

/// Incrementally builds a string array (int32 offsets + values).
class StringBuilder {
 public:
  StringBuilder() { offsets_.push_back(0); }

  void Append(std::string_view value) {
    detail::AppendBit(&validity_, length_, true);
    chars_.insert(chars_.end(), value.begin(), value.end());
    offsets_.push_back(static_cast<int32_t>(chars_.size()));
    length_++;
  }

  void AppendNull() {
    detail::AppendBit(&validity_, length_, false);
    offsets_.push_back(static_cast<int32_t>(chars_.size()));
    length_++;
    null_count_++;
  }

  int64_t length() const { return length_; }

  std::shared_ptr<Array> Finish() {
    auto offsets = Buffer::CopyOf(reinterpret_cast<const byte *>(offsets_.data()),
                                  offsets_.size() * sizeof(int32_t));
    auto values = Buffer::CopyOf(reinterpret_cast<const byte *>(chars_.data()), chars_.size());
    auto result = Array::MakeString(length_, std::move(offsets), std::move(values),
                                    detail::FinishBitmap(validity_, null_count_), null_count_);
    offsets_.assign(1, 0);
    chars_.clear();
    validity_.clear();
    length_ = null_count_ = 0;
    return result;
  }

 private:
  std::vector<int32_t> offsets_;
  std::vector<char> chars_;
  std::vector<uint8_t> validity_;
  int64_t length_ = 0;
  int64_t null_count_ = 0;
};

}  // namespace mainline::arrowlite
