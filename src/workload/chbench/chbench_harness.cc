#include "workload/chbench/chbench_harness.h"

#include <algorithm>

#include "common/rand_util.h"
#include "common/timer.h"
#include "gc/gc_thread.h"
#include "storage/block_access_controller.h"
#include "storage/data_table.h"
#include "storage/projected_row.h"
#include "storage/raw_block.h"
#include "transaction/transaction_context.h"
#include "transform/access_observer.h"
#include "transform/block_transformer.h"
#include "transform/transform_pipeline.h"
#include "workload/row_util.h"
#include "workload/tpcc/tpcc_workload.h"
#include "workload/tpch/lineitem.h"
#include "workload/tpch/orders.h"
#include "workload/tpch/part.h"
#include "workload/tpch/tpch_queries.h"

namespace mainline::workload::chbench {

namespace {

const char *const kQueryNames[4] = {"Q1", "Q6", "Q12", "Q14"};

/// Query latency buckets: 100 us to 5 s (15 bounds + overflow, within
/// Histogram::kMaxBuckets).
const std::vector<uint64_t> kLatencyBoundsUs = {
    100,    250,    500,    1000,    2500,    5000,    10000,   25000,
    50000,  100000, 250000, 500000,  1000000, 2500000, 5000000};

}  // namespace

ChBenchHarness::ChBenchHarness(catalog::Catalog *catalog,
                               transaction::TransactionManager *txn_manager,
                               gc::GarbageCollector *gc, const Config &config)
    : catalog_(catalog), txn_manager_(txn_manager), gc_(gc), config_(config) {
  metrics::MetricsRegistry &registry = metrics::MetricsRegistry::Global();
  txns_counter_ = registry.RegisterCounter("chbench.txns");
  feed_rows_counter_ = registry.RegisterCounter("chbench.feed_rows");
  queries_counter_ = registry.RegisterCounter("chbench.queries");
  oracle_checks_counter_ = registry.RegisterCounter("chbench.oracle_checks");
  oracle_mismatches_counter_ = registry.RegisterCounter("chbench.oracle_mismatches");
  for (uint32_t q = 0; q < 4; q++) {
    query_us_[q] = registry.RegisterHistogram(
        std::string("chbench.q") + (q == 0 ? "1" : q == 1 ? "6" : q == 2 ? "12" : "14") + "_us",
        kLatencyBoundsUs);
  }
}

void ChBenchHarness::Setup() {
  // One warehouse per terminal, the paper's TPC-C client shape.
  if (config_.tpcc_scale.num_warehouses < static_cast<int32_t>(config_.terminals)) {
    config_.tpcc_scale.num_warehouses = static_cast<int32_t>(config_.terminals);
  }
  db_ = std::make_unique<tpcc::Database>(catalog_, config_.tpcc_scale);
  db_->Load(txn_manager_, config_.terminals);

  lineitem_ = tpch::GenerateLineItem(catalog_, txn_manager_, config_.lineitem_rows);
  // Dense order keys 1..lineitem_rows cover every generated l_orderkey; the
  // feed starts strictly above so fresh keys never collide with the load.
  orders_ = tpch::GenerateOrders(catalog_, txn_manager_, config_.lineitem_rows);
  part_ = tpch::GeneratePart(catalog_, txn_manager_, config_.part_rows);
  feed_orderkey_base_ = config_.lineitem_rows + 1;
  gc_->FullGC();
}

void ChBenchHarness::RunTerminal(uint32_t index, const std::atomic<bool> *stop,
                                 TerminalStats *out) {
  static const char *kPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED",
                                      "5-LOW"};
  static const char *kModes[] = {"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"};
  static const char *kFlags[] = {"R", "A", "N"};

  const auto home_warehouse =
      static_cast<int32_t>(index % static_cast<uint32_t>(db_->config.num_warehouses)) + 1;
  tpcc::Worker worker(db_.get(), txn_manager_, home_warehouse, 0x5eed + index);
  common::Xorshift rng(0xfeed0000ULL + index);
  uint64_t next_orderkey = feed_orderkey_base_ + index;

  const storage::ProjectedRowInitializer orders_init = orders_->FullInitializer();
  const storage::ProjectedRowInitializer lineitem_init = lineitem_->FullInitializer();
  std::vector<byte> orders_buffer(orders_init.ProjectedRowSize() + 8);
  std::vector<byte> lineitem_buffer(lineitem_init.ProjectedRowSize() + 8);

  while (!stop->load(std::memory_order_acquire)) {
    worker.RunOne();

    // The CH-benCHmark bridge: order entry feeds the analytical fact table.
    // One fresh order + its lineitems per mix transaction, under an order
    // key only this terminal allocates (strided by terminal count), so the
    // feed is deterministic per terminal and Q12's join stays resolvable.
    const uint64_t orderkey = next_orderkey;
    next_orderkey += config_.terminals;
    transaction::TransactionContext *txn = txn_manager_->BeginTransaction();
    storage::ProjectedRow *order_row = orders_init.InitializeRow(orders_buffer.data());
    Set<int64_t>(order_row, tpch::O_ORDERKEY, static_cast<int64_t>(orderkey));
    Set<int64_t>(order_row, tpch::O_CUSTKEY, static_cast<int64_t>(rng.Uniform(1, 150000)));
    SetVarchar(order_row, tpch::O_ORDERSTATUS, "O");
    Set<double>(order_row, tpch::O_TOTALPRICE,
                static_cast<double>(rng.Uniform(85000, 55500000)) / 100.0);
    Set<uint32_t>(order_row, tpch::O_ORDERDATE, static_cast<uint32_t>(rng.Uniform(7900, 10480)));
    SetVarchar(order_row, tpch::O_ORDERPRIORITY, kPriorities[rng.Uniform(0, 4)]);
    SetVarchar(order_row, tpch::O_CLERK, "Clerk#chbench");
    Set<int32_t>(order_row, tpch::O_SHIPPRIORITY, 0);
    SetVarchar(order_row, tpch::O_COMMENT, rng.AlphaString(8, 24));
    orders_->Insert(txn, *order_row);

    for (uint64_t line = 0; line < config_.feed_rows_per_txn; line++) {
      storage::ProjectedRow *row = lineitem_init.InitializeRow(lineitem_buffer.data());
      Set<int64_t>(row, tpch::L_ORDERKEY, static_cast<int64_t>(orderkey));
      Set<int64_t>(row, tpch::L_PARTKEY, static_cast<int64_t>(rng.Uniform(1, 200000)));
      Set<int64_t>(row, tpch::L_SUPPKEY, static_cast<int64_t>(rng.Uniform(1, 10000)));
      Set<int32_t>(row, tpch::L_LINENUMBER, static_cast<int32_t>(line + 1));
      Set<double>(row, tpch::L_QUANTITY, static_cast<double>(rng.Uniform(1, 50)));
      Set<double>(row, tpch::L_EXTENDEDPRICE,
                  static_cast<double>(rng.Uniform(1000, 100000)) / 100.0);
      Set<double>(row, tpch::L_DISCOUNT, static_cast<double>(rng.Uniform(0, 10)) / 100.0);
      Set<double>(row, tpch::L_TAX, static_cast<double>(rng.Uniform(0, 8)) / 100.0);
      SetVarchar(row, tpch::L_RETURNFLAG, kFlags[rng.Uniform(0, 2)]);
      SetVarchar(row, tpch::L_LINESTATUS, rng.Uniform(0, 1) == 0 ? "O" : "F");
      const auto ship = static_cast<uint32_t>(rng.Uniform(8000, 10500));
      Set<uint32_t>(row, tpch::L_SHIPDATE, ship);
      Set<uint32_t>(row, tpch::L_COMMITDATE, ship + static_cast<uint32_t>(rng.Uniform(1, 60)));
      Set<uint32_t>(row, tpch::L_RECEIPTDATE, ship + static_cast<uint32_t>(rng.Uniform(1, 30)));
      SetVarchar(row, tpch::L_SHIPINSTRUCT, "NONE");
      SetVarchar(row, tpch::L_SHIPMODE, kModes[rng.Uniform(0, 6)]);
      SetVarchar(row, tpch::L_COMMENT, rng.AlphaString(10, 43));
      lineitem_->Insert(txn, *row);
    }
    txn_manager_->Commit(txn);
    out->feed_txns++;
    out->feed_rows += config_.feed_rows_per_txn;
  }

  out->committed = worker.Stats().TotalCommitted();
  out->aborted = worker.Stats().aborted;
  txns_counter_->Add(out->committed);
  feed_rows_counter_->Add(out->feed_rows);
}

void ChBenchHarness::RunQuerySample(uint32_t which, common::WorkerPool *pool,
                                    QueryStats *stats) {
  const bool check = config_.oracle_every != 0 && stats->runs % config_.oracle_every == 0;
  // One snapshot for plan and oracle: whatever the terminals commit while
  // this sample runs, both sides answer as of this transaction's start, so
  // bit-equality is meaningful under full write concurrency.
  transaction::TransactionContext *txn = txn_manager_->BeginTransaction();
  uint64_t latency_us = 0;
  bool mismatch = false;
  switch (which) {
    case 0: {
      const common::Timer timer;
      const std::vector<tpch::Q1Row> rows =
          tpch::RunQ1Parallel(lineitem_, txn, tpch::Q1Params(), pool);
      latency_us = timer.Elapsed<>();
      if (check) mismatch = rows != tpch::RunQ1Scalar(lineitem_, txn, tpch::Q1Params());
      break;
    }
    case 1: {
      const common::Timer timer;
      const double revenue = tpch::RunQ6Parallel(lineitem_, txn, tpch::Q6Params(), pool);
      latency_us = timer.Elapsed<>();
      if (check) mismatch = revenue != tpch::RunQ6Scalar(lineitem_, txn, tpch::Q6Params());
      break;
    }
    case 2: {
      const common::Timer timer;
      const std::vector<tpch::Q12Row> rows =
          tpch::RunQ12Parallel(orders_, lineitem_, txn, tpch::Q12Params(), pool);
      latency_us = timer.Elapsed<>();
      if (check) {
        mismatch = rows != tpch::RunQ12Scalar(orders_, lineitem_, txn, tpch::Q12Params());
      }
      break;
    }
    default: {
      const common::Timer timer;
      const double promo = tpch::RunQ14Parallel(lineitem_, part_, txn, tpch::Q14Params(), pool);
      latency_us = timer.Elapsed<>();
      if (check) mismatch = promo != tpch::RunQ14Scalar(lineitem_, part_, txn, tpch::Q14Params());
      break;
    }
  }
  txn_manager_->Commit(txn);

  query_us_[which]->Observe(latency_us);
  queries_counter_->Add(1);
  stats->runs++;
  if (check) {
    stats->oracle_checks++;
    oracle_checks_counter_->Add(1);
    if (mismatch) {
      stats->oracle_mismatches++;
      oracle_mismatches_counter_->Add(1);
    }
  }
}

Result ChBenchHarness::Run() {
  transform::AccessObserver observer(config_.cold_epochs);
  transform::BlockTransformer transformer(txn_manager_, gc_,
                                          transform::GatherMode::kVarlenGather);
  transformer.SetInlineGCPump(false);
  transform::TransformPipeline pipeline(&observer, &transformer, config_.group_size);
  storage::DataTable *targets[] = {
      &db_->order->UnderlyingTable(),    &db_->order_line->UnderlyingTable(),
      &db_->history->UnderlyingTable(),  &db_->item->UnderlyingTable(),
      &lineitem_->UnderlyingTable(),     &orders_->UnderlyingTable(),
      &part_->UnderlyingTable()};
  pipeline.SetTableFilter([targets](storage::DataTable *table) {
    for (storage::DataTable *target : targets) {
      if (table == target) return true;
    }
    return false;
  });

  Result result;
  result.queries.resize(4);
  for (uint32_t q = 0; q < 4; q++) result.queries[q].name = kQueryNames[q];
  std::vector<TerminalStats> terminal_stats(config_.terminals);

  const metrics::MetricsSnapshot before = metrics::MetricsRegistry::Global().Snapshot();
  double measured_seconds = 0;
  {
    gc::GarbageCollectorThread gc_thread(gc_, config_.gc_period);
    gc_->SetAccessObserver(&observer);
    // Bulk-loaded, read-mostly tables predate the observer; seed them.
    pipeline.EnqueueTable(&db_->item->UnderlyingTable());
    pipeline.EnqueueTable(&lineitem_->UnderlyingTable());
    pipeline.EnqueueTable(&orders_->UnderlyingTable());
    pipeline.EnqueueTable(&part_->UnderlyingTable());
    if (config_.adaptive) {
      pipeline.Start(config_.policy);
    } else {
      pipeline.Start(config_.fixed_period);
    }

    std::atomic<bool> stop{false};
    common::WorkerPool terminal_pool(config_.terminals);
    for (uint32_t t = 0; t < config_.terminals; t++) {
      TerminalStats *slot = &terminal_stats[t];
      terminal_pool.SubmitTask([this, t, &stop, slot] { RunTerminal(t, &stop, slot); });
    }

    // The coordinator is the analytics driver: it cycles Q1 -> Q6 -> Q12 ->
    // Q14 for the whole window, sampling observer pressure between runs.
    common::WorkerPool query_pool(config_.query_workers);
    const common::Timer window;
    uint32_t next_query = 0;
    while (window.ElapsedSeconds() < config_.duration_seconds) {
      RunQuerySample(next_query % 4, &query_pool, &result.queries[next_query % 4]);
      next_query++;
      const auto depth = static_cast<int64_t>(observer.WatchedBlocks());
      if (window.ElapsedSeconds() < config_.duration_seconds / 2) {
        result.queue_depth_max_first_half =
            std::max(result.queue_depth_max_first_half, depth);
      } else {
        result.queue_depth_max_second_half =
            std::max(result.queue_depth_max_second_half, depth);
      }
    }
    measured_seconds = window.ElapsedSeconds();

    stop.store(true, std::memory_order_release);
    terminal_pool.WaitUntilAllFinished();
    pipeline.Stop();
    result.final_period = pipeline.CurrentPeriod();
    result.queue_depth_end = static_cast<int64_t>(observer.WatchedBlocks());
    gc_->SetAccessObserver(nullptr);
  }
  const metrics::MetricsSnapshot delta =
      metrics::MetricsRegistry::Global().Snapshot().Delta(before);

  result.seconds = measured_seconds;
  for (const TerminalStats &stats : terminal_stats) {
    result.tpcc_committed += stats.committed;
    result.tpcc_aborted += stats.aborted;
    result.feed_txns += stats.feed_txns;
    result.feed_rows += stats.feed_rows;
  }
  result.txns_per_second =
      static_cast<double>(result.tpcc_committed + result.feed_txns) / result.seconds;

  const char *const histogram_names[4] = {"chbench.q1_us", "chbench.q6_us", "chbench.q12_us",
                                          "chbench.q14_us"};
  for (uint32_t q = 0; q < 4; q++) {
    QueryStats &stats = result.queries[q];
    stats.p50_us = delta.ValueAtQuantile(histogram_names[q], 0.50);
    stats.p95_us = delta.ValueAtQuantile(histogram_names[q], 0.95);
    stats.p99_us = delta.ValueAtQuantile(histogram_names[q], 0.99);
    result.oracle_checks += stats.oracle_checks;
    result.oracle_mismatches += stats.oracle_mismatches;
  }

  const auto lag = delta.histograms.find("transform.freeze_lag_us");
  if (lag != delta.histograms.end()) {
    result.freeze_lag_samples = lag->second.total;
    result.freeze_lag_p50_us = lag->second.ValueAtQuantile(0.50);
    result.freeze_lag_p95_us = lag->second.ValueAtQuantile(0.95);
    result.freeze_lag_p99_us = lag->second.ValueAtQuantile(0.99);
  }
  const auto passes = delta.counters.find("transform.passes");
  if (passes != delta.counters.end()) result.transform_passes = passes->second;
  const auto frozen = delta.counters.find("transform.blocks_frozen");
  if (frozen != delta.counters.end()) result.blocks_frozen = frozen->second;

  uint64_t frozen_blocks = 0;
  uint64_t total_blocks = 0;
  for (catalog::SqlTable *table : {lineitem_, orders_, part_}) {
    for (storage::RawBlock *block : table->UnderlyingTable().Blocks()) {
      total_blocks++;
      if (block->controller.GetState() == storage::BlockState::kFrozen) frozen_blocks++;
    }
  }
  if (total_blocks > 0) {
    result.frozen_pct =
        100.0 * static_cast<double>(frozen_blocks) / static_cast<double>(total_blocks);
  }
  return result;
}

}  // namespace mainline::workload::chbench
