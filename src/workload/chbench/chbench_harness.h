#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/sql_table.h"
#include "common/macros.h"
#include "common/worker_pool.h"
#include "gc/garbage_collector.h"
#include "metrics/metrics_registry.h"
#include "transaction/transaction_manager.h"
#include "transform/freeze_policy.h"
#include "workload/tpcc/tpcc_db.h"

namespace mainline::workload::chbench {

/// Scale and traffic knobs of the CH-benCHmark-style HTAP harness.
struct Config {
  /// TPC-C terminal count. Setup() raises the warehouse count to match, so
  /// every terminal keeps the paper's one-warehouse-per-client shape.
  uint32_t terminals = 4;
  /// Morsel-parallel workers each analytical plan runs over.
  uint32_t query_workers = 2;
  /// Length of one measured window.
  double duration_seconds = 3.0;
  /// OLTP scale (warehouse count is derived from `terminals`, see above).
  tpcc::Config tpcc_scale = tpcc::Config::Scaled(10000, 300);

  /// Initial analytical population. ORDERS is generated with exactly
  /// `lineitem_rows` orders so every initial l_orderkey joins (the
  /// generators' dense-key contract), and the fresh-order feed allocates
  /// keys strictly above `lineitem_rows` so it can never collide.
  uint64_t lineitem_rows = 200000;
  uint64_t part_rows = 20000;
  /// LINEITEM rows each terminal appends (under one fresh ORDERS row) after
  /// every TPC-C transaction — the order-entry → fact-table bridge that
  /// makes the analytical tables a moving target.
  uint64_t feed_rows_per_txn = 16;
  /// Every how-many-th run of each query is cross-checked bit-exact against
  /// its scalar oracle in the same snapshot (1 = every run, 0 = never).
  uint32_t oracle_every = 4;

  /// Background maintenance cadence.
  std::chrono::milliseconds gc_period{10};
  /// GC epochs without modification before a block is transform-eligible.
  uint64_t cold_epochs = 1;
  /// Blocks per compaction group.
  uint32_t group_size = 8;

  /// Pipeline cadence: feedback-controlled (`policy`) or fixed. The fixed
  /// default is deliberately the kind of uncalibrated guess a fixed cadence
  /// forces on operators — the bench compares the controller against it.
  bool adaptive = true;
  std::chrono::milliseconds fixed_period{100};
  transform::FreezePolicy::Config policy;
};

/// Latency and oracle outcomes of one analytical query over a window.
/// Percentiles come from the window's metrics delta (chbench.q*_us
/// histograms), through MetricsSnapshot::ValueAtQuantile.
struct QueryStats {
  std::string name;
  uint64_t runs = 0;
  uint64_t oracle_checks = 0;
  uint64_t oracle_mismatches = 0;
  double p50_us = 0;
  double p95_us = 0;
  double p99_us = 0;
};

/// Everything one Run() window measured.
struct Result {
  double seconds = 0;
  uint64_t tpcc_committed = 0;
  uint64_t tpcc_aborted = 0;
  double txns_per_second = 0;
  uint64_t feed_txns = 0;
  uint64_t feed_rows = 0;

  std::vector<QueryStats> queries;  ///< q1, q6, q12, q14 in order
  uint64_t oracle_checks = 0;       ///< totals over all queries
  uint64_t oracle_mismatches = 0;

  /// Freshness: the window's transform.freeze_lag_us delta.
  uint64_t freeze_lag_samples = 0;
  double freeze_lag_p50_us = 0;
  double freeze_lag_p95_us = 0;
  double freeze_lag_p99_us = 0;
  uint64_t transform_passes = 0;
  uint64_t blocks_frozen = 0;

  /// Observer pressure, sampled by the coordinator between query runs.
  /// Bounded behavior shows as a second-half maximum no worse than the
  /// first's; a too-slow cadence shows as monotonic growth instead.
  int64_t queue_depth_max_first_half = 0;
  int64_t queue_depth_max_second_half = 0;
  int64_t queue_depth_end = 0;
  std::chrono::milliseconds final_period{0};

  /// End-of-window frozen coverage over the analytical tables (%).
  double frozen_pct = 0;

  /// Every sampled analytical answer matched its same-snapshot oracle.
  bool BitExact() const { return oracle_mismatches == 0; }
};

/// The HTAP scenario the paper pitches, in one object: N TPC-C terminals
/// hammer their warehouses (and feed fresh orders into the TPC-H tables)
/// while Q1/Q6/Q12/Q14 plans run morsel-parallel over those same tables and
/// the TransformPipeline freezes cold blocks in the background.
///
/// Run() is synchronous and owns all transient machinery for its window —
/// terminal tasks on a WorkerPool, a query pool, the GC thread, and a fresh
/// observer + pipeline — so back-to-back windows (fixed cadence, then
/// adaptive) measure on identical wiring. The coordinator thread drives the
/// analytics loop itself: each sample begins one transaction, runs the plan
/// morsel-parallel, periodically re-runs the scalar oracle *in that same
/// transaction*, and demands bit-equality. Under concurrent writers this is
/// the strongest correctness statement the engine makes: whatever the
/// terminals are doing, a snapshot's answer is exact.
class ChBenchHarness {
 public:
  ChBenchHarness(catalog::Catalog *catalog, transaction::TransactionManager *txn_manager,
                 gc::GarbageCollector *gc, const Config &config);

  DISALLOW_COPY_AND_MOVE(ChBenchHarness)

  /// Create and load the TPC-C database and the TPC-H analytical tables.
  void Setup();

  /// One timed HTAP window. Requires Setup(). The caller must not pump the
  /// GC concurrently — Run() owns a GarbageCollectorThread for the window.
  Result Run();

  tpcc::Database *Db() { return db_.get(); }
  catalog::SqlTable *LineItem() { return lineitem_; }
  catalog::SqlTable *OrdersTable() { return orders_; }
  catalog::SqlTable *PartTable() { return part_; }

 private:
  struct TerminalStats {
    uint64_t committed = 0;
    uint64_t aborted = 0;
    uint64_t feed_txns = 0;
    uint64_t feed_rows = 0;
  };

  /// One terminal: the TPC-C mix against its home warehouse, then one
  /// fresh-order feed transaction (`feed_rows_per_txn` lineitems under a new
  /// terminal-strided order key) after every mix transaction. Runs on a pool
  /// worker until `*stop`; results land in `*out` (one slot per terminal,
  /// read by the coordinator only after the pool quiesces).
  void RunTerminal(uint32_t index, const std::atomic<bool> *stop, TerminalStats *out);

  /// Run one sample of query `which` (0..3) under a fresh snapshot,
  /// recording latency and — every `oracle_every`-th run — the same-snapshot
  /// oracle verdict into `stats`.
  void RunQuerySample(uint32_t which, common::WorkerPool *pool, QueryStats *stats);

  catalog::Catalog *catalog_;
  transaction::TransactionManager *txn_manager_;
  gc::GarbageCollector *gc_;
  Config config_;

  std::unique_ptr<tpcc::Database> db_;
  catalog::SqlTable *lineitem_ = nullptr;
  catalog::SqlTable *orders_ = nullptr;
  catalog::SqlTable *part_ = nullptr;
  /// First fresh-order key; terminal `i` draws base + i, base + i + N, ...
  uint64_t feed_orderkey_base_ = 0;

  /// chbench.* metric handles (global registry; registration is idempotent).
  metrics::Counter *txns_counter_;
  metrics::Counter *feed_rows_counter_;
  metrics::Counter *queries_counter_;
  metrics::Counter *oracle_checks_counter_;
  metrics::Counter *oracle_mismatches_counter_;
  metrics::Histogram *query_us_[4];
};

}  // namespace mainline::workload::chbench
