#include "workload/tpcc/tpcc_db.h"

#include <memory>
#include <vector>

#include "catalog/sql_table.h"
#include "common/rand_util.h"
#include "common/worker_pool.h"
#include "index/bplus_tree.h"
#include "index/hash_index.h"
#include "storage/projected_row.h"
#include "storage/storage_defs.h"
#include "workload/row_util.h"
#include "workload/tpcc/tpcc_schemas.h"

namespace mainline::workload::tpcc {

namespace {

/// Loader-local projection buffer for one table's full row.
struct RowBuffer {
  explicit RowBuffer(catalog::SqlTable *table)
      : initializer(table->FullInitializer()), bytes(initializer.ProjectedRowSize() + 8) {}

  storage::ProjectedRow *Reset() { return initializer.InitializeRow(bytes.data()); }

  storage::ProjectedRowInitializer initializer;
  std::vector<byte> bytes;
};

/// TPC-C last-name generator (clause 4.3.2.3).
std::string LastName(int32_t num) {
  static const char *kSyllables[] = {"BAR", "OUGHT", "ABLE",  "PRI",   "PRES",
                                     "ESE", "ANTI",  "CALLY", "ATION", "EING"};
  return std::string(kSyllables[num / 100]) + kSyllables[(num / 10) % 10] +
         kSyllables[num % 10];
}

std::string ZipCode(common::Xorshift *rng) { return rng->NumericString(4, 4) + "11111"; }

/// Original data for 10% of I_DATA / S_DATA rows.
std::string DataString(common::Xorshift *rng) {
  std::string data = rng->AlphaString(26, 50);
  if (rng->Uniform(1, 10) == 1) {
    const auto pos = static_cast<size_t>(rng->Uniform(0, data.size() - 8));
    data.replace(pos, 8, "ORIGINAL");
  }
  return data;
}

}  // namespace

Database::Database(catalog::Catalog *catalog, const Config &config_in) : config(config_in) {
  warehouse = catalog->GetTable(catalog->CreateTable("warehouse", WarehouseSchema()));
  district = catalog->GetTable(catalog->CreateTable("district", DistrictSchema()));
  customer = catalog->GetTable(catalog->CreateTable("customer", CustomerSchema()));
  history = catalog->GetTable(catalog->CreateTable("history", HistorySchema()));
  new_order = catalog->GetTable(catalog->CreateTable("new_order", NewOrderSchema()));
  order = catalog->GetTable(catalog->CreateTable("order", OrderSchema()));
  order_line = catalog->GetTable(catalog->CreateTable("order_line", OrderLineSchema()));
  item = catalog->GetTable(catalog->CreateTable("item", ItemSchema()));
  stock = catalog->GetTable(catalog->CreateTable("stock", StockSchema()));

  auto mk_hash = [&](const char *name, catalog::SqlTable *table) {
    catalog->RegisterIndex(name, table->Oid(), std::make_unique<index::HashIndex>());
    return catalog->GetIndex(name);
  };
  auto mk_btree = [&](const char *name, catalog::SqlTable *table) {
    catalog->RegisterIndex(name, table->Oid(), std::make_unique<index::BPlusTree>());
    return catalog->GetIndex(name);
  };
  warehouse_pk = mk_hash("warehouse_pk", warehouse);
  district_pk = mk_hash("district_pk", district);
  customer_pk = mk_hash("customer_pk", customer);
  customer_name_idx = mk_btree("customer_name_idx", customer);
  new_order_pk = mk_btree("new_order_pk", new_order);
  order_pk = mk_hash("order_pk", order);
  order_customer_idx = mk_btree("order_customer_idx", order);
  order_line_pk = mk_btree("order_line_pk", order_line);
  item_pk = mk_hash("item_pk", item);
  stock_pk = mk_hash("stock_pk", stock);
}

void Database::Load(transaction::TransactionManager *txn_manager, uint32_t num_threads) {
  LoadItems(txn_manager);
  if (num_threads <= 1) {
    for (int32_t w = 1; w <= config.num_warehouses; w++) LoadWarehouse(txn_manager, w);
    return;
  }
  common::WorkerPool pool(num_threads);
  for (int32_t w = 1; w <= config.num_warehouses; w++) {
    pool.SubmitTask([this, txn_manager, w] { LoadWarehouse(txn_manager, w); });
  }
  pool.WaitUntilAllFinished();
}

void Database::LoadItems(transaction::TransactionManager *txn_manager) {
  common::Xorshift rng(42);
  auto *txn = txn_manager->BeginTransaction();
  RowBuffer buffer(item);
  for (int32_t i = 1; i <= config.num_items; i++) {
    storage::ProjectedRow *row = buffer.Reset();
    Set<int32_t>(row, I_ID, i);
    Set<int32_t>(row, I_IM_ID, static_cast<int32_t>(rng.Uniform(1, 10000)));
    SetVarchar(row, I_NAME, rng.AlphaString(14, 24));
    Set<double>(row, I_PRICE, static_cast<double>(rng.Uniform(100, 10000)) / 100.0);
    SetVarchar(row, I_DATA, DataString(&rng));
    item_pk->Insert(ItemKey(i), item->Insert(txn, *row));
  }
  txn_manager->Commit(txn);
}

void Database::LoadWarehouse(transaction::TransactionManager *txn_manager, int32_t w_id) {
  common::Xorshift rng(static_cast<uint64_t>(w_id) * 7919);
  auto *txn = txn_manager->BeginTransaction();

  {  // WAREHOUSE row
    RowBuffer buffer(warehouse);
    storage::ProjectedRow *row = buffer.Reset();
    Set<int32_t>(row, W_ID, w_id);
    SetVarchar(row, W_NAME, rng.AlphaString(6, 10));
    SetVarchar(row, W_STREET_1, rng.AlphaString(10, 20));
    SetVarchar(row, W_STREET_2, rng.AlphaString(10, 20));
    SetVarchar(row, W_CITY, rng.AlphaString(10, 20));
    SetVarchar(row, W_STATE, rng.AlphaString(2, 2));
    SetVarchar(row, W_ZIP, ZipCode(&rng));
    Set<double>(row, W_TAX, static_cast<double>(rng.Uniform(0, 2000)) / 10000.0);
    Set<double>(row, W_YTD, 300000.0);
    warehouse_pk->Insert(WarehouseKey(w_id), warehouse->Insert(txn, *row));
  }

  {  // STOCK rows
    RowBuffer buffer(stock);
    for (int32_t i = 1; i <= config.num_items; i++) {
      storage::ProjectedRow *row = buffer.Reset();
      Set<int32_t>(row, S_I_ID, i);
      Set<int32_t>(row, S_W_ID, w_id);
      Set<int16_t>(row, S_QUANTITY, static_cast<int16_t>(rng.Uniform(10, 100)));
      for (uint16_t d = S_DIST_01; d <= S_DIST_10; d++) {
        SetVarchar(row, d, rng.AlphaString(24, 24));
      }
      Set<double>(row, S_YTD, 0.0);
      Set<int16_t>(row, S_ORDER_CNT, 0);
      Set<int16_t>(row, S_REMOTE_CNT, 0);
      SetVarchar(row, S_DATA, DataString(&rng));
      stock_pk->Insert(StockKey(w_id, i), stock->Insert(txn, *row));
    }
  }

  RowBuffer district_buffer(district);
  RowBuffer customer_buffer(customer);
  RowBuffer history_buffer(history);
  RowBuffer order_buffer(order);
  RowBuffer order_line_buffer(order_line);
  RowBuffer new_order_buffer(new_order);

  for (int32_t d_id = 1; d_id <= config.districts_per_warehouse; d_id++) {
    {  // DISTRICT row
      storage::ProjectedRow *row = district_buffer.Reset();
      Set<int32_t>(row, D_ID, d_id);
      Set<int32_t>(row, D_W_ID, w_id);
      SetVarchar(row, D_NAME, rng.AlphaString(6, 10));
      SetVarchar(row, D_STREET_1, rng.AlphaString(10, 20));
      SetVarchar(row, D_STREET_2, rng.AlphaString(10, 20));
      SetVarchar(row, D_CITY, rng.AlphaString(10, 20));
      SetVarchar(row, D_STATE, rng.AlphaString(2, 2));
      SetVarchar(row, D_ZIP, ZipCode(&rng));
      Set<double>(row, D_TAX, static_cast<double>(rng.Uniform(0, 2000)) / 10000.0);
      Set<double>(row, D_YTD, 30000.0);
      Set<int32_t>(row, D_NEXT_O_ID, config.orders_per_district + 1);
      district_pk->Insert(DistrictKey(w_id, d_id), district->Insert(txn, *row));
    }

    // CUSTOMER + HISTORY rows
    for (int32_t c_id = 1; c_id <= config.customers_per_district; c_id++) {
      const std::string last = LastName(
          c_id <= 1000 ? c_id - 1 : static_cast<int32_t>(rng.NuRand(255, 0, 999, 123)));
      const std::string first = rng.AlphaString(8, 16);
      storage::ProjectedRow *row = customer_buffer.Reset();
      Set<int32_t>(row, C_ID, c_id);
      Set<int32_t>(row, C_D_ID, d_id);
      Set<int32_t>(row, C_W_ID, w_id);
      SetVarchar(row, C_FIRST, first);
      SetVarchar(row, C_MIDDLE, "OE");
      SetVarchar(row, C_LAST, last);
      SetVarchar(row, C_STREET_1, rng.AlphaString(10, 20));
      SetVarchar(row, C_STREET_2, rng.AlphaString(10, 20));
      SetVarchar(row, C_CITY, rng.AlphaString(10, 20));
      SetVarchar(row, C_STATE, rng.AlphaString(2, 2));
      SetVarchar(row, C_ZIP, ZipCode(&rng));
      SetVarchar(row, C_PHONE, rng.NumericString(16, 16));
      Set<uint64_t>(row, C_SINCE, 0);
      SetVarchar(row, C_CREDIT, rng.Uniform(1, 10) == 1 ? "BC" : "GC");
      Set<double>(row, C_CREDIT_LIM, 50000.0);
      Set<double>(row, C_DISCOUNT, static_cast<double>(rng.Uniform(0, 5000)) / 10000.0);
      Set<double>(row, C_BALANCE, -10.0);
      Set<double>(row, C_YTD_PAYMENT, 10.0);
      Set<int16_t>(row, C_PAYMENT_CNT, 1);
      Set<int16_t>(row, C_DELIVERY_CNT, 0);
      SetVarchar(row, C_DATA, rng.AlphaString(300, 500));
      const storage::TupleSlot slot = customer->Insert(txn, *row);
      customer_pk->Insert(CustomerKey(w_id, d_id, c_id), slot);
      customer_name_idx->Insert(CustomerNameKey(w_id, d_id, last, first, c_id), slot);

      storage::ProjectedRow *h_row = history_buffer.Reset();
      Set<int32_t>(h_row, H_C_ID, c_id);
      Set<int32_t>(h_row, H_C_D_ID, d_id);
      Set<int32_t>(h_row, H_C_W_ID, w_id);
      Set<int32_t>(h_row, H_D_ID, d_id);
      Set<int32_t>(h_row, H_W_ID, w_id);
      Set<uint64_t>(h_row, H_DATE, 0);
      Set<double>(h_row, H_AMOUNT, 10.0);
      SetVarchar(h_row, H_DATA, rng.AlphaString(12, 24));
      history->Insert(txn, *h_row);
    }

    // Initial ORDERs over a permutation of customers; the last third are
    // undelivered and enter NEW_ORDER.
    std::vector<int32_t> customer_perm(static_cast<size_t>(config.customers_per_district));
    for (size_t i = 0; i < customer_perm.size(); i++) {
      customer_perm[i] = static_cast<int32_t>(i + 1);
    }
    for (size_t i = customer_perm.size(); i > 1; i--) {
      std::swap(customer_perm[i - 1], customer_perm[rng.Uniform(0, i - 1)]);
    }

    const int32_t undelivered_from = config.orders_per_district * 2 / 3 + 1;
    for (int32_t o_id = 1; o_id <= config.orders_per_district; o_id++) {
      const int32_t c_id = customer_perm[static_cast<size_t>(o_id - 1)];
      const auto ol_cnt = static_cast<int8_t>(rng.Uniform(5, 15));
      const bool delivered = o_id < undelivered_from;

      storage::ProjectedRow *row = order_buffer.Reset();
      Set<int32_t>(row, O_ID, o_id);
      Set<int32_t>(row, O_D_ID, d_id);
      Set<int32_t>(row, O_W_ID, w_id);
      Set<int32_t>(row, O_C_ID, c_id);
      Set<uint64_t>(row, O_ENTRY_D, 0);
      if (delivered) {
        Set<int32_t>(row, O_CARRIER_ID, static_cast<int32_t>(rng.Uniform(1, 10)));
      } else {
        row->SetNull(O_CARRIER_ID);
      }
      Set<int8_t>(row, O_OL_CNT, ol_cnt);
      Set<int8_t>(row, O_ALL_LOCAL, 1);
      const storage::TupleSlot o_slot = order->Insert(txn, *row);
      order_pk->Insert(OrderKey(w_id, d_id, o_id), o_slot);
      order_customer_idx->Insert(OrderCustomerKey(w_id, d_id, c_id, o_id), o_slot);

      for (int32_t ol = 1; ol <= ol_cnt; ol++) {
        storage::ProjectedRow *ol_row = order_line_buffer.Reset();
        Set<int32_t>(ol_row, OL_O_ID, o_id);
        Set<int32_t>(ol_row, OL_D_ID, d_id);
        Set<int32_t>(ol_row, OL_W_ID, w_id);
        Set<int32_t>(ol_row, OL_NUMBER, ol);
        Set<int32_t>(ol_row, OL_I_ID, static_cast<int32_t>(rng.Uniform(1, config.num_items)));
        Set<int32_t>(ol_row, OL_SUPPLY_W_ID, w_id);
        if (delivered) {
          Set<uint64_t>(ol_row, OL_DELIVERY_D, 0);
        } else {
          ol_row->SetNull(OL_DELIVERY_D);
        }
        Set<int8_t>(ol_row, OL_QUANTITY, 5);
        Set<double>(ol_row, OL_AMOUNT,
                    delivered ? 0.0 : static_cast<double>(rng.Uniform(1, 999999)) / 100.0);
        SetVarchar(ol_row, OL_DIST_INFO, rng.AlphaString(24, 24));
        order_line_pk->Insert(OrderLineKey(w_id, d_id, o_id, ol),
                              order_line->Insert(txn, *ol_row));
      }

      if (!delivered) {
        storage::ProjectedRow *no_row = new_order_buffer.Reset();
        Set<int32_t>(no_row, NO_O_ID, o_id);
        Set<int32_t>(no_row, NO_D_ID, d_id);
        Set<int32_t>(no_row, NO_W_ID, w_id);
        new_order_pk->Insert(NewOrderKey(w_id, d_id, o_id), new_order->Insert(txn, *no_row));
      }
    }
  }

  txn_manager->Commit(txn);
}

}  // namespace mainline::workload::tpcc
