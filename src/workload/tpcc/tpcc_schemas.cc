#include "workload/tpcc/tpcc_schemas.h"

namespace mainline::workload::tpcc {

using catalog::Column;
using catalog::Schema;
using catalog::TypeId;

Schema WarehouseSchema() {
  return Schema({
      {"w_id", TypeId::kInteger},
      {"w_name", TypeId::kVarchar},
      {"w_street_1", TypeId::kVarchar},
      {"w_street_2", TypeId::kVarchar},
      {"w_city", TypeId::kVarchar},
      {"w_state", TypeId::kVarchar},
      {"w_zip", TypeId::kVarchar},
      {"w_tax", TypeId::kDecimal},
      {"w_ytd", TypeId::kDecimal},
  });
}

Schema DistrictSchema() {
  return Schema({
      {"d_id", TypeId::kInteger},
      {"d_w_id", TypeId::kInteger},
      {"d_name", TypeId::kVarchar},
      {"d_street_1", TypeId::kVarchar},
      {"d_street_2", TypeId::kVarchar},
      {"d_city", TypeId::kVarchar},
      {"d_state", TypeId::kVarchar},
      {"d_zip", TypeId::kVarchar},
      {"d_tax", TypeId::kDecimal},
      {"d_ytd", TypeId::kDecimal},
      {"d_next_o_id", TypeId::kInteger},
  });
}

Schema CustomerSchema() {
  return Schema({
      {"c_id", TypeId::kInteger},
      {"c_d_id", TypeId::kInteger},
      {"c_w_id", TypeId::kInteger},
      {"c_first", TypeId::kVarchar},
      {"c_middle", TypeId::kVarchar},
      {"c_last", TypeId::kVarchar},
      {"c_street_1", TypeId::kVarchar},
      {"c_street_2", TypeId::kVarchar},
      {"c_city", TypeId::kVarchar},
      {"c_state", TypeId::kVarchar},
      {"c_zip", TypeId::kVarchar},
      {"c_phone", TypeId::kVarchar},
      {"c_since", TypeId::kTimestamp},
      {"c_credit", TypeId::kVarchar},
      {"c_credit_lim", TypeId::kDecimal},
      {"c_discount", TypeId::kDecimal},
      {"c_balance", TypeId::kDecimal},
      {"c_ytd_payment", TypeId::kDecimal},
      {"c_payment_cnt", TypeId::kSmallInt},
      {"c_delivery_cnt", TypeId::kSmallInt},
      {"c_data", TypeId::kVarchar},
  });
}

Schema HistorySchema() {
  return Schema({
      {"h_c_id", TypeId::kInteger},
      {"h_c_d_id", TypeId::kInteger},
      {"h_c_w_id", TypeId::kInteger},
      {"h_d_id", TypeId::kInteger},
      {"h_w_id", TypeId::kInteger},
      {"h_date", TypeId::kTimestamp},
      {"h_amount", TypeId::kDecimal},
      {"h_data", TypeId::kVarchar},
  });
}

Schema NewOrderSchema() {
  return Schema({
      {"no_o_id", TypeId::kInteger},
      {"no_d_id", TypeId::kInteger},
      {"no_w_id", TypeId::kInteger},
  });
}

Schema OrderSchema() {
  return Schema({
      {"o_id", TypeId::kInteger},
      {"o_d_id", TypeId::kInteger},
      {"o_w_id", TypeId::kInteger},
      {"o_c_id", TypeId::kInteger},
      {"o_entry_d", TypeId::kTimestamp},
      {"o_carrier_id", TypeId::kInteger, true},  // null until delivered
      {"o_ol_cnt", TypeId::kTinyInt},
      {"o_all_local", TypeId::kTinyInt},
  });
}

Schema OrderLineSchema() {
  return Schema({
      {"ol_o_id", TypeId::kInteger},
      {"ol_d_id", TypeId::kInteger},
      {"ol_w_id", TypeId::kInteger},
      {"ol_number", TypeId::kInteger},
      {"ol_i_id", TypeId::kInteger},
      {"ol_supply_w_id", TypeId::kInteger},
      {"ol_delivery_d", TypeId::kTimestamp, true},  // null until delivered
      {"ol_quantity", TypeId::kTinyInt},
      {"ol_amount", TypeId::kDecimal},
      {"ol_dist_info", TypeId::kVarchar},
  });
}

Schema ItemSchema() {
  return Schema({
      {"i_id", TypeId::kInteger},
      {"i_im_id", TypeId::kInteger},
      {"i_name", TypeId::kVarchar},
      {"i_price", TypeId::kDecimal},
      {"i_data", TypeId::kVarchar},
  });
}

Schema StockSchema() {
  return Schema({
      {"s_i_id", TypeId::kInteger},
      {"s_w_id", TypeId::kInteger},
      {"s_quantity", TypeId::kSmallInt},
      {"s_dist_01", TypeId::kVarchar},
      {"s_dist_02", TypeId::kVarchar},
      {"s_dist_03", TypeId::kVarchar},
      {"s_dist_04", TypeId::kVarchar},
      {"s_dist_05", TypeId::kVarchar},
      {"s_dist_06", TypeId::kVarchar},
      {"s_dist_07", TypeId::kVarchar},
      {"s_dist_08", TypeId::kVarchar},
      {"s_dist_09", TypeId::kVarchar},
      {"s_dist_10", TypeId::kVarchar},
      {"s_ytd", TypeId::kDecimal},
      {"s_order_cnt", TypeId::kSmallInt},
      {"s_remote_cnt", TypeId::kSmallInt},
      {"s_data", TypeId::kVarchar},
  });
}

}  // namespace mainline::workload::tpcc
