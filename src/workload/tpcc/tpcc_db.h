#pragma once

#include <memory>

#include "catalog/catalog.h"
#include "catalog/sql_table.h"
#include "index/index.h"
#include "transaction/transaction_manager.h"

namespace mainline::workload::tpcc {

/// Scale knobs. Defaults follow the TPC-C specification; tests shrink them.
struct Config {
  int32_t num_warehouses = 1;
  int32_t num_items = 100000;
  int32_t districts_per_warehouse = 10;
  int32_t customers_per_district = 3000;
  /// Initial orders per district (== customers; the last third are
  /// undelivered and populate NEW_ORDER).
  int32_t orders_per_district = 3000;

  /// A proportionally scaled-down configuration for tests.
  static Config Scaled(int32_t items, int32_t customers) {
    Config c;
    c.num_items = items;
    c.customers_per_district = customers;
    c.orders_per_district = customers;
    return c;
  }
};

/// The TPC-C database: creates the nine tables and their indexes in the
/// catalog, and loads the initial population.
class Database {
 public:
  Database(catalog::Catalog *catalog, const Config &config);

  /// Populate all tables per the TPC-C initial database rules (warehouses are
  /// loaded in parallel when `num_threads` > 1).
  void Load(transaction::TransactionManager *txn_manager, uint32_t num_threads = 1);

  Config config;

  catalog::SqlTable *warehouse;
  catalog::SqlTable *district;
  catalog::SqlTable *customer;
  catalog::SqlTable *history;
  catalog::SqlTable *new_order;
  catalog::SqlTable *order;
  catalog::SqlTable *order_line;
  catalog::SqlTable *item;
  catalog::SqlTable *stock;

  index::Index *warehouse_pk;
  index::Index *district_pk;
  index::Index *customer_pk;
  index::Index *customer_name_idx;  // ordered
  index::Index *new_order_pk;       // ordered
  index::Index *order_pk;
  index::Index *order_customer_idx;  // ordered
  index::Index *order_line_pk;       // ordered
  index::Index *item_pk;
  index::Index *stock_pk;

 private:
  void LoadItems(transaction::TransactionManager *txn_manager);
  void LoadWarehouse(transaction::TransactionManager *txn_manager, int32_t w_id);
};

}  // namespace mainline::workload::tpcc
