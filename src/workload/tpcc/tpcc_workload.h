#pragma once

#include <cstdint>

#include "common/rand_util.h"
#include "transaction/transaction_manager.h"
#include "workload/tpcc/tpcc_db.h"

namespace mainline::workload::tpcc {

/// Per-worker transaction counters.
struct WorkerStats {
  uint64_t new_order_committed = 0;
  uint64_t payment_committed = 0;
  uint64_t order_status_committed = 0;
  uint64_t delivery_committed = 0;
  uint64_t stock_level_committed = 0;
  uint64_t aborted = 0;

  uint64_t TotalCommitted() const {
    return new_order_committed + payment_committed + order_status_committed +
           delivery_committed + stock_level_committed;
  }
};

/// A TPC-C terminal: executes the standard transaction mix (45% NewOrder,
/// 43% Payment, 4% OrderStatus, 4% Delivery, 4% StockLevel) against its home
/// warehouse, the paper's one-warehouse-per-client setup.
class Worker {
 public:
  Worker(Database *db, transaction::TransactionManager *txn_manager, int32_t home_w_id,
         uint64_t seed)
      : db_(db), txn_manager_(txn_manager), w_id_(home_w_id), rng_(seed) {}

  /// Execute one transaction from the mix.
  /// \return true if it committed.
  bool RunOne();

  /// Individual procedures (public for targeted tests).
  bool NewOrderTxn();
  bool PaymentTxn();
  bool OrderStatusTxn();
  bool DeliveryTxn();
  bool StockLevelTxn();

  const WorkerStats &Stats() const { return stats_; }

 private:
  Database *db_;
  transaction::TransactionManager *txn_manager_;
  int32_t w_id_;
  common::Xorshift rng_;
  WorkerStats stats_;
};

}  // namespace mainline::workload::tpcc
