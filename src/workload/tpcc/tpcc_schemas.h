#pragma once

#include "catalog/schema.h"
#include "index/index_key.h"

namespace mainline::workload::tpcc {

/// Column position enums and schema factories for the nine TPC-C tables
/// (TPC-C v5.9). Column order matches the specification's table definitions;
/// positions double as physical column ids.

// -- WAREHOUSE ---------------------------------------------------------------
enum Warehouse : uint16_t {
  W_ID = 0,
  W_NAME,
  W_STREET_1,
  W_STREET_2,
  W_CITY,
  W_STATE,
  W_ZIP,
  W_TAX,
  W_YTD,
};

// -- DISTRICT ----------------------------------------------------------------
enum District : uint16_t {
  D_ID = 0,
  D_W_ID,
  D_NAME,
  D_STREET_1,
  D_STREET_2,
  D_CITY,
  D_STATE,
  D_ZIP,
  D_TAX,
  D_YTD,
  D_NEXT_O_ID,
};

// -- CUSTOMER ----------------------------------------------------------------
enum Customer : uint16_t {
  C_ID = 0,
  C_D_ID,
  C_W_ID,
  C_FIRST,
  C_MIDDLE,
  C_LAST,
  C_STREET_1,
  C_STREET_2,
  C_CITY,
  C_STATE,
  C_ZIP,
  C_PHONE,
  C_SINCE,
  C_CREDIT,
  C_CREDIT_LIM,
  C_DISCOUNT,
  C_BALANCE,
  C_YTD_PAYMENT,
  C_PAYMENT_CNT,
  C_DELIVERY_CNT,
  C_DATA,
};

// -- HISTORY -----------------------------------------------------------------
enum History : uint16_t {
  H_C_ID = 0,
  H_C_D_ID,
  H_C_W_ID,
  H_D_ID,
  H_W_ID,
  H_DATE,
  H_AMOUNT,
  H_DATA,
};

// -- NEW_ORDER ---------------------------------------------------------------
enum NewOrder : uint16_t {
  NO_O_ID = 0,
  NO_D_ID,
  NO_W_ID,
};

// -- ORDER -------------------------------------------------------------------
enum Order : uint16_t {
  O_ID = 0,
  O_D_ID,
  O_W_ID,
  O_C_ID,
  O_ENTRY_D,
  O_CARRIER_ID,
  O_OL_CNT,
  O_ALL_LOCAL,
};

// -- ORDER_LINE --------------------------------------------------------------
enum OrderLine : uint16_t {
  OL_O_ID = 0,
  OL_D_ID,
  OL_W_ID,
  OL_NUMBER,
  OL_I_ID,
  OL_SUPPLY_W_ID,
  OL_DELIVERY_D,
  OL_QUANTITY,
  OL_AMOUNT,
  OL_DIST_INFO,
};

// -- ITEM --------------------------------------------------------------------
enum Item : uint16_t {
  I_ID = 0,
  I_IM_ID,
  I_NAME,
  I_PRICE,
  I_DATA,
};

// -- STOCK -------------------------------------------------------------------
enum Stock : uint16_t {
  S_I_ID = 0,
  S_W_ID,
  S_QUANTITY,
  S_DIST_01,
  S_DIST_02,
  S_DIST_03,
  S_DIST_04,
  S_DIST_05,
  S_DIST_06,
  S_DIST_07,
  S_DIST_08,
  S_DIST_09,
  S_DIST_10,
  S_YTD,
  S_ORDER_CNT,
  S_REMOTE_CNT,
  S_DATA,
};

catalog::Schema WarehouseSchema();
catalog::Schema DistrictSchema();
catalog::Schema CustomerSchema();
catalog::Schema HistorySchema();
catalog::Schema NewOrderSchema();
catalog::Schema OrderSchema();
catalog::Schema OrderLineSchema();
catalog::Schema ItemSchema();
catalog::Schema StockSchema();

// -- index key builders --------------------------------------------------------

inline index::IndexKey WarehouseKey(int32_t w_id) {
  return index::IndexKey().AddSigned(w_id);
}
inline index::IndexKey DistrictKey(int32_t w_id, int32_t d_id) {
  return index::IndexKey().AddSigned(w_id).AddSigned(d_id);
}
inline index::IndexKey CustomerKey(int32_t w_id, int32_t d_id, int32_t c_id) {
  return index::IndexKey().AddSigned(w_id).AddSigned(d_id).AddSigned(c_id);
}
inline index::IndexKey CustomerNameKey(int32_t w_id, int32_t d_id, std::string_view c_last,
                                       std::string_view c_first, int32_t c_id) {
  return index::IndexKey()
      .AddSigned(w_id)
      .AddSigned(d_id)
      .AddString(c_last, 16)
      .AddString(c_first, 12)
      .AddSigned(c_id);
}
inline index::IndexKey NewOrderKey(int32_t w_id, int32_t d_id, int32_t o_id) {
  return index::IndexKey().AddSigned(w_id).AddSigned(d_id).AddSigned(o_id);
}
inline index::IndexKey OrderKey(int32_t w_id, int32_t d_id, int32_t o_id) {
  return index::IndexKey().AddSigned(w_id).AddSigned(d_id).AddSigned(o_id);
}
inline index::IndexKey OrderCustomerKey(int32_t w_id, int32_t d_id, int32_t c_id,
                                        int32_t o_id) {
  return index::IndexKey().AddSigned(w_id).AddSigned(d_id).AddSigned(c_id).AddSigned(o_id);
}
inline index::IndexKey OrderLineKey(int32_t w_id, int32_t d_id, int32_t o_id,
                                    int32_t ol_number) {
  return index::IndexKey()
      .AddSigned(w_id)
      .AddSigned(d_id)
      .AddSigned(o_id)
      .AddSigned(ol_number);
}
inline index::IndexKey ItemKey(int32_t i_id) { return index::IndexKey().AddSigned(i_id); }
inline index::IndexKey StockKey(int32_t w_id, int32_t i_id) {
  return index::IndexKey().AddSigned(w_id).AddSigned(i_id);
}

}  // namespace mainline::workload::tpcc
