#include "workload/tpcc/tpcc_workload.h"

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "catalog/sql_table.h"
#include "common/typedefs.h"
#include "index/index.h"
#include "storage/projected_row.h"
#include "storage/storage_defs.h"
#include "workload/row_util.h"
#include "workload/tpcc/tpcc_schemas.h"

namespace mainline::workload::tpcc {

namespace {

/// Reusable projection buffer bound to a subset of a table's columns.
class Projection {
 public:
  Projection(catalog::SqlTable *table, std::vector<uint16_t> cols)
      : initializer_(table->InitializerForColumns(cols)),
        bytes_(initializer_.ProjectedRowSize() + 8) {}

  explicit Projection(catalog::SqlTable *table)
      : initializer_(table->FullInitializer()), bytes_(initializer_.ProjectedRowSize() + 8) {}

  storage::ProjectedRow *Reset() { return initializer_.InitializeRow(bytes_.data()); }

  /// Map a schema column position to this projection's index.
  uint16_t IndexOf(uint16_t col) const {
    const int32_t idx = initializer_.InitializeRow(
        const_cast<byte *>(bytes_.data()))->ProjectionIndex(storage::col_id_t(col));
    MAINLINE_ASSERT(idx >= 0, "column not in projection");
    return static_cast<uint16_t>(idx);
  }

 private:
  storage::ProjectedRowInitializer initializer_;
  std::vector<byte> bytes_;
};

}  // namespace

bool Worker::RunOne() {
  const uint64_t roll = rng_.Uniform(1, 100);
  bool ok;
  if (roll <= 45) {
    ok = NewOrderTxn();
    if (ok) stats_.new_order_committed++;
  } else if (roll <= 88) {
    ok = PaymentTxn();
    if (ok) stats_.payment_committed++;
  } else if (roll <= 92) {
    ok = OrderStatusTxn();
    if (ok) stats_.order_status_committed++;
  } else if (roll <= 96) {
    ok = DeliveryTxn();
    if (ok) stats_.delivery_committed++;
  } else {
    ok = StockLevelTxn();
    if (ok) stats_.stock_level_committed++;
  }
  if (!ok) stats_.aborted++;
  return ok;
}

bool Worker::NewOrderTxn() {
  Database &db = *db_;
  const auto d_id = static_cast<int32_t>(rng_.Uniform(1, db.config.districts_per_warehouse));
  const auto c_id = static_cast<int32_t>(
      rng_.NuRand(1023, 1, static_cast<uint64_t>(db.config.customers_per_district), 259));
  const auto ol_cnt = static_cast<int32_t>(rng_.Uniform(5, 15));
  const bool rollback = rng_.Uniform(1, 100) == 1;  // 1% enter an invalid item

  auto *txn = txn_manager_->BeginTransaction();

  // Warehouse tax (read-only).
  storage::TupleSlot w_slot;
  if (!db.warehouse_pk->Find(WarehouseKey(w_id_), &w_slot)) {
    txn_manager_->Abort(txn);
    return false;
  }
  Projection w_proj(db.warehouse, {W_TAX});
  storage::ProjectedRow *w_row = w_proj.Reset();
  if (!db.warehouse->Select(txn, w_slot, w_row)) {
    txn_manager_->Abort(txn);
    return false;
  }

  // District: read tax + next order id, increment next order id. The update
  // delta covers only the modified (fixed-length) column.
  storage::TupleSlot d_slot;
  db.district_pk->Find(DistrictKey(w_id_, d_id), &d_slot);
  Projection d_proj(db.district, {D_TAX, D_NEXT_O_ID});
  storage::ProjectedRow *d_row = d_proj.Reset();
  if (!db.district->Select(txn, d_slot, d_row)) {
    txn_manager_->Abort(txn);
    return false;
  }
  const auto next_idx =
      static_cast<uint16_t>(d_row->ProjectionIndex(storage::col_id_t(D_NEXT_O_ID)));
  const int32_t o_id = Get<int32_t>(*d_row, next_idx);
  Projection d_delta_proj(db.district, {D_NEXT_O_ID});
  storage::ProjectedRow *d_delta = d_delta_proj.Reset();
  Set<int32_t>(d_delta, 0, o_id + 1);
  if (!db.district->Update(txn, d_slot, *d_delta)) {
    txn_manager_->Abort(txn);
    return false;
  }

  // Customer discount/credit (read-only).
  storage::TupleSlot c_slot;
  db.customer_pk->Find(CustomerKey(w_id_, d_id, c_id), &c_slot);
  Projection c_proj(db.customer, {C_DISCOUNT, C_LAST, C_CREDIT});
  if (!db.customer->Select(txn, c_slot, c_proj.Reset())) {
    txn_manager_->Abort(txn);
    return false;
  }

  // Insert ORDER and NEW_ORDER.
  Projection o_proj(db.order);
  storage::ProjectedRow *o_row = o_proj.Reset();
  Set<int32_t>(o_row, O_ID, o_id);
  Set<int32_t>(o_row, O_D_ID, d_id);
  Set<int32_t>(o_row, O_W_ID, w_id_);
  Set<int32_t>(o_row, O_C_ID, c_id);
  Set<uint64_t>(o_row, O_ENTRY_D, txn->StartTime());
  o_row->SetNull(O_CARRIER_ID);
  Set<int8_t>(o_row, O_OL_CNT, static_cast<int8_t>(ol_cnt));
  Set<int8_t>(o_row, O_ALL_LOCAL, 1);
  const storage::TupleSlot o_slot = db.order->Insert(txn, *o_row);
  db.order_pk->InsertOverwrite(OrderKey(w_id_, d_id, o_id), o_slot);
  db.order_customer_idx->InsertOverwrite(OrderCustomerKey(w_id_, d_id, c_id, o_id), o_slot);

  Projection no_proj(db.new_order);
  storage::ProjectedRow *no_row = no_proj.Reset();
  Set<int32_t>(no_row, NO_O_ID, o_id);
  Set<int32_t>(no_row, NO_D_ID, d_id);
  Set<int32_t>(no_row, NO_W_ID, w_id_);
  db.new_order_pk->InsertOverwrite(NewOrderKey(w_id_, d_id, o_id),
                                   db.new_order->Insert(txn, *no_row));

  // Order lines.
  Projection i_proj(db.item, {I_PRICE, I_NAME, I_DATA});
  Projection s_proj(db.stock,
                    {S_QUANTITY, S_YTD, S_ORDER_CNT, S_REMOTE_CNT, S_DATA,
                     static_cast<uint16_t>(S_DIST_01 + (d_id - 1))});
  Projection ol_proj(db.order_line);
  for (int32_t ol = 1; ol <= ol_cnt; ol++) {
    const bool last = ol == ol_cnt;
    const int32_t i_id =
        (rollback && last)
            ? -1  // unused item id: triggers the rollback case
            : static_cast<int32_t>(
                  rng_.NuRand(8191, 1, static_cast<uint64_t>(db.config.num_items), 42));
    storage::TupleSlot i_slot;
    if (!db.item_pk->Find(ItemKey(i_id), &i_slot)) {
      txn_manager_->Abort(txn);  // "not-found" item: the 1% rollback clause
      return false;
    }
    storage::ProjectedRow *i_row = i_proj.Reset();
    if (!db.item->Select(txn, i_slot, i_row)) {
      txn_manager_->Abort(txn);
      return false;
    }
    const double i_price = Get<double>(
        *i_row, static_cast<uint16_t>(i_row->ProjectionIndex(storage::col_id_t(I_PRICE))));

    const auto quantity = static_cast<int32_t>(rng_.Uniform(1, 10));
    storage::TupleSlot s_slot;
    db.stock_pk->Find(StockKey(w_id_, i_id), &s_slot);
    storage::ProjectedRow *s_row = s_proj.Reset();
    if (!db.stock->Select(txn, s_slot, s_row)) {
      txn_manager_->Abort(txn);
      return false;
    }
    const auto qty_idx =
        static_cast<uint16_t>(s_row->ProjectionIndex(storage::col_id_t(S_QUANTITY)));
    const auto ytd_idx =
        static_cast<uint16_t>(s_row->ProjectionIndex(storage::col_id_t(S_YTD)));
    const auto cnt_idx =
        static_cast<uint16_t>(s_row->ProjectionIndex(storage::col_id_t(S_ORDER_CNT)));
    const auto dist_idx = static_cast<uint16_t>(
        s_row->ProjectionIndex(storage::col_id_t(S_DIST_01 + (d_id - 1))));
    int16_t s_qty = Get<int16_t>(*s_row, qty_idx);
    s_qty = s_qty >= quantity + 10 ? static_cast<int16_t>(s_qty - quantity)
                                   : static_cast<int16_t>(s_qty - quantity + 91);
    const std::string dist_info(GetVarchar(*s_row, dist_idx));
    // The update delta contains only the modified fixed-length columns; the
    // varchar columns we read stay out of the delta (varlen values in a
    // delta transfer buffer ownership to the version chain).
    Projection s_delta_proj(db.stock, {S_QUANTITY, S_YTD, S_ORDER_CNT});
    storage::ProjectedRow *s_delta = s_delta_proj.Reset();
    Set<int16_t>(s_delta,
                 static_cast<uint16_t>(s_delta->ProjectionIndex(storage::col_id_t(S_QUANTITY))),
                 s_qty);
    Set<double>(s_delta,
                static_cast<uint16_t>(s_delta->ProjectionIndex(storage::col_id_t(S_YTD))),
                Get<double>(*s_row, ytd_idx) + quantity);
    Set<int16_t>(s_delta,
                 static_cast<uint16_t>(s_delta->ProjectionIndex(storage::col_id_t(S_ORDER_CNT))),
                 static_cast<int16_t>(Get<int16_t>(*s_row, cnt_idx) + 1));
    if (!db.stock->Update(txn, s_slot, *s_delta)) {
      txn_manager_->Abort(txn);
      return false;
    }

    storage::ProjectedRow *ol_row = ol_proj.Reset();
    Set<int32_t>(ol_row, OL_O_ID, o_id);
    Set<int32_t>(ol_row, OL_D_ID, d_id);
    Set<int32_t>(ol_row, OL_W_ID, w_id_);
    Set<int32_t>(ol_row, OL_NUMBER, ol);
    Set<int32_t>(ol_row, OL_I_ID, i_id);
    Set<int32_t>(ol_row, OL_SUPPLY_W_ID, w_id_);
    ol_row->SetNull(OL_DELIVERY_D);
    Set<int8_t>(ol_row, OL_QUANTITY, static_cast<int8_t>(quantity));
    Set<double>(ol_row, OL_AMOUNT, quantity * i_price);
    SetVarchar(ol_row, OL_DIST_INFO, dist_info);
    db.order_line_pk->InsertOverwrite(OrderLineKey(w_id_, d_id, o_id, ol),
                                      db.order_line->Insert(txn, *ol_row));
  }

  txn_manager_->Commit(txn);
  return true;
}

bool Worker::PaymentTxn() {
  Database &db = *db_;
  const auto d_id = static_cast<int32_t>(rng_.Uniform(1, db.config.districts_per_warehouse));
  const double amount = static_cast<double>(rng_.Uniform(100, 500000)) / 100.0;
  // Single-warehouse deployments pay locally; otherwise 15% remote.
  int32_t c_w_id = w_id_, c_d_id = d_id;
  if (db.config.num_warehouses > 1 && rng_.Uniform(1, 100) <= 15) {
    do {
      c_w_id = static_cast<int32_t>(rng_.Uniform(1, db.config.num_warehouses));
    } while (c_w_id == w_id_);
    c_d_id = static_cast<int32_t>(rng_.Uniform(1, db.config.districts_per_warehouse));
  }

  auto *txn = txn_manager_->BeginTransaction();

  // Warehouse: read name, bump ytd.
  storage::TupleSlot w_slot;
  db.warehouse_pk->Find(WarehouseKey(w_id_), &w_slot);
  Projection w_proj(db.warehouse, {W_NAME, W_YTD});
  storage::ProjectedRow *w_row = w_proj.Reset();
  if (!db.warehouse->Select(txn, w_slot, w_row)) {
    txn_manager_->Abort(txn);
    return false;
  }
  const auto w_ytd_idx =
      static_cast<uint16_t>(w_row->ProjectionIndex(storage::col_id_t(W_YTD)));
  Projection w_delta_proj(db.warehouse, {W_YTD});
  storage::ProjectedRow *w_delta = w_delta_proj.Reset();
  Set<double>(w_delta, 0, Get<double>(*w_row, w_ytd_idx) + amount);
  if (!db.warehouse->Update(txn, w_slot, *w_delta)) {
    txn_manager_->Abort(txn);
    return false;
  }

  // District: read name, bump ytd.
  storage::TupleSlot d_slot;
  db.district_pk->Find(DistrictKey(w_id_, d_id), &d_slot);
  Projection d_proj(db.district, {D_NAME, D_YTD});
  storage::ProjectedRow *d_row = d_proj.Reset();
  if (!db.district->Select(txn, d_slot, d_row)) {
    txn_manager_->Abort(txn);
    return false;
  }
  const auto d_ytd_idx =
      static_cast<uint16_t>(d_row->ProjectionIndex(storage::col_id_t(D_YTD)));
  Projection d_delta_proj(db.district, {D_YTD});
  storage::ProjectedRow *d_delta = d_delta_proj.Reset();
  Set<double>(d_delta, 0, Get<double>(*d_row, d_ytd_idx) + amount);
  if (!db.district->Update(txn, d_slot, *d_delta)) {
    txn_manager_->Abort(txn);
    return false;
  }

  // Customer: by last name (60%) or id (40%).
  storage::TupleSlot c_slot;
  if (rng_.Uniform(1, 100) <= 60) {
    const std::string last =
        [&] {
          // Scaled-down databases hold fewer than 1000 distinct last names.
          const auto range =
              static_cast<uint64_t>(std::min(1000, db.config.customers_per_district));
          const auto num =
              static_cast<int32_t>(rng_.NuRand(255, 0, 999, 123) % range);
          static const char *kSyllables[] = {"BAR", "OUGHT", "ABLE",  "PRI",   "PRES",
                                             "ESE", "ANTI",  "CALLY", "ATION", "EING"};
          return std::string(kSyllables[num / 100]) + kSyllables[(num / 10) % 10] +
                 kSyllables[num % 10];
        }();
    std::vector<storage::TupleSlot> matches;
    db.customer_name_idx->ScanAscending(CustomerNameKey(c_w_id, c_d_id, last, "", 0),
                                        CustomerNameKey(c_w_id, c_d_id, last + "\x7f", "", 0),
                                        0, &matches);
    if (matches.empty()) {
      txn_manager_->Abort(txn);
      return false;
    }
    c_slot = matches[matches.size() / 2];  // spec: middle match by first name
  } else {
    const auto c_id = static_cast<int32_t>(
        rng_.NuRand(1023, 1, static_cast<uint64_t>(db.config.customers_per_district), 259));
    if (!db.customer_pk->Find(CustomerKey(c_w_id, c_d_id, c_id), &c_slot)) {
      txn_manager_->Abort(txn);
      return false;
    }
  }

  Projection c_proj(db.customer,
                    {C_ID, C_BALANCE, C_YTD_PAYMENT, C_PAYMENT_CNT, C_CREDIT, C_DATA});
  storage::ProjectedRow *c_row = c_proj.Reset();
  if (!db.customer->Select(txn, c_slot, c_row)) {
    txn_manager_->Abort(txn);
    return false;
  }
  const auto bal_idx =
      static_cast<uint16_t>(c_row->ProjectionIndex(storage::col_id_t(C_BALANCE)));
  const auto ytd_idx =
      static_cast<uint16_t>(c_row->ProjectionIndex(storage::col_id_t(C_YTD_PAYMENT)));
  const auto cnt_idx =
      static_cast<uint16_t>(c_row->ProjectionIndex(storage::col_id_t(C_PAYMENT_CNT)));
  const auto credit_idx =
      static_cast<uint16_t>(c_row->ProjectionIndex(storage::col_id_t(C_CREDIT)));
  const auto data_idx =
      static_cast<uint16_t>(c_row->ProjectionIndex(storage::col_id_t(C_DATA)));
  const auto id_idx = static_cast<uint16_t>(c_row->ProjectionIndex(storage::col_id_t(C_ID)));
  const bool bad_credit = GetVarchar(*c_row, credit_idx) == "BC";
  // Build the delta: fixed-length columns always; c_data only for bad-credit
  // customers, as a freshly allocated value (varlen values in a delta
  // transfer ownership to the version chain).
  std::vector<uint16_t> delta_cols = {C_BALANCE, C_YTD_PAYMENT, C_PAYMENT_CNT};
  if (bad_credit) delta_cols.push_back(C_DATA);
  Projection c_delta_proj(db.customer, delta_cols);
  storage::ProjectedRow *c_delta = c_delta_proj.Reset();
  Set<double>(c_delta,
              static_cast<uint16_t>(c_delta->ProjectionIndex(storage::col_id_t(C_BALANCE))),
              Get<double>(*c_row, bal_idx) - amount);
  Set<double>(c_delta,
              static_cast<uint16_t>(c_delta->ProjectionIndex(storage::col_id_t(C_YTD_PAYMENT))),
              Get<double>(*c_row, ytd_idx) + amount);
  Set<int16_t>(c_delta,
               static_cast<uint16_t>(c_delta->ProjectionIndex(storage::col_id_t(C_PAYMENT_CNT))),
               static_cast<int16_t>(Get<int16_t>(*c_row, cnt_idx) + 1));
  if (bad_credit) {
    // Bad credit: prepend payment info to c_data (truncated to 500).
    std::string data = std::to_string(Get<int32_t>(*c_row, id_idx)) + "," +
                       std::to_string(amount) + ";" + std::string(GetVarchar(*c_row, data_idx));
    if (data.size() > 500) data.resize(500);
    SetVarchar(c_delta,
               static_cast<uint16_t>(c_delta->ProjectionIndex(storage::col_id_t(C_DATA))),
               data);
  }
  if (!db.customer->Update(txn, c_slot, *c_delta)) {
    txn_manager_->Abort(txn);
    return false;
  }

  // History insert.
  Projection h_proj(db.history);
  storage::ProjectedRow *h_row = h_proj.Reset();
  Set<int32_t>(h_row, H_C_ID, Get<int32_t>(*c_row, id_idx));
  Set<int32_t>(h_row, H_C_D_ID, c_d_id);
  Set<int32_t>(h_row, H_C_W_ID, c_w_id);
  Set<int32_t>(h_row, H_D_ID, d_id);
  Set<int32_t>(h_row, H_W_ID, w_id_);
  Set<uint64_t>(h_row, H_DATE, txn->StartTime());
  Set<double>(h_row, H_AMOUNT, amount);
  SetVarchar(h_row, H_DATA, "payment history");
  db.history->Insert(txn, *h_row);

  txn_manager_->Commit(txn);
  return true;
}

bool Worker::OrderStatusTxn() {
  Database &db = *db_;
  const auto d_id = static_cast<int32_t>(rng_.Uniform(1, db.config.districts_per_warehouse));
  const auto c_id = static_cast<int32_t>(
      rng_.NuRand(1023, 1, static_cast<uint64_t>(db.config.customers_per_district), 259));

  auto *txn = txn_manager_->BeginTransaction();

  storage::TupleSlot c_slot;
  if (!db.customer_pk->Find(CustomerKey(w_id_, d_id, c_id), &c_slot)) {
    txn_manager_->Abort(txn);
    return false;
  }
  Projection c_proj(db.customer, {C_BALANCE, C_FIRST, C_MIDDLE, C_LAST});
  if (!db.customer->Select(txn, c_slot, c_proj.Reset())) {
    txn_manager_->Abort(txn);
    return false;
  }

  // Newest order of the customer.
  std::vector<storage::TupleSlot> orders;
  db.order_customer_idx->ScanDescending(
      OrderCustomerKey(w_id_, d_id, c_id, 0),
      OrderCustomerKey(w_id_, d_id, c_id, INT32_MAX), 8, &orders);
  Projection o_proj(db.order, {O_ID, O_ENTRY_D, O_CARRIER_ID, O_OL_CNT});
  int32_t o_id = -1;
  int32_t ol_cnt = 0;
  for (const storage::TupleSlot slot : orders) {
    storage::ProjectedRow *o_row = o_proj.Reset();
    if (!db.order->Select(txn, slot, o_row)) continue;  // skip dead index entries
    o_id = Get<int32_t>(*o_row,
                        static_cast<uint16_t>(o_row->ProjectionIndex(storage::col_id_t(O_ID))));
    ol_cnt = Get<int8_t>(
        *o_row, static_cast<uint16_t>(o_row->ProjectionIndex(storage::col_id_t(O_OL_CNT))));
    break;
  }
  if (o_id >= 0) {
    std::vector<storage::TupleSlot> lines;
    db.order_line_pk->ScanAscending(OrderLineKey(w_id_, d_id, o_id, 0),
                                    OrderLineKey(w_id_, d_id, o_id, INT32_MAX), 0, &lines);
    Projection ol_proj(db.order_line,
                       {OL_I_ID, OL_SUPPLY_W_ID, OL_QUANTITY, OL_AMOUNT, OL_DELIVERY_D});
    for (const storage::TupleSlot slot : lines) {
      db.order_line->Select(txn, slot, ol_proj.Reset());
    }
    (void)ol_cnt;
  }

  txn_manager_->Commit(txn);
  return true;
}

bool Worker::DeliveryTxn() {
  Database &db = *db_;
  const auto carrier = static_cast<int32_t>(rng_.Uniform(1, 10));
  auto *txn = txn_manager_->BeginTransaction();

  for (int32_t d_id = 1; d_id <= db.config.districts_per_warehouse; d_id++) {
    // Oldest undelivered order in the district.
    std::vector<storage::TupleSlot> candidates;
    db.new_order_pk->ScanAscending(NewOrderKey(w_id_, d_id, 0),
                                   NewOrderKey(w_id_, d_id, INT32_MAX), 4, &candidates);
    Projection no_proj(db.new_order, {NO_O_ID});
    int32_t o_id = -1;
    storage::TupleSlot no_slot;
    for (const storage::TupleSlot slot : candidates) {
      storage::ProjectedRow *no_row = no_proj.Reset();
      if (!db.new_order->Select(txn, slot, no_row)) continue;
      o_id = Get<int32_t>(*no_row, 0);
      no_slot = slot;
      break;
    }
    if (o_id < 0) continue;  // district fully delivered

    if (!db.new_order->Delete(txn, no_slot)) {
      txn_manager_->Abort(txn);
      return false;
    }
    db.new_order_pk->Delete(NewOrderKey(w_id_, d_id, o_id));

    // Order: fetch customer, stamp carrier.
    storage::TupleSlot o_slot;
    if (!db.order_pk->Find(OrderKey(w_id_, d_id, o_id), &o_slot)) {
      txn_manager_->Abort(txn);
      return false;
    }
    Projection o_proj(db.order, {O_C_ID, O_CARRIER_ID});
    storage::ProjectedRow *o_row = o_proj.Reset();
    if (!db.order->Select(txn, o_slot, o_row)) {
      txn_manager_->Abort(txn);
      return false;
    }
    const int32_t c_id = Get<int32_t>(
        *o_row, static_cast<uint16_t>(o_row->ProjectionIndex(storage::col_id_t(O_C_ID))));
    Set<int32_t>(o_row,
                 static_cast<uint16_t>(o_row->ProjectionIndex(storage::col_id_t(O_CARRIER_ID))),
                 carrier);
    if (!db.order->Update(txn, o_slot, *o_row)) {
      txn_manager_->Abort(txn);
      return false;
    }

    // Order lines: stamp delivery date, sum amounts.
    std::vector<storage::TupleSlot> lines;
    db.order_line_pk->ScanAscending(OrderLineKey(w_id_, d_id, o_id, 0),
                                    OrderLineKey(w_id_, d_id, o_id, INT32_MAX), 0, &lines);
    Projection ol_proj(db.order_line, {OL_AMOUNT, OL_DELIVERY_D});
    double total = 0;
    for (const storage::TupleSlot slot : lines) {
      storage::ProjectedRow *ol_row = ol_proj.Reset();
      if (!db.order_line->Select(txn, slot, ol_row)) continue;
      total += Get<double>(*ol_row, static_cast<uint16_t>(ol_row->ProjectionIndex(
                                        storage::col_id_t(OL_AMOUNT))));
      Set<uint64_t>(ol_row,
                    static_cast<uint16_t>(
                        ol_row->ProjectionIndex(storage::col_id_t(OL_DELIVERY_D))),
                    txn->StartTime());
      if (!db.order_line->Update(txn, slot, *ol_row)) {
        txn_manager_->Abort(txn);
        return false;
      }
    }

    // Customer: add amount, bump delivery count.
    storage::TupleSlot c_slot;
    db.customer_pk->Find(CustomerKey(w_id_, d_id, c_id), &c_slot);
    Projection c_proj(db.customer, {C_BALANCE, C_DELIVERY_CNT});
    storage::ProjectedRow *c_row = c_proj.Reset();
    if (!db.customer->Select(txn, c_slot, c_row)) {
      txn_manager_->Abort(txn);
      return false;
    }
    const auto bal_idx =
        static_cast<uint16_t>(c_row->ProjectionIndex(storage::col_id_t(C_BALANCE)));
    const auto cnt_idx =
        static_cast<uint16_t>(c_row->ProjectionIndex(storage::col_id_t(C_DELIVERY_CNT)));
    Set<double>(c_row, bal_idx, Get<double>(*c_row, bal_idx) + total);
    Set<int16_t>(c_row, cnt_idx, static_cast<int16_t>(Get<int16_t>(*c_row, cnt_idx) + 1));
    if (!db.customer->Update(txn, c_slot, *c_row)) {
      txn_manager_->Abort(txn);
      return false;
    }
  }

  txn_manager_->Commit(txn);
  return true;
}

bool Worker::StockLevelTxn() {
  Database &db = *db_;
  const auto d_id = static_cast<int32_t>(rng_.Uniform(1, db.config.districts_per_warehouse));
  const auto threshold = static_cast<int16_t>(rng_.Uniform(10, 20));
  auto *txn = txn_manager_->BeginTransaction();

  storage::TupleSlot d_slot;
  db.district_pk->Find(DistrictKey(w_id_, d_id), &d_slot);
  Projection d_proj(db.district, {D_NEXT_O_ID});
  storage::ProjectedRow *d_row = d_proj.Reset();
  if (!db.district->Select(txn, d_slot, d_row)) {
    txn_manager_->Abort(txn);
    return false;
  }
  const int32_t next_o_id = Get<int32_t>(*d_row, 0);

  // Distinct items in the last 20 orders with stock below the threshold.
  std::vector<storage::TupleSlot> lines;
  db.order_line_pk->ScanAscending(
      OrderLineKey(w_id_, d_id, std::max(1, next_o_id - 20), 0),
      OrderLineKey(w_id_, d_id, next_o_id, INT32_MAX), 0, &lines);
  Projection ol_proj(db.order_line, {OL_I_ID});
  Projection s_proj(db.stock, {S_QUANTITY});
  std::unordered_set<int32_t> low_stock;
  for (const storage::TupleSlot slot : lines) {
    storage::ProjectedRow *ol_row = ol_proj.Reset();
    if (!db.order_line->Select(txn, slot, ol_row)) continue;
    const int32_t i_id = Get<int32_t>(*ol_row, 0);
    storage::TupleSlot s_slot;
    if (!db.stock_pk->Find(StockKey(w_id_, i_id), &s_slot)) continue;
    storage::ProjectedRow *s_row = s_proj.Reset();
    if (!db.stock->Select(txn, s_slot, s_row)) continue;
    if (Get<int16_t>(*s_row, 0) < threshold) low_stock.insert(i_id);
  }

  txn_manager_->Commit(txn);
  return true;
}

}  // namespace mainline::workload::tpcc
