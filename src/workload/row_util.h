#pragma once

#include <cstring>
#include <string_view>

#include "storage/projected_row.h"
#include "storage/varlen_entry.h"

namespace mainline::workload {

/// Typed helpers for reading and writing ProjectedRow values in workload
/// code. `idx` is the projection index (not the column id).
template <typename T>
void Set(storage::ProjectedRow *row, uint16_t idx, T value) {
  *reinterpret_cast<T *>(row->AccessForceNotNull(idx)) = value;
}

template <typename T>
T Get(const storage::ProjectedRow &row, uint16_t idx) {
  const byte *value = row.AccessWithNullCheck(idx);
  MAINLINE_ASSERT(value != nullptr, "unexpected null");
  return *reinterpret_cast<const T *>(value);
}

/// Write a varchar value, allocating an owned buffer if it does not inline.
inline void SetVarchar(storage::ProjectedRow *row, uint16_t idx, std::string_view value) {
  const storage::VarlenEntry entry = storage::AllocateVarlen(value);
  std::memcpy(row->AccessForceNotNull(idx), &entry, sizeof(entry));
}

inline std::string_view GetVarchar(const storage::ProjectedRow &row, uint16_t idx) {
  const byte *value = row.AccessWithNullCheck(idx);
  MAINLINE_ASSERT(value != nullptr, "unexpected null");
  return reinterpret_cast<const storage::VarlenEntry *>(value)->StringView();
}

}  // namespace mainline::workload
