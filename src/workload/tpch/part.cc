#include "workload/tpch/part.h"

#include <cstdio>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "catalog/sql_table.h"
#include "common/rand_util.h"
#include "storage/projected_row.h"
#include "transaction/transaction_context.h"
#include "workload/row_util.h"

namespace mainline::workload::tpch {

using catalog::TypeId;

catalog::Schema PartSchema() {
  return catalog::Schema({
      {"p_partkey", TypeId::kBigInt},
      {"p_name", TypeId::kVarchar},
      {"p_mfgr", TypeId::kVarchar},
      {"p_brand", TypeId::kVarchar},
      {"p_type", TypeId::kVarchar},
      {"p_size", TypeId::kInteger},
      {"p_container", TypeId::kVarchar},
      {"p_retailprice", TypeId::kDecimal},
      {"p_comment", TypeId::kVarchar},
  });
}

catalog::SqlTable *GeneratePart(catalog::Catalog *catalog,
                                transaction::TransactionManager *txn_manager,
                                uint64_t num_parts, uint64_t seed, uint64_t batch_size,
                                const char *table_name) {
  static const char *kTypeClass[] = {"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY",
                                     "PROMO"};
  static const char *kTypeFinish[] = {"ANODIZED", "BURNISHED", "PLATED", "POLISHED",
                                      "BRUSHED"};
  static const char *kTypeMetal[] = {"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"};
  static const char *kContainerSize[] = {"SM", "MED", "LG", "JUMBO", "WRAP"};
  static const char *kContainerKind[] = {"CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN",
                                         "DRUM"};
  static const char *kNameWords[] = {"almond",    "antique",  "aquamarine", "azure",
                                     "beige",     "bisque",   "blanched",   "blush",
                                     "burlywood", "chartreuse", "chiffon",  "coral"};

  catalog::SqlTable *table = catalog->GetTable(catalog->CreateTable(table_name, PartSchema()));
  common::Xorshift rng(seed);
  const storage::ProjectedRowInitializer initializer = table->FullInitializer();
  std::vector<byte> buffer(initializer.ProjectedRowSize() + 8);

  transaction::TransactionContext *txn = txn_manager->BeginTransaction();
  for (uint64_t i = 0; i < num_parts; i++) {
    storage::ProjectedRow *row = initializer.InitializeRow(buffer.data());
    Set<int64_t>(row, P_PARTKEY, static_cast<int64_t>(i + 1));
    const std::string name = std::string(kNameWords[rng.Uniform(0, 11)]) + " " +
                             kNameWords[rng.Uniform(0, 11)];
    SetVarchar(row, P_NAME, name);
    const uint64_t mfgr = rng.Uniform(1, 5);
    char mfgr_buf[32];
    std::snprintf(mfgr_buf, sizeof(mfgr_buf), "Manufacturer#%llu",
                  static_cast<unsigned long long>(mfgr));
    SetVarchar(row, P_MFGR, mfgr_buf);
    char brand_buf[32];
    std::snprintf(brand_buf, sizeof(brand_buf), "Brand#%llu%llu",
                  static_cast<unsigned long long>(mfgr),
                  static_cast<unsigned long long>(rng.Uniform(1, 5)));
    SetVarchar(row, P_BRAND, brand_buf);
    const std::string type = std::string(kTypeClass[rng.Uniform(0, 5)]) + " " +
                             kTypeFinish[rng.Uniform(0, 4)] + " " +
                             kTypeMetal[rng.Uniform(0, 4)];
    SetVarchar(row, P_TYPE, type);
    Set<int32_t>(row, P_SIZE, static_cast<int32_t>(rng.Uniform(1, 50)));
    const std::string container = std::string(kContainerSize[rng.Uniform(0, 4)]) + " " +
                                  kContainerKind[rng.Uniform(0, 7)];
    SetVarchar(row, P_CONTAINER, container);
    Set<double>(row, P_RETAILPRICE, static_cast<double>(rng.Uniform(90000, 200000)) / 100.0);
    SetVarchar(row, P_COMMENT, rng.AlphaString(5, 22));
    table->Insert(txn, *row);

    if (batch_size != 0 && (i + 1) % batch_size == 0) {
      txn_manager->Commit(txn);
      txn = txn_manager->BeginTransaction();
    }
  }
  txn_manager->Commit(txn);
  return table;
}

}  // namespace mainline::workload::tpch
