#include "workload/tpch/tpch_queries.h"

#include <algorithm>
#include <limits>
#include <string_view>
#include <unordered_map>

#include "execution/operators/aggregate_op.h"
#include "execution/operators/expr.h"
#include "execution/operators/filter_op.h"
#include "execution/operators/hash_join_op.h"
#include "execution/operators/pipeline.h"
#include "execution/operators/topk_op.h"
#include "storage/data_table.h"
#include "storage/projected_row.h"
#include "storage/raw_block.h"
#include "workload/row_util.h"
#include "workload/tpch/customer.h"
#include "workload/tpch/lineitem.h"
#include "workload/tpch/orders.h"
#include "workload/tpch/part.h"

namespace mainline::workload::tpch {

using namespace mainline::execution;  // the operator vocabulary the plans compose

namespace {

using workload::tpch::C_CUSTKEY;
using workload::tpch::C_MKTSEGMENT;
using workload::tpch::L_COMMITDATE;
using workload::tpch::L_DISCOUNT;
using workload::tpch::L_EXTENDEDPRICE;
using workload::tpch::L_LINESTATUS;
using workload::tpch::L_ORDERKEY;
using workload::tpch::L_PARTKEY;
using workload::tpch::L_QUANTITY;
using workload::tpch::L_RECEIPTDATE;
using workload::tpch::L_RETURNFLAG;
using workload::tpch::L_SHIPDATE;
using workload::tpch::L_SHIPMODE;
using workload::tpch::L_TAX;
using workload::tpch::O_CUSTKEY;
using workload::tpch::O_ORDERDATE;
using workload::tpch::O_ORDERKEY;
using workload::tpch::O_ORDERPRIORITY;
using workload::tpch::O_SHIPPRIORITY;
using workload::tpch::P_PARTKEY;
using workload::tpch::P_TYPE;

const std::vector<uint16_t> kQ1Projection = {L_QUANTITY,   L_EXTENDEDPRICE, L_DISCOUNT,
                                             L_TAX,        L_RETURNFLAG,    L_LINESTATUS,
                                             L_SHIPDATE};
const std::vector<uint16_t> kQ6Projection = {L_QUANTITY, L_EXTENDEDPRICE, L_DISCOUNT,
                                             L_SHIPDATE};
const std::vector<uint16_t> kQ12OrdersProjection = {O_ORDERKEY, O_ORDERPRIORITY};
const std::vector<uint16_t> kQ12LineitemProjection = {L_ORDERKEY, L_SHIPDATE, L_COMMITDATE,
                                                      L_RECEIPTDATE, L_SHIPMODE};
const std::vector<uint16_t> kQ14PartProjection = {P_PARTKEY, P_TYPE};
const std::vector<uint16_t> kQ14LineitemProjection = {L_PARTKEY, L_EXTENDEDPRICE, L_DISCOUNT,
                                                      L_SHIPDATE};
const std::vector<uint16_t> kQ3CustomerProjection = {C_CUSTKEY, C_MKTSEGMENT};
const std::vector<uint16_t> kQ3OrdersProjection = {O_ORDERKEY, O_CUSTKEY, O_ORDERDATE,
                                                   O_SHIPPRIORITY};
const std::vector<uint16_t> kQ3LineitemProjection = {L_ORDERKEY, L_EXTENDEDPRICE, L_DISCOUNT,
                                                     L_SHIPDATE};

bool IsHighPriority(std::string_view priority) {
  return priority == "1-URGENT" || priority == "2-HIGH";
}

// Finalize helpers shared by the plan compositions and the scalar oracles,
// so the result-shaping arithmetic (Q1's average divisions, Q14's ratio) and
// the output ordering stay identical by construction — an engine can only
// diverge in accumulation, which the per-block merge already pins.

Q1Row MakeQ1Row(std::string returnflag, std::string linestatus, double sum_qty,
                double sum_base_price, double sum_disc_price, double sum_charge,
                double sum_discount, uint64_t count) {
  Q1Row row;
  row.returnflag = std::move(returnflag);
  row.linestatus = std::move(linestatus);
  row.sum_qty = sum_qty;
  row.sum_base_price = sum_base_price;
  row.sum_disc_price = sum_disc_price;
  row.sum_charge = sum_charge;
  row.avg_qty = sum_qty / static_cast<double>(count);
  row.avg_price = sum_base_price / static_cast<double>(count);
  row.avg_disc = sum_discount / static_cast<double>(count);
  row.count = count;
  return row;
}

void SortQ1Rows(std::vector<Q1Row> *rows) {
  std::sort(rows->begin(), rows->end(), [](const Q1Row &a, const Q1Row &b) {
    if (a.returnflag != b.returnflag) return a.returnflag < b.returnflag;
    return a.linestatus < b.linestatus;
  });
}

void SortQ12Rows(std::vector<Q12Row> *rows) {
  std::sort(rows->begin(), rows->end(),
            [](const Q12Row &a, const Q12Row &b) { return a.shipmode < b.shipmode; });
}

double FinalizeQ14(double total_revenue, double promo_revenue) {
  return total_revenue == 0 ? 0.0 : 100.0 * promo_revenue / total_revenue;
}

// ---------------------------------------------------------------------------
// Plan compositions. Each query is wired from the operator building blocks;
// a null pool runs the plan inline, a pool runs every pipeline
// morsel-parallel. The per-block-partial merge inside AggregateOp keeps the
// result identical either way (see the header).
// ---------------------------------------------------------------------------

std::vector<Q1Row> RunQ1Plan(catalog::SqlTable *table, transaction::TransactionContext *txn,
                             const Q1Params &params, common::WorkerPool *pool,
                             ScanStats *stats, op::PlanProfile *profile) {
  const uint16_t qty = ProjectionIndexOf(kQ1Projection, L_QUANTITY);
  const uint16_t price = ProjectionIndexOf(kQ1Projection, L_EXTENDEDPRICE);
  const uint16_t disc = ProjectionIndexOf(kQ1Projection, L_DISCOUNT);
  const uint16_t tax = ProjectionIndexOf(kQ1Projection, L_TAX);
  const uint16_t flag = ProjectionIndexOf(kQ1Projection, L_RETURNFLAG);
  const uint16_t status = ProjectionIndexOf(kQ1Projection, L_LINESTATUS);
  const uint16_t ship = ProjectionIndexOf(kQ1Projection, L_SHIPDATE);

  op::PhysicalPlan plan;
  op::PipelineBuilder builder(&plan);
  builder.Scan(table, kQ1Projection)
      .Filter({op::Predicate::U32AtMost(ship, params.shipdate_max)});
  op::AggregateOp *agg = builder.Aggregate(
      {flag, status},
      {op::AggSpec::Sum(op::Expr::Column(op::ColumnRef::Batch(qty))),
       op::AggSpec::Sum(op::Expr::Column(op::ColumnRef::Batch(price))),
       op::AggSpec::Sum(
           op::Expr::Discounted(op::ColumnRef::Batch(price), op::ColumnRef::Batch(disc))),
       op::AggSpec::Sum(op::Expr::DiscountedTaxed(
           op::ColumnRef::Batch(price), op::ColumnRef::Batch(disc), op::ColumnRef::Batch(tax))),
       op::AggSpec::Sum(op::Expr::Column(op::ColumnRef::Batch(disc))),
       op::AggSpec::Count()});
  if (profile != nullptr) plan.SetProfiling(true);
  plan.Run(txn, pool, stats);
  if (profile != nullptr) *profile = plan.Profile();

  std::vector<Q1Row> rows;
  rows.reserve(agg->Result().size());
  for (const op::ResultRow &group : agg->Result()) {
    rows.push_back(MakeQ1Row(group.keys[0], group.keys[1], group.values[0].f64,
                             group.values[1].f64, group.values[2].f64, group.values[3].f64,
                             group.values[4].f64, group.values[5].u64));
  }
  SortQ1Rows(&rows);  // already key-sorted by AggregateOp; kept for one shared order
  return rows;
}

double RunQ6Plan(catalog::SqlTable *table, transaction::TransactionContext *txn,
                 const Q6Params &params, common::WorkerPool *pool, ScanStats *stats,
                 op::PlanProfile *profile) {
  const uint16_t qty = ProjectionIndexOf(kQ6Projection, L_QUANTITY);
  const uint16_t price = ProjectionIndexOf(kQ6Projection, L_EXTENDEDPRICE);
  const uint16_t disc = ProjectionIndexOf(kQ6Projection, L_DISCOUNT);
  const uint16_t ship = ProjectionIndexOf(kQ6Projection, L_SHIPDATE);

  op::PhysicalPlan plan;
  op::PipelineBuilder builder(&plan);
  builder.Scan(table, kQ6Projection)
      .Filter({op::Predicate::U32InRange(ship, params.shipdate_min, params.shipdate_max),
               op::Predicate::F64InRange(disc, params.discount_min, params.discount_max),
               op::Predicate::F64Below(qty, params.quantity_max)});
  op::AggregateOp *agg = builder.Aggregate(
      {}, {op::AggSpec::Sum(
              op::Expr::Mul(op::ColumnRef::Batch(price), op::ColumnRef::Batch(disc)))});
  if (profile != nullptr) plan.SetProfiling(true);
  plan.Run(txn, pool, stats);
  if (profile != nullptr) *profile = plan.Profile();
  return agg->Result().front().values[0].f64;
}

std::vector<Q12Row> RunQ12Plan(catalog::SqlTable *orders, catalog::SqlTable *lineitem,
                               transaction::TransactionContext *txn, const Q12Params &params,
                               common::WorkerPool *pool, ScanStats *stats,
                               op::PlanProfile *profile) {
  const uint16_t okey = ProjectionIndexOf(kQ12OrdersProjection, O_ORDERKEY);
  const uint16_t prio = ProjectionIndexOf(kQ12OrdersProjection, O_ORDERPRIORITY);
  const uint16_t lkey = ProjectionIndexOf(kQ12LineitemProjection, L_ORDERKEY);
  const uint16_t ship = ProjectionIndexOf(kQ12LineitemProjection, L_SHIPDATE);
  const uint16_t commit = ProjectionIndexOf(kQ12LineitemProjection, L_COMMITDATE);
  const uint16_t receipt = ProjectionIndexOf(kQ12LineitemProjection, L_RECEIPTDATE);
  const uint16_t mode = ProjectionIndexOf(kQ12LineitemProjection, L_SHIPMODE);

  op::PhysicalPlan plan;
  op::PipelineBuilder builder(&plan);
  builder.Scan(orders, kQ12OrdersProjection);
  op::HashJoinBuildOp *build =
      builder.JoinBuild(okey, op::PayloadSpec::StringIn(prio, {"1-URGENT", "2-HIGH"}));
  builder.Scan(lineitem, kQ12LineitemProjection)
      .Filter({op::Predicate::U32InRange(receipt, params.receiptdate_min,
                                         params.receiptdate_max),
               op::Predicate::U32LessThanColumn(commit, receipt),
               op::Predicate::U32LessThanColumn(ship, commit),
               op::Predicate::StringIn(mode, {params.shipmode_a, params.shipmode_b})})
      .JoinProbe(lkey, build);
  op::AggregateOp *agg =
      builder.Aggregate({mode}, {op::AggSpec::SumPayload(), op::AggSpec::Count()});
  if (profile != nullptr) plan.SetProfiling(true);
  plan.Run(txn, pool, stats);
  if (profile != nullptr) *profile = plan.Profile();

  std::vector<Q12Row> rows;
  rows.reserve(agg->Result().size());
  for (const op::ResultRow &group : agg->Result()) {
    Q12Row row;
    row.shipmode = group.keys[0];
    row.high_line_count = group.values[0].u64;
    row.low_line_count = group.values[1].u64 - group.values[0].u64;
    rows.push_back(std::move(row));
  }
  SortQ12Rows(&rows);  // already key-sorted by AggregateOp; kept for one shared order
  return rows;
}

double RunQ14Plan(catalog::SqlTable *lineitem, catalog::SqlTable *part,
                  transaction::TransactionContext *txn, const Q14Params &params,
                  common::WorkerPool *pool, ScanStats *stats, op::PlanProfile *profile) {
  const uint16_t pkey = ProjectionIndexOf(kQ14PartProjection, P_PARTKEY);
  const uint16_t ptype = ProjectionIndexOf(kQ14PartProjection, P_TYPE);
  const uint16_t lkey = ProjectionIndexOf(kQ14LineitemProjection, L_PARTKEY);
  const uint16_t price = ProjectionIndexOf(kQ14LineitemProjection, L_EXTENDEDPRICE);
  const uint16_t disc = ProjectionIndexOf(kQ14LineitemProjection, L_DISCOUNT);
  const uint16_t ship = ProjectionIndexOf(kQ14LineitemProjection, L_SHIPDATE);

  op::PhysicalPlan plan;
  op::PipelineBuilder builder(&plan);
  builder.Scan(part, kQ14PartProjection);
  op::HashJoinBuildOp *build =
      builder.JoinBuild(pkey, op::PayloadSpec::StringPrefix(ptype, params.promo_prefix));
  // Project the discounted price once; both sums read the shared buffer.
  builder.Scan(lineitem, kQ14LineitemProjection)
      .Filter({op::Predicate::U32InRange(ship, params.shipdate_min, params.shipdate_max)})
      .Project({op::Expr::Discounted(op::ColumnRef::Batch(price), op::ColumnRef::Batch(disc))})
      .JoinProbe(lkey, build);
  op::AggregateOp *agg = builder.Aggregate(
      {}, {op::AggSpec::Sum(op::Expr::Column(op::ColumnRef::Computed(0))),
           op::AggSpec::Sum(op::Expr::Column(op::ColumnRef::Computed(0)),
                            /*payload_gate=*/true)});
  if (profile != nullptr) plan.SetProfiling(true);
  plan.Run(txn, pool, stats);
  if (profile != nullptr) *profile = plan.Profile();

  return FinalizeQ14(agg->Result().front().values[0].f64,
                     agg->Result().front().values[1].f64);
}

std::vector<Q3Row> RunQ3Plan(catalog::SqlTable *customer, catalog::SqlTable *orders,
                             catalog::SqlTable *lineitem,
                             transaction::TransactionContext *txn, const Q3Params &params,
                             common::WorkerPool *pool, ScanStats *stats,
                             op::PlanProfile *profile) {
  const uint16_t ckey = ProjectionIndexOf(kQ3CustomerProjection, C_CUSTKEY);
  const uint16_t cseg = ProjectionIndexOf(kQ3CustomerProjection, C_MKTSEGMENT);
  const uint16_t lkey = ProjectionIndexOf(kQ3LineitemProjection, L_ORDERKEY);
  const uint16_t price = ProjectionIndexOf(kQ3LineitemProjection, L_EXTENDEDPRICE);
  const uint16_t disc = ProjectionIndexOf(kQ3LineitemProjection, L_DISCOUNT);
  const uint16_t ship = ProjectionIndexOf(kQ3LineitemProjection, L_SHIPDATE);
  const uint16_t okey = ProjectionIndexOf(kQ3OrdersProjection, O_ORDERKEY);
  const uint16_t ocust = ProjectionIndexOf(kQ3OrdersProjection, O_CUSTKEY);
  const uint16_t odate = ProjectionIndexOf(kQ3OrdersProjection, O_ORDERDATE);
  const uint16_t oprio = ProjectionIndexOf(kQ3OrdersProjection, O_SHIPPRIORITY);

  op::PhysicalPlan plan;
  op::PipelineBuilder builder(&plan);
  builder.Scan(customer, kQ3CustomerProjection)
      .Filter({op::Predicate::StringIn(cseg, {params.segment})});
  op::HashJoinBuildOp *cust_build =
      builder.JoinBuild(ckey, op::PayloadSpec::Int64Column(ckey));
  builder.Scan(lineitem, kQ3LineitemProjection)
      .Filter({op::Predicate::U32InRange(ship, params.date + 1,
                                         std::numeric_limits<uint32_t>::max())})
      .Project(
          {op::Expr::Discounted(op::ColumnRef::Batch(price), op::ColumnRef::Batch(disc))});
  op::HashJoinBuildOp *line_build = builder.JoinBuild(lkey, op::PayloadSpec::F64Computed(0));
  // The chained probes: each orders row fans out per matching customer, then
  // the re-probe folds its lineitem revenues into one double per match.
  builder.Scan(orders, kQ3OrdersProjection)
      .Filter({op::Predicate::U32InRange(odate, 0, params.date)})
      .JoinProbe(ocust, cust_build)
      .JoinProbe(okey, line_build, op::ProbeEmit::kSumPayloadF64);
  op::TopKOp *topk = builder.TopK(
      params.limit,
      {op::SortKey::MatchPayloadF64(/*descending=*/true), op::SortKey::U32Column(odate)},
      {op::OutputCol::Int64Column(okey), op::OutputCol::MatchPayloadF64(),
       op::OutputCol::U32Column(odate), op::OutputCol::Int32Column(oprio)});
  if (profile != nullptr) plan.SetProfiling(true);
  plan.Run(txn, pool, stats);
  if (profile != nullptr) *profile = plan.Profile();

  std::vector<Q3Row> rows;
  rows.reserve(topk->Result().size());
  for (const op::TopKRow &result : topk->Result()) {
    Q3Row row;
    row.orderkey = result.cols[0].i64;
    row.revenue = result.cols[1].f64;
    row.orderdate = static_cast<uint32_t>(result.cols[2].i64);
    row.shippriority = static_cast<int32_t>(result.cols[3].i64);
    rows.push_back(row);
  }
  return rows;
}

}  // namespace

std::vector<Q1Row> RunQ1(catalog::SqlTable *table, transaction::TransactionContext *txn,
                         const Q1Params &params, ScanStats *stats, op::PlanProfile *profile) {
  return RunQ1Plan(table, txn, params, nullptr, stats, profile);
}

std::vector<Q1Row> RunQ1Parallel(catalog::SqlTable *table,
                                 transaction::TransactionContext *txn, const Q1Params &params,
                                 common::WorkerPool *pool, ScanStats *stats,
                                 op::PlanProfile *profile) {
  return RunQ1Plan(table, txn, params, pool, stats, profile);
}

double RunQ6(catalog::SqlTable *table, transaction::TransactionContext *txn,
             const Q6Params &params, ScanStats *stats, op::PlanProfile *profile) {
  return RunQ6Plan(table, txn, params, nullptr, stats, profile);
}

double RunQ6Parallel(catalog::SqlTable *table, transaction::TransactionContext *txn,
                     const Q6Params &params, common::WorkerPool *pool, ScanStats *stats,
                     op::PlanProfile *profile) {
  return RunQ6Plan(table, txn, params, pool, stats, profile);
}

std::vector<Q12Row> RunQ12(catalog::SqlTable *orders, catalog::SqlTable *lineitem,
                           transaction::TransactionContext *txn, const Q12Params &params,
                           ScanStats *stats, op::PlanProfile *profile) {
  return RunQ12Plan(orders, lineitem, txn, params, nullptr, stats, profile);
}

std::vector<Q12Row> RunQ12Parallel(catalog::SqlTable *orders, catalog::SqlTable *lineitem,
                                   transaction::TransactionContext *txn,
                                   const Q12Params &params, common::WorkerPool *pool,
                                   ScanStats *stats, op::PlanProfile *profile) {
  return RunQ12Plan(orders, lineitem, txn, params, pool, stats, profile);
}

double RunQ14(catalog::SqlTable *lineitem, catalog::SqlTable *part,
              transaction::TransactionContext *txn, const Q14Params &params,
              ScanStats *stats, op::PlanProfile *profile) {
  return RunQ14Plan(lineitem, part, txn, params, nullptr, stats, profile);
}

double RunQ14Parallel(catalog::SqlTable *lineitem, catalog::SqlTable *part,
                      transaction::TransactionContext *txn, const Q14Params &params,
                      common::WorkerPool *pool, ScanStats *stats, op::PlanProfile *profile) {
  return RunQ14Plan(lineitem, part, txn, params, pool, stats, profile);
}

std::vector<Q3Row> RunQ3(catalog::SqlTable *customer, catalog::SqlTable *orders,
                         catalog::SqlTable *lineitem, transaction::TransactionContext *txn,
                         const Q3Params &params, ScanStats *stats, op::PlanProfile *profile) {
  return RunQ3Plan(customer, orders, lineitem, txn, params, nullptr, stats, profile);
}

std::vector<Q3Row> RunQ3Parallel(catalog::SqlTable *customer, catalog::SqlTable *orders,
                                 catalog::SqlTable *lineitem,
                                 transaction::TransactionContext *txn, const Q3Params &params,
                                 common::WorkerPool *pool, ScanStats *stats,
                                 op::PlanProfile *profile) {
  return RunQ3Plan(customer, orders, lineitem, txn, params, pool, stats, profile);
}

// ---------------------------------------------------------------------------
// Scalar tuple-at-a-time references — the bit-exact oracles. They accumulate
// the same per-block partials in the same order as the plans, through the
// classic one-Select-per-slot iterator model.
// ---------------------------------------------------------------------------

namespace {

/// Drive `visit(row)` over every tuple visible to `txn`, one
/// DataTable::Select at a time — the classic iterator-model baseline. The
/// projection must be sorted ascending; `visit` receives ProjectedRow
/// indices in the same order. `block_done()` fires after the last slot of
/// each block, so callers can fold per-block partials in block order —
/// mirroring the pipeline engines' batch boundaries exactly.
template <typename Visit, typename BlockDone>
void ScalarScan(catalog::SqlTable *table, transaction::TransactionContext *txn,
                const std::vector<uint16_t> &projection, ScanStats *stats, Visit visit,
                BlockDone block_done) {
  const storage::ProjectedRowInitializer initializer =
      table->InitializerForColumns(projection);
  std::vector<byte> buffer(initializer.ProjectedRowSize() + 8);
  uint64_t rows = 0;
  storage::RawBlock *current = nullptr;
  for (storage::DataTable::SlotIterator it = table->begin(); !it.Done(); ++it) {
    storage::RawBlock *block = it.CurrentBlock();
    if (block != current) {
      if (current != nullptr) block_done();
      current = block;
    }
    storage::ProjectedRow *row = initializer.InitializeRow(buffer.data());
    if (!table->Select(txn, *it, row)) continue;
    rows++;
    visit(*row);
  }
  if (current != nullptr) block_done();
  if (stats != nullptr) stats->rows += rows;
}

/// Running aggregates of one scalar-Q1 group, per-block partial or merged
/// global — the same accumulator shape AggregateOp keeps for the plan.
struct Q1Acc {
  std::string returnflag;
  std::string linestatus;
  double sum_qty = 0;
  double sum_base_price = 0;
  double sum_disc_price = 0;
  double sum_charge = 0;
  double sum_discount = 0;
  uint64_t count = 0;
};

uint32_t FindOrAddQ1Group(std::vector<Q1Acc> *groups, std::string_view flag,
                          std::string_view status) {
  for (uint32_t g = 0; g < groups->size(); g++) {
    if ((*groups)[g].returnflag == flag && (*groups)[g].linestatus == status) return g;
  }
  Q1Acc acc;
  acc.returnflag = std::string(flag);
  acc.linestatus = std::string(status);
  groups->push_back(std::move(acc));
  return static_cast<uint32_t>(groups->size() - 1);
}

}  // namespace

std::vector<Q1Row> RunQ1Scalar(catalog::SqlTable *table, transaction::TransactionContext *txn,
                               const Q1Params &params, ScanStats *stats) {
  // Projection indices follow the sorted column order, same as the scanner.
  const uint16_t p_qty = 0, p_price = 1, p_disc = 2, p_tax = 3, p_flag = 4, p_status = 5,
                 p_ship = 6;
  std::vector<Q1Acc> groups;
  std::vector<Q1Acc> partial;
  ScalarScan(
      table, txn, kQ1Projection, stats,
      [&](const storage::ProjectedRow &row) {
        if (workload::Get<uint32_t>(row, p_ship) > params.shipdate_max) return;
        const uint32_t g = FindOrAddQ1Group(&partial, workload::GetVarchar(row, p_flag),
                                            workload::GetVarchar(row, p_status));
        Q1Acc *acc = &partial[g];
        const double qty = workload::Get<double>(row, p_qty);
        const double price = workload::Get<double>(row, p_price);
        const double disc = workload::Get<double>(row, p_disc);
        const double tax = workload::Get<double>(row, p_tax);
        acc->sum_qty += qty;
        acc->sum_base_price += price;
        const double disc_price = price * (1.0 - disc);
        acc->sum_disc_price += disc_price;
        acc->sum_charge += disc_price * (1.0 + tax);
        acc->sum_discount += disc;
        acc->count++;
      },
      [&] {
        // Merge the block's partial in discovery order — ONE addition per
        // aggregate per (block, group), the canonical reduction shape.
        for (const Q1Acc &acc : partial) {
          Q1Acc *dst = &groups[FindOrAddQ1Group(&groups, acc.returnflag, acc.linestatus)];
          dst->sum_qty += acc.sum_qty;
          dst->sum_base_price += acc.sum_base_price;
          dst->sum_disc_price += acc.sum_disc_price;
          dst->sum_charge += acc.sum_charge;
          dst->sum_discount += acc.sum_discount;
          dst->count += acc.count;
        }
        partial.clear();
      });

  std::vector<Q1Row> rows;
  rows.reserve(groups.size());
  for (Q1Acc &acc : groups) {
    rows.push_back(MakeQ1Row(std::move(acc.returnflag), std::move(acc.linestatus),
                             acc.sum_qty, acc.sum_base_price, acc.sum_disc_price,
                             acc.sum_charge, acc.sum_discount, acc.count));
  }
  SortQ1Rows(&rows);
  return rows;
}

double RunQ6Scalar(catalog::SqlTable *table, transaction::TransactionContext *txn,
                   const Q6Params &params, ScanStats *stats) {
  const uint16_t p_qty = 0, p_price = 1, p_disc = 2, p_ship = 3;
  double revenue = 0;
  double block_revenue = 0;
  uint64_t block_selected = 0;
  ScalarScan(
      table, txn, kQ6Projection, stats,
      [&](const storage::ProjectedRow &row) {
        const uint32_t ship = workload::Get<uint32_t>(row, p_ship);
        if (ship < params.shipdate_min || ship >= params.shipdate_max) return;
        const double disc = workload::Get<double>(row, p_disc);
        if (disc < params.discount_min || disc > params.discount_max) return;
        if (workload::Get<double>(row, p_qty) >= params.quantity_max) return;
        block_selected++;
        block_revenue += workload::Get<double>(row, p_price) * disc;
      },
      [&] {
        if (block_selected != 0) revenue += block_revenue;
        block_revenue = 0;
        block_selected = 0;
      });
  return revenue;
}

namespace {

/// Running counts of one scalar-Q12 group (a ship mode).
struct Q12Acc {
  std::string shipmode;
  uint64_t high = 0;
  uint64_t low = 0;
};

uint32_t FindOrAddQ12Group(std::vector<Q12Acc> *groups, std::string_view mode) {
  for (uint32_t g = 0; g < groups->size(); g++) {
    if ((*groups)[g].shipmode == mode) return g;
  }
  Q12Acc acc;
  acc.shipmode = std::string(mode);
  groups->push_back(std::move(acc));
  return static_cast<uint32_t>(groups->size() - 1);
}

}  // namespace

std::vector<Q12Row> RunQ12Scalar(catalog::SqlTable *orders, catalog::SqlTable *lineitem,
                                 transaction::TransactionContext *txn, const Q12Params &params,
                                 ScanStats *stats) {
  // Build: one Select per ORDERS slot, in scan order.
  std::unordered_multimap<int64_t, uint64_t> ht;
  const uint16_t p_okey = 0, p_prio = 1;
  ScalarScan(
      orders, txn, kQ12OrdersProjection, stats,
      [&](const storage::ProjectedRow &row) {
        ht.emplace(workload::Get<int64_t>(row, p_okey),
                   IsHighPriority(workload::GetVarchar(row, p_prio)) ? 1 : 0);
      },
      [] {});

  // Probe: row predicates in the same order as the plan's filters.
  const uint16_t p_lkey = 0, p_ship = 1, p_commit = 2, p_receipt = 3, p_mode = 4;
  std::vector<Q12Acc> groups;
  std::vector<Q12Acc> partial;
  ScalarScan(
      lineitem, txn, kQ12LineitemProjection, stats,
      [&](const storage::ProjectedRow &row) {
        const uint32_t receipt = workload::Get<uint32_t>(row, p_receipt);
        if (receipt < params.receiptdate_min || receipt >= params.receiptdate_max) return;
        const uint32_t commit = workload::Get<uint32_t>(row, p_commit);
        if (commit >= receipt) return;
        if (workload::Get<uint32_t>(row, p_ship) >= commit) return;
        const std::string_view mode = workload::GetVarchar(row, p_mode);
        if (mode != params.shipmode_a && mode != params.shipmode_b) return;
        // analyze-waive(determinism): equal_range walk over the build-side
        // multimap folds into commutative integer counts (high/low line
        // tallies), so bucket iteration order cannot reach the result.
        const auto [begin, end] = ht.equal_range(workload::Get<int64_t>(row, p_lkey));
        if (begin == end) return;
        Q12Acc *acc = &partial[FindOrAddQ12Group(&partial, mode)];
        for (auto it = begin; it != end; ++it) {
          acc->high += it->second;
          acc->low += 1 - it->second;
        }
      },
      [&] {
        for (const Q12Acc &acc : partial) {
          Q12Acc *dst = &groups[FindOrAddQ12Group(&groups, acc.shipmode)];
          dst->high += acc.high;
          dst->low += acc.low;
        }
        partial.clear();
      });

  std::vector<Q12Row> rows;
  rows.reserve(groups.size());
  for (Q12Acc &acc : groups) {
    Q12Row row;
    row.shipmode = std::move(acc.shipmode);
    row.high_line_count = acc.high;
    row.low_line_count = acc.low;
    rows.push_back(std::move(row));
  }
  SortQ12Rows(&rows);
  return rows;
}

double RunQ14Scalar(catalog::SqlTable *lineitem, catalog::SqlTable *part,
                    transaction::TransactionContext *txn, const Q14Params &params,
                    ScanStats *stats) {
  // Build: payload is the "is PROMO part" bit, as in the plan.
  std::unordered_multimap<int64_t, uint64_t> ht;
  const uint16_t p_pkey = 0, p_type = 1;
  ScalarScan(
      part, txn, kQ14PartProjection, stats,
      [&](const storage::ProjectedRow &row) {
        ht.emplace(workload::Get<int64_t>(row, p_pkey),
                   workload::GetVarchar(row, p_type).starts_with(params.promo_prefix) ? 1 : 0);
      },
      [] {});

  // Probe: same accumulators, same per-match order as the plan — total
  // revenue unconditionally, promo revenue gated on the payload bit.
  const uint16_t p_lkey = 0, p_price = 1, p_disc = 2, p_ship = 3;
  double total = 0, promo = 0;
  double block_total = 0, block_promo = 0;
  uint64_t block_matched = 0;
  ScalarScan(
      lineitem, txn, kQ14LineitemProjection, stats,
      [&](const storage::ProjectedRow &row) {
        const uint32_t ship = workload::Get<uint32_t>(row, p_ship);
        if (ship < params.shipdate_min || ship >= params.shipdate_max) return;
        const double disc_price = workload::Get<double>(row, p_price) *
                                  (1.0 - workload::Get<double>(row, p_disc));
        // analyze-waive(determinism): the equal_range walk accumulates
        // commutative sums (block totals and a match count); iteration order
        // over the bucket cannot change the folded result.
        const auto [begin, end] = ht.equal_range(workload::Get<int64_t>(row, p_lkey));
        for (auto it = begin; it != end; ++it) {
          block_matched++;
          block_total += disc_price;
          if (it->second != 0) block_promo += disc_price;
        }
      },
      [&] {
        if (block_matched != 0) {
          total += block_total;
          promo += block_promo;
        }
        block_total = 0;
        block_promo = 0;
        block_matched = 0;
      });
  return FinalizeQ14(total, promo);
}

std::vector<Q3Row> RunQ3Scalar(catalog::SqlTable *customer, catalog::SqlTable *orders,
                               catalog::SqlTable *lineitem,
                               transaction::TransactionContext *txn, const Q3Params &params,
                               ScanStats *stats) {
  // Build 1: how many customers of the segment carry each key — the plan's
  // per-match fan-out, counted (the matches are indistinguishable, so the
  // multiplicity is all that survives).
  std::unordered_map<int64_t, uint64_t> segment_customers;
  const uint16_t p_ckey = 0, p_cseg = 1;
  ScalarScan(
      customer, txn, kQ3CustomerProjection, stats,
      [&](const storage::ProjectedRow &row) {
        if (workload::GetVarchar(row, p_cseg) != params.segment) return;
        segment_customers[workload::Get<int64_t>(row, p_ckey)]++;
      },
      [] {});

  // Build 2: each order's qualifying revenues, appended in lineitem scan
  // order — the insertion order the plan's hash table replays, so folding
  // the vector left-to-right reproduces the probe's sum bit-exactly.
  std::unordered_map<int64_t, std::vector<double>> revenues;
  const uint16_t p_lkey = 0, p_price = 1, p_disc = 2, p_ship = 3;
  ScalarScan(
      lineitem, txn, kQ3LineitemProjection, stats,
      [&](const storage::ProjectedRow &row) {
        if (workload::Get<uint32_t>(row, p_ship) <= params.date) return;
        revenues[workload::Get<int64_t>(row, p_lkey)].push_back(
            workload::Get<double>(row, p_price) *
            (1.0 - workload::Get<double>(row, p_disc)));
      },
      [] {});

  // Probe: one candidate per (order, matching customer), stamped with its
  // scan position — (block ordinal, within-block emit sequence) — the same
  // tie-break the Top-K sink ends its comparison with.
  struct Candidate {
    double revenue = 0;
    uint64_t ordinal = 0;
    uint64_t seq = 0;
    Q3Row row;
  };
  std::vector<Candidate> candidates;
  const uint16_t p_okey = 0, p_ocust = 1, p_odate = 2, p_oprio = 3;
  uint64_t ordinal = 0;
  uint64_t seq = 0;
  ScalarScan(
      orders, txn, kQ3OrdersProjection, stats,
      [&](const storage::ProjectedRow &row) {
        const uint32_t orderdate = workload::Get<uint32_t>(row, p_odate);
        if (orderdate >= params.date) return;
        const auto customers = segment_customers.find(workload::Get<int64_t>(row, p_ocust));
        if (customers == segment_customers.end()) return;
        const auto lines = revenues.find(workload::Get<int64_t>(row, p_okey));
        if (lines == revenues.end()) return;
        double revenue = 0;
        for (const double line : lines->second) revenue += line;
        Candidate candidate;
        candidate.revenue = revenue;
        candidate.ordinal = ordinal;
        candidate.row.orderkey = workload::Get<int64_t>(row, p_okey);
        candidate.row.revenue = revenue;
        candidate.row.orderdate = orderdate;
        candidate.row.shippriority = workload::Get<int32_t>(row, p_oprio);
        for (uint64_t i = 0; i < customers->second; i++) {
          candidate.seq = seq++;
          candidates.push_back(candidate);
        }
      },
      [&] {
        ordinal++;
        seq = 0;
      });

  std::sort(candidates.begin(), candidates.end(), [](const Candidate &a, const Candidate &b) {
    if (a.revenue != b.revenue) return a.revenue > b.revenue;
    if (a.row.orderdate != b.row.orderdate) return a.row.orderdate < b.row.orderdate;
    if (a.ordinal != b.ordinal) return a.ordinal < b.ordinal;
    return a.seq < b.seq;
  });
  if (candidates.size() > params.limit) candidates.resize(params.limit);

  std::vector<Q3Row> rows;
  rows.reserve(candidates.size());
  for (const Candidate &candidate : candidates) rows.push_back(candidate.row);
  return rows;
}

}  // namespace mainline::workload::tpch
