#include "workload/tpch/lineitem.h"

#include <vector>

#include "catalog/schema.h"
#include "catalog/sql_table.h"
#include "common/rand_util.h"
#include "storage/projected_row.h"
#include "transaction/transaction_context.h"
#include "workload/row_util.h"

namespace mainline::workload::tpch {

using catalog::TypeId;

catalog::Schema LineItemSchema() {
  return catalog::Schema({
      {"l_orderkey", TypeId::kBigInt},
      {"l_partkey", TypeId::kBigInt},
      {"l_suppkey", TypeId::kBigInt},
      {"l_linenumber", TypeId::kInteger},
      {"l_quantity", TypeId::kDecimal},
      {"l_extendedprice", TypeId::kDecimal},
      {"l_discount", TypeId::kDecimal},
      {"l_tax", TypeId::kDecimal},
      {"l_returnflag", TypeId::kVarchar},
      {"l_linestatus", TypeId::kVarchar},
      {"l_shipdate", TypeId::kDate},
      {"l_commitdate", TypeId::kDate},
      {"l_receiptdate", TypeId::kDate},
      {"l_shipinstruct", TypeId::kVarchar},
      {"l_shipmode", TypeId::kVarchar},
      {"l_comment", TypeId::kVarchar},
  });
}

catalog::SqlTable *GenerateLineItem(catalog::Catalog *catalog,
                                    transaction::TransactionManager *txn_manager,
                                    uint64_t num_rows, uint64_t seed, uint64_t batch_size) {
  static const char *kInstructions[] = {"DELIVER IN PERSON", "COLLECT COD", "NONE",
                                        "TAKE BACK RETURN"};
  static const char *kModes[] = {"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"};
  static const char *kFlags[] = {"R", "A", "N"};

  catalog::SqlTable *table =
      catalog->GetTable(catalog->CreateTable("lineitem", LineItemSchema()));
  common::Xorshift rng(seed);
  const storage::ProjectedRowInitializer initializer = table->FullInitializer();
  std::vector<byte> buffer(initializer.ProjectedRowSize() + 8);

  uint64_t orderkey = 1;
  int32_t linenumber = 1;
  transaction::TransactionContext *txn = txn_manager->BeginTransaction();
  for (uint64_t i = 0; i < num_rows; i++) {
    storage::ProjectedRow *row = initializer.InitializeRow(buffer.data());
    Set<int64_t>(row, L_ORDERKEY, static_cast<int64_t>(orderkey));
    Set<int64_t>(row, L_PARTKEY, static_cast<int64_t>(rng.Uniform(1, 200000)));
    Set<int64_t>(row, L_SUPPKEY, static_cast<int64_t>(rng.Uniform(1, 10000)));
    Set<int32_t>(row, L_LINENUMBER, linenumber);
    Set<double>(row, L_QUANTITY, static_cast<double>(rng.Uniform(1, 50)));
    Set<double>(row, L_EXTENDEDPRICE, static_cast<double>(rng.Uniform(1000, 100000)) / 100.0);
    Set<double>(row, L_DISCOUNT, static_cast<double>(rng.Uniform(0, 10)) / 100.0);
    Set<double>(row, L_TAX, static_cast<double>(rng.Uniform(0, 8)) / 100.0);
    SetVarchar(row, L_RETURNFLAG, kFlags[rng.Uniform(0, 2)]);
    SetVarchar(row, L_LINESTATUS, rng.Uniform(0, 1) == 0 ? "O" : "F");
    const auto ship = static_cast<uint32_t>(rng.Uniform(8000, 10500));
    Set<uint32_t>(row, L_SHIPDATE, ship);
    Set<uint32_t>(row, L_COMMITDATE, ship + static_cast<uint32_t>(rng.Uniform(1, 60)));
    Set<uint32_t>(row, L_RECEIPTDATE, ship + static_cast<uint32_t>(rng.Uniform(1, 30)));
    SetVarchar(row, L_SHIPINSTRUCT, kInstructions[rng.Uniform(0, 3)]);
    SetVarchar(row, L_SHIPMODE, kModes[rng.Uniform(0, 6)]);
    SetVarchar(row, L_COMMENT, rng.AlphaString(10, 43));
    table->Insert(txn, *row);

    if (++linenumber > 7 || rng.Uniform(0, 2) == 0) {
      orderkey++;
      linenumber = 1;
    }
    if (batch_size != 0 && (i + 1) % batch_size == 0) {
      txn_manager->Commit(txn);
      txn = txn_manager->BeginTransaction();
    }
  }
  txn_manager->Commit(txn);
  return table;
}

}  // namespace mainline::workload::tpch
