#pragma once

#include <cstdint>

#include "catalog/catalog.h"
#include "catalog/schema.h"
#include "catalog/sql_table.h"
#include "transaction/transaction_manager.h"

namespace mainline::workload::tpch {

/// Column positions of the TPC-H PART table.
enum Part : uint16_t {
  P_PARTKEY = 0,
  P_NAME,
  P_MFGR,
  P_BRAND,
  P_TYPE,
  P_SIZE,
  P_CONTAINER,
  P_RETAILPRICE,
  P_COMMENT,
};

/// Schema of PART (types mapped onto the engine's type system).
catalog::Schema PartSchema();

/// Deterministic dbgen-style PART generator, the build side of Q14. Part
/// keys are the dense sequence 1..`num_parts` — consistent with
/// GenerateLineItem, whose part keys are uniform over [1, 200000], so a PART
/// table with `num_parts >= 200000` resolves every lineitem FK (each
/// l_partkey finds exactly one part) while a smaller one leaves the keys
/// above `num_parts` dangling. `p_type` is drawn from dbgen's 6 x 5 x 5
/// syllable grid, so one part in six is a `PROMO%` part. Rows are inserted
/// in batches of one transaction per `batch_size` rows (0 = everything in a
/// single transaction); the row contents depend only on `seed`, never on the
/// batching. `table_name` allows several PART-shaped tables per catalog.
/// \return the populated table.
catalog::SqlTable *GeneratePart(catalog::Catalog *catalog,
                                transaction::TransactionManager *txn_manager,
                                uint64_t num_parts, uint64_t seed = 13,
                                uint64_t batch_size = 10000, const char *table_name = "part");

}  // namespace mainline::workload::tpch
