#pragma once

#include <cstdint>

#include "catalog/catalog.h"
#include "catalog/schema.h"
#include "catalog/sql_table.h"
#include "transaction/transaction_manager.h"

namespace mainline::workload::tpch {

/// Column positions of the TPC-H CUSTOMER table.
enum Customer : uint16_t {
  C_CUSTKEY = 0,
  C_NAME,
  C_ADDRESS,
  C_NATIONKEY,
  C_PHONE,
  C_ACCTBAL,
  C_MKTSEGMENT,
  C_COMMENT,
};

/// Schema of CUSTOMER (types mapped onto the engine's type system).
catalog::Schema CustomerSchema();

/// Deterministic dbgen-style CUSTOMER generator, the build side of Q3.
/// Customer keys are the dense sequence 1..`num_customers` — consistent with
/// GenerateOrders, whose customer keys are uniform over [1, its
/// num_customers], so generating both with the same customer count resolves
/// every o_custkey FK while a smaller CUSTOMER table leaves the keys above
/// `num_customers` dangling. `c_mktsegment` is drawn uniformly from dbgen's
/// five segments, so a segment filter keeps about one customer in five. Rows
/// are inserted in batches of one transaction per `batch_size` rows (0 =
/// everything in a single transaction); the row contents depend only on
/// `seed`, never on the batching. `table_name` allows several CUSTOMER-shaped
/// tables per catalog.
/// \return the populated table.
catalog::SqlTable *GenerateCustomer(catalog::Catalog *catalog,
                                    transaction::TransactionManager *txn_manager,
                                    uint64_t num_customers, uint64_t seed = 17,
                                    uint64_t batch_size = 10000,
                                    const char *table_name = "customer");

}  // namespace mainline::workload::tpch
