#include "workload/tpch/orders.h"

#include <cstdio>
#include <vector>

#include "catalog/schema.h"
#include "catalog/sql_table.h"
#include "common/rand_util.h"
#include "storage/projected_row.h"
#include "transaction/transaction_context.h"
#include "workload/row_util.h"

namespace mainline::workload::tpch {

using catalog::TypeId;

catalog::Schema OrdersSchema() {
  return catalog::Schema({
      {"o_orderkey", TypeId::kBigInt},
      {"o_custkey", TypeId::kBigInt},
      {"o_orderstatus", TypeId::kVarchar},
      {"o_totalprice", TypeId::kDecimal},
      {"o_orderdate", TypeId::kDate},
      {"o_orderpriority", TypeId::kVarchar},
      {"o_clerk", TypeId::kVarchar},
      {"o_shippriority", TypeId::kInteger},
      {"o_comment", TypeId::kVarchar},
  });
}

catalog::SqlTable *GenerateOrders(catalog::Catalog *catalog,
                                  transaction::TransactionManager *txn_manager,
                                  uint64_t num_orders, uint64_t seed, uint64_t batch_size,
                                  const char *table_name, uint64_t num_customers) {
  static const char *kPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED",
                                      "5-LOW"};
  static const char *kStatuses[] = {"O", "F", "P"};

  catalog::SqlTable *table =
      catalog->GetTable(catalog->CreateTable(table_name, OrdersSchema()));
  common::Xorshift rng(seed);
  const storage::ProjectedRowInitializer initializer = table->FullInitializer();
  std::vector<byte> buffer(initializer.ProjectedRowSize() + 8);

  transaction::TransactionContext *txn = txn_manager->BeginTransaction();
  for (uint64_t i = 0; i < num_orders; i++) {
    storage::ProjectedRow *row = initializer.InitializeRow(buffer.data());
    Set<int64_t>(row, O_ORDERKEY, static_cast<int64_t>(i + 1));
    Set<int64_t>(row, O_CUSTKEY, static_cast<int64_t>(rng.Uniform(1, num_customers)));
    SetVarchar(row, O_ORDERSTATUS, kStatuses[rng.Uniform(0, 2)]);
    Set<double>(row, O_TOTALPRICE, static_cast<double>(rng.Uniform(85000, 55500000)) / 100.0);
    // Order dates cover the same day-number range the lineitem generator
    // ships in, so date predicates on either side stay selective.
    Set<uint32_t>(row, O_ORDERDATE, static_cast<uint32_t>(rng.Uniform(7900, 10480)));
    SetVarchar(row, O_ORDERPRIORITY, kPriorities[rng.Uniform(0, 4)]);
    char clerk[20];
    std::snprintf(clerk, sizeof(clerk), "Clerk#%09llu",
                  static_cast<unsigned long long>(rng.Uniform(1, 1000)));
    SetVarchar(row, O_CLERK, clerk);
    Set<int32_t>(row, O_SHIPPRIORITY, 0);
    SetVarchar(row, O_COMMENT, rng.AlphaString(19, 78));
    table->Insert(txn, *row);

    if (batch_size != 0 && (i + 1) % batch_size == 0) {
      txn_manager->Commit(txn);
      txn = txn_manager->BeginTransaction();
    }
  }
  txn_manager->Commit(txn);
  return table;
}

}  // namespace mainline::workload::tpch
