#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/worker_pool.h"
#include "execution/operators/plan_profile.h"
#include "execution/table_scanner.h"
#include "catalog/sql_table.h"
#include "transaction/transaction_context.h"

namespace mainline::workload::tpch {

// Moved here from execution/: the query compositions know TPC-H column
// layouts (workload knowledge), while the operator building blocks they
// compose stay below in execution/. These aliases keep the signatures
// spelled the way the execution layer defines them.
using execution::ScanStats;
namespace op = execution::op;

/// The TPC-H queries below are compositions over the push-based operator
/// pipeline API (execution/operators/): each Run* function wires a
/// PhysicalPlan out of ScanSource / FilterOp / ProjectOp / hash-join /
/// AggregateOp building blocks and runs it — inline, or morsel-parallel over
/// a worker pool for the *Parallel variants. There is no per-query kernel
/// code anymore; the tuple-at-a-time scalar references remain as the
/// bit-exact oracles the plans are verified against.
///
/// All engines share one canonical accumulation order: floating-point
/// aggregates are built as PER-BLOCK partials — each accumulated
/// row-at-a-time in slot order from zero — and the partials are folded into
/// the final result in block (allocation) order. Fixing the reduction-tree
/// shape at block granularity is what makes every engine's answer
/// bit-identical regardless of worker count: a parallel scan computes the
/// same partials on different threads and merges them in the same order.
/// AggregateOp implements exactly this shape, so every plan inherits it.

/// Parameters of TPC-H Q1 (pricing summary report). Dates are the engine's
/// day numbers; the default cutoff keeps ~90% of the rows the lineitem
/// generator produces, mirroring the official query's DATE '1998-12-01' -
/// 90 days.
struct Q1Params {
  uint32_t shipdate_max = 10340;  ///< l_shipdate <= shipdate_max
};

/// One Q1 result group. Defaulted equality makes the bit-exactness check
/// between the pipeline engines and the scalar reference a plain ==.
struct Q1Row {
  std::string returnflag;
  std::string linestatus;
  double sum_qty = 0;
  double sum_base_price = 0;
  double sum_disc_price = 0;
  double sum_charge = 0;
  double avg_qty = 0;
  double avg_price = 0;
  double avg_disc = 0;
  uint64_t count = 0;

  bool operator==(const Q1Row &) const = default;
};

/// Parameters of TPC-H Q6 (forecasting revenue change).
struct Q6Params {
  uint32_t shipdate_min = 9000;  ///< l_shipdate >= shipdate_min
  uint32_t shipdate_max = 9365;  ///< l_shipdate <  shipdate_max
  double discount_min = 0.05;    ///< l_discount >= discount_min
  double discount_max = 0.07;    ///< l_discount <= discount_max
  double quantity_max = 24.0;    ///< l_quantity <  quantity_max
};

/// Q1 as an operator plan (scan -> filter -> grouped aggregate on
/// (l_returnflag, l_linestatus)), run inline. Results are sorted by
/// (returnflag, linestatus), as the query specifies.
/// \param stats accumulates scan counters (may be nullptr)
std::vector<Q1Row> RunQ1(catalog::SqlTable *table, transaction::TransactionContext *txn,
                         const Q1Params &params, ScanStats *stats = nullptr,
                         op::PlanProfile *profile = nullptr);

/// Q6 as an operator plan (scan -> three filters -> ungrouped
/// sum(l_extendedprice * l_discount)), run inline.
double RunQ6(catalog::SqlTable *table, transaction::TransactionContext *txn,
             const Q6Params &params, ScanStats *stats = nullptr,
             op::PlanProfile *profile = nullptr);

/// The same Q1 plan run morsel-parallel over `pool`'s workers. Bit-exact
/// with RunQ1 and RunQ1Scalar for any worker count. `txn` must stay
/// read-only while the plan runs (workers share it).
std::vector<Q1Row> RunQ1Parallel(catalog::SqlTable *table,
                                 transaction::TransactionContext *txn, const Q1Params &params,
                                 common::WorkerPool *pool, ScanStats *stats = nullptr,
                                 op::PlanProfile *profile = nullptr);

/// The same Q6 plan run morsel-parallel; same contract as RunQ1Parallel.
double RunQ6Parallel(catalog::SqlTable *table, transaction::TransactionContext *txn,
                     const Q6Params &params, common::WorkerPool *pool,
                     ScanStats *stats = nullptr, op::PlanProfile *profile = nullptr);

/// Parameters of TPC-H Q12 (shipping modes and order priority). The two ship
/// modes mirror the official query's ('MAIL', 'SHIP') pair; the receipt-date
/// window is the engine's day numbers, one year wide against the lineitem
/// generator's [8001, 10530] receipt range.
struct Q12Params {
  std::string shipmode_a = "MAIL";
  std::string shipmode_b = "SHIP";
  uint32_t receiptdate_min = 9000;  ///< l_receiptdate >= receiptdate_min
  uint32_t receiptdate_max = 9365;  ///< l_receiptdate <  receiptdate_max
};

/// One Q12 result group: line counts by ship mode, split by whether the
/// joined order's priority is urgent/high. Counts are integers, so equality
/// between engines is exact by construction — what the join contributes to
/// bit-exactness is producing the same multiset of matches at any worker
/// count.
struct Q12Row {
  std::string shipmode;
  uint64_t high_line_count = 0;
  uint64_t low_line_count = 0;

  bool operator==(const Q12Row &) const = default;
};

/// Q12 as a two-pipeline plan: hash-join build over ORDERS (key o_orderkey,
/// payload = "is urgent/high" bit), then a probe pipeline streaming LINEITEM
/// through the date/shipmode filters into a grouped aggregate on l_shipmode.
/// Run inline. `orders` and `lineitem` must use OrdersSchema()/
/// LineItemSchema() column positions.
std::vector<Q12Row> RunQ12(catalog::SqlTable *orders, catalog::SqlTable *lineitem,
                           transaction::TransactionContext *txn, const Q12Params &params,
                           ScanStats *stats = nullptr, op::PlanProfile *profile = nullptr);

/// The same Q12 plan run morsel-parallel (build scan, partition build, and
/// probe scan all over `pool`). Bit-exact with RunQ12 and RunQ12Scalar for
/// any worker count. `txn` must stay read-only while the plan runs.
std::vector<Q12Row> RunQ12Parallel(catalog::SqlTable *orders, catalog::SqlTable *lineitem,
                                   transaction::TransactionContext *txn,
                                   const Q12Params &params, common::WorkerPool *pool,
                                   ScanStats *stats = nullptr,
                                   op::PlanProfile *profile = nullptr);

/// Scalar tuple-at-a-time Q12 reference: a std::unordered_multimap build over
/// one Select-per-slot scan of ORDERS, probed one lineitem tuple at a time.
std::vector<Q12Row> RunQ12Scalar(catalog::SqlTable *orders, catalog::SqlTable *lineitem,
                                 transaction::TransactionContext *txn, const Q12Params &params,
                                 ScanStats *stats = nullptr);

/// Parameters of TPC-H Q14 (promotion effect). The official query's window
/// is one month; the default here is a year of the engine's day numbers so
/// the query stays meaningfully selective against small PART tables (part
/// keys above the generated count dangle, shrinking the match rate).
struct Q14Params {
  uint32_t shipdate_min = 9000;         ///< l_shipdate >= shipdate_min
  uint32_t shipdate_max = 9365;         ///< l_shipdate <  shipdate_max
  std::string promo_prefix = "PROMO";   ///< p_type LIKE '<prefix>%'
};

/// Q14 as a two-pipeline plan — and the proof the operator API generalizes:
/// the first FP aggregate over a join, composed purely from existing
/// operators with no query-specific kernel. Pipeline 1 builds the hash
/// table over PART (key p_partkey, payload = "is PROMO part" bit);
/// pipeline 2 streams LINEITEM through the shipdate filter, projects
/// l_extendedprice * (1 - l_discount) once, probes, and sums the projected
/// column twice — unconditionally and gated on the payload bit. The result
/// is 100 * promo_revenue / total_revenue (0 when nothing matched). Run
/// inline. `lineitem`/`part` must use LineItemSchema()/PartSchema() column
/// positions.
double RunQ14(catalog::SqlTable *lineitem, catalog::SqlTable *part,
              transaction::TransactionContext *txn, const Q14Params &params,
              ScanStats *stats = nullptr, op::PlanProfile *profile = nullptr);

/// The same Q14 plan run morsel-parallel. Bit-exact with RunQ14 and
/// RunQ14Scalar for any worker count. `txn` must stay read-only while the
/// plan runs.
double RunQ14Parallel(catalog::SqlTable *lineitem, catalog::SqlTable *part,
                      transaction::TransactionContext *txn, const Q14Params &params,
                      common::WorkerPool *pool, ScanStats *stats = nullptr,
                      op::PlanProfile *profile = nullptr);

/// Scalar tuple-at-a-time Q14 reference, accumulating the same per-block
/// partials in the same order as the plan.
double RunQ14Scalar(catalog::SqlTable *lineitem, catalog::SqlTable *part,
                    transaction::TransactionContext *txn, const Q14Params &params,
                    ScanStats *stats = nullptr);

/// Parameters of TPC-H Q3 (shipping priority). The date is the engine's day
/// number, splitting the generators' date ranges roughly down the middle
/// (orders before it, shipments after it); the segment is one of dbgen's
/// five market segments, keeping about one customer in five.
struct Q3Params {
  std::string segment = "BUILDING";  ///< c_mktsegment = segment
  uint32_t date = 9500;              ///< o_orderdate < date, l_shipdate > date
  uint32_t limit = 10;               ///< ORDER BY revenue DESC, o_orderdate LIMIT limit
};

/// One Q3 result row: an order still open at the cutoff, its pending revenue
/// summed over the qualifying lineitems. Revenue accumulates in lineitem
/// scan order (see RunQ3), so equality between engines is bit-exact.
struct Q3Row {
  int64_t orderkey = 0;
  double revenue = 0;
  uint32_t orderdate = 0;
  int32_t shippriority = 0;

  bool operator==(const Q3Row &) const = default;
};

/// Q3 as a three-pipeline plan — the first multi-way join, exercising probe
/// chaining: pipeline 1 builds a hash table over the segment's customers;
/// pipeline 2 streams LINEITEM through the shipdate filter, projects each
/// line's revenue l_extendedprice * (1 - l_discount), and builds a second
/// table keyed on l_orderkey with the revenue bits as payload; pipeline 3
/// streams ORDERS through the orderdate filter, probes the customer table
/// (each match carried forward), re-probes the chunk against the lineitem
/// table folding every matching line's revenue into one per-order double
/// (added in the table's deterministic match order), and feeds a Top-K sink
/// ordered by (revenue DESC, o_orderdate). Ties beyond the sort keys break
/// on scan position, so the LIMIT boundary is one deterministic answer —
/// bit-exact against RunQ3Scalar at any worker count, order included. Run
/// inline. The tables must use CustomerSchema()/OrdersSchema()/
/// LineItemSchema() column positions.
std::vector<Q3Row> RunQ3(catalog::SqlTable *customer, catalog::SqlTable *orders,
                         catalog::SqlTable *lineitem, transaction::TransactionContext *txn,
                         const Q3Params &params, ScanStats *stats = nullptr,
                         op::PlanProfile *profile = nullptr);

/// The same Q3 plan run morsel-parallel (all three pipelines over `pool`).
/// Bit-exact with RunQ3 and RunQ3Scalar for any worker count. `txn` must
/// stay read-only while the plan runs.
std::vector<Q3Row> RunQ3Parallel(catalog::SqlTable *customer, catalog::SqlTable *orders,
                                 catalog::SqlTable *lineitem,
                                 transaction::TransactionContext *txn, const Q3Params &params,
                                 common::WorkerPool *pool, ScanStats *stats = nullptr,
                                 op::PlanProfile *profile = nullptr);

/// Scalar tuple-at-a-time Q3 reference: hash maps built one Select at a
/// time, each order's revenue folded over its lineitems in lineitem scan
/// order, candidates ranked by (revenue DESC, orderdate, scan position) —
/// the same total order the plan's Top-K sink keeps.
std::vector<Q3Row> RunQ3Scalar(catalog::SqlTable *customer, catalog::SqlTable *orders,
                               catalog::SqlTable *lineitem,
                               transaction::TransactionContext *txn, const Q3Params &params,
                               ScanStats *stats = nullptr);

/// Scalar tuple-at-a-time Q1 reference: one DataTable::Select per slot, row
/// predicates in scan order, partials per block — the baseline figure16
/// compares the other engines against, and the oracle the execution tests
/// demand bit-equal results from.
std::vector<Q1Row> RunQ1Scalar(catalog::SqlTable *table, transaction::TransactionContext *txn,
                               const Q1Params &params, ScanStats *stats = nullptr);

/// Scalar tuple-at-a-time Q6 reference.
double RunQ6Scalar(catalog::SqlTable *table, transaction::TransactionContext *txn,
                   const Q6Params &params, ScanStats *stats = nullptr);

}  // namespace mainline::workload::tpch
