#pragma once

#include <cstdint>

#include "catalog/catalog.h"
#include "catalog/schema.h"
#include "catalog/sql_table.h"
#include "transaction/transaction_manager.h"

namespace mainline::workload::tpch {

/// Column positions of the TPC-H LINEITEM table.
enum LineItem : uint16_t {
  L_ORDERKEY = 0,
  L_PARTKEY,
  L_SUPPKEY,
  L_LINENUMBER,
  L_QUANTITY,
  L_EXTENDEDPRICE,
  L_DISCOUNT,
  L_TAX,
  L_RETURNFLAG,
  L_LINESTATUS,
  L_SHIPDATE,
  L_COMMITDATE,
  L_RECEIPTDATE,
  L_SHIPINSTRUCT,
  L_SHIPMODE,
  L_COMMENT,
};

/// Schema of LINEITEM (types mapped onto the engine's type system).
catalog::Schema LineItemSchema();

/// Deterministic dbgen-style generator for the Figure 1 motivation
/// experiment and the execution-layer workloads. `num_rows` rows are
/// inserted in batches of one transaction per `batch_size` rows
/// (0 = everything in a single transaction). The row contents depend only on
/// `seed`, never on the batching.
/// \return the populated table.
catalog::SqlTable *GenerateLineItem(catalog::Catalog *catalog,
                                    transaction::TransactionManager *txn_manager,
                                    uint64_t num_rows, uint64_t seed = 7,
                                    uint64_t batch_size = 10000);

}  // namespace mainline::workload::tpch
