#pragma once

#include <cstdint>

#include "catalog/catalog.h"
#include "catalog/schema.h"
#include "catalog/sql_table.h"
#include "transaction/transaction_manager.h"

namespace mainline::workload::tpch {

/// Column positions of the TPC-H ORDERS table.
enum Orders : uint16_t {
  O_ORDERKEY = 0,
  O_CUSTKEY,
  O_ORDERSTATUS,
  O_TOTALPRICE,
  O_ORDERDATE,
  O_ORDERPRIORITY,
  O_CLERK,
  O_SHIPPRIORITY,
  O_COMMENT,
};

/// Schema of ORDERS (types mapped onto the engine's type system).
catalog::Schema OrdersSchema();

/// Deterministic dbgen-style ORDERS generator, the build side of the join
/// workloads. Order keys are the dense sequence 1..`num_orders` — consistent
/// with GenerateLineItem, whose order keys start at 1 and advance by at most
/// one per row, so a lineitem table of N rows joins fully against any ORDERS
/// table with `num_orders >= N` (each l_orderkey finds exactly one order).
/// Customer keys are uniform over [1, `num_customers`] — the default matches
/// dbgen's scale-factor-1 customer count, and a GenerateCustomer table built
/// with the same count resolves every o_custkey FK. Rows are inserted in
/// batches of one transaction per `batch_size` rows (0 = everything in a
/// single transaction); the row contents depend only on `seed`, never on the
/// batching. `table_name` allows several ORDERS-shaped tables per catalog
/// (tests build variants side by side).
/// \return the populated table.
catalog::SqlTable *GenerateOrders(catalog::Catalog *catalog,
                                  transaction::TransactionManager *txn_manager,
                                  uint64_t num_orders, uint64_t seed = 11,
                                  uint64_t batch_size = 10000,
                                  const char *table_name = "orders",
                                  uint64_t num_customers = 150000);

}  // namespace mainline::workload::tpch
