#include "workload/tpch/customer.h"

#include <cstdio>
#include <vector>

#include "catalog/schema.h"
#include "catalog/sql_table.h"
#include "common/rand_util.h"
#include "storage/projected_row.h"
#include "transaction/transaction_context.h"
#include "workload/row_util.h"

namespace mainline::workload::tpch {

using catalog::TypeId;

catalog::Schema CustomerSchema() {
  return catalog::Schema({
      {"c_custkey", TypeId::kBigInt},
      {"c_name", TypeId::kVarchar},
      {"c_address", TypeId::kVarchar},
      {"c_nationkey", TypeId::kInteger},
      {"c_phone", TypeId::kVarchar},
      {"c_acctbal", TypeId::kDecimal},
      {"c_mktsegment", TypeId::kVarchar},
      {"c_comment", TypeId::kVarchar},
  });
}

catalog::SqlTable *GenerateCustomer(catalog::Catalog *catalog,
                                    transaction::TransactionManager *txn_manager,
                                    uint64_t num_customers, uint64_t seed,
                                    uint64_t batch_size, const char *table_name) {
  static const char *kSegments[] = {"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY",
                                    "HOUSEHOLD"};

  catalog::SqlTable *table =
      catalog->GetTable(catalog->CreateTable(table_name, CustomerSchema()));
  common::Xorshift rng(seed);
  const storage::ProjectedRowInitializer initializer = table->FullInitializer();
  std::vector<byte> buffer(initializer.ProjectedRowSize() + 8);

  transaction::TransactionContext *txn = txn_manager->BeginTransaction();
  for (uint64_t i = 0; i < num_customers; i++) {
    storage::ProjectedRow *row = initializer.InitializeRow(buffer.data());
    Set<int64_t>(row, C_CUSTKEY, static_cast<int64_t>(i + 1));
    char name[32];
    std::snprintf(name, sizeof(name), "Customer#%09llu",
                  static_cast<unsigned long long>(i + 1));
    SetVarchar(row, C_NAME, name);
    SetVarchar(row, C_ADDRESS, rng.AlphaString(10, 40));
    Set<int32_t>(row, C_NATIONKEY, static_cast<int32_t>(rng.Uniform(0, 24)));
    SetVarchar(row, C_PHONE, rng.NumericString(10, 10));
    Set<double>(row, C_ACCTBAL, static_cast<double>(rng.Uniform(0, 1099998)) / 100.0 - 999.99);
    SetVarchar(row, C_MKTSEGMENT, kSegments[rng.Uniform(0, 4)]);
    SetVarchar(row, C_COMMENT, rng.AlphaString(29, 116));
    table->Insert(txn, *row);

    if (batch_size != 0 && (i + 1) % batch_size == 0) {
      txn_manager->Commit(txn);
      txn = txn_manager->BeginTransaction();
    }
  }
  txn_manager->Commit(txn);
  return table;
}

}  // namespace mainline::workload::tpch
