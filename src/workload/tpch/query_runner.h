#pragma once

#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "common/worker_pool.h"
#include "execution/operators/plan_profile.h"
#include "execution/table_scanner.h"
#include "transaction/transaction_context.h"
#include "workload/tpch/tpch_queries.h"
#include "catalog/sql_table.h"
#include "transaction/transaction_manager.h"

namespace mainline::workload {

using execution::ScanStats;
namespace op = execution::op;

/// Which engine answers a query: the operator-pipeline plan run inline, the
/// same plan run morsel-parallel, or the tuple-at-a-time scalar reference
/// both are benchmarked (and verified) against. All three return
/// bit-identical results (see tpch_queries.h on the canonical per-block
/// accumulation order).
enum class ExecMode : uint8_t { kVectorized = 0, kScalar, kParallel };

/// Facade over the execution layer: begins a snapshot transaction, runs the
/// query plan through the chosen engine, commits, and reports scan
/// statistics — the one-call entry point examples, benchmarks, and external
/// embedders use for in-situ analytics over live tables. The per-query
/// methods are thin wrappers around one Execute helper, so adding a query
/// costs a plan composition (tpch_queries.cc) plus a few lines here.
///
/// The runner owns the worker pool ExecMode::kParallel plans run over; it is
/// created lazily on the first parallel query and sized by the `num_threads`
/// knob (constructor argument or SetNumThreads; 0 = hardware concurrency).
class QueryRunner {
 public:
  explicit QueryRunner(transaction::TransactionManager *txn_manager, uint32_t num_threads = 0)
      : txn_manager_(txn_manager), num_threads_(ResolveThreads(num_threads)) {}

  DISALLOW_COPY_AND_MOVE(QueryRunner)

  /// \return worker count parallel queries will use.
  uint32_t NumThreads() const { return num_threads_; }

  /// Resize the parallel worker pool (0 = hardware concurrency). The old
  /// pool, if any, is drained and joined; the next parallel query builds a
  /// fresh one.
  void SetNumThreads(uint32_t num_threads) {
    num_threads_ = ResolveThreads(num_threads);
    pool_.reset();
  }

  /// Toggle per-operator profiling for subsequent plan-based queries (the
  /// scalar reference engine has no plan to profile). Results are bit-exact
  /// with profiling on or off; the cost is one timer read per operator per
  /// block. Read the record back with LastProfile.
  void SetProfiling(bool on) { profiling_ = on; }
  bool Profiling() const { return profiling_; }

  /// The profile of the most recent profiled plan-based query (empty when
  /// profiling is off, no query has run yet, or the last query was kScalar).
  const op::PlanProfile &LastProfile() const { return last_profile_; }

  struct Q1Result {
    std::vector<tpch::Q1Row> rows;
    ScanStats stats;
  };

  struct Q6Result {
    double revenue = 0;
    ScanStats stats;
  };

  /// Q12's stats cover both scans: the ORDERS build and the LINEITEM probe
  /// (rows = orders rows + lineitem rows).
  struct Q12Result {
    std::vector<tpch::Q12Row> rows;
    ScanStats stats;
  };

  /// Q14's stats cover both scans: the PART build and the LINEITEM probe.
  struct Q14Result {
    double promo_revenue = 0;
    ScanStats stats;
  };

  /// Q3's stats cover all three scans: the CUSTOMER and LINEITEM builds and
  /// the ORDERS probe.
  struct Q3Result {
    std::vector<tpch::Q3Row> rows;
    ScanStats stats;
  };

  Q1Result RunQ1(catalog::SqlTable *table, const tpch::Q1Params &params = {},
                 ExecMode mode = ExecMode::kVectorized) {
    return Execute<Q1Result>(mode, [&](auto *txn, auto *pool, Q1Result *result) {
      result->rows = mode == ExecMode::kScalar
                         ? tpch::RunQ1Scalar(table, txn, params, &result->stats)
                         : tpch::RunQ1Parallel(table, txn, params, pool, &result->stats,
                                               ProfileOut(mode));
    });
  }

  Q6Result RunQ6(catalog::SqlTable *table, const tpch::Q6Params &params = {},
                 ExecMode mode = ExecMode::kVectorized) {
    return Execute<Q6Result>(mode, [&](auto *txn, auto *pool, Q6Result *result) {
      result->revenue = mode == ExecMode::kScalar
                            ? tpch::RunQ6Scalar(table, txn, params, &result->stats)
                            : tpch::RunQ6Parallel(table, txn, params, pool, &result->stats,
                                                  ProfileOut(mode));
    });
  }

  Q12Result RunQ12(catalog::SqlTable *orders, catalog::SqlTable *lineitem,
                   const tpch::Q12Params &params = {}, ExecMode mode = ExecMode::kVectorized) {
    return Execute<Q12Result>(mode, [&](auto *txn, auto *pool, Q12Result *result) {
      result->rows =
          mode == ExecMode::kScalar
              ? tpch::RunQ12Scalar(orders, lineitem, txn, params, &result->stats)
              : tpch::RunQ12Parallel(orders, lineitem, txn, params, pool, &result->stats,
                                     ProfileOut(mode));
    });
  }

  Q14Result RunQ14(catalog::SqlTable *lineitem, catalog::SqlTable *part,
                   const tpch::Q14Params &params = {}, ExecMode mode = ExecMode::kVectorized) {
    return Execute<Q14Result>(mode, [&](auto *txn, auto *pool, Q14Result *result) {
      result->promo_revenue =
          mode == ExecMode::kScalar
              ? tpch::RunQ14Scalar(lineitem, part, txn, params, &result->stats)
              : tpch::RunQ14Parallel(lineitem, part, txn, params, pool, &result->stats,
                                     ProfileOut(mode));
    });
  }

  Q3Result RunQ3(catalog::SqlTable *customer, catalog::SqlTable *orders,
                 catalog::SqlTable *lineitem, const tpch::Q3Params &params = {},
                 ExecMode mode = ExecMode::kVectorized) {
    return Execute<Q3Result>(mode, [&](auto *txn, auto *pool, Q3Result *result) {
      result->rows =
          mode == ExecMode::kScalar
              ? tpch::RunQ3Scalar(customer, orders, lineitem, txn, params, &result->stats)
              : tpch::RunQ3Parallel(customer, orders, lineitem, txn, params, pool,
                                    &result->stats, ProfileOut(mode));
    });
  }

 private:
  /// The txn/dispatch/stats/commit plumbing every query shares: begin a
  /// snapshot transaction, hand the query the worker pool its mode calls for
  /// (the lazily built pool for kParallel, none otherwise — a null pool runs
  /// a plan inline), commit, return. `query(txn, pool, &result)` fills the
  /// result in between.
  template <typename Result, typename Query>
  Result Execute(ExecMode mode, Query &&query) {
    // A profiled run replaces the record wholesale; a profiled scalar run
    // leaves it empty rather than stale.
    if (profiling_) last_profile_ = op::PlanProfile{};
    Result result;
    transaction::TransactionContext *txn = txn_manager_->BeginTransaction();
    query(txn, mode == ExecMode::kParallel ? Pool() : nullptr, &result);
    txn_manager_->Commit(txn);
    return result;
  }

  static uint32_t ResolveThreads(uint32_t num_threads) {
    if (num_threads != 0) return num_threads;
    const uint32_t hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
  }

  common::WorkerPool *Pool() {
    if (pool_ == nullptr) pool_ = std::make_unique<common::WorkerPool>(num_threads_);
    return pool_.get();
  }

  /// Where a plan-based query should record its profile: the runner's slot
  /// when profiling is on, nowhere otherwise (a null out-param keeps the
  /// plan's hot path at a single null check per chunk).
  op::PlanProfile *ProfileOut(ExecMode mode) {
    if (!profiling_ || mode == ExecMode::kScalar) return nullptr;
    return &last_profile_;
  }

  transaction::TransactionManager *txn_manager_;
  uint32_t num_threads_;
  std::unique_ptr<common::WorkerPool> pool_;
  bool profiling_ = false;
  op::PlanProfile last_profile_;
};

}  // namespace mainline::workload
