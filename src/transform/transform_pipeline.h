#pragma once

#include <atomic>
#include <chrono>
#include <functional>
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/macros.h"
#include "common/mutex.h"
#include "common/spin_latch.h"
#include "common/thread_annotations.h"
#include "storage/data_table.h"
#include "storage/raw_block.h"
#include "transform/access_observer.h"
#include "transform/block_transformer.h"
#include "transform/freeze_policy.h"

namespace mainline::transform {

/// The background transformation pipeline of Figure 8: pulls cold-block
/// candidates from the access observer, groups them per table into compaction
/// groups, and runs the two-phase transformer over each group. Runs either on
/// a dedicated thread (Start/Stop) or cooperatively (RunOnce).
class TransformPipeline {
 public:
  /// \param observer source of cold-block candidates (fed by the GC)
  /// \param transformer two-phase compact+gather engine
  /// \param group_size blocks per compaction group (Figure 14's knob)
  TransformPipeline(AccessObserver *observer, BlockTransformer *transformer,
                    uint32_t group_size)
      : observer_(observer), transformer_(transformer), group_size_(group_size) {}

  DISALLOW_COPY_AND_MOVE(TransformPipeline)

  ~TransformPipeline() { Stop(); }

  /// Restrict transformation to tables for which `filter` returns true
  /// (the paper targets only the tables that generate cold data).
  void SetTableFilter(std::function<bool(storage::DataTable *)> filter) {
    table_filter_ = std::move(filter);
  }

  /// Manually enqueue every current block of `table` as a cold candidate
  /// (e.g. a bulk-loaded, read-mostly table whose writes predate the
  /// observer).
  void EnqueueTable(storage::DataTable *table) EXCLUDES(manual_latch_) {
    common::SpinLatch::ScopedSpinLatch guard(&manual_latch_);
    for (storage::RawBlock *block : table->Blocks()) manual_queue_.emplace_back(block, table);
  }

  /// One pass: collect cold blocks, form groups, transform them. Each pass
  /// also feeds the engine metrics registry (transform.* counters, the
  /// observer queue-depth gauge, and the pass/freeze-lag histograms).
  /// \param pass_stats when non-null, receives this pass's TransformStats
  ///        alone (the lifetime accumulation stays available via Stats()).
  /// \return number of blocks frozen in this pass.
  uint32_t RunOnce(TransformStats *pass_stats = nullptr) EXCLUDES(manual_latch_, stats_latch_);

  /// Spawn the background transformation thread at a fixed cadence.
  void Start(std::chrono::milliseconds period = std::chrono::milliseconds(10))
      EXCLUDES(sleep_mutex_);

  /// Spawn the background thread under feedback control: after every pass a
  /// FreezePolicy built from `policy` picks the delay before the next one
  /// from the observer's queue depth and the pass duration, so freshness lag
  /// stays bounded under write bursts without hand-tuning a period (see
  /// transform/freeze_policy.h for the control law).
  void Start(const FreezePolicy::Config &policy) EXCLUDES(sleep_mutex_);

  /// Join the background thread. Returns promptly even mid-sleep: the loop
  /// waits on a condition variable this notifies, so shutdown latency does
  /// not scale with the (possibly controller-lengthened) period.
  void Stop() EXCLUDES(sleep_mutex_);

  /// The loop's current inter-pass delay: the fixed period, or the
  /// controller's latest decision when started adaptively. Exposed for
  /// monitoring and tests.
  std::chrono::milliseconds CurrentPeriod() const {
    // relaxed: a point-in-time reading for reporting, like a metrics gauge;
    // it orders nothing.
    return std::chrono::milliseconds(period_ms_.load(std::memory_order_relaxed));
  }

  /// Lifetime accumulation over every pass this pipeline has run. Returns a
  /// snapshot by value: when the pipeline runs on its background thread
  /// (Start), a reference into stats_ would race with the accumulation at
  /// the end of each concurrent RunOnce.
  TransformStats Stats() const EXCLUDES(stats_latch_) {
    common::SpinLatch::ScopedSpinLatch guard(&stats_latch_);
    return stats_;
  }

 private:
  AccessObserver *observer_;
  BlockTransformer *transformer_;
  uint32_t group_size_;
  std::function<bool(storage::DataTable *)> table_filter_;
  mutable common::SpinLatch stats_latch_;
  TransformStats stats_ GUARDED_BY(stats_latch_);
  common::SpinLatch manual_latch_;
  std::vector<std::pair<storage::RawBlock *, storage::DataTable *>> manual_queue_
      GUARDED_BY(manual_latch_);

  /// The background loop body shared by both Start overloads.
  void Run() EXCLUDES(manual_latch_, stats_latch_, sleep_mutex_);

  std::thread worker_;
  std::atomic<bool> run_{false};
  /// Set by the controller when adaptive, by Start(period) when fixed.
  std::atomic<int64_t> period_ms_{10};
  /// Present only between Start(FreezePolicy::Config) and the next Start;
  /// touched exclusively by Start (before the worker spawns) and the worker.
  std::optional<FreezePolicy> policy_;
  /// The inter-pass sleep. Stop() cannot signal through `run_` alone: the
  /// loop's "still running?" check and its wait must be one atomic step
  /// under a mutex, or a notify landing between them is lost and Stop blocks
  /// a full period — exactly the latency this cv exists to remove.
  common::Mutex sleep_mutex_;
  common::ConditionVariable sleep_cv_;
  bool wake_ GUARDED_BY(sleep_mutex_) = false;
};

}  // namespace mainline::transform
