#pragma once

#include <atomic>
#include <chrono>
#include <functional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/macros.h"
#include "common/spin_latch.h"
#include "common/thread_annotations.h"
#include "storage/data_table.h"
#include "storage/raw_block.h"
#include "transform/access_observer.h"
#include "transform/block_transformer.h"

namespace mainline::transform {

/// The background transformation pipeline of Figure 8: pulls cold-block
/// candidates from the access observer, groups them per table into compaction
/// groups, and runs the two-phase transformer over each group. Runs either on
/// a dedicated thread (Start/Stop) or cooperatively (RunOnce).
class TransformPipeline {
 public:
  /// \param observer source of cold-block candidates (fed by the GC)
  /// \param transformer two-phase compact+gather engine
  /// \param group_size blocks per compaction group (Figure 14's knob)
  TransformPipeline(AccessObserver *observer, BlockTransformer *transformer,
                    uint32_t group_size)
      : observer_(observer), transformer_(transformer), group_size_(group_size) {}

  DISALLOW_COPY_AND_MOVE(TransformPipeline)

  ~TransformPipeline() { Stop(); }

  /// Restrict transformation to tables for which `filter` returns true
  /// (the paper targets only the tables that generate cold data).
  void SetTableFilter(std::function<bool(storage::DataTable *)> filter) {
    table_filter_ = std::move(filter);
  }

  /// Manually enqueue every current block of `table` as a cold candidate
  /// (e.g. a bulk-loaded, read-mostly table whose writes predate the
  /// observer).
  void EnqueueTable(storage::DataTable *table) EXCLUDES(manual_latch_) {
    common::SpinLatch::ScopedSpinLatch guard(&manual_latch_);
    for (storage::RawBlock *block : table->Blocks()) manual_queue_.emplace_back(block, table);
  }

  /// One pass: collect cold blocks, form groups, transform them. Each pass
  /// also feeds the engine metrics registry (transform.* counters, the
  /// observer queue-depth gauge, and the pass/freeze-lag histograms).
  /// \param pass_stats when non-null, receives this pass's TransformStats
  ///        alone (the lifetime accumulation stays available via Stats()).
  /// \return number of blocks frozen in this pass.
  uint32_t RunOnce(TransformStats *pass_stats = nullptr) EXCLUDES(manual_latch_, stats_latch_);

  /// Spawn the background transformation thread.
  void Start(std::chrono::milliseconds period = std::chrono::milliseconds(10));

  /// Join the background thread.
  void Stop();

  /// Lifetime accumulation over every pass this pipeline has run. Returns a
  /// snapshot by value: when the pipeline runs on its background thread
  /// (Start), a reference into stats_ would race with the accumulation at
  /// the end of each concurrent RunOnce.
  TransformStats Stats() const EXCLUDES(stats_latch_) {
    common::SpinLatch::ScopedSpinLatch guard(&stats_latch_);
    return stats_;
  }

 private:
  AccessObserver *observer_;
  BlockTransformer *transformer_;
  uint32_t group_size_;
  std::function<bool(storage::DataTable *)> table_filter_;
  mutable common::SpinLatch stats_latch_;
  TransformStats stats_ GUARDED_BY(stats_latch_);
  common::SpinLatch manual_latch_;
  std::vector<std::pair<storage::RawBlock *, storage::DataTable *>> manual_queue_
      GUARDED_BY(manual_latch_);

  std::thread worker_;
  std::atomic<bool> run_{false};
};

}  // namespace mainline::transform
