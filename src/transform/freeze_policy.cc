#include "transform/freeze_policy.h"

#include <algorithm>
#include <cmath>

namespace mainline::transform {

FreezePolicy::FreezePolicy() : FreezePolicy(Config()) {}

FreezePolicy::FreezePolicy(const Config &config) : config_(config) {
  const Config defaults;
  if (config_.min_period.count() < 1) config_.min_period = defaults.min_period;
  if (config_.max_period < config_.min_period) config_.max_period = config_.min_period;
  config_.initial_period =
      std::clamp(config_.initial_period, config_.min_period, config_.max_period);
  if (config_.backoff <= 1.0) config_.backoff = defaults.backoff;
  if (config_.max_duty_cycle <= 0.0 || config_.max_duty_cycle > 1.0) {
    config_.max_duty_cycle = defaults.max_duty_cycle;
  }
  if (config_.max_shrink <= 0.0 || config_.max_shrink >= 1.0) {
    config_.max_shrink = defaults.max_shrink;
  }
  period_ms_ = static_cast<double>(config_.initial_period.count());
}

std::chrono::milliseconds FreezePolicy::OnPassComplete(const PassFeedback &feedback) {
  double next = period_ms_;
  if (feedback.queue_depth > config_.target_queue_depth) {
    // Proportional cut: a queue twice the target halves the period. The
    // divisor is the queue depth, which the branch guarantees is >= 1 even
    // when the target is configured to 0.
    const double ratio = static_cast<double>(config_.target_queue_depth) /
                         static_cast<double>(feedback.queue_depth);
    next = period_ms_ * std::max(ratio, config_.max_shrink);
  } else if (feedback.queue_depth == 0 && feedback.blocks_frozen == 0) {
    next = period_ms_ * config_.backoff;
  }
  // Writer-starvation guard: with duty cycle d, a pass of length p must be
  // followed by at least p * (1-d)/d of sleep. An empty pass (pass_us == 0)
  // contributes a floor of 0 — the guard never divides by pass statistics.
  const double pass_ms = static_cast<double>(feedback.pass_us) / 1000.0;
  const double floor_ms = pass_ms * (1.0 - config_.max_duty_cycle) / config_.max_duty_cycle;
  next = std::max(next, floor_ms);
  period_ms_ = std::clamp(next, static_cast<double>(config_.min_period.count()),
                          static_cast<double>(config_.max_period.count()));
  return CurrentPeriod();
}

std::chrono::milliseconds FreezePolicy::CurrentPeriod() const {
  return std::chrono::milliseconds(static_cast<int64_t>(std::lround(period_ms_)));
}

}  // namespace mainline::transform
