#pragma once

#include <atomic>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/macros.h"
#include "common/spin_latch.h"
#include "common/thread_annotations.h"
#include "gc/write_observer.h"
#include "storage/data_table.h"
#include "storage/raw_block.h"

namespace mainline::transform {

/// Tracks block access statistics without touching the transaction critical
/// path (Section 4.2). The garbage collector, which already scans every
/// transaction's undo records, reports each modified block here; the
/// observer approximates the modification time with the GC invocation epoch
/// ("GC epoch"). Blocks that have not been modified for
/// `cold_threshold_epochs` GC epochs are emitted as cold candidates for the
/// transformation queue.
class AccessObserver final : public gc::WriteObserver {
 public:
  /// \param cold_threshold_epochs number of GC epochs without modification
  ///        after which a block is considered cold
  explicit AccessObserver(uint64_t cold_threshold_epochs)
      : cold_threshold_(cold_threshold_epochs) {}

  DISALLOW_COPY_AND_MOVE(AccessObserver)

  /// Called by the GC at the start of each run.
  // relaxed: the GC thread is the only writer, but the transformation thread
  // reads the epoch concurrently (CollectColdBlocks), so a plain uint64_t
  // here was a data race — coldness is a heuristic, so no ordering is needed
  // beyond tear-free reads.
  void NewEpoch() override { epoch_.fetch_add(1, std::memory_order_relaxed); }

  /// Called by the GC for every block touched by a transaction it processed.
  void ObserveWrite(storage::RawBlock *block) override EXCLUDES(latch_) {
    // relaxed: load and store — the touch stamp is a coldness heuristic;
    // an off-by-one epoch merely delays or hastens a freeze candidate.
    block->last_touched_epoch.store(epoch_.load(std::memory_order_relaxed),
                                    std::memory_order_relaxed);
    common::SpinLatch::ScopedSpinLatch guard(&latch_);
    watched_[block] = block->data_table;
  }

  /// Stop tracking a block (e.g. because the compactor released it).
  void ForgetBlock(storage::RawBlock *block) EXCLUDES(latch_) {
    common::SpinLatch::ScopedSpinLatch guard(&latch_);
    watched_.erase(block);
  }

  /// Collect blocks whose last modification is at least the cold threshold
  /// behind the current epoch. Collected blocks leave the watch set (they
  /// re-enter when modified again). The pair's second element is the owning
  /// table observed at write time; the caller must validate that the block
  /// still belongs to it.
  std::vector<std::pair<storage::RawBlock *, storage::DataTable *>> CollectColdBlocks()
      EXCLUDES(latch_) {
    std::vector<std::pair<storage::RawBlock *, storage::DataTable *>> result;
    // relaxed: reading the heuristic epoch; see NewEpoch.
    const uint64_t epoch = epoch_.load(std::memory_order_relaxed);
    common::SpinLatch::ScopedSpinLatch guard(&latch_);
    for (auto it = watched_.begin(); it != watched_.end();) {
      storage::RawBlock *block = it->first;
      // relaxed: stale touch stamps only shift when a block is deemed cold;
      // the compactor re-validates ownership before acting on it.
      const uint64_t last = block->last_touched_epoch.load(std::memory_order_relaxed);
      if (epoch >= last + cold_threshold_) {
        result.emplace_back(block, it->second);
        it = watched_.erase(it);
      } else {
        ++it;
      }
    }
    return result;
  }

  /// \return the current GC epoch.
  // relaxed: diagnostic read of the heuristic counter.
  uint64_t Epoch() const { return epoch_.load(std::memory_order_relaxed); }

  /// \return number of blocks currently watched.
  size_t WatchedBlocks() EXCLUDES(latch_) {
    common::SpinLatch::ScopedSpinLatch guard(&latch_);
    return watched_.size();
  }

 private:
  const uint64_t cold_threshold_;
  std::atomic<uint64_t> epoch_{0};
  common::SpinLatch latch_;
  std::unordered_map<storage::RawBlock *, storage::DataTable *> watched_ GUARDED_BY(latch_);
};

}  // namespace mainline::transform
