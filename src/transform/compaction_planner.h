#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "storage/data_table.h"

namespace mainline::transform {

/// The output of compaction planning (Section 4.3 Phase #1): a set of
/// one-to-one tuple movements that makes the group's tuples "logically
/// contiguous" — ⌊t/s⌋ blocks completely full, one block filled in its first
/// (t mod s) slots, and the rest empty.
struct CompactionPlan {
  /// Tuple movements to execute (source slot -> destination gap).
  std::vector<std::pair<storage::TupleSlot, storage::TupleSlot>> moves;
  /// Blocks that hold tuples in the final state (F ∪ {p}).
  std::vector<storage::RawBlock *> target_blocks;
  /// Blocks that end up empty and can be recycled (E).
  std::vector<storage::RawBlock *> emptied_blocks;
  /// Total live tuples in the group.
  uint32_t total_tuples = 0;
};

/// Plans tuple movements for a compaction group. Two strategies, compared in
/// Figure 13:
///  - **approximate**: sort blocks by emptiness ascending, take the fullest
///    ⌊t/s⌋ as F and the next as p. Within (t mod s) movements of optimal,
///    with a single pass.
///  - **optimal**: additionally try every remaining block as p and keep the
///    one whose first (t mod s) slots have the fewest gaps.
class CompactionPlanner {
 public:
  CompactionPlanner() = delete;

  /// \param table table the group belongs to
  /// \param group blocks to compact together (same layout)
  /// \param optimal use the optimal planner instead of the approximate one
  static CompactionPlan Plan(const storage::DataTable &table,
                             const std::vector<storage::RawBlock *> &group, bool optimal);
};

}  // namespace mainline::transform
