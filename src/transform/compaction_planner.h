#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "storage/data_table.h"
#include "storage/raw_block.h"
#include "storage/storage_defs.h"

namespace mainline::transform {

/// The output of compaction planning (Section 4.3 Phase #1): a set of
/// one-to-one tuple movements that makes the group's tuples "logically
/// contiguous" — ⌊t/s⌋ blocks completely full, one block filled in its first
/// (t mod s) slots, and the rest empty.
struct CompactionPlan {
  /// Tuple movements to execute (source slot -> destination gap).
  std::vector<std::pair<storage::TupleSlot, storage::TupleSlot>> moves;
  /// Blocks that hold tuples in the final state (F ∪ {p}).
  std::vector<storage::RawBlock *> target_blocks;
  /// Blocks this plan's moves empty out, to be recycled by the executor (E).
  std::vector<storage::RawBlock *> emptied_blocks;
  /// Blocks that were already empty when the plan was made (user deletes
  /// emptied them, or an earlier pass did and its release was declined or
  /// is still in flight). Recyclable, but not an accomplishment of this
  /// plan's moves; the executor schedules them through the table's
  /// pending-release gate, which dedups against an in-flight release.
  std::vector<storage::RawBlock *> already_empty_blocks;
  /// Total live tuples in the group.
  uint32_t total_tuples = 0;
};

/// Plans tuple movements for a compaction group. Two strategies, compared in
/// Figure 13:
///  - **approximate**: sort blocks by emptiness ascending, take the fullest
///    ⌊t/s⌋ as F and the next as p. Within (t mod s) movements of optimal,
///    with a single pass.
///  - **optimal**: additionally try every remaining block as p and keep the
///    one whose first (t mod s) slots have the fewest gaps.
class CompactionPlanner {
 public:
  CompactionPlanner() = delete;

  /// \param table table the group belongs to
  /// \param group blocks to compact together (same layout)
  /// \param optimal use the optimal planner instead of the approximate one
  static CompactionPlan Plan(const storage::DataTable &table,
                             const std::vector<storage::RawBlock *> &group, bool optimal);
};

}  // namespace mainline::transform
