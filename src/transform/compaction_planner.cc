#include "storage/storage_defs.h"
#include "storage/raw_block.h"
#include "transform/compaction_planner.h"

#include <algorithm>

namespace mainline::transform {

namespace {

struct BlockInfo {
  storage::RawBlock *block;
  std::vector<uint32_t> filled;  // allocated slot offsets, ascending
  std::vector<uint32_t> gaps;    // unallocated slot offsets, ascending
};

BlockInfo Inspect(const storage::DataTable &table, storage::RawBlock *block) {
  BlockInfo info{block, {}, {}};
  const uint32_t num_slots = table.GetLayout().NumSlots();
  const auto *bitmap = table.Accessor().AllocationBitmap(block);
  for (uint32_t i = 0; i < num_slots; i++) {
    if (bitmap->Test(i)) {
      info.filled.push_back(i);
    } else {
      info.gaps.push_back(i);
    }
  }
  return info;
}

/// Number of gaps within the first `prefix` slots of a block.
uint32_t GapsInPrefix(const BlockInfo &info, uint32_t prefix) {
  return static_cast<uint32_t>(
      std::lower_bound(info.gaps.begin(), info.gaps.end(), prefix) - info.gaps.begin());
}

}  // namespace

CompactionPlan CompactionPlanner::Plan(const storage::DataTable &table,
                                       const std::vector<storage::RawBlock *> &group,
                                       bool optimal) {
  const uint32_t s = table.GetLayout().NumSlots();
  std::vector<BlockInfo> infos;
  infos.reserve(group.size());
  uint32_t t = 0;
  for (storage::RawBlock *block : group) {
    infos.push_back(Inspect(table, block));
    t += static_cast<uint32_t>(infos.back().filled.size());
  }

  CompactionPlan plan;
  plan.total_tuples = t;

  // Fullest blocks first (fewest empty slots) — the selection of F that
  // minimizes gaps to fill.
  std::sort(infos.begin(), infos.end(), [](const BlockInfo &a, const BlockInfo &b) {
    return a.gaps.size() < b.gaps.size();
  });

  const uint32_t num_full = t / s;
  const uint32_t rem = t % s;

  // Choose p among the remaining blocks.
  size_t p_idx = infos.size();  // none
  if (rem != 0) {
    MAINLINE_ASSERT(num_full < infos.size(), "remainder implies a partial block exists");
    p_idx = num_full;  // approximate: next-fullest block
    if (optimal) {
      // Optimal: the p whose first `rem` slots have the fewest gaps costs the
      // fewest movements (Section 4.3).
      for (size_t i = num_full; i < infos.size(); i++) {
        if (GapsInPrefix(infos[i], rem) < GapsInPrefix(infos[p_idx], rem)) p_idx = i;
      }
      if (p_idx != num_full) std::swap(infos[p_idx], infos[num_full]);
      p_idx = num_full;
    }
  }

  // Targets: every gap in F, plus gaps within p's first `rem` slots.
  std::vector<storage::TupleSlot> targets;
  for (size_t i = 0; i < num_full; i++) {
    for (const uint32_t gap : infos[i].gaps) {
      targets.emplace_back(infos[i].block, gap);
    }
    plan.target_blocks.push_back(infos[i].block);
  }
  if (p_idx < infos.size()) {
    const BlockInfo &p = infos[p_idx];
    for (const uint32_t gap : p.gaps) {
      if (gap < rem) targets.emplace_back(p.block, gap);
    }
    plan.target_blocks.push_back(p.block);
  }

  // Sources: p's tuples beyond the prefix, plus every tuple in E.
  std::vector<storage::TupleSlot> sources;
  if (p_idx < infos.size()) {
    const BlockInfo &p = infos[p_idx];
    for (const uint32_t slot : p.filled) {
      if (slot >= rem) sources.emplace_back(p.block, slot);
    }
  }
  for (size_t i = (p_idx < infos.size() ? p_idx + 1 : num_full); i < infos.size(); i++) {
    for (const uint32_t slot : infos[i].filled) {
      sources.emplace_back(infos[i].block, slot);
    }
    // Blocks that arrived empty (user deletes or an earlier pass) are
    // reported separately: recyclable, but not emptied by this plan.
    (infos[i].filled.empty() ? plan.already_empty_blocks : plan.emptied_blocks)
        .push_back(infos[i].block);
  }

  MAINLINE_ASSERT(sources.size() == targets.size(),
                  "compaction accounting: |sources| must equal |targets|");
  plan.moves.reserve(sources.size());
  for (size_t i = 0; i < sources.size(); i++) {
    plan.moves.emplace_back(sources[i], targets[i]);
  }
  return plan;
}

}  // namespace mainline::transform
