#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/macros.h"
#include "common/typedefs.h"
#include "gc/garbage_collector.h"
#include "storage/arrow_block_metadata.h"
#include "storage/data_table.h"
#include "storage/raw_block.h"
#include "storage/storage_defs.h"
#include "transaction/transaction_context.h"
#include "transaction/transaction_manager.h"

namespace mainline::transform {

/// What the gathering phase emits for variable-length columns (Section 4.4).
enum class GatherMode : uint8_t {
  /// Contiguous Arrow varbinary buffers (values + int32 offsets).
  kVarlenGather = 0,
  /// Parquet/ORC-style dictionary compression (sorted dictionary + codes).
  kDictionaryCompression,
};

/// Counters reported by the transformation pipeline, used by the Figure 12-14
/// benchmarks.
struct TransformStats {
  uint64_t tuples_moved = 0;
  /// Blocks emptied by compaction and scheduled for release. The deferred
  /// release re-validates and can decline (insertion block, concurrent
  /// refill), so in racy schedules this may overcount actual frees by the
  /// number of declined blocks.
  uint64_t blocks_freed = 0;
  uint64_t blocks_frozen = 0;
  uint64_t compaction_aborts = 0;
  uint64_t gather_retries = 0;
  /// Operations in compaction transactions (each move = delete + insert).
  uint64_t write_set_size = 0;
  uint64_t compaction_us = 0;
  uint64_t gather_us = 0;
};

/// The two-phase relaxed-Arrow-to-canonical-Arrow transformation of
/// Section 4.3:
///
/// **Phase 1 (compaction)** runs one transaction per compaction group that
/// shuffles tuples (delete + insert pairs) to make the group's tuples
/// logically contiguous, marks the group's blocks *cooling* before
/// committing, and registers emptied blocks for recycling.
///
/// **Phase 2 (gathering)** waits until every transaction that overlapped the
/// compaction transaction has finished (closing the check-and-miss race of
/// Figure 9), verifies that no version chains remain, takes the *freezing*
/// exclusive lock, copies variable-length values into contiguous Arrow
/// buffers (or builds dictionaries), computes Arrow metadata, and marks the
/// block *frozen*.
///
/// Replaced buffers are reclaimed through the GC's deferred actions, so
/// in-flight readers never observe freed memory.
class BlockTransformer {
 public:
  /// Callback invoked after each successful tuple movement (for index
  /// maintenance); receives (from, to, compaction transaction).
  using MoveCallback = std::function<void(storage::TupleSlot, storage::TupleSlot,
                                          transaction::TransactionContext *)>;

  BlockTransformer(transaction::TransactionManager *txn_manager, gc::GarbageCollector *gc,
                   GatherMode mode = GatherMode::kVarlenGather, bool optimal_planner = false)
      : txn_manager_(txn_manager), gc_(gc), mode_(mode), optimal_planner_(optimal_planner) {}

  DISALLOW_COPY_AND_MOVE(BlockTransformer)

  /// Run phase 1 on a compaction group.
  /// \param table owning table
  /// \param group blocks to compact together
  /// \param stats accumulates counters (may be nullptr)
  /// \param commit_ts_out receives the compaction transaction's commit
  ///        timestamp (gate for phase 2); may be nullptr
  /// \param survivors_out receives the blocks still holding tuples after
  ///        compaction (the candidates for gathering); may be nullptr.
  ///        Emptied blocks are scheduled for recycling and must not be
  ///        touched again.
  /// \return true if compaction committed, false if it aborted on a conflict
  ///         with user transactions (requeue the group).
  bool CompactGroup(storage::DataTable *table, const std::vector<storage::RawBlock *> &group,
                    TransformStats *stats, transaction::timestamp_t *commit_ts_out,
                    std::vector<storage::RawBlock *> *survivors_out = nullptr);

  /// Run phase 2 on one block (state must be cooling).
  /// \return true if the block is now frozen; false if a user transaction
  ///         preempted or residual versions were found (requeue).
  bool GatherBlock(storage::DataTable *table, storage::RawBlock *block, TransformStats *stats);

  /// Full pipeline: compact, wait out overlapping transactions, gather every
  /// surviving block. Blocking; intended for the background transformation
  /// thread and benchmarks.
  /// \return number of blocks frozen.
  uint32_t ProcessGroup(storage::DataTable *table,
                        const std::vector<storage::RawBlock *> &group, TransformStats *stats);

  void SetMoveCallback(MoveCallback callback) { move_callback_ = std::move(callback); }

  /// Whether ProcessGroup may drive the garbage collector itself while
  /// waiting for version chains to clear between phases (default). Disable
  /// when a dedicated GC thread owns the collector — GC state is
  /// single-consumer — in which case ProcessGroup waits for that thread to
  /// prune instead.
  void SetInlineGCPump(bool pump) { pump_gc_ = pump; }

  GatherMode Mode() const { return mode_; }

 private:
  bool GatherVarlen(storage::DataTable *table, storage::RawBlock *block, uint32_t num_records,
                    storage::ArrowBlockMetadata *metadata,
                    std::vector<const byte *> *old_buffers);
  bool GatherDictionary(storage::DataTable *table, storage::RawBlock *block,
                        uint32_t num_records, storage::ArrowBlockMetadata *metadata,
                        std::vector<const byte *> *old_buffers);

  transaction::TransactionManager *txn_manager_;
  gc::GarbageCollector *gc_;
  GatherMode mode_;
  bool optimal_planner_;
  bool pump_gc_ = true;
  MoveCallback move_callback_;
};

}  // namespace mainline::transform
