#include "transform/transform_pipeline.h"

#include <unordered_set>

#include "common/timer.h"
#include "metrics/engine_metrics.h"
#include "storage/block_access_controller.h"
#include "storage/data_table.h"
#include "storage/raw_block.h"

namespace mainline::transform {

uint32_t TransformPipeline::RunOnce(TransformStats *pass_stats) {
  const common::Timer pass_timer;
  // Group candidates per table, validating that each block still belongs to
  // the table we observed (it may have been recycled since).
  std::unordered_map<storage::DataTable *, std::vector<storage::RawBlock *>> per_table;
  std::vector<std::pair<storage::RawBlock *, storage::DataTable *>> candidates;
  {
    common::SpinLatch::ScopedSpinLatch guard(&manual_latch_);
    candidates.swap(manual_queue_);
  }
  for (auto &[block, table] : observer_->CollectColdBlocks()) candidates.emplace_back(block, table);
  // The same block can arrive through both the manual queue and the observer;
  // a duplicate inside one compaction group would make the planner count its
  // tuples twice and compact the block onto itself.
  std::unordered_set<storage::RawBlock *> dedup;
  for (auto &[block, table] : candidates) {
    if (block->data_table != table || table == nullptr) continue;
    if (table_filter_ && !table_filter_(table)) continue;
    if (block->controller.GetState() == storage::BlockState::kFrozen) continue;
    if (!dedup.insert(block).second) continue;
    per_table[table].push_back(block);
  }

  metrics::TransformMetrics &transform_metrics = metrics::Transform();
  // Freshness lag is measured from this pass's cold-collection point to each
  // group reaching frozen (the watch set holds no per-block timestamps, so
  // the epochs a block waited before collection are not included).
  const common::Timer collect_timer;
  uint32_t frozen = 0;
  TransformStats pass;
  for (auto &[table, blocks] : per_table) {
    for (size_t i = 0; i < blocks.size(); i += group_size_) {
      const size_t end = std::min(blocks.size(), i + group_size_);
      const std::vector<storage::RawBlock *> group(blocks.begin() + static_cast<long>(i),
                                                   blocks.begin() + static_cast<long>(end));
      const uint32_t group_frozen = transformer_->ProcessGroup(table, group, &pass);
      if (group_frozen > 0) transform_metrics.freeze_lag_us->Observe(collect_timer.Elapsed<>());
      frozen += group_frozen;
    }
  }

  {
    common::SpinLatch::ScopedSpinLatch guard(&stats_latch_);
    stats_.tuples_moved += pass.tuples_moved;
    stats_.blocks_freed += pass.blocks_freed;
    stats_.blocks_frozen += pass.blocks_frozen;
    stats_.compaction_aborts += pass.compaction_aborts;
    stats_.gather_retries += pass.gather_retries;
    stats_.write_set_size += pass.write_set_size;
    stats_.compaction_us += pass.compaction_us;
    stats_.gather_us += pass.gather_us;
  }
  if (pass_stats != nullptr) *pass_stats = pass;

  transform_metrics.passes->Add(1);
  transform_metrics.blocks_frozen->Add(pass.blocks_frozen);
  transform_metrics.blocks_freed->Add(pass.blocks_freed);
  transform_metrics.tuples_moved->Add(pass.tuples_moved);
  transform_metrics.compaction_aborts->Add(pass.compaction_aborts);
  transform_metrics.observer_queue_depth->Set(
      static_cast<int64_t>(observer_->WatchedBlocks()));
  transform_metrics.pass_us->Observe(pass_timer.Elapsed<>());
  return frozen;
}

void TransformPipeline::Run() {
  while (run_.load(std::memory_order_acquire)) {
    const common::Timer pass_timer;
    const uint32_t frozen = RunOnce();
    std::chrono::milliseconds delay{0};
    if (policy_.has_value()) {
      delay = policy_->OnPassComplete(
          {observer_->WatchedBlocks(), pass_timer.Elapsed<>(), frozen});
      // relaxed: reporting only — CurrentPeriod is a gauge-style reading.
      period_ms_.store(delay.count(), std::memory_order_relaxed);
    } else {
      // relaxed: fixed value written once by Start before the spawn; the
      // load is for symmetry with the adaptive path.
      delay = std::chrono::milliseconds(period_ms_.load(std::memory_order_relaxed));
    }
    common::MutexGuard guard(&sleep_mutex_);
    // Deliberately not a predicate loop: `wake_` only cuts the sleep short
    // for shutdown, and a spurious wakeup merely runs the next pass early —
    // harmless to the cadence heuristic. What matters is that the wake_
    // check and the wait are under one mutex, so Stop's notify cannot land
    // between them and be lost.
    if (!wake_) sleep_cv_.WaitFor(&guard, delay);
  }
}

void TransformPipeline::Start(std::chrono::milliseconds period) {
  // ordering: seq_cst exchange on the once-per-lifetime start path — the
  // full fence is free here and exactly one caller observes the transition.
  if (run_.exchange(true)) return;
  policy_.reset();
  // relaxed: published to the worker by the std::thread constructor below.
  period_ms_.store(period.count(), std::memory_order_relaxed);
  {
    common::MutexGuard guard(&sleep_mutex_);
    wake_ = false;
  }
  worker_ = std::thread([this] { Run(); });
}

void TransformPipeline::Start(const FreezePolicy::Config &policy) {
  // ordering: seq_cst exchange on the once-per-lifetime start path — the
  // full fence is free here and exactly one caller observes the transition.
  if (run_.exchange(true)) return;
  policy_.emplace(policy);
  // relaxed: published to the worker by the std::thread constructor below.
  period_ms_.store(policy_->CurrentPeriod().count(), std::memory_order_relaxed);
  {
    common::MutexGuard guard(&sleep_mutex_);
    wake_ = false;
  }
  worker_ = std::thread([this] { Run(); });
}

void TransformPipeline::Stop() {
  // ordering: seq_cst exchange, mirror of Start — cold path; the winner of
  // the transition is the one caller that joins the worker.
  if (!run_.exchange(false)) return;
  {
    common::MutexGuard guard(&sleep_mutex_);
    wake_ = true;
  }
  sleep_cv_.NotifyAll();
  if (worker_.joinable()) worker_.join();
}

}  // namespace mainline::transform
