#include "transform/transform_pipeline.h"

#include <unordered_set>

namespace mainline::transform {

uint32_t TransformPipeline::RunOnce() {
  // Group candidates per table, validating that each block still belongs to
  // the table we observed (it may have been recycled since).
  std::unordered_map<storage::DataTable *, std::vector<storage::RawBlock *>> per_table;
  std::vector<std::pair<storage::RawBlock *, storage::DataTable *>> candidates;
  {
    common::SpinLatch::ScopedSpinLatch guard(&manual_latch_);
    candidates.swap(manual_queue_);
  }
  for (auto &[block, table] : observer_->CollectColdBlocks()) candidates.emplace_back(block, table);
  // The same block can arrive through both the manual queue and the observer;
  // a duplicate inside one compaction group would make the planner count its
  // tuples twice and compact the block onto itself.
  std::unordered_set<storage::RawBlock *> dedup;
  for (auto &[block, table] : candidates) {
    if (block->data_table != table || table == nullptr) continue;
    if (table_filter_ && !table_filter_(table)) continue;
    if (block->controller.GetState() == storage::BlockState::kFrozen) continue;
    if (!dedup.insert(block).second) continue;
    per_table[table].push_back(block);
  }

  uint32_t frozen = 0;
  for (auto &[table, blocks] : per_table) {
    for (size_t i = 0; i < blocks.size(); i += group_size_) {
      const size_t end = std::min(blocks.size(), i + group_size_);
      const std::vector<storage::RawBlock *> group(blocks.begin() + static_cast<long>(i),
                                                   blocks.begin() + static_cast<long>(end));
      frozen += transformer_->ProcessGroup(table, group, &stats_);
    }
  }
  return frozen;
}

void TransformPipeline::Start(std::chrono::milliseconds period) {
  if (run_.exchange(true)) return;
  worker_ = std::thread([this, period] {
    while (run_.load(std::memory_order_acquire)) {
      RunOnce();
      std::this_thread::sleep_for(period);
    }
  });
}

void TransformPipeline::Stop() {
  if (run_.exchange(false) && worker_.joinable()) worker_.join();
}

}  // namespace mainline::transform
