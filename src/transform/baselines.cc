#include "transform/baselines.h"

#include <vector>

#include "storage/block_layout.h"
#include "storage/projected_row.h"
#include "storage/raw_block.h"
#include "storage/storage_defs.h"
#include "storage/storage_util.h"
#include "storage/varlen_entry.h"
#include "transaction/transaction_context.h"

namespace mainline::transform {

uint64_t InPlaceTransform(transaction::TransactionManager *txn_manager,
                          storage::DataTable *table, storage::RawBlock *block) {
  transaction::TransactionContext *txn = txn_manager->BeginTransaction();
  const storage::ProjectedRowInitializer &initializer = table->FullRowInitializer();
  std::vector<byte> buffer(initializer.ProjectedRowSize() + 8);
  const storage::BlockLayout &layout = table->GetLayout();

  uint64_t processed = 0;
  const uint32_t limit = block->insert_head.load(std::memory_order_acquire);
  for (uint32_t offset = 0; offset < limit; offset++) {
    const storage::TupleSlot slot(block, offset);
    storage::ProjectedRow *row = initializer.InitializeRow(buffer.data());
    if (!table->Select(txn, slot, row)) continue;
    // Rewriting a tuple in place transactionally: varlen values must be
    // re-allocated because the update's before-image takes ownership of the
    // old buffers.
    storage::StorageUtil::DeepCopyVarlens(layout, row);
    const bool updated = table->Update(txn, slot, *row);
    MAINLINE_ASSERT(updated, "in-place baseline assumes no concurrent writers");
    (void)updated;
    processed++;
  }
  txn_manager->Commit(txn);
  return processed;
}

}  // namespace mainline::transform
