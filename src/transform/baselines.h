#pragma once

#include <cstdint>

#include "storage/data_table.h"
#include "storage/raw_block.h"
#include "transaction/transaction_manager.h"

namespace mainline::transform {

/// The "Transactional In-Place" baseline of Figure 12: perform the entire
/// transformation as ordinary transactional updates, paying full version
/// maintenance (undo records, version chains) for every tuple touched.
/// \return number of tuples processed.
uint64_t InPlaceTransform(transaction::TransactionManager *txn_manager,
                          storage::DataTable *table, storage::RawBlock *block);

}  // namespace mainline::transform
