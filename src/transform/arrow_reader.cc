#include "transform/arrow_reader.h"

#include <cstring>

#include "arrowlite/buffer.h"
#include "arrowlite/builder.h"
#include "arrowlite/type.h"
#include "common/raw_bitmap.h"
#include "common/tsan_annotations.h"
#include "common/typedefs.h"
#include "storage/arrow_block_metadata.h"
#include "storage/block_layout.h"
#include "storage/projected_row.h"
#include "storage/raw_block.h"
#include "storage/storage_defs.h"
#include "storage/tuple_access_strategy.h"
#include "storage/varlen_entry.h"

namespace mainline::transform {

arrowlite::Type ArrowReader::ToArrowType(catalog::TypeId type, bool dictionary) {
  switch (type) {
    case catalog::TypeId::kBoolean:
      return arrowlite::Type::kBool;
    case catalog::TypeId::kTinyInt:
      return arrowlite::Type::kInt8;
    case catalog::TypeId::kSmallInt:
      return arrowlite::Type::kInt16;
    case catalog::TypeId::kInteger:
      return arrowlite::Type::kInt32;
    case catalog::TypeId::kBigInt:
      return arrowlite::Type::kInt64;
    case catalog::TypeId::kDecimal:
      return arrowlite::Type::kFloat64;
    case catalog::TypeId::kDate:
      return arrowlite::Type::kUInt32;
    case catalog::TypeId::kTimestamp:
      return arrowlite::Type::kUInt64;
    case catalog::TypeId::kVarchar:
      return dictionary ? arrowlite::Type::kDictionary : arrowlite::Type::kString;
  }
  MAINLINE_UNREACHABLE("unknown type");
}

std::shared_ptr<arrowlite::Schema> ArrowReader::ToArrowSchema(const catalog::Schema &schema,
                                                              bool dictionary) {
  std::vector<arrowlite::Field> fields;
  fields.reserve(schema.NumColumns());
  for (const catalog::Column &col : schema.Columns()) {
    fields.emplace_back(col.Name(), ToArrowType(col.Type(), dictionary), col.Nullable());
  }
  return std::make_shared<arrowlite::Schema>(std::move(fields));
}

namespace {

/// The schema positions a projection covers: the projection itself, or the
/// identity over every column when none was given.
std::vector<uint16_t> ProjectedPositions(const catalog::Schema &schema,
                                         const std::vector<uint16_t> *projection) {
  if (projection != nullptr) return *projection;
  std::vector<uint16_t> all(schema.NumColumns());
  for (uint16_t i = 0; i < schema.NumColumns(); i++) all[i] = i;
  return all;
}

}  // namespace

std::shared_ptr<arrowlite::RecordBatch> ArrowReader::FromFrozenBlock(
    const catalog::Schema &schema, const storage::DataTable &table, storage::RawBlock *block,
    const std::vector<uint16_t> *projection) {
  const storage::ArrowBlockMetadata *metadata = block->arrow_metadata;
  if (metadata == nullptr) return nullptr;
  const storage::BlockLayout &layout = table.GetLayout();
  const storage::TupleAccessStrategy &accessor = table.Accessor();
  const uint32_t n = metadata->NumRecords();
  const std::vector<uint16_t> positions = ProjectedPositions(schema, projection);

  std::vector<std::shared_ptr<arrowlite::Array>> columns;
  for (const uint16_t i : positions) {
    const storage::col_id_t col(i);
    const storage::ArrowColumnInfo &info = metadata->Column(i);
    // Validity bitmap: viewed directly from block storage.
    auto validity = arrowlite::Buffer::Wrap(
        reinterpret_cast<const byte *>(accessor.ColumnNullBitmap(block, col)->Bytes()),
        common::BitmapSize(n));
    switch (info.type) {
      case storage::ArrowColumnType::kFixed: {
        auto values = arrowlite::Buffer::Wrap(
            accessor.ColumnStart(block, col),
            static_cast<uint64_t>(layout.AttrSize(col)) * n);
        columns.push_back(arrowlite::Array::MakeFixed(
            ToArrowType(schema.GetColumn(i).Type()), n, std::move(values),
            std::move(validity), info.null_count));
        break;
      }
      case storage::ArrowColumnType::kGatheredVarlen: {
        auto offsets = arrowlite::Buffer::Wrap(
            reinterpret_cast<const byte *>(info.varlen.offsets.get()),
            sizeof(int32_t) * (n + 1));
        auto values = arrowlite::Buffer::Wrap(info.varlen.values.get(),
                                              info.varlen.values_size);
        columns.push_back(arrowlite::Array::MakeString(n, std::move(offsets),
                                                       std::move(values), std::move(validity),
                                                       info.null_count));
        break;
      }
      case storage::ArrowColumnType::kDictionaryCompressed: {
        auto dict_offsets = arrowlite::Buffer::Wrap(
            reinterpret_cast<const byte *>(info.dictionary.offsets.get()),
            sizeof(int32_t) * (info.dictionary_size + 1));
        auto dict_values = arrowlite::Buffer::Wrap(info.dictionary.values.get(),
                                                   info.dictionary.values_size);
        auto dictionary = arrowlite::Array::MakeString(
            info.dictionary_size, std::move(dict_offsets), std::move(dict_values));
        auto indices = arrowlite::Buffer::Wrap(
            reinterpret_cast<const byte *>(info.indices.get()), sizeof(int32_t) * n);
        columns.push_back(arrowlite::Array::MakeDictionary(n, std::move(indices),
                                                           std::move(dictionary),
                                                           std::move(validity),
                                                           info.null_count));
        break;
      }
    }
  }
  std::vector<arrowlite::Field> fields;
  fields.reserve(positions.size());
  for (const uint16_t i : positions) {
    const catalog::Column &col = schema.GetColumn(i);
    // Each field's Arrow type comes from that column's own physical
    // representation: gathering modes are per column, so one batch can mix
    // plain-gathered and dictionary-compressed varlens.
    const bool dictionary =
        metadata->Column(i).type == storage::ArrowColumnType::kDictionaryCompressed;
    fields.emplace_back(col.Name(), ToArrowType(col.Type(), dictionary), col.Nullable());
  }
  return std::make_shared<arrowlite::RecordBatch>(
      std::make_shared<arrowlite::Schema>(std::move(fields)), n, std::move(columns));
}

namespace {

template <typename T>
void AppendFixed(arrowlite::FixedBuilder<T> *builder, const byte *value) {
  if (value == nullptr) {
    builder->AppendNull();
  } else {
    builder->Append(*reinterpret_cast<const T *>(value));
  }
}

}  // namespace

std::shared_ptr<arrowlite::RecordBatch> ArrowReader::MaterializeBlock(
    const catalog::Schema &schema, storage::DataTable *table, storage::RawBlock *block,
    transaction::TransactionContext *txn, const std::vector<uint16_t> *projection) {
  const storage::BlockLayout &layout = table->GetLayout();
  const storage::TupleAccessStrategy &accessor = table->Accessor();
  const std::vector<uint16_t> positions = ProjectedPositions(schema, projection);
  // Schema position i == physical column id i, and a sorted projection's
  // ProjectedRow indices line up with `positions` one-to-one.
  std::vector<storage::col_id_t> col_ids;
  col_ids.reserve(positions.size());
  for (const uint16_t i : positions) col_ids.emplace_back(i);
  const storage::ProjectedRowInitializer initializer =
      storage::ProjectedRowInitializer::Create(layout, std::move(col_ids));

  // One builder per column, dispatched by width.
  std::vector<std::unique_ptr<arrowlite::FixedBuilder<uint8_t>>> b1;
  std::vector<std::unique_ptr<arrowlite::FixedBuilder<uint16_t>>> b2;
  std::vector<std::unique_ptr<arrowlite::FixedBuilder<uint32_t>>> b4;
  std::vector<std::unique_ptr<arrowlite::FixedBuilder<uint64_t>>> b8;
  std::vector<std::unique_ptr<arrowlite::StringBuilder>> bs;
  struct Dispatch {
    int kind;
    size_t idx;
  };
  std::vector<Dispatch> dispatch;
  for (const uint16_t i : positions) {
    const catalog::Column &col = schema.GetColumn(i);
    if (col.IsVarlen()) {
      dispatch.push_back({4, bs.size()});
      bs.push_back(std::make_unique<arrowlite::StringBuilder>());
      continue;
    }
    // Fixed values are moved with unsigned carriers of matching width; the
    // logical Arrow type tags the resulting array.
    const arrowlite::Type arrow_type = ToArrowType(col.Type());
    switch (col.AttrSize()) {
      case 1:
        dispatch.push_back({0, b1.size()});
        b1.push_back(std::make_unique<arrowlite::FixedBuilder<uint8_t>>(arrow_type));
        break;
      case 2:
        dispatch.push_back({1, b2.size()});
        b2.push_back(std::make_unique<arrowlite::FixedBuilder<uint16_t>>(arrow_type));
        break;
      case 4:
        dispatch.push_back({2, b4.size()});
        b4.push_back(std::make_unique<arrowlite::FixedBuilder<uint32_t>>(arrow_type));
        break;
      default:
        dispatch.push_back({3, b8.size()});
        b8.push_back(std::make_unique<arrowlite::FixedBuilder<uint64_t>>(arrow_type));
        break;
    }
  }

  const uint32_t limit = block->insert_head.load(std::memory_order_acquire);

  // Column-at-a-time fast path (the figure16 hot-path bottleneck): instead of
  // one DataTable::Select per slot, snapshot the projected columns straight
  // out of block storage with one memcpy each, then decide per slot whether
  // the snapshot is usable. The ordering mirrors Select's torn-read protocol,
  // hoisted to block granularity: copy the data FIRST, read each slot's
  // version pointer AFTERWARDS (seq_cst). Writers install their undo record
  // before touching the block, and the GC only truncates a chain whose every
  // version predates the oldest active transaction — so a slot whose pointer
  // still reads null after the copy cannot have been written concurrently,
  // and its snapshot bytes are the committed version visible to any live
  // snapshot. Slots with a chain fall back to per-tuple Select.
  struct ColumnSnapshot {
    std::vector<byte> values;
    std::vector<uint8_t> valid;  // LSB-first presence bits, Arrow layout
  };
  std::vector<ColumnSnapshot> snap(positions.size());
  // The block-granularity torn-read protocol described above is exactly the
  // kind of race TSan flags: the column snapshot (and the emit loops below,
  // which deref snapshot varlen entries whose 16-byte values may have been
  // repointed by a concurrent gather — old and new targets hold identical,
  // never-overwritten bytes) reads hot-block memory while writers update it
  // in place. Slots whose bytes could have raced are detected by the
  // version-pointer reads in the validation loop — those are atomic, still
  // tracked inside this scope — and routed to the Select slow path.
  common::TsanIgnoreReadsScope torn_read;
  // An empty vector's data() is null and memcpy's pointer arguments must not
  // be, even for zero sizes — and a block with no used slots (a fresh table's
  // insertion block) has nothing to snapshot anyway.
  for (uint16_t p = 0; limit != 0 && p < positions.size(); p++) {
    const storage::col_id_t col(positions[p]);
    ColumnSnapshot &s = snap[p];
    s.values.resize(static_cast<size_t>(layout.AttrSize(col)) * limit);
    std::memcpy(s.values.data(), accessor.ColumnStart(block, col), s.values.size());
    s.valid.resize(common::BitmapSize(limit));
    std::memcpy(s.valid.data(),
                reinterpret_cast<const byte *>(accessor.ColumnNullBitmap(block, col)),
                s.valid.size());
  }

  // Validate slot-by-slot, building the visible-row list in slot order: a
  // chain-free slot is visible iff its allocation bit is set; a slot with a
  // version chain resolves through Select into its own kept-alive buffer.
  struct RowRef {
    uint32_t offset;
    int32_t slow;  // index into slow_rows, or -1 to read the column snapshot
  };
  std::vector<RowRef> visible;
  visible.reserve(limit);
  std::vector<std::vector<byte>> slow_buffers;
  std::vector<storage::ProjectedRow *> slow_rows;
  const common::RawConcurrentBitmap *allocated = accessor.AllocationBitmap(block);
  for (uint32_t offset = 0; offset < limit; offset++) {
    const storage::TupleSlot slot(block, offset);
    // Allocation bit BEFORE version pointer, exactly like Select: writers
    // install their undo record before publishing (insert: SetAllocated
    // last) or unpublishing (delete: SetDeallocated last) the bit, so a
    // bit read that races a writer is always paired with a non-null
    // pointer read below and routed to the slow path. Reading the pointer
    // first would let a concurrent insert slip between the two loads and
    // serve an uncommitted row from the pre-write snapshot.
    const bool present = allocated->Test(offset);
    if (accessor.VersionPtr(slot).load(std::memory_order_seq_cst) == nullptr) {
      if (present) visible.push_back({offset, -1});
      continue;
    }
    slow_buffers.emplace_back(initializer.ProjectedRowSize() + 8);
    storage::ProjectedRow *row = initializer.InitializeRow(slow_buffers.back().data());
    if (table->Select(txn, slot, row)) {
      visible.push_back({offset, static_cast<int32_t>(slow_rows.size())});
      slow_rows.push_back(row);
    } else {
      slow_buffers.pop_back();
    }
  }
  const int64_t rows = static_cast<int64_t>(visible.size());

  // Emit column-at-a-time: each projected column walks the visible-row list
  // in one tight loop, reading the snapshot for fast rows and the
  // materialized ProjectedRow for slow ones.
  for (uint16_t p = 0; p < positions.size(); p++) {
    const storage::col_id_t col(positions[p]);
    const uint32_t attr_size = layout.AttrSize(col);
    const byte *values = snap[p].values.data();
    const uint8_t *valid = snap[p].valid.data();
    const auto value_of = [&](const RowRef &r) -> const byte * {
      if (r.slow >= 0) return slow_rows[static_cast<size_t>(r.slow)]->AccessWithNullCheck(p);
      const bool present = (valid[r.offset / 8] >> (r.offset % 8)) & 1u;
      return present ? values + static_cast<size_t>(attr_size) * r.offset : nullptr;
    };
    const Dispatch d = dispatch[p];
    switch (d.kind) {
      case 0:
        for (const RowRef &r : visible) AppendFixed(b1[d.idx].get(), value_of(r));
        break;
      case 1:
        for (const RowRef &r : visible) AppendFixed(b2[d.idx].get(), value_of(r));
        break;
      case 2:
        for (const RowRef &r : visible) AppendFixed(b4[d.idx].get(), value_of(r));
        break;
      case 3:
        for (const RowRef &r : visible) AppendFixed(b8[d.idx].get(), value_of(r));
        break;
      case 4:
        for (const RowRef &r : visible) {
          const byte *value = value_of(r);
          if (value == nullptr) {
            bs[d.idx]->AppendNull();
          } else {
            bs[d.idx]->Append(
                reinterpret_cast<const storage::VarlenEntry *>(value)->StringView());
          }
        }
        break;
    }
  }

  std::vector<std::shared_ptr<arrowlite::Array>> columns;
  std::vector<arrowlite::Field> fields;
  fields.reserve(positions.size());
  for (uint16_t p = 0; p < positions.size(); p++) {
    const Dispatch d = dispatch[p];
    switch (d.kind) {
      case 0:
        columns.push_back(b1[d.idx]->Finish());
        break;
      case 1:
        columns.push_back(b2[d.idx]->Finish());
        break;
      case 2:
        columns.push_back(b4[d.idx]->Finish());
        break;
      case 3:
        columns.push_back(b8[d.idx]->Finish());
        break;
      case 4:
        columns.push_back(bs[d.idx]->Finish());
        break;
    }
    const catalog::Column &col = schema.GetColumn(positions[p]);
    fields.emplace_back(col.Name(), ToArrowType(col.Type()), col.Nullable());
  }
  return std::make_shared<arrowlite::RecordBatch>(
      std::make_shared<arrowlite::Schema>(std::move(fields)), rows, std::move(columns));
}

}  // namespace mainline::transform
