#include "transform/block_transformer.h"

#include <cstring>
#include <map>
#include <memory>
#include <string_view>
#include <thread>

#include "common/timer.h"
#include "common/typedefs.h"
#include "storage/arrow_block_metadata.h"
#include "storage/block_access_controller.h"
#include "storage/block_layout.h"
#include "storage/projected_row.h"
#include "storage/raw_block.h"
#include "storage/storage_defs.h"
#include "storage/storage_util.h"
#include "storage/tuple_access_strategy.h"
#include "storage/varlen_entry.h"
#include "transaction/transaction_context.h"
#include "transform/compaction_planner.h"

namespace mainline::transform {

bool BlockTransformer::CompactGroup(storage::DataTable *table,
                                    const std::vector<storage::RawBlock *> &group,
                                    TransformStats *stats,
                                    transaction::timestamp_t *commit_ts_out,
                                    std::vector<storage::RawBlock *> *survivors_out) {
  TransformStats local;
  TransformStats *out = stats == nullptr ? &local : stats;
  uint64_t elapsed_us = 0;
  bool committed = false;
  {
    common::ScopedTimer<std::chrono::microseconds> timer(&elapsed_us);
    const CompactionPlan plan = CompactionPlanner::Plan(*table, group, optimal_planner_);

    transaction::TransactionContext *txn = txn_manager_->BeginTransaction();
    const storage::ProjectedRowInitializer &initializer = table->FullRowInitializer();
    std::vector<byte> buffer(initializer.ProjectedRowSize() + 8);
    bool failed = false;

    for (const auto &[from, to] : plan.moves) {
      storage::ProjectedRow *row = initializer.InitializeRow(buffer.data());
      // A tuple that is invisible or contended means a user transaction got
      // here first; yield to it (Section 4.2: the transformation must be
      // cheap to abort).
      if (!table->Select(txn, from, row) || !table->Delete(txn, from)) {
        failed = true;
        break;
      }
      storage::StorageUtil::DeepCopyVarlens(table->GetLayout(), row);
      if (!table->InsertInto(txn, to, *row)) {
        // The copies are registered as the transaction's loose varlens even
        // on failure; the abort below reclaims them.
        failed = true;
        break;
      }
      if (move_callback_) move_callback_(from, to, txn);
      out->tuples_moved++;
      out->write_set_size += 2;  // delete + insert
    }

    if (failed) {
      txn_manager_->Abort(txn);
      out->compaction_aborts++;
    } else {
      // Mark the whole group cooling *before* committing: any transaction
      // that raced the status check must then overlap this compaction
      // transaction, which is what lets phase 2 detect it (Figure 9).
      for (storage::RawBlock *block : group) block->controller.TrySetCooling();
      const transaction::timestamp_t commit_ts = txn_manager_->Commit(txn);
      if (commit_ts_out != nullptr) *commit_ts_out = commit_ts;
      // Emptied blocks are detached once every transaction that might still
      // reconstruct their deleted tuples has finished. Blocks that entered
      // the group already empty (user deletes, or a previous pass whose
      // release was declined) are scheduled too; ScheduleBlockRelease
      // guarantees at most one release in flight per block, and ReleaseBlock
      // re-checks identity and emptiness at execution time, so a block that
      // raced back into use is declined rather than freed.
      for (const auto *list : {&plan.emptied_blocks, &plan.already_empty_blocks}) {
        for (storage::RawBlock *block : *list) {
          if (block == table->CurrentInsertionBlock()) continue;
          if (!table->ScheduleBlockRelease(block)) continue;
          gc_->RegisterDeferredAction([table, block] { table->ReleaseBlock(block); });
          if (list == &plan.emptied_blocks) out->blocks_freed++;
        }
      }
      if (survivors_out != nullptr) *survivors_out = plan.target_blocks;
      committed = true;
    }
  }
  out->compaction_us += elapsed_us;
  return committed;
}

bool BlockTransformer::GatherBlock(storage::DataTable *table, storage::RawBlock *block,
                                   TransformStats *stats) {
  TransformStats local;
  TransformStats *out = stats == nullptr ? &local : stats;
  uint64_t elapsed_us = 0;
  bool frozen = false;
  {
    common::ScopedTimer<std::chrono::microseconds> timer(&elapsed_us);
    const storage::BlockLayout &layout = table->GetLayout();

    // The single-pass scan of the version-pointer column: any residual
    // version means a transaction raced us; requeue.
    if (block->controller.GetState() != storage::BlockState::kCooling ||
        table->HasActiveVersions(block)) {
      out->gather_retries++;
      return false;
    }
    // The allocated slots must form a contiguous prefix for Arrow; otherwise
    // the block needs another compaction pass.
    const uint32_t filled = table->FilledSlots(block);
    const auto *bitmap = table->Accessor().AllocationBitmap(block);
    for (uint32_t i = 0; i < filled; i++) {
      if (!bitmap->Test(i)) {
        out->gather_retries++;
        return false;
      }
    }
    // Take the exclusive lock; fails if a user transaction preempted cooling.
    if (!block->controller.TrySetFreezing()) {
      out->gather_retries++;
      return false;
    }

    auto *metadata = new storage::ArrowBlockMetadata(filled, layout.NumColumns());
    std::vector<const byte *> old_buffers;
    bool ok;
    if (mode_ == GatherMode::kVarlenGather) {
      ok = GatherVarlen(table, block, filled, metadata, &old_buffers);
    } else {
      ok = GatherDictionary(table, block, filled, metadata, &old_buffers);
    }
    MAINLINE_ASSERT(ok, "gathering under the freezing lock cannot fail");
    (void)ok;

    // Null counts for fixed-length columns (varlen ones are filled by the
    // gather passes above, in the same scan).
    for (uint16_t i = 0; i < layout.NumColumns(); i++) {
      const storage::col_id_t col(i);
      if (layout.IsVarlen(col)) continue;
      auto &info = metadata->Column(i);
      info.type = storage::ArrowColumnType::kFixed;
      info.null_count =
          filled - table->Accessor().ColumnNullBitmap(block, col)->CountSet(filled);
    }

    storage::ArrowBlockMetadata *old_metadata = block->arrow_metadata;
    block->arrow_metadata = metadata;
    block->controller.SetFrozen();

    // Readers concurrent with this gather may still hold pointers into the
    // replaced buffers; free them only after every such reader has finished
    // (epoch protection via the GC, Section 4.4).
    if (!old_buffers.empty() || old_metadata != nullptr) {
      gc_->RegisterDeferredAction([old_buffers, old_metadata] {
        for (const byte *buffer : old_buffers) delete[] buffer;
        delete old_metadata;
      });
    }
    out->blocks_frozen++;
    frozen = true;
  }
  out->gather_us += elapsed_us;
  return frozen;
}

bool BlockTransformer::GatherVarlen(storage::DataTable *table, storage::RawBlock *block,
                                    uint32_t num_records,
                                    storage::ArrowBlockMetadata *metadata,
                                    std::vector<const byte *> *old_buffers) {
  const storage::BlockLayout &layout = table->GetLayout();
  const storage::TupleAccessStrategy &accessor = table->Accessor();
  for (uint16_t i = 0; i < layout.NumColumns(); i++) {
    const storage::col_id_t col(i);
    if (!layout.IsVarlen(col)) continue;
    auto &info = metadata->Column(i);
    info.type = storage::ArrowColumnType::kGatheredVarlen;

    // First pass: total size.
    uint64_t total = 0;
    uint32_t null_count = 0;
    for (uint32_t row = 0; row < num_records; row++) {
      const storage::TupleSlot slot(block, row);
      const byte *value = accessor.AccessWithNullCheck(slot, col);
      if (value == nullptr) {
        null_count++;
        continue;
      }
      total += reinterpret_cast<const storage::VarlenEntry *>(value)->Size();
    }
    info.null_count = null_count;
    info.varlen.values = std::make_unique<byte[]>(total);
    info.varlen.offsets = std::make_unique<int32_t[]>(num_records + 1);
    info.varlen.values_size = total;

    // Second pass: copy values and repoint block entries into the gathered
    // buffer. Entries are updated in place; torn 16-byte reads by concurrent
    // transactional readers are harmless because both the old and the new
    // pointer target hold identical bytes and the old buffer outlives all
    // such readers (deferred reclamation).
    uint64_t offset = 0;
    for (uint32_t row = 0; row < num_records; row++) {
      info.varlen.offsets[row] = static_cast<int32_t>(offset);
      const storage::TupleSlot slot(block, row);
      byte *value = accessor.AccessWithNullCheck(slot, col);
      if (value == nullptr) continue;
      auto *entry = reinterpret_cast<storage::VarlenEntry *>(value);
      const uint32_t size = entry->Size();
      std::memcpy(info.varlen.values.get() + offset, entry->Content(), size);
      if (entry->NeedReclaim()) old_buffers->push_back(entry->Content());
      if (!entry->IsInlined()) {
        *entry = storage::VarlenEntry::Create(info.varlen.values.get() + offset, size, false);
      }
      offset += size;
    }
    info.varlen.offsets[num_records] = static_cast<int32_t>(offset);
  }
  return true;
}

bool BlockTransformer::GatherDictionary(storage::DataTable *table, storage::RawBlock *block,
                                        uint32_t num_records,
                                        storage::ArrowBlockMetadata *metadata,
                                        std::vector<const byte *> *old_buffers) {
  const storage::BlockLayout &layout = table->GetLayout();
  const storage::TupleAccessStrategy &accessor = table->Accessor();
  for (uint16_t i = 0; i < layout.NumColumns(); i++) {
    const storage::col_id_t col(i);
    if (!layout.IsVarlen(col)) continue;
    auto &info = metadata->Column(i);
    info.type = storage::ArrowColumnType::kDictionaryCompressed;

    // First scan: build the sorted dictionary (Section 4.4: an order of
    // magnitude more expensive than a plain gather).
    std::map<std::string_view, int32_t> dictionary;
    uint32_t null_count = 0;
    for (uint32_t row = 0; row < num_records; row++) {
      const storage::TupleSlot slot(block, row);
      const byte *value = accessor.AccessWithNullCheck(slot, col);
      if (value == nullptr) {
        null_count++;
        continue;
      }
      dictionary.emplace(reinterpret_cast<const storage::VarlenEntry *>(value)->StringView(),
                         0);
    }
    info.null_count = null_count;

    uint64_t dict_bytes = 0;
    int32_t code = 0;
    for (auto &[word, idx] : dictionary) {
      idx = code++;
      dict_bytes += word.size();
    }
    info.dictionary_size = static_cast<uint32_t>(dictionary.size());
    info.dictionary.values = std::make_unique<byte[]>(dict_bytes);
    info.dictionary.offsets = std::make_unique<int32_t[]>(dictionary.size() + 1);
    info.dictionary.values_size = dict_bytes;
    uint64_t offset = 0;
    {
      int32_t d = 0;
      for (const auto &[word, idx] : dictionary) {
        info.dictionary.offsets[d++] = static_cast<int32_t>(offset);
        std::memcpy(info.dictionary.values.get() + offset, word.data(), word.size());
        offset += word.size();
      }
      info.dictionary.offsets[d] = static_cast<int32_t>(offset);
    }

    // Second scan: emit codes and repoint entries at their dictionary word.
    info.indices = std::make_unique<int32_t[]>(num_records);
    for (uint32_t row = 0; row < num_records; row++) {
      const storage::TupleSlot slot(block, row);
      byte *value = accessor.AccessWithNullCheck(slot, col);
      if (value == nullptr) {
        info.indices[row] = 0;
        continue;
      }
      auto *entry = reinterpret_cast<storage::VarlenEntry *>(value);
      // Look up by content; the map keys point into entry buffers that are
      // still alive during this critical section.
      const auto it = dictionary.find(entry->StringView());
      const int32_t word_code = it->second;
      info.indices[row] = word_code;
      if (entry->NeedReclaim()) old_buffers->push_back(entry->Content());
      if (!entry->IsInlined()) {
        *entry = storage::VarlenEntry::Create(
            info.dictionary.values.get() + info.dictionary.offsets[word_code], entry->Size(),
            false);
      }
    }
  }
  return true;
}

uint32_t BlockTransformer::ProcessGroup(storage::DataTable *table,
                                        const std::vector<storage::RawBlock *> &group,
                                        TransformStats *stats) {
  transaction::timestamp_t commit_ts = transaction::kInvalidTimestamp;
  std::vector<storage::RawBlock *> survivors;
  if (!CompactGroup(table, group, stats, &commit_ts, &survivors)) return 0;

  // Phase boundary: wait until every transaction that overlapped the
  // compaction transaction has finished, so a racer that passed the status
  // check before we set cooling either installed a visible version (caught by
  // the gather scan) or is gone (Figure 9's fix).
  while (txn_manager_->OldestTransactionStartTime() <= commit_ts) {
    std::this_thread::yield();
  }

  uint32_t frozen = 0;
  for (storage::RawBlock *block : survivors) {
    // The gather scan requires all version chains pruned — including the
    // compaction transaction's own records. Drive the GC (or wait for the
    // dedicated GC thread) until they clear; give up and requeue if a user
    // transaction keeps the block busy.
    for (int attempt = 0; attempt < 64; attempt++) {
      if (block->controller.GetState() != storage::BlockState::kCooling) break;  // preempted
      if (table->HasActiveVersions(block)) {
        if (pump_gc_) {
          gc_->PerformGarbageCollection();
        } else {
          std::this_thread::sleep_for(std::chrono::microseconds(100));
        }
        continue;
      }
      if (GatherBlock(table, block, stats)) frozen++;
      break;
    }
  }
  return frozen;
}

}  // namespace mainline::transform
