#pragma once

#include <chrono>
#include <cstdint>

namespace mainline::transform {

/// Feedback controller for the background TransformPipeline's pass cadence.
///
/// A fixed `Start(period)` cadence has to be hand-tuned per workload: too
/// slow and the observer's cold-block backlog (and with it the insert→frozen
/// freshness lag) grows without bound under write bursts; too fast and the
/// pipeline's compaction transactions contend with the writers it is
/// supposed to stay out of the way of. This controller picks the delay
/// before the next pass from what the previous pass saw:
///
///   * backlog (queue depth above `target_queue_depth`): shrink the period
///     proportionally to the overshoot — the deeper the backlog, the harder
///     the cut — so freshness lag recovers within a few passes;
///   * idle (empty watch set, nothing frozen): grow the period by `backoff`,
///     so a quiescent table costs almost no background wakeups;
///   * in between: hold, to avoid oscillating around the target.
///
/// Two guards bound the result: the period is clamped into
/// [`min_period`, `max_period`], and it never drops below the duty-cycle
/// floor `pass_duration * (1 - max_duty_cycle) / max_duty_cycle`, which caps
/// the fraction of wall time the pipeline thread spends transforming — the
/// "don't starve writers" bound, binding exactly when passes are expensive.
///
/// The controller is pure state-in/state-out: the same feedback sequence
/// always produces the same period sequence (no clock reads, no randomness),
/// which is what makes it unit-testable with synthetic sequences. It is not
/// thread-safe; the pipeline's background loop is its only caller.
class FreezePolicy {
 public:
  struct Config {
    std::chrono::milliseconds min_period{1};
    std::chrono::milliseconds max_period{200};
    std::chrono::milliseconds initial_period{10};
    /// Watch-set size the controller tolerates before speeding up.
    uint64_t target_queue_depth = 16;
    /// Multiplicative period growth per idle pass (> 1).
    double backoff = 1.25;
    /// Largest fraction of wall time the pipeline may spend in passes,
    /// in (0, 1]. 1 disables the floor.
    double max_duty_cycle = 0.5;
    /// Hardest single-pass period cut under backlog, in (0, 1).
    double max_shrink = 0.25;
  };

  /// What one pipeline pass observed, in the order the loop learns it.
  struct PassFeedback {
    uint64_t queue_depth = 0;    ///< observer watch-set size after the pass
    uint64_t pass_us = 0;        ///< wall time the pass took
    uint32_t blocks_frozen = 0;  ///< work the pass completed
  };

  /// Out-of-range config values are repaired to their defaults (a zero or
  /// negative duty cycle would otherwise divide by zero below). The
  /// default-constructed policy uses the default Config; both bodies live in
  /// the .cc because a `Config()` default argument here would need the
  /// nested class's member initializers before the enclosing class is
  /// complete, which GCC rejects.
  FreezePolicy();
  explicit FreezePolicy(const Config &config);

  /// Fold one pass's outcome into the controller state.
  /// \return the delay to sleep before the next pass.
  std::chrono::milliseconds OnPassComplete(const PassFeedback &feedback);

  /// The delay the controller last decided (or `initial_period` before the
  /// first pass), clamped into [min_period, max_period].
  std::chrono::milliseconds CurrentPeriod() const;

  const Config &GetConfig() const { return config_; }

 private:
  Config config_;
  /// Continuous-valued period so repeated small adjustments are not lost to
  /// millisecond truncation; rounded on the way out.
  double period_ms_;
};

}  // namespace mainline::transform
