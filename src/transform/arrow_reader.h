#pragma once

#include <memory>
#include <vector>

#include "arrowlite/array.h"
#include "arrowlite/type.h"
#include "catalog/schema.h"
#include "storage/data_table.h"
#include "storage/raw_block.h"
#include "transaction/transaction_context.h"

namespace mainline::transform {

/// Bridges frozen blocks and the arrowlite columnar API (Section 5): a
/// frozen block *is* Arrow data, so a RecordBatch over it is just metadata
/// wrapping the block's buffers — no copies, no serialization.
class ArrowReader {
 public:
  ArrowReader() = delete;

  /// Map a catalog type to its Arrow physical type.
  static arrowlite::Type ToArrowType(catalog::TypeId type, bool dictionary = false);

  /// Derive the Arrow schema of a table.
  static std::shared_ptr<arrowlite::Schema> ToArrowSchema(const catalog::Schema &schema,
                                                          bool dictionary = false);

  /// Build a zero-copy RecordBatch over a frozen block. The caller must hold
  /// the block's read lock (BlockAccessController::TryAcquireRead) for the
  /// lifetime of the batch. `projection` (schema column positions, sorted
  /// ascending) restricts the batch to those columns; nullptr means all — for
  /// frozen blocks a projection is pure metadata savings, since no column
  /// data is copied either way.
  /// \return the batch, or nullptr if the block carries no Arrow metadata.
  static std::shared_ptr<arrowlite::RecordBatch> FromFrozenBlock(
      const catalog::Schema &schema, const storage::DataTable &table,
      storage::RawBlock *block, const std::vector<uint16_t> *projection = nullptr);

  /// Materialize a transactional snapshot of a (typically hot) block into a
  /// freshly built RecordBatch, resolving versions through `txn`. This is the
  /// expensive path Arrow-native storage avoids for cold data, and also the
  /// "Snapshot" baseline of Figure 12. `projection` (schema column positions,
  /// sorted ascending) restricts both the batch and the per-tuple work to
  /// those columns; nullptr means all.
  ///
  /// Slots without a version chain — the bulk of a hot block once the GC has
  /// pruned insert records — are gathered column-at-a-time straight from
  /// block storage (copy first, validate the version pointer after, the same
  /// torn-read protocol DataTable::Select uses); only slots with a live chain
  /// pay a per-tuple Select.
  static std::shared_ptr<arrowlite::RecordBatch> MaterializeBlock(
      const catalog::Schema &schema, storage::DataTable *table, storage::RawBlock *block,
      transaction::TransactionContext *txn, const std::vector<uint16_t> *projection = nullptr);
};

}  // namespace mainline::transform
