#pragma once

#include <vector>

#include "common/macros.h"
#include "execution/tpch_queries.h"
#include "storage/sql_table.h"
#include "transaction/transaction_manager.h"

namespace mainline::execution {

/// Which engine answers a query: the vectorized dual-path executor, or the
/// tuple-at-a-time scalar reference it is benchmarked (and verified) against.
enum class ExecMode : uint8_t { kVectorized = 0, kScalar };

/// Facade over the execution layer: begins a snapshot transaction, runs the
/// query through the chosen engine, commits, and reports scan statistics —
/// the one-call entry point examples, benchmarks, and external embedders use
/// for in-situ analytics over live tables.
class QueryRunner {
 public:
  explicit QueryRunner(transaction::TransactionManager *txn_manager)
      : txn_manager_(txn_manager) {}

  DISALLOW_COPY_AND_MOVE(QueryRunner)

  struct Q1Result {
    std::vector<tpch::Q1Row> rows;
    ScanStats stats;
  };

  struct Q6Result {
    double revenue = 0;
    ScanStats stats;
  };

  Q1Result RunQ1(storage::SqlTable *table, const tpch::Q1Params &params = {},
                 ExecMode mode = ExecMode::kVectorized) {
    Q1Result result;
    transaction::TransactionContext *txn = txn_manager_->BeginTransaction();
    result.rows = mode == ExecMode::kVectorized
                      ? tpch::RunQ1(table, txn, params, &result.stats)
                      : tpch::RunQ1Scalar(table, txn, params, &result.stats);
    txn_manager_->Commit(txn);
    return result;
  }

  Q6Result RunQ6(storage::SqlTable *table, const tpch::Q6Params &params = {},
                 ExecMode mode = ExecMode::kVectorized) {
    Q6Result result;
    transaction::TransactionContext *txn = txn_manager_->BeginTransaction();
    result.revenue = mode == ExecMode::kVectorized
                         ? tpch::RunQ6(table, txn, params, &result.stats)
                         : tpch::RunQ6Scalar(table, txn, params, &result.stats);
    txn_manager_->Commit(txn);
    return result;
  }

 private:
  transaction::TransactionManager *txn_manager_;
};

}  // namespace mainline::execution
