#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "arrowlite/array.h"
#include "common/macros.h"
#include "common/selection_vector.h"
#include "common/worker_pool.h"
#include "execution/column_vector_batch.h"
#include "execution/table_scanner.h"
#include "catalog/sql_table.h"
#include "transaction/transaction_context.h"

namespace mainline::execution {

/// One build-side row of a hash join: the 8-byte join key plus an 8-byte
/// payload the probe side consumes per match. Callers with wider payloads
/// pack an index into a side array; the join operators in tpch_queries pack
/// the (small) aggregate input directly.
struct JoinEntry {
  int64_t key;
  uint64_t payload;
};

/// Emit the (key, payload) pairs of one build-side batch into `out`, in batch
/// row order. Runs on scan worker threads; must only touch the batch and
/// `out`. Invisible rows never reach this callback, and a null key should
/// simply not be emitted (SQL join semantics: null never matches).
using BuildEmitFn = std::function<void(const ColumnVectorBatch &batch,
                                       std::vector<JoinEntry> *out)>;

/// The build side of a morsel-parallel hash join (Section 4.1's dual access
/// path underneath, morsel-driven on top): a partitioned open-addressing hash
/// table over int64 join keys.
///
/// Build runs in three steps, none of which takes a lock:
///
///  1. **Scan**: a ParallelTableScanner hands block-granular morsels to the
///     worker pool; each worker emits its blocks' (key, payload) pairs into a
///     per-block-ordinal slot (disjoint writes, like the query engines'
///     per-block partials).
///  2. **Scatter**: one sequential pass distributes the entries into
///     kNumPartitions partition buckets by hash prefix, walking ordinals in
///     block order — so partition contents (and therefore duplicate-match
///     order) are deterministic and independent of the worker count.
///  3. **Partition build**: one task per non-empty partition inserts its
///     bucket into that partition's open-addressing table. Partitions are
///     disjoint by construction, so the tasks share nothing.
///
/// Duplicate build keys are supported: every entry gets its own slot, and
/// ForEachMatch visits all of them in insertion (block) order. The table is
/// insert-only — probes never mutate it, so the probe phase may run from any
/// number of threads concurrently.
class JoinHashTable {
 public:
  /// Partition count: enough to keep a pool of workers busy in step 3 while
  /// keeping the per-worker scatter state trivially small.
  static constexpr uint32_t kNumPartitions = 64;

  JoinHashTable() = default;

  DISALLOW_COPY(JoinHashTable)
  JoinHashTable(JoinHashTable &&) noexcept = default;
  JoinHashTable &operator=(JoinHashTable &&) noexcept = default;

  /// Build the table by scanning `table` (both frozen zero-copy and hot
  /// materialized blocks) with `projection`, emitting build entries through
  /// `emit`. A null/zero-worker/shut-down pool degrades to an inline build on
  /// the calling thread. `txn` must stay read-only while the build runs
  /// (scan workers share it).
  /// \param stats accumulates the build scan's counters (may be nullptr)
  static JoinHashTable Build(catalog::SqlTable *table, transaction::TransactionContext *txn,
                             const std::vector<uint16_t> &projection, const BuildEmitFn &emit,
                             common::WorkerPool *pool, ScanStats *stats = nullptr);

  /// Steps 2-3 of the build, for callers that produced the per-block-ordinal
  /// entry lists themselves (e.g. op::HashJoinBuildOp, whose pipeline filters
  /// and scans on its own): scatter the lists into partitions in ordinal
  /// order — preserving the worker-count-independent determinism above — and
  /// build the partitions, one pool task each (inline without a pool).
  static JoinHashTable FromOrdinalLists(const std::vector<std::vector<JoinEntry>> &per_block,
                                        common::WorkerPool *pool);

  /// Invoke `fn(payload)` for every build entry whose key equals `key`, in
  /// the deterministic insertion order described above. Thread-safe.
  template <typename Fn>
  void ForEachMatch(int64_t key, Fn &&fn) const {
    const uint64_t h = HashKey(key);
    const Partition &p = partitions_[h >> kPartitionShift];
    if (p.slots.empty()) return;
    const uint64_t mask = p.slots.size() - 1;
    for (uint64_t i = h & mask;; i = (i + 1) & mask) {
      if (!p.used[i]) return;
      if (p.slots[i].key == key) fn(p.slots[i].payload);
    }
  }

  /// Probe every selected row of an int64 key column, invoking
  /// `fn(row, payload)` per match. Null keys match nothing. Thread-safe.
  template <typename Fn>
  void ProbeSelected(const arrowlite::Array &keys, const common::SelectionVector &sel,
                     Fn &&fn) const {
    const int64_t *values = keys.buffer(0)->data_as<int64_t>();
    if (keys.null_count() == 0) {
      for (const uint32_t row : sel) {
        ForEachMatch(values[row], [&](uint64_t payload) { fn(row, payload); });
      }
    } else {
      for (const uint32_t row : sel) {
        if (keys.IsNull(row)) continue;
        ForEachMatch(values[row], [&](uint64_t payload) { fn(row, payload); });
      }
    }
  }

  /// \return total number of build entries across all partitions.
  uint64_t NumEntries() const { return num_entries_; }

  bool Empty() const { return num_entries_ == 0; }

  /// 64-bit mix of a join key (splitmix64 finalizer): the top bits pick the
  /// partition, the low bits the slot, so the two are independent.
  static uint64_t HashKey(int64_t key) {
    auto x = static_cast<uint64_t>(key);
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

 private:
  static constexpr uint32_t kPartitionShift = 64 - 6;  // 2^6 == kNumPartitions
  static_assert((uint32_t{1} << (64 - kPartitionShift)) == kNumPartitions,
                "partition shift must match the partition count");

  /// One open-addressing sub-table (linear probing, power-of-two capacity,
  /// load factor <= 0.5, no tombstones — the table is insert-only).
  struct Partition {
    std::vector<JoinEntry> slots;
    std::vector<uint8_t> used;

    void BuildFrom(const std::vector<JoinEntry> &entries);
  };

  std::array<Partition, kNumPartitions> partitions_;
  uint64_t num_entries_ = 0;
};

}  // namespace mainline::execution
