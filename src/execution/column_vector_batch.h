#pragma once

#include <memory>
#include <utility>

#include "arrowlite/array.h"
#include "common/macros.h"
#include "storage/raw_block.h"

namespace mainline::execution {

/// Which access path produced a batch — the dichotomy the whole system is
/// built around (Figure 1): in-situ reads of Arrow-frozen blocks vs
/// transactional materialization of hot ones.
enum class AccessPath : uint8_t {
  /// Zero-copy view into frozen block storage, held under the block's
  /// read lock.
  kFrozenInSitu = 0,
  /// Freshly built arrays holding a transactional snapshot of a hot block.
  kHotMaterialized,
};

/// A uniform columnar view of one block's visible tuples, produced by
/// TableScanner: column `i` is the `i`-th column of the scan projection,
/// exposed as an arrowlite array regardless of which path produced it
/// (dictionary-encoded varlens included — Array::GetString resolves codes).
///
/// For frozen-path batches the arrays alias block storage, and the batch
/// keeps the block's read lock until Release()/destruction; operators must
/// therefore consume a batch before requesting the next one or moving it.
/// Move-only, so the lock is released exactly once.
class ColumnVectorBatch {
 public:
  ColumnVectorBatch() = default;

  ~ColumnVectorBatch() { Release(); }

  DISALLOW_COPY(ColumnVectorBatch)

  ColumnVectorBatch(ColumnVectorBatch &&other) noexcept { *this = std::move(other); }

  ColumnVectorBatch &operator=(ColumnVectorBatch &&other) noexcept {
    if (this != &other) {
      Release();
      batch_ = std::move(other.batch_);
      locked_block_ = other.locked_block_;
      path_ = other.path_;
      other.batch_ = nullptr;
      other.locked_block_ = nullptr;
    }
    return *this;
  }

  /// Rebind to a new block's data. `locked_block` is the block whose read
  /// lock this batch now owns (frozen path), or nullptr (materialized path).
  void Reset(std::shared_ptr<arrowlite::RecordBatch> batch, AccessPath path,
             storage::RawBlock *locked_block) {
    Release();
    batch_ = std::move(batch);
    path_ = path;
    locked_block_ = locked_block;
  }

  /// Drop the data and release the underlying block read lock, if any. The
  /// arrays must go first: they may alias the block storage the lock guards.
  void Release() {
    batch_ = nullptr;
    if (locked_block_ != nullptr) {
      locked_block_->controller.ReleaseRead();
      locked_block_ = nullptr;
    }
  }

  int64_t NumRows() const { return batch_ == nullptr ? 0 : batch_->num_rows(); }

  /// \return the array of projected column `i`.
  const arrowlite::Array &Column(uint16_t i) const { return *batch_->column(i); }

  const std::shared_ptr<arrowlite::RecordBatch> &Batch() const { return batch_; }

  AccessPath Path() const { return path_; }

 private:
  std::shared_ptr<arrowlite::RecordBatch> batch_;
  storage::RawBlock *locked_block_ = nullptr;
  AccessPath path_ = AccessPath::kHotMaterialized;
};

}  // namespace mainline::execution
