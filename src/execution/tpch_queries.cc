#include "execution/tpch_queries.h"

#include <algorithm>
#include <string_view>
#include <unordered_map>

#include "common/selection_vector.h"
#include "execution/hash_join.h"
#include "execution/parallel_scanner.h"
#include "execution/vector_ops.h"
#include "workload/row_util.h"
#include "workload/tpch/lineitem.h"
#include "workload/tpch/orders.h"

namespace mainline::execution::tpch {

namespace {

using common::SelectionVector;
using workload::tpch::L_COMMITDATE;
using workload::tpch::L_DISCOUNT;
using workload::tpch::L_EXTENDEDPRICE;
using workload::tpch::L_LINESTATUS;
using workload::tpch::L_ORDERKEY;
using workload::tpch::L_QUANTITY;
using workload::tpch::L_RECEIPTDATE;
using workload::tpch::L_RETURNFLAG;
using workload::tpch::L_SHIPDATE;
using workload::tpch::L_SHIPMODE;
using workload::tpch::L_TAX;
using workload::tpch::O_ORDERKEY;
using workload::tpch::O_ORDERPRIORITY;

/// Running aggregates of one Q1 group — either a per-block partial or the
/// merged global accumulator; both use the same shape.
struct Q1Acc {
  std::string returnflag;
  std::string linestatus;
  double sum_qty = 0;
  double sum_base_price = 0;
  double sum_disc_price = 0;
  double sum_charge = 0;
  double sum_discount = 0;
  uint64_t count = 0;
};

/// Group lookup without hashing: Q1 has at most |returnflag| x |linestatus|
/// (six) groups, so a linear probe over the group list beats any hash table.
uint32_t FindOrAddGroup(std::vector<Q1Acc> *groups, std::string_view flag,
                        std::string_view status) {
  for (uint32_t g = 0; g < groups->size(); g++) {
    if ((*groups)[g].returnflag == flag && (*groups)[g].linestatus == status) return g;
  }
  Q1Acc acc;
  acc.returnflag = std::string(flag);
  acc.linestatus = std::string(status);
  groups->push_back(std::move(acc));
  return static_cast<uint32_t>(groups->size() - 1);
}

/// Fold one block's Q1 partial into the global accumulators — ONE addition
/// per aggregate per (block, group), in the partial's group-discovery order.
/// Every engine funnels through this in block order, which is what pins the
/// floating-point result shape (see the header's canonical-order note).
void MergeQ1Partial(std::vector<Q1Acc> *global, const std::vector<Q1Acc> &partial) {
  for (const Q1Acc &acc : partial) {
    Q1Acc *dst = &(*global)[FindOrAddGroup(global, acc.returnflag, acc.linestatus)];
    dst->sum_qty += acc.sum_qty;
    dst->sum_base_price += acc.sum_base_price;
    dst->sum_disc_price += acc.sum_disc_price;
    dst->sum_charge += acc.sum_charge;
    dst->sum_discount += acc.sum_discount;
    dst->count += acc.count;
  }
}

/// Finalize accumulators into sorted result rows. The engines share this so
/// the averages divide identically.
std::vector<Q1Row> FinalizeQ1(std::vector<Q1Acc> groups) {
  std::vector<Q1Row> rows;
  rows.reserve(groups.size());
  for (Q1Acc &acc : groups) {
    Q1Row row;
    row.returnflag = std::move(acc.returnflag);
    row.linestatus = std::move(acc.linestatus);
    row.sum_qty = acc.sum_qty;
    row.sum_base_price = acc.sum_base_price;
    row.sum_disc_price = acc.sum_disc_price;
    row.sum_charge = acc.sum_charge;
    row.avg_qty = acc.sum_qty / static_cast<double>(acc.count);
    row.avg_price = acc.sum_base_price / static_cast<double>(acc.count);
    row.avg_disc = acc.sum_discount / static_cast<double>(acc.count);
    row.count = acc.count;
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(), [](const Q1Row &a, const Q1Row &b) {
    if (a.returnflag != b.returnflag) return a.returnflag < b.returnflag;
    return a.linestatus < b.linestatus;
  });
  return rows;
}

/// Batch column indices of the Q1 projection, resolved once per query.
struct Q1Columns {
  uint16_t qty, price, disc, tax, flag, status, ship;
};

const std::vector<uint16_t> kQ1Projection = {L_QUANTITY,   L_EXTENDEDPRICE, L_DISCOUNT,
                                             L_TAX,        L_RETURNFLAG,    L_LINESTATUS,
                                             L_SHIPDATE};

Q1Columns ResolveQ1Columns(const std::vector<uint16_t> &projection) {
  return {ProjectionIndexOf(projection, L_QUANTITY),
          ProjectionIndexOf(projection, L_EXTENDEDPRICE),
          ProjectionIndexOf(projection, L_DISCOUNT),
          ProjectionIndexOf(projection, L_TAX),
          ProjectionIndexOf(projection, L_RETURNFLAG),
          ProjectionIndexOf(projection, L_LINESTATUS),
          ProjectionIndexOf(projection, L_SHIPDATE)};
}

/// Compute one batch's (== one block's) Q1 partial: filter on shipdate, then
/// grouped accumulation in selection order into `partial` (empty on entry).
void AccumulateQ1Batch(const ColumnVectorBatch &batch, const Q1Params &params,
                       const Q1Columns &c, SelectionVector *sel,
                       std::vector<Q1Acc> *partial) {
  sel->InitFull(static_cast<uint32_t>(batch.NumRows()));
  vector_ops::FilterFixed<uint32_t>(batch.Column(c.ship), sel,
                                    [&](uint32_t v) { return v <= params.shipdate_max; });
  if (sel->Empty()) return;

  const double *qty = batch.Column(c.qty).buffer(0)->data_as<double>();
  const double *price = batch.Column(c.price).buffer(0)->data_as<double>();
  const double *disc = batch.Column(c.disc).buffer(0)->data_as<double>();
  const double *tax = batch.Column(c.tax).buffer(0)->data_as<double>();
  const auto accumulate = [&](Q1Acc *acc, uint32_t row) {
    acc->sum_qty += qty[row];
    acc->sum_base_price += price[row];
    const double disc_price = price[row] * (1.0 - disc[row]);
    acc->sum_disc_price += disc_price;
    acc->sum_charge += disc_price * (1.0 + tax[row]);
    acc->sum_discount += disc[row];
    acc->count++;
  };

  const arrowlite::Array &flag = batch.Column(c.flag);
  const arrowlite::Array &status = batch.Column(c.status);
  if (flag.type() == arrowlite::Type::kDictionary &&
      status.type() == arrowlite::Type::kDictionary) {
    // Dictionary-encoded batch (frozen, dictionary gather mode): the group
    // key collapses to a (flag code, status code) pair, so grouping is a
    // direct lookup in a dense code-pair table — no strings, no hashing.
    const auto num_status = static_cast<uint32_t>(status.dictionary()->length());
    std::vector<int32_t> group_of_pair(flag.dictionary()->length() * num_status, -1);
    const int32_t *flag_codes = flag.buffer(0)->data_as<int32_t>();
    const int32_t *status_codes = status.buffer(0)->data_as<int32_t>();
    sel->ForEach([&](uint32_t row) {
      const uint32_t key = static_cast<uint32_t>(flag_codes[row]) * num_status +
                           static_cast<uint32_t>(status_codes[row]);
      int32_t g = group_of_pair[key];
      if (UNLIKELY(g < 0)) {
        g = static_cast<int32_t>(
            FindOrAddGroup(partial, flag.dictionary()->GetString(flag_codes[row]),
                           status.dictionary()->GetString(status_codes[row])));
        group_of_pair[key] = g;
      }
      accumulate(&(*partial)[static_cast<uint32_t>(g)], row);
    });
  } else {
    sel->ForEach([&](uint32_t row) {
      const uint32_t g = FindOrAddGroup(partial, flag.GetString(row), status.GetString(row));
      accumulate(&(*partial)[g], row);
    });
  }
}

/// One block's Q6 partial. `selected` gates the merge: a block with no
/// qualifying rows contributes no merge addition in any engine.
struct Q6Partial {
  double revenue = 0;
  uint64_t selected = 0;
};

/// Batch column indices of the Q6 projection.
struct Q6Columns {
  uint16_t qty, price, disc, ship;
};

const std::vector<uint16_t> kQ6Projection = {L_QUANTITY, L_EXTENDEDPRICE, L_DISCOUNT,
                                             L_SHIPDATE};

Q6Columns ResolveQ6Columns(const std::vector<uint16_t> &projection) {
  return {ProjectionIndexOf(projection, L_QUANTITY),
          ProjectionIndexOf(projection, L_EXTENDEDPRICE),
          ProjectionIndexOf(projection, L_DISCOUNT),
          ProjectionIndexOf(projection, L_SHIPDATE)};
}

Q6Partial AccumulateQ6Batch(const ColumnVectorBatch &batch, const Q6Params &params,
                            const Q6Columns &c, SelectionVector *sel) {
  Q6Partial partial;
  sel->InitFull(static_cast<uint32_t>(batch.NumRows()));
  vector_ops::FilterRange<uint32_t>(batch.Column(c.ship), sel, params.shipdate_min,
                                    params.shipdate_max);
  vector_ops::FilterFixed<double>(batch.Column(c.disc), sel, [&](double v) {
    return params.discount_min <= v && v <= params.discount_max;
  });
  vector_ops::FilterFixed<double>(batch.Column(c.qty), sel,
                                  [&](double v) { return v < params.quantity_max; });
  partial.selected = sel->Size();
  vector_ops::AccumulateDotProduct(batch.Column(c.price), batch.Column(c.disc), *sel,
                                   &partial.revenue);
  return partial;
}

}  // namespace

std::vector<Q1Row> RunQ1(storage::SqlTable *table, transaction::TransactionContext *txn,
                         const Q1Params &params, ScanStats *stats) {
  TableScanner scanner(table, txn, kQ1Projection);
  const Q1Columns cols = ResolveQ1Columns(scanner.Projection());

  std::vector<Q1Acc> groups;
  std::vector<Q1Acc> partial;
  SelectionVector sel;
  ColumnVectorBatch batch;
  while (scanner.Next(&batch)) {
    partial.clear();
    AccumulateQ1Batch(batch, params, cols, &sel, &partial);
    batch.Release();
    MergeQ1Partial(&groups, partial);
  }
  if (stats != nullptr) stats->Add(scanner.Stats());
  return FinalizeQ1(std::move(groups));
}

double RunQ6(storage::SqlTable *table, transaction::TransactionContext *txn,
             const Q6Params &params, ScanStats *stats) {
  TableScanner scanner(table, txn, kQ6Projection);
  const Q6Columns cols = ResolveQ6Columns(scanner.Projection());

  double revenue = 0;
  SelectionVector sel;
  ColumnVectorBatch batch;
  while (scanner.Next(&batch)) {
    const Q6Partial partial = AccumulateQ6Batch(batch, params, cols, &sel);
    batch.Release();
    if (partial.selected != 0) revenue += partial.revenue;
  }
  if (stats != nullptr) stats->Add(scanner.Stats());
  return revenue;
}

std::vector<Q1Row> RunQ1Parallel(storage::SqlTable *table,
                                 transaction::TransactionContext *txn, const Q1Params &params,
                                 common::WorkerPool *pool, ScanStats *stats) {
  ParallelTableScanner scanner(table, txn, kQ1Projection);
  const Q1Columns cols = ResolveQ1Columns(scanner.Projection());

  // One partial slot per block ordinal: workers write disjoint slots, the
  // merge below reads them in block order — no locks, deterministic result.
  std::vector<std::vector<Q1Acc>> partials(scanner.NumBlocks());
  scanner.Scan(pool, [&](size_t ordinal, ColumnVectorBatch *batch) {
    SelectionVector sel;
    AccumulateQ1Batch(*batch, params, cols, &sel, &partials[ordinal]);
  });

  std::vector<Q1Acc> groups;
  for (const std::vector<Q1Acc> &partial : partials) MergeQ1Partial(&groups, partial);
  if (stats != nullptr) stats->Add(scanner.Stats());
  return FinalizeQ1(std::move(groups));
}

double RunQ6Parallel(storage::SqlTable *table, transaction::TransactionContext *txn,
                     const Q6Params &params, common::WorkerPool *pool, ScanStats *stats) {
  ParallelTableScanner scanner(table, txn, kQ6Projection);
  const Q6Columns cols = ResolveQ6Columns(scanner.Projection());

  std::vector<Q6Partial> partials(scanner.NumBlocks());
  scanner.Scan(pool, [&](size_t ordinal, ColumnVectorBatch *batch) {
    SelectionVector sel;
    partials[ordinal] = AccumulateQ6Batch(*batch, params, cols, &sel);
  });

  double revenue = 0;
  for (const Q6Partial &partial : partials) {
    if (partial.selected != 0) revenue += partial.revenue;
  }
  if (stats != nullptr) stats->Add(scanner.Stats());
  return revenue;
}

namespace {

/// Drive `visit(row)` over every tuple visible to `txn`, one
/// DataTable::Select at a time — the classic iterator-model baseline. The
/// projection must be sorted ascending; `visit` receives ProjectedRow
/// indices in the same order. `block_done()` fires after the last slot of
/// each block, so callers can fold per-block partials in block order —
/// mirroring the vectorized engines' batch boundaries exactly.
template <typename Visit, typename BlockDone>
void ScalarScan(storage::SqlTable *table, transaction::TransactionContext *txn,
                const std::vector<uint16_t> &projection, ScanStats *stats, Visit visit,
                BlockDone block_done) {
  const storage::ProjectedRowInitializer initializer =
      table->InitializerForColumns(projection);
  std::vector<byte> buffer(initializer.ProjectedRowSize() + 8);
  uint64_t rows = 0;
  storage::RawBlock *current = nullptr;
  for (storage::DataTable::SlotIterator it = table->begin(); !it.Done(); ++it) {
    storage::RawBlock *block = it.CurrentBlock();
    if (block != current) {
      if (current != nullptr) block_done();
      current = block;
    }
    storage::ProjectedRow *row = initializer.InitializeRow(buffer.data());
    if (!table->Select(txn, *it, row)) continue;
    rows++;
    visit(*row);
  }
  if (current != nullptr) block_done();
  if (stats != nullptr) stats->rows += rows;
}

}  // namespace

std::vector<Q1Row> RunQ1Scalar(storage::SqlTable *table, transaction::TransactionContext *txn,
                               const Q1Params &params, ScanStats *stats) {
  // Projection indices follow the sorted column order, same as the scanner.
  const uint16_t p_qty = 0, p_price = 1, p_disc = 2, p_tax = 3, p_flag = 4, p_status = 5,
                 p_ship = 6;
  std::vector<Q1Acc> groups;
  std::vector<Q1Acc> partial;
  ScalarScan(
      table, txn, kQ1Projection, stats,
      [&](const storage::ProjectedRow &row) {
        if (workload::Get<uint32_t>(row, p_ship) > params.shipdate_max) return;
        const uint32_t g = FindOrAddGroup(&partial, workload::GetVarchar(row, p_flag),
                                          workload::GetVarchar(row, p_status));
        Q1Acc *acc = &partial[g];
        const double qty = workload::Get<double>(row, p_qty);
        const double price = workload::Get<double>(row, p_price);
        const double disc = workload::Get<double>(row, p_disc);
        const double tax = workload::Get<double>(row, p_tax);
        acc->sum_qty += qty;
        acc->sum_base_price += price;
        const double disc_price = price * (1.0 - disc);
        acc->sum_disc_price += disc_price;
        acc->sum_charge += disc_price * (1.0 + tax);
        acc->sum_discount += disc;
        acc->count++;
      },
      [&] {
        MergeQ1Partial(&groups, partial);
        partial.clear();
      });
  return FinalizeQ1(std::move(groups));
}

double RunQ6Scalar(storage::SqlTable *table, transaction::TransactionContext *txn,
                   const Q6Params &params, ScanStats *stats) {
  const uint16_t p_qty = 0, p_price = 1, p_disc = 2, p_ship = 3;
  double revenue = 0;
  Q6Partial partial;
  ScalarScan(
      table, txn, kQ6Projection, stats,
      [&](const storage::ProjectedRow &row) {
        const uint32_t ship = workload::Get<uint32_t>(row, p_ship);
        if (ship < params.shipdate_min || ship >= params.shipdate_max) return;
        const double disc = workload::Get<double>(row, p_disc);
        if (disc < params.discount_min || disc > params.discount_max) return;
        if (workload::Get<double>(row, p_qty) >= params.quantity_max) return;
        partial.selected++;
        partial.revenue += workload::Get<double>(row, p_price) * disc;
      },
      [&] {
        if (partial.selected != 0) revenue += partial.revenue;
        partial = Q6Partial{};
      });
  return revenue;
}

// ---------------------------------------------------------------------------
// TPC-H Q12 — the first multi-table plan: ORDERS ⋈ LINEITEM on orderkey,
// grouped by l_shipmode. The hash-join payload is a single bit (order
// priority is urgent/high), so the probe side aggregates match counts
// directly; all aggregates are integers and the same per-block-partial
// merge shape as Q1/Q6 keeps every engine's answer identical at any worker
// count.
// ---------------------------------------------------------------------------

namespace {

/// Running counts of one Q12 group (a ship mode) — per-block partial or
/// merged global accumulator.
struct Q12Acc {
  std::string shipmode;
  uint64_t high = 0;
  uint64_t low = 0;
};

/// Q12 groups are the (at most two) requested ship modes; linear probe.
uint32_t FindOrAddQ12Group(std::vector<Q12Acc> *groups, std::string_view mode) {
  for (uint32_t g = 0; g < groups->size(); g++) {
    if ((*groups)[g].shipmode == mode) return g;
  }
  Q12Acc acc;
  acc.shipmode = std::string(mode);
  groups->push_back(std::move(acc));
  return static_cast<uint32_t>(groups->size() - 1);
}

void MergeQ12Partial(std::vector<Q12Acc> *global, const std::vector<Q12Acc> &partial) {
  for (const Q12Acc &acc : partial) {
    Q12Acc *dst = &(*global)[FindOrAddQ12Group(global, acc.shipmode)];
    dst->high += acc.high;
    dst->low += acc.low;
  }
}

std::vector<Q12Row> FinalizeQ12(std::vector<Q12Acc> groups) {
  std::vector<Q12Row> rows;
  rows.reserve(groups.size());
  for (Q12Acc &acc : groups) {
    Q12Row row;
    row.shipmode = std::move(acc.shipmode);
    row.high_line_count = acc.high;
    row.low_line_count = acc.low;
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(),
            [](const Q12Row &a, const Q12Row &b) { return a.shipmode < b.shipmode; });
  return rows;
}

bool IsHighPriority(std::string_view priority) {
  return priority == "1-URGENT" || priority == "2-HIGH";
}

const std::vector<uint16_t> kQ12OrdersProjection = {O_ORDERKEY, O_ORDERPRIORITY};
const std::vector<uint16_t> kQ12LineitemProjection = {L_ORDERKEY, L_SHIPDATE, L_COMMITDATE,
                                                      L_RECEIPTDATE, L_SHIPMODE};

/// Batch column indices of the Q12 lineitem projection.
struct Q12Columns {
  uint16_t okey, ship, commit, receipt, mode;
};

Q12Columns ResolveQ12Columns(const std::vector<uint16_t> &projection) {
  return {ProjectionIndexOf(projection, L_ORDERKEY),
          ProjectionIndexOf(projection, L_SHIPDATE),
          ProjectionIndexOf(projection, L_COMMITDATE),
          ProjectionIndexOf(projection, L_RECEIPTDATE),
          ProjectionIndexOf(projection, L_SHIPMODE)};
}

/// Build the ORDERS-side hash table: key o_orderkey, payload 1 for
/// urgent/high priority orders, 0 otherwise. Dictionary-encoded priority
/// columns classify each distinct priority once and emit by code.
JoinHashTable BuildQ12Table(storage::SqlTable *orders, transaction::TransactionContext *txn,
                            common::WorkerPool *pool, ScanStats *stats) {
  const uint16_t key_idx = ProjectionIndexOf(kQ12OrdersProjection, O_ORDERKEY);
  const uint16_t prio_idx = ProjectionIndexOf(kQ12OrdersProjection, O_ORDERPRIORITY);
  return JoinHashTable::Build(
      orders, txn, kQ12OrdersProjection,
      [key_idx, prio_idx](const ColumnVectorBatch &batch, std::vector<JoinEntry> *out) {
        const arrowlite::Array &keys = batch.Column(key_idx);
        const arrowlite::Array &prio = batch.Column(prio_idx);
        const int64_t *key_values = keys.buffer(0)->data_as<int64_t>();
        const auto n = static_cast<uint32_t>(batch.NumRows());
        out->reserve(n);
        const bool has_nulls = keys.null_count() != 0 || prio.null_count() != 0;
        if (prio.type() == arrowlite::Type::kDictionary) {
          const arrowlite::Array &dict = *prio.dictionary();
          std::vector<uint64_t> payload_of_code(static_cast<size_t>(dict.length()));
          for (int64_t c = 0; c < dict.length(); c++) {
            payload_of_code[static_cast<size_t>(c)] = IsHighPriority(dict.GetString(c)) ? 1 : 0;
          }
          const int32_t *codes = prio.buffer(0)->data_as<int32_t>();
          for (uint32_t row = 0; row < n; row++) {
            if (has_nulls && (keys.IsNull(row) || prio.IsNull(row))) continue;
            out->push_back({key_values[row], payload_of_code[static_cast<size_t>(codes[row])]});
          }
        } else {
          for (uint32_t row = 0; row < n; row++) {
            if (has_nulls && (keys.IsNull(row) || prio.IsNull(row))) continue;
            out->push_back({key_values[row], IsHighPriority(prio.GetString(row)) ? 1u : 0u});
          }
        }
      },
      pool, stats);
}

/// One lineitem batch's (== one block's) Q12 partial: selection-vector
/// filters, then a probe of the survivors, counting matches into `partial`
/// (empty on entry) grouped by ship mode.
void AccumulateQ12Batch(const ColumnVectorBatch &batch, const JoinHashTable &ht,
                        const Q12Params &params, const Q12Columns &c, SelectionVector *sel,
                        std::vector<Q12Acc> *partial) {
  sel->InitFull(static_cast<uint32_t>(batch.NumRows()));
  vector_ops::FilterRange<uint32_t>(batch.Column(c.receipt), sel, params.receiptdate_min,
                                    params.receiptdate_max);
  vector_ops::FilterLessThanColumn<uint32_t>(batch.Column(c.commit), batch.Column(c.receipt),
                                             sel);
  vector_ops::FilterLessThanColumn<uint32_t>(batch.Column(c.ship), batch.Column(c.commit),
                                             sel);
  vector_ops::FilterStringIn(batch.Column(c.mode), sel,
                             {params.shipmode_a, params.shipmode_b});
  if (sel->Empty() || ht.Empty()) return;

  const arrowlite::Array &keys = batch.Column(c.okey);
  const arrowlite::Array &mode = batch.Column(c.mode);
  const auto count = [&](uint32_t group, uint64_t payload) {
    Q12Acc *acc = &(*partial)[group];
    acc->high += payload;
    acc->low += 1 - payload;
  };
  if (mode.type() == arrowlite::Type::kDictionary) {
    // Ship-mode grouping by dictionary code: resolve each code to its group
    // lazily, then count matches without touching strings.
    std::vector<int32_t> group_of_code(static_cast<size_t>(mode.dictionary()->length()), -1);
    const int32_t *codes = mode.buffer(0)->data_as<int32_t>();
    ht.ProbeSelected(keys, *sel, [&](uint32_t row, uint64_t payload) {
      const auto code = static_cast<size_t>(codes[row]);
      int32_t g = group_of_code[code];
      if (UNLIKELY(g < 0)) {
        g = static_cast<int32_t>(
            FindOrAddQ12Group(partial, mode.dictionary()->GetString(codes[row])));
        group_of_code[code] = g;
      }
      count(static_cast<uint32_t>(g), payload);
    });
  } else {
    ht.ProbeSelected(keys, *sel, [&](uint32_t row, uint64_t payload) {
      count(FindOrAddQ12Group(partial, mode.GetString(row)), payload);
    });
  }
}

}  // namespace

std::vector<Q12Row> RunQ12(storage::SqlTable *orders, storage::SqlTable *lineitem,
                           transaction::TransactionContext *txn, const Q12Params &params,
                           ScanStats *stats) {
  // Build inline (degraded parallel build), probe sequentially.
  const JoinHashTable ht = BuildQ12Table(orders, txn, nullptr, stats);

  TableScanner scanner(lineitem, txn, kQ12LineitemProjection);
  const Q12Columns cols = ResolveQ12Columns(scanner.Projection());
  std::vector<Q12Acc> groups;
  std::vector<Q12Acc> partial;
  SelectionVector sel;
  ColumnVectorBatch batch;
  while (scanner.Next(&batch)) {
    partial.clear();
    AccumulateQ12Batch(batch, ht, params, cols, &sel, &partial);
    batch.Release();
    MergeQ12Partial(&groups, partial);
  }
  if (stats != nullptr) stats->Add(scanner.Stats());
  return FinalizeQ12(std::move(groups));
}

std::vector<Q12Row> RunQ12Parallel(storage::SqlTable *orders, storage::SqlTable *lineitem,
                                   transaction::TransactionContext *txn,
                                   const Q12Params &params, common::WorkerPool *pool,
                                   ScanStats *stats) {
  const JoinHashTable ht = BuildQ12Table(orders, txn, pool, stats);

  ParallelTableScanner scanner(lineitem, txn, kQ12LineitemProjection);
  const Q12Columns cols = ResolveQ12Columns(scanner.Projection());
  // One partial slot per block ordinal: workers write disjoint slots, the
  // merge below reads them in block order — no locks, deterministic result.
  std::vector<std::vector<Q12Acc>> partials(scanner.NumBlocks());
  scanner.Scan(pool, [&](size_t ordinal, ColumnVectorBatch *batch) {
    SelectionVector sel;
    AccumulateQ12Batch(*batch, ht, params, cols, &sel, &partials[ordinal]);
  });

  std::vector<Q12Acc> groups;
  for (const std::vector<Q12Acc> &partial : partials) MergeQ12Partial(&groups, partial);
  if (stats != nullptr) stats->Add(scanner.Stats());
  return FinalizeQ12(std::move(groups));
}

std::vector<Q12Row> RunQ12Scalar(storage::SqlTable *orders, storage::SqlTable *lineitem,
                                 transaction::TransactionContext *txn, const Q12Params &params,
                                 ScanStats *stats) {
  // Build: one Select per ORDERS slot, in scan order.
  std::unordered_multimap<int64_t, uint64_t> ht;
  const uint16_t p_okey = 0, p_prio = 1;
  ScalarScan(
      orders, txn, kQ12OrdersProjection, stats,
      [&](const storage::ProjectedRow &row) {
        ht.emplace(workload::Get<int64_t>(row, p_okey),
                   IsHighPriority(workload::GetVarchar(row, p_prio)) ? 1 : 0);
      },
      [] {});

  // Probe: row predicates in the same order as the vectorized filters.
  const uint16_t p_lkey = 0, p_ship = 1, p_commit = 2, p_receipt = 3, p_mode = 4;
  std::vector<Q12Acc> groups;
  std::vector<Q12Acc> partial;
  ScalarScan(
      lineitem, txn, kQ12LineitemProjection, stats,
      [&](const storage::ProjectedRow &row) {
        const uint32_t receipt = workload::Get<uint32_t>(row, p_receipt);
        if (receipt < params.receiptdate_min || receipt >= params.receiptdate_max) return;
        const uint32_t commit = workload::Get<uint32_t>(row, p_commit);
        if (commit >= receipt) return;
        if (workload::Get<uint32_t>(row, p_ship) >= commit) return;
        const std::string_view mode = workload::GetVarchar(row, p_mode);
        if (mode != params.shipmode_a && mode != params.shipmode_b) return;
        const auto [begin, end] = ht.equal_range(workload::Get<int64_t>(row, p_lkey));
        if (begin == end) return;
        Q12Acc *acc = &partial[FindOrAddQ12Group(&partial, mode)];
        for (auto it = begin; it != end; ++it) {
          acc->high += it->second;
          acc->low += 1 - it->second;
        }
      },
      [&] {
        MergeQ12Partial(&groups, partial);
        partial.clear();
      });
  return FinalizeQ12(std::move(groups));
}

}  // namespace mainline::execution::tpch
