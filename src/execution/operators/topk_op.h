#pragma once

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/worker_pool.h"
#include "execution/operators/operator.h"

namespace mainline::execution::op {

/// One ORDER BY key of a TopKOp, as data. Keys compare as doubles; ties fall
/// through to the next key, and full ties break on the row's (block ordinal,
/// within-block emit sequence) — the scan order — so the top-k result is a
/// single total order, identical at any worker count and bit-exact against a
/// tuple-at-a-time reference that sorts the same way.
struct SortKey {
  enum class Source : uint8_t {
    kMatchPayloadF64,  ///< the probe match's payload bits as a double (probed chunks)
    kU32Column,        ///< a uint32 batch column (dates)
    kExpr,             ///< a double expression over batch/computed columns
  };

  Source source = Source::kU32Column;
  uint16_t col = 0;
  Expr expr;
  bool descending = false;

  static SortKey MatchPayloadF64(bool descending) {
    SortKey k;
    k.source = Source::kMatchPayloadF64;
    k.descending = descending;
    return k;
  }
  static SortKey U32Column(uint16_t col, bool descending = false) {
    SortKey k;
    k.source = Source::kU32Column;
    k.col = col;
    k.descending = descending;
    return k;
  }
  static SortKey OfExpr(const Expr &expr, bool descending = false) {
    SortKey k;
    k.source = Source::kExpr;
    k.expr = expr;
    k.descending = descending;
    return k;
  }
};

/// One output column of a TopKOp result row: what to materialize for a row
/// the moment it enters a heap (chunks die with their block, so values are
/// captured at Push time, never referenced later).
struct OutputCol {
  enum class Kind : uint8_t {
    kInt64Column,      ///< int64 batch column -> i64
    kInt32Column,      ///< int32 batch column -> i64
    kU32Column,        ///< uint32 batch column -> i64
    kMatchPayloadF64,  ///< the probe match's payload bits as a double -> f64
    kExpr,             ///< a double expression -> f64
  };

  Kind kind = Kind::kInt64Column;
  uint16_t col = 0;
  Expr expr;

  static OutputCol Int64Column(uint16_t col) { return {Kind::kInt64Column, col, {}}; }
  static OutputCol Int32Column(uint16_t col) { return {Kind::kInt32Column, col, {}}; }
  static OutputCol U32Column(uint16_t col) { return {Kind::kU32Column, col, {}}; }
  static OutputCol MatchPayloadF64() { return {Kind::kMatchPayloadF64, 0, {}}; }
  static OutputCol OfExpr(const Expr &expr) { return {Kind::kExpr, 0, expr}; }
};

/// One materialized result cell: `i64` for the integer column kinds, `f64`
/// for kMatchPayloadF64/kExpr.
struct TopKValue {
  int64_t i64 = 0;
  double f64 = 0;
};

/// One top-k result row: one TopKValue per OutputCol, in spec order.
struct TopKRow {
  std::vector<TopKValue> cols;
};

/// ORDER BY ... LIMIT k as a pipeline-breaking sink. Push keeps a bounded
/// heap (worst candidate on top) per block ordinal — candidates are rows, or
/// matches on a probed chunk, considered in chunk order — so workers touch
/// disjoint state and the set a block contributes is independent of the
/// worker count. Finish folds the per-block heaps in block order into one
/// k-bounded heap and sorts it best-first. Because the comparison ends in
/// the strictly unique (ordinal, sequence) tie-break, the final rows are ONE
/// deterministic answer, not "some top k": bit-exact against the scalar
/// oracle at any worker count, including the order of ties at the boundary.
///
/// A null sort-key input drops the candidate (SQL semantics are ORDER BY
/// over non-null keys here; the TPC-H workloads ship no nulls). k == 0
/// yields an empty result; k > n yields all n in sorted order.
class TopKOp final : public Operator {
 public:
  /// At most this many sort keys per operator (evaluated into a fixed
  /// buffer in the hot loop; raise if a query ever needs more).
  static constexpr size_t kMaxSortKeys = 4;

  TopKOp(uint32_t k, std::vector<SortKey> keys, std::vector<OutputCol> outputs)
      : k_(k), keys_(std::move(keys)), outputs_(std::move(outputs)) {
    MAINLINE_ASSERT(!keys_.empty(), "a top-k needs at least one sort key");
    MAINLINE_ASSERT(keys_.size() <= kMaxSortKeys, "too many sort keys");
  }

  void Prepare(size_t num_blocks) override {
    per_block_.assign(num_blocks, {});
    result_.clear();
  }

  void Push(Chunk *chunk) override;

  std::string Label() const override { return "TopK"; }

  void Finish(common::WorkerPool *pool) override;

  /// Final rows, best first; valid once the plan has Run.
  const std::vector<TopKRow> &Result() const { return result_; }

 private:
  /// One heap candidate: its sort-key values, its (ordinal, sequence)
  /// tie-break, and the already materialized output row.
  struct Item {
    std::array<double, kMaxSortKeys> keys;
    uint64_t ordinal = 0;
    uint64_t seq = 0;
    TopKRow row;
  };

  /// Strict weak (in fact total) order: does candidate a outrank b?
  bool Better(const double *a_keys, uint64_t a_ordinal, uint64_t a_seq,
              const Item &b) const {
    for (size_t i = 0; i < keys_.size(); i++) {
      if (a_keys[i] != b.keys[i]) {
        return keys_[i].descending ? a_keys[i] > b.keys[i] : a_keys[i] < b.keys[i];
      }
    }
    if (a_ordinal != b.ordinal) return a_ordinal < b.ordinal;
    return a_seq < b.seq;
  }
  bool Better(const Item &a, const Item &b) const {
    return Better(a.keys.data(), a.ordinal, a.seq, b);
  }

  uint32_t k_;
  std::vector<SortKey> keys_;
  std::vector<OutputCol> outputs_;
  /// Bounded per-ordinal heaps, worst candidate at the front.
  std::vector<std::vector<Item>> per_block_;
  std::vector<TopKRow> result_;
};

}  // namespace mainline::execution::op
