#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "arrowlite/array.h"
#include "common/macros.h"
#include "common/selection_vector.h"
#include "common/timer.h"
#include "common/worker_pool.h"
#include "execution/column_vector_batch.h"
#include "execution/operators/expr.h"
#include "execution/operators/plan_profile.h"

namespace mainline::execution::op {

/// One probe-side match: the batch row that matched and the 8-byte payload
/// its build-side partner carries. A row appears once per matching build
/// entry, in the JoinHashTable's deterministic match order. When a chunk is
/// probed more than once (multi-way joins), each probe consumes the previous
/// match list and carries the consumed match's payload along in `prior` — so
/// a CUSTOMER⋈ORDERS match survives the LINEITEM probe that follows it.
struct JoinMatch {
  uint32_t row;
  uint64_t payload;
  uint64_t prior = 0;
};

/// The unit of data flowing down a pipeline: one block's ColumnVectorBatch
/// plus everything the operators so far have derived from it — the selection
/// vector filters refine, the match list a join probe produces, and the
/// computed columns projections append. A chunk lives on the scanning worker
/// for exactly one block; operators must never retain pointers into it past
/// Push (frozen-path batches release their block read lock when the chunk is
/// recycled).
class Chunk {
 public:
  /// Ordinal of the source block in the scan's block-list snapshot. Sink
  /// operators key their partial state by this, so merging partials in
  /// ordinal order reproduces the sequential scan's result bit-exactly at
  /// any worker count (the canonical reduction shape of tpch_queries.h).
  size_t block_ordinal = 0;
  const ColumnVectorBatch *batch = nullptr;
  /// Rows still alive, in ascending batch order.
  common::SelectionVector sel;
  /// True once a HashJoinProbeOp ran: downstream operators iterate `matches`
  /// (which may repeat rows, for duplicate build keys) instead of `sel`.
  bool probed = false;
  std::vector<JoinMatch> matches;
  /// ProjectOp outputs, in projection order; addressed by
  /// ColumnRef::Computed(i). Only the first `num_computed` entries are live
  /// for the current block — the tail is recycled buffer capacity from
  /// earlier blocks.
  std::vector<ComputedColumn> computed;
  size_t num_computed = 0;

  /// Shrink thresholds for Reset: a pooled chunk keeps its containers'
  /// capacity across blocks, but one pathological block (a skewed join key
  /// exploding the match list, a plan stacking projections) must not pin
  /// worst-case buffers for the rest of the run. Capacity at or below the
  /// threshold is retained — it covers every block of a well-behaved scan
  /// (block layouts cap out well under 64K slots) — and anything above is
  /// released on the next Reset.
  static constexpr size_t kMaxRetainedMatches = size_t{1} << 16;
  static constexpr size_t kMaxRetainedComputedValues = size_t{1} << 16;
  static constexpr size_t kMaxRetainedComputedColumns = 8;

  /// Rebind to a new block, keeping the containers' capacity — including the
  /// computed columns' value buffers (chunks are pooled across blocks so the
  /// steady-state per-block cost is an InitFull, not allocations) — up to the
  /// shrink thresholds above.
  void Reset(size_t ordinal, const ColumnVectorBatch *new_batch) {
    block_ordinal = ordinal;
    batch = new_batch;
    sel.InitFull(static_cast<uint32_t>(new_batch->NumRows()));
    probed = false;
    if (matches.capacity() > kMaxRetainedMatches) {
      std::vector<JoinMatch>().swap(matches);  // clear() would keep the buffer
    } else {
      matches.clear();
    }
    if (computed.size() > kMaxRetainedComputedColumns) {
      computed.resize(kMaxRetainedComputedColumns);
    }
    for (ComputedColumn &col : computed) {
      if (col.values.capacity() > kMaxRetainedComputedValues) {
        std::vector<double>().swap(col.values);
      }
    }
    num_computed = 0;
  }

  /// Claim the next computed-column slot (ProjectOp's append), reusing a
  /// recycled buffer when one is available.
  ComputedColumn *AppendComputed() {
    if (num_computed == computed.size()) computed.emplace_back();
    ComputedColumn *col = &computed[num_computed++];
    col->null_sources.clear();
    return col;
  }
};

/// A push-based vectorized operator. A pipeline wires operators into a
/// chain; the ScanSource pushes one chunk per non-empty block into the first
/// operator, and each operator refines the chunk and pushes it onward (or
/// absorbs it, for sinks like aggregates and join builds).
///
/// Threading contract: Push runs on scan worker threads, concurrently with
/// itself for different block ordinals. An operator may only touch the chunk
/// and per-ordinal state indexed by `chunk->block_ordinal` (disjoint writes
/// need no locks). Prepare and Finish run on the driving thread, before the
/// first and after the last Push of a run; Finish runs in pipeline order, so
/// a sink can merge its per-ordinal partials in block order there.
class Operator {
 public:
  virtual ~Operator() = default;

  /// Reset per-run state; `num_blocks` is the ordinal space of the coming
  /// scan. Operators stay reusable: a plan can be Run repeatedly.
  virtual void Prepare(size_t num_blocks) { (void)num_blocks; }

  /// Consume one chunk (worker thread; see the threading contract above).
  virtual void Push(Chunk *chunk) = 0;

  /// Post-scan hook (driving thread). `pool` is the run's worker pool (may
  /// be nullptr) for operators whose finish phase parallelizes.
  virtual void Finish(common::WorkerPool *pool) { (void)pool; }

  /// Display name in EXPLAIN output.
  virtual std::string Label() const { return "Operator"; }

  void SetNext(Operator *next) { next_ = next; }

  /// Attach this run's profiling recorder (nullptr detaches). Set on the
  /// driving thread before the scan starts.
  void SetProfiler(OperatorProfiler *profiler) { profiler_ = profiler; }

  /// The entry point pipelines (and PushNext) use to hand a chunk to this
  /// operator. Unprofiled this is exactly Push — one null-pointer test on
  /// the hot path; profiled it also records rows-in under this chunk's block
  /// ordinal and the call's inclusive wall time. Profiling never touches the
  /// chunk, so operator output is bit-identical either way.
  void Consume(Chunk *chunk) {
    if (profiler_ == nullptr) {
      Push(chunk);
      return;
    }
    profiler_->RecordRows(chunk->block_ordinal,
                          chunk->probed ? chunk->matches.size() : chunk->sel.Size());
    const common::Timer timer;
    Push(chunk);
    profiler_->RecordElapsed(timer.Elapsed<std::chrono::nanoseconds>());
  }

 protected:
  /// Hand the chunk to the next operator, if any — the tail of every
  /// non-sink Push.
  void PushNext(Chunk *chunk) {
    if (next_ != nullptr) next_->Consume(chunk);
  }

  Operator *next_ = nullptr;
  OperatorProfiler *profiler_ = nullptr;
};

/// Bind an Expr's column references against one chunk: raw value pointers
/// for the tight per-row loops, plus the source arrays that actually carry
/// nulls (empty for the common null-free case, which lets callers hoist the
/// null check out of the loop entirely).
struct BoundExpr {
  Expr::Kind kind = Expr::Kind::kColumn;
  const double *a = nullptr;
  const double *b = nullptr;
  const double *c = nullptr;
  std::vector<const arrowlite::Array *> null_sources;

  double Eval(uint32_t row) const {
    switch (kind) {
      case Expr::Kind::kColumn:
        return a[row];
      case Expr::Kind::kMul:
        return a[row] * b[row];
      case Expr::Kind::kDiscounted:
        return a[row] * (1.0 - b[row]);
      case Expr::Kind::kDiscountedTaxed:
        return a[row] * (1.0 - b[row]) * (1.0 + c[row]);
    }
    return 0;
  }

  bool NullFree() const { return null_sources.empty(); }

  bool IsNull(uint32_t row) const {
    for (const arrowlite::Array *source : null_sources) {
      if (source->IsNull(row)) return true;
    }
    return false;
  }
};

inline const double *BindColumn(const ColumnRef &ref, const Chunk &chunk,
                                std::vector<const arrowlite::Array *> *null_sources) {
  if (ref.source == ColumnRef::Source::kComputed) {
    MAINLINE_ASSERT(ref.index < chunk.num_computed, "computed column not projected yet");
    const ComputedColumn &col = chunk.computed[ref.index];
    null_sources->insert(null_sources->end(), col.null_sources.begin(),
                         col.null_sources.end());
    return col.values.data();
  }
  const arrowlite::Array &col = chunk.batch->Column(ref.index);
  if (col.null_count() != 0) null_sources->push_back(&col);
  return col.buffer(0)->data_as<double>();
}

inline BoundExpr Bind(const Expr &expr, const Chunk &chunk) {
  BoundExpr bound;
  bound.kind = expr.kind;
  bound.a = BindColumn(expr.a, chunk, &bound.null_sources);
  if (expr.kind != Expr::Kind::kColumn) bound.b = BindColumn(expr.b, chunk, &bound.null_sources);
  if (expr.kind == Expr::Kind::kDiscountedTaxed) {
    bound.c = BindColumn(expr.c, chunk, &bound.null_sources);
  }
  return bound;
}

}  // namespace mainline::execution::op
