#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "common/worker_pool.h"
#include "execution/operators/operator.h"

namespace mainline::execution::op {

/// One aggregate of an AggregateOp, as data.
struct AggSpec {
  enum class Kind : uint8_t {
    kSum,         ///< double sum of `expr` over qualifying rows/matches
    kCount,       ///< number of qualifying rows/matches (COUNT(*))
    kSumPayload,  ///< integer sum of the join payload (downstream of a probe)
    kMin,         ///< running minimum of `expr`
    kMax,         ///< running maximum of `expr`
  };

  Kind kind = Kind::kCount;
  Expr expr;  ///< input of kSum/kMin/kMax; unused otherwise
  /// kSum only: accumulate a match only when its join payload is non-zero —
  /// SQL's `SUM(x) FILTER (WHERE <payload bit>)`, the shape of Q14's promo
  /// revenue. Requires a probe upstream.
  bool payload_gate = false;

  static AggSpec Sum(Expr expr, bool payload_gate = false) {
    AggSpec a;
    a.kind = Kind::kSum;
    a.expr = expr;
    a.payload_gate = payload_gate;
    return a;
  }
  static AggSpec Count() {
    AggSpec a;
    a.kind = Kind::kCount;
    return a;
  }
  static AggSpec SumPayload() {
    AggSpec a;
    a.kind = Kind::kSumPayload;
    return a;
  }
  static AggSpec Min(Expr expr) {
    AggSpec a;
    a.kind = Kind::kMin;
    a.expr = expr;
    return a;
  }
  static AggSpec Max(Expr expr) {
    AggSpec a;
    a.kind = Kind::kMax;
    a.expr = expr;
    return a;
  }
};

/// One aggregate's accumulator/result: `f64` for kSum/kMin/kMax, `u64` for
/// kCount/kSumPayload.
struct AggValue {
  double f64 = 0;
  uint64_t u64 = 0;
};

/// One result group: the group-by key values (empty for an ungrouped
/// aggregate) and one AggValue per AggSpec, in spec order.
struct ResultRow {
  std::vector<std::string> keys;
  std::vector<AggValue> values;
};

/// Grouped or ungrouped aggregation sink — the canonical per-block-ordinal
/// reduction of tpch_queries.h as an operator: Push accumulates one block's
/// partial (groups discovered in row/match order, each accumulator advanced
/// row-at-a-time), and Finish folds the partials into the final result in
/// block order, one addition per aggregate per (block, group). That fixed
/// reduction-tree shape is what makes a plan's floating-point result
/// bit-identical to the scalar tuple-at-a-time reference at any worker
/// count.
///
/// Group-by columns are batch indices of string columns (at most two —
/// enough for every TPC-H shape shipped so far). Dictionary-encoded batches
/// resolve groups by code (pair-coded for two columns) without touching the
/// strings in the loop. Group values must be non-null. An ungrouped
/// aggregate always produces exactly one result row even when nothing
/// qualified — sums and counts at zero, kMin/kMax at their identities
/// (+inf/-inf; pair them with a kCount to distinguish "empty" from data). A
/// grouped aggregate produces one row per discovered group, sorted
/// lexicographically by keys.
class AggregateOp final : public Operator {
 public:
  AggregateOp(std::vector<uint16_t> group_cols, std::vector<AggSpec> aggs);

  void Prepare(size_t num_blocks) override {
    partials_.assign(num_blocks, {});
    result_.clear();
  }

  void Push(Chunk *chunk) override;

  std::string Label() const override { return "Aggregate"; }

  void Finish(common::WorkerPool *pool) override;

  /// Final rows; valid once the plan has Run.
  const std::vector<ResultRow> &Result() const { return result_; }

 private:
  /// A group's accumulators inside one block partial (or the global merge).
  struct GroupAcc {
    std::vector<std::string> keys;
    std::vector<AggValue> values;
  };
  /// One block's groups, in discovery order.
  using Partial = std::vector<GroupAcc>;

  class Resolver;

  GroupAcc NewGroup(std::vector<std::string> keys) const;
  void AccumulateRow(GroupAcc *acc, const std::vector<BoundExpr> &bound, uint32_t row,
                     uint64_t payload) const;
  void UngroupedPush(Chunk *chunk, const std::vector<BoundExpr> &bound);

  static uint32_t FindOrAddGroup(Partial *partial, const std::vector<std::string> &keys,
                                 const AggregateOp &op);

  std::vector<uint16_t> group_cols_;
  std::vector<AggSpec> aggs_;
  bool needs_payload_ = false;
  std::vector<Partial> partials_;
  std::vector<ResultRow> result_;
};

}  // namespace mainline::execution::op
