#include "common/worker_pool.h"
#include "arrowlite/array.h"
#include "execution/operators/topk_op.h"

#include <algorithm>
#include <bit>

namespace mainline::execution::op {

namespace {

/// One sort key or output column bound against a chunk: the raw column
/// pointer (or bound expression) plus the null source, resolved once per
/// Push so the per-candidate loop never re-dispatches.
struct BoundInput {
  const arrowlite::Array *array = nullptr;  // column kinds; null for payload
  BoundExpr expr;                           // expression kinds
  bool array_has_nulls = false;
};

BoundInput BindU32(const Chunk &chunk, uint16_t col) {
  BoundInput b;
  b.array = &chunk.batch->Column(col);
  b.array_has_nulls = b.array->null_count() != 0;
  return b;
}

}  // namespace

void TopKOp::Push(Chunk *chunk) {
  if (k_ == 0) return;
  std::vector<Item> *heap = &per_block_[chunk->block_ordinal];
  const auto comp = [this](const Item &a, const Item &b) { return Better(a, b); };

  // Bind every sort key and output column once for this block.
  std::array<BoundInput, kMaxSortKeys> bound_keys;
  for (size_t i = 0; i < keys_.size(); i++) {
    switch (keys_[i].source) {
      case SortKey::Source::kMatchPayloadF64:
        MAINLINE_ASSERT(chunk->probed, "a payload sort key needs a probe upstream");
        break;
      case SortKey::Source::kU32Column:
        bound_keys[i] = BindU32(*chunk, keys_[i].col);
        break;
      case SortKey::Source::kExpr:
        bound_keys[i].expr = Bind(keys_[i].expr, *chunk);
        break;
    }
  }
  std::vector<BoundInput> bound_outputs(outputs_.size());
  for (size_t i = 0; i < outputs_.size(); i++) {
    switch (outputs_[i].kind) {
      case OutputCol::Kind::kMatchPayloadF64:
        MAINLINE_ASSERT(chunk->probed, "a payload output needs a probe upstream");
        break;
      case OutputCol::Kind::kExpr:
        bound_outputs[i].expr = Bind(outputs_[i].expr, *chunk);
        break;
      default:
        bound_outputs[i].array = &chunk->batch->Column(outputs_[i].col);
        break;
    }
  }

  const auto materialize = [&](uint32_t row, uint64_t payload) {
    TopKRow out;
    out.cols.resize(outputs_.size());
    for (size_t i = 0; i < outputs_.size(); i++) {
      TopKValue *value = &out.cols[i];
      const BoundInput &bound = bound_outputs[i];
      switch (outputs_[i].kind) {
        case OutputCol::Kind::kInt64Column:
          value->i64 = bound.array->buffer(0)->data_as<int64_t>()[row];
          break;
        case OutputCol::Kind::kInt32Column:
          value->i64 = bound.array->buffer(0)->data_as<int32_t>()[row];
          break;
        case OutputCol::Kind::kU32Column:
          value->i64 = bound.array->buffer(0)->data_as<uint32_t>()[row];
          break;
        case OutputCol::Kind::kMatchPayloadF64:
          value->f64 = std::bit_cast<double>(payload);
          break;
        case OutputCol::Kind::kExpr:
          value->f64 = bound.expr.Eval(row);
          break;
      }
    }
    return out;
  };

  // Candidates in chunk order (the within-block scan order): the sequence
  // number advances per non-null candidate, closing the tie-break.
  uint64_t seq = 0;
  double key_values[kMaxSortKeys];
  const auto consider = [&](uint32_t row, uint64_t payload) {
    for (size_t i = 0; i < keys_.size(); i++) {
      switch (keys_[i].source) {
        case SortKey::Source::kMatchPayloadF64:
          key_values[i] = std::bit_cast<double>(payload);
          break;
        case SortKey::Source::kU32Column: {
          const BoundInput &bound = bound_keys[i];
          if (bound.array_has_nulls && bound.array->IsNull(row)) return;
          key_values[i] = bound.array->buffer(0)->data_as<uint32_t>()[row];
          break;
        }
        case SortKey::Source::kExpr: {
          const BoundExpr &expr = bound_keys[i].expr;
          if (!expr.NullFree() && expr.IsNull(row)) return;
          key_values[i] = expr.Eval(row);
          break;
        }
      }
    }
    const uint64_t my_seq = seq++;
    if (heap->size() < k_) {
      heap->push_back({{}, chunk->block_ordinal, my_seq, materialize(row, payload)});
      std::copy(key_values, key_values + keys_.size(), heap->back().keys.begin());
      std::push_heap(heap->begin(), heap->end(), comp);
    } else if (Better(key_values, chunk->block_ordinal, my_seq, heap->front())) {
      std::pop_heap(heap->begin(), heap->end(), comp);
      Item *slot = &heap->back();
      std::copy(key_values, key_values + keys_.size(), slot->keys.begin());
      slot->ordinal = chunk->block_ordinal;
      slot->seq = my_seq;
      slot->row = materialize(row, payload);
      std::push_heap(heap->begin(), heap->end(), comp);
    }
  };

  if (chunk->probed) {
    for (const JoinMatch &match : chunk->matches) consider(match.row, match.payload);
  } else {
    for (const uint32_t row : chunk->sel) consider(row, 0);
  }
}

void TopKOp::Finish(common::WorkerPool *) {
  // Fold the per-block heaps, in block order, into one k-bounded heap. The
  // (ordinal, seq) tie-break makes the winning set — and its sorted order —
  // a single total order, so the fold order cannot matter; walking ordinals
  // ascending just keeps it obviously deterministic.
  const auto comp = [this](const Item &a, const Item &b) { return Better(a, b); };
  std::vector<Item> global;
  for (std::vector<Item> &heap : per_block_) {
    for (Item &item : heap) {
      if (global.size() < k_) {
        global.push_back(std::move(item));
        std::push_heap(global.begin(), global.end(), comp);
      } else if (Better(item, global.front())) {
        std::pop_heap(global.begin(), global.end(), comp);
        global.back() = std::move(item);
        std::push_heap(global.begin(), global.end(), comp);
      }
    }
  }
  per_block_.clear();

  std::sort(global.begin(), global.end(), comp);  // best first
  result_.clear();
  result_.reserve(global.size());
  for (Item &item : global) result_.push_back(std::move(item.row));
}

}  // namespace mainline::execution::op
