#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/macros.h"
#include "common/worker_pool.h"
#include "execution/operators/operator.h"
#include "execution/table_scanner.h"
#include "catalog/sql_table.h"
#include "transaction/transaction_context.h"

namespace mainline::execution::op {

/// The source of a pipeline: wraps the dual hot/frozen access path of
/// TableScanner/ParallelTableScanner and streams one Chunk per non-empty
/// block into an operator chain — inline on the calling thread when no pool
/// is given, morsel-parallel over the pool's workers otherwise. Either way
/// the chunks carry block ordinals from the same snapshot, so sinks that
/// merge per-ordinal partials in block order produce identical results.
///
/// Chunks are pooled across blocks (a scan reuses at most one chunk per
/// worker), so steady-state per-block cost is re-initializing the selection
/// vector, not allocating one.
class ScanSource {
 public:
  /// \param table table to scan
  /// \param projection schema column positions, sorted ascending and
  ///        duplicate-free (catalog::Schema::ResolveColumns produces this)
  ScanSource(catalog::SqlTable *table, std::vector<uint16_t> projection)
      : table_(table), projection_(std::move(projection)) {}

  DISALLOW_COPY_AND_MOVE(ScanSource)

  const std::vector<uint16_t> &Projection() const { return projection_; }

  /// \return the batch column index of schema column `schema_pos`.
  uint16_t BatchIndex(uint16_t schema_pos) const {
    return ProjectionIndexOf(projection_, schema_pos);
  }

  /// Run the scan to completion. `prepare(num_blocks)` fires once after the
  /// block list is snapshotted and before the first chunk; then every
  /// non-empty block is pushed into `root` (worker threads when `pool` has
  /// workers; the calling thread otherwise). `txn` must stay read-only for
  /// the duration (workers share it). Scan counters accumulate into `stats`
  /// (may be nullptr). When `profile` is non-null its source, block count,
  /// and this run's scan stats (alone, not accumulated) are filled in.
  void Run(transaction::TransactionContext *txn, common::WorkerPool *pool, Operator *root,
           const std::function<void(size_t num_blocks)> &prepare, ScanStats *stats,
           PipelineProfile *profile = nullptr);

 private:
  catalog::SqlTable *table_;
  std::vector<uint16_t> projection_;
};

}  // namespace mainline::execution::op
