#pragma once

#include <cstdint>
#include <vector>

#include "arrowlite/array.h"
#include "execution/column_vector_batch.h"

namespace mainline::execution::op {

/// Where a double-valued input column lives: in the scanned batch (a scan
/// projection index) or among the chunk's computed columns (a ProjectOp
/// output index). Operators address columns through ColumnRef so a plan can
/// feed an aggregate either raw block storage or a derived expression
/// without the aggregate knowing the difference.
struct ColumnRef {
  enum class Source : uint8_t { kBatch = 0, kComputed };

  Source source = Source::kBatch;
  uint16_t index = 0;

  static constexpr ColumnRef Batch(uint16_t index) { return {Source::kBatch, index}; }
  static constexpr ColumnRef Computed(uint16_t index) { return {Source::kComputed, index}; }
};

/// A double-valued row expression over up to three input columns. The forms
/// are a closed enum rather than a callback so every operator can hoist the
/// form dispatch out of its row loop: the loops that touch each row are the
/// same tight column-at-a-time code the hand-fused kernels used, which is
/// what keeps plan results bit-identical to (and as fast as) those kernels.
struct Expr {
  enum class Kind : uint8_t {
    kColumn,           ///< a
    kMul,              ///< a * b
    kDiscounted,       ///< a * (1 - b)        (extendedprice, discount)
    kDiscountedTaxed,  ///< a * (1 - b) * (1 + c)
  };

  Kind kind = Kind::kColumn;
  ColumnRef a, b, c;

  static constexpr Expr Column(ColumnRef a) { return {Kind::kColumn, a, {}, {}}; }
  static constexpr Expr Mul(ColumnRef a, ColumnRef b) { return {Kind::kMul, a, b, {}}; }
  static constexpr Expr Discounted(ColumnRef a, ColumnRef b) {
    return {Kind::kDiscounted, a, b, {}};
  }
  static constexpr Expr DiscountedTaxed(ColumnRef a, ColumnRef b, ColumnRef c) {
    return {Kind::kDiscountedTaxed, a, b, c};
  }
};

/// A ProjectOp output: one derived double per batch row (values are only
/// defined for rows that were selected when the projection ran), plus the
/// source arrays that carry nulls — consumers must treat a row as null when
/// any of those is null at that row, exactly as if they had evaluated the
/// expression themselves.
struct ComputedColumn {
  std::vector<double> values;
  std::vector<const arrowlite::Array *> null_sources;
};

}  // namespace mainline::execution::op
