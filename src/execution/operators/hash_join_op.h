#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/worker_pool.h"
#include "execution/hash_join.h"
#include "execution/operators/operator.h"

namespace mainline::execution::op {

/// How the build side derives each entry's 8-byte payload — the value every
/// probe match hands downstream. String forms classify dictionary codes once
/// per batch, so frozen build scans never touch the strings row-by-row.
struct PayloadSpec {
  enum class Kind : uint8_t {
    kInt64Column,   ///< the value of an int64 column, verbatim
    kStringIn,      ///< 1 if a string column's value is in a literal list, else 0
    kStringPrefix,  ///< 1 if a string column's value starts with a prefix, else 0
    kF64Computed,   ///< the bits of a computed (projected) double column
  };

  Kind kind = Kind::kInt64Column;
  /// Batch column for the column kinds; ColumnRef::Computed index for
  /// kF64Computed.
  uint16_t col = 0;
  std::vector<std::string> strings;

  static PayloadSpec Int64Column(uint16_t col) {
    PayloadSpec p;
    p.kind = Kind::kInt64Column;
    p.col = col;
    return p;
  }
  static PayloadSpec StringIn(uint16_t col, std::vector<std::string> values) {
    MAINLINE_ASSERT(!values.empty(), "a StringIn payload needs at least one candidate");
    PayloadSpec p;
    p.kind = Kind::kStringIn;
    p.col = col;
    p.strings = std::move(values);
    return p;
  }
  static PayloadSpec StringPrefix(uint16_t col, std::string prefix) {
    PayloadSpec p;
    p.kind = Kind::kStringPrefix;
    p.col = col;
    p.strings.push_back(std::move(prefix));
    MAINLINE_ASSERT(!p.strings.empty(), "a StringPrefix payload needs its prefix");
    return p;
  }
  /// Payload = the bits of a projected double (a ProjectOp output), so a
  /// probe can recover the exact value with a bit cast — how Q3 ships each
  /// lineitem's revenue through the join.
  static PayloadSpec F64Computed(uint16_t computed_index) {
    PayloadSpec p;
    p.kind = Kind::kF64Computed;
    p.col = computed_index;
    return p;
  }

  /// String classification for kStringIn/kStringPrefix. A spec whose string
  /// list is empty (only constructible by bypassing the factories) matches
  /// nothing — guarded here because strings.front() would be UB.
  bool Matches(std::string_view value) const;
};

/// Pipeline-breaking sink that builds a JoinHashTable: Push collects each
/// selected row's (key, payload) into a per-block-ordinal entry list, and
/// Finish scatters the lists in block order into the partitioned table
/// (parallel over the run's pool when one is available) — the same
/// three-step lock-free build as JoinHashTable::Build, so partition contents
/// and duplicate-match order stay deterministic at any worker count. Rows
/// with a null key or null payload column are dropped (SQL join semantics).
///
/// A build downstream of a probe consumes the chunk's match list instead of
/// its selection vector — one entry per match, so join multiplicity carries
/// into the new table (the bushy-plan shape: build a table from an already
/// joined stream).
///
/// The build pipeline must Run before any pipeline probing this table;
/// PhysicalPlan runs pipelines in insertion order, which PipelineBuilder
/// arranges naturally.
class HashJoinBuildOp final : public Operator {
 public:
  HashJoinBuildOp(uint16_t key_col, PayloadSpec payload)
      : key_col_(key_col), payload_(std::move(payload)) {}

  void Prepare(size_t num_blocks) override {
    per_block_.assign(num_blocks, {});
    table_ = JoinHashTable();
  }

  void Push(Chunk *chunk) override;

  std::string Label() const override { return "HashJoinBuild"; }

  void Finish(common::WorkerPool *pool) override {
    table_ = JoinHashTable::FromOrdinalLists(per_block_, pool);
    per_block_.clear();
  }

  /// The finished table; valid once this operator's pipeline has Run.
  const JoinHashTable &Table() const { return table_; }

 private:
  uint16_t key_col_;
  PayloadSpec payload_;
  std::vector<std::vector<JoinEntry>> per_block_;
  JoinHashTable table_;
};

/// What a HashJoinProbeOp emits per input (a selected row on the first
/// probe; a prior match on a chained probe).
enum class ProbeEmit : uint8_t {
  /// One JoinMatch per matching build entry, in the table's deterministic
  /// match order; the consumed match's payload rides along in
  /// JoinMatch::prior. The default, and the ordinary join shape.
  kEachMatch = 0,
  /// One JoinMatch per input whose key matches at all, with payload = the
  /// bits of the double sum of every matching entry's payload (interpreted
  /// as doubles, added in the table's deterministic match order — so the sum
  /// is bit-exact at any worker count). Inputs with no match are dropped.
  /// This folds a one-to-many join edge into its aggregate in place: Q3 sums
  /// each order's lineitem revenues during the probe, so the revenue is
  /// complete the moment the chunk reaches the Top-K sink.
  kSumPayloadF64,
};

/// Probe a HashJoinBuildOp's table with an int64 key column. On a chunk's
/// first probe the selection is turned into the chunk's match list; on a
/// chunk that was already probed (multi-way joins) the existing match list
/// is consumed instead, each prior match re-probed by its row's key with the
/// prior payload carried along — so N-way joins chain N probe operators in
/// one pipeline. Match order stays deterministic either way: inputs in
/// selection/prior order, duplicates in the table's insertion order. Only
/// chunks with at least one resulting match flow on. Null keys match
/// nothing. The probe is read-only on the shared table, so any number of
/// workers push concurrently.
class HashJoinProbeOp final : public Operator {
 public:
  HashJoinProbeOp(uint16_t key_col, const HashJoinBuildOp *build,
                  ProbeEmit emit = ProbeEmit::kEachMatch)
      : key_col_(key_col), build_(build), emit_(emit) {}

  void Push(Chunk *chunk) override;

  std::string Label() const override { return "HashJoinProbe"; }

 private:
  uint16_t key_col_;
  const HashJoinBuildOp *build_;
  ProbeEmit emit_;
};

}  // namespace mainline::execution::op
