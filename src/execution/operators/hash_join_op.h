#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "execution/hash_join.h"
#include "execution/operators/operator.h"

namespace mainline::execution::op {

/// How the build side derives each entry's 8-byte payload — the value every
/// probe match hands downstream. String forms classify dictionary codes once
/// per batch, so frozen build scans never touch the strings row-by-row.
struct PayloadSpec {
  enum class Kind : uint8_t {
    kInt64Column,   ///< the value of an int64 column, verbatim
    kStringIn,      ///< 1 if a string column's value is in a literal list, else 0
    kStringPrefix,  ///< 1 if a string column's value starts with a prefix, else 0
  };

  Kind kind = Kind::kInt64Column;
  uint16_t col = 0;
  std::vector<std::string> strings;

  static PayloadSpec Int64Column(uint16_t col) {
    PayloadSpec p;
    p.kind = Kind::kInt64Column;
    p.col = col;
    return p;
  }
  static PayloadSpec StringIn(uint16_t col, std::vector<std::string> values) {
    PayloadSpec p;
    p.kind = Kind::kStringIn;
    p.col = col;
    p.strings = std::move(values);
    return p;
  }
  static PayloadSpec StringPrefix(uint16_t col, std::string prefix) {
    PayloadSpec p;
    p.kind = Kind::kStringPrefix;
    p.col = col;
    p.strings.push_back(std::move(prefix));
    return p;
  }

  bool Matches(std::string_view value) const;
};

/// Pipeline-breaking sink that builds a JoinHashTable: Push collects each
/// selected row's (key, payload) into a per-block-ordinal entry list, and
/// Finish scatters the lists in block order into the partitioned table
/// (parallel over the run's pool when one is available) — the same
/// three-step lock-free build as JoinHashTable::Build, so partition contents
/// and duplicate-match order stay deterministic at any worker count. Rows
/// with a null key or null payload column are dropped (SQL join semantics).
///
/// The build pipeline must Run before any pipeline probing this table;
/// PhysicalPlan runs pipelines in insertion order, which PipelineBuilder
/// arranges naturally.
class HashJoinBuildOp final : public Operator {
 public:
  HashJoinBuildOp(uint16_t key_col, PayloadSpec payload)
      : key_col_(key_col), payload_(std::move(payload)) {}

  void Prepare(size_t num_blocks) override {
    per_block_.assign(num_blocks, {});
    table_ = JoinHashTable();
  }

  void Push(Chunk *chunk) override;

  void Finish(common::WorkerPool *pool) override {
    table_ = JoinHashTable::FromOrdinalLists(per_block_, pool);
    per_block_.clear();
  }

  /// The finished table; valid once this operator's pipeline has Run.
  const JoinHashTable &Table() const { return table_; }

 private:
  uint16_t key_col_;
  PayloadSpec payload_;
  std::vector<std::vector<JoinEntry>> per_block_;
  JoinHashTable table_;
};

/// Probe a HashJoinBuildOp's table with an int64 key column: the selection
/// is turned into the chunk's match list — (row, payload) per match, rows
/// repeated for duplicate build keys, in the table's deterministic match
/// order — and only chunks with at least one match flow on. Null keys match
/// nothing. The probe is read-only on the shared table, so any number of
/// workers push concurrently.
class HashJoinProbeOp final : public Operator {
 public:
  HashJoinProbeOp(uint16_t key_col, const HashJoinBuildOp *build)
      : key_col_(key_col), build_(build) {}

  void Push(Chunk *chunk) override {
    MAINLINE_ASSERT(!chunk->probed, "one probe per pipeline (multi-way joins are future work)");
    chunk->probed = true;
    const JoinHashTable &table = build_->Table();
    if (chunk->sel.Empty() || table.Empty()) return;
    table.ProbeSelected(chunk->batch->Column(key_col_), chunk->sel,
                        [chunk](uint32_t row, uint64_t payload) {
                          chunk->matches.push_back({row, payload});
                        });
    if (chunk->matches.empty()) return;
    PushNext(chunk);
  }

 private:
  uint16_t key_col_;
  const HashJoinBuildOp *build_;
};

}  // namespace mainline::execution::op
