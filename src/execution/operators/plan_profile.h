#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "execution/table_scanner.h"
#include "metrics/metrics_registry.h"

namespace mainline::execution::op {

/// What one operator did during one plan run. Row counts are merged from
/// per-block-ordinal slots in ordinal order, so they are identical at any
/// worker count; elapsed times are wall-clock measurements and naturally
/// vary run to run.
struct OperatorProfile {
  std::string label;
  uint64_t rows_in = 0;   ///< rows entering Push, summed over chunks
  uint64_t rows_out = 0;  ///< rows the next operator received (0 for sinks)
  uint64_t chunks = 0;    ///< Push invocations (non-empty blocks that reached it)
  /// Time inside this operator's Push *including* everything it pushed
  /// downstream, summed across workers (so it can exceed wall time).
  uint64_t inclusive_ns = 0;
  /// inclusive_ns minus the successor's inclusive_ns: time attributable to
  /// this operator alone.
  uint64_t exclusive_ns = 0;

  double Selectivity() const {
    return rows_in == 0 ? 0.0 : static_cast<double>(rows_out) / static_cast<double>(rows_in);
  }
};

/// One pipeline's run: its scan source plus the operator chain it fed.
struct PipelineProfile {
  std::string source;      ///< e.g. "table#3"
  size_t num_blocks = 0;   ///< block-list snapshot size (ordinal space)
  ScanStats scan;          ///< this run's scan contribution only
  uint64_t wall_ns = 0;    ///< driving-thread wall time: scan + finish
  uint64_t finish_ns = 0;  ///< Finish phase alone (merges, sorts)
  std::vector<OperatorProfile> operators;
};

/// The full EXPLAIN ANALYZE record for one PhysicalPlan::Run.
struct PlanProfile {
  std::vector<PipelineProfile> pipelines;

  /// Human-readable plan tree with per-operator rows/selectivity/time — the
  /// EXPLAIN ANALYZE rendering.
  std::string ToString() const;

  /// Machine-readable form, embedded by the bench binaries into their
  /// METRICS_JSON report line.
  std::string ToJson() const;
};

/// Per-run recorder attached to one operator while profiling is on. Row
/// counts go into per-ordinal slots — each ordinal is owned by exactly one
/// worker at a time, and the pool wait orders those plain writes before the
/// driving thread reads them (the same discipline sink operators use for
/// their partials). Elapsed time goes into per-shard atomic slots keyed by
/// metrics::ThreadShardIndex, so concurrent workers never contend.
class OperatorProfiler {
 public:
  void Prepare(size_t num_blocks) {
    rows_.assign(num_blocks, 0);
    pushes_.assign(num_blocks, 0);
    // relaxed: reset runs before any worker is handed the profiler; the pool
    // submit that starts them publishes these stores.
    for (Shard &shard : shards_) shard.ns.store(0, std::memory_order_relaxed);
  }

  /// Worker thread, before Push: `rows` entering for this ordinal.
  void RecordRows(size_t ordinal, uint64_t rows) {
    rows_[ordinal] += rows;
    pushes_[ordinal]++;
  }

  /// Worker thread, after Push returns: nanoseconds spent (inclusive).
  void RecordElapsed(uint64_t ns) {
    // relaxed: per-shard tally; the pool quiesce (WaitUntilAllFinished)
    // orders every increment before the driving thread aggregates.
    shards_[metrics::ThreadShardIndex()].ns.fetch_add(ns, std::memory_order_relaxed);
  }

  // Driving-thread aggregation (after the pool has quiesced).

  uint64_t TotalRows() const {
    uint64_t total = 0;
    for (const uint64_t rows : rows_) total += rows;
    return total;
  }

  uint64_t TotalChunks() const {
    uint64_t total = 0;
    for (const uint64_t pushes : pushes_) total += pushes;
    return total;
  }

  uint64_t TotalElapsedNs() const {
    uint64_t total = 0;
    // relaxed: read only after the pool has quiesced, which already
    // happens-before this thread; no further ordering needed.
    for (const Shard &shard : shards_) total += shard.ns.load(std::memory_order_relaxed);
    return total;
  }

 private:
  std::vector<uint64_t> rows_;
  std::vector<uint64_t> pushes_;
  struct alignas(64) Shard {
    std::atomic<uint64_t> ns{0};
  };
  Shard shards_[metrics::kNumShards];
};

}  // namespace mainline::execution::op
