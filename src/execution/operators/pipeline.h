#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "catalog/sql_table.h"
#include "common/timer.h"
#include "common/worker_pool.h"
#include "execution/operators/aggregate_op.h"
#include "execution/operators/filter_op.h"
#include "execution/operators/hash_join_op.h"
#include "execution/operators/project_op.h"
#include "execution/operators/scan_source.h"
#include "execution/operators/topk_op.h"
#include "transaction/transaction_context.h"

namespace mainline::execution::op {

/// One push-based pipeline: a ScanSource feeding a chain of operators. The
/// pipeline owns its operators; Add wires each new operator as the previous
/// one's successor, so construction order is chain order.
class Pipeline {
 public:
  Pipeline(catalog::SqlTable *table, std::vector<uint16_t> projection)
      : source_(table, std::move(projection)) {}

  DISALLOW_COPY_AND_MOVE(Pipeline)

  /// Construct an operator at the end of the chain. \return the operator,
  /// non-owning (handy for keeping a handle to a sink).
  template <typename OpT, typename... Args>
  OpT *Add(Args &&...args) {
    auto owned = std::make_unique<OpT>(std::forward<Args>(args)...);
    OpT *raw = owned.get();
    if (!ops_.empty()) ops_.back()->SetNext(raw);
    ops_.push_back(std::move(owned));
    return raw;
  }

  ScanSource &Source() { return source_; }

  /// Run to completion: Prepare every operator, stream the scan, then Finish
  /// in chain order. Inline when `pool` is null, morsel-parallel otherwise.
  /// When `profile` is non-null the run is profiled into it: per-operator
  /// rows/chunks/time recorders are attached for this run only (detached —
  /// back to a single null check per chunk — when `profile` is null).
  void Run(transaction::TransactionContext *txn, common::WorkerPool *pool, ScanStats *stats,
           PipelineProfile *profile = nullptr) {
    MAINLINE_ASSERT(!ops_.empty(), "a pipeline needs at least one operator");
    if (profile != nullptr && profilers_.size() != ops_.size()) {
      profilers_.clear();
      for (size_t i = 0; i < ops_.size(); i++) {
        profilers_.push_back(std::make_unique<OperatorProfiler>());
      }
    }
    for (size_t i = 0; i < ops_.size(); i++) {
      ops_[i]->SetProfiler(profile == nullptr ? nullptr : profilers_[i].get());
    }

    const common::Timer wall_timer;
    source_.Run(
        txn, pool, ops_.front().get(),
        [this, profile](size_t num_blocks) {
          for (const auto &op : ops_) op->Prepare(num_blocks);
          if (profile != nullptr) {
            for (const auto &profiler : profilers_) profiler->Prepare(num_blocks);
          }
        },
        stats, profile);
    const common::Timer finish_timer;
    for (const auto &op : ops_) op->Finish(pool);

    if (profile != nullptr) {
      profile->finish_ns = finish_timer.Elapsed<std::chrono::nanoseconds>();
      profile->wall_ns = wall_timer.Elapsed<std::chrono::nanoseconds>();
      profile->operators.clear();
      for (size_t i = 0; i < ops_.size(); i++) {
        OperatorProfile record;
        record.label = ops_[i]->Label();
        record.rows_in = profilers_[i]->TotalRows();
        // An operator's output is exactly what the next operator saw; the
        // chain's last operator is a sink.
        record.rows_out = i + 1 < ops_.size() ? profilers_[i + 1]->TotalRows() : 0;
        record.chunks = profilers_[i]->TotalChunks();
        record.inclusive_ns = profilers_[i]->TotalElapsedNs();
        const uint64_t next_ns =
            i + 1 < ops_.size() ? profilers_[i + 1]->TotalElapsedNs() : 0;
        // Saturate: clock granularity can make a nested measurement read a
        // hair longer than its enclosing one.
        record.exclusive_ns =
            record.inclusive_ns > next_ns ? record.inclusive_ns - next_ns : 0;
        profile->operators.push_back(std::move(record));
      }
    }
  }

 private:
  ScanSource source_;
  std::vector<std::unique_ptr<Operator>> ops_;
  /// One recorder per operator, created on the first profiled Run and reused
  /// (Prepare resets them) — unprofiled runs never allocate these.
  std::vector<std::unique_ptr<OperatorProfiler>> profilers_;
};

/// A query as data: pipelines executed in insertion order (so a hash-join
/// build pipeline completes before the pipeline probing its table starts).
/// Plans are reusable — Run again for a fresh execution, against the same or
/// a different snapshot — but a single Run must finish before the next
/// begins.
class PhysicalPlan {
 public:
  PhysicalPlan() = default;

  DISALLOW_COPY_AND_MOVE(PhysicalPlan)

  Pipeline *AddPipeline(catalog::SqlTable *table, std::vector<uint16_t> projection) {
    pipelines_.push_back(std::make_unique<Pipeline>(table, std::move(projection)));
    return pipelines_.back().get();
  }

  /// Execute every pipeline in order. `txn` must stay read-only while the
  /// plan runs; a null (or zero-worker) pool degrades every pipeline to an
  /// inline scan. `stats` accumulates all pipelines' scan counters. With
  /// profiling on (SetProfiling), the run also records a PlanProfile —
  /// results are bit-identical either way.
  void Run(transaction::TransactionContext *txn, common::WorkerPool *pool = nullptr,
           ScanStats *stats = nullptr) {
    if (!profiling_) {
      for (const auto &pipeline : pipelines_) pipeline->Run(txn, pool, stats);
      return;
    }
    profile_.pipelines.clear();
    profile_.pipelines.reserve(pipelines_.size());
    for (const auto &pipeline : pipelines_) {
      pipeline->Run(txn, pool, stats, &profile_.pipelines.emplace_back());
    }
  }

  /// Toggle per-operator profiling for subsequent Runs (default off).
  void SetProfiling(bool on) { profiling_ = on; }
  bool Profiling() const { return profiling_; }

  /// The last profiled Run's record (empty if none yet).
  const PlanProfile &Profile() const { return profile_; }

  /// EXPLAIN ANALYZE rendering of the last profiled Run.
  std::string Explain() const { return profile_.ToString(); }

  /// Machine-readable form of the last profiled Run.
  std::string ProfileJson() const { return profile_.ToJson(); }

 private:
  std::vector<std::unique_ptr<Pipeline>> pipelines_;
  bool profiling_ = false;
  PlanProfile profile_;
};

/// Fluent sugar for wiring a PhysicalPlan: Scan starts a pipeline, the
/// chainable calls append operators to it, and the sink calls (JoinBuild,
/// Aggregate) return the operator handle the caller reads results from.
///
///   op::PhysicalPlan plan;
///   op::PipelineBuilder builder(&plan);
///   builder.Scan(orders, {O_ORDERKEY, O_ORDERPRIORITY});
///   auto *build = builder.JoinBuild(0, op::PayloadSpec::StringIn(1, {"1-URGENT", "2-HIGH"}));
///   builder.Scan(lineitem, projection).Filter({...}).JoinProbe(key, build);
///   auto *agg = builder.Aggregate({mode_col}, {op::AggSpec::SumPayload(), op::AggSpec::Count()});
///   plan.Run(txn, pool, &stats);
class PipelineBuilder {
 public:
  explicit PipelineBuilder(PhysicalPlan *plan) : plan_(plan) {}

  PipelineBuilder &Scan(catalog::SqlTable *table, std::vector<uint16_t> projection) {
    current_ = plan_->AddPipeline(table, std::move(projection));
    return *this;
  }

  PipelineBuilder &Filter(std::vector<Predicate> predicates) {
    Current()->Add<FilterOp>(std::move(predicates));
    return *this;
  }

  PipelineBuilder &Project(std::vector<Expr> exprs) {
    Current()->Add<ProjectOp>(std::move(exprs));
    return *this;
  }

  HashJoinBuildOp *JoinBuild(uint16_t key_col, PayloadSpec payload) {
    return Current()->Add<HashJoinBuildOp>(key_col, std::move(payload));
  }

  PipelineBuilder &JoinProbe(uint16_t key_col, const HashJoinBuildOp *build,
                             ProbeEmit emit = ProbeEmit::kEachMatch) {
    Current()->Add<HashJoinProbeOp>(key_col, build, emit);
    return *this;
  }

  AggregateOp *Aggregate(std::vector<uint16_t> group_cols, std::vector<AggSpec> aggs) {
    return Current()->Add<AggregateOp>(std::move(group_cols), std::move(aggs));
  }

  TopKOp *TopK(uint32_t k, std::vector<SortKey> keys, std::vector<OutputCol> outputs) {
    return Current()->Add<TopKOp>(k, std::move(keys), std::move(outputs));
  }

 private:
  Pipeline *Current() {
    MAINLINE_ASSERT(current_ != nullptr, "call Scan before adding operators");
    return current_;
  }

  PhysicalPlan *plan_;
  Pipeline *current_ = nullptr;
};

}  // namespace mainline::execution::op
