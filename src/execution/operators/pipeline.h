#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "execution/operators/aggregate_op.h"
#include "execution/operators/filter_op.h"
#include "execution/operators/hash_join_op.h"
#include "execution/operators/project_op.h"
#include "execution/operators/scan_source.h"
#include "execution/operators/topk_op.h"

namespace mainline::execution::op {

/// One push-based pipeline: a ScanSource feeding a chain of operators. The
/// pipeline owns its operators; Add wires each new operator as the previous
/// one's successor, so construction order is chain order.
class Pipeline {
 public:
  Pipeline(storage::SqlTable *table, std::vector<uint16_t> projection)
      : source_(table, std::move(projection)) {}

  DISALLOW_COPY_AND_MOVE(Pipeline)

  /// Construct an operator at the end of the chain. \return the operator,
  /// non-owning (handy for keeping a handle to a sink).
  template <typename OpT, typename... Args>
  OpT *Add(Args &&...args) {
    auto owned = std::make_unique<OpT>(std::forward<Args>(args)...);
    OpT *raw = owned.get();
    if (!ops_.empty()) ops_.back()->SetNext(raw);
    ops_.push_back(std::move(owned));
    return raw;
  }

  ScanSource &Source() { return source_; }

  /// Run to completion: Prepare every operator, stream the scan, then Finish
  /// in chain order. Inline when `pool` is null, morsel-parallel otherwise.
  void Run(transaction::TransactionContext *txn, common::WorkerPool *pool, ScanStats *stats) {
    MAINLINE_ASSERT(!ops_.empty(), "a pipeline needs at least one operator");
    source_.Run(
        txn, pool, ops_.front().get(),
        [this](size_t num_blocks) {
          for (const auto &op : ops_) op->Prepare(num_blocks);
        },
        stats);
    for (const auto &op : ops_) op->Finish(pool);
  }

 private:
  ScanSource source_;
  std::vector<std::unique_ptr<Operator>> ops_;
};

/// A query as data: pipelines executed in insertion order (so a hash-join
/// build pipeline completes before the pipeline probing its table starts).
/// Plans are reusable — Run again for a fresh execution, against the same or
/// a different snapshot — but a single Run must finish before the next
/// begins.
class PhysicalPlan {
 public:
  PhysicalPlan() = default;

  DISALLOW_COPY_AND_MOVE(PhysicalPlan)

  Pipeline *AddPipeline(storage::SqlTable *table, std::vector<uint16_t> projection) {
    pipelines_.push_back(std::make_unique<Pipeline>(table, std::move(projection)));
    return pipelines_.back().get();
  }

  /// Execute every pipeline in order. `txn` must stay read-only while the
  /// plan runs; a null (or zero-worker) pool degrades every pipeline to an
  /// inline scan. `stats` accumulates all pipelines' scan counters.
  void Run(transaction::TransactionContext *txn, common::WorkerPool *pool = nullptr,
           ScanStats *stats = nullptr) {
    for (const auto &pipeline : pipelines_) pipeline->Run(txn, pool, stats);
  }

 private:
  std::vector<std::unique_ptr<Pipeline>> pipelines_;
};

/// Fluent sugar for wiring a PhysicalPlan: Scan starts a pipeline, the
/// chainable calls append operators to it, and the sink calls (JoinBuild,
/// Aggregate) return the operator handle the caller reads results from.
///
///   op::PhysicalPlan plan;
///   op::PipelineBuilder builder(&plan);
///   builder.Scan(orders, {O_ORDERKEY, O_ORDERPRIORITY});
///   auto *build = builder.JoinBuild(0, op::PayloadSpec::StringIn(1, {"1-URGENT", "2-HIGH"}));
///   builder.Scan(lineitem, projection).Filter({...}).JoinProbe(key, build);
///   auto *agg = builder.Aggregate({mode_col}, {op::AggSpec::SumPayload(), op::AggSpec::Count()});
///   plan.Run(txn, pool, &stats);
class PipelineBuilder {
 public:
  explicit PipelineBuilder(PhysicalPlan *plan) : plan_(plan) {}

  PipelineBuilder &Scan(storage::SqlTable *table, std::vector<uint16_t> projection) {
    current_ = plan_->AddPipeline(table, std::move(projection));
    return *this;
  }

  PipelineBuilder &Filter(std::vector<Predicate> predicates) {
    Current()->Add<FilterOp>(std::move(predicates));
    return *this;
  }

  PipelineBuilder &Project(std::vector<Expr> exprs) {
    Current()->Add<ProjectOp>(std::move(exprs));
    return *this;
  }

  HashJoinBuildOp *JoinBuild(uint16_t key_col, PayloadSpec payload) {
    return Current()->Add<HashJoinBuildOp>(key_col, std::move(payload));
  }

  PipelineBuilder &JoinProbe(uint16_t key_col, const HashJoinBuildOp *build,
                             ProbeEmit emit = ProbeEmit::kEachMatch) {
    Current()->Add<HashJoinProbeOp>(key_col, build, emit);
    return *this;
  }

  AggregateOp *Aggregate(std::vector<uint16_t> group_cols, std::vector<AggSpec> aggs) {
    return Current()->Add<AggregateOp>(std::move(group_cols), std::move(aggs));
  }

  TopKOp *TopK(uint32_t k, std::vector<SortKey> keys, std::vector<OutputCol> outputs) {
    return Current()->Add<TopKOp>(k, std::move(keys), std::move(outputs));
  }

 private:
  Pipeline *Current() {
    MAINLINE_ASSERT(current_ != nullptr, "call Scan before adding operators");
    return current_;
  }

  PhysicalPlan *plan_;
  Pipeline *current_ = nullptr;
};

}  // namespace mainline::execution::op
