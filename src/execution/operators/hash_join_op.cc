#include "arrowlite/type.h"
#include "arrowlite/array.h"
#include "execution/operators/hash_join_op.h"

#include <bit>

namespace mainline::execution::op {

bool PayloadSpec::Matches(std::string_view value) const {
  if (strings.empty()) return false;  // see the header: front() would be UB
  if (kind == Kind::kStringPrefix) return value.starts_with(strings.front());
  for (const std::string &candidate : strings) {
    if (value == candidate) return true;
  }
  return false;
}

void HashJoinBuildOp::Push(Chunk *chunk) {
  const arrowlite::Array &keys = chunk->batch->Column(key_col_);
  const int64_t *key_values = keys.buffer(0)->data_as<int64_t>();
  std::vector<JoinEntry> *out = &per_block_[chunk->block_ordinal];
  out->reserve(out->size() + (chunk->probed ? chunk->matches.size() : chunk->sel.Size()));

  // One entry per input — a selected row, or a join match when this build
  // consumes an already probed stream (multiplicity carries through).
  // `payload_is_null` covers the payload source's nulls; null keys or null
  // payloads drop the input.
  const auto emit = [&](auto &&payload_of_row, auto &&payload_is_null, bool payload_nulls) {
    const bool has_nulls = keys.null_count() != 0 || payload_nulls;
    const auto body = [&](uint32_t row) {
      if (has_nulls && (keys.IsNull(row) || payload_is_null(row))) return;
      out->push_back({key_values[row], payload_of_row(row)});
    };
    if (chunk->probed) {
      for (const JoinMatch &match : chunk->matches) body(match.row);
    } else {
      for (const uint32_t row : chunk->sel) body(row);
    }
  };

  switch (payload_.kind) {
    case PayloadSpec::Kind::kInt64Column: {
      const arrowlite::Array &payload_col = chunk->batch->Column(payload_.col);
      const int64_t *values = payload_col.buffer(0)->data_as<int64_t>();
      emit([values](uint32_t row) { return static_cast<uint64_t>(values[row]); },
           [&](uint32_t row) { return payload_col.IsNull(row); },
           payload_col.null_count() != 0);
      break;
    }
    case PayloadSpec::Kind::kStringIn:
    case PayloadSpec::Kind::kStringPrefix: {
      const arrowlite::Array &payload_col = chunk->batch->Column(payload_.col);
      const auto is_null = [&](uint32_t row) { return payload_col.IsNull(row); };
      const bool payload_nulls = payload_col.null_count() != 0;
      if (payload_col.type() == arrowlite::Type::kDictionary) {
        // Classify each distinct string once, then emit by code.
        const arrowlite::Array &dict = *payload_col.dictionary();
        std::vector<uint64_t> payload_of_code(static_cast<size_t>(dict.length()));
        for (int64_t code = 0; code < dict.length(); code++) {
          payload_of_code[static_cast<size_t>(code)] =
              payload_.Matches(dict.GetString(code)) ? 1 : 0;
        }
        const int32_t *codes = payload_col.buffer(0)->data_as<int32_t>();
        emit([&](uint32_t row) { return payload_of_code[static_cast<size_t>(codes[row])]; },
             is_null, payload_nulls);
      } else {
        emit(
            [&](uint32_t row) {
              return payload_.Matches(payload_col.GetString(row)) ? uint64_t{1} : uint64_t{0};
            },
            is_null, payload_nulls);
      }
      break;
    }
    case PayloadSpec::Kind::kF64Computed: {
      MAINLINE_ASSERT(payload_.col < chunk->num_computed,
                      "computed payload column not projected yet");
      const ComputedColumn &col = chunk->computed[payload_.col];
      const double *values = col.values.data();
      emit([values](uint32_t row) { return std::bit_cast<uint64_t>(values[row]); },
           [&](uint32_t row) {
             for (const arrowlite::Array *source : col.null_sources) {
               if (source->IsNull(row)) return true;
             }
             return false;
           },
           !col.null_sources.empty());
      break;
    }
  }
}

void HashJoinProbeOp::Push(Chunk *chunk) {
  const JoinHashTable &table = build_->Table();
  if (!chunk->probed) {
    chunk->probed = true;
    if (chunk->sel.Empty() || table.Empty()) return;
    const arrowlite::Array &keys = chunk->batch->Column(key_col_);
    if (emit_ == ProbeEmit::kEachMatch) {
      table.ProbeSelected(keys, chunk->sel, [chunk](uint32_t row, uint64_t payload) {
        chunk->matches.push_back({row, payload});
      });
    } else {
      const int64_t *values = keys.buffer(0)->data_as<int64_t>();
      const bool has_nulls = keys.null_count() != 0;
      for (const uint32_t row : chunk->sel) {
        if (has_nulls && keys.IsNull(row)) continue;
        double sum = 0;
        bool matched = false;
        table.ForEachMatch(values[row], [&](uint64_t payload) {
          sum += std::bit_cast<double>(payload);
          matched = true;
        });
        if (matched) chunk->matches.push_back({row, std::bit_cast<uint64_t>(sum)});
      }
    }
  } else {
    // Chained probe: consume the prior probe's matches, carrying each one's
    // payload along in JoinMatch::prior. Input order (prior matches) times
    // the table's insertion order keeps the new list deterministic.
    std::vector<JoinMatch> prior;
    prior.swap(chunk->matches);
    if (prior.empty() || table.Empty()) return;
    const arrowlite::Array &keys = chunk->batch->Column(key_col_);
    const int64_t *values = keys.buffer(0)->data_as<int64_t>();
    const bool has_nulls = keys.null_count() != 0;
    for (const JoinMatch &match : prior) {
      if (has_nulls && keys.IsNull(match.row)) continue;
      if (emit_ == ProbeEmit::kEachMatch) {
        table.ForEachMatch(values[match.row], [&](uint64_t payload) {
          chunk->matches.push_back({match.row, payload, match.payload});
        });
      } else {
        double sum = 0;
        bool matched = false;
        table.ForEachMatch(values[match.row], [&](uint64_t payload) {
          sum += std::bit_cast<double>(payload);
          matched = true;
        });
        if (matched) {
          chunk->matches.push_back({match.row, std::bit_cast<uint64_t>(sum), match.payload});
        }
      }
    }
  }
  if (chunk->matches.empty()) return;
  PushNext(chunk);
}

}  // namespace mainline::execution::op
