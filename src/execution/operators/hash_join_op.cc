#include "execution/operators/hash_join_op.h"

namespace mainline::execution::op {

bool PayloadSpec::Matches(std::string_view value) const {
  if (kind == Kind::kStringPrefix) return value.starts_with(strings.front());
  for (const std::string &candidate : strings) {
    if (value == candidate) return true;
  }
  return false;
}

void HashJoinBuildOp::Push(Chunk *chunk) {
  MAINLINE_ASSERT(!chunk->probed, "a join build consumes base rows, not match lists");
  const arrowlite::Array &keys = chunk->batch->Column(key_col_);
  const int64_t *key_values = keys.buffer(0)->data_as<int64_t>();
  const arrowlite::Array &payload_col = chunk->batch->Column(payload_.col);
  std::vector<JoinEntry> *out = &per_block_[chunk->block_ordinal];
  out->reserve(out->size() + chunk->sel.Size());
  const bool has_nulls = keys.null_count() != 0 || payload_col.null_count() != 0;

  const auto emit = [&](auto &&payload_of_row) {
    if (has_nulls) {
      for (const uint32_t row : chunk->sel) {
        if (keys.IsNull(row) || payload_col.IsNull(row)) continue;
        out->push_back({key_values[row], payload_of_row(row)});
      }
    } else {
      for (const uint32_t row : chunk->sel) {
        out->push_back({key_values[row], payload_of_row(row)});
      }
    }
  };

  switch (payload_.kind) {
    case PayloadSpec::Kind::kInt64Column: {
      const int64_t *values = payload_col.buffer(0)->data_as<int64_t>();
      emit([values](uint32_t row) { return static_cast<uint64_t>(values[row]); });
      break;
    }
    case PayloadSpec::Kind::kStringIn:
    case PayloadSpec::Kind::kStringPrefix: {
      if (payload_col.type() == arrowlite::Type::kDictionary) {
        // Classify each distinct string once, then emit by code.
        const arrowlite::Array &dict = *payload_col.dictionary();
        std::vector<uint64_t> payload_of_code(static_cast<size_t>(dict.length()));
        for (int64_t code = 0; code < dict.length(); code++) {
          payload_of_code[static_cast<size_t>(code)] =
              payload_.Matches(dict.GetString(code)) ? 1 : 0;
        }
        const int32_t *codes = payload_col.buffer(0)->data_as<int32_t>();
        emit([&](uint32_t row) { return payload_of_code[static_cast<size_t>(codes[row])]; });
      } else {
        emit([&](uint32_t row) {
          return payload_.Matches(payload_col.GetString(row)) ? uint64_t{1} : uint64_t{0};
        });
      }
      break;
    }
  }
}

}  // namespace mainline::execution::op
