#include "common/worker_pool.h"
#include "arrowlite/array.h"
#include "arrowlite/type.h"
#include "common/selection_vector.h"
#include "execution/operators/aggregate_op.h"

#include <algorithm>
#include <array>
#include <string_view>

namespace mainline::execution::op {

AggregateOp::AggregateOp(std::vector<uint16_t> group_cols, std::vector<AggSpec> aggs)
    : group_cols_(std::move(group_cols)), aggs_(std::move(aggs)) {
  MAINLINE_ASSERT(group_cols_.size() <= 2, "at most two group-by columns are supported");
  MAINLINE_ASSERT(!aggs_.empty(), "an aggregate needs at least one AggSpec");
  for (const AggSpec &spec : aggs_) {
    if (spec.kind == AggSpec::Kind::kSumPayload || spec.payload_gate) needs_payload_ = true;
  }
}

AggregateOp::GroupAcc AggregateOp::NewGroup(std::vector<std::string> keys) const {
  GroupAcc acc;
  acc.keys = std::move(keys);
  acc.values.resize(aggs_.size());
  for (size_t i = 0; i < aggs_.size(); i++) {
    if (aggs_[i].kind == AggSpec::Kind::kMin) {
      acc.values[i].f64 = std::numeric_limits<double>::infinity();
    } else if (aggs_[i].kind == AggSpec::Kind::kMax) {
      acc.values[i].f64 = -std::numeric_limits<double>::infinity();
    }
  }
  return acc;
}

/// Resolve each row's group within one block partial. Groups are created at
/// first occurrence, so a partial's discovery order is the row/match order —
/// the same order a scalar tuple-at-a-time pass discovers them in.
/// Dictionary-encoded group columns resolve by code through a dense cache
/// (code-pair addressed for two columns), touching each distinct string only
/// once per block.
class AggregateOp::Resolver {
 public:
  Resolver(const AggregateOp &op, const Chunk &chunk) : op_(op) {
    const size_t n = op.group_cols_.size();
    if (n == 0) {
      mode_ = Mode::kSingle;
      return;
    }
    bool all_dictionary = true;
    for (size_t i = 0; i < n; i++) {
      cols_[i] = &chunk.batch->Column(op.group_cols_[i]);
      if (cols_[i]->type() != arrowlite::Type::kDictionary) all_dictionary = false;
    }
    if (!all_dictionary) {
      mode_ = Mode::kGeneric;
      return;
    }
    codes_a_ = cols_[0]->buffer(0)->data_as<int32_t>();
    const auto len_a = static_cast<size_t>(cols_[0]->dictionary()->length());
    if (n == 1) {
      mode_ = Mode::kDict1;
      cache_.assign(len_a, -1);
    } else {
      mode_ = Mode::kDict2;
      codes_b_ = cols_[1]->buffer(0)->data_as<int32_t>();
      num_b_ = static_cast<size_t>(cols_[1]->dictionary()->length());
      cache_.assign(len_a * num_b_, -1);
    }
  }

  GroupAcc *FindOrAdd(Partial *partial, uint32_t row) {
    switch (mode_) {
      case Mode::kSingle: {
        if (partial->empty()) partial->push_back(op_.NewGroup({}));
        return &partial->front();
      }
      case Mode::kDict1: {
        const auto code = static_cast<size_t>(codes_a_[row]);
        int32_t g = cache_[code];
        if (UNLIKELY(g < 0)) {
          g = Lookup(partial, {cols_[0]->dictionary()->GetString(codes_a_[row])}, 1);
          cache_[code] = g;
        }
        return &(*partial)[static_cast<size_t>(g)];
      }
      case Mode::kDict2: {
        const size_t pair =
            static_cast<size_t>(codes_a_[row]) * num_b_ + static_cast<size_t>(codes_b_[row]);
        int32_t g = cache_[pair];
        if (UNLIKELY(g < 0)) {
          g = Lookup(partial,
                     {cols_[0]->dictionary()->GetString(codes_a_[row]),
                      cols_[1]->dictionary()->GetString(codes_b_[row])},
                     2);
          cache_[pair] = g;
        }
        return &(*partial)[static_cast<size_t>(g)];
      }
      case Mode::kGeneric:
      default: {
        // Array::GetString resolves dictionary codes itself, so mixed
        // plain/dictionary column sets land here and still work.
        std::array<std::string_view, 2> keys;
        const size_t n = op_.group_cols_.size();
        for (size_t i = 0; i < n; i++) keys[i] = cols_[i]->GetString(row);
        return &(*partial)[static_cast<size_t>(Lookup(partial, keys, n))];
      }
    }
  }

 private:
  enum class Mode : uint8_t { kSingle, kDict1, kDict2, kGeneric };

  /// Linear probe over the partial's groups (group counts are tiny — Q1's
  /// six is the largest so far), appending a new group on miss.
  int32_t Lookup(Partial *partial, std::array<std::string_view, 2> keys, size_t n) const {
    for (size_t g = 0; g < partial->size(); g++) {
      const GroupAcc &acc = (*partial)[g];
      bool match = true;
      for (size_t i = 0; i < n; i++) {
        if (acc.keys[i] != keys[i]) {
          match = false;
          break;
        }
      }
      if (match) return static_cast<int32_t>(g);
    }
    std::vector<std::string> owned;
    owned.reserve(n);
    for (size_t i = 0; i < n; i++) owned.emplace_back(keys[i]);
    partial->push_back(op_.NewGroup(std::move(owned)));
    return static_cast<int32_t>(partial->size() - 1);
  }

  const AggregateOp &op_;
  Mode mode_ = Mode::kSingle;
  std::array<const arrowlite::Array *, 2> cols_ = {nullptr, nullptr};
  const int32_t *codes_a_ = nullptr;
  const int32_t *codes_b_ = nullptr;
  size_t num_b_ = 0;
  std::vector<int32_t> cache_;
};

void AggregateOp::AccumulateRow(GroupAcc *acc, const std::vector<BoundExpr> &bound,
                                uint32_t row, uint64_t payload) const {
  for (size_t i = 0; i < aggs_.size(); i++) {
    const AggSpec &spec = aggs_[i];
    AggValue *value = &acc->values[i];
    switch (spec.kind) {
      case AggSpec::Kind::kCount:
        value->u64++;
        break;
      case AggSpec::Kind::kSumPayload:
        value->u64 += payload;
        break;
      case AggSpec::Kind::kSum:
        if (spec.payload_gate && payload == 0) break;
        if (!bound[i].NullFree() && bound[i].IsNull(row)) break;
        value->f64 += bound[i].Eval(row);
        break;
      case AggSpec::Kind::kMin: {
        if (!bound[i].NullFree() && bound[i].IsNull(row)) break;
        const double x = bound[i].Eval(row);
        if (x < value->f64) value->f64 = x;
        break;
      }
      case AggSpec::Kind::kMax: {
        if (!bound[i].NullFree() && bound[i].IsNull(row)) break;
        const double x = bound[i].Eval(row);
        if (x > value->f64) value->f64 = x;
        break;
      }
    }
  }
}

/// The ungrouped, un-joined fast path (Q6's shape): one accumulator per
/// aggregate, the expression form hoisted out of the row loop — the inner
/// loops are literally the vector_ops accumulation loops the hand-fused
/// kernels ran, so retiring those kernels costs no throughput.
void AggregateOp::UngroupedPush(Chunk *chunk, const std::vector<BoundExpr> &bound) {
  const common::SelectionVector &sel = chunk->sel;
  if (sel.Empty()) return;
  Partial *partial = &partials_[chunk->block_ordinal];
  if (partial->empty()) partial->push_back(NewGroup({}));
  GroupAcc *acc = &partial->front();
  for (size_t i = 0; i < aggs_.size(); i++) {
    const BoundExpr &e = bound[i];
    AggValue *value = &acc->values[i];
    switch (aggs_[i].kind) {
      case AggSpec::Kind::kCount:
        value->u64 += sel.Size();
        break;
      case AggSpec::Kind::kSumPayload:
        break;  // unreachable: needs_payload_ requires a probe upstream
      case AggSpec::Kind::kSum: {
        double acc_value = value->f64;
        if (e.NullFree()) {
          switch (e.kind) {
            case Expr::Kind::kColumn:
              for (const uint32_t row : sel) acc_value += e.a[row];
              break;
            case Expr::Kind::kMul:
              for (const uint32_t row : sel) acc_value += e.a[row] * e.b[row];
              break;
            case Expr::Kind::kDiscounted:
              for (const uint32_t row : sel) acc_value += e.a[row] * (1.0 - e.b[row]);
              break;
            case Expr::Kind::kDiscountedTaxed:
              for (const uint32_t row : sel) {
                acc_value += e.a[row] * (1.0 - e.b[row]) * (1.0 + e.c[row]);
              }
              break;
          }
        } else {
          for (const uint32_t row : sel) {
            if (!e.IsNull(row)) acc_value += e.Eval(row);
          }
        }
        value->f64 = acc_value;
        break;
      }
      case AggSpec::Kind::kMin:
        for (const uint32_t row : sel) {
          if (!e.NullFree() && e.IsNull(row)) continue;
          const double x = e.Eval(row);
          if (x < value->f64) value->f64 = x;
        }
        break;
      case AggSpec::Kind::kMax:
        for (const uint32_t row : sel) {
          if (!e.NullFree() && e.IsNull(row)) continue;
          const double x = e.Eval(row);
          if (x > value->f64) value->f64 = x;
        }
        break;
    }
  }
}

void AggregateOp::Push(Chunk *chunk) {
  MAINLINE_ASSERT(!needs_payload_ || chunk->probed,
                  "payload aggregates need a join probe upstream");
  std::vector<BoundExpr> bound(aggs_.size());
  for (size_t i = 0; i < aggs_.size(); i++) {
    if (aggs_[i].kind != AggSpec::Kind::kCount &&
        aggs_[i].kind != AggSpec::Kind::kSumPayload) {
      bound[i] = Bind(aggs_[i].expr, *chunk);
    }
  }

  if (group_cols_.empty() && !chunk->probed) {
    UngroupedPush(chunk, bound);
    return;
  }

  Partial *partial = &partials_[chunk->block_ordinal];
  Resolver resolver(*this, *chunk);
  if (chunk->probed) {
    for (const JoinMatch &match : chunk->matches) {
      AccumulateRow(resolver.FindOrAdd(partial, match.row), bound, match.row, match.payload);
    }
  } else {
    for (const uint32_t row : chunk->sel) {
      AccumulateRow(resolver.FindOrAdd(partial, row), bound, row, 0);
    }
  }
}

uint32_t AggregateOp::FindOrAddGroup(Partial *partial, const std::vector<std::string> &keys,
                                     const AggregateOp &op) {
  for (uint32_t g = 0; g < partial->size(); g++) {
    if ((*partial)[g].keys == keys) return g;
  }
  partial->push_back(op.NewGroup(keys));
  return static_cast<uint32_t>(partial->size() - 1);
}

void AggregateOp::Finish(common::WorkerPool *) {
  // Fold the per-block partials in block order — ONE addition per aggregate
  // per (block, group), in each partial's discovery order. Blocks with no
  // qualifying rows have no groups and contribute nothing, exactly like the
  // scalar reference's per-block merge.
  Partial global;
  for (const Partial &partial : partials_) {
    for (const GroupAcc &acc : partial) {
      GroupAcc *dst = &global[FindOrAddGroup(&global, acc.keys, *this)];
      for (size_t i = 0; i < aggs_.size(); i++) {
        switch (aggs_[i].kind) {
          case AggSpec::Kind::kSum:
            dst->values[i].f64 += acc.values[i].f64;
            break;
          case AggSpec::Kind::kCount:
          case AggSpec::Kind::kSumPayload:
            dst->values[i].u64 += acc.values[i].u64;
            break;
          case AggSpec::Kind::kMin:
            if (acc.values[i].f64 < dst->values[i].f64) dst->values[i].f64 = acc.values[i].f64;
            break;
          case AggSpec::Kind::kMax:
            if (acc.values[i].f64 > dst->values[i].f64) dst->values[i].f64 = acc.values[i].f64;
            break;
        }
      }
    }
  }
  partials_.clear();

  if (group_cols_.empty() && global.empty()) global.push_back(NewGroup({}));
  std::sort(global.begin(), global.end(),
            [](const GroupAcc &a, const GroupAcc &b) { return a.keys < b.keys; });
  result_.clear();
  result_.reserve(global.size());
  for (GroupAcc &acc : global) {
    result_.push_back({std::move(acc.keys), std::move(acc.values)});
  }
}

}  // namespace mainline::execution::op
