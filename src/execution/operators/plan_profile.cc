#include "execution/operators/plan_profile.h"

#include <cstdio>
#include <sstream>

namespace mainline::execution::op {

namespace {

std::string FormatNs(uint64_t ns) {
  char buf[32];
  if (ns >= 1000000000ULL) {
    std::snprintf(buf, sizeof(buf), "%.2fs", static_cast<double>(ns) / 1e9);
  } else if (ns >= 1000000ULL) {
    std::snprintf(buf, sizeof(buf), "%.2fms", static_cast<double>(ns) / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fus", static_cast<double>(ns) / 1e3);
  }
  return buf;
}

}  // namespace

std::string PlanProfile::ToString() const {
  std::ostringstream out;
  out << "Plan (" << pipelines.size() << (pipelines.size() == 1 ? " pipeline)\n" : " pipelines)\n");
  for (size_t p = 0; p < pipelines.size(); p++) {
    const PipelineProfile &pipe = pipelines[p];
    out << "Pipeline " << (p + 1) << ": source=" << pipe.source << " blocks=" << pipe.num_blocks
        << " (frozen=" << pipe.scan.frozen_blocks << " hot=" << pipe.scan.hot_blocks
        << ") rows=" << pipe.scan.rows << " wall=" << FormatNs(pipe.wall_ns)
        << " finish=" << FormatNs(pipe.finish_ns) << "\n";
    for (const OperatorProfile &op : pipe.operators) {
      char sel[16];
      std::snprintf(sel, sizeof(sel), "%.1f%%", op.Selectivity() * 100.0);
      out << "  -> " << op.label << "  rows_in=" << op.rows_in << " rows_out=" << op.rows_out
          << " sel=" << sel << " chunks=" << op.chunks << " incl=" << FormatNs(op.inclusive_ns)
          << " excl=" << FormatNs(op.exclusive_ns) << "\n";
    }
  }
  return out.str();
}

std::string PlanProfile::ToJson() const {
  std::ostringstream out;
  out << "{\"pipelines\":[";
  for (size_t p = 0; p < pipelines.size(); p++) {
    const PipelineProfile &pipe = pipelines[p];
    if (p > 0) out << ',';
    out << "{\"source\":\"" << pipe.source << "\",\"num_blocks\":" << pipe.num_blocks
        << ",\"scan\":{\"rows\":" << pipe.scan.rows
        << ",\"frozen_blocks\":" << pipe.scan.frozen_blocks
        << ",\"hot_blocks\":" << pipe.scan.hot_blocks << "},\"wall_ns\":" << pipe.wall_ns
        << ",\"finish_ns\":" << pipe.finish_ns << ",\"operators\":[";
    for (size_t i = 0; i < pipe.operators.size(); i++) {
      const OperatorProfile &op = pipe.operators[i];
      if (i > 0) out << ',';
      out << "{\"label\":\"" << op.label << "\",\"rows_in\":" << op.rows_in
          << ",\"rows_out\":" << op.rows_out << ",\"chunks\":" << op.chunks
          << ",\"inclusive_ns\":" << op.inclusive_ns << ",\"exclusive_ns\":" << op.exclusive_ns
          << '}';
    }
    out << "]}";
  }
  out << "]}";
  return out.str();
}

}  // namespace mainline::execution::op
