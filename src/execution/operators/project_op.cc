#include "execution/operators/project_op.h"

namespace mainline::execution::op {

void ProjectOp::Push(Chunk *chunk) {
  const auto num_rows = static_cast<uint32_t>(chunk->batch->NumRows());
  for (const Expr &expr : exprs_) {
    // Bind before appending: an expression may read earlier computed
    // columns, but not its own output.
    const BoundExpr bound = Bind(expr, *chunk);
    ComputedColumn *col = chunk->AppendComputed();
    col->values.resize(num_rows);  // recycled capacity; only grows allocate
    col->null_sources = bound.null_sources;
    double *out = col->values.data();
    if (chunk->probed) {
      // Duplicate match rows re-evaluate to the same value; no dedup needed.
      for (const JoinMatch &match : chunk->matches) out[match.row] = bound.Eval(match.row);
    } else {
      for (const uint32_t row : chunk->sel) out[row] = bound.Eval(row);
    }
  }
  PushNext(chunk);
}

}  // namespace mainline::execution::op
