#include "execution/operators/filter_op.h"

#include "common/selection_vector.h"
#include "execution/vector_ops.h"

namespace mainline::execution::op {

FilterOp::FilterOp(std::vector<Predicate> predicates) : predicates_(std::move(predicates)) {
  string_views_.resize(predicates_.size());
  for (size_t i = 0; i < predicates_.size(); i++) {
    for (const std::string &value : predicates_[i].strings) {
      string_views_[i].emplace_back(value);
    }
  }
}

void FilterOp::Push(Chunk *chunk) {
  MAINLINE_ASSERT(!chunk->probed, "filters refine selections, not join match lists");
  const ColumnVectorBatch &batch = *chunk->batch;
  common::SelectionVector *sel = &chunk->sel;
  for (size_t i = 0; i < predicates_.size(); i++) {
    const Predicate &p = predicates_[i];
    switch (p.kind) {
      case Predicate::Kind::kU32InRange:
        vector_ops::FilterRange<uint32_t>(batch.Column(p.col_a), sel, p.u_lo, p.u_hi);
        break;
      case Predicate::Kind::kU32AtMost:
        vector_ops::FilterFixed<uint32_t>(batch.Column(p.col_a), sel,
                                          [&p](uint32_t v) { return v <= p.u_hi; });
        break;
      case Predicate::Kind::kF64InRange:
        vector_ops::FilterFixed<double>(
            batch.Column(p.col_a), sel,
            [&p](double v) { return p.f_lo <= v && v <= p.f_hi; });
        break;
      case Predicate::Kind::kF64Below:
        vector_ops::FilterFixed<double>(batch.Column(p.col_a), sel,
                                        [&p](double v) { return v < p.f_hi; });
        break;
      case Predicate::Kind::kU32LessThanColumn:
        vector_ops::FilterLessThanColumn<uint32_t>(batch.Column(p.col_a),
                                                   batch.Column(p.col_b), sel);
        break;
      case Predicate::Kind::kStringIn:
        vector_ops::FilterStringIn(batch.Column(p.col_a), sel, string_views_[i]);
        break;
    }
    if (sel->Empty()) return;
  }
  PushNext(chunk);
}

}  // namespace mainline::execution::op
