#include "execution/operators/scan_source.h"

#include <memory>
#include <utility>

#include "common/spin_latch.h"
#include "execution/parallel_scanner.h"

namespace mainline::execution::op {

namespace {

/// RAII check-out of a pooled chunk: acquired from the free list (or
/// freshly allocated) on construction, and returned — with its batch
/// pointer dropped — on destruction. Unwinding through a throwing operator
/// takes the same path as a normal push, so the free list stays intact and
/// no dangling batch pointer survives the callback that owns the batch.
class ChunkCheckout {
 public:
  ChunkCheckout(common::SpinLatch *latch, std::vector<std::unique_ptr<Chunk>> *free_chunks)
      : latch_(latch), free_chunks_(free_chunks) {
    latch_->Lock();
    if (!free_chunks_->empty()) {
      chunk_ = std::move(free_chunks_->back());
      free_chunks_->pop_back();
    }
    latch_->Unlock();
    if (chunk_ == nullptr) chunk_ = std::make_unique<Chunk>();
  }

  ~ChunkCheckout() {
    chunk_->batch = nullptr;  // the batch dies with the scan callback
    latch_->Lock();
    free_chunks_->push_back(std::move(chunk_));
    latch_->Unlock();
  }

  DISALLOW_COPY_AND_MOVE(ChunkCheckout)

  Chunk *Get() { return chunk_.get(); }

 private:
  common::SpinLatch *latch_;
  std::vector<std::unique_ptr<Chunk>> *free_chunks_;
  std::unique_ptr<Chunk> chunk_;
};

}  // namespace

void ScanSource::Run(transaction::TransactionContext *txn, common::WorkerPool *pool,
                     Operator *root, const std::function<void(size_t)> &prepare,
                     ScanStats *stats, PipelineProfile *profile) {
  ParallelTableScanner scanner(table_, txn, projection_);
  prepare(scanner.NumBlocks());

  // A tiny free list of reusable chunks: a worker checks one out per block
  // and returns it after the push, so concurrent workers never share a chunk
  // and a sequential scan reuses a single one for the whole table.
  common::SpinLatch latch;
  std::vector<std::unique_ptr<Chunk>> free_chunks;
  scanner.Scan(pool, [&](size_t ordinal, ColumnVectorBatch *batch) {
    ChunkCheckout checkout(&latch, &free_chunks);
    checkout.Get()->Reset(ordinal, batch);
    root->Consume(checkout.Get());
  });
  if (stats != nullptr) stats->Add(scanner.Stats());
  if (profile != nullptr) {
    profile->source = "table#" + std::to_string(table_->Oid().UnderlyingValue());
    profile->num_blocks = scanner.NumBlocks();
    profile->scan = scanner.Stats();
  }
}

}  // namespace mainline::execution::op
