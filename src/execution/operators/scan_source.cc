#include "execution/operators/scan_source.h"

#include <memory>
#include <utility>

#include "common/spin_latch.h"
#include "execution/parallel_scanner.h"

namespace mainline::execution::op {

void ScanSource::Run(transaction::TransactionContext *txn, common::WorkerPool *pool,
                     Operator *root, const std::function<void(size_t)> &prepare,
                     ScanStats *stats) {
  ParallelTableScanner scanner(table_, txn, projection_);
  prepare(scanner.NumBlocks());

  // A tiny free list of reusable chunks: a worker checks one out per block
  // and returns it after the push, so concurrent workers never share a chunk
  // and a sequential scan reuses a single one for the whole table.
  common::SpinLatch latch;
  std::vector<std::unique_ptr<Chunk>> free_chunks;
  scanner.Scan(pool, [&](size_t ordinal, ColumnVectorBatch *batch) {
    std::unique_ptr<Chunk> chunk;
    latch.Lock();
    if (!free_chunks.empty()) {
      chunk = std::move(free_chunks.back());
      free_chunks.pop_back();
    }
    latch.Unlock();
    if (chunk == nullptr) chunk = std::make_unique<Chunk>();
    chunk->Reset(ordinal, batch);
    root->Push(chunk.get());
    chunk->batch = nullptr;  // the batch dies with this callback
    latch.Lock();
    free_chunks.push_back(std::move(chunk));
    latch.Unlock();
  });
  if (stats != nullptr) stats->Add(scanner.Stats());
}

}  // namespace mainline::execution::op
