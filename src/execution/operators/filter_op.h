#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "execution/operators/operator.h"

namespace mainline::execution::op {

/// One filter predicate, as data. Like Expr, the forms are a closed enum so
/// FilterOp dispatches once per batch and the per-row loops are exactly the
/// vector_ops primitives the hand-fused kernels called — including the
/// dictionary-code fast path for string predicates. Columns are batch
/// (scan-projection) indices; null rows never qualify.
struct Predicate {
  enum class Kind : uint8_t {
    kU32InRange,         ///< lo <= v < hi (half-open; date windows)
    kU32AtMost,          ///< v <= hi
    kF64InRange,         ///< lo <= v <= hi (closed; BETWEEN)
    kF64Below,           ///< v < hi
    kU32LessThanColumn,  ///< col_a < col_b, row-wise
    kStringIn,           ///< string value in a short literal list
  };

  Kind kind = Kind::kU32InRange;
  uint16_t col_a = 0;
  uint16_t col_b = 0;
  uint32_t u_lo = 0;
  uint32_t u_hi = 0;
  double f_lo = 0;
  double f_hi = 0;
  std::vector<std::string> strings;

  static Predicate U32InRange(uint16_t col, uint32_t lo, uint32_t hi) {
    Predicate p;
    p.kind = Kind::kU32InRange;
    p.col_a = col;
    p.u_lo = lo;
    p.u_hi = hi;
    return p;
  }
  static Predicate U32AtMost(uint16_t col, uint32_t hi) {
    Predicate p;
    p.kind = Kind::kU32AtMost;
    p.col_a = col;
    p.u_hi = hi;
    return p;
  }
  static Predicate F64InRange(uint16_t col, double lo, double hi) {
    Predicate p;
    p.kind = Kind::kF64InRange;
    p.col_a = col;
    p.f_lo = lo;
    p.f_hi = hi;
    return p;
  }
  static Predicate F64Below(uint16_t col, double hi) {
    Predicate p;
    p.kind = Kind::kF64Below;
    p.col_a = col;
    p.f_hi = hi;
    return p;
  }
  static Predicate U32LessThanColumn(uint16_t col_a, uint16_t col_b) {
    Predicate p;
    p.kind = Kind::kU32LessThanColumn;
    p.col_a = col_a;
    p.col_b = col_b;
    return p;
  }
  static Predicate StringIn(uint16_t col, std::vector<std::string> values) {
    Predicate p;
    p.kind = Kind::kStringIn;
    p.col_a = col;
    p.strings = std::move(values);
    return p;
  }
};

/// Refine the chunk's selection vector through a predicate chain, in order,
/// short-circuiting as soon as no row survives. Stateless across chunks, so
/// any number of workers push through one FilterOp concurrently.
class FilterOp final : public Operator {
 public:
  explicit FilterOp(std::vector<Predicate> predicates);

  void Push(Chunk *chunk) override;

  std::string Label() const override { return "Filter"; }

 private:
  std::vector<Predicate> predicates_;
  /// Views into predicates_[i].strings, prebuilt for vector_ops::FilterStringIn.
  std::vector<std::vector<std::string_view>> string_views_;
};

}  // namespace mainline::execution::op
