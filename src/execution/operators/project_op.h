#pragma once

#include <vector>

#include "execution/operators/operator.h"

namespace mainline::execution::op {

/// Append computed columns to the chunk: each Expr is evaluated for every
/// live row (the selection, or the join matches' rows downstream of a
/// probe) into a dense per-row buffer addressed by ColumnRef::Computed(i),
/// where `i` counts this operator's expressions in order on top of any
/// computed columns an earlier ProjectOp already appended. Evaluating once
/// and letting several aggregates share the buffer is bit-identical to
/// re-evaluating per aggregate — the forms in Expr are deterministic — so
/// plans are free to project for clarity or reuse.
///
/// Rows whose inputs are null get an arbitrary value; the computed column
/// carries its inputs' null sources forward, and consumers skip those rows
/// the same way they would for a raw column.
class ProjectOp final : public Operator {
 public:
  explicit ProjectOp(std::vector<Expr> exprs) : exprs_(std::move(exprs)) {}

  void Push(Chunk *chunk) override;

  std::string Label() const override { return "Project"; }

 private:
  std::vector<Expr> exprs_;
};

}  // namespace mainline::execution::op
