#pragma once

#include <cstdint>
#include <vector>

#include "common/macros.h"
#include "execution/column_vector_batch.h"
#include "catalog/sql_table.h"
#include "storage/raw_block.h"
#include "transaction/transaction_context.h"

namespace mainline::execution {

/// \return the index of `schema_pos` within the sorted, duplicate-free
/// `projection`. Aborts (in every build) when the column is not projected:
/// any index returned here would silently read the wrong column. Runs once
/// per column per scan, never per tuple.
uint16_t ProjectionIndexOf(const std::vector<uint16_t> &projection, uint16_t schema_pos);

/// Counters for one scan: how many blocks each access path served, and how
/// many visible rows came out. Reported by QueryRunner and figure16.
struct ScanStats {
  uint64_t frozen_blocks = 0;  ///< blocks read zero-copy in place
  uint64_t hot_blocks = 0;     ///< blocks transactionally materialized
  uint64_t rows = 0;           ///< visible rows produced

  void Add(const ScanStats &other) {
    frozen_blocks += other.frozen_blocks;
    hot_blocks += other.hot_blocks;
    rows += other.rows;
  }
};

/// Block-at-a-time scan over a SqlTable with the paper's dual access path
/// (Section 4.1): a block that is frozen is read in situ — its buffers are
/// wrapped into zero-copy Arrow arrays under the block's read lock, with no
/// per-tuple work at all — while a hot (or cooling/freezing) block falls back
/// to early materialization, resolving each tuple's visible version through
/// the scan's transaction with ProjectedRow. Both paths surface the same
/// ColumnVectorBatch view, so operators upstream are path-oblivious.
///
/// Snapshot semantics: the hot path is MVCC-consistent by construction
/// (DataTable::Select). The frozen path is consistent with the same snapshot
/// because (a) a block only freezes after every transaction that overlapped
/// its compaction has finished, so a block can never freeze under a snapshot
/// that predates its frozen contents, and (b) any later writer flips the
/// block hot *before* modifying it, which makes TryAcquireRead fail and
/// routes this scanner to the transactional path.
class TableScanner {
 public:
  /// \param table table to scan (block list is snapshotted here)
  /// \param txn transaction all hot-path reads resolve through
  /// \param projection schema column positions to expose; must be sorted
  ///        ascending and duplicate-free (catalog::Schema::ResolveColumns
  ///        produces this shape from column names)
  TableScanner(catalog::SqlTable *table, transaction::TransactionContext *txn,
               std::vector<uint16_t> projection);

  DISALLOW_COPY_AND_MOVE(TableScanner)

  /// Produce the next non-empty batch.
  /// \return true if `out` was (re)bound to a new block's data; false when
  ///         the table is exhausted.
  bool Next(ColumnVectorBatch *out);

  /// Scan one block through the dual access path — the unit of work both
  /// this sequential scanner and ParallelTableScanner's morsels are built
  /// from. Thread-safe for concurrent calls sharing one read-only `txn`:
  /// both paths only read transaction state.
  /// \return true if `out` now holds a non-empty batch (empty blocks still
  ///         count toward `stats`' block counters).
  static bool ScanBlock(catalog::SqlTable *table, transaction::TransactionContext *txn,
                        const std::vector<uint16_t> &projection, storage::RawBlock *block,
                        ColumnVectorBatch *out, ScanStats *stats);

  const ScanStats &Stats() const { return stats_; }

  const std::vector<uint16_t> &Projection() const { return projection_; }

  /// \return the batch column index of schema column `schema_pos`.
  uint16_t BatchIndex(uint16_t schema_pos) const;

 private:
  catalog::SqlTable *table_;
  transaction::TransactionContext *txn_;
  std::vector<uint16_t> projection_;
  std::vector<storage::RawBlock *> blocks_;
  size_t next_block_ = 0;
  ScanStats stats_;
};

}  // namespace mainline::execution
