#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/macros.h"
#include "common/spin_latch.h"
#include "common/thread_annotations.h"
#include "common/worker_pool.h"
#include "execution/column_vector_batch.h"
#include "execution/table_scanner.h"
#include "catalog/sql_table.h"
#include "storage/raw_block.h"
#include "transaction/transaction_context.h"

namespace mainline::execution {

/// Morsel-driven parallel scan: the block list is snapshotted once, and a
/// shared atomic cursor hands out block-granular morsels to the workers of a
/// common::WorkerPool. Blocks are the natural morsel — each one carries its
/// own access controller (Section 4.1), so the dual access path needs no
/// cross-worker coordination: a worker freezes nothing and shares nothing but
/// the read-only scan transaction.
///
/// Each morsel is identified by its *block ordinal* (position in the
/// snapshotted block list). The consume callback runs on worker threads,
/// possibly concurrently with itself; a caller that accumulates per-ordinal
/// partials (see tpch::RunQ1Parallel/RunQ6Parallel) can merge them in block
/// order afterwards, making the result independent of the worker count and
/// bit-identical to a sequential scan.
///
/// Scan statistics are accumulated per worker (no shared cache line bounces
/// during the scan) and each worker folds its partial into the merged total
/// as its loop exits — so the total is complete the moment the last loop
/// returns, no matter how that loop was driven (pool task, inline fallback
/// after a rejected submit, or the no-pool degrade path).
class ParallelTableScanner {
 public:
  /// Called once per non-empty block, from a worker thread. The batch is
  /// only valid for the duration of the call; the scanner releases it (and
  /// the frozen path's block read lock) when the callback returns.
  using ConsumeFn = std::function<void(size_t block_ordinal, ColumnVectorBatch *batch)>;

  /// \param table table to scan (block list is snapshotted here)
  /// \param txn transaction all hot-path reads resolve through; must be
  ///        read-only for the duration of the scan, since workers share it
  /// \param projection schema column positions, sorted ascending and
  ///        duplicate-free (catalog::Schema::ResolveColumns produces this)
  ParallelTableScanner(catalog::SqlTable *table, transaction::TransactionContext *txn,
                       std::vector<uint16_t> projection);

  DISALLOW_COPY_AND_MOVE(ParallelTableScanner)

  /// \return number of blocks in the snapshot — the ordinal space `consume`
  ///         will see (some ordinals may be skipped: empty blocks produce no
  ///         batch).
  size_t NumBlocks() const { return blocks_.size(); }

  const std::vector<uint16_t> &Projection() const { return projection_; }

  /// \return the batch column index of schema column `schema_pos`.
  uint16_t BatchIndex(uint16_t schema_pos) const {
    return ProjectionIndexOf(projection_, schema_pos);
  }

  /// Run the scan to completion over `pool`'s workers, blocking until every
  /// morsel has been consumed. The pool must be otherwise idle (this call
  /// uses WaitUntilAllFinished, which waits on the whole pool). A null pool,
  /// a pool with zero workers, or one that shuts down mid-submit degrades to
  /// an inline scan on the calling thread — never an error, never a hang.
  void Scan(common::WorkerPool *pool, const ConsumeFn &consume) EXCLUDES(stats_latch_);

  /// Merged statistics of the last Scan. A snapshot by value: workers fold
  /// partials into the merged total under stats_latch_, so a reference would
  /// race if read while a Scan is in flight.
  ScanStats Stats() const EXCLUDES(stats_latch_) {
    common::SpinLatch::ScopedSpinLatch guard(&stats_latch_);
    return stats_;
  }

  /// Per-worker statistics of the last Scan (one entry per pool worker).
  std::vector<ScanStats> WorkerStats() const EXCLUDES(stats_latch_) {
    common::SpinLatch::ScopedSpinLatch guard(&stats_latch_);
    return worker_stats_;
  }

 private:
  /// Claim morsels from the shared cursor until the table is exhausted.
  void WorkerLoop(size_t worker_index, const ConsumeFn &consume) EXCLUDES(stats_latch_);

  catalog::SqlTable *table_;
  transaction::TransactionContext *txn_;
  std::vector<uint16_t> projection_;
  std::vector<storage::RawBlock *> blocks_;
  std::atomic<size_t> cursor_{0};
  /// Guards the exiting workers' folds into worker_stats_ and stats_, plus
  /// the driving thread's reset and post-scan reads.
  mutable common::SpinLatch stats_latch_;
  std::vector<ScanStats> worker_stats_ GUARDED_BY(stats_latch_);
  ScanStats stats_ GUARDED_BY(stats_latch_);
};

}  // namespace mainline::execution
