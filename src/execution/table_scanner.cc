#include "execution/table_scanner.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "catalog/schema.h"
#include "storage/data_table.h"
#include "storage/raw_block.h"
#include "transform/arrow_reader.h"

namespace mainline::execution {

TableScanner::TableScanner(catalog::SqlTable *table, transaction::TransactionContext *txn,
                           std::vector<uint16_t> projection)
    : table_(table),
      txn_(txn),
      projection_(std::move(projection)),
      blocks_(table->UnderlyingTable().Blocks()) {
  MAINLINE_ASSERT(!projection_.empty(), "scan projection must name at least one column");
  MAINLINE_ASSERT(std::is_sorted(projection_.begin(), projection_.end()) &&
                      std::adjacent_find(projection_.begin(), projection_.end()) ==
                          projection_.end(),
                  "scan projection must be sorted ascending and duplicate-free");
  MAINLINE_ASSERT(projection_.back() < table->GetSchema().NumColumns(),
                  "scan projection column out of range");
}

uint16_t ProjectionIndexOf(const std::vector<uint16_t> &projection, uint16_t schema_pos) {
  const auto it = std::lower_bound(projection.begin(), projection.end(), schema_pos);
  if (it == projection.end() || *it != schema_pos) {
    std::fprintf(stderr, "FATAL: schema column %u is not in the scan projection\n",
                 schema_pos);
    std::abort();
  }
  return static_cast<uint16_t>(it - projection.begin());
}

uint16_t TableScanner::BatchIndex(uint16_t schema_pos) const {
  return ProjectionIndexOf(projection_, schema_pos);
}

bool TableScanner::ScanBlock(catalog::SqlTable *table, transaction::TransactionContext *txn,
                             const std::vector<uint16_t> &projection, storage::RawBlock *block,
                             ColumnVectorBatch *out, ScanStats *stats) {
  storage::DataTable &data_table = table->UnderlyingTable();
  const catalog::Schema &schema = table->GetSchema();

  if (block->controller.TryAcquireRead()) {
    // Frozen path: wrap the block's buffers, no copies. The read lock
    // travels with the batch and is released when the caller is done.
    auto batch =
        transform::ArrowReader::FromFrozenBlock(schema, data_table, block, &projection);
    if (batch != nullptr) {
      stats->frozen_blocks++;
      if (batch->num_rows() == 0) {
        block->controller.ReleaseRead();
        return false;
      }
      stats->rows += static_cast<uint64_t>(batch->num_rows());
      out->Reset(std::move(batch), AccessPath::kFrozenInSitu, block);
      return true;
    }
    // Frozen but no Arrow metadata: should not happen, but the
    // transactional path is always correct, so fall through to it.
    block->controller.ReleaseRead();
  }

  // Hot path: early materialization of the visible version of every tuple
  // through the scan transaction.
  auto batch =
      transform::ArrowReader::MaterializeBlock(schema, &data_table, block, txn, &projection);
  stats->hot_blocks++;
  if (batch->num_rows() == 0) return false;
  stats->rows += static_cast<uint64_t>(batch->num_rows());
  out->Reset(std::move(batch), AccessPath::kHotMaterialized, nullptr);
  return true;
}

bool TableScanner::Next(ColumnVectorBatch *out) {
  while (next_block_ < blocks_.size()) {
    if (ScanBlock(table_, txn_, projection_, blocks_[next_block_++], out, &stats_)) {
      return true;
    }
  }
  return false;
}

}  // namespace mainline::execution
