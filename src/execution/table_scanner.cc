#include "execution/table_scanner.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "transform/arrow_reader.h"

namespace mainline::execution {

TableScanner::TableScanner(storage::SqlTable *table, transaction::TransactionContext *txn,
                           std::vector<uint16_t> projection)
    : table_(table),
      txn_(txn),
      projection_(std::move(projection)),
      blocks_(table->UnderlyingTable().Blocks()) {
  MAINLINE_ASSERT(!projection_.empty(), "scan projection must name at least one column");
  MAINLINE_ASSERT(std::is_sorted(projection_.begin(), projection_.end()) &&
                      std::adjacent_find(projection_.begin(), projection_.end()) ==
                          projection_.end(),
                  "scan projection must be sorted ascending and duplicate-free");
  MAINLINE_ASSERT(projection_.back() < table->GetSchema().NumColumns(),
                  "scan projection column out of range");
}

uint16_t TableScanner::BatchIndex(uint16_t schema_pos) const {
  const auto it = std::lower_bound(projection_.begin(), projection_.end(), schema_pos);
  if (it == projection_.end() || *it != schema_pos) {
    // Abort in every build: returning any index here would silently read the
    // wrong column. This runs once per column per scan, never per tuple.
    std::fprintf(stderr, "FATAL: schema column %u is not in the scan projection\n",
                 schema_pos);
    std::abort();
  }
  return static_cast<uint16_t>(it - projection_.begin());
}

bool TableScanner::Next(ColumnVectorBatch *out) {
  storage::DataTable &data_table = table_->UnderlyingTable();
  const catalog::Schema &schema = table_->GetSchema();
  while (next_block_ < blocks_.size()) {
    storage::RawBlock *block = blocks_[next_block_++];

    if (block->controller.TryAcquireRead()) {
      // Frozen path: wrap the block's buffers, no copies. The read lock
      // travels with the batch and is released when the caller is done.
      auto batch =
          transform::ArrowReader::FromFrozenBlock(schema, data_table, block, &projection_);
      if (batch != nullptr) {
        stats_.frozen_blocks++;
        if (batch->num_rows() == 0) {
          block->controller.ReleaseRead();
          continue;
        }
        stats_.rows += static_cast<uint64_t>(batch->num_rows());
        out->Reset(std::move(batch), AccessPath::kFrozenInSitu, block);
        return true;
      }
      // Frozen but no Arrow metadata: should not happen, but the
      // transactional path is always correct, so fall through to it.
      block->controller.ReleaseRead();
    }

    // Hot path: early materialization of the visible version of every tuple
    // through the scan transaction.
    auto batch =
        transform::ArrowReader::MaterializeBlock(schema, &data_table, block, txn_, &projection_);
    stats_.hot_blocks++;
    if (batch->num_rows() == 0) continue;
    stats_.rows += static_cast<uint64_t>(batch->num_rows());
    out->Reset(std::move(batch), AccessPath::kHotMaterialized, nullptr);
    return true;
  }
  return false;
}

}  // namespace mainline::execution
