#pragma once

#include <string_view>
#include <vector>

#include "arrowlite/array.h"
#include "arrowlite/type.h"
#include "common/selection_vector.h"

namespace mainline::execution {

/// Vectorized operator primitives over arrowlite arrays and selection
/// vectors. Every primitive works column-at-a-time over the candidate list,
/// touching raw buffers directly — the zero-copy frozen path and the
/// materialized hot path both end in the same tight loops.
///
/// Aggregation primitives accumulate row-at-a-time in selection order, so a
/// query's result is bit-identical to a scalar tuple-at-a-time loop over the
/// same visible rows — the property figure16 and the execution tests pin.
namespace vector_ops {

/// Refine `sel` to the rows whose fixed-width value of type `T` satisfies
/// `pred(value)`. Null rows never qualify; the null check is hoisted out of
/// the loop entirely for null-free arrays (the common case — frozen lineitem
/// columns carry validity bitmaps with a zero null count).
template <typename T, typename Pred>
void FilterFixed(const arrowlite::Array &col, common::SelectionVector *sel, Pred &&pred) {
  const T *values = col.buffer(0)->template data_as<T>();
  if (col.null_count() == 0) {
    sel->Refine([&](uint32_t row) { return pred(values[row]); });
  } else {
    sel->Refine([&](uint32_t row) { return !col.IsNull(row) && pred(values[row]); });
  }
}

/// Refine `sel` to rows where `lo <= value && value < hi` (half-open range,
/// the shape of date predicates).
template <typename T>
void FilterRange(const arrowlite::Array &col, common::SelectionVector *sel, T lo, T hi) {
  FilterFixed<T>(col, sel, [lo, hi](T v) { return lo <= v && v < hi; });
}

/// Refine `sel` to rows where `a[row] < b[row]` — the column-vs-column shape
/// of Q12's date sanity predicates (l_shipdate < l_commitdate, ...). Rows
/// where either operand is null never qualify.
template <typename T>
void FilterLessThanColumn(const arrowlite::Array &a, const arrowlite::Array &b,
                          common::SelectionVector *sel) {
  const T *va = a.buffer(0)->template data_as<T>();
  const T *vb = b.buffer(0)->template data_as<T>();
  if (a.null_count() == 0 && b.null_count() == 0) {
    sel->Refine([&](uint32_t row) { return va[row] < vb[row]; });
  } else {
    sel->Refine([&](uint32_t row) {
      return !a.IsNull(row) && !b.IsNull(row) && va[row] < vb[row];
    });
  }
}

/// Refine `sel` to rows whose string value equals one of `targets` (SQL IN
/// over a short literal list). Dictionary-encoded columns resolve each target
/// to its code once and match on integers; rows with null values never
/// qualify.
inline void FilterStringIn(const arrowlite::Array &col, common::SelectionVector *sel,
                           const std::vector<std::string_view> &targets) {
  if (col.type() == arrowlite::Type::kDictionary) {
    const arrowlite::Array &dict = *col.dictionary();
    std::vector<int32_t> wanted;
    for (const std::string_view target : targets) {
      for (int64_t i = 0; i < dict.length(); i++) {
        if (dict.GetString(i) == target) {
          wanted.push_back(static_cast<int32_t>(i));
          break;
        }
      }
    }
    if (wanted.empty()) {
      sel->Refine([](uint32_t) { return false; });
      return;
    }
    const int32_t *codes = col.buffer(0)->data_as<int32_t>();
    const auto match = [&](uint32_t row) {
      for (const int32_t code : wanted) {
        if (codes[row] == code) return true;
      }
      return false;
    };
    if (col.null_count() == 0) {
      sel->Refine(match);
    } else {
      sel->Refine([&](uint32_t row) { return !col.IsNull(row) && match(row); });
    }
    return;
  }
  sel->Refine([&](uint32_t row) {
    if (col.IsNull(row)) return false;
    const std::string_view value = col.GetString(row);
    for (const std::string_view target : targets) {
      if (value == target) return true;
    }
    return false;
  });
}

/// Refine `sel` to rows whose string value equals `target`. For
/// dictionary-encoded columns the comparison collapses to an integer compare:
/// the (sorted, duplicate-free) dictionary is probed once for the target's
/// code and rows are matched on codes alone.
inline void FilterStringEq(const arrowlite::Array &col, common::SelectionVector *sel,
                           std::string_view target) {
  if (col.type() == arrowlite::Type::kDictionary) {
    const arrowlite::Array &dict = *col.dictionary();
    int32_t code = -1;
    for (int64_t i = 0; i < dict.length(); i++) {
      if (dict.GetString(i) == target) {
        code = static_cast<int32_t>(i);
        break;
      }
    }
    if (code < 0) {
      sel->Refine([](uint32_t) { return false; });
      return;
    }
    const int32_t *codes = col.buffer(0)->data_as<int32_t>();
    if (col.null_count() == 0) {
      sel->Refine([&](uint32_t row) { return codes[row] == code; });
    } else {
      sel->Refine([&](uint32_t row) { return !col.IsNull(row) && codes[row] == code; });
    }
    return;
  }
  sel->Refine([&](uint32_t row) { return !col.IsNull(row) && col.GetString(row) == target; });
}

/// acc += sum of `col[row]` over the selection, accumulated row-at-a-time.
/// Null rows are skipped (SQL aggregate semantics); for frozen in-situ
/// batches a null slot's bytes are arbitrary block storage, so they must
/// never reach the accumulator.
template <typename T>
void AccumulateSum(const arrowlite::Array &col, const common::SelectionVector &sel,
                   double *acc) {
  const T *values = col.buffer(0)->template data_as<T>();
  if (col.null_count() == 0) {
    for (const uint32_t row : sel) *acc += static_cast<double>(values[row]);
  } else {
    for (const uint32_t row : sel) {
      if (!col.IsNull(row)) *acc += static_cast<double>(values[row]);
    }
  }
}

/// acc += sum of `a[row] * b[row]` over the selection (e.g. Q6's
/// extendedprice * discount), accumulated row-at-a-time. Rows where either
/// operand is null are skipped.
inline void AccumulateDotProduct(const arrowlite::Array &a, const arrowlite::Array &b,
                                 const common::SelectionVector &sel, double *acc) {
  const double *va = a.buffer(0)->data_as<double>();
  const double *vb = b.buffer(0)->data_as<double>();
  if (a.null_count() == 0 && b.null_count() == 0) {
    for (const uint32_t row : sel) *acc += va[row] * vb[row];
  } else {
    for (const uint32_t row : sel) {
      if (!a.IsNull(row) && !b.IsNull(row)) *acc += va[row] * vb[row];
    }
  }
}

/// \return count of selected rows (trivial, for symmetry with the other
/// aggregates).
inline uint64_t Count(const common::SelectionVector &sel) { return sel.Size(); }

/// Running MIN/MAX over the selection, skipping null rows.
template <typename T>
void AccumulateMinMax(const arrowlite::Array &col, const common::SelectionVector &sel, T *min,
                      T *max) {
  const T *values = col.buffer(0)->template data_as<T>();
  for (const uint32_t row : sel) {
    if (col.null_count() != 0 && col.IsNull(row)) continue;
    const T v = values[row];
    if (v < *min) *min = v;
    if (v > *max) *max = v;
  }
}

}  // namespace vector_ops

}  // namespace mainline::execution
