#include "execution/parallel_scanner.h"

#include <algorithm>

#include "metrics/engine_metrics.h"

namespace mainline::execution {

ParallelTableScanner::ParallelTableScanner(catalog::SqlTable *table,
                                           transaction::TransactionContext *txn,
                                           std::vector<uint16_t> projection)
    : table_(table),
      txn_(txn),
      projection_(std::move(projection)),
      blocks_(table->UnderlyingTable().Blocks()) {
  MAINLINE_ASSERT(!projection_.empty(), "scan projection must name at least one column");
  MAINLINE_ASSERT(std::is_sorted(projection_.begin(), projection_.end()) &&
                      std::adjacent_find(projection_.begin(), projection_.end()) ==
                          projection_.end(),
                  "scan projection must be sorted ascending and duplicate-free");
  MAINLINE_ASSERT(projection_.back() < table->GetSchema().NumColumns(),
                  "scan projection column out of range");
}

void ParallelTableScanner::Scan(common::WorkerPool *pool, const ConsumeFn &consume) {
  // relaxed: reset before any worker task is submitted; the pool submit
  // publishes it to the workers.
  cursor_.store(0, std::memory_order_relaxed);
  const uint32_t workers = pool == nullptr ? 0 : pool->NumWorkers();
  {
    common::SpinLatch::ScopedSpinLatch guard(&stats_latch_);
    stats_ = ScanStats{};
    worker_stats_.assign(workers == 0 ? 1 : workers, ScanStats{});
  }

  if (workers == 0) {
    // No usable pool: the cursor machinery still hands out morsels, just to
    // this one thread.
    WorkerLoop(0, consume);
  } else {
    // One long-running task per worker, each draining the shared cursor —
    // morsel dispatch is the atomic fetch_add, not the task queue, so the
    // queue sees O(workers) entries rather than O(blocks).
    for (uint32_t w = 0; w < workers; w++) {
      const bool accepted =
          pool->SubmitTask([this, w, &consume] { WorkerLoop(w, consume); });
      // A pool shut down between NumWorkers() and here rejects the submit;
      // run that worker's share inline instead of losing it.
      if (!accepted) WorkerLoop(w, consume);
    }
    pool->WaitUntilAllFinished();
  }

  ScanStats total;
  {
    common::SpinLatch::ScopedSpinLatch guard(&stats_latch_);
    total = stats_;
  }
  metrics::ScanMetrics &scan_metrics = metrics::Scan();
  scan_metrics.morsel_scans->Add(1);
  scan_metrics.rows->Add(total.rows);
  scan_metrics.frozen_blocks->Add(total.frozen_blocks);
  scan_metrics.hot_blocks->Add(total.hot_blocks);
}

void ParallelTableScanner::WorkerLoop(size_t worker_index, const ConsumeFn &consume) {
  // Accumulate locally and fold into both views at loop exit: the worker's
  // contribution lands in the merged total on *every* path out of this loop,
  // rather than relying on a post-wait sweep on the driving thread.
  ScanStats stats;
  ColumnVectorBatch batch;
  while (true) {
    // relaxed: morsel dispatch needs only a unique ordinal per worker; block
    // contents are synchronized by the storage layer, not by this counter.
    const size_t ordinal = cursor_.fetch_add(1, std::memory_order_relaxed);
    if (ordinal >= blocks_.size()) break;
    if (TableScanner::ScanBlock(table_, txn_, projection_, blocks_[ordinal], &batch, &stats)) {
      consume(ordinal, &batch);
      batch.Release();
    }
  }
  common::SpinLatch::ScopedSpinLatch guard(&stats_latch_);
  worker_stats_[worker_index].Add(stats);
  stats_.Add(stats);
}

}  // namespace mainline::execution
