#include "execution/parallel_scanner.h"

#include <algorithm>

namespace mainline::execution {

ParallelTableScanner::ParallelTableScanner(storage::SqlTable *table,
                                           transaction::TransactionContext *txn,
                                           std::vector<uint16_t> projection)
    : table_(table),
      txn_(txn),
      projection_(std::move(projection)),
      blocks_(table->UnderlyingTable().Blocks()) {
  MAINLINE_ASSERT(!projection_.empty(), "scan projection must name at least one column");
  MAINLINE_ASSERT(std::is_sorted(projection_.begin(), projection_.end()) &&
                      std::adjacent_find(projection_.begin(), projection_.end()) ==
                          projection_.end(),
                  "scan projection must be sorted ascending and duplicate-free");
  MAINLINE_ASSERT(projection_.back() < table->GetSchema().NumColumns(),
                  "scan projection column out of range");
}

void ParallelTableScanner::Scan(common::WorkerPool *pool, const ConsumeFn &consume) {
  cursor_.store(0, std::memory_order_relaxed);
  stats_ = ScanStats{};
  const uint32_t workers = pool == nullptr ? 0 : pool->NumWorkers();
  worker_stats_.assign(workers == 0 ? 1 : workers, ScanStats{});

  if (workers == 0) {
    // No usable pool: the cursor machinery still hands out morsels, just to
    // this one thread.
    WorkerLoop(0, consume);
  } else {
    // One long-running task per worker, each draining the shared cursor —
    // morsel dispatch is the atomic fetch_add, not the task queue, so the
    // queue sees O(workers) entries rather than O(blocks).
    for (uint32_t w = 0; w < workers; w++) {
      const bool accepted =
          pool->SubmitTask([this, w, &consume] { WorkerLoop(w, consume); });
      // A pool shut down between NumWorkers() and here rejects the submit;
      // run that worker's share inline instead of losing it.
      if (!accepted) WorkerLoop(w, consume);
    }
    pool->WaitUntilAllFinished();
  }

  for (const ScanStats &s : worker_stats_) stats_.Add(s);
}

void ParallelTableScanner::WorkerLoop(size_t worker_index, const ConsumeFn &consume) {
  ScanStats &stats = worker_stats_[worker_index];
  ColumnVectorBatch batch;
  while (true) {
    const size_t ordinal = cursor_.fetch_add(1, std::memory_order_relaxed);
    if (ordinal >= blocks_.size()) return;
    if (TableScanner::ScanBlock(table_, txn_, projection_, blocks_[ordinal], &batch, &stats)) {
      consume(ordinal, &batch);
      batch.Release();
    }
  }
}

}  // namespace mainline::execution
