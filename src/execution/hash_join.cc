#include "execution/hash_join.h"

#include "execution/parallel_scanner.h"

namespace mainline::execution {

void JoinHashTable::Partition::BuildFrom(const std::vector<JoinEntry> &entries) {
  if (entries.empty()) return;
  // Power-of-two capacity at a load factor of at most 0.5 keeps linear-probe
  // chains short even with duplicate-heavy keys.
  uint64_t capacity = 8;
  while (capacity < entries.size() * 2) capacity <<= 1;
  slots.resize(capacity);
  used.assign(capacity, 0);
  const uint64_t mask = capacity - 1;
  for (const JoinEntry &entry : entries) {
    uint64_t i = HashKey(entry.key) & mask;
    while (used[i]) i = (i + 1) & mask;
    slots[i] = entry;
    used[i] = 1;
  }
}

JoinHashTable JoinHashTable::Build(catalog::SqlTable *table,
                                   transaction::TransactionContext *txn,
                                   const std::vector<uint16_t> &projection,
                                   const BuildEmitFn &emit, common::WorkerPool *pool,
                                   ScanStats *stats) {
  // Step 1 — scan: one entry vector per block ordinal; workers write
  // disjoint slots, so no synchronization beyond the scan itself.
  ParallelTableScanner scanner(table, txn, projection);
  std::vector<std::vector<JoinEntry>> per_block(scanner.NumBlocks());
  scanner.Scan(pool, [&](size_t ordinal, ColumnVectorBatch *batch) {
    emit(*batch, &per_block[ordinal]);
  });
  if (stats != nullptr) stats->Add(scanner.Stats());
  return FromOrdinalLists(per_block, pool);
}

JoinHashTable JoinHashTable::FromOrdinalLists(
    const std::vector<std::vector<JoinEntry>> &per_block, common::WorkerPool *pool) {
  JoinHashTable result;

  // Step 2 — scatter, in block order: partition contents become independent
  // of how the morsels were distributed over workers.
  std::array<std::vector<JoinEntry>, kNumPartitions> buckets;
  uint64_t total = 0;
  for (const std::vector<JoinEntry> &entries : per_block) total += entries.size();
  if (total == 0) return result;
  for (auto &bucket : buckets) bucket.reserve(total / kNumPartitions + 1);
  for (const std::vector<JoinEntry> &entries : per_block) {
    for (const JoinEntry &entry : entries) {
      buckets[HashKey(entry.key) >> kPartitionShift].push_back(entry);
    }
  }
  result.num_entries_ = total;

  // Step 3 — per-partition table build: disjoint partitions, one task each.
  // The same pool the scan used is idle again by now; degrade inline without
  // one (or when a racing shutdown rejects the submit).
  const uint32_t workers = pool == nullptr ? 0 : pool->NumWorkers();
  if (workers == 0) {
    for (uint32_t p = 0; p < kNumPartitions; p++) {
      result.partitions_[p].BuildFrom(buckets[p]);
    }
  } else {
    for (uint32_t p = 0; p < kNumPartitions; p++) {
      if (buckets[p].empty()) continue;
      Partition *partition = &result.partitions_[p];
      const std::vector<JoinEntry> *bucket = &buckets[p];
      if (!pool->SubmitTask([partition, bucket] { partition->BuildFrom(*bucket); })) {
        partition->BuildFrom(*bucket);
      }
    }
    pool->WaitUntilAllFinished();
  }
  return result;
}

}  // namespace mainline::execution
