#pragma once

#include <memory>

#include "arrowlite/array.h"
#include "catalog/sql_table.h"
#include "export/exporter.h"
#include "transaction/transaction_manager.h"

namespace mainline::exporter {

/// Row-oriented, text-encoded wire protocol modeled on the PostgreSQL v3
/// protocol: a RowDescription message followed by one DataRow message per
/// tuple, every value rendered as text. The client parses each value back.
/// This is the (4) baseline of Figure 15 and the "ODBC" path of Figure 1.
class PostgresWireExporter final : public Exporter {
 public:
  /// \param client sink standing in for the client connection
  explicit PostgresWireExporter(ClientBuffer *client) : client_(client) {}

  ExportResult Export(catalog::SqlTable *table,
                      transaction::TransactionManager *txn_manager) override;
  const char *Name() const override { return "postgres-wire"; }

  /// \return the batch the client materialized from the wire bytes (set by
  /// the last Export call).
  const std::shared_ptr<arrowlite::RecordBatch> &ClientBatch() const { return client_batch_; }

 private:
  ClientBuffer *client_;
  std::shared_ptr<arrowlite::RecordBatch> client_batch_;
};

/// Column-batch wire protocol in the style of Raasveldt & Mühleisen's
/// vectorized client protocol [46]: per-block column chunks, fixed-width
/// columns shipped as raw arrays, strings length-prefixed; the client still
/// re-assembles arrays from the wire format.
class VectorizedWireExporter final : public Exporter {
 public:
  explicit VectorizedWireExporter(ClientBuffer *client) : client_(client) {}

  ExportResult Export(catalog::SqlTable *table,
                      transaction::TransactionManager *txn_manager) override;
  const char *Name() const override { return "vectorized-wire"; }

  const std::shared_ptr<arrowlite::RecordBatch> &ClientBatch() const { return client_batch_; }

 private:
  ClientBuffer *client_;
  std::shared_ptr<arrowlite::RecordBatch> client_batch_;
};

/// Arrow-native RPC in the style of Arrow Flight: frozen blocks' buffers go
/// onto the wire verbatim through the IPC stream writer (no per-value
/// encoding), and the client lands them without parsing. Hot blocks are
/// transactionally materialized first.
class ArrowFlightExporter final : public Exporter {
 public:
  explicit ArrowFlightExporter(ClientBuffer *client) : client_(client) {}

  ExportResult Export(catalog::SqlTable *table,
                      transaction::TransactionManager *txn_manager) override;
  const char *Name() const override { return "arrow-flight"; }

  /// Batches the client received (zero-parse).
  const std::vector<std::shared_ptr<arrowlite::RecordBatch>> &ClientBatches() const {
    return client_batches_;
  }

 private:
  ClientBuffer *client_;
  std::vector<std::shared_ptr<arrowlite::RecordBatch>> client_batches_;
};

/// Simulated client-side RDMA (see DESIGN.md substitution note): the server
/// writes block buffers straight into the client's registered memory with no
/// framing and no serialization; hot blocks are materialized first. The
/// hardware NIC is replaced by memcpy, preserving the protocol cost
/// structure Figure 15 isolates (zero serialization, no CPU-side encode).
class RdmaExporter final : public Exporter {
 public:
  explicit RdmaExporter(ClientBuffer *client) : client_(client) {}

  ExportResult Export(catalog::SqlTable *table,
                      transaction::TransactionManager *txn_manager) override;
  const char *Name() const override { return "rdma"; }

 private:
  ClientBuffer *client_;
};

}  // namespace mainline::exporter
