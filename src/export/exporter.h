#pragma once

#include <cstdint>
#include <memory>

#include "arrowlite/io.h"
#include "catalog/schema.h"
#include "common/macros.h"
#include "catalog/sql_table.h"
#include "transaction/transaction_manager.h"

namespace mainline::exporter {

/// Outcome of one bulk export.
struct ExportResult {
  uint64_t rows = 0;
  /// Bytes that crossed the (simulated) wire.
  uint64_t wire_bytes = 0;
  /// End-to-end time from request to the client being able to start
  /// analysis, matching Figure 15's measurement.
  uint64_t micros = 0;
  /// Blocks served zero-copy (frozen) vs. transactionally materialized.
  uint64_t frozen_blocks = 0;
  uint64_t hot_blocks = 0;
};

/// A bulk data-export mechanism (Section 5). Implementations walk the
/// table's blocks; frozen blocks may be read in place under the block read
/// lock, hot blocks must be materialized through a transaction first.
class Exporter {
 public:
  virtual ~Exporter() = default;

  /// Export the entire table to the client.
  virtual ExportResult Export(catalog::SqlTable *table,
                              transaction::TransactionManager *txn_manager) = 0;

  /// \return a short protocol name for reports.
  virtual const char *Name() const = 0;
};

/// Simulated client memory region for one-sided transfers (the RDMA path)
/// and a landing zone for the other protocols' wire bytes.
class ClientBuffer final : public arrowlite::ByteSink {
 public:
  explicit ClientBuffer(uint64_t capacity)
      : data_(std::make_unique<byte[]>(capacity)), capacity_(capacity) {}

  void Write(const byte *data, uint64_t size) override {
    MAINLINE_ASSERT(size_ + size <= capacity_, "client buffer overflow");
    std::memcpy(data_.get() + size_, data, size);
    size_ += size;
  }

  void Reset() { size_ = 0; }
  const byte *data() const { return data_.get(); }
  uint64_t size() const { return size_; }

 private:
  std::unique_ptr<byte[]> data_;
  uint64_t capacity_;
  uint64_t size_ = 0;
};

}  // namespace mainline::exporter
